package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
)

// goldenPprof writes a real goroutine profile (runtime/pprof protobuf
// output) to a temp file and returns its path.
func goldenPprof(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "goroutine.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.Lookup("goroutine").WriteTo(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestConvertTopTree(t *testing.T) {
	src := goldenPprof(t)
	cali := filepath.Join(t.TempDir(), "out.cali")

	if err := run([]string{"convert", "-o", cali, src}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	data, err := os.ReadFile(cali)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "__rec=ctx") {
		t.Fatal("converted file has no context records")
	}
	if !strings.Contains(string(data), "prof.function") {
		t.Fatal("converted file does not declare prof.function")
	}

	out, err := captureStdout(t, func() error {
		return run([]string{"top", "-metric", "goroutines", "-n", "5", cali})
	})
	if err != nil {
		t.Fatalf("top: %v", err)
	}
	if !strings.Contains(out, "FUNCTION") || !strings.Contains(out, "FLAT") {
		t.Errorf("top output missing table header:\n%s", out)
	}
	// every goroutine stack bottoms out in a known runtime entry point,
	// and this test goroutine is running, so some function must appear
	if !strings.Contains(out, ".") {
		t.Errorf("top output has no function names:\n%s", out)
	}

	out, err = captureStdout(t, func() error {
		return run([]string{"tree", "-metric", "goroutines", cali})
	})
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	if !strings.Contains(out, "inclusive_sum") && !strings.Contains(out, "goroutines") {
		t.Errorf("tree output unexpected:\n%s", out)
	}
}

func TestConvertFolded(t *testing.T) {
	src := goldenPprof(t)
	folded := filepath.Join(t.TempDir(), "out.folded")
	if err := run([]string{"convert", "-folded", "-o", folded, src}); err != nil {
		t.Fatalf("convert -folded: %v", err)
	}
	data, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty folded output")
	}
	for _, ln := range lines {
		sp := strings.LastIndexByte(ln, ' ')
		if sp < 0 {
			t.Fatalf("folded line without value: %q", ln)
		}
		if _, err := strconv.ParseInt(ln[sp+1:], 10, 64); err != nil {
			t.Fatalf("folded value not an integer in %q: %v", ln, err)
		}
	}
}

func TestConvertBadSampleType(t *testing.T) {
	src := goldenPprof(t)
	err := run([]string{"convert", "-folded", "-sample", "no_such_type", "-o",
		filepath.Join(t.TempDir(), "x"), src})
	if err == nil || !strings.Contains(err.Error(), "no sample type") {
		t.Fatalf("expected sample-type error, got %v", err)
	}
}

func TestCaptureFromEndpoint(t *testing.T) {
	raw, err := os.ReadFile(goldenPprof(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/pprof/goroutine" {
			http.NotFound(w, r)
			return
		}
		w.Write(raw)
	}))
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "cap.cali")
	if err := run([]string{"capture", "-type", "goroutine", "-o", out,
		strings.TrimPrefix(srv.URL, "http://")}); err != nil {
		t.Fatalf("capture: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "__rec=ctx") {
		t.Error("captured file has no context records")
	}
}

func TestCaptureUnreachable(t *testing.T) {
	err := run([]string{"capture", "-type", "goroutine", "-o",
		filepath.Join(t.TempDir(), "x"), "127.0.0.1:1"})
	if err == nil {
		t.Fatal("expected error for unreachable target")
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"capture", "-type", "nope", "localhost:1"},
		{"capture", "-type", "cpu", "-seconds", "0", "localhost:1"},
		{"capture"},
		{"convert"},
		{"convert", filepath.Join(os.TempDir(), "does-not-exist.pb.gz")},
		{"top"},
		{"tree"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestHelp(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"help"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"capture", "convert", "top", "tree"} {
		if !strings.Contains(out, cmd) {
			t.Errorf("help output missing %q", cmd)
		}
	}
}
