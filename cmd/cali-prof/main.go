// Command cali-prof turns Go pprof profiles into CalQL-queryable .cali
// calling-context data and answers the common profiling questions
// directly.
//
// Usage:
//
//	cali-prof capture [-type cpu|heap|...] [-seconds N] [-o out.cali] [-folded] (host:port | -self)
//	cali-prof convert [-o out.cali] [-folded] [-sample type] profile.pb.gz
//	cali-prof top     [-metric cpu.samples] [-n 20] file.cali [file2.cali ...]
//	cali-prof tree    [-metric cpu.samples] file.cali [file2.cali ...]
//
// capture pulls a profile from a live debug endpoint (any process serving
// net/http/pprof, e.g. caliper.ServeDebug) — or, with -self, profiles the
// cali-prof process itself — and converts it. convert transforms an
// existing pprof file (from any Go service). top prints a flat/cumulative
// per-function table; tree renders the calling-context tree. -folded
// writes folded stacks ("main;foo;bar 42") for standard flamegraph
// tooling instead of .cali.
//
// Examples:
//
//	cali-prof capture -type cpu -seconds 5 -o cpu.cali localhost:9090
//	cali-prof convert -o svc.cali /tmp/pprof/cpu.pb.gz
//	cali-prof convert -folded cpu.pb.gz | flamegraph.pl > flame.svg
//	cali-prof top -n 15 cpu.cali
//	cali-prof tree -metric heap.inuse.bytes heap.cali
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"caligo/calql"
	"caligo/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cali-prof:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: cali-prof <command> [flags] ...

commands:
  capture   capture a profile from a live /debug/pprof endpoint (or -self)
  convert   convert a pprof file to .cali (or -folded flame stacks)
  top       per-function flat/cumulative table from .cali profile data
  tree      calling-context tree from .cali profile data

run "cali-prof <command> -h" for command flags
`)
}

func run(args []string) error {
	if len(args) == 0 {
		usage(os.Stderr)
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "capture":
		return runCapture(args[1:])
	case "convert":
		return runConvert(args[1:])
	case "top":
		return runTop(args[1:])
	case "tree":
		return runTree(args[1:])
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return nil
	}
	usage(os.Stderr)
	return fmt.Errorf("unknown command %q", args[0])
}

// ---------------------------------------------------------------------------
// capture

func runCapture(args []string) error {
	fs := flag.NewFlagSet("cali-prof capture", flag.ContinueOnError)
	kind := fs.String("type", "cpu", "profile kind: cpu, heap, allocs, goroutine, mutex, block, threadcreate")
	seconds := fs.Int("seconds", 5, "CPU window length in seconds (cpu only)")
	out := fs.String("o", "", "output file (default <type>.cali, or <type>.folded with -folded)")
	folded := fs.Bool("folded", false, "write folded flame stacks instead of .cali")
	self := fs.Bool("self", false, "profile the cali-prof process itself instead of a remote endpoint")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cali-prof capture [flags] (host:port | -self)\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !prof.KnownKind(*kind) {
		return fmt.Errorf("unknown profile type %q", *kind)
	}
	if *seconds <= 0 {
		return fmt.Errorf("-seconds must be positive")
	}

	var raw []byte
	var err error
	switch {
	case *self:
		if fs.NArg() != 0 {
			return fmt.Errorf("-self takes no target argument")
		}
		raw, err = prof.CapturePprof(*kind, time.Duration(*seconds)*time.Second)
	case fs.NArg() == 1:
		raw, err = fetchPprof(fs.Arg(0), *kind, *seconds)
	default:
		fs.Usage()
		return fmt.Errorf("need exactly one target host:port (or -self)")
	}
	if err != nil {
		return err
	}
	target := *out
	if target == "" {
		if *folded {
			target = *kind + ".folded"
		} else {
			target = *kind + ".cali"
		}
	}
	return writeConverted(raw, target, *folded, "")
}

// fetchPprof pulls one profile from a net/http/pprof endpoint.
func fetchPprof(target, kind string, seconds int) ([]byte, error) {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	url := target + "/debug/pprof/" + kind
	timeout := 30 * time.Second
	if kind == "cpu" {
		url = fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", target, seconds)
		timeout = time.Duration(seconds)*time.Second + 30*time.Second
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return io.ReadAll(resp.Body)
}

// ---------------------------------------------------------------------------
// convert

func runConvert(args []string) error {
	fs := flag.NewFlagSet("cali-prof convert", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default: stdout)")
	folded := fs.Bool("folded", false, "write folded flame stacks instead of .cali")
	sample := fs.String("sample", "", "sample type for -folded (e.g. \"samples\", \"inuse_space\"; default: first)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cali-prof convert [flags] profile.pb.gz\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one pprof input file (\"-\" for stdin)")
	}
	var raw []byte
	var err error
	if fs.Arg(0) == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	return writeConverted(raw, *out, *folded, *sample)
}

// writeConverted parses raw pprof bytes and writes .cali or folded
// output to target ("" or "-" = stdout).
func writeConverted(raw []byte, target string, folded bool, sampleType string) error {
	p, err := prof.Parse(raw)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if target != "" && target != "-" {
		f, err = os.Create(target)
		if err != nil {
			return err
		}
		w = f
	}
	if folded {
		idx := 0
		if sampleType != "" {
			idx = -1
			for i, vt := range p.SampleType {
				if vt.Type == sampleType {
					idx = i
					break
				}
			}
			if idx < 0 {
				var have []string
				for _, vt := range p.SampleType {
					have = append(have, vt.Type)
				}
				return fmt.Errorf("profile has no sample type %q (has: %s)",
					sampleType, strings.Join(have, ", "))
			}
		}
		err = prof.WriteFolded(p, w, idx)
	} else {
		var stats prof.ConvertStats
		stats, err = prof.Convert(p, w)
		if err == nil && f != nil {
			fmt.Fprintf(os.Stderr, "cali-prof: %s: %d samples, metrics: %s\n",
				target, stats.Samples, strings.Join(stats.Metrics, ", "))
		}
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// top

func runTop(args []string) error {
	fs := flag.NewFlagSet("cali-prof top", flag.ContinueOnError)
	metric := fs.String("metric", "cpu.samples", "metric attribute to rank by")
	n := fs.Int("n", 20, "number of functions to show (0 = all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cali-prof top [flags] file.cali [file2.cali ...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no input files")
	}
	q := fmt.Sprintf("SELECT prof.function, sum(%s) GROUP BY prof.function", *metric)
	res, err := calql.QueryFiles(q, fs.Args())
	if err != nil {
		return err
	}
	fnAttr, ok := res.Reg.Find(prof.AttrFunction)
	if !ok {
		return fmt.Errorf("no %s data in input (not a converted profile?)", prof.AttrFunction)
	}

	// fold the per-path rows into per-function flat/cum like pprof's top:
	// flat attributes a path's exclusive total to its leaf; cum adds it to
	// every distinct function on the path (so interior-only frames get
	// their subtree totals too, and recursion counts once per path)
	type fnTotals struct {
		name      string
		flat, cum int64
	}
	totals := map[string]*fnTotals{}
	get := func(name string) *fnTotals {
		ft := totals[name]
		if ft == nil {
			ft = &fnTotals{name: name}
			totals[name] = ft
		}
		return ft
	}
	var grandTotal int64
	seen := map[string]bool{}
	for _, row := range res.Rows {
		vals := row.ValuesOf(fnAttr.ID())
		if len(vals) == 0 {
			continue
		}
		v, ok := row.GetByName("sum#" + *metric)
		if !ok {
			continue
		}
		excl := v.AsInt()
		get(vals[len(vals)-1].String()).flat += excl
		grandTotal += excl
		clear(seen)
		for _, fv := range vals {
			if name := fv.String(); !seen[name] {
				seen[name] = true
				get(name).cum += excl
			}
		}
	}
	if len(totals) == 0 {
		return fmt.Errorf("no %s values in input", *metric)
	}
	rows := make([]*fnTotals, 0, len(totals))
	for _, ft := range totals {
		rows = append(rows, ft)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cum != rows[j].cum {
			return rows[i].cum > rows[j].cum
		}
		if rows[i].flat != rows[j].flat {
			return rows[i].flat > rows[j].flat
		}
		return rows[i].name < rows[j].name
	})
	if *n > 0 && len(rows) > *n {
		rows = rows[:*n]
	}
	pct := func(v int64) float64 {
		if grandTotal == 0 {
			return 0
		}
		return 100 * float64(v) / float64(grandTotal)
	}
	fmt.Printf("%12s %7s %12s %7s  %s   (total %s: %d)\n",
		"FLAT", "FLAT%", "CUM", "CUM%", "FUNCTION", *metric, grandTotal)
	for _, ft := range rows {
		fmt.Printf("%12d %6.2f%% %12d %6.2f%%  %s\n",
			ft.flat, pct(ft.flat), ft.cum, pct(ft.cum), ft.name)
	}
	return nil
}

// ---------------------------------------------------------------------------
// tree

func runTree(args []string) error {
	fs := flag.NewFlagSet("cali-prof tree", flag.ContinueOnError)
	metric := fs.String("metric", "cpu.samples", "metric attribute to aggregate")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cali-prof tree [flags] file.cali [file2.cali ...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no input files")
	}
	q := fmt.Sprintf("SELECT prof.function, sum(%[1]s), inclusive_sum(%[1]s) "+
		"GROUP BY prof.function FORMAT tree", *metric)
	res, err := calql.QueryFiles(q, fs.Args())
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		return fmt.Errorf("no %s data in input", *metric)
	}
	return res.Render(os.Stdout)
}
