package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/internal/apps/paradis"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

func datasetDir(t *testing.T, ranks int) []string {
	t.Helper()
	dir := t.TempDir()
	cfg := paradis.Config{Kernels: 5, MPIFunctions: 3, Iterations: 4, ExtraRecords: 1}
	paths, err := paradis.GenerateDir(dir, ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestSerialQuery(t *testing.T) {
	files := datasetDir(t, 3)
	args := append([]string{"-q", "AGGREGATE sum(aggregate.count) GROUP BY kernel"}, files...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestParallelQuery(t *testing.T) {
	files := datasetDir(t, 4)
	args := append([]string{"-parallel", "4", "-timing",
		"-q", "AGGREGATE sum(sum#time.duration) GROUP BY kernel, mpi.function"}, files...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

// TestShardedQuery checks the -j flag: sharded execution must print the
// same bytes as the serial run, for both an explicit worker count and the
// -j 0 one-per-CPU default.
func TestShardedQuery(t *testing.T) {
	files := datasetDir(t, 6)
	const q = "AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel, mpi.function"
	serial := captureStdout(t, func() error {
		return run(append([]string{"-q", q}, files...))
	})
	for _, j := range []string{"6", "0"} {
		sharded := captureStdout(t, func() error {
			return run(append([]string{"-j", j, "-q", q}, files...))
		})
		if sharded != serial {
			t.Errorf("-j %s output differs from serial:\n--- serial ---\n%s--- sharded ---\n%s",
				j, serial, sharded)
		}
	}
}

// TestShardedExplain checks that -j routes EXPLAIN to the sharded plan.
func TestShardedExplain(t *testing.T) {
	files := datasetDir(t, 4)
	out := captureStdout(t, func() error {
		return run(append([]string{"-j", "4",
			"-q", "EXPLAIN AGGREGATE count GROUP BY kernel"}, files...))
	})
	if !strings.Contains(out, "sharded (4 parallel workers") ||
		!strings.Contains(out, "-> shard") || !strings.Contains(out, "-> merge") {
		t.Errorf("missing sharded plan nodes:\n%s", out)
	}
}

// TestStatsFlag runs a query with -stats on a real dataset and checks
// that the telemetry report lands on stderr with non-zero read counters.
func TestStatsFlag(t *testing.T) {
	files := datasetDir(t, 2)
	prev := telemetry.SetEnabled(false)
	telemetry.Reset()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = wr
	runErr := run(append([]string{"-stats", "-q", "AGGREGATE sum(aggregate.count) GROUP BY kernel"}, files...))
	os.Stderr = oldStderr
	wr.Close()
	out, readErr := io.ReadAll(rd)
	rd.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	report := string(out)
	if !strings.Contains(report, "internal telemetry") ||
		!strings.Contains(report, "caligo.calformat.records.read") {
		t.Errorf("unexpected -stats report:\n%s", report)
	}
	for _, m := range telemetry.Export() {
		if m.Name == "caligo.calformat.records.read" && m.Counter == 0 {
			t.Error("caligo.calformat.records.read = 0 after reading a dataset")
		}
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdout := os.Stdout
	os.Stdout = wr
	runErr := f()
	os.Stdout = oldStdout
	wr.Close()
	out, readErr := io.ReadAll(rd)
	rd.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out)
}

// TestExplainAnalyzeWithTrace is the acceptance scenario: EXPLAIN ANALYZE
// plus -trace must produce an annotated per-phase plan on stdout and a
// Chrome trace JSON with spans for every pipeline phase.
func TestExplainAnalyzeWithTrace(t *testing.T) {
	files := datasetDir(t, 3)
	traceFile := filepath.Join(t.TempDir(), "out.json")
	prev := trace.SetEnabled(false)
	trace.Reset()
	t.Cleanup(func() { trace.SetEnabled(prev) })

	out := captureStdout(t, func() error {
		return run(append([]string{"-trace", traceFile,
			"-q", "EXPLAIN ANALYZE SELECT kernel, sum#aggregate.count AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY kernel"},
			files...))
	})

	// (a) per-phase annotated plan on stdout
	if !strings.Contains(out, "EXPLAIN ANALYZE") {
		t.Errorf("missing plan header:\n%s", out)
	}
	for _, phase := range []string{"read", "aggregate", "reduce", "postprocess", "format"} {
		if !strings.Contains(out, "-> "+phase) {
			t.Errorf("plan missing phase %q:\n%s", phase, out)
		}
	}
	if !strings.Contains(out, "spans=") || !strings.Contains(out, "time=") {
		t.Errorf("plan not annotated with measurements:\n%s", out)
	}

	// (b) trace JSON with spans for every phase, in Chrome trace format
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"query.read", "query.aggregate", "query.reduce", "query.postprocess", "query.format"} {
		if !names[want] {
			t.Errorf("trace missing %s span; got %v", want, names)
		}
	}
}

// TestExplainPlanOnly checks EXPLAIN (without ANALYZE) prints the plan
// without executing the query.
func TestExplainPlanOnly(t *testing.T) {
	files := datasetDir(t, 2)
	out := captureStdout(t, func() error {
		return run(append([]string{"-q", "EXPLAIN AGGREGATE count GROUP BY kernel"}, files...))
	})
	if !strings.Contains(out, "-> aggregate") {
		t.Errorf("missing plan:\n%s", out)
	}
	if strings.Contains(out, "spans=") {
		t.Errorf("EXPLAIN printed measurements:\n%s", out)
	}
}

func TestMissingQuery(t *testing.T) {
	if err := run([]string{"somefile.cali"}); err == nil {
		t.Error("missing -q should error")
	}
}

func TestNoFiles(t *testing.T) {
	if err := run([]string{"-q", "AGGREGATE count"}); err == nil {
		t.Error("no files should error")
	}
}

func TestBadQuery(t *testing.T) {
	files := datasetDir(t, 1)
	if err := run(append([]string{"-q", "FROB"}, files...)); err == nil {
		t.Error("bad query should error")
	}
}

func TestMissingFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing.cali")
	if err := run([]string{"-q", "AGGREGATE count", bad}); err == nil {
		t.Error("missing file should error")
	}
	_ = os.Remove(bad)
}
