package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/internal/apps/paradis"
	"caligo/internal/telemetry"
)

func datasetDir(t *testing.T, ranks int) []string {
	t.Helper()
	dir := t.TempDir()
	cfg := paradis.Config{Kernels: 5, MPIFunctions: 3, Iterations: 4, ExtraRecords: 1}
	paths, err := paradis.GenerateDir(dir, ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestSerialQuery(t *testing.T) {
	files := datasetDir(t, 3)
	args := append([]string{"-q", "AGGREGATE sum(aggregate.count) GROUP BY kernel"}, files...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestParallelQuery(t *testing.T) {
	files := datasetDir(t, 4)
	args := append([]string{"-parallel", "4", "-timing",
		"-q", "AGGREGATE sum(sum#time.duration) GROUP BY kernel, mpi.function"}, files...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

// TestStatsFlag runs a query with -stats on a real dataset and checks
// that the telemetry report lands on stderr with non-zero read counters.
func TestStatsFlag(t *testing.T) {
	files := datasetDir(t, 2)
	prev := telemetry.SetEnabled(false)
	telemetry.Reset()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = wr
	runErr := run(append([]string{"-stats", "-q", "AGGREGATE sum(aggregate.count) GROUP BY kernel"}, files...))
	os.Stderr = oldStderr
	wr.Close()
	out, readErr := io.ReadAll(rd)
	rd.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	report := string(out)
	if !strings.Contains(report, "internal telemetry") ||
		!strings.Contains(report, "caligo.calformat.records.read") {
		t.Errorf("unexpected -stats report:\n%s", report)
	}
	for _, m := range telemetry.Export() {
		if m.Name == "caligo.calformat.records.read" && m.Counter == 0 {
			t.Error("caligo.calformat.records.read = 0 after reading a dataset")
		}
	}
}

func TestMissingQuery(t *testing.T) {
	if err := run([]string{"somefile.cali"}); err == nil {
		t.Error("missing -q should error")
	}
}

func TestNoFiles(t *testing.T) {
	if err := run([]string{"-q", "AGGREGATE count"}); err == nil {
		t.Error("no files should error")
	}
}

func TestBadQuery(t *testing.T) {
	files := datasetDir(t, 1)
	if err := run(append([]string{"-q", "FROB"}, files...)); err == nil {
		t.Error("bad query should error")
	}
}

func TestMissingFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing.cali")
	if err := run([]string{"-q", "AGGREGATE count", bad}); err == nil {
		t.Error("missing file should error")
	}
	_ = os.Remove(bad)
}
