package main

import (
	"os"
	"path/filepath"
	"testing"

	"caligo/internal/apps/paradis"
)

func datasetDir(t *testing.T, ranks int) []string {
	t.Helper()
	dir := t.TempDir()
	cfg := paradis.Config{Kernels: 5, MPIFunctions: 3, Iterations: 4, ExtraRecords: 1}
	paths, err := paradis.GenerateDir(dir, ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestSerialQuery(t *testing.T) {
	files := datasetDir(t, 3)
	args := append([]string{"-q", "AGGREGATE sum(aggregate.count) GROUP BY kernel"}, files...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestParallelQuery(t *testing.T) {
	files := datasetDir(t, 4)
	args := append([]string{"-parallel", "4", "-timing",
		"-q", "AGGREGATE sum(sum#time.duration) GROUP BY kernel, mpi.function"}, files...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestMissingQuery(t *testing.T) {
	if err := run([]string{"somefile.cali"}); err == nil {
		t.Error("missing -q should error")
	}
}

func TestNoFiles(t *testing.T) {
	if err := run([]string{"-q", "AGGREGATE count"}); err == nil {
		t.Error("no files should error")
	}
}

func TestBadQuery(t *testing.T) {
	files := datasetDir(t, 1)
	if err := run(append([]string{"-q", "FROB"}, files...)); err == nil {
		t.Error("bad query should error")
	}
}

func TestMissingFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing.cali")
	if err := run([]string{"-q", "AGGREGATE count", bad}); err == nil {
		t.Error("missing file should error")
	}
	_ = os.Remove(bad)
}
