// Command cali-query is the off-line query application of Section IV-C:
// it runs a query in the aggregation description language over one or more
// .cali datasets, either serially or with the emulated-MPI parallel
// cross-process reduction.
//
// Usage:
//
//	cali-query [flags] file.cali [file2.cali ...]
//
// Examples:
//
//	cali-query -q "AGGREGATE count, sum(time.duration) GROUP BY mpi.function" rank-*.cali
//	cali-query -q "AGGREGATE sum(aggregate.count) GROUP BY kernel FORMAT csv" profile.cali
//	cali-query -parallel 16 -q "..." rank-*.cali     # tree reduction over 16 ranks
//	cali-query -j 8 -q "..." rank-*.cali             # 8 in-process shard workers
package main

import (
	"flag"
	"fmt"
	"os"

	"caligo/caliper"
	"caligo/calql"
	"caligo/internal/obs"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cali-query:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cali-query", flag.ContinueOnError)
	queryText := fs.String("q", "", "query in the aggregation description language (required)")
	parallel := fs.Int("parallel", 0, "run the MPI-emulated parallel query with this many ranks (0 = serial)")
	jobs := fs.Int("j", 1, "sharded multi-core execution with this many read+aggregate workers (1 = serial, 0 = one per CPU)")
	noIndex := fs.Bool("no-index", false, "ignore sidecar block indexes (.cali.idx): no file/block pruning or projection pushdown")
	cacheDir := fs.String("cache", "", "per-file aggregate state cache directory (default: $CALIGO_CACHE; empty = caching off)")
	noCache := fs.Bool("no-cache", false, "disable the aggregate state cache, overriding -cache and $CALIGO_CACHE")
	showTiming := fs.Bool("timing", false, "print phase timing of the parallel query")
	showStats := fs.Bool("stats", false, "print the internal telemetry report after the run (to stderr)")
	traceOut := fs.String("trace", "", "write spans of the run as Chrome trace-event JSON to this file (view in Perfetto)")
	logFormat := fs.String("log", "", "structured logging to stderr: \"json\" or \"text\" (implies telemetry for query attribution)")
	slowThreshold := fs.Duration("slow", 0, "slow-query log threshold, e.g. 500ms (0 keeps the 1s default; implies -log text if no -log)")
	debugAddr := fs.String("debug", "", "serve /debug endpoints (metrics, queries, log, pprof) on this address for the run's duration")
	historyDir := fs.String("history", "", "record telemetry-history windows as .cali files into this directory (implies telemetry)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cali-query [flags] file.cali [file2.cali ...]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nexample queries:\n"+
			"  AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration\n"+
			"  AGGREGATE sum(time.duration) WHERE not(mpi.function) GROUP BY amr.level\n"+
			"  SELECT kernel, sum#time.duration AS time AGGREGATE sum(time.duration) GROUP BY kernel FORMAT csv\n")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryText == "" {
		fs.Usage()
		return fmt.Errorf("missing -q query")
	}
	files := fs.Args()
	if len(files) == 0 {
		fs.Usage()
		return fmt.Errorf("no input files")
	}
	if *showStats {
		telemetry.Enable()
		defer telemetry.WriteReport(os.Stderr)
	}
	if *traceOut != "" {
		trace.Enable()
	}
	if *slowThreshold > 0 && *logFormat == "" {
		*logFormat = "text"
	}
	if *logFormat != "" {
		switch *logFormat {
		case "json":
			obs.SetLogOutput(os.Stderr, obs.LogJSON)
		case "text":
			obs.SetLogOutput(os.Stderr, obs.LogText)
		default:
			return fmt.Errorf("-log must be \"json\" or \"text\", got %q", *logFormat)
		}
		obs.EnableLogging()
		// attribution (and with it the slow-query log) rides on telemetry
		telemetry.Enable()
	}
	if *slowThreshold > 0 {
		obs.SetSlowQueryThreshold(*slowThreshold)
	}
	if *debugAddr != "" {
		telemetry.Enable()
		srv, err := caliper.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/ (metrics, queries, log, pprof)\n", srv.Addr())
	}
	if *historyDir != "" {
		telemetry.Enable()
		if err := caliper.StartHistory(caliper.HistoryOptions{Dir: *historyDir}); err != nil {
			return err
		}
		// the final tail window lands at stop, so even a short run
		// leaves a queryable timeline behind
		defer caliper.StopHistory()
	}
	if err := runQuery(*queryText, files, *parallel, *jobs, *showTiming,
		calql.Options{NoIndex: *noIndex, CacheDir: *cacheDir, NoCache: *noCache}); err != nil {
		return err
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote trace to %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	return nil
}

func runQuery(queryText string, files []string, parallel, jobs int, showTiming bool, opts calql.Options) error {
	// EXPLAIN / EXPLAIN ANALYZE statements print the resolved plan instead
	// of result rows.
	if q, err := calql.Parse(queryText); err == nil && q.Explain != calql.ExplainNone {
		out, err := calql.ExplainFilesOpts(queryText, files, parallel, jobs, opts)
		if err != nil {
			return err
		}
		_, err = fmt.Print(out)
		return err
	}

	if parallel > 0 {
		res, err := calql.QueryFilesParallelOpt(queryText, files, parallel, opts)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		if showTiming {
			fmt.Fprintf(os.Stderr,
				"records: %d  local: %.2f ms  reduce: %.2f ms  total (virtual): %.2f ms  wall: %v\n",
				res.RecordsProcessed,
				res.Timing.LocalVirt/1e6, res.Timing.ReduceVirt/1e6,
				res.Timing.TotalVirt/1e6, res.Timing.TotalWall)
		}
		return nil
	}

	if jobs != 1 {
		res, err := calql.QueryFilesJobsOpt(queryText, files, jobs, opts)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	}

	res, err := calql.QueryFilesOpt(queryText, files, opts)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}
