package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/internal/apps/paradis"
	"caligo/internal/telemetry"
)

func TestStatDataset(t *testing.T) {
	dir := t.TempDir()
	cfg := paradis.Config{Kernels: 3, MPIFunctions: 2, Iterations: 2, ExtraRecords: 1}
	paths, err := paradis.GenerateDir(dir, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(append([]string{"-combined"}, paths...), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "records: 11") { // 3*2+2*2+1 per file
		t.Errorf("per-file record count missing:\n%s", out)
	}
	if !strings.Contains(out, "TOTAL (2 files)") || !strings.Contains(out, "records: 22") {
		t.Errorf("combined totals missing:\n%s", out)
	}
	if !strings.Contains(out, "kernel") || !strings.Contains(out, "aggregate.count") {
		t.Errorf("attribute table missing:\n%s", out)
	}
}

// TestStatParallelScanOrder checks that the parallel file scan reports
// files in argument order regardless of worker count.
func TestStatParallelScanOrder(t *testing.T) {
	dir := t.TempDir()
	cfg := paradis.Config{Kernels: 3, MPIFunctions: 2, Iterations: 2, ExtraRecords: 1}
	paths, err := paradis.GenerateDir(dir, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var serial, parallel strings.Builder
	if err := run(append([]string{"-j", "1"}, paths...), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-j", "6"}, paths...), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("-j 6 report differs from -j 1:\n%s\nvs\n%s",
			parallel.String(), serial.String())
	}
}

func TestStatsFlag(t *testing.T) {
	dir := t.TempDir()
	cfg := paradis.Config{Kernels: 3, MPIFunctions: 2, Iterations: 2, ExtraRecords: 1}
	paths, err := paradis.GenerateDir(dir, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := telemetry.SetEnabled(false)
	telemetry.Reset()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	var sb strings.Builder
	if err := run(append([]string{"-stats"}, paths...), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "internal telemetry") ||
		!strings.Contains(out, "caligo.calformat.records.read") {
		t.Errorf("-stats report missing:\n%s", out)
	}
}

func TestStatErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no files should error")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.cali")}, &sb); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.cali")
	os.WriteFile(bad, []byte("__rec=ctx,ref=9\n"), 0o644)
	if err := run([]string{bad}, &sb); err == nil {
		t.Error("corrupt file should error")
	}
}
