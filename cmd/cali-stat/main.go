// Command cali-stat inspects .cali datasets: it reports record counts,
// the attribute table (name, type, properties, occurrence counts), and
// context-tree sizes — the quick sanity view before writing queries.
//
// Usage:
//
//	cali-stat profile.cali [more.cali ...]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/qcache"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cali-stat:", err)
		os.Exit(1)
	}
}

// fileStats aggregates one dataset's statistics.
type fileStats struct {
	name      string
	records   int
	entries   int
	treeNodes int
	attrs     map[string]*attrStats
	globals   int
	// indexState describes the sidecar block index: "none", a block
	// summary (stats were served from the index without decoding the
	// file), "stale (ignored)", "corrupt (ignored)", or "(disabled)".
	indexState string
	// cacheState summarizes the file's aggregate-cache entries ("" when
	// no cache directory is configured).
	cacheState string
}

type attrStats struct {
	attr  attr.Attribute
	count int
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cali-stat", flag.ContinueOnError)
	combined := fs.Bool("combined", false, "also print totals over all files")
	noIndex := fs.Bool("no-index", false, "ignore sidecar block indexes and decode every file")
	cacheDir := fs.String("cache", os.Getenv("CALIGO_CACHE"), "report each file's aggregate-cache entries from this cache directory (default: $CALIGO_CACHE)")
	noCache := fs.Bool("no-cache", false, "skip the aggregate-cache report, overriding -cache and $CALIGO_CACHE")
	jobs := fs.Int("j", 0, "scan this many files in parallel (0 = one per CPU)")
	showStats := fs.Bool("stats", false, "print the internal telemetry report after the run")
	traceOut := fs.String("trace", "", "write spans of the run as Chrome trace-event JSON to this file (view in Perfetto)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no input files")
	}
	if *showStats {
		telemetry.Enable()
		defer telemetry.WriteReport(w)
	}
	if *traceOut != "" {
		trace.Enable()
	}

	// scan files in parallel: each file uses a private registry and context
	// tree, so workers are fully independent; results land at their file's
	// index, keeping the report order identical to the serial scan
	nw := *jobs
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > len(files) {
		nw = len(files)
	}
	all := make([]*fileStats, len(files))
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(files); i += nw {
				st, err := statFile(files[i], !*noIndex)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", files[i], err)
					continue
				}
				all[i] = st
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if *cacheDir != "" && !*noCache {
		annotateCacheState(all, *cacheDir)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	for _, st := range all {
		printStats(w, st)
	}
	if *combined && len(all) > 1 {
		total := &fileStats{name: fmt.Sprintf("TOTAL (%d files)", len(all)),
			attrs: map[string]*attrStats{}}
		for _, st := range all {
			total.records += st.records
			total.entries += st.entries
			total.treeNodes += st.treeNodes
			total.globals += st.globals
			for name, as := range st.attrs {
				t := total.attrs[name]
				if t == nil {
					t = &attrStats{attr: as.attr}
					total.attrs[name] = t
				}
				t.count += as.count
			}
		}
		printStats(w, total)
	}
	return nil
}

// statFile reports one dataset's statistics. With useIndex, a fresh
// sidecar block index answers without decoding the file (record, entry,
// tree, and per-attribute counts all live in the index); a missing,
// stale, or corrupt index falls back to the full decode.
func statFile(fn string, useIndex bool) (*fileStats, error) {
	sp := trace.Begin("stat.read")
	sp.Arg("file", fn)
	defer sp.End()
	indexState := "(disabled)"
	if useIndex {
		idx, err := calformat.LoadIndex(fn)
		switch {
		case err == nil:
			st := statFromIndex(fn, idx)
			sp.ArgInt("records", int64(st.records))
			return st, nil
		case errors.Is(err, fs.ErrNotExist):
			indexState = "none"
		case errors.Is(err, calformat.ErrIndexStale):
			indexState = "stale (ignored)"
		default:
			indexState = "corrupt (ignored)"
		}
	}
	f, err := os.Open(fn)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reg := attr.NewRegistry()
	tree := contexttree.New()
	rd := calformat.NewReader(f, reg, tree)
	st := &fileStats{name: fn, attrs: map[string]*attrStats{}, indexState: indexState}
	var rec snapshot.FlatRecord // reused across NextInto calls
	for {
		err := rd.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		st.records++
		st.entries += len(rec)
		for _, e := range rec {
			as := st.attrs[e.Attr.Name()]
			if as == nil {
				as = &attrStats{attr: e.Attr}
				st.attrs[e.Attr.Name()] = as
			}
			as.count++
		}
	}
	st.treeNodes = tree.Len()
	st.globals = len(rd.Globals())
	sp.ArgInt("records", int64(st.records))
	return st, nil
}

// statFromIndex builds the report from the sidecar alone. The attribute
// handles come from a throwaway registry seeded with the index's
// attribute table, so types and properties print exactly as a decode
// would show them.
func statFromIndex(fn string, idx *calformat.Index) *fileStats {
	reg := attr.NewRegistry()
	st := &fileStats{
		name:      fn,
		records:   int(idx.Records),
		entries:   int(idx.Entries),
		treeNodes: int(idx.TreeNodes),
		globals:   int(idx.Globals),
		attrs:     map[string]*attrStats{},
		indexState: fmt.Sprintf("%d blocks (target %d records/block)",
			len(idx.Blocks), idx.BlockTarget),
	}
	for _, ia := range idx.Attrs {
		a, err := reg.Create(ia.Name, ia.Type, ia.Props)
		if err != nil {
			continue
		}
		st.attrs[ia.Name] = &attrStats{attr: a, count: int(ia.Entries)}
	}
	return st
}

// annotateCacheState fills each file's cacheState from the aggregate
// cache: how many stored query states reference the file and how many
// bytes they occupy. Cache problems never fail the stat run.
func annotateCacheState(all []*fileStats, dir string) {
	store, err := qcache.Open(dir)
	if err != nil {
		return
	}
	infos, err := store.Entries()
	if err != nil {
		return
	}
	type tally struct {
		entries int
		bytes   int64
	}
	byFile := map[string]*tally{}
	for _, info := range infos {
		if info.Entry == nil {
			continue
		}
		t := byFile[info.Entry.File]
		if t == nil {
			t = &tally{}
			byFile[info.Entry.File] = t
		}
		t.entries++
		t.bytes += info.Size
	}
	for _, st := range all {
		abs, err := filepath.Abs(st.name)
		if err != nil {
			continue
		}
		if t := byFile[abs]; t != nil {
			st.cacheState = fmt.Sprintf("%d cached query state(s), %d bytes", t.entries, t.bytes)
		} else {
			st.cacheState = "no cached query state"
		}
	}
}

func printStats(w io.Writer, st *fileStats) {
	fmt.Fprintf(w, "%s:\n", st.name)
	fmt.Fprintf(w, "  records: %d   entries: %d   context-tree nodes: %d   globals: %d\n",
		st.records, st.entries, st.treeNodes, st.globals)
	if st.indexState != "" {
		fmt.Fprintf(w, "  index: %s\n", st.indexState)
	}
	if st.cacheState != "" {
		fmt.Fprintf(w, "  qcache: %s\n", st.cacheState)
	}
	names := make([]string, 0, len(st.attrs))
	for n := range st.attrs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if st.attrs[names[i]].count != st.attrs[names[j]].count {
			return st.attrs[names[i]].count > st.attrs[names[j]].count
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(w, "  %-32s %-8s %-28s %10s\n", "attribute", "type", "properties", "entries")
	for _, n := range names {
		as := st.attrs[n]
		props := as.attr.Properties().String()
		if props == "" {
			props = "-"
		}
		fmt.Fprintf(w, "  %-32s %-8s %-28s %10d\n",
			n, as.attr.Type().String(), props, as.count)
	}
	fmt.Fprintln(w)
}
