// Command cali-index builds, inspects, and verifies sidecar block
// indexes (<file>.cali.idx) for .cali datasets. The index stores per-block
// zone maps (numeric min/max, small string distinct sets) that let
// cali-query skip whole files and blocks a WHERE clause cannot match, and
// lets readers shard a single large file across cores.
//
// Usage:
//
//	cali-index profile.cali [more.cali ...]          build indexes
//	cali-index -block 512 profile.cali               build with 512-record blocks
//	cali-index -inspect -v profile.cali              print index contents
//	cali-index -verify profile.cali                  check freshness + full content hash
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"

	"caligo/internal/calformat"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cali-index:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cali-index", flag.ContinueOnError)
	inspect := fs.Bool("inspect", false, "print existing indexes instead of building")
	verbose := fs.Bool("v", false, "with -inspect: also print per-block zone maps")
	verify := fs.Bool("verify", false, "verify existing indexes (freshness and full content hash)")
	block := fs.Int("block", 0, "records per block (0 = default)")
	distinct := fs.Int("distinct", 0, "max distinct strings tracked per zone (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no input files")
	}
	if *inspect && *verify {
		return fmt.Errorf("-inspect and -verify are mutually exclusive")
	}
	for _, fn := range files {
		var err error
		switch {
		case *inspect:
			err = inspectFile(w, fn, *verbose)
		case *verify:
			err = verifyFile(w, fn)
		default:
			err = buildFile(w, fn, calformat.IndexOptions{BlockRecords: *block, MaxDistinct: *distinct})
		}
		if err != nil {
			return fmt.Errorf("%s: %w", fn, err)
		}
	}
	return nil
}

func buildFile(w io.Writer, fn string, opt calformat.IndexOptions) error {
	idx, err := calformat.BuildFileIndex(fn, opt)
	if err != nil {
		return err
	}
	if err := calformat.WriteIndexFile(fn, idx); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: indexed %d records in %d blocks (%d attributes) -> %s\n",
		fn, idx.Records, len(idx.Blocks), len(idx.Attrs), calformat.IndexPath(fn))
	return nil
}

func inspectFile(w io.Writer, fn string, verbose bool) error {
	idx, err := calformat.ReadIndexFile(calformat.IndexPath(fn))
	if err != nil {
		return err
	}
	state := "fresh"
	if _, lerr := calformat.LoadIndex(fn); lerr != nil {
		switch {
		case errors.Is(lerr, fs.ErrNotExist):
			state = "data file missing"
		case errors.Is(lerr, calformat.ErrIndexStale):
			state = "STALE (data file changed; queries fall back to full scans)"
		default:
			state = fmt.Sprintf("unusable: %v", lerr)
		}
	}
	fmt.Fprintf(w, "%s:\n", calformat.IndexPath(fn))
	fmt.Fprintf(w, "  version: %d   state: %s\n", idx.Version, state)
	fmt.Fprintf(w, "  file size: %d bytes   records: %d   entries: %d   tree nodes: %d   globals: %d\n",
		idx.FileSize, idx.Records, idx.Entries, idx.TreeNodes, idx.Globals)
	fmt.Fprintf(w, "  blocks: %d (target %d records/block)\n", len(idx.Blocks), idx.BlockTarget)
	fmt.Fprintf(w, "  %-32s %-8s %10s\n", "attribute", "type", "entries")
	for _, a := range idx.Attrs {
		fmt.Fprintf(w, "  %-32s %-8s %10d\n", a.Name, a.Type.String(), a.Entries)
	}
	if !verbose {
		return nil
	}
	for bi := range idx.Blocks {
		b := &idx.Blocks[bi]
		fmt.Fprintf(w, "  block %d: offset=%d len=%d records=%d meta-lines=%d\n",
			bi, b.Offset, b.Length, b.Records, b.MetaLines)
		for _, z := range b.Zones {
			name := idx.Attrs[z.Attr].Name
			switch {
			case z.HasNum:
				fmt.Fprintf(w, "    %-30s count=%d range=[%g, %g]\n", name, z.Count, z.Min, z.Max)
			case z.Overflow:
				fmt.Fprintf(w, "    %-30s count=%d strings=(overflow)\n", name, z.Count)
			case len(z.Strs) > 0:
				fmt.Fprintf(w, "    %-30s count=%d strings=%q\n", name, z.Count, z.Strs)
			default:
				fmt.Fprintf(w, "    %-30s count=%d\n", name, z.Count)
			}
		}
	}
	return nil
}

func verifyFile(w io.Writer, fn string) error {
	idx, err := calformat.VerifyIndex(fn)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: OK (%d records, %d blocks, full hash verified)\n",
		fn, idx.Records, len(idx.Blocks))
	return nil
}
