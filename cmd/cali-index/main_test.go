package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/internal/apps/paradis"
	"caligo/internal/calformat"
)

func dataset(t *testing.T, ranks int) []string {
	t.Helper()
	dir := t.TempDir()
	cfg := paradis.Config{Kernels: 3, MPIFunctions: 2, Iterations: 4, ExtraRecords: 2}
	paths, err := paradis.GenerateDir(dir, ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestBuildInspectVerify(t *testing.T) {
	paths := dataset(t, 2)

	var sb strings.Builder
	if err := run(append([]string{"-block", "8"}, paths...), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "indexed 22 records") {
		t.Errorf("build output:\n%s", sb.String())
	}
	for _, p := range paths {
		if _, err := os.Stat(calformat.IndexPath(p)); err != nil {
			t.Errorf("sidecar missing for %s: %v", p, err)
		}
	}

	sb.Reset()
	if err := run([]string{"-inspect", "-v", paths[0]}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, needle := range []string{"state: fresh", "records: 22", "target 8 records/block", "kernel", "block 0:"} {
		if !strings.Contains(out, needle) {
			t.Errorf("inspect output missing %q:\n%s", needle, out)
		}
	}

	sb.Reset()
	if err := run([]string{"-verify", paths[0]}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "OK") {
		t.Errorf("verify output:\n%s", sb.String())
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	paths := dataset(t, 1)
	var sb strings.Builder
	if err := run(paths, &sb); err != nil {
		t.Fatal(err)
	}
	// flip one byte mid-file: size unchanged, quick hash may or may not
	// notice depending on the window, but -verify's full hash must
	b, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(paths[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", paths[0]}, &sb); err == nil {
		t.Error("-verify accepted a tampered data file")
	}
}

func TestInspectReportsStale(t *testing.T) {
	paths := dataset(t, 1)
	var sb strings.Builder
	if err := run(paths, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(paths[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("__rec=globals,attr=0,data=x\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-inspect", paths[0]}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "STALE") {
		t.Errorf("inspect did not flag staleness:\n%s", sb.String())
	}
}

func TestNoArgs(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("no-args run succeeded")
	}
	if err := run([]string{"-inspect", "-verify", filepath.Join(t.TempDir(), "x.cali")}, &strings.Builder{}); err == nil {
		t.Error("-inspect -verify accepted together")
	}
}
