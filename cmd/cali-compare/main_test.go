package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/caliper"
)

// writeProfile records a small profile with adjustable kernel durations.
func writeProfile(t *testing.T, path string, durations map[string]int64) {
	t.Helper()
	ch, err := caliper.NewChannel(caliper.Config{
		"services":          "event,timer,aggregate,recorder",
		"timer.source":      "virtual",
		"aggregate.key":     "kernel",
		"aggregate.ops":     "count,sum(time.duration)",
		"recorder.filename": path,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	for kernel, dur := range durations {
		th.Begin("kernel", kernel)
		th.AdvanceVirtualTime(dur)
		th.End("kernel")
	}
	if err := ch.FlushAndWrite(); err != nil {
		t.Fatal(err)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.cali")
	candPath := filepath.Join(dir, "cand.cali")
	writeProfile(t, basePath, map[string]int64{"solver": 1000, "io": 500, "gone-kernel": 100})
	writeProfile(t, candPath, map[string]int64{"solver": 2000, "io": 500, "new-kernel": 42})

	var sb strings.Builder
	err := run([]string{
		"-q", "AGGREGATE sum(sum#time.duration) GROUP BY kernel",
		"-metric", "sum#sum#time.duration",
		basePath, "--", candPath,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "kernel=solver") || !strings.Contains(out, "+100.0%") {
		t.Errorf("solver regression not reported:\n%s", out)
	}
	if !strings.Contains(out, "kernel=io") || !strings.Contains(out, "+0.0%") {
		t.Errorf("stable kernel missing:\n%s", out)
	}
	if !strings.Contains(out, "new-kernel") || !strings.Contains(out, "new") {
		t.Errorf("new group not flagged:\n%s", out)
	}
	if !strings.Contains(out, "gone-kernel") || !strings.Contains(out, "gone") {
		t.Errorf("disappeared group not flagged:\n%s", out)
	}
}

func TestCompareThreshold(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.cali")
	candPath := filepath.Join(dir, "cand.cali")
	writeProfile(t, basePath, map[string]int64{"a": 1000, "b": 1000})
	writeProfile(t, candPath, map[string]int64{"a": 1010, "b": 2000})

	var sb strings.Builder
	err := run([]string{
		"-q", "AGGREGATE sum(sum#time.duration) GROUP BY kernel",
		"-metric", "sum#sum#time.duration",
		"-threshold", "50",
		basePath, "--", candPath,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "kernel=a") {
		t.Errorf("below-threshold group reported:\n%s", out)
	}
	if !strings.Contains(out, "kernel=b") {
		t.Errorf("above-threshold group missing:\n%s", out)
	}
}

func TestCompareErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-q", "AGGREGATE count", "a.cali"}, &sb); err == nil {
		t.Error("missing -metric and separator should error")
	}
	if err := run([]string{"-q", "AGGREGATE count", "-metric", "x", "a.cali"}, &sb); err == nil {
		t.Error("missing -- separator should error")
	}
	missing := filepath.Join(t.TempDir(), "no.cali")
	if err := run([]string{"-q", "AGGREGATE count", "-metric", "aggregate.count",
		missing, "--", missing}, &sb); err == nil {
		t.Error("missing files should error")
	}
	_ = os.Remove(missing)
}
