// Command cali-compare compares two profile datasets under the same
// aggregation query and reports per-group changes — the regression-check
// workflow over .cali profiles (run A = baseline, run B = candidate).
//
// Usage:
//
//	cali-compare -q "AGGREGATE sum(time.duration) GROUP BY kernel" \
//	    -metric sum#time.duration baseline/*.cali -- candidate/*.cali
//
// Output: one row per group with the baseline value, candidate value,
// and relative change, ordered by absolute change.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"caligo/calql"
	"caligo/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cali-compare:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cali-compare", flag.ContinueOnError)
	queryText := fs.String("q", "", "aggregation query applied to both datasets (required)")
	metric := fs.String("metric", "", "result column to compare (required, e.g. sum#time.duration)")
	threshold := fs.Float64("threshold", 0, "only report groups changing by at least this percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryText == "" || *metric == "" {
		return fmt.Errorf("-q and -metric are required")
	}
	baseline, candidate, err := splitFileSets(fs.Args())
	if err != nil {
		return err
	}

	base, err := groupValues(*queryText, *metric, baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cand, err := groupValues(*queryText, *metric, candidate)
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}

	type diff struct {
		group      string
		base, cand float64
		pct        float64 // relative change in percent; ±Inf for new/gone
	}
	var diffs []diff
	seen := map[string]bool{}
	for g, b := range base {
		seen[g] = true
		c, ok := cand[g]
		d := diff{group: g, base: b, cand: c}
		switch {
		case !ok || c == 0 && b == 0:
			d.pct = math.Inf(-1) // group disappeared
			if !ok {
				d.cand = math.NaN()
			}
		case b == 0:
			d.pct = math.Inf(1)
		default:
			d.pct = (c - b) / b * 100
		}
		diffs = append(diffs, d)
	}
	for g, c := range cand {
		if !seen[g] {
			diffs = append(diffs, diff{group: g, base: math.NaN(), cand: c, pct: math.Inf(1)})
		}
	}
	sort.Slice(diffs, func(i, j int) bool {
		ai, aj := math.Abs(diffs[i].pct), math.Abs(diffs[j].pct)
		if ai != aj {
			return ai > aj
		}
		return diffs[i].group < diffs[j].group
	})

	fmt.Fprintf(w, "%-40s %14s %14s %10s\n", "group", "baseline", "candidate", "change")
	reported := 0
	for _, d := range diffs {
		if !math.IsInf(d.pct, 0) && math.Abs(d.pct) < *threshold {
			continue
		}
		change := fmt.Sprintf("%+.1f%%", d.pct)
		switch {
		case math.IsNaN(d.cand):
			change = "gone"
		case math.IsNaN(d.base):
			change = "new"
		case math.IsInf(d.pct, 1):
			change = "new"
		case math.IsInf(d.pct, -1):
			change = "gone"
		}
		fmt.Fprintf(w, "%-40s %14s %14s %10s\n",
			d.group, fmtVal(d.base), fmtVal(d.cand), change)
		reported++
	}
	fmt.Fprintf(w, "\n%d of %d groups reported (threshold %.1f%%)\n",
		reported, len(diffs), *threshold)
	return nil
}

func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.6g", v)
}

// splitFileSets splits "base... -- cand..." argument lists.
func splitFileSets(args []string) (baseline, candidate []string, err error) {
	sep := -1
	for i, a := range args {
		if a == "--" {
			sep = i
			break
		}
	}
	if sep <= 0 || sep == len(args)-1 {
		return nil, nil, fmt.Errorf("usage: cali-compare -q ... -metric ... baseline.cali [...] -- candidate.cali [...]")
	}
	return args[:sep], args[sep+1:], nil
}

// groupValues runs the query over files and maps each result group (all
// non-metric entries, rendered) to its metric value.
func groupValues(queryText, metric string, files []string) (map[string]float64, error) {
	rs, err := calql.QueryFiles(queryText, files)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, row := range rs.Rows {
		v, ok := row.GetByName(metric)
		if !ok {
			continue
		}
		out[groupKey(row, metric)] = v.AsFloat()
	}
	return out, nil
}

// groupKey renders a row's identity: every entry except the metric columns.
func groupKey(row snapshot.FlatRecord, metric string) string {
	var parts []string
	for _, e := range row {
		name := e.Attr.Name()
		if name == metric || strings.Contains(name, "#") || name == "aggregate.count" {
			continue
		}
		parts = append(parts, e.String())
	}
	if len(parts) == 0 {
		return "(total)"
	}
	return strings.Join(parts, ",")
}
