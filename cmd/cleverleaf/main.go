// Command cleverleaf runs the instrumented CleverLeaf proxy application
// (the workload of the paper's overhead study and case study) and writes
// per-rank .cali profiles.
//
// Usage:
//
//	cleverleaf -ranks 18 -timesteps 100 -out profiles/ \
//	    -key kernel,mpi.function,mpi.rank -ops "count,sum(time.duration)"
//
// The output directory then holds one profile per emulated MPI process,
// ready for cali-query.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"caligo/caliper"
	"caligo/internal/apps/cleverleaf"
	"caligo/internal/calformat"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cleverleaf:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cleverleaf", flag.ContinueOnError)
	ranks := fs.Int("ranks", 18, "emulated MPI ranks")
	steps := fs.Int("timesteps", 100, "main loop iterations")
	levels := fs.Int("levels", 3, "AMR refinement levels")
	work := fs.Float64("workscale", 1.0, "kernel work multiplier")
	outDir := fs.String("out", "cleverleaf-profiles", "output directory for per-rank .cali files")
	key := fs.String("key", "function,annotation,amr.level,kernel,iteration#mainloop,mpi.rank,mpi.function",
		"on-line aggregation key (GROUP BY attributes)")
	ops := fs.String("ops", "count,sum(time.duration)", "on-line aggregation operators")
	mode := fs.String("mode", "event", "snapshot collection: event | sample | trace")
	sampleHz := fs.Float64("hz", 100, "sampling frequency for -mode sample")
	virtual := fs.Bool("virtual", false, "discrete-event mode (deterministic virtual time)")
	threads := fs.Int("threads", 1, "worker threads per rank (adds a thread.id dimension)")
	metrics := fs.Bool("metrics", false, "add the metrics service: write the library's own telemetry into each profile")
	index := fs.Bool("index", false, "also write sidecar block indexes (<file>.cali.idx) for the per-rank profiles")
	showStats := fs.Bool("stats", false, "print the internal telemetry report after the run (to stderr)")
	debugAddr := fs.String("debug", "", "serve the expvar/pprof/telemetry debug endpoint on this address during the run")
	traceOut := fs.String("trace", "", "write spans of the run as Chrome trace-event JSON to this file (view in Perfetto)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showStats {
		telemetry.Enable()
		defer telemetry.WriteReport(os.Stderr)
	}
	if *traceOut != "" {
		trace.Enable()
	}
	if *debugAddr != "" {
		telemetry.Enable() // a scrape of all-zero metrics helps nobody
		srv, err := caliper.ServeDebug(*debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/metrics\n", srv.Addr())
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	timerSource := "real"
	if *virtual {
		timerSource = "virtual"
	}
	channels := make([]*caliper.Channel, *ranks)
	for r := range channels {
		cfg := caliper.Config{
			"aggregate.key":     *key,
			"aggregate.ops":     *ops,
			"timer.source":      timerSource,
			"recorder.filename": filepath.Join(*outDir, fmt.Sprintf("rank-%04d.cali", r)),
		}
		switch *mode {
		case "event":
			cfg["services"] = "event,timer,aggregate,recorder"
		case "sample":
			cfg["services"] = "sampler,timer,aggregate,recorder"
			cfg["sampler.frequency"] = fmt.Sprintf("%g", *sampleHz)
		case "trace":
			cfg["services"] = "event,timer,trace,recorder"
		default:
			return fmt.Errorf("unknown mode %q (want event, sample, or trace)", *mode)
		}
		if *metrics {
			cfg["services"] += ",metrics"
			cfg["channel.name"] = fmt.Sprintf("rank-%d", r)
		}
		ch, err := caliper.NewChannel(cfg)
		if err != nil {
			return err
		}
		channels[r] = ch
	}

	appCfg := cleverleaf.Config{
		Ranks:          *ranks,
		Timesteps:      *steps,
		Levels:         *levels,
		WorkScale:      *work,
		VirtualTime:    *virtual,
		ThreadsPerRank: *threads,
	}
	err := cleverleaf.Run(appCfg, func(rank int) *caliper.Thread {
		th := channels[rank].Thread()
		// each emulated rank gets its own process lane in the trace export
		th.SetTraceRank(rank)
		return th
	})
	if err != nil {
		return err
	}

	var totalSnaps uint64
	for r, ch := range channels {
		totalSnaps += ch.Snapshots()
		if err := ch.FlushAndWrite(); err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if *index {
		for r := range channels {
			fn := filepath.Join(*outDir, fmt.Sprintf("rank-%04d.cali", r))
			idx, err := calformat.BuildFileIndex(fn, calformat.IndexOptions{})
			if err != nil {
				return fmt.Errorf("index rank %d: %w", r, err)
			}
			if err := calformat.WriteIndexFile(fn, idx); err != nil {
				return fmt.Errorf("index rank %d: %w", r, err)
			}
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := caliper.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote trace to %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	fmt.Printf("wrote %d per-rank profiles to %s (%d snapshots total)\n",
		*ranks, *outDir, totalSnaps)
	return nil
}
