package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/internal/calformat"
)

func TestRunEventMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	err := run([]string{"-ranks", "2", "-timesteps", "4", "-workscale", "0.05",
		"-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("files = %d, want 2", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "__rec=ctx") {
		t.Error("profile lacks records")
	}
}

func TestRunVirtualMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	err := run([]string{"-ranks", "2", "-timesteps", "4", "-virtual", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSampleMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	err := run([]string{"-ranks", "2", "-timesteps", "4", "-workscale", "0.05",
		"-mode", "sample", "-hz", "2000", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	err := run([]string{"-ranks", "1", "-timesteps", "2", "-workscale", "0.05",
		"-mode", "trace", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithIndex(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	err := run([]string{"-ranks", "2", "-timesteps", "4", "-workscale", "0.05",
		"-index", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"rank-0000.cali", "rank-0001.cali"} {
		idx, err := calformat.LoadIndex(filepath.Join(dir, r))
		if err != nil {
			t.Fatalf("%s: sidecar index unusable: %v", r, err)
		}
		if idx.Records == 0 {
			t.Errorf("%s: index covers zero records", r)
		}
	}
}

func TestBadMode(t *testing.T) {
	if err := run([]string{"-mode", "bogus", "-out", t.TempDir()}); err == nil {
		t.Error("bad mode should error")
	}
}
