// Command cali-cache inspects and maintains the per-file aggregate
// state cache that cali-query's -cache flag (or $CALIGO_CACHE) fills.
//
// Usage:
//
//	cali-cache [-dir DIR] inspect        # list entries: file, watermark, state size, age
//	cali-cache [-dir DIR] verify         # checksum every entry, remove broken ones
//	cali-cache [-dir DIR] [-max BYTES] gc  # evict oldest entries down to the size bound
//
// The directory defaults to $CALIGO_CACHE.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"caligo/internal/qcache"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cali-cache:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cali-cache", flag.ContinueOnError)
	dir := fs.String("dir", os.Getenv("CALIGO_CACHE"), "cache directory (default: $CALIGO_CACHE)")
	max := fs.Int64("max", 0, "gc: size bound in bytes (default: $CALIGO_CACHE_MAX or 256MiB)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cali-cache [-dir DIR] inspect|verify|gc\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("no cache directory: pass -dir or set $CALIGO_CACHE")
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one command: inspect, verify, or gc")
	}
	store, err := qcache.Open(*dir)
	if err != nil {
		return err
	}
	switch cmd := fs.Arg(0); cmd {
	case "inspect":
		return inspect(w, store)
	case "verify":
		total, removed, err := store.Verify()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %d entries, %d corrupt removed\n", store.Dir(), total, removed)
		return nil
	case "gc":
		if *max > 0 {
			store.SetMaxBytes(*max)
		}
		removed, freed, err := gc(store)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: evicted %d entries, freed %d bytes (bound %d)\n",
			store.Dir(), removed, freed, store.MaxBytes())
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func gc(store *qcache.Store) (int, int64, error) {
	removed, freed := store.GC()
	return removed, freed, nil
}

// inspect lists every entry: the data file it covers, the watermark and
// record count the cached state represents, the entry size, its age, and
// a short prefix of the query fingerprint.
func inspect(w io.Writer, store *qcache.Store) error {
	infos, err := store.Entries()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "FILE\tWATERMARK\tRECORDS\tSPANS\tENTRY BYTES\tAGE\tPLAN\n")
	var total int64
	bad := 0
	for _, info := range infos {
		if info.Err != nil {
			bad++
			fmt.Fprintf(tw, "%s\t-\t-\t-\t%d\t%s\t<%v>\n",
				info.Path, info.Size, age(info.Mtime), info.Err)
			continue
		}
		e := info.Entry
		total += info.Size
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%s\n",
			e.File, e.Watermark, e.Records, len(e.MetaSpans), info.Size,
			age(info.Mtime), planLabel(e.Plan))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d entries, %d bytes", len(infos), total)
	if bad > 0 {
		fmt.Fprintf(w, " (%d undecodable — run cali-cache verify)", bad)
	}
	fmt.Fprintln(w)
	return nil
}

func age(t time.Time) string {
	if t.IsZero() {
		return "-"
	}
	return time.Since(t).Truncate(time.Second).String()
}

// planLabel compresses the canonical fingerprint for the table.
func planLabel(plan string) string {
	const maxLen = 60
	if len(plan) > maxLen {
		return plan[:maxLen-3] + "..."
	}
	return plan
}
