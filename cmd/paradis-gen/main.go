// Command paradis-gen generates the synthetic ParaDiS-shaped dataset used
// by the paper's scalability study (Section V-C): one .cali file per rank,
// each a per-process time-series profile with 2174 snapshot records by
// default.
//
// Usage:
//
//	paradis-gen -ranks 256 -out dataset/
//	cali-query -parallel 256 -q "AGGREGATE sum(sum#time.duration), \
//	    sum(aggregate.count) GROUP BY kernel, mpi.function WHERE not(phase)" dataset/*.cali
package main

import (
	"flag"
	"fmt"
	"os"

	"caligo/internal/apps/paradis"
	"caligo/internal/calformat"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paradis-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paradis-gen", flag.ContinueOnError)
	ranks := fs.Int("ranks", 64, "number of per-rank dataset files")
	out := fs.String("out", "paradis-dataset", "output directory")
	kernels := fs.Int("kernels", 0, "kernel regions per file (0 = paper default: 60)")
	mpifns := fs.Int("mpi", 0, "MPI function regions per file (0 = paper default: 25)")
	iters := fs.Int("iterations", 0, "time-series iterations (0 = paper default: 25)")
	single := fs.String("single", "", "write all ranks into one multi-block .cali file at this path instead of one file per rank")
	index := fs.Bool("index", false, "also write sidecar block indexes (<file>.cali.idx)")
	block := fs.Int("block", 0, "records per index block (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := paradis.DefaultConfig()
	if *kernels > 0 {
		cfg.Kernels = *kernels
	}
	if *mpifns > 0 {
		cfg.MPIFunctions = *mpifns
	}
	if *iters > 0 {
		cfg.Iterations = *iters
	}
	iopt := calformat.IndexOptions{BlockRecords: *block}
	if *single != "" {
		records, err := paradis.WriteMerged(*single, *ranks, cfg, *index, iopt)
		if err != nil {
			return err
		}
		indexed := ""
		if *index {
			indexed = fmt.Sprintf(", index at %s", calformat.IndexPath(*single))
		}
		fmt.Printf("wrote %d ranks (%d records) to %s%s\n", *ranks, records, *single, indexed)
		fmt.Printf("evaluation query:\n  %s\n", paradis.EvaluationQuery)
		return nil
	}
	var paths []string
	var err error
	if *index {
		paths, err = paradis.GenerateDirIndexed(*out, *ranks, cfg, iopt)
	} else {
		paths, err = paradis.GenerateDir(*out, *ranks, cfg)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d files to %s (%d records each, %d groups under the evaluation query)\n",
		len(paths), *out, cfg.RecordsPerFile(), cfg.Groups())
	fmt.Printf("evaluation query:\n  %s\n", paradis.EvaluationQuery)
	return nil
}
