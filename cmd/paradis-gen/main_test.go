package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	err := run([]string{"-ranks", "3", "-out", dir,
		"-kernels", "4", "-mpi", "2", "-iterations", "3"})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files = %d, want 3", len(entries))
	}
}

func TestDefaults(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run([]string{"-ranks", "1", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "rank-0000.cali"))
	if err != nil || fi.Size() == 0 {
		t.Fatalf("default dataset missing: %v", err)
	}
}
