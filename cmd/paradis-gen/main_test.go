package main

import (
	"os"
	"path/filepath"
	"testing"

	"caligo/internal/apps/paradis"
	"caligo/internal/calformat"
)

func TestGenerate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	err := run([]string{"-ranks", "3", "-out", dir,
		"-kernels", "4", "-mpi", "2", "-iterations", "3"})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files = %d, want 3", len(entries))
	}
}

func TestDefaults(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run([]string{"-ranks", "1", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "rank-0000.cali"))
	if err != nil || fi.Size() == 0 {
		t.Fatalf("default dataset missing: %v", err)
	}
}

func TestSingleIndexedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "merged.cali")
	err := run([]string{"-ranks", "4", "-single", path, "-index", "-block", "32",
		"-kernels", "4", "-mpi", "2", "-iterations", "3"})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := calformat.VerifyIndex(path)
	if err != nil {
		t.Fatalf("sidecar index did not verify: %v", err)
	}
	cfg := paradis.DefaultConfig()
	cfg.Kernels, cfg.MPIFunctions, cfg.Iterations = 4, 2, 3
	wantRecs := 4 * cfg.RecordsPerFile()
	if int(idx.Records) != wantRecs {
		t.Errorf("index records = %d, want %d", idx.Records, wantRecs)
	}
	if len(idx.Blocks) < 3 {
		t.Errorf("blocks = %d, want multiple 32-record blocks", len(idx.Blocks))
	}
	if idx.BlockTarget != 32 {
		t.Errorf("block target = %d, want 32", idx.BlockTarget)
	}
}

func TestPerRankIndexes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := run([]string{"-ranks", "2", "-out", dir, "-index",
		"-kernels", "2", "-mpi", "1", "-iterations", "2"}); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"rank-0000.cali", "rank-0001.cali"} {
		if _, err := calformat.LoadIndex(filepath.Join(dir, r)); err != nil {
			t.Errorf("%s: %v", r, err)
		}
	}
}
