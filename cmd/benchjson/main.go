// Command benchjson converts `go test -bench` text output on stdin into
// a machine-readable JSON document on stdout, so benchmark results can be
// committed and diffed over time (see `make bench-json`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/trace/ | benchjson > BENCH_trace.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the output document: run metadata plus the result lines.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parse(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" header with -v
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8  1000000  125.4 ns/op  16 B/op  1 allocs/op
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !hasUnit(fields, "ns/op") {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// remaining fields come in value/unit pairs
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.NsPerOp = f
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return b, true
}

func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
