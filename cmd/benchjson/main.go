// Command benchjson converts `go test -bench` text output on stdin into
// a machine-readable JSON document on stdout, so benchmark results can be
// committed and diffed over time (see `make bench-json`), and compares two
// such documents (see `make bench-compare`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/trace/ | benchjson > BENCH_trace.json
//	benchjson -compare [-threshold 0.15] old.json new.json [old2.json new2.json ...]
//
// In compare mode the benchmarks are matched by name, the ns/op and
// allocs/op deltas are printed, and the exit status is non-zero when any
// benchmark regressed by more than the threshold (default 15%) — so perf
// claims in PRs are checkable instead of anecdotal. Multiple old/new
// pairs gate together under one exit status (`make bench-compare` passes
// both the query and the trace snapshots, so tracing/telemetry overhead
// regressions fail as loudly as engine regressions).
//
// With -calibrate BENCH in compare mode, the named benchmark serves as a
// host-speed reference: every old ns/op is scaled by the reference's
// new/old ratio before the delta is computed, so snapshots taken on a
// faster or more idle machine don't flag untouched benchmarks as
// regressed (or mask real regressions on a machine that sped up). Only
// ns/op is calibrated — allocs/op is machine-independent. If the
// reference benchmark is missing from either file, the pair compares
// uncalibrated with a warning.
//
// Outside compare mode, -calibrate switches to noise-floor calibration:
//
//	benchjson -calibrate noise.json run1.json run2.json [run3.json ...]
//	benchjson -compare -noise noise.json old.json new.json
//
// Calibration takes two or more repeated runs of the same suite on the
// same tree and records each benchmark's fractional ns/op spread — its
// measured noise floor on this host. Compare mode with -noise then (a)
// removes uniform host drift by rescaling old ns/op by the median
// new/old ratio across all shared benchmarks (the +20-50% whole-suite
// shifts a loaded host produces), and (b) raises each benchmark's
// regression threshold to at least its recorded floor. See
// docs/OBSERVABILITY.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the output document: run metadata plus the result lines.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compareMode := flag.Bool("compare", false, "compare two BENCH JSON files instead of converting stdin")
	threshold := flag.Float64("threshold", 0.15, "max allowed fractional regression in compare mode")
	calibrate := flag.String("calibrate", "", "compare mode: reference benchmark for host-speed scaling; otherwise: output path for a noise-floor file built from the repeated-run report arguments")
	noisePath := flag.String("noise", "", "compare mode: apply a -calibrate-produced noise-floor file (median host-drift rescale + per-benchmark thresholds)")
	flag.Parse()
	if *compareMode {
		if flag.NArg() < 2 || flag.NArg()%2 != 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs old.json new.json pairs")
			os.Exit(2)
		}
		var noise *NoiseDoc
		if *noisePath != "" {
			var err error
			noise, err = loadNoise(*noisePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(2)
			}
		}
		anyRegressed := false
		for i := 0; i < flag.NArg(); i += 2 {
			oldPath, newPath := flag.Arg(i), flag.Arg(i+1)
			if flag.NArg() > 2 {
				fmt.Printf("== %s vs %s ==\n", oldPath, newPath)
			}
			regressed, err := compareFilesNoise(os.Stdout, oldPath, newPath, *threshold, *calibrate, noise)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(2)
			}
			anyRegressed = anyRegressed || regressed
		}
		if anyRegressed {
			os.Exit(1)
		}
		return
	}
	if *calibrate != "" {
		if err := calibrateNoise(os.Stdout, *calibrate, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// compareFiles diffs two BENCH JSON reports and reports whether any
// benchmark present in both regressed by more than threshold on ns/op or
// allocs/op. Benchmarks present in only one file are listed but never
// count as regressions (benchmarks come and go across PRs).
func compareFiles(w io.Writer, oldPath, newPath string, threshold float64) (bool, error) {
	return compareFilesCalibrated(w, oldPath, newPath, threshold, "")
}

// compareFilesCalibrated is compareFiles with an optional host-speed
// reference benchmark: when calibrate names a benchmark present in both
// reports, every old ns/op is scaled by the reference's new/old ratio
// before deltas are computed (the reference itself then shows ~0% by
// construction, so it must be a benchmark this PR does not touch).
func compareFilesCalibrated(w io.Writer, oldPath, newPath string, threshold float64, calibrate string) (bool, error) {
	return compareFilesNoise(w, oldPath, newPath, threshold, calibrate, nil)
}

// compareFilesNoise additionally applies a noise-floor document: uniform
// host drift is removed by rescaling old ns/op by the median new/old
// ratio across shared benchmarks (skipped when a -calibrate reference
// already supplies the scale), and each benchmark's ns/op regression
// threshold is raised to at least its recorded floor. allocs/op keeps
// the base threshold — allocation counts don't jitter with host load.
func compareFilesNoise(w io.Writer, oldPath, newPath string, threshold float64, calibrate string, noise *NoiseDoc) (bool, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	nsScale := 1.0
	if calibrate != "" {
		ref, okOld := oldBy[calibrate]
		var newRef Benchmark
		okNew := false
		for _, b := range newRep.Benchmarks {
			if b.Name == calibrate {
				newRef, okNew = b, true
				break
			}
		}
		if okOld && okNew && ref.NsPerOp > 0 && newRef.NsPerOp > 0 {
			nsScale = newRef.NsPerOp / ref.NsPerOp
			fmt.Fprintf(w, "calibrated on %s: host ratio %.3f (old ns/op scaled accordingly)\n",
				calibrate, nsScale)
		} else {
			fmt.Fprintf(w, "warning: calibration benchmark %q missing or zero in %s/%s; comparing uncalibrated\n",
				calibrate, oldPath, newPath)
		}
	} else if noise != nil {
		if m, ok := medianRatio(oldBy, newRep); ok {
			nsScale = m
			fmt.Fprintf(w, "noise-calibrated: median host drift %.3f (old ns/op scaled accordingly)\n", m)
		}
	}
	fmt.Fprintf(w, "%-34s %14s %14s %8s   %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	regressed := false
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-34s %14s %14.1f %8s   %10s %10d %8s  (new)\n",
				nb.Name, "-", nb.NsPerOp, "-", "-", nb.AllocsPerOp, "-")
			continue
		}
		delete(oldBy, nb.Name)
		nsDelta := frac(ob.NsPerOp*nsScale, nb.NsPerOp)
		allocDelta := frac(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		nsThreshold := threshold
		if noise != nil {
			if floor, ok := noise.Benchmarks[nb.Name]; ok && floor > nsThreshold {
				nsThreshold = floor
			}
		}
		mark := ""
		if nsDelta > nsThreshold || allocDelta > threshold {
			mark = "  REGRESSED"
			regressed = true
		}
		fmt.Fprintf(w, "%-34s %14.1f %14.1f %+7.1f%%   %10d %10d %+7.1f%%%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, nsDelta*100,
			ob.AllocsPerOp, nb.AllocsPerOp, allocDelta*100, mark)
	}
	for name := range oldBy {
		fmt.Fprintf(w, "%-34s  (removed)\n", name)
	}
	if regressed {
		fmt.Fprintf(w, "FAIL: regression above %.0f%% threshold\n", threshold*100)
	}
	return regressed, nil
}

// frac returns the fractional change from old to new. A metric appearing
// out of nowhere (old == 0, new > 0) counts as a full regression; 0 → 0
// is no change.
func frac(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &Report{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func run(in io.Reader, out io.Writer) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func parse(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" header with -v
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8  1000000  125.4 ns/op  16 B/op  1 allocs/op
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !hasUnit(fields, "ns/op") {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// remaining fields come in value/unit pairs
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Benchmark{}, false
			}
			b.NsPerOp = f
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return b, true
}

func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
