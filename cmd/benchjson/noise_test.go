package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildNoise(t *testing.T) {
	runs := []*Report{
		{Benchmarks: []Benchmark{
			{Name: "Stable", NsPerOp: 100},
			{Name: "Jittery", NsPerOp: 100},
			{Name: "Flaky", NsPerOp: 50},
		}},
		{Benchmarks: []Benchmark{
			{Name: "Stable", NsPerOp: 102},
			{Name: "Jittery", NsPerOp: 140},
			// Flaky missing from this run: no floor must be recorded
		}},
		{Benchmarks: []Benchmark{
			{Name: "Stable", NsPerOp: 101},
			{Name: "Jittery", NsPerOp: 120},
		}},
	}
	doc := buildNoise(runs)
	if doc.Runs != 3 {
		t.Fatalf("Runs = %d, want 3", doc.Runs)
	}
	if got := doc.Benchmarks["Stable"]; got < 0.019 || got > 0.021 {
		t.Errorf("Stable floor = %v, want ~0.02", got)
	}
	if got := doc.Benchmarks["Jittery"]; got < 0.39 || got > 0.41 {
		t.Errorf("Jittery floor = %v, want ~0.40", got)
	}
	if _, ok := doc.Benchmarks["Flaky"]; ok {
		t.Error("Flaky present in only 2/3 runs must not get a floor")
	}
}

// TestCompareWithNoiseFloor pins the satellite behaviour: a noise-floor
// file produced by calibration mode stops compare from flagging (a) a
// uniform host slowdown across the whole suite and (b) a benchmark
// within its measured per-benchmark jitter — while a real regression
// above both still fails.
func TestCompareWithNoiseFloor(t *testing.T) {
	dir := t.TempDir()

	// calibration: three repeated runs where "Jittery" swings ±40%
	run1 := writeReport(t, dir, "run1.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":100,"allocs_per_op":1},
		{"name":"B","iterations":10,"ns_per_op":200,"allocs_per_op":1},
		{"name":"C","iterations":10,"ns_per_op":300,"allocs_per_op":1},
		{"name":"Jittery","iterations":10,"ns_per_op":100,"allocs_per_op":1}]}`)
	run2 := writeReport(t, dir, "run2.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":101,"allocs_per_op":1},
		{"name":"B","iterations":10,"ns_per_op":202,"allocs_per_op":1},
		{"name":"C","iterations":10,"ns_per_op":303,"allocs_per_op":1},
		{"name":"Jittery","iterations":10,"ns_per_op":140,"allocs_per_op":1}]}`)
	noisePath := filepath.Join(dir, "noise.json")
	var sb strings.Builder
	if err := calibrateNoise(&sb, noisePath, []string{run1, run2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "noisiest: Jittery") {
		t.Errorf("calibration summary missing noisiest benchmark:\n%s", sb.String())
	}
	noise, err := loadNoise(noisePath)
	if err != nil {
		t.Fatal(err)
	}

	old := writeReport(t, dir, "old.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":100,"allocs_per_op":1},
		{"name":"B","iterations":10,"ns_per_op":200,"allocs_per_op":1},
		{"name":"C","iterations":10,"ns_per_op":300,"allocs_per_op":1},
		{"name":"Jittery","iterations":10,"ns_per_op":100,"allocs_per_op":1}]}`)

	// the whole suite drifted +30% (loaded host) and Jittery additionally
	// swung +35% of its own jitter — all inside the noise model
	drift := writeReport(t, dir, "new_drift.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":130,"allocs_per_op":1},
		{"name":"B","iterations":10,"ns_per_op":260,"allocs_per_op":1},
		{"name":"C","iterations":10,"ns_per_op":390,"allocs_per_op":1},
		{"name":"Jittery","iterations":10,"ns_per_op":175,"allocs_per_op":1}]}`)
	regressed, err := compareFilesNoise(&strings.Builder{}, old, drift, 0.15, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("without the noise file, +30% uniform drift should flag")
	}
	sb.Reset()
	regressed, err = compareFilesNoise(&sb, old, drift, 0.15, "", noise)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("noise-calibrated compare flagged host drift + in-floor jitter:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "noise-calibrated") {
		t.Errorf("output missing noise-calibration note:\n%s", sb.String())
	}

	// a real regression: B got 2x slower on top of the same host drift
	realSlow := writeReport(t, dir, "new_real.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":130,"allocs_per_op":1},
		{"name":"B","iterations":10,"ns_per_op":520,"allocs_per_op":1},
		{"name":"C","iterations":10,"ns_per_op":390,"allocs_per_op":1},
		{"name":"Jittery","iterations":10,"ns_per_op":130,"allocs_per_op":1}]}`)
	regressed, err = compareFilesNoise(&strings.Builder{}, old, realSlow, 0.15, "", noise)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("noise calibration masked a real 2x regression")
	}
}

func TestCalibrateNoiseNeedsTwoRuns(t *testing.T) {
	dir := t.TempDir()
	one := writeReport(t, dir, "one.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":100,"allocs_per_op":1}]}`)
	err := calibrateNoise(&strings.Builder{}, filepath.Join(dir, "noise.json"), []string{one})
	if err == nil {
		t.Fatal("expected error for a single calibration run")
	}
}
