package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// NoiseDoc is a noise-floor file produced by calibration mode
// (`benchjson -calibrate noise.json run1.json run2.json ...`): for each
// benchmark, the fractional ns/op spread observed across repeated runs of
// the same suite on the same tree. Compare mode (-noise) raises a
// benchmark's regression threshold to at least its measured floor, so
// benchmarks that are inherently jittery on this host stop flagging
// spuriously while stable ones keep the tight default.
type NoiseDoc struct {
	Runs       int                `json:"runs"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// buildNoise computes per-benchmark noise floors from repeated runs: the
// fractional spread (max-min)/min of ns/op across runs, for benchmarks
// present in every run. Benchmarks missing from any run are skipped —
// a floor measured from fewer runs than requested would understate noise.
func buildNoise(reports []*Report) *NoiseDoc {
	doc := &NoiseDoc{Runs: len(reports), Benchmarks: map[string]float64{}}
	if len(reports) == 0 {
		return doc
	}
	type span struct {
		min, max float64
		seen     int
	}
	spans := map[string]*span{}
	for _, rep := range reports {
		for _, b := range rep.Benchmarks {
			if b.NsPerOp <= 0 {
				continue
			}
			s, ok := spans[b.Name]
			if !ok {
				s = &span{min: b.NsPerOp, max: b.NsPerOp}
				spans[b.Name] = s
			}
			if b.NsPerOp < s.min {
				s.min = b.NsPerOp
			}
			if b.NsPerOp > s.max {
				s.max = b.NsPerOp
			}
			s.seen++
		}
	}
	for name, s := range spans {
		if s.seen != len(reports) || s.min <= 0 {
			continue
		}
		doc.Benchmarks[name] = (s.max - s.min) / s.min
	}
	return doc
}

// calibrateNoise runs calibration mode: load >= 2 repeated-run reports,
// compute the noise floors, and write the noise-floor file to outPath.
func calibrateNoise(w io.Writer, outPath string, runPaths []string) error {
	if len(runPaths) < 2 {
		return fmt.Errorf("-calibrate needs at least 2 repeated-run report files, got %d", len(runPaths))
	}
	reports := make([]*Report, 0, len(runPaths))
	for _, p := range runPaths {
		rep, err := loadReport(p)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	doc := buildNoise(reports)
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	worst, worstName := 0.0, ""
	for name, fl := range doc.Benchmarks {
		if fl > worst {
			worst, worstName = fl, name
		}
	}
	fmt.Fprintf(w, "wrote %s: noise floors for %d benchmarks from %d runs", outPath, len(doc.Benchmarks), doc.Runs)
	if worstName != "" {
		fmt.Fprintf(w, " (noisiest: %s at %.1f%%)", worstName, worst*100)
	}
	fmt.Fprintln(w)
	return nil
}

func loadNoise(path string) (*NoiseDoc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc := &NoiseDoc{}
	if err := json.NewDecoder(f).Decode(doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// medianRatio returns the median new/old ns/op ratio over benchmarks
// present in both reports (ok=false with fewer than 3 shared benchmarks —
// too few for the median to be robust against real regressions).
func medianRatio(oldBy map[string]Benchmark, newRep *Report) (float64, bool) {
	var ratios []float64
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok || ob.NsPerOp <= 0 || nb.NsPerOp <= 0 {
			continue
		}
		ratios = append(ratios, nb.NsPerOp/ob.NsPerOp)
	}
	if len(ratios) < 3 {
		return 1, false
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 1 {
		return ratios[mid], true
	}
	return (ratios[mid-1] + ratios[mid]) / 2, true
}
