package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":100,"allocs_per_op":50},
		{"name":"B","iterations":10,"ns_per_op":200,"allocs_per_op":0},
		{"name":"Gone","iterations":10,"ns_per_op":1,"allocs_per_op":1}]}`)

	// improvement + within-threshold noise: no regression
	newOK := writeReport(t, dir, "new_ok.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":20,"allocs_per_op":10},
		{"name":"B","iterations":10,"ns_per_op":210,"allocs_per_op":0},
		{"name":"Fresh","iterations":10,"ns_per_op":5,"allocs_per_op":2}]}`)
	var sb strings.Builder
	regressed, err := compareFiles(&sb, old, newOK, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("unexpected regression:\n%s", sb.String())
	}
	for _, want := range []string{"A", "B", "(new)", "Gone", "(removed)"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q:\n%s", want, sb.String())
		}
	}

	// ns/op regression beyond threshold
	newSlow := writeReport(t, dir, "new_slow.json", `{"benchmarks":[
		{"name":"A","iterations":10,"ns_per_op":130,"allocs_per_op":50}]}`)
	regressed, err = compareFiles(&strings.Builder{}, old, newSlow, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("30% ns/op regression not detected")
	}

	// allocs appearing where there were none counts as a regression
	newAllocs := writeReport(t, dir, "new_allocs.json", `{"benchmarks":[
		{"name":"B","iterations":10,"ns_per_op":200,"allocs_per_op":3}]}`)
	regressed, err = compareFiles(&strings.Builder{}, old, newAllocs, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("0 -> 3 allocs/op regression not detected")
	}
}

func TestCompareCalibrated(t *testing.T) {
	dir := t.TempDir()
	// the whole host slowed down 30%: every benchmark (incl. the untouched
	// reference "Ref") reports +30% ns/op
	old := writeReport(t, dir, "old.json", `{"benchmarks":[
		{"name":"Ref","iterations":10,"ns_per_op":1000,"allocs_per_op":5},
		{"name":"A","iterations":10,"ns_per_op":100,"allocs_per_op":50}]}`)
	slowHost := writeReport(t, dir, "new_slowhost.json", `{"benchmarks":[
		{"name":"Ref","iterations":10,"ns_per_op":1300,"allocs_per_op":5},
		{"name":"A","iterations":10,"ns_per_op":130,"allocs_per_op":50}]}`)

	// uncalibrated: the host slowdown is flagged as a regression
	regressed, err := compareFiles(&strings.Builder{}, old, slowHost, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("uncalibrated compare should flag the +30% host slowdown")
	}

	// calibrated on Ref: the uniform slowdown normalizes away
	var sb strings.Builder
	regressed, err = compareFilesCalibrated(&sb, old, slowHost, 0.15, "Ref")
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("calibrated compare flagged a pure host slowdown:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "calibrated on Ref") {
		t.Errorf("output missing calibration note:\n%s", sb.String())
	}

	// a real regression survives calibration: A got 2x slower on top of
	// the host slowdown
	realSlow := writeReport(t, dir, "new_realslow.json", `{"benchmarks":[
		{"name":"Ref","iterations":10,"ns_per_op":1300,"allocs_per_op":5},
		{"name":"A","iterations":10,"ns_per_op":260,"allocs_per_op":50}]}`)
	regressed, err = compareFilesCalibrated(&strings.Builder{}, old, realSlow, 0.15, "Ref")
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("calibration masked a real 2x regression")
	}

	// missing reference: warn and compare uncalibrated
	sb.Reset()
	regressed, err = compareFilesCalibrated(&sb, old, slowHost, 0.15, "NoSuch")
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("missing reference should fall back to uncalibrated compare")
	}
	if !strings.Contains(sb.String(), "warning") {
		t.Errorf("output missing fallback warning:\n%s", sb.String())
	}
}
