package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: caligo/internal/trace
cpu: AMD EPYC 7B13
BenchmarkTraceOverheadDisabled-8   	1000000000	         0.8052 ns/op	       0 B/op	       0 allocs/op
BenchmarkTraceOverheadEnabled-8    	 22328888	        53.17 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	caligo/internal/trace	2.541s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "caligo/internal/trace" {
		t.Errorf("metadata wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "TraceOverheadDisabled" || b.Procs != 8 {
		t.Errorf("name/procs wrong: %+v", b)
	}
	if b.Iterations != 1000000000 || b.NsPerOp != 0.8052 {
		t.Errorf("iters/ns wrong: %+v", b)
	}
	if b.AllocsPerOp != 0 || b.BytesPerOp != 0 {
		t.Errorf("mem stats wrong: %+v", b)
	}
	if rep.Benchmarks[1].NsPerOp != 53.17 {
		t.Errorf("second benchmark ns/op = %v", rep.Benchmarks[1].NsPerOp)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkX-4  100  12.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "X" || b.Iterations != 100 || b.NsPerOp != 12.5 {
		t.Errorf("parsed wrong: %+v", b)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	// with -v, bare "BenchmarkFoo" headers precede each result line
	rep, err := parse(strings.NewReader("BenchmarkFoo\nBenchmarkFoo-2  10  1.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Errorf("parsed %d benchmarks, want 1", len(rep.Benchmarks))
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleBenchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 2 {
		t.Errorf("round-tripped %d benchmarks, want 2", len(rep.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Error("empty input should error")
	}
}
