package main

import "testing"

func TestQuickFig4(t *testing.T) {
	if err := run([]string{"-quick", "-run", "fig4"}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMarkdown(t *testing.T) {
	if err := run([]string{"-quick", "-run", "fig8", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Error("unknown experiment id should error")
	}
}
