// Command experiments regenerates the paper's tables and figures
// (Figure 3, Table I, Figures 4-9) and prints each as text with shape
// checks against the paper's qualitative claims. With -markdown it emits
// the sections EXPERIMENTS.md records.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run fig4,fig8  # selected experiments
//	experiments -quick          # reduced sizes for a fast pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"caligo/internal/apps/cleverleaf"
	"caligo/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment ids ("+
		strings.Join(experiments.IDs(), ",")+") or 'all'")
	markdown := fs.Bool("markdown", false, "emit Markdown sections (for EXPERIMENTS.md)")
	quick := fs.Bool("quick", false, "reduced problem sizes for a fast pass")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	if *runList == "all" || *runList == "" {
		for _, id := range experiments.IDs() {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	overheadCfg := experiments.DefaultOverheadConfig()
	scalingCfg := experiments.DefaultScalingConfig()
	caseCfg := experiments.DefaultCaseStudyConfig()
	if *quick {
		overheadCfg.App = cleverleaf.Config{Ranks: 2, Timesteps: 15, Levels: 3, WorkScale: 0.4}
		overheadCfg.Runs = 1
		scalingCfg.RankCounts = []int{1, 4, 16, 64}
		caseCfg.App.Timesteps = 40
	}

	var reports []*experiments.Report
	emit := func(r *experiments.Report) {
		reports = append(reports, r)
		if *markdown {
			fmt.Println(r.Markdown())
		} else {
			fmt.Println(r.String())
		}
	}

	if want["listing1"] {
		rep, err := experiments.Listing1()
		if err != nil {
			return err
		}
		emit(rep)
	}
	// Figure 3 and Table I share one overhead study run.
	if want["fig3"] || want["table1"] {
		rows, err := experiments.RunOverheadStudy(overheadCfg)
		if err != nil {
			return err
		}
		if want["fig3"] {
			rep, err := experiments.Figure3FromRows(rows)
			if err != nil {
				return err
			}
			emit(rep)
		}
		if want["table1"] {
			emit(experiments.TableIFromRows(rows))
		}
	}
	if want["fig4"] {
		rep, err := experiments.Figure4(scalingCfg)
		if err != nil {
			return err
		}
		emit(rep)
	}
	type caseFig struct {
		id string
		fn func(experiments.CaseStudyConfig) (*experiments.Report, error)
	}
	for _, cf := range []caseFig{
		{"fig5", experiments.Figure5},
		{"fig6", experiments.Figure6},
		{"fig7", experiments.Figure7},
		{"fig8", experiments.Figure8},
		{"fig9", experiments.Figure9},
	} {
		if !want[cf.id] {
			continue
		}
		rep, err := cf.fn(caseCfg)
		if err != nil {
			return err
		}
		emit(rep)
	}

	if want["ablations"] {
		rep, err := experiments.Ablations()
		if err != nil {
			return err
		}
		emit(rep)
	}
	failed := 0
	for _, r := range reports {
		if !r.Passed() {
			failed++
		}
	}
	if len(reports) == 0 {
		return fmt.Errorf("no experiments selected (ids: %s)", strings.Join(experiments.IDs(), ", "))
	}
	fmt.Fprintf(os.Stderr, "%d experiments run, %d with failing shape checks\n",
		len(reports), failed)
	if failed > 0 {
		os.Exit(2)
	}
	return nil
}
