package main

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"caligo/caliper"
	"caligo/internal/obs"
	"caligo/internal/telemetry"
)

// TestCaliTopOnce runs a single-scrape -once pass against a live debug
// handler and checks the plain-text totals table carries the engine
// stats (no ANSI escapes, no second scrape).
func TestCaliTopOnce(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })
	obs.SampleRuntimeOnce()

	// a finished query so the table is non-empty
	aq := obs.BeginQuery("AGGREGATE count GROUP BY kernel", "sharded")
	aq.ShardDone(5*time.Millisecond, 1000, 50000)
	aq.ShardDone(7*time.Millisecond, 1200, 60000)
	aq.Phase("merge", time.Millisecond)
	aq.SetRows(12)
	aq.End(nil)

	// index pruning counters light up the "index" line
	telemetry.NewCounter("caligo.index.files.indexed").Add(3)
	telemetry.NewCounter("caligo.index.blocks.pruned").Add(17)

	srv := httptest.NewServer(caliper.DebugHandler())
	defer srv.Close()

	// capture stdout across the run
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	start := time.Now()
	runErr := run([]string{"-once", "-i", "10s", srv.URL})
	elapsed := time.Since(start)
	os.Stdout = orig
	w.Close()
	outBytes := make([]byte, 1<<16)
	n, _ := r.Read(outBytes)
	r.Close()
	out := string(outBytes[:n])

	if runErr != nil {
		t.Fatalf("cali-top run: %v\noutput:\n%s", runErr, out)
	}
	for _, want := range []string{
		"cali-top", "queries", "runtime", "sharded", "AGGREGATE count GROUP BY kernel",
		"single scrape", "index", "pruned",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// one scrape only: -once must not sleep the (deliberately huge) interval
	if elapsed > 5*time.Second {
		t.Errorf("-once slept the scrape interval (%v)", elapsed)
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("-once output contains ANSI escapes:\n%q", out)
	}
}

func TestCaliTopBadTarget(t *testing.T) {
	if err := run([]string{"-once", "-i", "10ms", "127.0.0.1:1"}); err == nil {
		t.Error("expected error for unreachable target")
	}
	if err := run([]string{}); err == nil {
		t.Error("expected error for missing target")
	}
}
