package main

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"caligo/caliper"
	"caligo/internal/obs"
	"caligo/internal/obs/history"
	"caligo/internal/telemetry"
)

// scrapeAt builds a scrapeState from an OpenMetrics exposition at a fixed
// timestamp.
func scrapeAt(t *testing.T, at time.Time, exposition string) *scrapeState {
	t.Helper()
	m, err := obs.ParseMetrics(strings.NewReader(exposition))
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	return &scrapeState{at: at, metrics: m}
}

func TestRate(t *testing.T) {
	t0 := time.Unix(100, 0)
	prev := scrapeAt(t, t0, "# TYPE caligo_query_records counter\ncaligo_query_records_total 100\n")

	t.Run("normal delta", func(t *testing.T) {
		cur := scrapeAt(t, t0.Add(2*time.Second), "# TYPE caligo_query_records counter\ncaligo_query_records_total 150\n")
		if got := rate(prev, cur, "caligo_query_records"); got != 25 {
			t.Fatalf("rate = %v, want 25", got)
		}
	})

	t.Run("counter reset clamps to zero", func(t *testing.T) {
		// The monitored process restarted between scrapes: the counter
		// dropped from 100 to 7. No meaningful rate exists for the
		// straddling interval — it must clamp to zero, not report 7/dt
		// (and certainly not a negative rate).
		cur := scrapeAt(t, t0.Add(2*time.Second), "# TYPE caligo_query_records counter\ncaligo_query_records_total 7\n")
		if got := rate(prev, cur, "caligo_query_records"); got != 0 {
			t.Fatalf("rate after counter reset = %v, want 0", got)
		}
	})

	t.Run("zero interval", func(t *testing.T) {
		cur := scrapeAt(t, t0, "# TYPE caligo_query_records counter\ncaligo_query_records_total 150\n")
		if got := rate(prev, cur, "caligo_query_records"); got != 0 {
			t.Fatalf("rate over zero interval = %v, want 0", got)
		}
	})
}

func TestSparkline(t *testing.T) {
	for _, tc := range []struct {
		name string
		vals []float64
		want string
	}{
		{"empty", nil, ""},
		{"flat", []float64{5, 5, 5}, "▁▁▁"},
		{"ramp", []float64{0, 1, 2, 3, 4, 5, 6, 7}, "▁▂▃▄▅▆▇█"},
		{"spike", []float64{0, 0, 10, 0}, "▁▁█▁"},
	} {
		if got := sparkline(tc.vals); got != tc.want {
			t.Errorf("%s: sparkline(%v) = %q, want %q", tc.name, tc.vals, got, tc.want)
		}
	}
}

func TestBuildSeriesAlignsAbsentMetrics(t *testing.T) {
	windows := []history.Window{
		{Start: 0, Dur: 1e9, Metrics: []history.WindowMetric{
			{Name: "a", Kind: "counter", Delta: 3},
		}},
		{Start: 1e9, Dur: 1e9, Metrics: []history.WindowMetric{
			{Name: "a", Kind: "counter", Delta: 5},
			{Name: "b", Kind: "gauge", Value: -2},
		}},
		{Start: 2e9, Dur: 1e9, Metrics: []history.WindowMetric{
			{Name: "b", Kind: "gauge", Value: 4},
		}},
	}
	series := buildSeries(windows)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	// sorted by name; every series spans all windows, zero where absent
	a, b := series[0], series[1]
	if a.name != "a" || b.name != "b" {
		t.Fatalf("series order = %q, %q", a.name, b.name)
	}
	wantA := []float64{3, 5, 0}
	wantB := []float64{0, -2, 4}
	for i := range wantA {
		if a.vals[i] != wantA[i] {
			t.Errorf("a.vals[%d] = %v, want %v", i, a.vals[i], wantA[i])
		}
		if b.vals[i] != wantB[i] {
			t.Errorf("b.vals[%d] = %v, want %v", i, b.vals[i], wantB[i])
		}
	}
}

// TestCaliTopOnce runs a single-scrape -once pass against a live debug
// handler and checks the plain-text totals table carries the engine
// stats (no ANSI escapes, no second scrape).
func TestCaliTopOnce(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })
	obs.SampleRuntimeOnce()

	// a finished query so the table is non-empty
	aq := obs.BeginQuery("AGGREGATE count GROUP BY kernel", "sharded")
	aq.ShardDone(5*time.Millisecond, 1000, 50000)
	aq.ShardDone(7*time.Millisecond, 1200, 60000)
	aq.Phase("merge", time.Millisecond)
	aq.SetRows(12)
	aq.End(nil)

	// index pruning counters light up the "index" line
	telemetry.NewCounter("caligo.index.files.indexed").Add(3)
	telemetry.NewCounter("caligo.index.blocks.pruned").Add(17)

	srv := httptest.NewServer(caliper.DebugHandler())
	defer srv.Close()

	// capture stdout across the run
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	start := time.Now()
	runErr := run([]string{"-once", "-i", "10s", srv.URL})
	elapsed := time.Since(start)
	os.Stdout = orig
	w.Close()
	outBytes := make([]byte, 1<<16)
	n, _ := r.Read(outBytes)
	r.Close()
	out := string(outBytes[:n])

	if runErr != nil {
		t.Fatalf("cali-top run: %v\noutput:\n%s", runErr, out)
	}
	for _, want := range []string{
		"cali-top", "queries", "runtime", "sharded", "AGGREGATE count GROUP BY kernel",
		"single scrape", "index", "pruned",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// one scrape only: -once must not sleep the (deliberately huge) interval
	if elapsed > 5*time.Second {
		t.Errorf("-once slept the scrape interval (%v)", elapsed)
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("-once output contains ANSI escapes:\n%q", out)
	}
}

func TestCaliTopBadTarget(t *testing.T) {
	if err := run([]string{"-once", "-i", "10ms", "127.0.0.1:1"}); err == nil {
		t.Error("expected error for unreachable target")
	}
	if err := run([]string{}); err == nil {
		t.Error("expected error for missing target")
	}
}
