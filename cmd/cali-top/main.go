// Command cali-top is a live terminal monitor for a caligo process
// serving debug endpoints (caliper.ServeDebug or a host-mounted
// DebugHandler): it polls /debug/metrics (OpenMetrics text) and
// /debug/queries (per-query attribution JSON) and renders a refreshing
// top-style view of engine health — query and record rates, latency
// quantiles, runtime gauges, and the most recent queries with their
// phase breakdowns.
//
// Rates are computed client-side from two consecutive scrapes (counter
// deltas over the scrape interval), so the server needs no rate state.
// With -once, cali-top performs exactly one scrape and prints cumulative
// totals as a plain-text table — suitable for scripts and cron; the exit
// status is non-zero when the endpoint is unreachable.
//
// Usage:
//
//	cali-top [-i interval] [-n count] [-once] host:port
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"caligo/internal/obs"
	"caligo/internal/obs/history"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cali-top:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cali-top", flag.ContinueOnError)
	interval := fs.Duration("i", 2*time.Second, "scrape interval")
	count := fs.Int("n", 0, "exit after this many refreshes (0 = run until interrupted)")
	once := fs.Bool("once", false, "single scrape: print cumulative totals as a plain table and exit")
	queries := fs.Int("queries", 10, "number of recent queries to show")
	histMode := fs.Bool("history", false, "telemetry-history mode: render per-metric sparklines from /debug/history")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cali-top [flags] host:port\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nthe target must serve /debug/metrics and /debug/queries\n"+
			"(see caliper.ServeDebug, or cali-query -debug :9090)\n")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one target host:port")
	}
	if *interval <= 0 {
		return fmt.Errorf("-i must be positive")
	}
	target := fs.Arg(0)
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	mon := &monitor{
		base:    target,
		client:  &http.Client{Timeout: 10 * time.Second},
		queries: *queries,
		history: *histMode,
	}
	if *once {
		cur, err := mon.scrape()
		if err != nil {
			return err
		}
		if mon.history {
			mon.renderHistory(os.Stdout, cur)
		} else {
			mon.renderOnce(os.Stdout, cur)
		}
		return nil
	}
	prev, err := mon.scrape()
	if err != nil {
		return err
	}
	for i := 0; *count == 0 || i < *count; i++ {
		time.Sleep(*interval)
		cur, err := mon.scrape()
		if err != nil {
			return err
		}
		// ANSI clear-screen + home; a plain scrolling dump on terminals
		// that ignore escapes
		fmt.Print("\x1b[2J\x1b[H")
		if mon.history {
			mon.renderHistory(os.Stdout, cur)
		} else {
			mon.render(os.Stdout, prev, cur)
		}
		prev = cur
	}
	return nil
}

// scrapeState is one scrape of the debug endpoints.
type scrapeState struct {
	at      time.Time
	metrics *obs.Metrics
	queries *obs.QueryStatsDoc
	windows *history.WindowsDoc // -history mode only
	cluster *history.ClusterView
}

type monitor struct {
	base    string
	client  *http.Client
	queries int
	history bool
}

func (m *monitor) scrape() (*scrapeState, error) {
	st := &scrapeState{at: time.Now()}
	resp, err := m.client.Get(m.base + "/debug/metrics")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET /debug/metrics: %s", resp.Status)
	}
	st.metrics, err = obs.ParseMetrics(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("parse /debug/metrics: %w", err)
	}
	resp, err = m.client.Get(m.base + "/debug/queries")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET /debug/queries: %s", resp.Status)
	}
	st.queries, err = obs.ParseQueryStats(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("parse /debug/queries: %w", err)
	}
	// Cluster view is best-effort: the endpoint serves an empty view
	// until a telemetry-reduction epoch has run, and older servers may
	// not have the route at all.
	if cl, err := m.fetchCluster(); err == nil {
		st.cluster = cl
	}
	if m.history {
		st.windows, err = m.fetchHistory()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// value reads a gauge/counter family's value from a scrape (0 if absent).
func value(s *scrapeState, family string) float64 {
	if f, ok := s.metrics.Families[family]; ok {
		if v, ok := f.Value(); ok {
			return v
		}
	}
	return 0
}

// rate computes a per-second counter rate between two scrapes.
func rate(prev, cur *scrapeState, family string) float64 {
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return 0
	}
	d := value(cur, family) - value(prev, family)
	if d < 0 {
		// Counter reset (process restart between scrapes): the interval
		// straddles the restart, so no meaningful rate exists — clamp to
		// zero instead of reporting the new cumulative total as a
		// one-interval spike.
		d = 0
	}
	return d / dt
}

// histQuantile reads a histogram quantile from the current scrape.
func histQuantile(s *scrapeState, family string, q float64) (float64, bool) {
	f, ok := s.metrics.Families[family]
	if !ok {
		return 0, false
	}
	if count, ok := f.HistCount(); !ok || count == 0 {
		return 0, false
	}
	return f.HistQuantile(q)
}

func (m *monitor) render(w *os.File, prev, cur *scrapeState) {
	fmt.Fprintf(w, "cali-top — %s — %s (interval %.1fs)\n\n",
		m.base, cur.at.Format("15:04:05"), cur.at.Sub(prev.at).Seconds())

	fmt.Fprintf(w, "queries  %8.1f/s   records %12.1f/s   bytes %10s/s   errors %6.1f/s   slow %6.1f/s\n",
		rate(prev, cur, "caligo_query_queries"),
		rate(prev, cur, "caligo_query_records"),
		humanBytes(rate(prev, cur, "caligo_query_bytes")),
		rate(prev, cur, "caligo_query_errors"),
		rate(prev, cur, "caligo_query_slow"))
	fmt.Fprintf(w, "active   %8.0f     finished %10.0f\n",
		value(cur, "caligo_query_active"), float64(cur.queries.Total))
	if p50, ok := histQuantile(cur, "caligo_query_ns", 0.50); ok {
		p95, _ := histQuantile(cur, "caligo_query_ns", 0.95)
		p99, _ := histQuantile(cur, "caligo_query_ns", 0.99)
		fmt.Fprintf(w, "latency  p50 %10s   p95 %10s   p99 %10s\n",
			humanNS(p50), humanNS(p95), humanNS(p99))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "runtime  heap %10s   sys %10s   objects %10.0f   goroutines %5.0f   gc %6.0f\n",
		humanBytes(value(cur, "caligo_runtime_heap_alloc_bytes")),
		humanBytes(value(cur, "caligo_runtime_heap_sys_bytes")),
		value(cur, "caligo_runtime_heap_objects"),
		value(cur, "caligo_runtime_goroutines"),
		value(cur, "caligo_runtime_gc_count"))
	if p99, ok := histQuantile(cur, "caligo_runtime_gc_pause_ns", 0.99); ok {
		p50, _ := histQuantile(cur, "caligo_runtime_gc_pause_ns", 0.50)
		fmt.Fprintf(w, "gc pause p50 %10s   p99 %10s\n", humanNS(p50), humanNS(p99))
	}
	if pending := value(cur, "caligo_rnet_pending_records"); pending > 0 ||
		value(cur, "caligo_rnet_epochs") > 0 {
		fmt.Fprintf(w, "rnet     epochs %6.1f/s   pending %8.0f   sync lag %10s\n",
			rate(prev, cur, "caligo_rnet_epochs"), pending,
			humanNS(value(cur, "caligo_rnet_sync_lag_ns")))
	}
	renderClusterLine(w, cur)
	renderIndexLine(w, cur)
	renderCacheLine(w, cur)
	fmt.Fprintln(w)
	m.renderQueryTable(w, cur)
}

// renderOnce prints cumulative totals from a single scrape as a plain
// table — no rates (they need two scrapes), no screen clearing.
func (m *monitor) renderOnce(w *os.File, cur *scrapeState) {
	fmt.Fprintf(w, "cali-top — %s — %s (single scrape, totals)\n\n",
		m.base, cur.at.Format("15:04:05"))

	fmt.Fprintf(w, "queries  %10.0f     records %14.0f     bytes %10s     errors %8.0f     slow %8.0f\n",
		value(cur, "caligo_query_queries"),
		value(cur, "caligo_query_records"),
		humanBytes(value(cur, "caligo_query_bytes")),
		value(cur, "caligo_query_errors"),
		value(cur, "caligo_query_slow"))
	fmt.Fprintf(w, "active   %10.0f     finished %13.0f\n",
		value(cur, "caligo_query_active"), float64(cur.queries.Total))
	if p50, ok := histQuantile(cur, "caligo_query_ns", 0.50); ok {
		p95, _ := histQuantile(cur, "caligo_query_ns", 0.95)
		p99, _ := histQuantile(cur, "caligo_query_ns", 0.99)
		fmt.Fprintf(w, "latency  p50 %10s   p95 %10s   p99 %10s\n",
			humanNS(p50), humanNS(p95), humanNS(p99))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "runtime  heap %10s   sys %10s   objects %10.0f   goroutines %5.0f   gc %6.0f\n",
		humanBytes(value(cur, "caligo_runtime_heap_alloc_bytes")),
		humanBytes(value(cur, "caligo_runtime_heap_sys_bytes")),
		value(cur, "caligo_runtime_heap_objects"),
		value(cur, "caligo_runtime_goroutines"),
		value(cur, "caligo_runtime_gc_count"))
	if pending := value(cur, "caligo_rnet_pending_records"); pending > 0 ||
		value(cur, "caligo_rnet_epochs") > 0 {
		fmt.Fprintf(w, "rnet     epochs %8.0f   pending %8.0f   sync lag %10s\n",
			value(cur, "caligo_rnet_epochs"), pending,
			humanNS(value(cur, "caligo_rnet_sync_lag_ns")))
	}
	renderClusterLine(w, cur)
	renderIndexLine(w, cur)
	renderCacheLine(w, cur)
	fmt.Fprintln(w)
	m.renderQueryTable(w, cur)
}

// renderIndexLine prints sidecar-index scan-pruning totals when any
// indexed scan has run (all counters zero → the line is omitted).
func renderIndexLine(w *os.File, cur *scrapeState) {
	indexed := value(cur, "caligo_index_files_indexed")
	fallbacks := value(cur, "caligo_index_fallback")
	if indexed == 0 && fallbacks == 0 {
		return
	}
	fmt.Fprintf(w, "index    files %6.0f used %6.0f skipped   blocks %8.0f scanned %8.0f pruned   records pruned %12.0f   fallbacks %4.0f\n",
		indexed,
		value(cur, "caligo_index_files_skipped"),
		value(cur, "caligo_index_blocks_scanned"),
		value(cur, "caligo_index_blocks_pruned"),
		value(cur, "caligo_index_records_pruned"),
		fallbacks)
}

// renderCacheLine prints aggregate-cache totals when any cached query
// has run (all counters zero → the line is omitted).
func renderCacheLine(w *os.File, cur *scrapeState) {
	hits := value(cur, "caligo_qcache_hits")
	misses := value(cur, "caligo_qcache_misses")
	incr := value(cur, "caligo_qcache_incremental")
	if hits == 0 && misses == 0 && incr == 0 {
		return
	}
	hitRate := 0.0
	if total := hits + misses + incr; total > 0 {
		// incremental scans reuse the prefix: count them as hits
		hitRate = (hits + incr) / total * 100
	}
	fmt.Fprintf(w, "qcache   hit %5.1f%%   hits %8.0f   misses %8.0f   incremental %6.0f   skipped %10s   store %10s/%.0f entries   fallbacks %4.0f\n",
		hitRate, hits, misses, incr,
		humanBytes(value(cur, "caligo_qcache_bytes_skipped")),
		humanBytes(value(cur, "caligo_qcache_store_bytes")),
		value(cur, "caligo_qcache_store_entries"),
		value(cur, "caligo_qcache_fallback"))
}

// renderQueryTable prints the recent-queries table and the phase
// breakdown of the slowest one (shared by live and -once modes).
func (m *monitor) renderQueryTable(w *os.File, cur *scrapeState) {
	qs := cur.queries.Queries
	if len(qs) == 0 {
		fmt.Fprintln(w, "no queries recorded (telemetry off, or nothing has run)")
		return
	}
	fmt.Fprintf(w, "%-5s %-8s %-10s %12s %10s %6s %6s %6s  %s\n",
		"QID", "ENGINE", "TIME", "RECORDS", "BYTES", "ROWS", "CACHE", "FLAGS", "QUERY")
	shown := 0
	for _, q := range qs {
		if shown >= m.queries {
			break
		}
		flags := ""
		if !q.Done {
			flags += "R" // running
		}
		if q.Slow {
			flags += "S"
		}
		if q.Err != "" {
			flags += "E"
		}
		cache := "-"
		if total := q.CacheHits + q.CacheMisses + q.CacheIncremental; total > 0 {
			cache = fmt.Sprintf("%.0f%%", float64(q.CacheHits+q.CacheIncremental)/float64(total)*100)
		}
		text := q.Text
		if len(text) > 48 {
			text = text[:45] + "..."
		}
		fmt.Fprintf(w, "%-5d %-8s %-10s %12d %10s %6d %6s %6s  %s\n",
			q.ID, q.Engine, humanNS(float64(q.DurationNS)),
			q.Records, humanBytes(float64(q.Bytes)), q.Rows, cache, flags, text)
		shown++
	}
	// phase breakdown of the slowest recent query
	slowest := qs[0]
	for _, q := range qs {
		if q.Done && q.DurationNS > slowest.DurationNS {
			slowest = q
		}
	}
	if len(slowest.Phases) > 0 {
		phases := append([]obs.PhaseTiming(nil), slowest.Phases...)
		sort.Slice(phases, func(i, j int) bool { return phases[i].NS > phases[j].NS })
		fmt.Fprintf(w, "\nslowest qid %d phases:", slowest.ID)
		for _, p := range phases {
			fmt.Fprintf(w, "  %s=%s", p.Name, humanNS(float64(p.NS)))
		}
		if slowest.Shards > 0 {
			fmt.Fprintf(w, "  shards=%d skew=%.0f%%", slowest.Shards, slowest.ShardSkew*100)
		}
		fmt.Fprintln(w)
	}
}

// humanNS renders nanoseconds in an adaptive unit.
func humanNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// humanBytes renders a byte count in an adaptive unit.
func humanBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
