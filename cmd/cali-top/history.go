package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"

	"caligo/internal/obs/history"
)

// sparkChars are the eight block-element levels a sparkline is quantised
// into, lowest to highest.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a series as one block-element rune per sample, scaled
// to the series' own min..max (a flat series renders as the lowest level).
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		lvl := 0
		if hi > lo {
			lvl = int((v - lo) / (hi - lo) * float64(len(sparkChars)-1))
		}
		out[i] = sparkChars[lvl]
	}
	return string(out)
}

// fetchHistory retrieves the retained telemetry windows from
// /debug/history.
func (m *monitor) fetchHistory() (*history.WindowsDoc, error) {
	resp, err := m.client.Get(m.base + "/debug/history")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/history: %s", resp.Status)
	}
	var doc history.WindowsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("parse /debug/history: %w", err)
	}
	return &doc, nil
}

// fetchCluster retrieves the cluster-wide telemetry view from
// /debug/cluster.
func (m *monitor) fetchCluster() (*history.ClusterView, error) {
	resp, err := m.client.Get(m.base + "/debug/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/cluster: %s", resp.Status)
	}
	var view history.ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("parse /debug/cluster: %w", err)
	}
	return &view, nil
}

// renderClusterLine prints the cluster-wide view's summary — rank count,
// telemetry epochs, and the slowest rank — when a telemetry-reduction
// epoch has published one (omitted otherwise).
func renderClusterLine(w *os.File, cur *scrapeState) {
	cl := cur.cluster
	if cl == nil || cl.Ranks == 0 {
		return
	}
	slowest := "n/a"
	if cl.SlowestRank >= 0 {
		slowest = fmt.Sprintf("rank %d (%s)", cl.SlowestRank, humanNS(float64(cl.SlowestNS)))
	}
	fmt.Fprintf(w, "cluster  ranks %4d   epochs %6d   slowest %s\n",
		cl.Ranks, cl.Epochs, slowest)
}

// historySeries is one metric's per-window value series, in window order
// (oldest first).
type historySeries struct {
	name string
	kind string
	vals []float64
}

// seriesValue extracts the sparkline sample for a metric in one window:
// counters plot their per-window increment, gauges their sample, and
// histograms their per-window observation count.
func seriesValue(wm history.WindowMetric) float64 {
	switch wm.Kind {
	case "counter":
		return float64(wm.Delta)
	case "gauge":
		return float64(wm.Value)
	default: // histogram
		return float64(wm.Count)
	}
}

// buildSeries pivots the window documents into per-metric series. A
// metric absent from a window contributes a zero sample, so every series
// spans all windows and sparklines stay aligned.
func buildSeries(windows []history.Window) []historySeries {
	type key struct{ name, kind string }
	idx := map[key]int{}
	var series []historySeries
	for wi, win := range windows {
		for _, wm := range win.Metrics {
			k := key{wm.Name, wm.Kind}
			si, ok := idx[k]
			if !ok {
				si = len(series)
				idx[k] = si
				series = append(series, historySeries{
					name: wm.Name,
					kind: wm.Kind,
					vals: make([]float64, len(windows)),
				})
			}
			series[si].vals[wi] = seriesValue(wm)
		}
	}
	sort.Slice(series, func(i, j int) bool {
		if series[i].name != series[j].name {
			return series[i].name < series[j].name
		}
		return series[i].kind < series[j].kind
	})
	return series
}

// renderHistory renders the -history view: one sparkline per metric over
// the retained windows, newest sample rightmost, plus the cluster line.
func (m *monitor) renderHistory(w io.Writer, cur *scrapeState) {
	doc := cur.windows
	fmt.Fprintf(w, "cali-top — %s — %s (telemetry history)\n\n",
		m.base, cur.at.Format("15:04:05"))
	if cur.cluster != nil && cur.cluster.Ranks > 0 {
		cl := cur.cluster
		slowest := "n/a"
		if cl.SlowestRank >= 0 {
			slowest = fmt.Sprintf("rank %d (%s)", cl.SlowestRank, humanNS(float64(cl.SlowestNS)))
		}
		fmt.Fprintf(w, "cluster  ranks %4d   epochs %6d   slowest %s\n\n",
			cl.Ranks, cl.Epochs, slowest)
	}
	if doc == nil || doc.Count == 0 {
		fmt.Fprintln(w, "no telemetry windows recorded (is history recording on? see caliper.StartHistory)")
		return
	}
	windows := doc.Windows
	span := float64(0)
	if n := len(windows); n > 0 {
		span = float64(windows[n-1].Start+windows[n-1].Dur-windows[0].Start) / 1e9
	}
	fmt.Fprintf(w, "%d windows spanning %.0fs (oldest → newest; counters per-window increments, gauges samples, histograms observation counts)\n\n",
		doc.Count, span)
	series := buildSeries(windows)
	nameW := 0
	for _, s := range series {
		if len(s.name) > nameW {
			nameW = len(s.name)
		}
	}
	for _, s := range series {
		last := s.vals[len(s.vals)-1]
		fmt.Fprintf(w, "%-*s %-9s %s  %s\n",
			nameW, s.name, s.kind, sparkline(s.vals), formatSample(s.name, s.kind, last))
	}
}

// formatSample renders a series' newest sample: nanosecond-named metrics
// get an adaptive time unit, byte-named metrics an adaptive size unit,
// everything else a plain count.
func formatSample(name, kind string, v float64) string {
	switch {
	case kind == "gauge" && hasSuffix(name, ".ns"):
		return humanNS(v)
	case hasSuffix(name, ".bytes") || hasSuffix(name, ".bytes.written"):
		return humanBytes(v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
