// Package caliper is the public runtime API of this library: a Go
// reproduction of the Caliper performance introspection framework as
// described in "Flexible Data Aggregation for Performance Profiling"
// (Böhme, Beckingsale, Schulz; CLUSTER 2017).
//
// The runtime is organized like the original: independent building-block
// services (event triggers, timers, on-line aggregation, tracing,
// sampling, output recording) are combined at startup through a runtime
// configuration profile, and communicate through a callback API. Source
// code annotations update attributes on a per-thread blackboard; snapshots
// capture compressed copies of the blackboard that services process — the
// aggregation service maintains the in-memory aggregation database of
// Section IV-B, driven by a user-provided aggregation scheme in the
// description language of Section III-B.
//
// Minimal usage:
//
//	ch, _ := caliper.NewChannel(caliper.Config{
//	    "services":      "event,timer,aggregate",
//	    "aggregate.key": "function,loop.iteration",
//	    "aggregate.ops": "count,sum(time.duration)",
//	})
//	th := ch.Thread()
//	th.Begin("function", "main")
//	// ... work ...
//	th.End("function")
//	rows, _ := ch.Flush()
package caliper

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"caligo/internal/attr"
	"caligo/internal/blackboard"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). All metrics are
// no-ops (one atomic load) unless telemetry is enabled — enabling happens
// via the "metrics" service, cali-* -stats flags, or telemetry.Enable().
var (
	telSnapshotNS   = telemetry.NewHistogram("caligo.snapshot.ns")
	telFlushCount   = telemetry.NewCounter("caligo.flush.count")
	telFlushRecords = telemetry.NewCounter("caligo.flush.records")
	telFlushNS      = telemetry.NewHistogram("caligo.flush.ns")
)

// Config is a runtime configuration profile: string key/value settings
// selecting and parameterizing services (the equivalent of Caliper's
// configuration files / environment variables).
type Config map[string]string

// service is one composable building block. Services register callbacks
// on the channel at creation time.
type service interface {
	// name returns the service identifier used in the "services" config.
	name() string
}

// flusher is implemented by services that emit records at flush time.
type flusher interface {
	flush(ch *Channel, emit func(snapshot.FlatRecord) error) error
}

// finisher is implemented by services that need teardown (e.g. sampler).
type finisher interface {
	finish(ch *Channel) error
}

// serviceFactory creates a service from the channel config.
type serviceFactory func(ch *Channel, cfg Config) (service, error)

// registry of available services.
var serviceFactories = map[string]serviceFactory{
	"event":     newEventService,
	"timer":     newTimerService,
	"aggregate": newAggregateService,
	"trace":     newTraceService,
	"recorder":  newRecorderService,
	"sampler":   newSamplerService,
	"metrics":   newMetricsService,
}

// Channel is one measurement configuration instance: it owns the attribute
// registry, the context tree, the selected services, and the per-thread
// measurement states created from it. Multiple channels can coexist with
// different configurations.
type Channel struct {
	reg  *attr.Registry
	tree *contexttree.Tree
	cfg  Config
	name string

	services []service

	// callback lists, populated by services at startup. Trigger callbacks
	// run outside the thread lock (and may snapshot); measurement
	// callbacks run under it, together with the blackboard mutation.
	preBeginTrig []func(t *Thread, a attr.Attribute, v attr.Variant)
	preBeginMeas []func(t *Thread, a attr.Attribute, v attr.Variant)
	preEndMeas   []func(t *Thread, a attr.Attribute)
	preEndTrig   []func(t *Thread, a attr.Attribute)
	onSnapshot   []func(t *Thread, sb *snapshot.Builder)
	procSnap     []func(t *Thread, rec snapshot.Record)

	mu      sync.Mutex
	threads []*Thread
	globals []attr.Entry

	// snapshots counts all snapshots processed across threads.
	snapshots atomic.Uint64

	// sampling marks that a sampler service is active, enabling per-thread
	// locking (Go's substitute for async-signal-safe sampling).
	sampling bool

	// virtualTimer marks that the timer service reads thread virtual
	// clocks instead of host time ("timer.source": "virtual").
	virtualTimer bool
}

// NewChannel creates a measurement channel from a configuration profile.
// The "services" key lists the enabled services, comma separated.
func NewChannel(cfg Config) (*Channel, error) {
	ch := &Channel{
		reg:  attr.NewRegistry(),
		tree: contexttree.New(),
		cfg:  cfg,
		name: cfg["channel.name"],
	}
	if ch.name == "" {
		ch.name = fmt.Sprintf("channel-%d", channelSeq.Add(1))
	}
	names := splitNonEmpty(cfg["services"])
	// deterministic startup order: sort, but keep "event" and "timer"
	// before "aggregate"/"trace" so measurement callbacks run first —
	// callback registration order defines invocation order.
	sort.SliceStable(names, func(i, j int) bool {
		return serviceOrder(names[i]) < serviceOrder(names[j])
	})
	for _, n := range names {
		factory, ok := serviceFactories[n]
		if !ok {
			return nil, fmt.Errorf("caliper: unknown service %q", n)
		}
		svc, err := factory(ch, cfg)
		if err != nil {
			return nil, fmt.Errorf("caliper: service %s: %w", n, err)
		}
		ch.services = append(ch.services, svc)
	}
	return ch, nil
}

// channelSeq numbers channels that were not given an explicit
// "channel.name", so the dogfooded metrics service can always label its
// records with a channel identity.
var channelSeq atomic.Uint64

// serviceOrder gives measurement services (timer) precedence over
// processing services (aggregate, trace, recorder) in callback order.
// The metrics service flushes last so its records follow the channel's
// regular output.
func serviceOrder(name string) int {
	switch name {
	case "timer":
		return 0
	case "event", "sampler":
		return 1
	case "aggregate", "trace":
		return 2
	case "metrics":
		return 4
	default:
		return 3
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if part := trimSpace(s[start:i]); part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// Name returns the channel's name: the "channel.name" config value, or a
// generated "channel-N" identifier.
func (ch *Channel) Name() string { return ch.name }

// Registry exposes the channel's attribute registry.
func (ch *Channel) Registry() *attr.Registry { return ch.reg }

// Tree exposes the channel's context tree (used by format writers).
func (ch *Channel) Tree() *contexttree.Tree { return ch.tree }

// Snapshots returns the number of snapshots processed so far.
func (ch *Channel) Snapshots() uint64 { return ch.snapshots.Load() }

// VirtualTimer reports whether the channel's timer service reads thread
// virtual clocks ("timer.source": "virtual") rather than host time.
// Instrumentation layers that drive simulated clocks (e.g. the emulated
// MPI wrapper) use this to know they must synchronize thread time.
func (ch *Channel) VirtualTimer() bool { return ch.virtualTimer }

// CreateAttribute pre-registers an attribute with explicit type and
// properties, overriding the defaults the annotation API would choose.
func (ch *Channel) CreateAttribute(name string, typ attr.Type, props attr.Properties) (attr.Attribute, error) {
	return ch.reg.Create(name, typ, props)
}

// SetGlobal records per-run metadata (e.g. the experiment name, problem
// size, or host) that the recorder writes into the dataset as a globals
// record. Globals are not part of snapshot records.
func (ch *Channel) SetGlobal(name string, value any) error {
	v := attr.GuessV(value)
	typ := v.Kind()
	if typ == attr.Inv {
		typ = attr.String
	}
	a, err := ch.reg.Create(name, typ, attr.Global)
	if err != nil {
		return err
	}
	if a.Type() != v.Kind() {
		conv, err := attr.ParseAs(v.String(), a.Type())
		if err != nil {
			return fmt.Errorf("caliper: SetGlobal(%s): %w", name, err)
		}
		v = conv
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for i, e := range ch.globals {
		if e.Attr.ID() == a.ID() {
			ch.globals[i].Value = v
			return nil
		}
	}
	ch.globals = append(ch.globals, attr.Entry{Attr: a, Value: v})
	return nil
}

// Globals returns the recorded per-run metadata entries.
func (ch *Channel) Globals() []attr.Entry {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return append([]attr.Entry(nil), ch.globals...)
}

// Thread creates a new per-thread measurement state. Each goroutine that
// annotates must use its own Thread handle; handles must not be shared
// across goroutines (this mirrors Caliper's per-thread blackboards and
// aggregation databases, which avoid locks on the hot path).
func (ch *Channel) Thread() *Thread {
	t := &Thread{
		ch: ch,
		bb: blackboard.New(ch.tree, ch.reg),
	}
	if ch.sampling {
		t.mu = &sync.Mutex{}
	}
	ch.mu.Lock()
	t.index = len(ch.threads)
	ch.threads = append(ch.threads, t)
	ch.mu.Unlock()
	return t
}

// Flush collects the output records of all processing services across all
// threads (aggregation results or trace buffers), in deterministic order.
// Flush also stops the sampler, if one is running. The channel remains
// usable; aggregation databases keep accumulating unless Clear-ed by the
// service semantics (the aggregate service drains on flush).
func (ch *Channel) Flush() ([]snapshot.FlatRecord, error) {
	var out []snapshot.FlatRecord
	err := ch.FlushEmit(func(r snapshot.FlatRecord) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// FlushEmit streams flush output through emit.
func (ch *Channel) FlushEmit(emit func(snapshot.FlatRecord) error) error {
	var flushStart time.Time
	if telemetry.Enabled() {
		flushStart = time.Now()
		inner := emit
		emit = func(r snapshot.FlatRecord) error {
			telFlushRecords.Inc()
			return inner(r)
		}
	}
	sp := trace.Begin("caliper.flush")
	if sp.Active() {
		var emitted int64
		inner := emit
		emit = func(r snapshot.FlatRecord) error {
			emitted++
			return inner(r)
		}
		defer func() {
			sp.ArgInt("records", emitted)
			sp.End()
		}()
	}
	for _, svc := range ch.services {
		if f, ok := svc.(finisher); ok {
			if err := f.finish(ch); err != nil {
				return err
			}
		}
	}
	for _, svc := range ch.services {
		if f, ok := svc.(flusher); ok {
			if err := f.flush(ch, emit); err != nil {
				return err
			}
		}
	}
	telFlushCount.Inc()
	if !flushStart.IsZero() {
		telFlushNS.Observe(time.Since(flushStart).Nanoseconds())
	}
	return nil
}

// threadsSnapshot returns a copy of the thread list.
func (ch *Channel) threadsSnapshot() []*Thread {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return append([]*Thread(nil), ch.threads...)
}
