package caliper

import (
	"fmt"
	"sync"
	"time"

	"caligo/internal/prof"
)

// SelfProfilingOptions configures continuous self-profiling: output
// directory, capture cadence, CPU window length, point-in-time profile
// kinds, and ring retention. See the field docs on prof.Options.
type SelfProfilingOptions = prof.Options

// selfProf is the process-wide continuous profiler managed by
// StartSelfProfiling/StopSelfProfiling and shared with the
// /debug/selfprofile endpoint.
var (
	selfProfMu sync.Mutex
	selfProf   *prof.Profiler
)

// StartSelfProfiling begins continuous self-profiling of this process:
// every Interval the profiler captures a CPU window plus the configured
// point-in-time profiles (heap, goroutine, ... ), converts each to a
// .cali file under Dir, and keeps at most MaxFiles files. The files are
// ordinary caligo datasets — query them with cali-query, cali-prof, or
// calql.QueryFiles:
//
//	SELECT prof.function, inclusive_sum(cpu.samples)
//	GROUP BY prof.function FORMAT tree
//
// Only one self-profiler runs per process; starting a second one is an
// error. Capture overhead is exported through the caligo.prof.* telemetry
// metrics (see docs/OBSERVABILITY.md).
func StartSelfProfiling(opts SelfProfilingOptions) error {
	selfProfMu.Lock()
	defer selfProfMu.Unlock()
	if selfProf != nil {
		return fmt.Errorf("caliper: self-profiling already running")
	}
	p, err := prof.Start(opts)
	if err != nil {
		return err
	}
	selfProf = p
	return nil
}

// StopSelfProfiling halts continuous self-profiling, waiting for an
// in-flight capture to finish. Retained .cali files stay on disk. It is a
// no-op when self-profiling is not running.
func StopSelfProfiling() {
	selfProfMu.Lock()
	p := selfProf
	selfProf = nil
	selfProfMu.Unlock()
	if p != nil {
		p.Stop()
	}
}

// SelfProfilingActive reports whether continuous self-profiling is
// running.
func SelfProfilingActive() bool {
	selfProfMu.Lock()
	defer selfProfMu.Unlock()
	return selfProf != nil
}

// selfProfiler returns the active profiler, or nil.
func selfProfiler() *prof.Profiler {
	selfProfMu.Lock()
	defer selfProfMu.Unlock()
	return selfProf
}

// TriggerSelfProfile synchronously captures one profile and returns the
// path of the written .cali file. kind is "cpu" (window applies, default
// 1s) or a point-in-time profile kind (heap, allocs, goroutine, mutex,
// block, threadcreate). Requires self-profiling to be running — the
// capture lands in its retention ring.
func TriggerSelfProfile(kind string, window time.Duration) (string, error) {
	p := selfProfiler()
	if p == nil {
		return "", fmt.Errorf("caliper: self-profiling not running (call StartSelfProfiling)")
	}
	if kind == "cpu" {
		return p.TriggerWindow(window)
	}
	return p.TriggerPoint(kind)
}

// SelfProfileFiles returns the .cali files currently retained by the
// self-profiler, oldest first (nil when self-profiling is not running).
func SelfProfileFiles() []string {
	p := selfProfiler()
	if p == nil {
		return nil
	}
	return p.Files()
}

// LatestSelfProfile returns the most recent retained .cali file,
// optionally filtered by profile kind ("" matches any).
func LatestSelfProfile(kind string) (string, bool) {
	p := selfProfiler()
	if p == nil {
		return "", false
	}
	return p.Latest(kind)
}

// CaptureSelfProfile captures one profile of the running process and
// returns it as .cali bytes without touching disk or requiring the
// continuous profiler. kind and window as in TriggerSelfProfile.
func CaptureSelfProfile(kind string, window time.Duration) ([]byte, error) {
	cali, _, err := prof.CaptureCali(kind, window)
	return cali, err
}
