package caliper

import (
	"fmt"
	"sort"
	"strings"
)

// Presets are ready-made configuration profiles in the spirit of
// Caliper's ConfigManager specs ("runtime-report", "event-trace", ...):
// a named base configuration plus optional key=value overrides.
//
//	cfg, err := caliper.Preset("runtime-report", "aggregate.key=kernel")
//	ch, err := caliper.NewChannel(cfg)
var presets = map[string]Config{
	// runtime-report: on-line event aggregation of region times — the
	// everyday profiling configuration.
	"runtime-report": {
		"services":      "event,timer,aggregate",
		"aggregate.key": "function",
		"aggregate.ops": "count,sum(time.duration)",
	},
	// event-trace: store every snapshot (the paper's trace baseline).
	"event-trace": {
		"services": "event,timer,trace",
	},
	// sample-report: low-overhead sampling profile at 100 Hz.
	"sample-report": {
		"services":          "sampler,timer,aggregate",
		"sampler.frequency": "100",
		"aggregate.key":     "function",
		"aggregate.ops":     "count",
	},
	// loop-report: time-series profile over a main loop iteration
	// attribute (set "aggregate.key" to include your iteration label).
	"loop-report": {
		"services":      "event,timer,aggregate",
		"aggregate.key": "function,iteration",
		"aggregate.ops": "count,sum(time.duration)",
	},
}

// PresetNames lists the available preset names.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns a copy of a named configuration profile with optional
// "key=value" overrides applied, e.g.
//
//	Preset("runtime-report", "aggregate.key=kernel,mpi.rank")
//
// Overrides replace the preset's value for the key; unknown keys are
// passed through to the channel configuration unchanged.
func Preset(name string, overrides ...string) (Config, error) {
	base, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("caliper: unknown preset %q (have: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	cfg := Config{}
	for k, v := range base {
		cfg[k] = v
	}
	for _, o := range overrides {
		eq := strings.IndexByte(o, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("caliper: preset override %q is not key=value", o)
		}
		cfg[o[:eq]] = o[eq+1:]
	}
	return cfg, nil
}
