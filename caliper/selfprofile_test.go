package caliper

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func getSelfProfile(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestSelfProfileEndpointWithoutProfiler(t *testing.T) {
	if SelfProfilingActive() {
		t.Fatal("self-profiling unexpectedly active")
	}
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	t.Run("latest-404", func(t *testing.T) {
		code, body, _ := getSelfProfile(t, srv, "/debug/selfprofile")
		if code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", code)
		}
		if !strings.Contains(body, "not running") {
			t.Errorf("unexpected body: %s", body)
		}
	})

	t.Run("status", func(t *testing.T) {
		code, body, hdr := getSelfProfile(t, srv, "/debug/selfprofile?status=1")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("content type %q", ct)
		}
		var st struct {
			Running bool     `json:"running"`
			Files   []string `json:"files"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("status body is not JSON: %v\n%s", err, body)
		}
		if st.Running {
			t.Error("status reports running without a profiler")
		}
		if st.Files == nil {
			t.Error("files should be [] not null")
		}
	})

	t.Run("trigger-point-in-memory", func(t *testing.T) {
		// no profiler running: trigger captures in memory and returns it
		code, body, hdr := getSelfProfile(t, srv, "/debug/selfprofile?trigger=goroutine")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("content type %q", ct)
		}
		if !strings.Contains(body, "__rec=ctx") {
			t.Error("triggered capture returned no context records")
		}
		if !strings.Contains(body, "prof.function") {
			t.Error("triggered capture missing prof.function attribute")
		}
	})

	t.Run("trigger-bad-kind", func(t *testing.T) {
		code, body, _ := getSelfProfile(t, srv, "/debug/selfprofile?trigger=nonsense")
		if code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", code, body)
		}
	})

	t.Run("trigger-bad-window", func(t *testing.T) {
		for _, w := range []string{"banana", "-1s", "0"} {
			code, _, _ := getSelfProfile(t, srv, "/debug/selfprofile?trigger=goroutine&window="+w)
			if code != http.StatusBadRequest {
				t.Errorf("window=%q: status %d, want 400", w, code)
			}
		}
	})
}

func TestSelfProfileEndpointWithProfiler(t *testing.T) {
	if err := StartSelfProfiling(SelfProfilingOptions{
		Dir:       t.TempDir(),
		Interval:  time.Hour,
		CPUWindow: -1,
		Kinds:     []string{"goroutine"},
		MaxFiles:  4,
	}); err != nil {
		t.Fatal(err)
	}
	defer StopSelfProfiling()
	if err := StartSelfProfiling(SelfProfilingOptions{Dir: t.TempDir()}); err == nil {
		t.Fatal("second StartSelfProfiling should fail")
	}

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	// trigger through the ring so the file is retained
	code, body, hdr := getSelfProfile(t, srv, "/debug/selfprofile?trigger=goroutine")
	if code != http.StatusOK {
		t.Fatalf("trigger: status %d: %s", code, body)
	}
	if hdr.Get("X-Cali-File") == "" {
		t.Error("triggered ring capture missing X-Cali-File header")
	}
	if !strings.Contains(body, "__rec=ctx") {
		t.Error("triggered capture returned no context records")
	}

	// latest now serves the retained file
	code, body, hdr = getSelfProfile(t, srv, "/debug/selfprofile?kind=goroutine")
	if code != http.StatusOK {
		t.Fatalf("latest: status %d: %s", code, body)
	}
	if !strings.Contains(hdr.Get("X-Cali-File"), "goroutine") {
		t.Errorf("X-Cali-File = %q", hdr.Get("X-Cali-File"))
	}
	if !strings.Contains(body, "prof.function") {
		t.Error("latest file missing prof.function attribute")
	}

	// status reflects the running profiler
	code, body, _ = getSelfProfile(t, srv, "/debug/selfprofile?status=1")
	if code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	var st struct {
		Running  bool     `json:"running"`
		Kinds    []string `json:"kinds"`
		MaxFiles int      `json:"max_files"`
		Files    []string `json:"files"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status body: %v\n%s", err, body)
	}
	if !st.Running || st.MaxFiles != 4 || len(st.Files) == 0 {
		t.Errorf("status = %+v", st)
	}

	// public accessors agree with the endpoint
	if !SelfProfilingActive() {
		t.Error("SelfProfilingActive() = false while running")
	}
	if files := SelfProfileFiles(); len(files) == 0 {
		t.Error("SelfProfileFiles() empty")
	}
	if _, ok := LatestSelfProfile("goroutine"); !ok {
		t.Error("LatestSelfProfile(goroutine) found nothing")
	}
	if _, err := TriggerSelfProfile("goroutine", 0); err != nil {
		t.Errorf("TriggerSelfProfile: %v", err)
	}
}

func TestCaptureSelfProfileInMemory(t *testing.T) {
	cali, err := CaptureSelfProfile("goroutine", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cali), "__rec=ctx") {
		t.Error("in-memory capture has no context records")
	}
	if _, err := CaptureSelfProfile("nonsense", 0); err == nil {
		t.Error("unknown kind: expected error")
	}
}

func TestStopSelfProfilingIdempotent(t *testing.T) {
	StopSelfProfiling() // not running: must be a no-op
	if err := StartSelfProfiling(SelfProfilingOptions{
		Dir: t.TempDir(), Interval: time.Hour, CPUWindow: -1, Kinds: []string{},
	}); err != nil {
		t.Fatal(err)
	}
	StopSelfProfiling()
	StopSelfProfiling()
	if SelfProfilingActive() {
		t.Error("still active after Stop")
	}
}
