package caliper

import (
	"os"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
)

func TestVirtualTimerSource(t *testing.T) {
	ch := mustChannel(t, Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "region",
		"aggregate.ops": "sum(time.duration),count",
	})
	if !ch.VirtualTimer() {
		t.Fatal("VirtualTimer() should be true")
	}
	th := ch.Thread()
	th.Begin("region", "a")
	th.AdvanceVirtualTime(1000)
	th.End("region") // snapshot: duration 1000 attributed to region a
	th.AdvanceVirtualTime(500)
	th.Begin("region", "b") // snapshot: 500 attributed to (no region)
	th.AdvanceVirtualTime(2000)
	th.End("region")

	rows, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]int64{}
	for _, r := range rows {
		region, _ := r.GetByName("region")
		if v, ok := r.GetByName("sum#time.duration"); ok {
			sums[region.String()] += v.AsInt()
		}
	}
	if sums["a"] != 1000 {
		t.Errorf("region a = %d ns, want exactly 1000 (virtual time is deterministic)", sums["a"])
	}
	if sums["b"] != 2000 {
		t.Errorf("region b = %d ns, want exactly 2000", sums["b"])
	}
	if sums[""] != 500 {
		t.Errorf("outside regions = %d ns, want exactly 500", sums[""])
	}
}

func TestVirtualTimeMonotonic(t *testing.T) {
	ch := mustChannel(t, Config{"services": "timer", "timer.source": "virtual"})
	th := ch.Thread()
	th.SetVirtualTime(100)
	th.SetVirtualTime(50) // must not go backwards
	if th.VirtualTime() != 100 {
		t.Errorf("VirtualTime = %d, want 100", th.VirtualTime())
	}
	th.AdvanceVirtualTime(-5) // negative advance ignored
	if th.VirtualTime() != 100 {
		t.Errorf("VirtualTime = %d after negative advance", th.VirtualTime())
	}
	th.AdvanceVirtualTime(25)
	if th.VirtualTime() != 125 {
		t.Errorf("VirtualTime = %d, want 125", th.VirtualTime())
	}
}

func TestUnknownTimerSourceRejected(t *testing.T) {
	if _, err := NewChannel(Config{"services": "timer", "timer.source": "quartz"}); err == nil {
		t.Error("unknown timer.source should error")
	}
}

func TestVirtualInclusiveDuration(t *testing.T) {
	ch := mustChannel(t, Config{
		"services":        "event,timer,aggregate",
		"timer.source":    "virtual",
		"timer.inclusive": "true",
		"aggregate.key":   "region",
		"aggregate.ops":   "max(time.inclusive.duration)",
	})
	th := ch.Thread()
	th.Begin("region", "outer")
	th.AdvanceVirtualTime(100)
	th.Begin("region", "inner")
	th.AdvanceVirtualTime(200)
	th.End("region")
	th.AdvanceVirtualTime(100)
	th.End("region")
	rows, _ := ch.Flush()
	region, _ := ch.Registry().Find("region")
	var outer, inner int64
	for _, r := range rows {
		if v, ok := r.GetByName("max#time.inclusive.duration"); ok {
			switch r.PathOf(region.ID(), "/") {
			case "outer":
				outer = v.AsInt()
			case "outer/inner":
				inner = v.AsInt()
			}
		}
	}
	if outer != 400 {
		t.Errorf("outer inclusive = %d, want exactly 400", outer)
	}
	if inner != 200 {
		t.Errorf("inner inclusive = %d, want exactly 200", inner)
	}
}

func TestMultipleChannelsIndependent(t *testing.T) {
	// two channels with different schemes observe the same program
	// independently (the paper's multiple-configuration capability)
	chA := mustChannel(t, Config{
		"services":      "event,aggregate",
		"aggregate.key": "region",
		"aggregate.ops": "count",
	})
	chB := mustChannel(t, Config{
		"services": "event,trace",
	})
	thA, thB := chA.Thread(), chB.Thread()
	for i := 0; i < 5; i++ {
		thA.Begin("region", "r")
		thB.Begin("region", "r")
		thA.End("region")
		thB.End("region")
	}
	rowsA, _ := chA.Flush()
	rowsB, _ := chB.Flush()
	if len(rowsA) >= len(rowsB) {
		t.Errorf("aggregated channel (%d rows) should be smaller than trace channel (%d rows)",
			len(rowsA), len(rowsB))
	}
	// registries are independent
	a1, _ := chA.Registry().Find("region")
	b1, _ := chB.Registry().Find("region")
	if !a1.IsValid() || !b1.IsValid() {
		t.Fatal("region attribute missing")
	}
}

func TestFlushTwiceDrains(t *testing.T) {
	ch := mustChannel(t, Config{
		"services":      "event,aggregate",
		"aggregate.key": "region",
		"aggregate.ops": "count",
	})
	th := ch.Thread()
	th.Begin("region", "x")
	th.End("region")
	first, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("first flush empty")
	}
	second, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Errorf("second flush returned %d rows, want 0 (aggregation drains)", len(second))
	}
	// new activity after a flush is captured again
	th.Begin("region", "y")
	th.End("region")
	third, _ := ch.Flush()
	if len(third) == 0 {
		t.Error("post-flush activity lost")
	}
}

func TestThreadUpdatesCounter(t *testing.T) {
	ch := mustChannel(t, Config{"services": ""})
	th := ch.Thread()
	th.Begin("a", "1")
	th.Set("b", 2)
	th.End("a")
	if th.Updates() != 3 {
		t.Errorf("Updates = %d, want 3", th.Updates())
	}
}

func TestChannelTreeAccessor(t *testing.T) {
	ch := mustChannel(t, Config{"services": "event"})
	th := ch.Thread()
	th.Begin("region", "x")
	if ch.Tree().Len() == 0 {
		t.Error("context tree should have nodes after Begin")
	}
	th.End("region")
}

func TestAttrEqualHelper(t *testing.T) {
	if !attr.Equal(attr.IntV(3), attr.IntV(3)) || attr.Equal(attr.IntV(3), attr.FloatV(3)) {
		t.Error("attr.Equal misbehaves")
	}
}

func TestGlobalsRecorded(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g.cali"
	ch := mustChannel(t, Config{
		"services":          "event,aggregate,recorder",
		"aggregate.key":     "region",
		"aggregate.ops":     "count",
		"recorder.filename": path,
	})
	if err := ch.SetGlobal("experiment", "triple-point"); err != nil {
		t.Fatal(err)
	}
	if err := ch.SetGlobal("problem.size", 640); err != nil {
		t.Fatal(err)
	}
	// overwriting a global replaces its value
	if err := ch.SetGlobal("problem.size", 1280); err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	th.Begin("region", "r")
	th.End("region")
	if err := ch.FlushAndWrite(); err != nil {
		t.Fatal(err)
	}
	g := ch.Globals()
	if len(g) != 2 {
		t.Fatalf("globals = %v", g)
	}
	// read the file back and verify the globals round-trip
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := calformat.NewReader(f, attr.NewRegistry(), contexttree.New())
	if _, err := rd.ReadAll(); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, e := range rd.Globals() {
		got[e.Attr.Name()] = e.Value.String()
	}
	if got["experiment"] != "triple-point" || got["problem.size"] != "1280" {
		t.Errorf("globals round trip = %v", got)
	}
}
