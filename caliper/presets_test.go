package caliper

import (
	"strings"
	"testing"
)

func TestPresetNames(t *testing.T) {
	names := PresetNames()
	if len(names) != 4 {
		t.Fatalf("presets = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}

func TestPresetsAllBuildChannels(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ch, err := NewChannel(cfg)
		if err != nil {
			t.Fatalf("%s: NewChannel: %v", name, err)
		}
		// presets must be usable immediately
		th := ch.Thread()
		th.Begin("function", "f")
		th.End("function")
		if _, err := ch.Flush(); err != nil {
			t.Fatalf("%s: Flush: %v", name, err)
		}
	}
}

func TestPresetOverrides(t *testing.T) {
	cfg, err := Preset("runtime-report", "aggregate.key=kernel,mpi.rank", "extra=1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg["aggregate.key"] != "kernel,mpi.rank" {
		t.Errorf("override lost: %q", cfg["aggregate.key"])
	}
	if cfg["extra"] != "1" {
		t.Errorf("pass-through key lost")
	}
	// the base map must not be mutated
	cfg2, _ := Preset("runtime-report")
	if cfg2["aggregate.key"] != "function" {
		t.Errorf("preset base mutated: %q", cfg2["aggregate.key"])
	}
}

func TestPresetErrors(t *testing.T) {
	if _, err := Preset("nonsense"); err == nil ||
		!strings.Contains(err.Error(), "runtime-report") {
		t.Errorf("unknown preset error should list options: %v", err)
	}
	if _, err := Preset("event-trace", "badoverride"); err == nil {
		t.Error("malformed override should error")
	}
	if _, err := Preset("event-trace", "=x"); err == nil {
		t.Error("empty key override should error")
	}
}
