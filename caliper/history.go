package caliper

import (
	"fmt"
	"io"
	"sync"

	"caligo/internal/obs/history"
)

// HistoryOptions configures continuous telemetry-history recording:
// output directory, window cadence, ring retention, and the host.rank
// stamp. See the field docs on history.Options.
type HistoryOptions = history.Options

// histRec is the process-wide history recorder managed by
// StartHistory/StopHistory and shared with the /debug/history endpoint.
var (
	histMu  sync.Mutex
	histRec *history.Recorder
)

// StartHistory begins continuous telemetry-history recording: every
// Interval the recorder snapshots the telemetry registry — counters as
// window deltas, gauges as samples, histograms as mergeable log-linear
// bin sets — and writes the window as one .cali file under Dir, keeping
// at most MaxFiles files. The files are ordinary caligo datasets; query
// the timeline with cali-query or calql.QueryFiles:
//
//	SELECT time.window.start, metric.name, sum(metric.delta)
//	  GROUP BY time.window.start, metric.name
//
// The retained windows are also served as JSON at /debug/history, and a
// reduction network configured with rnet.WithHistory merges them
// cluster-wide for /debug/cluster. Only one history recorder runs per
// process; starting a second one is an error. Recorder overhead is
// exported through the caligo.history.* metrics (docs/OBSERVABILITY.md).
func StartHistory(opts HistoryOptions) error {
	histMu.Lock()
	defer histMu.Unlock()
	if histRec != nil {
		return fmt.Errorf("caliper: history recording already running")
	}
	r, err := history.Start(opts)
	if err != nil {
		return err
	}
	histRec = r
	return nil
}

// StopHistory halts history recording, capturing one final tail window
// (so short runs still produce a window). Retained .cali files stay on
// disk. It is a no-op when history recording is not running.
func StopHistory() {
	histMu.Lock()
	r := histRec
	histRec = nil
	histMu.Unlock()
	if r != nil {
		r.Stop()
	}
}

// HistoryActive reports whether history recording is running.
func HistoryActive() bool {
	histMu.Lock()
	defer histMu.Unlock()
	return histRec != nil
}

// historyRecorder returns the active recorder, or nil.
func historyRecorder() *history.Recorder {
	histMu.Lock()
	defer histMu.Unlock()
	return histRec
}

// HistoryRecorder returns the active history recorder (nil when not
// running), for wiring into a reduction network via rnet.WithHistory.
func HistoryRecorder() *history.Recorder { return historyRecorder() }

// WriteHistory writes the retained telemetry windows as the
// /debug/history JSON document — so host applications can expose the
// timeline on their own endpoint without mounting the debug handler. An
// empty document is written when history recording is not running.
func WriteHistory(w io.Writer) error {
	var windows []history.Window
	if r := historyRecorder(); r != nil {
		windows = r.Windows()
	}
	return history.WriteWindowsJSON(w, windows)
}

// HistoryFiles returns the .cali window files currently retained by the
// history recorder, oldest first (nil when not running).
func HistoryFiles() []string {
	r := historyRecorder()
	if r == nil {
		return nil
	}
	return r.Files()
}
