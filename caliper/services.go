package caliper

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/core"
	"caligo/internal/query"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// ---------------------------------------------------------------------------
// event service: triggers a snapshot on every annotation update
// (synchronous, instrumentation-driven data collection).

type eventService struct{}

func newEventService(ch *Channel, _ Config) (service, error) {
	svc := &eventService{}
	ch.preBeginTrig = append(ch.preBeginTrig, func(t *Thread, _ attr.Attribute, _ attr.Variant) {
		t.takeSnapshot()
	})
	ch.preEndTrig = append(ch.preEndTrig, func(t *Thread, _ attr.Attribute) {
		t.takeSnapshot()
	})
	return svc, nil
}

func (*eventService) name() string { return "event" }

// ---------------------------------------------------------------------------
// timer service: appends time.duration (nanoseconds since the previous
// snapshot on the thread) to every snapshot, and optionally
// time.inclusive.duration at region end events.

// DurationAttr is the label of the snapshot-duration measurement.
const DurationAttr = "time.duration"

// InclusiveDurationAttr is the label of the region-inclusive duration
// measurement (enabled with "timer.inclusive": "true").
const InclusiveDurationAttr = "time.inclusive.duration"

type timerService struct {
	durAttr  attr.Attribute
	inclAttr attr.Attribute
	incl     bool
	epoch    time.Time
	virtual  bool
}

type timerState struct {
	last       int64 // ns on the service's time source; -1 = no snapshot yet
	beginStack []int64
	pending    int64 // pending inclusive duration, ns; -1 = none
}

// now reads the service's time source for a thread: host-monotonic
// nanoseconds by default, the thread's virtual clock with
// "timer.source": "virtual" (used when an instrumented simulator drives
// time itself — see the emulated MPI layer).
func (svc *timerService) now(t *Thread) int64 {
	if svc.virtual {
		return t.virtNow
	}
	return time.Since(svc.epoch).Nanoseconds()
}

func newTimerService(ch *Channel, cfg Config) (service, error) {
	svc := &timerService{epoch: time.Now()}
	switch cfg["timer.source"] {
	case "", "real":
	case "virtual":
		svc.virtual = true
		ch.virtualTimer = true
	default:
		return nil, fmt.Errorf("unknown timer.source %q", cfg["timer.source"])
	}
	var err error
	svc.durAttr, err = ch.reg.Create(DurationAttr, attr.Int,
		attr.AsValue|attr.Aggregatable|attr.SkipEvents)
	if err != nil {
		return nil, err
	}
	svc.incl = cfg["timer.inclusive"] == "true"
	if svc.incl {
		svc.inclAttr, err = ch.reg.Create(InclusiveDurationAttr, attr.Int,
			attr.AsValue|attr.Aggregatable|attr.SkipEvents)
		if err != nil {
			return nil, err
		}
	}

	state := func(t *Thread) *timerState {
		return t.serviceState(svc, func() any { return &timerState{pending: -1, last: -1} }).(*timerState)
	}

	if svc.incl {
		ch.preBeginMeas = append(ch.preBeginMeas, func(t *Thread, a attr.Attribute, _ attr.Variant) {
			if a.IsNested() {
				st := state(t)
				st.beginStack = append(st.beginStack, svc.now(t))
			}
		})
		ch.preEndMeas = append(ch.preEndMeas, func(t *Thread, a attr.Attribute) {
			if !a.IsNested() {
				return
			}
			st := state(t)
			if n := len(st.beginStack); n > 0 {
				st.pending = svc.now(t) - st.beginStack[n-1]
				st.beginStack = st.beginStack[:n-1]
			}
		})
	}

	ch.onSnapshot = append(ch.onSnapshot, func(t *Thread, sb *snapshot.Builder) {
		st := state(t)
		now := svc.now(t)
		if st.last >= 0 {
			sb.AddImmediate(svc.durAttr, attr.IntV(now-st.last))
		}
		st.last = now
		if svc.incl && st.pending >= 0 {
			sb.AddImmediate(svc.inclAttr, attr.IntV(st.pending))
			st.pending = -1
		}
	})
	return svc, nil
}

func (*timerService) name() string { return "timer" }

// ---------------------------------------------------------------------------
// aggregate service: on-line event aggregation (Section IV-B). Keeps one
// aggregation database per thread (no locks on the update path); the
// per-thread databases are merged at flush time.

type aggregateService struct {
	scheme *core.Scheme
	where  []calql.Condition
}

func newAggregateService(ch *Channel, cfg Config) (service, error) {
	opsText := cfg["aggregate.ops"]
	if opsText == "" {
		opsText = "count"
	}
	queryText := "AGGREGATE " + opsText
	if key := cfg["aggregate.key"]; key != "" {
		queryText += " GROUP BY " + key
	}
	if where := cfg["aggregate.where"]; where != "" {
		queryText += " WHERE " + where
	}
	q, err := calql.Parse(queryText)
	if err != nil {
		return nil, fmt.Errorf("invalid aggregation scheme: %w", err)
	}
	scheme, err := q.Scheme()
	if err != nil {
		return nil, err
	}
	svc := &aggregateService{scheme: scheme, where: q.Where}

	ch.procSnap = append(ch.procSnap, func(t *Thread, rec snapshot.Record) {
		db := t.serviceState(svc, func() any {
			db, err := core.NewDB(svc.scheme, ch.reg)
			if err != nil {
				panic(err) // scheme was validated at startup
			}
			return db
		}).(*core.DB)
		flat, err := rec.Unpack(ch.tree, ch.reg)
		if err != nil {
			return // skip malformed records
		}
		for _, c := range svc.where {
			if !query.EvalCondition(c, flat) {
				return
			}
		}
		db.Update(flat)
	})
	return svc, nil
}

func (*aggregateService) name() string { return "aggregate" }

// flush merges all per-thread aggregation databases and emits the
// combined results, then clears the databases.
func (svc *aggregateService) flush(ch *Channel, emit func(snapshot.FlatRecord) error) error {
	merged, err := core.NewDB(svc.scheme, ch.reg)
	if err != nil {
		return err
	}
	for _, t := range ch.threadsSnapshot() {
		v, ok := t.state.Load(svc)
		if !ok {
			continue
		}
		db := v.(*core.DB)
		if err := merged.Merge(db); err != nil {
			return err
		}
		db.Clear()
	}
	return merged.Flush(emit)
}

// OutputRecords reports the current number of unique aggregation records
// across all threads (Table I's "output records" column), without
// flushing.
func (ch *Channel) OutputRecords() int {
	for _, svc := range ch.services {
		agg, ok := svc.(*aggregateService)
		if !ok {
			continue
		}
		// count distinct keys across threads by merging into a scratch DB
		merged, err := core.NewDB(agg.scheme, ch.reg)
		if err != nil {
			return 0
		}
		for _, t := range ch.threadsSnapshot() {
			if v, ok := t.state.Load(svc); ok {
				if err := merged.Merge(v.(*core.DB)); err != nil {
					return 0
				}
			}
		}
		return merged.Len()
	}
	return 0
}

// ---------------------------------------------------------------------------
// trace service: stores every snapshot record (per thread), emitting them
// at flush. This is the configuration the paper's overhead study compares
// aggregation against.

type traceService struct{}

type traceState struct {
	records []snapshot.Record
}

func newTraceService(ch *Channel, _ Config) (service, error) {
	svc := &traceService{}
	ch.procSnap = append(ch.procSnap, func(t *Thread, rec snapshot.Record) {
		st := t.serviceState(svc, func() any { return &traceState{} }).(*traceState)
		st.records = append(st.records, rec)
	})
	return svc, nil
}

func (*traceService) name() string { return "trace" }

func (svc *traceService) flush(ch *Channel, emit func(snapshot.FlatRecord) error) error {
	for _, t := range ch.threadsSnapshot() {
		v, ok := t.state.Load(svc)
		if !ok {
			continue
		}
		st := v.(*traceState)
		for _, rec := range st.records {
			flat, err := rec.Unpack(ch.tree, ch.reg)
			if err != nil {
				return err
			}
			if err := emit(flat); err != nil {
				return err
			}
		}
		st.records = nil
	}
	return nil
}

// TraceLength reports the number of buffered trace records across threads.
func (ch *Channel) TraceLength() int {
	n := 0
	for _, svc := range ch.services {
		ts, ok := svc.(*traceService)
		if !ok {
			continue
		}
		for _, t := range ch.threadsSnapshot() {
			if v, ok := t.state.Load(ts); ok {
				n += len(v.(*traceState).records)
			}
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// recorder service: writes flush output to a .cali file
// ("recorder.filename").

type recorderService struct {
	filename string
}

func newRecorderService(_ *Channel, cfg Config) (service, error) {
	fn := cfg["recorder.filename"]
	if fn == "" {
		return nil, fmt.Errorf("recorder.filename is required")
	}
	return &recorderService{filename: fn}, nil
}

func (*recorderService) name() string { return "recorder" }

// WriteFlushToFile flushes the channel and writes the records to the
// recorder's configured file in .cali format. It is invoked by FlushAndWrite.
func (svc *recorderService) writeFlush(ch *Channel) error {
	f, err := os.Create(svc.filename)
	if err != nil {
		return err
	}
	defer f.Close()
	w := calformat.NewWriter(f, ch.reg, ch.tree)
	if err := w.WriteGlobals(ch.Globals()); err != nil {
		return err
	}
	err = ch.FlushEmit(func(r snapshot.FlatRecord) error {
		return w.WriteFlat(r)
	})
	if err != nil {
		return err
	}
	return w.Flush()
}

// FlushAndWrite flushes the channel through its recorder service, writing
// the output records to the configured file. Without a recorder service it
// returns an error.
func (ch *Channel) FlushAndWrite() error {
	for _, svc := range ch.services {
		if rec, ok := svc.(*recorderService); ok {
			return rec.writeFlush(ch)
		}
	}
	return fmt.Errorf("caliper: FlushAndWrite: no recorder service configured")
}

// ---------------------------------------------------------------------------
// sampler service: asynchronous time-based snapshot collection. A ticker
// goroutine snapshots every registered thread at the configured frequency.
// (The original uses POSIX timer signals with an async-signal-safe
// runtime; a ticker goroutine is the Go substitute and produces the same
// snapshot stream.)

type samplerService struct {
	period time.Duration
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
}

func newSamplerService(ch *Channel, cfg Config) (service, error) {
	freq := 100.0
	if s := cfg["sampler.frequency"]; s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("invalid sampler.frequency %q", s)
		}
		freq = f
	}
	svc := &samplerService{
		period: time.Duration(float64(time.Second) / freq),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	ch.sampling = true
	go svc.run(ch)
	return svc, nil
}

func (*samplerService) name() string { return "sampler" }

func (svc *samplerService) run(ch *Channel) {
	defer close(svc.done)
	tick := time.NewTicker(svc.period)
	defer tick.Stop()
	for {
		select {
		case <-svc.stop:
			return
		case <-tick.C:
			for _, t := range ch.threadsSnapshot() {
				t.takeSnapshot()
			}
		}
	}
}

// finish stops the sampling goroutine before flush.
func (svc *samplerService) finish(_ *Channel) error {
	svc.once.Do(func() { close(svc.stop) })
	<-svc.done
	return nil
}

// ---------------------------------------------------------------------------
// metrics service: dogfooded self-instrumentation output. The library's
// own telemetry is emitted as ordinary snapshot records at flush time, so
// it flows through the same recorder/.cali/CalQL pipeline as application
// data ("AGGREGATE sum(caligo.snapshots) GROUP BY caligo.channel" works).
// Enabling the service turns the global telemetry collection on.

// Attribute labels emitted by the metrics service. Per-thread records
// carry MetricsChannelAttr, MetricsThreadAttr, MetricsSnapshotsAttr and
// MetricsUpdatesAttr; one per-process record carries MetricsChannelAttr
// plus every metric of the global telemetry registry under its own name
// (histograms expand to <name>.count/.sum/.avg/.p50/.p95/.max).
const (
	MetricsChannelAttr   = "caligo.channel"
	MetricsThreadAttr    = "caligo.thread"
	MetricsSnapshotsAttr = "caligo.snapshots"
	MetricsUpdatesAttr   = "caligo.updates"
)

const (
	metricsLabelProps = attr.AsValue | attr.SkipEvents
	metricsValueProps = attr.AsValue | attr.Aggregatable | attr.SkipEvents
)

type metricsService struct {
	chanAttr    attr.Attribute
	threadAttr  attr.Attribute
	snapsAttr   attr.Attribute
	updatesAttr attr.Attribute
}

func newMetricsService(ch *Channel, _ Config) (service, error) {
	telemetry.Enable()
	svc := &metricsService{}
	var err error
	if svc.chanAttr, err = ch.reg.Create(MetricsChannelAttr, attr.String, metricsLabelProps); err != nil {
		return nil, err
	}
	if svc.threadAttr, err = ch.reg.Create(MetricsThreadAttr, attr.Int, metricsLabelProps); err != nil {
		return nil, err
	}
	if svc.snapsAttr, err = ch.reg.Create(MetricsSnapshotsAttr, attr.Uint, metricsValueProps); err != nil {
		return nil, err
	}
	if svc.updatesAttr, err = ch.reg.Create(MetricsUpdatesAttr, attr.Uint, metricsValueProps); err != nil {
		return nil, err
	}
	return svc, nil
}

func (*metricsService) name() string { return "metrics" }

// flush emits one record per thread (snapshot and blackboard-update
// counts, labeled by channel and thread index) followed by one record
// holding the process-global telemetry registry. It runs after the other
// flushers (serviceOrder), so flush-phase metrics are already up to date.
func (svc *metricsService) flush(ch *Channel, emit func(snapshot.FlatRecord) error) error {
	for _, t := range ch.threadsSnapshot() {
		rec := snapshot.FlatRecord{
			{Attr: svc.chanAttr, Value: attr.StringV(ch.Name())},
			{Attr: svc.threadAttr, Value: attr.IntV(int64(t.index))},
			{Attr: svc.snapsAttr, Value: attr.UintV(t.Snapshots())},
			{Attr: svc.updatesAttr, Value: attr.UintV(t.Updates())},
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	rec := snapshot.FlatRecord{{Attr: svc.chanAttr, Value: attr.StringV(ch.Name())}}
	addEntry := func(name string, typ attr.Type, v attr.Variant) error {
		a, err := ch.reg.Create(name, typ, metricsValueProps)
		if err != nil {
			return err
		}
		rec = append(rec, attr.Entry{Attr: a, Value: v})
		return nil
	}
	for _, m := range telemetry.Export() {
		var err error
		switch m.Kind {
		case telemetry.KindCounter:
			err = addEntry(m.Name, attr.Uint, attr.UintV(m.Counter))
		case telemetry.KindGauge:
			err = addEntry(m.Name, attr.Int, attr.IntV(m.Gauge))
		case telemetry.KindHistogram:
			if m.Hist.Count == 0 {
				continue
			}
			s := m.Hist
			for _, e := range []struct {
				suffix string
				typ    attr.Type
				v      attr.Variant
			}{
				{".count", attr.Uint, attr.UintV(s.Count)},
				{".sum", attr.Int, attr.IntV(s.Sum)},
				{".avg", attr.Float, attr.FloatV(s.Mean())},
				{".p50", attr.Float, attr.FloatV(s.Quantile(0.5))},
				{".p95", attr.Float, attr.FloatV(s.Quantile(0.95))},
				{".max", attr.Float, attr.FloatV(s.Max())},
			} {
				if err = addEntry(m.Name+e.suffix, e.typ, e.v); err != nil {
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return emit(rec)
}

// ---------------------------------------------------------------------------
// helpers shared by services

// SortedServiceNames lists the services available in this build.
func SortedServiceNames() []string {
	names := make([]string, 0, len(serviceFactories))
	for n := range serviceFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
