package caliper

import (
	"io"

	"caligo/internal/trace"
)

// Span tracing: the runtime's second observability surface next to the
// telemetry counters. Span collection is kill-switched and off by
// default; the cali tools enable it via their -trace flags, and tests or
// host applications can toggle it with SetTracing. See
// docs/OBSERVABILITY.md for the span catalogue.

// SetTracing turns span collection on or off and returns the previous
// state. Collection is off by default; when off, instrumented call sites
// cost one atomic load and zero allocations.
func SetTracing(on bool) (previous bool) { return trace.SetEnabled(on) }

// TracingEnabled reports whether span collection is on.
func TracingEnabled() bool { return trace.Enabled() }

// WriteTrace writes all buffered spans as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// emulated MPI rank appears as its own process lane.
func WriteTrace(w io.Writer) error { return trace.WriteTrace(w) }

// WriteTraceReport writes a deterministic plain-text summary of the
// buffered spans (per span name: count, total/min/max duration).
func WriteTraceReport(w io.Writer) error { return trace.WriteReport(w) }
