package caliper

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"caligo/internal/attr"
	"caligo/internal/blackboard"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Thread is one thread of execution's measurement state: its blackboard
// and per-thread service data (e.g. its slice of the aggregation
// database). A Thread is confined to the goroutine that created it; when a
// sampler service is active, a lock serializes annotation updates against
// asynchronous snapshot collection (Go's substitute for Caliper's
// async-signal-safe implementation).
//
// Callback phases: trigger callbacks (the event service) run outside the
// thread lock and may take snapshots; measurement callbacks (the timer
// service) run under the lock together with the blackboard mutation.
// Snapshots at region begin are taken before the blackboard update, so
// the time since the previous snapshot is attributed to the enclosing
// region; snapshots at region end are taken before the region is popped,
// attributing the region's own time to it. This yields correct exclusive
// time profiles under "AGGREGATE sum(time.duration)".
type Thread struct {
	ch    *Channel
	bb    *blackboard.Blackboard
	index int

	// mu is non-nil only when sampling is enabled.
	mu *sync.Mutex

	// state holds per-service thread state, keyed by service pointer.
	state sync.Map

	// virtNow is the thread's virtual-time source in nanoseconds, used by
	// the timer service when the channel is configured with
	// "timer.source": "virtual". Owner-goroutine access only.
	virtNow int64

	snapshots atomic.Uint64

	// traceRank is the emulated MPI rank attached to this thread's trace
	// spans (the Chrome trace process lane). Atomic: the sampler goroutine
	// reads it in takeSnapshot while the owner may still be setting it.
	traceRank atomic.Int32
	// regions is the stack of open annotation-region trace spans; pushed
	// in Begin and popped by the matching End. Empty unless tracing is on.
	regions []regionSpan
}

// regionSpan pairs an open region span with the attribute that opened it,
// so End can pop the right span even when regions of different attributes
// interleave.
type regionSpan struct {
	attr attr.ID
	span trace.Span
}

func (t *Thread) lock() {
	if t.mu != nil {
		t.mu.Lock()
	}
}

func (t *Thread) unlock() {
	if t.mu != nil {
		t.mu.Unlock()
	}
}

// Channel returns the channel this thread belongs to.
func (t *Thread) Channel() *Channel { return t.ch }

// Updates reports the number of blackboard updates on this thread.
func (t *Thread) Updates() uint64 { return t.bb.Updates() }

// Snapshots reports the number of snapshots taken on this thread.
func (t *Thread) Snapshots() uint64 { return t.snapshots.Load() }

// serviceState returns this thread's state for a service, creating it
// with mk on first use.
func (t *Thread) serviceState(key any, mk func() any) any {
	if v, ok := t.state.Load(key); ok {
		return v
	}
	v, _ := t.state.LoadOrStore(key, mk())
	return v
}

// resolve finds or creates the attribute for an annotation. New attributes
// default to nested regions (begin/end stack semantics) of the value's
// type.
func (t *Thread) resolve(name string, v attr.Variant) (attr.Attribute, error) {
	if a, ok := t.ch.reg.Find(name); ok {
		return a, nil
	}
	typ := v.Kind()
	if typ == attr.Inv {
		typ = attr.String
	}
	return t.ch.reg.Create(name, typ, attr.Nested)
}

// coerce converts v to the attribute's type if needed.
func coerce(a attr.Attribute, v attr.Variant, op, name string) (attr.Variant, error) {
	if a.Type() == v.Kind() {
		return v, nil
	}
	conv, err := attr.ParseAs(v.String(), a.Type())
	if err != nil {
		return attr.Variant{}, fmt.Errorf("caliper: %s(%s): value %q does not match attribute type %v",
			op, name, v.String(), a.Type())
	}
	return conv, nil
}

// Begin opens an annotated region: it pushes value onto the named
// attribute's stack. The attribute is created on first use with nested
// region semantics. Services observe the update; with the event service
// enabled, a snapshot is triggered before the update.
func (t *Thread) Begin(name string, value any) error {
	v := attr.GuessV(value)
	a, err := t.resolve(name, v)
	if err != nil {
		return err
	}
	v, err = coerce(a, v, "Begin", name)
	if err != nil {
		return err
	}
	events := a.Properties()&attr.SkipEvents == 0
	if events {
		for _, fn := range t.ch.preBeginTrig {
			fn(t, a, v)
		}
	}
	t.lock()
	if events {
		for _, fn := range t.ch.preBeginMeas {
			fn(t, a, v)
		}
	}
	err = t.bb.Begin(a, v)
	t.unlock()
	if err == nil {
		if sp := trace.BeginRank(v.String(), int(t.traceRank.Load())); sp.Active() {
			sp.SetTid(t.index)
			sp.Arg("attr", name)
			t.regions = append(t.regions, regionSpan{attr: a.ID(), span: sp})
		}
	}
	return err
}

// End closes the innermost open region of the named attribute. With the
// event service enabled, a snapshot is taken before the region is popped,
// so its data is still attributed to the region.
func (t *Thread) End(name string) error {
	a, ok := t.ch.reg.Find(name)
	if !ok {
		return fmt.Errorf("caliper: End(%s): unknown attribute", name)
	}
	events := a.Properties()&attr.SkipEvents == 0
	if events {
		t.lock()
		for _, fn := range t.ch.preEndMeas {
			fn(t, a)
		}
		t.unlock()
		for _, fn := range t.ch.preEndTrig {
			fn(t, a)
		}
	}
	t.lock()
	err := t.bb.End(a)
	t.unlock()
	if err == nil {
		// pop the innermost region span opened by this attribute
		for i := len(t.regions) - 1; i >= 0; i-- {
			if t.regions[i].attr == a.ID() {
				t.regions[i].span.End()
				t.regions = append(t.regions[:i], t.regions[i+1:]...)
				break
			}
		}
	}
	return err
}

// Set replaces the innermost value of the named attribute (opening a
// region if none is open). Services observe the update like Begin.
func (t *Thread) Set(name string, value any) error {
	v := attr.GuessV(value)
	a, err := t.resolve(name, v)
	if err != nil {
		return err
	}
	v, err = coerce(a, v, "Set", name)
	if err != nil {
		return err
	}
	events := a.Properties()&attr.SkipEvents == 0
	if events {
		for _, fn := range t.ch.preBeginTrig {
			fn(t, a, v)
		}
	}
	t.lock()
	if events {
		for _, fn := range t.ch.preBeginMeas {
			fn(t, a, v)
		}
	}
	err = t.bb.Set(a, v)
	t.unlock()
	return err
}

// Snapshot explicitly triggers a snapshot on this thread: the current
// blackboard contents are captured, measurement services append their
// data, and processing services consume the record.
func (t *Thread) Snapshot() {
	t.takeSnapshot()
}

// takeSnapshot builds and dispatches one snapshot record. The whole
// capture-measure-process sequence runs under the thread lock (when
// sampling), so owner-triggered and sampler-triggered snapshots serialize
// against blackboard updates and per-thread service state.
func (t *Thread) takeSnapshot() {
	var snapStart time.Time
	if telemetry.Enabled() {
		snapStart = time.Now()
	}
	sp := trace.BeginRank("caliper.snapshot", int(t.traceRank.Load()))
	sp.SetTid(t.index)
	defer sp.End()
	t.lock()
	defer t.unlock()
	var sb snapshot.Builder
	t.bb.Snapshot(&sb)
	for _, fn := range t.ch.onSnapshot {
		fn(t, &sb)
	}
	rec := sb.Record()
	t.snapshots.Add(1)
	t.ch.snapshots.Add(1)
	for _, fn := range t.ch.procSnap {
		fn(t, rec)
	}
	if !snapStart.IsZero() {
		telSnapshotNS.Observe(time.Since(snapStart).Nanoseconds())
	}
}

// SetTraceRank tags this thread's trace spans with an emulated MPI rank;
// the rank becomes the span's process lane in the Chrome trace export.
func (t *Thread) SetTraceRank(rank int) { t.traceRank.Store(int32(rank)) }

// SetVirtualTime sets the thread's virtual clock (nanoseconds). Only
// meaningful with "timer.source": "virtual"; must be called from the
// owning goroutine. Virtual time never runs backwards: setting an earlier
// time is a no-op.
func (t *Thread) SetVirtualTime(ns int64) {
	if ns > t.virtNow {
		t.virtNow = ns
	}
}

// AdvanceVirtualTime adds to the thread's virtual clock.
func (t *Thread) AdvanceVirtualTime(ns int64) {
	if ns > 0 {
		t.virtNow += ns
	}
}

// VirtualTime returns the thread's virtual clock in nanoseconds.
func (t *Thread) VirtualTime() int64 { return t.virtNow }
