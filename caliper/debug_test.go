package caliper

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"caligo/internal/obs"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

func TestDebugHandlerEndpoints(t *testing.T) {
	// generate some telemetry and trace data so the bodies are non-trivial
	prevTel := telemetry.SetEnabled(true)
	prevTr := trace.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(prevTel)
		trace.SetEnabled(prevTr)
	})
	ch, err := NewChannel(Config{
		"services":      "event,aggregate",
		"aggregate.key": "phase",
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	th.SetTraceRank(1)
	if err := th.Begin("phase", "debug-test"); err != nil {
		t.Fatal(err)
	}
	if err := th.End("phase"); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Flush(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	t.Run("telemetry", func(t *testing.T) {
		code, body, ctype := get("/debug/telemetry")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Errorf("content type %q", ctype)
		}
		if !strings.Contains(body, "caligo.snapshot.ns") {
			t.Errorf("telemetry report missing snapshot counter:\n%s", body)
		}
	})

	t.Run("trace", func(t *testing.T) {
		code, body, ctype := get("/debug/trace")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("content type %q", ctype)
		}
		var parsed struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("trace body is not valid JSON: %v\n%s", err, body)
		}
		var names []string
		for _, e := range parsed.TraceEvents {
			if n, ok := e["name"].(string); ok {
				names = append(names, n)
			}
		}
		joined := strings.Join(names, " ")
		for _, want := range []string{"caliper.snapshot", "caliper.flush", "debug-test"} {
			if !strings.Contains(joined, want) {
				t.Errorf("trace missing span %q in %v", want, names)
			}
		}
	})

	t.Run("expvar", func(t *testing.T) {
		code, body, _ := get("/debug/vars")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var parsed map[string]any
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("expvar body is not valid JSON: %v", err)
		}
		if _, ok := parsed["caligo.telemetry"]; !ok {
			t.Error("expvar output missing caligo.telemetry")
		}
	})

	t.Run("pprof", func(t *testing.T) {
		code, body, _ := get("/debug/pprof/")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(body, "goroutine") {
			t.Errorf("pprof index missing profile list:\n%.200s", body)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		code, body, ctype := get("/debug/metrics")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if ctype != obs.ContentType {
			t.Errorf("content type %q, want %q", ctype, obs.ContentType)
		}
		parsed, err := obs.ParseMetrics(strings.NewReader(body))
		if err != nil {
			t.Fatalf("metrics body is not valid OpenMetrics: %v\n%s", err, body)
		}
		if !parsed.EOF {
			t.Error("metrics body missing # EOF terminator")
		}
		if _, ok := parsed.Families["caligo_snapshot_ns"]; !ok {
			t.Errorf("metrics missing caligo_snapshot_ns family; have %d families", len(parsed.Families))
		}
	})

	t.Run("queries", func(t *testing.T) {
		code, body, ctype := get("/debug/queries")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("content type %q", ctype)
		}
		var doc struct {
			Total   uint64           `json:"total"`
			Queries []map[string]any `json:"queries"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("queries body is not valid JSON: %v\n%s", err, body)
		}
	})

	t.Run("log", func(t *testing.T) {
		code, body, ctype := get("/debug/log")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/x-ndjson") {
			t.Errorf("content type %q", ctype)
		}
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			if line != "" && !json.Valid([]byte(line)) {
				t.Errorf("flight recorder line is not JSON: %q", line)
			}
		}
	})
}

// TestDebugHandlerMethodNotAllowed: every endpoint is GET-only.
func TestDebugHandlerMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	for _, path := range []string{
		"/debug/metrics", "/debug/queries", "/debug/log",
		"/debug/telemetry", "/debug/trace", "/debug/vars", "/debug/pprof/",
		"/debug/selfprofile",
	} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s: Allow header %q, want GET", path, allow)
		}
	}
}

// TestDebugMetricsScrapeWhileMutate scrapes /debug/metrics, /debug/log,
// and /debug/queries while telemetry mutates underneath (run under -race
// in CI).
func TestDebugMetricsScrapeWhileMutate(t *testing.T) {
	prevTel := telemetry.SetEnabled(true)
	prevLog := obs.SetLogEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(prevTel)
		obs.SetLogEnabled(prevLog)
	})
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var mutators sync.WaitGroup
	for w := 0; w < 2; w++ {
		mutators.Add(1)
		go func() {
			defer mutators.Done()
			c := telemetry.NewCounter("caligo.debugtest.events")
			h := telemetry.NewHistogram("caligo.debugtest.ns")
			log := obs.Logger("debugtest")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(int64(i%1000 + 1))
				log.Info("mutate", "i", i)
				aq := obs.BeginQuery("AGGREGATE count", "serial")
				aq.AddRecords(1)
				aq.End(nil)
			}
		}()
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 3; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 20; i++ {
				for _, path := range []string{"/debug/metrics", "/debug/log", "/debug/queries"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if path == "/debug/metrics" {
						if _, err := obs.ParseMetrics(strings.NewReader(string(body))); err != nil {
							t.Errorf("scrape %d: invalid OpenMetrics: %v", i, err)
							return
						}
					}
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	mutators.Wait()
}

func TestServeDebugServesHandler(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
