package caliper

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

func TestDebugHandlerEndpoints(t *testing.T) {
	// generate some telemetry and trace data so the bodies are non-trivial
	prevTel := telemetry.SetEnabled(true)
	prevTr := trace.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(prevTel)
		trace.SetEnabled(prevTr)
	})
	ch, err := NewChannel(Config{
		"services":      "event,aggregate",
		"aggregate.key": "phase",
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	th.SetTraceRank(1)
	if err := th.Begin("phase", "debug-test"); err != nil {
		t.Fatal(err)
	}
	if err := th.End("phase"); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Flush(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	t.Run("telemetry", func(t *testing.T) {
		code, body, ctype := get("/debug/telemetry")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Errorf("content type %q", ctype)
		}
		if !strings.Contains(body, "caligo.snapshot.ns") {
			t.Errorf("telemetry report missing snapshot counter:\n%s", body)
		}
	})

	t.Run("trace", func(t *testing.T) {
		code, body, ctype := get("/debug/trace")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("content type %q", ctype)
		}
		var parsed struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("trace body is not valid JSON: %v\n%s", err, body)
		}
		var names []string
		for _, e := range parsed.TraceEvents {
			if n, ok := e["name"].(string); ok {
				names = append(names, n)
			}
		}
		joined := strings.Join(names, " ")
		for _, want := range []string{"caliper.snapshot", "caliper.flush", "debug-test"} {
			if !strings.Contains(joined, want) {
				t.Errorf("trace missing span %q in %v", want, names)
			}
		}
	})

	t.Run("expvar", func(t *testing.T) {
		code, body, _ := get("/debug/vars")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var parsed map[string]any
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("expvar body is not valid JSON: %v", err)
		}
		if _, ok := parsed["caligo.telemetry"]; !ok {
			t.Error("expvar output missing caligo.telemetry")
		}
	})

	t.Run("pprof", func(t *testing.T) {
		code, body, _ := get("/debug/pprof/")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(body, "goroutine") {
			t.Errorf("pprof index missing profile list:\n%.200s", body)
		}
	})
}

func TestServeDebugServesHandler(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
