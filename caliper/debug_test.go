package caliper

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"caligo/internal/obs"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

func TestDebugHandlerEndpoints(t *testing.T) {
	// generate some telemetry and trace data so the bodies are non-trivial
	prevTel := telemetry.SetEnabled(true)
	prevTr := trace.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(prevTel)
		trace.SetEnabled(prevTr)
	})
	ch, err := NewChannel(Config{
		"services":      "event,aggregate",
		"aggregate.key": "phase",
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	th.SetTraceRank(1)
	if err := th.Begin("phase", "debug-test"); err != nil {
		t.Fatal(err)
	}
	if err := th.End("phase"); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Flush(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	t.Run("telemetry", func(t *testing.T) {
		code, body, ctype := get("/debug/telemetry")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Errorf("content type %q", ctype)
		}
		if !strings.Contains(body, "caligo.snapshot.ns") {
			t.Errorf("telemetry report missing snapshot counter:\n%s", body)
		}
	})

	t.Run("trace", func(t *testing.T) {
		code, body, ctype := get("/debug/trace")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("content type %q", ctype)
		}
		var parsed struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("trace body is not valid JSON: %v\n%s", err, body)
		}
		var names []string
		for _, e := range parsed.TraceEvents {
			if n, ok := e["name"].(string); ok {
				names = append(names, n)
			}
		}
		joined := strings.Join(names, " ")
		for _, want := range []string{"caliper.snapshot", "caliper.flush", "debug-test"} {
			if !strings.Contains(joined, want) {
				t.Errorf("trace missing span %q in %v", want, names)
			}
		}
	})

	t.Run("expvar", func(t *testing.T) {
		code, body, _ := get("/debug/vars")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var parsed map[string]any
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("expvar body is not valid JSON: %v", err)
		}
		if _, ok := parsed["caligo.telemetry"]; !ok {
			t.Error("expvar output missing caligo.telemetry")
		}
	})

	t.Run("pprof", func(t *testing.T) {
		code, body, _ := get("/debug/pprof/")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(body, "goroutine") {
			t.Errorf("pprof index missing profile list:\n%.200s", body)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		code, body, ctype := get("/debug/metrics")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if ctype != obs.ContentType {
			t.Errorf("content type %q, want %q", ctype, obs.ContentType)
		}
		parsed, err := obs.ParseMetrics(strings.NewReader(body))
		if err != nil {
			t.Fatalf("metrics body is not valid OpenMetrics: %v\n%s", err, body)
		}
		if !parsed.EOF {
			t.Error("metrics body missing # EOF terminator")
		}
		if _, ok := parsed.Families["caligo_snapshot_ns"]; !ok {
			t.Errorf("metrics missing caligo_snapshot_ns family; have %d families", len(parsed.Families))
		}
	})

	t.Run("queries", func(t *testing.T) {
		code, body, ctype := get("/debug/queries")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("content type %q", ctype)
		}
		var doc struct {
			Total   uint64           `json:"total"`
			Queries []map[string]any `json:"queries"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("queries body is not valid JSON: %v\n%s", err, body)
		}
	})

	t.Run("log", func(t *testing.T) {
		code, body, ctype := get("/debug/log")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/x-ndjson") {
			t.Errorf("content type %q", ctype)
		}
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			if line != "" && !json.Valid([]byte(line)) {
				t.Errorf("flight recorder line is not JSON: %q", line)
			}
		}
	})
}

// TestDebugHistoryAndClusterEndpoints covers the telemetry-history
// JSON endpoints: the retained-window timeline (with ?window= / ?rank=
// filters) and the cluster-wide merged view.
func TestDebugHistoryAndClusterEndpoints(t *testing.T) {
	prevTel := telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prevTel) })
	reg := telemetry.NewRegistry()
	if err := StartHistory(HistoryOptions{
		Dir: t.TempDir(), Interval: time.Hour, Rank: 2, Registry: reg,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(StopHistory)
	c := reg.Counter("debugtest.history.events")
	rec := HistoryRecorder()
	for i := 0; i < 2; i++ {
		c.Add(5)
		if _, err := rec.CaptureNow(); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}
	type windowsDoc struct {
		Count   int `json:"count"`
		Windows []struct {
			Rank    int `json:"rank"`
			Metrics []struct {
				Name  string `json:"name"`
				Delta uint64 `json:"delta"`
			} `json:"metrics"`
		} `json:"windows"`
	}
	getDoc := func(path string) windowsDoc {
		t.Helper()
		code, body, ctype := get(path)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("GET %s: content type %q", path, ctype)
		}
		var doc windowsDoc
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
		return doc
	}

	t.Run("history", func(t *testing.T) {
		doc := getDoc("/debug/history")
		if doc.Count != 2 || len(doc.Windows) != 2 {
			t.Fatalf("count/windows = %d/%d, want 2/2", doc.Count, len(doc.Windows))
		}
		w := doc.Windows[0]
		if w.Rank != 2 {
			t.Errorf("window rank = %d, want 2", w.Rank)
		}
		if len(w.Metrics) != 1 || w.Metrics[0].Name != "debugtest.history.events" || w.Metrics[0].Delta != 5 {
			t.Errorf("window metrics = %+v", w.Metrics)
		}
	})

	t.Run("history filters", func(t *testing.T) {
		if doc := getDoc("/debug/history?window=1"); doc.Count != 1 {
			t.Errorf("?window=1 count = %d, want 1", doc.Count)
		}
		if doc := getDoc("/debug/history?rank=2"); doc.Count != 2 {
			t.Errorf("?rank=2 count = %d, want 2", doc.Count)
		}
		if doc := getDoc("/debug/history?rank=99"); doc.Count != 0 {
			t.Errorf("?rank=99 count = %d, want 0", doc.Count)
		}
		for _, q := range []string{"?window=x", "?window=-1", "?rank=x", "?rank=-2"} {
			if code, _, _ := get("/debug/history" + q); code != http.StatusBadRequest {
				t.Errorf("GET /debug/history%s: status %d, want 400", q, code)
			}
		}
	})

	t.Run("cluster", func(t *testing.T) {
		code, body, ctype := get("/debug/cluster")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("content type %q", ctype)
		}
		var doc struct {
			Ranks       int              `json:"ranks"`
			SlowestRank *int             `json:"slowest_rank"`
			Metrics     []map[string]any `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("cluster body is not valid JSON: %v\n%s", err, body)
		}
		if doc.SlowestRank == nil || doc.Metrics == nil {
			t.Errorf("cluster document missing slowest_rank/metrics fields:\n%s", body)
		}
	})
}

// TestDebugHandlerMethodNotAllowed: every endpoint is GET-only.
func TestDebugHandlerMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	for _, path := range []string{
		"/debug/metrics", "/debug/queries", "/debug/log",
		"/debug/telemetry", "/debug/trace", "/debug/vars", "/debug/pprof/",
		"/debug/selfprofile", "/debug/history", "/debug/cluster",
	} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s: Allow header %q, want GET", path, allow)
		}
	}
}

// TestDebugMetricsScrapeWhileMutate scrapes /debug/metrics, /debug/log,
// and /debug/queries while telemetry mutates underneath (run under -race
// in CI).
func TestDebugMetricsScrapeWhileMutate(t *testing.T) {
	prevTel := telemetry.SetEnabled(true)
	prevLog := obs.SetLogEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(prevTel)
		obs.SetLogEnabled(prevLog)
	})
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var mutators sync.WaitGroup
	for w := 0; w < 2; w++ {
		mutators.Add(1)
		go func() {
			defer mutators.Done()
			c := telemetry.NewCounter("caligo.debugtest.events")
			h := telemetry.NewHistogram("caligo.debugtest.ns")
			log := obs.Logger("debugtest")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(int64(i%1000 + 1))
				log.Info("mutate", "i", i)
				aq := obs.BeginQuery("AGGREGATE count", "serial")
				aq.AddRecords(1)
				aq.End(nil)
			}
		}()
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 3; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 20; i++ {
				for _, path := range []string{"/debug/metrics", "/debug/log", "/debug/queries"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if path == "/debug/metrics" {
						if _, err := obs.ParseMetrics(strings.NewReader(string(body))); err != nil {
							t.Errorf("scrape %d: invalid OpenMetrics: %v", i, err)
							return
						}
					}
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	mutators.Wait()
}

func TestServeDebugServesHandler(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
