package caliper

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// publishOnce guards the process-wide expvar registration (expvar.Publish
// panics on duplicate names).
var publishOnce sync.Once

// publishTelemetry exposes the telemetry registry under the
// "caligo.telemetry" expvar, making it visible on any /debug/vars
// endpoint the host process serves — not just the one ServeDebug mounts.
func publishTelemetry() {
	publishOnce.Do(func() {
		expvar.Publish("caligo.telemetry", expvar.Func(func() any {
			return telemetry.ExportMap()
		}))
	})
}

// DebugServer is a running runtime-introspection HTTP endpoint started by
// ServeDebug.
type DebugServer struct {
	ln net.Listener
}

// Addr returns the server's bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *DebugServer) Close() error { return s.ln.Close() }

// DebugHandler returns the HTTP handler ServeDebug serves:
//
//	/debug/telemetry — plain-text report of the internal telemetry registry
//	/debug/trace     — buffered trace spans as Chrome trace-event JSON
//	/debug/vars      — expvar JSON, including the "caligo.telemetry" var
//	/debug/pprof/    — the standard net/http/pprof profiling handlers
//
// Exposed separately so host applications can mount the endpoints on
// their own server (and tests can drive them with httptest).
func DebugHandler() http.Handler {
	publishTelemetry()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		telemetry.WriteReport(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		trace.WriteTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts an HTTP debug endpoint on addr serving the
// DebugHandler routes. It does not turn telemetry or trace collection on;
// enable them with the "metrics" service, -stats / -trace flags, or
// telemetry.Enable() / SetTracing to see non-empty output. The endpoint
// uses its own mux, so it never conflicts with handlers the host
// application registers on http.DefaultServeMux.
func ServeDebug(addr string) (*DebugServer, error) {
	mux := DebugHandler()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("caliper: ServeDebug: %w", err)
	}
	srv := &DebugServer{ln: ln}
	go func() {
		// ErrServerClosed/closed-listener errors are the normal shutdown
		// path; there is no caller to report others to.
		_ = http.Serve(ln, mux)
	}()
	return srv, nil
}
