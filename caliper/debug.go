package caliper

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"caligo/internal/obs"
	"caligo/internal/obs/history"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// publishOnce guards the process-wide expvar registration (expvar.Publish
// panics on duplicate names).
var publishOnce sync.Once

// publishTelemetry exposes the telemetry registry under the
// "caligo.telemetry" expvar, making it visible on any /debug/vars
// endpoint the host process serves — not just the one ServeDebug mounts.
func publishTelemetry() {
	publishOnce.Do(func() {
		expvar.Publish("caligo.telemetry", expvar.Func(func() any {
			return telemetry.ExportMap()
		}))
	})
}

// WriteMetrics writes the telemetry registry in OpenMetrics text format —
// the /debug/metrics body — so host applications can expose the metrics on
// their own scrape endpoint without mounting the debug handler.
func WriteMetrics(w io.Writer) error { return obs.WriteMetrics(w) }

// DebugServer is a running runtime-introspection HTTP endpoint started by
// ServeDebug.
type DebugServer struct {
	ln          net.Listener
	stopSampler func()
}

// Addr returns the server's bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and the runtime sampler it started.
func (s *DebugServer) Close() error {
	if s.stopSampler != nil {
		s.stopSampler()
	}
	return s.ln.Close()
}

// getOnly rejects non-GET methods with 405 — every debug endpoint is a
// read-only resource.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// DebugHandler returns the HTTP handler ServeDebug serves:
//
//	/debug/metrics     — telemetry registry in OpenMetrics text format
//	/debug/queries     — per-query attribution table as JSON (active + recent)
//	/debug/log         — structured-log flight recorder dump as NDJSON
//	/debug/telemetry   — plain-text report of the internal telemetry registry
//	/debug/trace       — buffered trace spans as Chrome trace-event JSON
//	/debug/selfprofile — self-profiling as .cali data (see selfProfileHandler)
//	/debug/history     — retained telemetry windows as JSON
//	                     (?window=N keeps the last N, ?rank=R filters by rank)
//	/debug/cluster     — cluster-wide telemetry view from the latest
//	                     telemetry-reduction epoch as JSON
//	/debug/vars        — expvar JSON, including the "caligo.telemetry" var
//	/debug/pprof/      — the standard net/http/pprof profiling handlers
//
// All endpoints are GET-only (405 otherwise) and set explicit
// Content-Type headers. Exposed separately so host applications can mount
// the endpoints on their own server (and tests can drive them with
// httptest).
func DebugHandler() http.Handler {
	publishTelemetry()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", getOnly(expvar.Handler().ServeHTTP))
	mux.HandleFunc("/debug/metrics", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		obs.WriteMetrics(w)
	}))
	mux.HandleFunc("/debug/queries", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		obs.WriteQueryStats(w)
	}))
	mux.HandleFunc("/debug/log", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		obs.WriteFlightRecorder(w)
	}))
	mux.HandleFunc("/debug/telemetry", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		telemetry.WriteReport(w)
	}))
	mux.HandleFunc("/debug/trace", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		trace.WriteTrace(w)
	}))
	mux.HandleFunc("/debug/selfprofile", getOnly(selfProfileHandler))
	mux.HandleFunc("/debug/history", getOnly(historyHandler))
	mux.HandleFunc("/debug/cluster", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		history.WriteClusterJSON(w)
	}))
	mux.HandleFunc("/debug/pprof/", getOnly(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", getOnly(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", getOnly(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", getOnly(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", getOnly(pprof.Trace))
	return mux
}

// historyHandler serves the retained telemetry windows of the process's
// history recorder as JSON. ?window=N keeps only the most recent N
// windows; ?rank=R keeps only windows stamped with rank R. Without a
// running recorder it serves an empty document (the endpoint shape stays
// scrape-friendly either way).
func historyHandler(w http.ResponseWriter, r *http.Request) {
	lastN, rank := 0, -1
	if v := r.URL.Query().Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad ?window= (want a non-negative integer)", http.StatusBadRequest)
			return
		}
		lastN = n
	}
	if v := r.URL.Query().Get("rank"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad ?rank= (want a non-negative integer)", http.StatusBadRequest)
			return
		}
		rank = n
	}
	var windows []history.Window
	if rec := historyRecorder(); rec != nil {
		windows = history.FilterWindows(rec.Windows(), lastN, rank)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	history.WriteWindowsJSON(w, windows)
}

// ServeDebug starts an HTTP debug endpoint on addr serving the
// DebugHandler routes, plus the background runtime sampler feeding the
// caligo.runtime.* gauges (stopped again by Close). It does not turn
// telemetry or trace collection on; enable them with the "metrics"
// service, -stats / -trace flags, or telemetry.Enable() / SetTracing to
// see non-empty output. The endpoint uses its own mux, so it never
// conflicts with handlers the host application registers on
// http.DefaultServeMux.
func ServeDebug(addr string) (*DebugServer, error) {
	mux := DebugHandler()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("caliper: ServeDebug: %w", err)
	}
	srv := &DebugServer{ln: ln, stopSampler: obs.StartRuntimeSampler(0)}
	go func() {
		// ErrServerClosed/closed-listener errors are the normal shutdown
		// path; there is no caller to report others to.
		_ = http.Serve(ln, mux)
	}()
	return srv, nil
}
