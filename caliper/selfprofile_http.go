package caliper

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"caligo/internal/prof"
)

// maxTriggerWindow caps on-demand CPU windows requested over HTTP so a
// stray query parameter cannot pin the profiler for minutes.
const maxTriggerWindow = 30 * time.Second

// selfProfileHandler serves /debug/selfprofile (GET only, enforced by the
// getOnly wrapper in DebugHandler):
//
//	/debug/selfprofile                  — latest retained .cali file
//	/debug/selfprofile?kind=heap        — latest retained file of that kind
//	/debug/selfprofile?trigger=cpu&window=1s — capture now, return the .cali
//	/debug/selfprofile?trigger=heap     — point-in-time capture, return it
//	/debug/selfprofile?status=1         — profiler status as JSON
//
// Triggered captures work with or without the continuous profiler: when
// it runs, the capture also lands in its retention ring; otherwise the
// profile is captured in memory and only returned.
func selfProfileHandler(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("status") != "" {
		writeSelfProfileStatus(w)
		return
	}
	if kind := q.Get("trigger"); kind != "" {
		triggerSelfProfile(w, kind, q.Get("window"))
		return
	}
	serveLatestSelfProfile(w, q.Get("kind"))
}

func writeSelfProfileStatus(w http.ResponseWriter) {
	type status struct {
		Running   bool     `json:"running"`
		Dir       string   `json:"dir,omitempty"`
		Interval  string   `json:"interval,omitempty"`
		CPUWindow string   `json:"cpu_window,omitempty"`
		Kinds     []string `json:"kinds,omitempty"`
		MaxFiles  int      `json:"max_files,omitempty"`
		Files     []string `json:"files"`
	}
	st := status{Files: []string{}}
	if p := selfProfiler(); p != nil {
		opts := p.Options()
		st.Running = true
		st.Dir = opts.Dir
		st.Interval = opts.Interval.String()
		st.CPUWindow = opts.CPUWindow.String()
		st.Kinds = opts.Kinds
		st.MaxFiles = opts.MaxFiles
		st.Files = p.Files()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

func triggerSelfProfile(w http.ResponseWriter, kind, windowStr string) {
	if !prof.KnownKind(kind) {
		http.Error(w, fmt.Sprintf("unknown profile kind %q", kind), http.StatusBadRequest)
		return
	}
	window := time.Second
	if windowStr != "" {
		d, err := time.ParseDuration(windowStr)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("bad window %q", windowStr), http.StatusBadRequest)
			return
		}
		window = d
	}
	if window > maxTriggerWindow {
		window = maxTriggerWindow
	}
	// with the ring running, capture through it so the file is retained
	if p := selfProfiler(); p != nil {
		var (
			path string
			err  error
		)
		if kind == "cpu" {
			path, err = p.TriggerWindow(window)
		} else {
			path, err = p.TriggerPoint(kind)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		serveCaliFile(w, path)
		return
	}
	cali, _, err := prof.CaptureCali(kind, window)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(cali)
}

func serveLatestSelfProfile(w http.ResponseWriter, kind string) {
	p := selfProfiler()
	if p == nil {
		http.Error(w, "self-profiling not running (use ?trigger=cpu&window=1s for an on-demand capture)",
			http.StatusNotFound)
		return
	}
	path, ok := p.Latest(kind)
	if !ok {
		http.Error(w, "no profile captured yet", http.StatusNotFound)
		return
	}
	serveCaliFile(w, path)
}

func serveCaliFile(w http.ResponseWriter, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Cali-File", filepath.Base(path))
	w.Write(data)
}
