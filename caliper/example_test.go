package caliper_test

import (
	"fmt"

	"caligo/caliper"
	"caligo/calql"
)

// Example reproduces the paper's Listing 1 program with the scheme
// "AGGREGATE count GROUP BY function, loop.iteration", using virtual time
// so the output is deterministic.
func Example() {
	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "function,loop.iteration",
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		panic(err)
	}
	th := ch.Thread()

	call := func(name string, cost int64) {
		th.Begin("function", name)
		th.AdvanceVirtualTime(cost)
		th.End("function")
	}
	for i := 0; i < 2; i++ {
		th.Begin("loop.iteration", i)
		call("foo", 10)
		call("foo", 10)
		call("bar", 5)
		th.End("loop.iteration")
	}

	rs, err := calql.QueryChannel(`
		SELECT function, loop.iteration, aggregate.count AS count,
		       sum#time.duration AS time
		AGGREGATE count, sum(time.duration)
		WHERE function, loop.iteration
		GROUP BY function, loop.iteration
		ORDER BY loop.iteration, function`, ch)
	if err != nil {
		panic(err)
	}
	fmt.Print(rs.String())
	// Output:
	// function loop.iteration count time
	// bar                   0     1    5
	// foo                   0     2   20
	// bar                   1     1    5
	// foo                   1     2   20
}

// ExamplePreset shows the ready-made configuration profiles.
func ExamplePreset() {
	cfg, err := caliper.Preset("runtime-report", "aggregate.key=region")
	if err != nil {
		panic(err)
	}
	ch, err := caliper.NewChannel(cfg)
	if err != nil {
		panic(err)
	}
	th := ch.Thread()
	th.Begin("region", "solve")
	th.End("region")
	rows, _ := ch.Flush()
	for _, r := range rows {
		if v, ok := r.GetByName("region"); ok {
			fmt.Println("region:", v.String())
		}
	}
	// Output:
	// region: solve
}

// ExampleChannel_SetGlobal records per-run metadata.
func ExampleChannel_SetGlobal() {
	ch, _ := caliper.NewChannel(caliper.Config{"services": "event"})
	ch.SetGlobal("experiment", "triple-point")
	ch.SetGlobal("resolution", 640)
	for _, g := range ch.Globals() {
		fmt.Printf("%s = %s\n", g.Attr.Name(), g.Value.String())
	}
	// Output:
	// experiment = triple-point
	// resolution = 640
}
