package caliper

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

func mustChannel(t *testing.T, cfg Config) *Channel {
	t.Helper()
	ch, err := NewChannel(cfg)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return ch
}

// getInt fetches a named int value from a record, failing the test if absent.
func getInt(t *testing.T, r snapshot.FlatRecord, name string) int64 {
	t.Helper()
	v, ok := r.GetByName(name)
	if !ok {
		t.Fatalf("record %s has no %q", r, name)
	}
	return v.AsInt()
}

func TestUnknownServiceRejected(t *testing.T) {
	if _, err := NewChannel(Config{"services": "frobnicator"}); err == nil {
		t.Error("unknown service should error")
	}
}

func TestListing1EndToEnd(t *testing.T) {
	// The paper's Listing 1 program with the scheme
	// AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration
	ch := mustChannel(t, Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": "function,loop.iteration",
		"aggregate.ops": "count,sum(time.duration)",
	})
	th := ch.Thread()

	foo := func(int) {
		th.Begin("function", "foo")
		th.End("function")
	}
	bar := func(int) {
		th.Begin("function", "bar")
		th.End("function")
	}
	for i := 0; i < 4; i++ {
		th.Begin("loop.iteration", i)
		foo(1)
		foo(2)
		bar(1)
		th.End("loop.iteration")
	}
	rows, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// expected groups: (foo,i) and (bar,i) for i in 0..3, (none,i) from the
	// begin-loop.iteration and end-loop.iteration snapshots, and a (none,none)
	// group from the first/last events outside the loop.
	type key struct {
		fn string
		it string
	}
	got := map[key]int64{}
	for _, r := range rows {
		fn, _ := r.GetByName("function")
		it, _ := r.GetByName("loop.iteration")
		cnt := getInt(t, r, "aggregate.count")
		got[key{fn.String(), it.String()}] = cnt
	}
	for i := 0; i < 4; i++ {
		is := []string{"0", "1", "2", "3"}[i]
		// foo begins twice and ends twice per iteration: snapshots at
		// begin(foo) carry (none,i); snapshots at end(foo) carry (foo,i)
		if got[key{"foo", is}] != 2 {
			t.Errorf("(foo,%s) count = %d, want 2", is, got[key{"foo", is}])
		}
		if got[key{"bar", is}] != 1 {
			t.Errorf("(bar,%s) count = %d, want 1", is, got[key{"bar", is}])
		}
		// per iteration: begin(iter), 2x begin(foo), 1x begin(bar),
		// end(iter) events all carry (none, i): that's 1+3+1 = 5... but
		// begin(iter) is pre-update so it carries (none, none) or the
		// previous iteration!
	}
	// every function event must have accumulated some runtime
	for _, r := range rows {
		if fn, ok := r.GetByName("function"); ok && fn.String() != "" {
			if _, ok := r.GetByName("sum#time.duration"); !ok {
				t.Errorf("row %s lacks sum#time.duration", r)
			}
		}
	}
}

func TestExclusiveTimeAttribution(t *testing.T) {
	// Time spent inside a region must be attributed to the region; time
	// around it to the parent. Work ~5ms in foo, ~5ms in main outside foo.
	ch := mustChannel(t, Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": "function",
		"aggregate.ops": "sum(time.duration)",
	})
	th := ch.Thread()
	th.Begin("function", "main")
	time.Sleep(3 * time.Millisecond) // attributed to main
	th.Begin("function", "foo")
	time.Sleep(6 * time.Millisecond) // attributed to main/foo
	th.End("function")
	time.Sleep(3 * time.Millisecond) // attributed to main
	th.End("function")

	rows, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	var mainNs, fooNs int64
	for _, r := range rows {
		path := r.PathOf(mustFind(t, ch, "function").ID(), "/")
		sum, ok := r.GetByName("sum#time.duration")
		if !ok {
			continue
		}
		switch path {
		case "main":
			mainNs = sum.AsInt()
		case "main/foo":
			fooNs = sum.AsInt()
		}
	}
	if mainNs < 4_000_000 || mainNs > 20_000_000 {
		t.Errorf("main time = %v ns, want ~6ms", mainNs)
	}
	if fooNs < 4_000_000 || fooNs > 20_000_000 {
		t.Errorf("foo time = %v ns, want ~6ms", fooNs)
	}
	if fooNs < mainNs/2 || fooNs > mainNs*2 {
		t.Errorf("attribution skewed: main=%d foo=%d", mainNs, fooNs)
	}
}

func mustFind(t *testing.T, ch *Channel, name string) attr.Attribute {
	t.Helper()
	a, ok := ch.Registry().Find(name)
	if !ok {
		t.Fatalf("attribute %q not registered", name)
	}
	return a
}

func TestTraceModeStoresEverySnapshot(t *testing.T) {
	ch := mustChannel(t, Config{"services": "event,trace"})
	th := ch.Thread()
	for i := 0; i < 10; i++ {
		th.Begin("region", "r")
		th.End("region")
	}
	if got := ch.TraceLength(); got != 20 { // one snapshot per begin + end
		t.Errorf("TraceLength = %d, want 20", got)
	}
	rows, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Errorf("flushed %d records, want 20", len(rows))
	}
	if ch.TraceLength() != 0 {
		t.Error("trace buffer not drained by flush")
	}
}

func TestAggregationSmallerThanTrace(t *testing.T) {
	// Table I's core claim: aggregation produces far fewer output records
	// than tracing for the same snapshot stream.
	run := func(services string) (snaps uint64, outs int) {
		ch := mustChannel(t, Config{
			"services":      services,
			"aggregate.key": "region",
			"aggregate.ops": "count",
		})
		th := ch.Thread()
		for i := 0; i < 500; i++ {
			th.Begin("region", []string{"a", "b", "c"}[i%3])
			th.End("region")
		}
		rows, err := ch.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return ch.Snapshots(), len(rows)
	}
	snapsT, outT := run("event,trace")
	snapsA, outA := run("event,aggregate")
	if snapsT != snapsA {
		t.Errorf("snapshot counts differ: %d vs %d", snapsT, snapsA)
	}
	if outT != 1000 {
		t.Errorf("trace outputs = %d, want 1000", outT)
	}
	if outA != 4 { // groups: a, b, c, (none: begin events carry parent state)
		t.Errorf("aggregate outputs = %d, want 4", outA)
	}
}

func TestSetSemantics(t *testing.T) {
	ch := mustChannel(t, Config{
		"services":      "event,aggregate",
		"aggregate.key": "iteration",
		"aggregate.ops": "count",
	})
	th := ch.Thread()
	ia, _ := ch.CreateAttribute("iteration", attr.Int, 0)
	_ = ia
	for i := 0; i < 5; i++ {
		th.Set("iteration", i)
		th.Snapshot()
	}
	rows, _ := ch.Flush()
	// groups: one per iteration value from explicit snapshots, plus the
	// Set-triggered snapshots (pre-update): iteration i's Set snapshot
	// carries i-1
	counts := map[string]int64{}
	for _, r := range rows {
		it, _ := r.GetByName("iteration")
		c, _ := r.GetByName("aggregate.count")
		counts[it.String()] = c.AsInt()
	}
	// values 0..3 get 2 snapshots (explicit + next Set's pre-update), 4 gets 1
	for _, v := range []string{"0", "1", "2", "3"} {
		if counts[v] != 2 {
			t.Errorf("iteration %s count = %d, want 2", v, counts[v])
		}
	}
	if counts["4"] != 1 {
		t.Errorf("iteration 4 count = %d, want 1", counts["4"])
	}
}

func TestMultiThreadAggregationMergesAtFlush(t *testing.T) {
	ch := mustChannel(t, Config{
		"services":      "event,aggregate",
		"aggregate.key": "region",
		"aggregate.ops": "count",
	})
	const threads, iters = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := ch.Thread()
			for i := 0; i < iters; i++ {
				th.Begin("region", "r")
				th.End("region")
			}
		}()
	}
	wg.Wait()
	rows, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rows {
		total += getInt(t, r, "aggregate.count")
	}
	if total != threads*iters*2 {
		t.Errorf("total count = %d, want %d", total, threads*iters*2)
	}
	// the "r" group must aggregate across all threads into one record
	rGroups := 0
	for _, r := range rows {
		if v, ok := r.GetByName("region"); ok && v.String() == "r" {
			rGroups++
		}
	}
	if rGroups != 1 {
		t.Errorf("r appears in %d rows, want 1 (merged across threads)", rGroups)
	}
}

func TestSamplerProducesSnapshots(t *testing.T) {
	ch := mustChannel(t, Config{
		"services":          "sampler,timer,aggregate",
		"sampler.frequency": "1000", // 1 kHz for a fast test
		"aggregate.key":     "phase",
		"aggregate.ops":     "count,sum(time.duration)",
	})
	th := ch.Thread()
	th.Begin("phase", "compute")
	time.Sleep(60 * time.Millisecond)
	th.End("phase")
	rows, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if ch.Snapshots() < 20 {
		t.Errorf("sampler took only %d snapshots in 60ms at 1kHz", ch.Snapshots())
	}
	found := false
	for _, r := range rows {
		if v, ok := r.GetByName("phase"); ok && v.String() == "compute" {
			found = true
			if getInt(t, r, "aggregate.count") < 10 {
				t.Errorf("compute sample count = %d, want >= 10", getInt(t, r, "aggregate.count"))
			}
		}
	}
	if !found {
		t.Error("no samples attributed to the compute phase")
	}
}

func TestSamplerConcurrentWithAnnotations(t *testing.T) {
	// run annotations and sampling concurrently under the race detector
	ch := mustChannel(t, Config{
		"services":          "sampler,event,timer,aggregate",
		"sampler.frequency": "2000",
		"aggregate.key":     "region",
		"aggregate.ops":     "count,sum(time.duration)",
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := ch.Thread()
			for i := 0; i < 300; i++ {
				th.Begin("region", "busy")
				th.End("region")
			}
		}()
	}
	wg.Wait()
	if _, err := ch.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidSamplerFrequency(t *testing.T) {
	if _, err := NewChannel(Config{"services": "sampler", "sampler.frequency": "-5"}); err == nil {
		t.Error("negative frequency should error")
	}
	if _, err := NewChannel(Config{"services": "sampler", "sampler.frequency": "abc"}); err == nil {
		t.Error("non-numeric frequency should error")
	}
}

func TestInvalidAggregationScheme(t *testing.T) {
	if _, err := NewChannel(Config{
		"services":      "aggregate",
		"aggregate.ops": "frobnicate(x)",
	}); err == nil {
		t.Error("bad ops should error")
	}
	if _, err := NewChannel(Config{
		"services":      "aggregate",
		"aggregate.key": "x,x",
	}); err == nil {
		t.Error("duplicate key should error")
	}
}

func TestAggregateWhereFilter(t *testing.T) {
	ch := mustChannel(t, Config{
		"services":        "event,aggregate",
		"aggregate.key":   "region",
		"aggregate.ops":   "count",
		"aggregate.where": "not(mpi.function)",
	})
	th := ch.Thread()
	th.Begin("region", "compute")
	th.Begin("mpi.function", "MPI_Barrier")
	th.End("mpi.function")
	th.End("region")
	rows, _ := ch.Flush()
	for _, r := range rows {
		if r.Has(mustFind(t, ch, "mpi.function").ID()) {
			t.Errorf("filtered attribute leaked: %s", r)
		}
	}
}

func TestRecorderWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.cali")
	ch := mustChannel(t, Config{
		"services":          "event,timer,aggregate,recorder",
		"aggregate.key":     "region",
		"aggregate.ops":     "count,sum(time.duration)",
		"recorder.filename": path,
	})
	th := ch.Thread()
	th.Begin("region", "work")
	th.End("region")
	if err := ch.FlushAndWrite(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "__rec=ctx") {
		t.Errorf("output file lacks records:\n%s", data)
	}
	// and it must be readable back
	rd := calformat.NewReader(strings.NewReader(string(data)), attr.NewRegistry(), contexttree.New())
	recs, err := rd.ReadAll()
	if err != nil || len(recs) == 0 {
		t.Fatalf("read back: %v (%d records)", err, len(recs))
	}
}

func TestRecorderRequiresFilename(t *testing.T) {
	if _, err := NewChannel(Config{"services": "recorder"}); err == nil {
		t.Error("recorder without filename should error")
	}
}

func TestFlushAndWriteWithoutRecorder(t *testing.T) {
	ch := mustChannel(t, Config{"services": "event,trace"})
	if err := ch.FlushAndWrite(); err == nil {
		t.Error("FlushAndWrite without recorder should error")
	}
}

func TestInclusiveDuration(t *testing.T) {
	ch := mustChannel(t, Config{
		"services":        "event,timer,aggregate",
		"timer.inclusive": "true",
		"aggregate.key":   "function",
		"aggregate.ops":   "max(time.inclusive.duration)",
	})
	th := ch.Thread()
	th.Begin("function", "outer")
	time.Sleep(2 * time.Millisecond)
	th.Begin("function", "inner")
	time.Sleep(2 * time.Millisecond)
	th.End("function")
	time.Sleep(2 * time.Millisecond)
	th.End("function")
	rows, _ := ch.Flush()
	var outerIncl, innerIncl int64
	fnAttr := mustFind(t, ch, "function")
	for _, r := range rows {
		if v, ok := r.GetByName("max#time.inclusive.duration"); ok {
			switch r.PathOf(fnAttr.ID(), "/") {
			case "outer":
				outerIncl = v.AsInt()
			case "outer/inner":
				innerIncl = v.AsInt()
			}
		}
	}
	if outerIncl < 5_000_000 {
		t.Errorf("outer inclusive = %d ns, want >= ~6ms", outerIncl)
	}
	if innerIncl < 1_500_000 || innerIncl >= outerIncl {
		t.Errorf("inner inclusive = %d ns (outer %d)", innerIncl, outerIncl)
	}
}

func TestErrorPaths(t *testing.T) {
	ch := mustChannel(t, Config{"services": ""})
	th := ch.Thread()
	if err := th.End("nonexistent"); err == nil {
		t.Error("End of unknown attribute should error")
	}
	th.Begin("s", "x")
	if err := th.Begin("s", struct{}{}); err != nil {
		// struct stringifies; should coerce fine
		t.Errorf("stringified begin failed: %v", err)
	}
	// type conflict: attribute created as string, then int value is coerced
	if err := th.Begin("s", 42); err != nil {
		t.Errorf("int into string attr should coerce: %v", err)
	}
	// attribute created as int cannot take a non-numeric string
	th2 := ch.Thread()
	th2.Begin("n", 1)
	if err := th2.Begin("n", "notanumber"); err == nil {
		t.Error("non-numeric into int attr should error")
	}
}

func TestChannelSnapshotCounting(t *testing.T) {
	ch := mustChannel(t, Config{"services": "event"})
	th := ch.Thread()
	th.Begin("a", "1")
	th.End("a")
	th.Snapshot()
	if ch.Snapshots() != 3 || th.Snapshots() != 3 {
		t.Errorf("snapshots = %d/%d, want 3/3", ch.Snapshots(), th.Snapshots())
	}
}

func TestSkipEventsSuppressesTriggers(t *testing.T) {
	ch := mustChannel(t, Config{"services": "event"})
	ch.CreateAttribute("quiet", attr.String, attr.Nested|attr.SkipEvents)
	th := ch.Thread()
	th.Begin("quiet", "x")
	th.End("quiet")
	if ch.Snapshots() != 0 {
		t.Errorf("SkipEvents attribute triggered %d snapshots", ch.Snapshots())
	}
}

func TestSortedServiceNames(t *testing.T) {
	names := SortedServiceNames()
	if len(names) != 7 {
		t.Errorf("services = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}

func TestOutputRecordsWithoutAggregate(t *testing.T) {
	ch := mustChannel(t, Config{"services": "event,trace"})
	if ch.OutputRecords() != 0 {
		t.Error("OutputRecords without aggregate service should be 0")
	}
}
