// Insitu demonstrates on-line cross-process aggregation through a
// reduction network (the MRNet/CBTF pattern the paper describes in
// Section II-B) and in-situ analytical aggregation (Section II-C): while
// an emulated MPI application runs, every rank streams its aggregation
// deltas through a logarithmic reduction tree each epoch, and rank 0
// watches the global load balance evolve live — no files, no post-mortem
// step.
package main

import (
	"fmt"
	"math"
	"os"

	"caligo/internal/attr"
	"caligo/internal/core"
	"caligo/internal/mpi"
	"caligo/internal/rnet"
	"caligo/internal/snapshot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "insitu:", err)
		os.Exit(1)
	}
}

func run() error {
	const ranks = 8
	const epochs = 6
	const stepsPerEpoch = 5

	// the on-line cross-process scheme: per-rank work totals
	scheme := core.MustScheme([]string{"phase", "mpi.rank"},
		[]core.OpSpec{
			{Kind: core.OpCount},
			{Kind: core.OpSum, Target: "work"},
		})

	world, err := mpi.NewWorld(ranks)
	if err != nil {
		return err
	}
	fmt.Printf("in-situ load-balance monitor: %d ranks, %d epochs\n\n", ranks, epochs)
	fmt.Printf("%6s %12s %12s %12s %12s\n", "epoch", "min work", "mean work", "max work", "imbalance")

	return world.Run(func(c *mpi.Comm) error {
		// rank-local measurement state
		reg := attr.NewRegistry()
		phase := reg.MustCreate("phase", attr.String, attr.Nested)
		rankA := reg.MustCreate("mpi.rank", attr.Int, 0)
		workA := reg.MustCreate("work", attr.Int, attr.AsValue|attr.Aggregatable)

		node, err := rnet.New(c, scheme, reg)
		if err != nil {
			return err
		}

		for epoch := 0; epoch < epochs; epoch++ {
			for step := 0; step < stepsPerEpoch; step++ {
				// imbalance drifts over time: rank 3 becomes a straggler
				w := 100 + 5*epoch*boolToInt(c.Rank() == 3)
				node.Push(snapshot.FlatRecord{
					{Attr: phase, Value: attr.StringV("solve")},
					{Attr: rankA, Value: attr.IntV(int64(c.Rank()))},
					{Attr: workA, Value: attr.IntV(int64(w))},
				})
			}
			global, err := node.Sync()
			if err != nil {
				return err
			}
			if c.Rank() != 0 {
				continue
			}
			// in-situ analysis on the root: per-rank totals this far
			rows, err := global.FlushRecords()
			if err != nil {
				return err
			}
			perRank := make([]float64, ranks)
			for _, r := range rows {
				rk, ok := r.GetByName("mpi.rank")
				if !ok {
					continue
				}
				if v, ok := r.GetByName("sum#work"); ok {
					perRank[rk.AsInt()] += v.AsFloat()
				}
			}
			lo, hi, sum := math.Inf(1), 0.0, 0.0
			for _, v := range perRank {
				lo, hi, sum = math.Min(lo, v), math.Max(hi, v), sum+v
			}
			fmt.Printf("%6d %12.0f %12.0f %12.0f %11.1f%%\n",
				epoch, lo, sum/ranks, hi, (hi-lo)/hi*100)
		}
		if c.Rank() == 0 {
			fmt.Println("\nthe growing imbalance is visible while the run is still")
			fmt.Println("in progress — the input a dynamic load balancer needs.")
		}
		return nil
	})
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
