// Timeseries demonstrates the data-volume/detail tradeoff of Section III-B
// and the extended operator set: the same event stream is aggregated under
// three schemes of increasing detail (scalar profile, time-series profile,
// value histogram), showing how the aggregation key and operators control
// what is retained — "covering the entire space between full traces and a
// scalar value".
package main

import (
	"fmt"
	"math/rand"
	"os"

	"caligo/caliper"
	"caligo/calql"
)

var sink float64

// simulate runs a synthetic solver loop with iteration-dependent load on
// one thread of the given channels (same events into each).
func simulate(threads []*caliper.Thread) {
	rng := rand.New(rand.NewSource(42))
	each := func(fn func(t *caliper.Thread)) {
		for _, t := range threads {
			fn(t)
		}
	}
	for it := 0; it < 60; it++ {
		each(func(t *caliper.Thread) { t.Set("iteration", it) })
		for _, phase := range []string{"assemble", "solve", "update"} {
			each(func(t *caliper.Thread) { t.Begin("phase", phase) })
			// the solve phase gets slower as the system evolves
			n := 4000
			if phase == "solve" {
				n += it * 900
			}
			n += rng.Intn(2000)
			acc := 0.0
			for i := 0; i < n; i++ {
				acc += float64(i%13) * 1.1
			}
			sink += acc
			each(func(t *caliper.Thread) { t.End("phase") })
		}
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "timeseries:", err)
		os.Exit(1)
	}
}

func run() error {
	configs := []struct {
		name  string
		key   string
		ops   string
		query string
	}{
		{
			name: "scalar profile (coarsest: one row per phase)",
			key:  "phase",
			ops:  "count,sum(time.duration),avg(time.duration),stddev(time.duration)",
			query: `SELECT phase, aggregate.count AS count, sum#time.duration AS total,
			        avg#time.duration AS avg, stddev#time.duration AS stddev
			        WHERE phase ORDER BY sum#time.duration DESC`,
		},
		{
			name: "time-series profile (phase x 10-iteration block)",
			key:  "phase,iteration",
			ops:  "sum(time.duration)",
			query: `LET block = truncate(iteration, 10)
			        AGGREGATE sum(sum#time.duration) AS total
			        GROUP BY phase, block WHERE phase=solve
			        ORDER BY block`,
		},
		{
			name: "duration histogram (distribution per phase)",
			key:  "phase",
			ops:  "histogram(time.duration, 0, 160000, 8)",
			query: `SELECT phase, histogram#time.duration AS histogram
			        WHERE phase ORDER BY phase`,
		},
	}

	// one channel per scheme, all fed by the same annotated execution
	var channels []*caliper.Channel
	var threads []*caliper.Thread
	for _, c := range configs {
		ch, err := caliper.NewChannel(caliper.Config{
			"services":      "event,timer,aggregate",
			"aggregate.key": c.key,
			"aggregate.ops": c.ops,
		})
		if err != nil {
			return err
		}
		channels = append(channels, ch)
		threads = append(threads, ch.Thread())
	}

	simulate(threads)

	for i, c := range configs {
		fmt.Printf("== %s ==\n", c.name)
		fmt.Printf("   on-line scheme: AGGREGATE %s GROUP BY %s\n\n", c.ops, c.key)
		rs, err := calql.QueryChannel(c.query, channels[i])
		if err != nil {
			return err
		}
		if err := rs.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Println("the same annotations served all three analyses; only the")
	fmt.Println("aggregation schemes differ (Section III-B's tradeoff).")
	return nil
}
