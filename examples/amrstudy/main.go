// Amrstudy demonstrates the paper's headline capability (Section VI-E):
// application-specific data dimensions in aggregation schemes. The AMR
// refinement level is a concept only the application knows; exporting it
// as an attribute and including it in the aggregation key lets the
// profiler answer questions no hard-coded tool layout could:
//
//	AGGREGATE sum(time.duration) WHERE not(mpi.function)
//	GROUP BY amr.level, iteration#mainloop
//
// The example runs the CleverLeaf proxy, collects a scheme-C-style full
// profile on-line, and derives both the per-timestep (Figure 8) and the
// per-rank (Figure 9) refinement-level views off-line — from the same
// dataset, by changing only the query.
package main

import (
	"fmt"
	"os"
	"strings"

	"caligo/caliper"
	"caligo/calql"
	"caligo/internal/apps/cleverleaf"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "amrstudy:", err)
		os.Exit(1)
	}
}

func run() error {
	const ranks = 6
	app := cleverleaf.Config{
		Ranks: ranks, Timesteps: 30, Levels: 3, WorkScale: 1, VirtualTime: true,
	}

	// Scheme C of the paper: every annotation attribute in the key,
	// including the main loop iteration and the AMR level.
	channels := make([]*caliper.Channel, ranks)
	for r := range channels {
		ch, err := caliper.NewChannel(caliper.Config{
			"services":      "event,timer,aggregate",
			"timer.source":  "virtual",
			"aggregate.key": "function,annotation,amr.level,kernel,iteration#mainloop,mpi.rank,mpi.function",
			"aggregate.ops": "count,sum(time.duration)",
		})
		if err != nil {
			return err
		}
		channels[r] = ch
	}
	if err := cleverleaf.Run(app, func(rank int) *caliper.Thread {
		return channels[rank].Thread()
	}); err != nil {
		return err
	}

	// Write per-process profiles to disk, as a real run would.
	dir, err := os.MkdirTemp("", "amrstudy")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var files []string
	for r, ch := range channels {
		path := fmt.Sprintf("%s/rank-%02d.cali", dir, r)
		if err := writeProfile(ch, path); err != nil {
			return err
		}
		files = append(files, path)
	}

	// Question 1 (Figure 8): how does time per refinement level evolve
	// over the simulation?
	fmt.Println("runtime per AMR level, every 5th timestep (ms, all ranks):")
	rs, err := calql.QueryFiles(`
		LET block = truncate(iteration#mainloop, 5)
		AGGREGATE sum(sum#time.duration) AS time
		WHERE not(mpi.function)
		GROUP BY amr.level, block
		ORDER BY block, amr.level`, files)
	if err != nil {
		return err
	}
	printLevelSeries(rs, "block")

	// Question 2 (Figure 9): how do the levels distribute across ranks?
	fmt.Println("\nruntime per AMR level per MPI rank (ms):")
	rs2, err := calql.QueryFiles(`
		AGGREGATE sum(sum#time.duration) AS time
		WHERE not(mpi.function)
		GROUP BY amr.level, mpi.rank
		ORDER BY mpi.rank, amr.level`, files)
	if err != nil {
		return err
	}
	printLevelSeries(rs2, "mpi.rank")

	fmt.Println("\nthe refinement region grows over time: level 2 cost rises while")
	fmt.Println("level 0 stays flat — the behaviour the paper shows in Figure 8.")
	return nil
}

// writeProfile flushes a channel's aggregation results to a .cali file.
func writeProfile(ch *caliper.Channel, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := calformat.NewWriter(f, ch.Registry(), contexttree.New())
	if err := ch.FlushEmit(w.WriteFlat); err != nil {
		return err
	}
	return w.Flush()
}

// printLevelSeries prints rows grouped by a series column with one column
// per amr.level.
func printLevelSeries(rs *calql.Resultset, seriesCol string) {
	type key struct{ series, level string }
	vals := map[key]float64{}
	var seriesOrder []string
	seen := map[string]bool{}
	levels := map[string]bool{}
	for _, row := range rs.Rows {
		sv, ok := row.GetByName(seriesCol)
		if !ok {
			continue
		}
		lv, ok := row.GetByName("amr.level")
		if !ok {
			continue
		}
		t, _ := row.GetByName("time")
		vals[key{sv.String(), lv.String()}] += t.AsFloat() / 1e6
		if !seen[sv.String()] {
			seen[sv.String()] = true
			seriesOrder = append(seriesOrder, sv.String())
		}
		levels[lv.String()] = true
	}
	var levelOrder []string
	for l := range levels {
		levelOrder = append(levelOrder, l)
	}
	sortStrings(levelOrder)
	fmt.Printf("%10s", seriesCol)
	for _, l := range levelOrder {
		fmt.Printf(" %10s", "level "+l)
	}
	fmt.Println()
	for _, s := range seriesOrder {
		fmt.Printf("%10s", s)
		for _, l := range levelOrder {
			fmt.Printf(" %10.2f", vals[key{s, l}])
		}
		fmt.Println()
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && strings.Compare(s[j], s[j-1]) < 0; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
