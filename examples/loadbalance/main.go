// Loadbalance demonstrates the paper's Section VI-D study: including
// mpi.rank in the aggregation key turns the same instrumentation into a
// load-balance analysis. The example runs the CleverLeaf AMR proxy on
// eight emulated MPI ranks, aggregates per (kernel, mpi.function,
// mpi.rank) on-line, and reports the min/mean/max time across ranks for
// computation and communication.
package main

import (
	"bytes"
	"fmt"
	"math"
	"os"

	"caligo/caliper"
	"caligo/calql"
	"caligo/internal/apps/cleverleaf"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadbalance:", err)
		os.Exit(1)
	}
}

func run() error {
	const ranks = 8
	app := cleverleaf.Config{
		Ranks: ranks, Timesteps: 40, Levels: 3, WorkScale: 1, VirtualTime: true,
	}

	// One channel per emulated process — the paper's scheme from
	// Section VI-D, applied on-line.
	channels := make([]*caliper.Channel, ranks)
	for r := range channels {
		ch, err := caliper.NewChannel(caliper.Config{
			"services":      "event,timer,aggregate",
			"timer.source":  "virtual",
			"aggregate.key": "kernel,mpi.function,mpi.rank",
			"aggregate.ops": "sum(time.duration)",
		})
		if err != nil {
			return err
		}
		channels[r] = ch
	}
	err := cleverleaf.Run(app, func(rank int) *caliper.Thread {
		return channels[rank].Thread()
	})
	if err != nil {
		return err
	}

	// Combine the per-process profiles (the cross-process aggregation
	// step) through the .cali stream format.
	var stream bytes.Buffer
	for _, ch := range channels {
		w := calformat.NewWriter(&stream, ch.Registry(), contexttree.New())
		if err := ch.FlushEmit(w.WriteFlat); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp("", "loadbalance-*.cali")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(stream.Bytes()); err != nil {
		return err
	}
	tmp.Close()

	rs, err := calql.QueryFiles(
		"AGGREGATE sum(sum#time.duration) GROUP BY kernel, mpi.function, mpi.rank",
		[]string{tmp.Name()})
	if err != nil {
		return err
	}

	// Fold the rows into per-rank computation / MPI / per-kernel series.
	comp := make([]float64, ranks)
	mpiT := make([]float64, ranks)
	kernels := map[string][]float64{}
	for _, row := range rs.Rows {
		rank := 0
		if v, ok := row.GetByName("mpi.rank"); ok {
			rank = int(v.AsInt())
		}
		if rank < 0 || rank >= ranks {
			continue
		}
		t := 0.0
		if v, ok := row.GetByName("sum#sum#time.duration"); ok {
			t = v.AsFloat() / 1e6 // ms
		}
		if fn, ok := row.GetByName("mpi.function"); ok && fn.String() != "" {
			mpiT[rank] += t
			continue
		}
		comp[rank] += t
		if k, ok := row.GetByName("kernel"); ok && k.String() != "" {
			if kernels[k.String()] == nil {
				kernels[k.String()] = make([]float64, ranks)
			}
			kernels[k.String()][rank] += t
		}
	}

	report := func(name string, series []float64) {
		lo, hi, sum := math.Inf(1), 0.0, 0.0
		for _, v := range series {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			sum += v
		}
		imb := 0.0
		if hi > 0 {
			imb = (hi - lo) / hi * 100
		}
		fmt.Printf("%-20s min %8.2f ms   mean %8.2f ms   max %8.2f ms   imbalance %5.1f%%\n",
			name, lo, sum/float64(len(series)), hi, imb)
	}
	fmt.Printf("load balance across %d ranks (40 timesteps, triple-point AMR proxy):\n\n", ranks)
	report("total computation", comp)
	report("total MPI", mpiT)
	for _, k := range []string{"calc-dt", "advec-mom"} {
		if s, ok := kernels[k]; ok {
			report("kernel "+k, s)
		}
	}
	fmt.Println("\nadvec-mom is balanced while calc-dt carries imbalance — the")
	fmt.Println("signature the paper reads off Figure 7.")
	return nil
}
