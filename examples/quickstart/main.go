// Quickstart reproduces the paper's Listing 1 and Section III-B example:
// a program whose loop and functions are annotated, profiled on-line with
//
//	AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration
//
// and printed as the paper's result table. It then shows the "more
// compact" variant that drops loop.iteration from the aggregation key.
package main

import (
	"fmt"
	"os"

	"caligo/caliper"
	"caligo/calql"
)

func foo(th *caliper.Thread) {
	th.Begin("function", "foo")
	defer th.End("function")
	work(20000)
}

func bar(th *caliper.Thread) {
	th.Begin("function", "bar")
	defer th.End("function")
	work(10000)
}

var sink float64

func work(n int) {
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += float64(i%17) * 0.5
	}
	sink += acc
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The aggregation scheme is ordinary runtime configuration — no
	// recompilation needed to change what is collected.
	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": "function,loop.iteration",
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		return err
	}
	th := ch.Thread()

	// Listing 1: four loop iterations calling foo twice and bar once.
	for i := 0; i < 4; i++ {
		th.Begin("loop.iteration", i)
		foo(th)
		foo(th)
		bar(th)
		th.End("loop.iteration")
	}

	// Print the time-series function profile (the paper's example table).
	rs, err := calql.QueryChannel(`
		SELECT function, loop.iteration, aggregate.count AS count,
		       sum#time.duration AS sum#time
		AGGREGATE count, sum(time.duration)
		GROUP BY function, loop.iteration
		ORDER BY loop.iteration, function DESC`, ch)
	if err != nil {
		return err
	}
	fmt.Println("time-series function profile (one row per function x iteration):")
	if err := rs.Render(os.Stdout); err != nil {
		return err
	}

	// The compact variant: re-aggregate the profile without the iteration
	// number — the multi-stage workflow of Section VI.
	fmt.Println("\ncompact profile (loop.iteration removed from the key):")
	rs2, err := calql.QueryRecords(`
		AGGREGATE sum(aggregate.count) AS count, sum(sum#time.duration) AS sum#time
		GROUP BY function ORDER BY function DESC`, rs.Reg, rs.Rows)
	if err != nil {
		return err
	}
	return rs2.Render(os.Stdout)
}
