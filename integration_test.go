package caligo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/caliper"
	"caligo/calql"
	"caligo/internal/apps/cleverleaf"
)

// writeProfiles runs the proxy with per-rank channels configured with
// chCfg and records per-rank .cali files; returns the file paths.
func writeProfiles(t *testing.T, dir string, app cleverleaf.Config, chCfg caliper.Config) []string {
	t.Helper()
	channels := make([]*caliper.Channel, app.Ranks)
	var files []string
	for r := range channels {
		cfg := caliper.Config{}
		for k, v := range chCfg {
			cfg[k] = v
		}
		path := filepath.Join(dir, "rank-"+strings.Repeat("0", 2)+string(rune('a'+r))+".cali")
		cfg["recorder.filename"] = path
		cfg["services"] = cfg["services"] + ",recorder"
		ch, err := caliper.NewChannel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		channels[r] = ch
		files = append(files, path)
	}
	err := cleverleaf.Run(app, func(rank int) *caliper.Thread {
		return channels[rank].Thread()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ch := range channels {
		if err := ch.FlushAndWrite(); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return files
}

// TestEndToEndPipeline drives the complete workflow of the paper:
// annotate → on-line aggregate → per-process .cali files → off-line
// cross-process aggregation (serial and parallel) → identical results.
func TestEndToEndPipeline(t *testing.T) {
	app := cleverleaf.Config{Ranks: 4, Timesteps: 10, Levels: 3,
		WorkScale: 1, VirtualTime: true}
	files := writeProfiles(t, t.TempDir(), app, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "kernel,mpi.function,mpi.rank",
		"aggregate.ops": "count,sum(time.duration)",
	})

	const q = "AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel, mpi.function"
	serial, err := calql.QueryFiles(q, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) == 0 {
		t.Fatal("no result rows")
	}
	par, err := calql.QueryFilesParallel(q, files, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Rows) != len(serial.Rows) {
		t.Fatalf("parallel %d rows vs serial %d", len(par.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i].String() != par.Rows[i].String() {
			t.Errorf("row %d differs:\n serial   %s\n parallel %s",
				i, serial.Rows[i], par.Rows[i])
		}
	}
}

// TestOnlineOfflineEquivalence verifies Section VI-F: "the combination of
// on-line and off-line aggregation leaves multiple ways to obtain the same
// end result, letting us shift the bulk of the data aggregation from
// on-line to off-line processing and vice versa." A coarse on-line scheme
// queried directly must equal a fine on-line scheme re-aggregated off-line.
func TestOnlineOfflineEquivalence(t *testing.T) {
	app := cleverleaf.Config{Ranks: 3, Timesteps: 8, Levels: 3,
		WorkScale: 1, VirtualTime: true}

	// path 1: aggregate on-line directly by kernel
	coarse := writeProfiles(t, t.TempDir(), app, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "kernel",
		"aggregate.ops": "count,sum(time.duration)",
	})
	// path 2: keep full detail on-line (scheme C), reduce off-line
	fine := writeProfiles(t, t.TempDir(), app, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "function,annotation,amr.level,kernel,iteration#mainloop,mpi.rank,mpi.function",
		"aggregate.ops": "count,sum(time.duration)",
	})

	const q = "AGGREGATE sum(aggregate.count) AS count, sum(sum#time.duration) AS time GROUP BY kernel"
	rs1, err := calql.QueryFiles(q, coarse)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := calql.QueryFiles(q, fine)
	if err != nil {
		t.Fatal(err)
	}
	get := func(rs *calql.Resultset) map[string][2]int64 {
		out := map[string][2]int64{}
		for _, r := range rs.Rows {
			k, _ := r.GetByName("kernel")
			c, _ := r.GetByName("count")
			s, _ := r.GetByName("time")
			out[k.String()] = [2]int64{c.AsInt(), s.AsInt()}
		}
		return out
	}
	m1, m2 := get(rs1), get(rs2)
	if len(m1) != len(m2) {
		t.Fatalf("group counts differ: %d vs %d", len(m1), len(m2))
	}
	for k, v1 := range m1 {
		v2 := m2[k]
		if v1[0] != v2[0] {
			t.Errorf("kernel %q: counts differ: %d vs %d", k, v1[0], v2[0])
		}
		// virtual timing is deterministic, so sums must agree exactly
		if v1[1] != v2[1] {
			t.Errorf("kernel %q: times differ: %d vs %d", k, v1[1], v2[1])
		}
	}
}

// TestCorruptDatasetRejected injects failures into a dataset file.
func TestCorruptDatasetRejected(t *testing.T) {
	app := cleverleaf.Config{Ranks: 1, Timesteps: 2, Levels: 2,
		WorkScale: 1, VirtualTime: true}
	files := writeProfiles(t, t.TempDir(), app, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "kernel",
		"aggregate.ops": "count",
	})
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		"garbage line": func(b []byte) []byte {
			return append([]byte("__rec=ctx,ref=99999\n"), b...)
		},
		"truncated mid-line": func(b []byte) []byte {
			// cut inside the final line so a field is malformed
			cut := len(b) - 5
			return append(b[:cut], []byte("\n__rec=node,id=x")...)
		},
		"bad attribute type": func(b []byte) []byte {
			return append([]byte("__rec=attr,id=99,name=zz,type=banana\n"), b...)
		},
	}
	for name, corrupt := range corruptions {
		bad := filepath.Join(t.TempDir(), "bad.cali")
		if err := os.WriteFile(bad, corrupt(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := calql.QueryFiles("AGGREGATE count GROUP BY kernel", []string{bad}); err == nil {
			t.Errorf("%s: corrupt dataset accepted", name)
		}
	}
}

// TestListing1PublicAPI is the paper's Listing 1 program end-to-end on the
// public API, checking exact counts.
func TestListing1PublicAPI(t *testing.T) {
	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": "function,loop.iteration",
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	foo := func() { th.Begin("function", "foo"); th.End("function") }
	bar := func() { th.Begin("function", "bar"); th.End("function") }
	for i := 0; i < 4; i++ {
		th.Begin("loop.iteration", i)
		foo()
		foo()
		bar()
		th.End("loop.iteration")
	}
	rs, err := calql.QueryChannel(
		"AGGREGATE sum(aggregate.count) AS count GROUP BY function, loop.iteration", ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rs.Rows {
		fn, hasFn := row.GetByName("function")
		it, hasIt := row.GetByName("loop.iteration")
		c, _ := row.GetByName("count")
		if !hasFn || !hasIt {
			continue // partial-key rows (the paper's table has them too)
		}
		switch fn.String() {
		case "foo":
			if c.AsInt() != 2 {
				t.Errorf("(foo,%s) count = %d, want 2", it.String(), c.AsInt())
			}
		case "bar":
			if c.AsInt() != 1 {
				t.Errorf("(bar,%s) count = %d, want 1", it.String(), c.AsInt())
			}
		}
	}
}
