GO ?= go

.PHONY: build vet test test-race bench-smoke bench-json bench-compare fuzz-seed check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One iteration of every benchmark — catches bit-rot in the bench
# harness without paying for real measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Measure the span tracer's overhead (enabled and disabled paths) and
# record the results as machine-readable JSON; the disabled path must
# report 0 allocs/op.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkTraceOverhead' -benchmem ./internal/trace/ \
		| $(GO) run ./cmd/benchjson > BENCH_trace.json
	@cat BENCH_trace.json
	@if [ -f BENCH_query.json ]; then cp BENCH_query.json BENCH_query.prev.json; fi
	$(GO) test -run '^$$' -bench 'QueryFilesSharded|WhereCompiled|WhereEvalCondition|SortRows|BenchmarkMerge' \
		-benchmem ./calql/ ./internal/query/ ./internal/core/ \
		| $(GO) run ./cmd/benchjson > BENCH_query.json
	@cat BENCH_query.json

# Diff two BENCH JSON files (default: the snapshot bench-json took of the
# previous BENCH_query.json against the fresh one) and fail on >15%
# regression in ns/op or allocs/op.
OLD ?= BENCH_query.prev.json
NEW ?= BENCH_query.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# Run the fuzz targets over their seed corpora only (no fuzzing time);
# regressions on checked-in seeds fail fast.
fuzz-seed:
	$(GO) test -run Fuzz ./internal/calql ./internal/calformat

check: build vet test fuzz-seed

clean:
	$(GO) clean ./...
	rm -rf bin/
