GO ?= go

.PHONY: build vet test test-race bench-smoke bench-json bench-compare fuzz-seed smoke prof-smoke index-smoke cache-smoke check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One iteration of every benchmark — catches bit-rot in the bench
# harness without paying for real measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Measure the span tracer's overhead (enabled and disabled paths) and
# record the results as machine-readable JSON; the disabled path must
# report 0 allocs/op.
bench-json:
	@if [ -f BENCH_trace.json ]; then cp BENCH_trace.json BENCH_trace.prev.json; fi
	$(GO) test -run '^$$' -bench 'BenchmarkTraceOverhead' -benchmem ./internal/trace/ \
		| $(GO) run ./cmd/benchjson > BENCH_trace.json
	@cat BENCH_trace.json
	@if [ -f BENCH_query.json ]; then cp BENCH_query.json BENCH_query.prev.json; fi
	$(GO) test -run '^$$' -bench 'QueryFilesSharded|WhereCompiled|WhereEvalCondition|SortRows|BenchmarkMerge|IndexedScan|CachedQuery' \
		-benchmem ./calql/ ./internal/query/ ./internal/core/ \
		| $(GO) run ./cmd/benchjson > BENCH_query.json
	@cat BENCH_query.json

# Diff the BENCH JSON snapshots bench-json took against the fresh ones
# and fail on >15% regression in ns/op or allocs/op. Gates both the query
# benchmarks and the tracing/telemetry overhead benchmarks (one missing
# trace snapshot pair — e.g. the first run after this gate was added — is
# skipped rather than failed).
OLD ?= BENCH_query.prev.json
NEW ?= BENCH_query.json
TRACE_OLD ?= BENCH_trace.prev.json
TRACE_NEW ?= BENCH_trace.json
bench-compare:
	@if [ -f $(TRACE_OLD) ] && [ -f $(TRACE_NEW) ]; then \
		$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW) $(TRACE_OLD) $(TRACE_NEW); \
	else \
		echo "bench-compare: no $(TRACE_OLD) pair yet, gating query benchmarks only"; \
		$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW); \
	fi

# Run the fuzz targets over their seed corpora only (no fuzzing time);
# regressions on checked-in seeds fail fast.
fuzz-seed:
	$(GO) test -run Fuzz ./internal/calql ./internal/calformat ./internal/core ./internal/prof ./internal/query

# Self-profiling smoke test: capture a 1s CPU window of the test process,
# convert it to .cali, and answer the flagship flame question with CalQL
# over the file.
prof-smoke:
	$(GO) test -run TestProfSmoke -count=1 ./internal/prof

# Index smoke test: build sidecar block indexes over a corpus and check
# that every execution mode renders byte-identical output with pruning
# enabled vs a full scan, and that EXPLAIN surfaces the skip statistics.
index-smoke:
	$(GO) test -run 'TestIndexSmoke' -count=1 ./calql/

# Aggregate-cache smoke test: over one shared cache directory, cold,
# warm, sharded, and emulated-MPI execution must render byte-identical
# output to an uncached run, appends must re-aggregate only the tail,
# and corrupt entries must fall back to full scans silently.
cache-smoke:
	$(GO) test -run 'TestCache' -count=1 ./calql/

# Ops-surface smoke test: start ServeDebug, run a sharded query, scrape
# /debug/metrics, /debug/queries, and /debug/log over HTTP, and validate
# the bodies with the same parsers cali-top uses.
smoke:
	$(GO) test -run TestEndpointSmoke -count=1 .

check: build vet test fuzz-seed smoke prof-smoke index-smoke cache-smoke

clean:
	$(GO) clean ./...
	rm -rf bin/
