GO ?= go

.PHONY: build vet test test-race bench-smoke bench-json bench-calibrate bench-compare fuzz-seed smoke prof-smoke index-smoke cache-smoke history-smoke check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One iteration of every benchmark — catches bit-rot in the bench
# harness without paying for real measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Measure the observability overhead paths — the span tracer and the
# telemetry-history recorder (enabled and disabled) — and record the
# results as machine-readable JSON; the disabled paths must report
# 0 allocs/op.
bench-json:
	@if [ -f BENCH_trace.json ]; then cp BENCH_trace.json BENCH_trace.prev.json; fi
	$(GO) test -run '^$$' -bench 'BenchmarkTraceOverhead|BenchmarkHistoryCapture' -benchmem \
		./internal/trace/ ./internal/obs/history/ \
		| $(GO) run ./cmd/benchjson > BENCH_trace.json
	@cat BENCH_trace.json
	@if [ -f BENCH_query.json ]; then cp BENCH_query.json BENCH_query.prev.json; fi
	$(GO) test -run '^$$' -bench 'QueryFilesSharded|WhereCompiled|WhereEvalCondition|SortRows|BenchmarkMerge|IndexedScan|CachedQuery' \
		-benchmem ./calql/ ./internal/query/ ./internal/core/ \
		| $(GO) run ./cmd/benchjson > BENCH_query.json
	@cat BENCH_query.json

# Measure per-benchmark run-to-run noise: repeat the bench-json suites
# CALIBRATE_RUNS times on an otherwise-idle host and record each
# benchmark's observed jitter (max-min)/min as its noise floor in
# BENCH_noise.json. bench-compare picks the floor up automatically, so a
# benchmark is only flagged when it regresses beyond both the 15%
# threshold and its own measured jitter (see docs/OBSERVABILITY.md).
CALIBRATE_RUNS ?= 3
bench-calibrate:
	@rm -f BENCH_run.*.json
	@for i in $$(seq $(CALIBRATE_RUNS)); do \
		echo "calibration run $$i/$(CALIBRATE_RUNS)"; \
		{ $(GO) test -run '^$$' -bench 'BenchmarkTraceOverhead|BenchmarkHistoryCapture' -benchmem \
			./internal/trace/ ./internal/obs/history/; \
		  $(GO) test -run '^$$' -bench 'QueryFilesSharded|WhereCompiled|WhereEvalCondition|SortRows|BenchmarkMerge|IndexedScan|CachedQuery' \
			-benchmem ./calql/ ./internal/query/ ./internal/core/; } \
			| $(GO) run ./cmd/benchjson > BENCH_run.$$i.json || exit 1; \
	done
	$(GO) run ./cmd/benchjson -calibrate BENCH_noise.json BENCH_run.*.json
	@rm -f BENCH_run.*.json

# Diff the BENCH JSON snapshots bench-json took against the fresh ones
# and fail on >15% regression in ns/op or allocs/op. Gates both the query
# benchmarks and the tracing/telemetry overhead benchmarks (one missing
# trace snapshot pair — e.g. the first run after this gate was added — is
# skipped rather than failed). When bench-calibrate has produced
# BENCH_noise.json, per-benchmark noise floors widen the ns/op threshold
# and uniform host drift is rescaled away.
OLD ?= BENCH_query.prev.json
NEW ?= BENCH_query.json
TRACE_OLD ?= BENCH_trace.prev.json
TRACE_NEW ?= BENCH_trace.json
bench-compare:
	@NOISE=""; if [ -f BENCH_noise.json ]; then NOISE="-noise BENCH_noise.json"; fi; \
	if [ -f $(TRACE_OLD) ] && [ -f $(TRACE_NEW) ]; then \
		$(GO) run ./cmd/benchjson -compare $$NOISE $(OLD) $(NEW) $(TRACE_OLD) $(TRACE_NEW); \
	else \
		echo "bench-compare: no $(TRACE_OLD) pair yet, gating query benchmarks only"; \
		$(GO) run ./cmd/benchjson -compare $$NOISE $(OLD) $(NEW); \
	fi

# Run the fuzz targets over their seed corpora only (no fuzzing time);
# regressions on checked-in seeds fail fast.
fuzz-seed:
	$(GO) test -run Fuzz ./internal/calql ./internal/calformat ./internal/core ./internal/obs/history ./internal/prof ./internal/query

# Self-profiling smoke test: capture a 1s CPU window of the test process,
# convert it to .cali, and answer the flagship flame question with CalQL
# over the file.
prof-smoke:
	$(GO) test -run TestProfSmoke -count=1 ./internal/prof

# Index smoke test: build sidecar block indexes over a corpus and check
# that every execution mode renders byte-identical output with pruning
# enabled vs a full scan, and that EXPLAIN surfaces the skip statistics.
index-smoke:
	$(GO) test -run 'TestIndexSmoke' -count=1 ./calql/

# Aggregate-cache smoke test: over one shared cache directory, cold,
# warm, sharded, and emulated-MPI execution must render byte-identical
# output to an uncached run, appends must re-aggregate only the tail,
# and corrupt entries must fall back to full scans silently.
cache-smoke:
	$(GO) test -run 'TestCache' -count=1 ./calql/

# Telemetry-history smoke test: record windows into the on-disk ring,
# prove the CalQL time-series over the ring is byte-identical to an
# offline aggregation of the same records, and prove the cluster-merged
# view equals a hand-merged union of per-rank scrapes (counters sum,
# histogram bins and quantiles match a bin-wise merge).
history-smoke:
	$(GO) test -run 'TestHistoryCalQLEquality|TestClusterViewEqualsHandMergedScrapes' -count=1 ./internal/obs/history/

# Ops-surface smoke test: start ServeDebug, run a sharded query, scrape
# /debug/metrics, /debug/queries, /debug/log, /debug/history, and
# /debug/cluster over HTTP, and validate the bodies with the same
# parsers cali-top uses.
smoke:
	$(GO) test -run TestEndpointSmoke -count=1 .

check: build vet test fuzz-seed smoke prof-smoke index-smoke cache-smoke history-smoke

clean:
	$(GO) clean ./...
	rm -rf bin/
