package caligo

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"caligo/caliper"
	"caligo/calql"
	"caligo/internal/attr"
	"caligo/internal/core"
	"caligo/internal/telemetry"
)

// TestDogfoodedMetricsChannel exercises the self-instrumentation pipeline
// end to end: a channel with the metrics service emits the library's own
// telemetry as ordinary snapshot records, which a CalQL aggregation query
// can consume like any application data.
func TestDogfoodedMetricsChannel(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	telemetry.Reset()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,timer,aggregate,metrics",
		"channel.name":  "dogfood",
		"aggregate.key": "function",
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !telemetry.Enabled() {
		t.Fatal("metrics service did not enable telemetry collection")
	}
	th := ch.Thread()
	for i := 0; i < 10; i++ {
		th.Begin("function", "work")
		th.End("function")
	}

	// The WHERE clause filters the per-thread telemetry records out of the
	// channel's mixed flush output (aggregation results lack caligo.channel).
	rs, err := calql.QueryChannel(
		"AGGREGATE sum(caligo.snapshots) GROUP BY caligo.channel WHERE caligo.channel", ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("expected 1 row (one channel), got %d:\n%s", len(rs.Rows), rs)
	}
	var chanName string
	var snaps uint64
	for _, e := range rs.Rows[0] {
		switch e.Attr.Name() {
		case caliper.MetricsChannelAttr:
			chanName = e.Value.String()
		case "sum#" + caliper.MetricsSnapshotsAttr:
			snaps = e.Value.AsUint()
		}
	}
	if chanName != "dogfood" {
		t.Errorf("caligo.channel = %q, want \"dogfood\"", chanName)
	}
	// 10 Begin/End pairs with the event service → 20 snapshots.
	if snaps != 20 {
		t.Errorf("sum(caligo.snapshots) = %d, want 20", snaps)
	}
}

// TestMetricsServiceRegistryRecord checks that the per-process registry
// record carries the global telemetry metrics (e.g. the core DB update
// count incremented by the channel's own aggregate service).
func TestMetricsServiceRegistryRecord(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	telemetry.Reset()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,aggregate,metrics",
		"channel.name":  "registry-rec",
		"aggregate.key": "function",
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	th.Begin("function", "f")
	th.End("function")

	rs, err := calql.QueryChannel(
		"AGGREGATE max(caligo.core.updates) WHERE caligo.core.updates", ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("expected 1 registry record, got %d rows", len(rs.Rows))
	}
	found := false
	for _, e := range rs.Rows[0] {
		if strings.HasPrefix(e.Attr.Name(), "max#caligo.core.updates") {
			found = true
			if e.Value.AsUint() == 0 {
				t.Error("caligo.core.updates = 0, want > 0 (aggregate service ran)")
			}
		}
	}
	if !found {
		t.Fatalf("no caligo.core.updates value in row %v", rs.Rows[0])
	}
}

// TestTelemetryDisabledZeroAlloc proves the instrumented DB update path
// stays allocation-free when telemetry is off: the counters compile to a
// single atomic load, and steady-state core.DB.Update was 0-alloc before
// instrumentation. (The telemetry package's own tests cover the
// primitive-level guarantee.)
func TestTelemetryDisabledZeroAlloc(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	reg := attr.NewRegistry()
	recs := benchRecords(reg)
	scheme := core.MustScheme([]string{"function", "iteration"},
		[]core.OpSpec{{Kind: core.OpCount}, {Kind: core.OpSum, Target: "time.duration"}})
	db, err := core.NewDB(scheme, reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs { // create every bucket up front
		db.Update(r)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		db.Update(recs[i%len(recs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state DB.Update allocates %.1f objects/op with telemetry disabled, want 0", allocs)
	}
}

// TestServeDebug starts the runtime-introspection endpoint and fetches
// the telemetry report and the expvar JSON.
func TestServeDebug(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	srv, err := caliper.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	report := get("/debug/telemetry")
	if !strings.Contains(report, "internal telemetry") {
		t.Errorf("unexpected /debug/telemetry output:\n%s", report)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "caligo.telemetry") {
		t.Error("/debug/vars does not expose caligo.telemetry")
	}
}
