// Package caligo's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation, plus ablation benchmarks for the
// design decisions called out in DESIGN.md §5.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks execute a scaled-down instance of the
// corresponding experiment per iteration; their relative ns/op across
// configurations mirrors the paper's comparisons (who wins, by what
// factor). cmd/experiments regenerates the full-size tables and figures.
package caligo

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"testing"

	"caligo/caliper"
	"caligo/internal/apps/cleverleaf"
	"caligo/internal/apps/paradis"
	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/core"
	"caligo/internal/experiments"
	"caligo/internal/mpi"
	"caligo/internal/pquery"
	"caligo/internal/rnet"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Figure 3: on-line aggregation overhead. One sub-benchmark per
// measurement configuration; ns/op is the wall time of a small CleverLeaf
// proxy run under that configuration.

func benchApp() cleverleaf.Config {
	return cleverleaf.Config{Ranks: 2, Timesteps: 8, Levels: 3, WorkScale: 0.3}
}

func runConfigured(b *testing.B, services string, key string, sampled bool) {
	b.Helper()
	app := benchApp()
	for i := 0; i < b.N; i++ {
		channels := make([]*caliper.Channel, app.Ranks)
		if services != "" {
			cfg := caliper.Config{
				"services":      services,
				"aggregate.key": key,
				"aggregate.ops": "count,sum(time.duration)",
			}
			if sampled {
				cfg["sampler.frequency"] = "500"
			}
			for r := range channels {
				ch, err := caliper.NewChannel(cfg)
				if err != nil {
					b.Fatal(err)
				}
				channels[r] = ch
			}
		}
		err := cleverleaf.Run(app, func(rank int) *caliper.Thread {
			if channels[rank] == nil {
				return nil
			}
			return channels[rank].Thread()
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, ch := range channels {
			if ch != nil {
				if _, err := ch.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

const (
	keySchemeA = "function,annotation,kernel,amr.level,mpi.rank,mpi.function"
	keySchemeB = "kernel,mpi.function"
	keySchemeC = "function,annotation,kernel,amr.level,mpi.rank,mpi.function,iteration#mainloop"
)

func BenchmarkFigure3Baseline(b *testing.B) {
	runConfigured(b, "", "", false)
}

func BenchmarkFigure3TraceEvent(b *testing.B) {
	runConfigured(b, "event,timer,trace", "", false)
}

func BenchmarkFigure3SchemeAEvent(b *testing.B) {
	runConfigured(b, "event,timer,aggregate", keySchemeA, false)
}

func BenchmarkFigure3SchemeBEvent(b *testing.B) {
	runConfigured(b, "event,timer,aggregate", keySchemeB, false)
}

func BenchmarkFigure3SchemeCEvent(b *testing.B) {
	runConfigured(b, "event,timer,aggregate", keySchemeC, false)
}

func BenchmarkFigure3SchemeASampled(b *testing.B) {
	runConfigured(b, "sampler,timer,aggregate", keySchemeA, true)
}

// ---------------------------------------------------------------------------
// Table I: the per-snapshot cost of the on-line aggregation service under
// the three schemes — the mechanism behind the overhead differences.

func benchSnapshotStream(b *testing.B, key string) {
	b.Helper()
	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": key,
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		b.Fatal(err)
	}
	th := ch.Thread()
	th.Begin("function", "main")
	th.Begin("annotation", "computation")
	kernels := []string{"calc-dt", "advec-mom", "pdv", "viscosity"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Set("iteration#mainloop", i%100)
		th.Begin("kernel", kernels[i%len(kernels)])
		th.End("kernel")
	}
	b.StopTimer()
	th.End("annotation")
	th.End("function")
	if _, err := ch.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTableISchemeAUpdate(b *testing.B) { benchSnapshotStream(b, keySchemeA) }
func BenchmarkTableISchemeBUpdate(b *testing.B) { benchSnapshotStream(b, keySchemeB) }
func BenchmarkTableISchemeCUpdate(b *testing.B) { benchSnapshotStream(b, keySchemeC) }

// ---------------------------------------------------------------------------
// Figure 4: the parallel cross-process query at increasing world sizes.
// ns/op grows ~logarithmically with ranks (the reduce phase), on top of a
// constant local phase.

func benchParallelQuery(b *testing.B, ranks int) {
	b.Helper()
	ds := paradis.Config{Kernels: 20, MPIFunctions: 10, Iterations: 10, ExtraRecords: 4}
	provider := func(rank int) (io.ReadCloser, error) {
		var buf bytes.Buffer
		if err := paradis.WriteRank(&buf, rank, ds); err != nil {
			return nil, err
		}
		return io.NopCloser(&buf), nil
	}
	query := "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel, mpi.function WHERE not(phase)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world, err := mpi.NewWorld(ranks)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pquery.Run(world, query, provider); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Ranks1(b *testing.B)  { benchParallelQuery(b, 1) }
func BenchmarkFigure4Ranks4(b *testing.B)  { benchParallelQuery(b, 4) }
func BenchmarkFigure4Ranks16(b *testing.B) { benchParallelQuery(b, 16) }
func BenchmarkFigure4Ranks64(b *testing.B) { benchParallelQuery(b, 64) }

// ---------------------------------------------------------------------------
// Figures 5-9: the case-study analyses. Each benchmark measures one full
// generate-profile-and-query cycle at reduced scale (the experiments
// command runs them at paper scale with shape checks).

func benchCaseStudy(b *testing.B, run func(experiments.CaseStudyConfig) (*experiments.Report, error)) {
	b.Helper()
	cfg := experiments.CaseStudyConfig{
		App: cleverleaf.Config{Ranks: 10, Timesteps: 12, Levels: 3,
			WorkScale: 0.5, VirtualTime: true},
		SampleHz: 2000,
	}
	for i := 0; i < b.N; i++ {
		rep, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Lines) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFigure5KernelSampling(b *testing.B) { benchCaseStudy(b, experiments.Figure5) }
func BenchmarkFigure6MPIProfile(b *testing.B)     { benchCaseStudy(b, experiments.Figure6) }
func BenchmarkFigure7LoadBalance(b *testing.B)    { benchCaseStudy(b, experiments.Figure7) }
func BenchmarkFigure8AMRPerTimestep(b *testing.B) { benchCaseStudy(b, experiments.Figure8) }
func BenchmarkFigure9AMRPerRank(b *testing.B)     { benchCaseStudy(b, experiments.Figure9) }

// ---------------------------------------------------------------------------
// Ablation 1 (DESIGN.md §5.1): collision-free canonical key encoding vs a
// 64-bit FNV hash key. The hash variant is faster per lookup but cannot
// reconstruct keys at flush time and admits silent collisions; the
// benchmark quantifies what the correctness guarantee costs.

// benchRecords builds a workload of records with a realistic key mix.
func benchRecords(reg *attr.Registry) []snapshot.FlatRecord {
	fn := reg.MustCreate("function", attr.String, attr.Nested)
	iter := reg.MustCreate("iteration", attr.Int, 0)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable)
	names := []string{"main", "foo", "bar", "baz", "qux"}
	var recs []snapshot.FlatRecord
	for i := 0; i < 512; i++ {
		recs = append(recs, snapshot.FlatRecord{
			{Attr: fn, Value: attr.StringV(names[i%len(names)])},
			{Attr: fn, Value: attr.StringV(names[(i/5)%len(names)])},
			{Attr: iter, Value: attr.IntV(int64(i % 16))},
			{Attr: dur, Value: attr.IntV(int64(i))},
		})
	}
	return recs
}

func BenchmarkAblationKeyEncodingCanonical(b *testing.B) {
	reg := attr.NewRegistry()
	recs := benchRecords(reg)
	scheme := core.MustScheme([]string{"function", "iteration"},
		[]core.OpSpec{{Kind: core.OpCount}, {Kind: core.OpSum, Target: "time.duration"}})
	db, err := core.NewDB(scheme, reg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Update(recs[i%len(recs)])
	}
}

// fnvDB is the hash-key alternative: buckets keyed by a 64-bit FNV of the
// same canonical bytes (collisions possible, keys not reconstructible).
type fnvDB struct {
	fnID, iterID attr.ID
	durID        attr.ID
	buckets      map[uint64]*fnvBucket
	buf          []byte
}

type fnvBucket struct {
	count uint64
	sum   int64
}

func (db *fnvDB) update(rec snapshot.FlatRecord) {
	db.buf = db.buf[:0]
	var dur int64
	for _, e := range rec {
		switch e.Attr.ID() {
		case db.fnID, db.iterID:
			db.buf = e.Value.AppendEncoded(db.buf)
		case db.durID:
			dur = e.Value.AsInt()
		}
	}
	h := fnv.New64a()
	h.Write(db.buf)
	k := h.Sum64()
	bk := db.buckets[k]
	if bk == nil {
		bk = &fnvBucket{}
		db.buckets[k] = bk
	}
	bk.count++
	bk.sum += dur
}

func BenchmarkAblationKeyEncodingFNVHash(b *testing.B) {
	reg := attr.NewRegistry()
	recs := benchRecords(reg)
	fn, _ := reg.Find("function")
	iter, _ := reg.Find("iteration")
	dur, _ := reg.Find("time.duration")
	db := &fnvDB{fnID: fn.ID(), iterID: iter.ID(), durID: dur.ID(),
		buckets: map[uint64]*fnvBucket{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.update(recs[i%len(recs)])
	}
}

// ---------------------------------------------------------------------------
// Ablation 2 (DESIGN.md §5.2): per-thread aggregation databases (merged at
// flush) vs a single mutex-guarded shared database. The paper chooses
// per-thread databases to avoid locks on the hot path.

func BenchmarkAblationPerThreadDBs(b *testing.B) {
	reg := attr.NewRegistry()
	recs := benchRecords(reg)
	scheme := core.MustScheme([]string{"function"},
		[]core.OpSpec{{Kind: core.OpCount}, {Kind: core.OpSum, Target: "time.duration"}})
	const workers = 4
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			db, _ := core.NewDB(scheme, reg)
			for i := 0; i < per; i++ {
				db.Update(recs[i%len(recs)])
			}
		}()
	}
	wg.Wait()
}

func BenchmarkAblationSharedLockedDB(b *testing.B) {
	reg := attr.NewRegistry()
	recs := benchRecords(reg)
	scheme := core.MustScheme([]string{"function"},
		[]core.OpSpec{{Kind: core.OpCount}, {Kind: core.OpSum, Target: "time.duration"}})
	db, _ := core.NewDB(scheme, reg)
	var mu sync.Mutex
	const workers = 4
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				mu.Lock()
				db.Update(recs[i%len(recs)])
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Ablation 3 (DESIGN.md §5.3): flat-struct accumulators with a kind switch
// (the implementation) vs interface-dispatched accumulator objects.

// ifaceAccum is the interface-based alternative.
type ifaceAccum interface {
	update(v attr.Variant)
}

type ifaceCount struct{ n uint64 }

func (a *ifaceCount) update(attr.Variant) { a.n++ }

type ifaceSum struct{ s int64 }

func (a *ifaceSum) update(v attr.Variant) { a.s += v.AsInt() }

type ifaceMin struct {
	v    attr.Variant
	seen bool
}

func (a *ifaceMin) update(v attr.Variant) {
	if !a.seen || attr.Compare(v, a.v) < 0 {
		a.v = v
		a.seen = true
	}
}

func BenchmarkAblationOpDispatchStructSwitch(b *testing.B) {
	reg := attr.NewRegistry()
	recs := benchRecords(reg)
	scheme := core.MustScheme([]string{"function"},
		[]core.OpSpec{{Kind: core.OpCount}, {Kind: core.OpSum, Target: "time.duration"},
			{Kind: core.OpMin, Target: "time.duration"}})
	db, _ := core.NewDB(scheme, reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Update(recs[i%len(recs)])
	}
}

func BenchmarkAblationOpDispatchInterface(b *testing.B) {
	reg := attr.NewRegistry()
	recs := benchRecords(reg)
	fn, _ := reg.Find("function")
	dur, _ := reg.Find("time.duration")
	buckets := map[string][]ifaceAccum{}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recs[i%len(recs)]
		buf = buf[:0]
		var dv attr.Variant
		for _, e := range rec {
			if e.Attr.ID() == fn.ID() {
				buf = e.Value.AppendEncoded(buf)
			} else if e.Attr.ID() == dur.ID() {
				dv = e.Value
			}
		}
		accs, ok := buckets[string(buf)]
		if !ok {
			accs = []ifaceAccum{&ifaceCount{}, &ifaceSum{}, &ifaceMin{}}
			buckets[string(buf)] = accs
		}
		accs[0].update(dv)
		accs[1].update(dv)
		accs[2].update(dv)
	}
}

// ---------------------------------------------------------------------------
// Ablation 4 (DESIGN.md §5.4): reduction-tree fan-in. The paper's binary
// tree minimizes per-level messages; wider trees trade fewer levels for
// more sequential merges per node. Virtual reduce time is the metric that
// matters; this benchmark reports wall time of the full run and prints the
// virtual reduce time per fan-in under -v.

func benchFanin(b *testing.B, fanin int) {
	b.Helper()
	ds := paradis.Config{Kernels: 20, MPIFunctions: 10, Iterations: 5, ExtraRecords: 0}
	provider := func(rank int) (io.ReadCloser, error) {
		var buf bytes.Buffer
		if err := paradis.WriteRank(&buf, rank, ds); err != nil {
			return nil, err
		}
		return io.NopCloser(&buf), nil
	}
	query := "AGGREGATE sum(sum#time.duration) GROUP BY kernel, mpi.function"
	var lastReduce float64
	for i := 0; i < b.N; i++ {
		world, err := mpi.NewWorld(64)
		if err != nil {
			b.Fatal(err)
		}
		res, err := pquery.RunFanin(world, query, provider, fanin)
		if err != nil {
			b.Fatal(err)
		}
		lastReduce = res.Timing.ReduceVirt
	}
	b.ReportMetric(lastReduce/1e3, "virtual-reduce-us")
}

func BenchmarkAblationReduceFanin2(b *testing.B)  { benchFanin(b, 2) }
func BenchmarkAblationReduceFanin4(b *testing.B)  { benchFanin(b, 4) }
func BenchmarkAblationReduceFanin8(b *testing.B)  { benchFanin(b, 8) }
func BenchmarkAblationReduceFanin16(b *testing.B) { benchFanin(b, 16) }

// ---------------------------------------------------------------------------
// Ablation 5 (DESIGN.md §5.5): context-tree-compressed snapshot encoding
// vs flat per-record key:value encoding in the .cali stream.

func benchStreamRecords() (*attr.Registry, *contexttree.Tree, []snapshot.Record) {
	reg := attr.NewRegistry()
	tree := contexttree.New()
	fn := reg.MustCreate("function", attr.String, attr.Nested)
	iter := reg.MustCreate("iteration", attr.Int, 0)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue)
	names := []string{"main", "solver", "smoother", "residual"}
	var recs []snapshot.Record
	for i := 0; i < 256; i++ {
		var sb snapshot.Builder
		n := contexttree.InvalidNode
		for d := 0; d <= i%3; d++ {
			n = tree.GetChild(n, fn, attr.StringV(names[(i+d)%len(names)]))
		}
		sb.AddNode(n)
		sb.AddNode(tree.GetChild(contexttree.InvalidNode, iter, attr.IntV(int64(i%8))))
		sb.AddImmediate(dur, attr.IntV(int64(i)))
		recs = append(recs, sb.Record())
	}
	return reg, tree, recs
}

func BenchmarkAblationSnapshotEncodingTree(b *testing.B) {
	reg, tree, recs := benchStreamRecords()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := calformat.NewWriter(&buf, reg, tree)
		for _, r := range recs {
			if err := w.WriteRecord(r); err != nil {
				b.Fatal(err)
			}
		}
		w.Flush()
		total = buf.Len()
	}
	b.ReportMetric(float64(total)/float64(len(recs)), "bytes/record")
}

func BenchmarkAblationSnapshotEncodingFlat(b *testing.B) {
	reg, tree, recs := benchStreamRecords()
	flats := make([]snapshot.FlatRecord, len(recs))
	for i, r := range recs {
		f, err := r.Unpack(tree, reg)
		if err != nil {
			b.Fatal(err)
		}
		flats[i] = f
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := calformat.NewWriter(&buf, reg, tree)
		for _, f := range flats {
			if err := w.WriteFlat(f); err != nil {
				b.Fatal(err)
			}
		}
		w.Flush()
		total = buf.Len()
	}
	b.ReportMetric(float64(total)/float64(len(recs)), "bytes/record")
}

// ---------------------------------------------------------------------------
// sanity: the bench package compiles against the public API surface too.
func BenchmarkQuickstartPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ch, err := caliper.NewChannel(caliper.Config{
			"services":      "event,timer,aggregate",
			"aggregate.key": "function,loop.iteration",
			"aggregate.ops": "count,sum(time.duration)",
		})
		if err != nil {
			b.Fatal(err)
		}
		th := ch.Thread()
		for it := 0; it < 4; it++ {
			th.Begin("loop.iteration", it)
			th.Begin("function", "foo")
			th.End("function")
			th.Begin("function", "bar")
			th.End("function")
			th.End("loop.iteration")
		}
		rows, err := ch.Flush()
		if err != nil || len(rows) == 0 {
			b.Fatalf("flush: %v (%d rows)", err, len(rows))
		}
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits

// ---------------------------------------------------------------------------
// On-line reduction network (internal/rnet): streaming epoch-based
// cross-process aggregation vs the post-mortem tree reduction over the
// same records. The network pays per-epoch reduction latency; the
// post-mortem path pays one big reduction plus file I/O (elided here).

func benchRnet(b *testing.B, ranks, epochs, recsPerEpoch int) {
	scheme := core.MustScheme([]string{"region", "mpi.rank"},
		[]core.OpSpec{{Kind: core.OpCount}, {Kind: core.OpSum, Target: "work"}})
	for i := 0; i < b.N; i++ {
		world, err := mpi.NewWorld(ranks)
		if err != nil {
			b.Fatal(err)
		}
		err = world.Run(func(c *mpi.Comm) error {
			reg := attr.NewRegistry()
			region := reg.MustCreate("region", attr.String, attr.Nested)
			rank := reg.MustCreate("mpi.rank", attr.Int, 0)
			work := reg.MustCreate("work", attr.Int, attr.AsValue)
			node, err := rnet.New(c, scheme, reg)
			if err != nil {
				return err
			}
			names := []string{"a", "b", "c", "d"}
			for e := 0; e < epochs; e++ {
				for r := 0; r < recsPerEpoch; r++ {
					node.Push(snapshot.FlatRecord{
						{Attr: region, Value: attr.StringV(names[r%len(names)])},
						{Attr: rank, Value: attr.IntV(int64(c.Rank()))},
						{Attr: work, Value: attr.IntV(int64(r))},
					})
				}
				if _, err := node.Sync(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRnetStreaming8Ranks(b *testing.B)  { benchRnet(b, 8, 5, 200) }
func BenchmarkRnetStreaming32Ranks(b *testing.B) { benchRnet(b, 32, 5, 200) }

// ---------------------------------------------------------------------------
// Self-instrumentation overhead: the same Table I snapshot stream with
// telemetry collection off (the default — every metric mutator is a
// single atomic load) and on. Compare ns/op between the two:
//
//	go test -bench=TelemetryOverhead -benchmem
//
// The Disabled variant is the cost every uninstrumented user pays; it
// should be indistinguishable from the pre-telemetry baseline (<2%).

func benchTelemetryState(b *testing.B, on bool) {
	b.Helper()
	prev := telemetry.SetEnabled(on)
	b.Cleanup(func() { telemetry.SetEnabled(prev) })
	benchSnapshotStream(b, keySchemeB)
}

func BenchmarkTelemetryOverheadDisabled(b *testing.B) { benchTelemetryState(b, false) }
func BenchmarkTelemetryOverheadEnabled(b *testing.B)  { benchTelemetryState(b, true) }
