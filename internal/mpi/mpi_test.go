package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// sumCombine interprets payloads as little-endian uint64 and adds them.
func sumCombine(a, b []byte) ([]byte, error) {
	va := binary.LittleEndian.Uint64(a)
	vb := binary.LittleEndian.Uint64(b)
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, va+vb)
	return out, nil
}

func u64(v uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, v)
	return out
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("size 0 should error")
	}
	if _, err := NewWorld(-3); err == nil {
		t.Error("negative size should error")
	}
	w, err := NewWorld(4)
	if err != nil || w.Size() != 4 {
		t.Errorf("NewWorld(4) = %v, %v", w, err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		data, src, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "hello" || src != 0 {
			return fmt.Errorf("got %q from %d", data, src)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatching(t *testing.T) {
	// out-of-order tags must be matched correctly via the pending queue
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("first"))
			c.Send(1, 2, []byte("second"))
			return nil
		}
		// receive tag 2 first, then tag 1
		d2, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		d1, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(d1) != "first" || string(d2) != "second" {
			return fmt.Errorf("mismatched: %q %q", d1, d2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	w, _ := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, 5, u64(uint64(c.Rank())))
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			data, src, err := c.Recv(AnySource, 5)
			if err != nil {
				return err
			}
			if binary.LittleEndian.Uint64(data) != uint64(src) {
				return fmt.Errorf("payload/src mismatch")
			}
			seen[src] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("saw %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendErrors(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 0, nil); err == nil {
				return fmt.Errorf("send to invalid rank should fail")
			}
			if err := c.Send(0, 0, nil); err == nil {
				return fmt.Errorf("send to self should fail")
			}
			if _, _, err := c.Recv(9, 0); err == nil {
				return fmt.Errorf("recv from invalid rank should fail")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrorsAndPanics(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("boom")) {
		t.Errorf("err = %v", err)
	}
	w2, _ := NewWorld(2)
	err = w2.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("kaboom")) {
		t.Errorf("panic not captured: %v", err)
	}
}

func TestBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 16, 33} {
		w, _ := NewWorld(p)
		var phase atomic.Int32
		err := w.Run(func(c *Comm) error {
			phase.Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			// after the barrier, every rank must have entered
			if got := phase.Load(); got != int32(p) {
				return fmt.Errorf("rank %d: phase = %d, want %d", c.Rank(), got, p)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 17} {
		for root := 0; root < p; root += max(1, p/3) {
			w, _ := NewWorld(p)
			err := w.Run(func(c *Comm) error {
				var data []byte
				if c.Rank() == root {
					data = []byte("payload")
				}
				got, err := c.Bcast(root, data)
				if err != nil {
					return err
				}
				if string(got) != "payload" {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 16, 31} {
		w, _ := NewWorld(p)
		want := uint64(p * (p - 1) / 2)
		err := w.Run(func(c *Comm) error {
			res, err := c.Reduce(0, u64(uint64(c.Rank())), sumCombine)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				if got := binary.LittleEndian.Uint64(res); got != want {
					return fmt.Errorf("sum = %d, want %d", got, want)
				}
			} else if res != nil {
				return fmt.Errorf("non-root got result")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	p := 9
	root := 4
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		res, err := c.Reduce(root, u64(1), sumCombine)
		if err != nil {
			return err
		}
		if c.Rank() == root && binary.LittleEndian.Uint64(res) != uint64(p) {
			return fmt.Errorf("sum = %d", binary.LittleEndian.Uint64(res))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceFaninVariants(t *testing.T) {
	for _, fanin := range []int{2, 3, 4, 8, 16} {
		for _, p := range []int{1, 2, 5, 16, 27} {
			w, _ := NewWorld(p)
			err := w.Run(func(c *Comm) error {
				res, err := c.ReduceFanin(0, u64(uint64(c.Rank()+1)), sumCombine, fanin)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					want := uint64(p * (p + 1) / 2)
					if got := binary.LittleEndian.Uint64(res); got != want {
						return fmt.Errorf("sum = %d, want %d", got, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("fanin=%d p=%d: %v", fanin, p, err)
			}
		}
	}
	// invalid fanin
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		_, err := c.ReduceFanin(0, u64(1), sumCombine, 1)
		if err == nil {
			return fmt.Errorf("fanin 1 should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	p := 12
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		res, err := c.Allreduce(u64(2), sumCombine)
		if err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint64(res); got != uint64(2*p) {
			return fmt.Errorf("rank %d: allreduce = %d, want %d", c.Rank(), got, 2*p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	p := 7
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		out, err := c.Gather(2, []byte{byte(c.Rank() * 3)})
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root got gather output")
			}
			return nil
		}
		for r, d := range out {
			if len(d) != 1 || d[0] != byte(r*3) {
				return fmt.Errorf("slot %d = %v", r, d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveInvalidRoot(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if _, err := c.Bcast(5, nil); err == nil {
			return fmt.Errorf("bcast invalid root should fail")
		}
		if _, err := c.Reduce(-1, nil, sumCombine); err == nil {
			return fmt.Errorf("reduce invalid root should fail")
		}
		if _, err := c.Gather(2, nil); err == nil {
			return fmt.Errorf("gather invalid root should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	w, _ := NewWorld(2, WithCostModel(CostModel{Latency: 1000, PerByte: 1, Overhead: 100}))
	var clock0, clock1 float64
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Advance(500)
			if err := c.Send(1, 0, make([]byte, 100)); err != nil {
				return err
			}
			clock0 = c.Clock()
			return nil
		}
		_, _, err := c.Recv(0, 0)
		clock1 = c.Clock()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// sender: 500 compute + 100 overhead
	if clock0 != 600 {
		t.Errorf("sender clock = %v, want 600", clock0)
	}
	// receiver: max(0, 600+1000+100*1) + 100 = 1800
	if clock1 != 1800 {
		t.Errorf("receiver clock = %v, want 1800", clock1)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	w, _ := NewWorld(1)
	w.Run(func(c *Comm) error {
		c.Advance(-50)
		if c.Clock() != 0 {
			t.Errorf("clock = %v", c.Clock())
		}
		return nil
	})
}

// TestReductionTimeScalesLogarithmically verifies the virtual-clock shape
// that Figure 4 depends on: tree reduction time grows ~log2(P).
func TestReductionTimeScalesLogarithmically(t *testing.T) {
	depthTime := func(p int) float64 {
		w, _ := NewWorld(p)
		var rootClock float64
		err := w.Run(func(c *Comm) error {
			_, err := c.Reduce(0, u64(1), sumCombine)
			if c.Rank() == 0 {
				rootClock = c.Clock()
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rootClock
	}
	t4, t16, t256 := depthTime(4), depthTime(16), depthTime(256)
	if !(t4 < t16 && t16 < t256) {
		t.Fatalf("times not increasing: %v %v %v", t4, t16, t256)
	}
	// doubling log2(P) from 4 (2 levels) to 16 (4 levels) should roughly
	// double the time; 256 (8 levels) roughly 4x. Allow generous slack.
	r1 := t16 / t4
	r2 := t256 / t4
	if r1 < 1.5 || r1 > 3 || r2 < 2.5 || r2 > 6 {
		t.Errorf("scaling ratios off: t16/t4=%.2f (want ~2), t256/t4=%.2f (want ~4)", r1, r2)
	}
}

// TestQuickReduceMatchesSerial: tree reduction over any world size and
// fan-in must equal the serial sum.
func TestQuickReduceMatchesSerial(t *testing.T) {
	f := func(sizeSel, faninSel uint8, values []uint8) bool {
		p := int(sizeSel%24) + 1
		fanin := int(faninSel%7) + 2
		vals := make([]uint64, p)
		var want uint64
		for i := range vals {
			if i < len(values) {
				vals[i] = uint64(values[i])
			}
			want += vals[i]
		}
		w, _ := NewWorld(p)
		var got uint64
		err := w.Run(func(c *Comm) error {
			res, err := c.ReduceFanin(0, u64(vals[c.Rank()]), sumCombine, fanin)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got = binary.LittleEndian.Uint64(res)
			}
			return nil
		})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := DefaultCostModel()
	if m.Latency <= 0 || m.PerByte <= 0 || m.Overhead <= 0 {
		t.Errorf("cost model = %+v", m)
	}
	if math.IsNaN(m.Latency) {
		t.Error("NaN latency")
	}
}
