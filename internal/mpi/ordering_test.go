package mpi

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestFIFOPerSenderTag: messages between one (src,dst) pair with the same
// tag are received in send order (MPI's non-overtaking guarantee).
func TestFIFOPerSenderTag(t *testing.T) {
	const n = 200
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 9, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, _, err := c.Recv(0, 9)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedTagsPreserveOrder: receiving tag B before tag A must not
// reorder messages within either tag.
func TestInterleavedTagsPreserveOrder(t *testing.T) {
	const n = 50
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
				if err := c.Send(1, 2, []byte{byte(100 + i)}); err != nil {
					return err
				}
			}
			return nil
		}
		// drain tag 2 first, then tag 1
		for i := 0; i < n; i++ {
			d, _, err := c.Recv(0, 2)
			if err != nil {
				return err
			}
			if d[0] != byte(100+i) {
				return fmt.Errorf("tag2 msg %d out of order", i)
			}
		}
		for i := 0; i < n; i++ {
			d, _, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if d[0] != byte(i) {
				return fmt.Errorf("tag1 msg %d out of order", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickBcastDeliversToAll: broadcast from random roots delivers the
// root's payload everywhere.
func TestQuickBcastDeliversToAll(t *testing.T) {
	f := func(sizeSel, rootSel uint8, payload []byte) bool {
		p := int(sizeSel%12) + 1
		root := int(rootSel) % p
		w, _ := NewWorld(p)
		ok := true
		err := w.Run(func(c *Comm) error {
			var data []byte
			if c.Rank() == root {
				data = payload
			}
			got, err := c.Bcast(root, data)
			if err != nil {
				return err
			}
			if string(got) != string(payload) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBarrierVirtualClockSynchronizes: after a barrier, every rank's
// virtual clock is at least the straggler's pre-barrier time.
func TestBarrierVirtualClockSynchronizes(t *testing.T) {
	const p = 6
	const stragglerTime = 5e6
	w, _ := NewWorld(p)
	clocks := make([]float64, p)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			c.Advance(stragglerTime)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		clocks[c.Rank()] = c.Clock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, clk := range clocks {
		if clk < stragglerTime {
			t.Errorf("rank %d clock %v < straggler's %v after barrier", r, clk, stragglerTime)
		}
	}
}

// TestAllreduceClockUniformish: allreduce leaves all ranks with the result
// and clocks beyond the slowest input chain.
func TestAllreduceVirtualClocks(t *testing.T) {
	const p = 8
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		c.Advance(float64(c.Rank()) * 1000)
		res, err := c.Allreduce(u64(1), sumCombine)
		if err != nil {
			return err
		}
		if got := le64(res); got != p {
			return fmt.Errorf("allreduce = %d", got)
		}
		if c.Clock() < float64(p-1)*1000 {
			return fmt.Errorf("rank %d clock %v below slowest input", c.Rank(), c.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
