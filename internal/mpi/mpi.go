// Package mpi emulates an MPI-style message-passing runtime inside one
// process: ranks run as goroutines and exchange byte-slice messages with
// tag matching; collectives (barrier, broadcast, reduce, allreduce,
// gather) are built on point-to-point messaging with the same binomial
// tree algorithms a real MPI implementation uses.
//
// The paper's cross-process aggregation (Section IV-C) runs on MVAPICH2 on
// a 2634-node cluster; this package substitutes an in-process emulation
// that executes the identical logarithmic reduction trees. A LogGP-style
// virtual clock models per-message latency, per-byte cost, and CPU
// overhead, so scalability experiments show the communication scaling
// shape (log₂ P tree depth) without the cluster.
package mpi

import (
	"fmt"
	"math"
	"sync"

	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). All counters are
// no-ops (one atomic load) unless telemetry is enabled.
var (
	telMessages = telemetry.NewCounter("caligo.mpi.messages")
	telMsgBytes = telemetry.NewCounter("caligo.mpi.bytes")
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// CostModel parameterizes the virtual clock, in nanoseconds, loosely
// following the LogGP model.
type CostModel struct {
	// Latency is the end-to-end message latency (L).
	Latency float64
	// PerByte is the transfer time per message byte (G).
	PerByte float64
	// Overhead is the CPU time charged to sender and receiver per
	// message (o).
	Overhead float64
}

// DefaultCostModel approximates a modern HPC interconnect: ~1.5 µs
// latency, ~10 GB/s effective per-flow bandwidth, 0.5 µs CPU overhead.
func DefaultCostModel() CostModel {
	return CostModel{Latency: 1500, PerByte: 0.1, Overhead: 500}
}

// message is one in-flight point-to-point message.
type message struct {
	src     int
	tag     int
	data    []byte
	arrival float64 // virtual arrival time at the receiver
}

// World is one emulated MPI job: a fixed set of ranks with mailboxes.
type World struct {
	size  int
	cost  CostModel
	inbox []chan message

	// done is closed when any rank fails, releasing peers blocked in
	// Send/Recv (the emulated equivalent of MPI_Abort).
	done      chan struct{}
	abortOnce sync.Once
}

// Option configures a World.
type Option func(*World)

// WithCostModel overrides the virtual-clock cost model.
func WithCostModel(m CostModel) Option {
	return func(w *World) { w.cost = m }
}

// NewWorld creates an emulated job with the given number of ranks.
func NewWorld(size int, opts ...Option) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	w := &World{size: size, cost: DefaultCostModel(), done: make(chan struct{})}
	for _, o := range opts {
		o(w)
	}
	w.inbox = make([]chan message, size)
	for i := range w.inbox {
		// generous buffering keeps senders from blocking in the common
		// case; correctness does not depend on capacity
		w.inbox[i] = make(chan message, 64)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// abort releases all ranks blocked in communication calls; it is invoked
// when any rank fails (the emulated equivalent of MPI_Abort).
func (w *World) abort() {
	w.abortOnce.Do(func() { close(w.done) })
}

// Run executes fn once per rank, each in its own goroutine, and waits for
// all to finish. It returns the first non-nil error (with its rank). A
// failing rank aborts the whole job, releasing peers blocked in
// communication.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
				if errs[rank] != nil {
					w.abort()
				}
			}()
			errs[rank] = fn(w.newComm(rank))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil && !isAbortErr(err) {
			return fmt.Errorf("mpi: rank %d: %w", r, err)
		}
	}
	// only abort-induced errors remain (if any): report the first
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("mpi: rank %d: %w", r, err)
		}
	}
	return nil
}

// errAborted is returned from communication calls when the job aborted.
var errAborted = fmt.Errorf("mpi: job aborted by a failing rank")

func isAbortErr(err error) bool { return err == errAborted }

// Comm is one rank's communication endpoint. A Comm is confined to the
// goroutine running that rank.
type Comm struct {
	world   *World
	rank    int
	clock   float64   // virtual time, ns
	pending []message // received but not yet matched
}

func (w *World) newComm(rank int) *Comm {
	return &Comm{world: w, rank: rank}
}

// Rank returns this endpoint's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the job size.
func (c *Comm) Size() int { return c.world.size }

// Clock returns the rank's current virtual time in nanoseconds.
func (c *Comm) Clock() float64 { return c.clock }

// Advance adds local computation time to the virtual clock.
func (c *Comm) Advance(ns float64) {
	if ns > 0 {
		c.clock += ns
	}
}

// Send transmits data to rank dst with the given tag. The data slice is
// not copied; the sender must not modify it afterwards.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.world.size {
		return fmt.Errorf("mpi: send: invalid destination rank %d (size %d)", dst, c.world.size)
	}
	if dst == c.rank {
		return fmt.Errorf("mpi: send: rank %d sending to itself", c.rank)
	}
	telMessages.Inc()
	telMsgBytes.Add(uint64(len(data)))
	sp := trace.BeginRank("mpi.send", c.rank)
	sp.ArgInt("dst", int64(dst))
	sp.ArgInt("tag", int64(tag))
	sp.ArgInt("bytes", int64(len(data)))
	m := c.world.cost
	c.clock += m.Overhead
	arrival := c.clock + m.Latency + float64(len(data))*m.PerByte
	select {
	case c.world.inbox[dst] <- message{src: c.rank, tag: tag, data: data, arrival: arrival}:
		sp.End()
		return nil
	case <-c.world.done:
		sp.End()
		return errAborted
	}
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload and source rank. Pass AnySource to match any sender.
// The virtual clock advances to max(local, arrival) + overhead.
func (c *Comm) Recv(src, tag int) ([]byte, int, error) {
	if src != AnySource && (src < 0 || src >= c.world.size) {
		return nil, 0, fmt.Errorf("mpi: recv: invalid source rank %d", src)
	}
	sp := trace.BeginRank("mpi.recv", c.rank)
	sp.ArgInt("src", int64(src))
	sp.ArgInt("tag", int64(tag))
	matches := func(m message) bool {
		return (src == AnySource || m.src == src) && m.tag == tag
	}
	for i, m := range c.pending {
		if matches(m) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.arrive(m)
			sp.ArgInt("bytes", int64(len(m.data)))
			sp.End()
			return m.data, m.src, nil
		}
	}
	for {
		select {
		case m := <-c.world.inbox[c.rank]:
			if matches(m) {
				c.arrive(m)
				sp.ArgInt("bytes", int64(len(m.data)))
				sp.End()
				return m.data, m.src, nil
			}
			c.pending = append(c.pending, m)
		case <-c.world.done:
			sp.End()
			return nil, 0, errAborted
		}
	}
}

// arrive advances the virtual clock for a consumed message.
func (c *Comm) arrive(m message) {
	c.clock = math.Max(c.clock, m.arrival) + c.world.cost.Overhead
}

// Collective message tags live in reserved negative spaces to avoid
// clashing with user tags and with each other (barrier and reduce both
// offset their base tag by a round index, so the bases are spaced far
// apart).
const (
	tagBarrier = -1_000_000
	tagBcast   = -2_000_000
	tagReduce  = -3_000_000
	tagGather  = -4_000_000
	// tagReduceTel reserves a second reduction tag space for the
	// telemetry-reduction epoch, keeping observability traffic and
	// application data reductions un-confusable on one communicator.
	tagReduceTel = -5_000_000
)

// Barrier synchronizes all ranks using the dissemination algorithm
// (⌈log₂ P⌉ rounds).
func (c *Comm) Barrier() error {
	p := c.world.size
	if p == 1 {
		return nil
	}
	for k := 1; k < p; k *= 2 {
		dst := (c.rank + k) % p
		srcRank := (c.rank - k + p) % p
		if err := c.Send(dst, tagBarrier-k, nil); err != nil {
			return err
		}
		if _, _, err := c.Recv(srcRank, tagBarrier-k); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to all ranks along a binomial tree and
// returns each rank's copy.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	p := c.world.size
	if root < 0 || root >= p {
		return nil, fmt.Errorf("mpi: bcast: invalid root %d", root)
	}
	if p == 1 {
		return data, nil
	}
	vrank := (c.rank - root + p) % p // root becomes virtual rank 0
	// receive from parent (unless root)
	if vrank != 0 {
		mask := 1
		for mask < p {
			if vrank&mask != 0 {
				parent := ((vrank - mask) + root) % p
				got, _, err := c.Recv(parent, tagBcast)
				if err != nil {
					return nil, err
				}
				data = got
				break
			}
			mask *= 2
		}
	}
	// forward to children
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			break
		}
		mask *= 2
	}
	for m := mask / 2; m >= 1; m /= 2 {
		childV := vrank | m
		if childV < p {
			child := (childV + root) % p
			if err := c.Send(child, tagBcast, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Combine merges two payloads into one (a reduction operator on opaque
// byte slices). It must be associative and commutative for tree reduction
// to be well-defined.
type Combine func(a, b []byte) ([]byte, error)

// Reduce folds every rank's contribution to the root along a binomial
// tree ("leaf processes send the local aggregation results to their
// parent, where the partial results are aggregated again" — Section IV-C).
// On the root it returns the combined result; on other ranks nil.
func (c *Comm) Reduce(root int, data []byte, combine Combine) ([]byte, error) {
	return c.ReduceFanin(root, data, combine, 2)
}

// ReduceFanin is Reduce over a tree with configurable fan-in k ≥ 2
// (fan-in 2 is the binomial tree). Exposed for the ablation study of the
// reduction-tree arity.
func (c *Comm) ReduceFanin(root int, data []byte, combine Combine, fanin int) ([]byte, error) {
	return c.reduceFaninTag(root, data, combine, fanin, tagReduce)
}

// ReduceFaninTelemetry is ReduceFanin over the dedicated telemetry tag
// space, so a telemetry-reduction epoch (rnet.SyncTelemetry, pquery's
// post-query epoch) can never collide with an application data reduction
// even when both are in flight on the same communicator.
func (c *Comm) ReduceFaninTelemetry(root int, data []byte, combine Combine, fanin int) ([]byte, error) {
	return c.reduceFaninTag(root, data, combine, fanin, tagReduceTel)
}

func (c *Comm) reduceFaninTag(root int, data []byte, combine Combine, fanin, tagBase int) ([]byte, error) {
	p := c.world.size
	if root < 0 || root >= p {
		return nil, fmt.Errorf("mpi: reduce: invalid root %d", root)
	}
	if fanin < 2 {
		return nil, fmt.Errorf("mpi: reduce: fan-in must be >= 2, got %d", fanin)
	}
	if p == 1 {
		return data, nil
	}
	vrank := (c.rank - root + p) % p
	acc := data
	// k-ary tree generalization of the binomial exchange: in round r
	// (digit position in base `fanin`), ranks whose digit is zero receive
	// from up to fanin-1 children; others send to their parent and stop.
	stride := 1
	for stride < p {
		digit := (vrank / stride) % fanin
		if digit != 0 {
			parentV := vrank - digit*stride
			parent := (parentV + root) % p
			if err := c.Send(parent, tagBase-stride, acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
		for d := 1; d < fanin; d++ {
			childV := vrank + d*stride
			if childV >= p {
				break
			}
			child := (childV + root) % p
			got, _, err := c.Recv(child, tagBase-stride)
			if err != nil {
				return nil, err
			}
			acc, err = combine(acc, got)
			if err != nil {
				return nil, err
			}
		}
		stride *= fanin
	}
	return acc, nil
}

// Allreduce folds every rank's contribution and distributes the result to
// all ranks (reduce-to-zero followed by broadcast).
func (c *Comm) Allreduce(data []byte, combine Combine) ([]byte, error) {
	res, err := c.Reduce(0, data, combine)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, res)
}

// Gather collects every rank's payload at the root, indexed by rank. On
// non-root ranks it returns nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	p := c.world.size
	if root < 0 || root >= p {
		return nil, fmt.Errorf("mpi: gather: invalid root %d", root)
	}
	if c.rank != root {
		return nil, c.Send(root, tagGather, data)
	}
	out := make([][]byte, p)
	out[c.rank] = data
	for i := 0; i < p-1; i++ {
		got, src, err := c.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		if out[src] != nil && src != c.rank {
			return nil, fmt.Errorf("mpi: gather: duplicate contribution from rank %d", src)
		}
		out[src] = got
	}
	return out, nil
}
