package snapshot

import (
	"testing"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
)

type fixture struct {
	reg  *attr.Registry
	tree *contexttree.Tree
	fn   attr.Attribute
	iter attr.Attribute
	dur  attr.Attribute
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := attr.NewRegistry()
	return &fixture{
		reg:  reg,
		tree: contexttree.New(),
		fn:   reg.MustCreate("function", attr.String, attr.Nested),
		iter: reg.MustCreate("iteration", attr.Int, 0),
		dur:  reg.MustCreate("time.duration", attr.Float, attr.AsValue|attr.Aggregatable),
	}
}

func TestBuilderAndUnpack(t *testing.T) {
	fx := newFixture(t)
	n := fx.tree.GetPath(contexttree.InvalidNode, []attr.Entry{
		{Attr: fx.fn, Value: attr.StringV("main")},
		{Attr: fx.fn, Value: attr.StringV("foo")},
	})
	var b Builder
	b.AddNode(n)
	b.AddImmediate(fx.dur, attr.FloatV(2.5))
	rec := b.Record()

	if rec.Empty() {
		t.Fatal("record should not be empty")
	}
	flat, err := rec.Unpack(fx.tree, fx.reg)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if len(flat) != 3 {
		t.Fatalf("flat len = %d, want 3: %v", len(flat), flat)
	}
	if flat[0].Value.String() != "main" || flat[1].Value.String() != "foo" {
		t.Errorf("path order wrong: %v", flat)
	}
	if flat[2].Attr.ID() != fx.dur.ID() || flat[2].Value.AsFloat() != 2.5 {
		t.Errorf("immediate entry wrong: %v", flat[2])
	}
}

func TestBuilderDeduplicatesNodes(t *testing.T) {
	fx := newFixture(t)
	n := fx.tree.GetChild(contexttree.InvalidNode, fx.fn, attr.StringV("f"))
	var b Builder
	b.AddNode(n)
	b.AddNode(n)
	b.AddNode(contexttree.InvalidNode)
	if got := len(b.Record().Nodes); got != 1 {
		t.Errorf("nodes = %d, want 1", got)
	}
	b.AddImmediate(attr.Attribute{}, attr.IntV(1)) // invalid attr ignored
	if got := len(b.Record().Imm); got != 0 {
		t.Errorf("invalid immediate not ignored: %d", got)
	}
}

func TestBuilderReset(t *testing.T) {
	fx := newFixture(t)
	var b Builder
	b.AddNode(fx.tree.GetChild(contexttree.InvalidNode, fx.fn, attr.StringV("f")))
	b.AddImmediate(fx.dur, attr.FloatV(1))
	b.Reset()
	if !b.Record().Empty() {
		t.Error("Reset should clear record")
	}
}

func TestRecordGet(t *testing.T) {
	fx := newFixture(t)
	n := fx.tree.GetPath(contexttree.InvalidNode, []attr.Entry{
		{Attr: fx.fn, Value: attr.StringV("main")},
		{Attr: fx.fn, Value: attr.StringV("foo")},
		{Attr: fx.iter, Value: attr.IntV(4)},
	})
	var b Builder
	b.AddNode(n)
	b.AddImmediate(fx.dur, attr.FloatV(9))
	rec := b.Record()

	if v, ok := rec.Get(fx.tree, fx.fn); !ok || v.String() != "foo" {
		t.Errorf("Get(fn) = %v,%v; want foo", v, ok)
	}
	if v, ok := rec.Get(fx.tree, fx.iter); !ok || v.AsInt() != 4 {
		t.Errorf("Get(iter) = %v,%v", v, ok)
	}
	if v, ok := rec.Get(fx.tree, fx.dur); !ok || v.AsFloat() != 9 {
		t.Errorf("Get(dur) = %v,%v", v, ok)
	}
	other := fx.reg.MustCreate("other", attr.Int, 0)
	if _, ok := rec.Get(fx.tree, other); ok {
		t.Error("Get of absent attribute should miss")
	}
}

func TestRecordClone(t *testing.T) {
	fx := newFixture(t)
	var b Builder
	b.AddNode(fx.tree.GetChild(contexttree.InvalidNode, fx.fn, attr.StringV("f")))
	b.AddImmediate(fx.dur, attr.FloatV(1))
	rec := b.Record()
	cl := rec.Clone()
	cl.Imm[0].Value = attr.FloatV(99)
	if rec.Imm[0].Value.AsFloat() != 1 {
		t.Error("Clone must deep-copy immediate entries")
	}
	empty := Record{}
	ecl := empty.Clone()
	if !ecl.Empty() {
		t.Error("clone of empty should be empty")
	}
}

func TestUnpackError(t *testing.T) {
	fx := newFixture(t)
	rec := Record{Nodes: []contexttree.NodeID{42}}
	if _, err := rec.Unpack(fx.tree, fx.reg); err == nil {
		t.Error("Unpack with bad node id should error")
	}
}

func TestFlatRecordAccessors(t *testing.T) {
	fx := newFixture(t)
	f := FlatRecord{
		{Attr: fx.fn, Value: attr.StringV("main")},
		{Attr: fx.fn, Value: attr.StringV("foo")},
		{Attr: fx.iter, Value: attr.IntV(7)},
	}
	if v, ok := f.Get(fx.fn.ID()); !ok || v.String() != "foo" {
		t.Errorf("Get = %v,%v; want innermost foo", v, ok)
	}
	if v, ok := f.GetByName("iteration"); !ok || v.AsInt() != 7 {
		t.Errorf("GetByName = %v,%v", v, ok)
	}
	if _, ok := f.GetByName("nope"); ok {
		t.Error("GetByName should miss")
	}
	if vals := f.ValuesOf(fx.fn.ID()); len(vals) != 2 || vals[0].String() != "main" {
		t.Errorf("ValuesOf = %v", vals)
	}
	if p := f.PathOf(fx.fn.ID(), "/"); p != "main/foo" {
		t.Errorf("PathOf = %q, want main/foo", p)
	}
	if !f.Has(fx.iter.ID()) || f.Has(fx.dur.ID()) {
		t.Error("Has misbehaves")
	}
	s := f.String()
	if s != "{function=foo,function=main,iteration=7}" {
		t.Errorf("String = %q", s)
	}
	var empty FlatRecord
	if _, ok := empty.Get(fx.fn.ID()); ok {
		t.Error("empty Get should miss")
	}
	if empty.PathOf(fx.fn.ID(), "/") != "" {
		t.Error("empty PathOf should be empty string")
	}
}
