// Package snapshot defines snapshot records: the unit of measurement data
// flowing through the runtime (Section IV-A of the paper).
//
// A snapshot is a compressed copy of the blackboard contents at one point
// in time. Attributes stored in the context tree are referenced by node id
// (one reference covers a whole path of attribute:value pairs); attributes
// with the AsValue property are stored immediate. Unpacking a record
// expands node references back into explicit attribute:value entries.
package snapshot

import (
	"fmt"
	"sort"
	"strings"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
)

// Record is a compressed snapshot record: context-tree node references plus
// immediate (as-value) entries.
type Record struct {
	// Nodes references paths in the context tree. Multiple references occur
	// when independent attribute hierarchies were active (e.g. the
	// annotation stack and the MPI function stack).
	Nodes []contexttree.NodeID
	// Imm holds the immediate entries (typically measurement values).
	Imm []attr.Entry
}

// Empty reports whether the record carries no data.
func (r Record) Empty() bool { return len(r.Nodes) == 0 && len(r.Imm) == 0 }

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := Record{}
	if len(r.Nodes) > 0 {
		out.Nodes = append([]contexttree.NodeID(nil), r.Nodes...)
	}
	if len(r.Imm) > 0 {
		out.Imm = append([]attr.Entry(nil), r.Imm...)
	}
	return out
}

// Unpack expands the record into a flat entry list, expanding node
// references through tree. Entries from node paths appear root-first,
// followed by immediate entries, preserving record order.
func (r Record) Unpack(tree *contexttree.Tree, reg *attr.Registry) (FlatRecord, error) {
	var out FlatRecord
	for _, n := range r.Nodes {
		path, err := tree.Path(n, reg)
		if err != nil {
			return nil, fmt.Errorf("snapshot: unpack: %w", err)
		}
		out = append(out, path...)
	}
	out = append(out, r.Imm...)
	return out, nil
}

// Get returns the deepest value of attribute a in the record, searching
// immediate entries first (they are most recent), then node paths.
func (r Record) Get(tree *contexttree.Tree, a attr.Attribute) (attr.Variant, bool) {
	for i := len(r.Imm) - 1; i >= 0; i-- {
		if r.Imm[i].Attr.ID() == a.ID() {
			return r.Imm[i].Value, true
		}
	}
	for i := len(r.Nodes) - 1; i >= 0; i-- {
		if v, ok := tree.FindInPath(r.Nodes[i], a.ID()); ok {
			return v, true
		}
	}
	return attr.Variant{}, false
}

// FlatRecord is a fully expanded snapshot record: an ordered list of
// attribute:value entries. Order matters for stacked (nested) attributes:
// outer values come first.
type FlatRecord []attr.Entry

// Clone returns an independent copy of the record. Required when
// retaining a record obtained from a reusing producer (e.g.
// calformat.Reader.NextInto) beyond the producer's next call.
func (f FlatRecord) Clone() FlatRecord {
	if f == nil {
		return nil
	}
	out := make(FlatRecord, len(f))
	copy(out, f)
	return out
}

// Get returns the last (innermost/deepest) value for the attribute with
// the given id.
func (f FlatRecord) Get(id attr.ID) (attr.Variant, bool) {
	for i := len(f) - 1; i >= 0; i-- {
		if f[i].Attr.ID() == id {
			return f[i].Value, true
		}
	}
	return attr.Variant{}, false
}

// GetByName returns the last value for the attribute with the given label.
func (f FlatRecord) GetByName(name string) (attr.Variant, bool) {
	for i := len(f) - 1; i >= 0; i-- {
		if f[i].Attr.Name() == name {
			return f[i].Value, true
		}
	}
	return attr.Variant{}, false
}

// ValuesOf returns all values of the attribute in record order
// (outermost first).
func (f FlatRecord) ValuesOf(id attr.ID) []attr.Variant {
	var out []attr.Variant
	for _, e := range f {
		if e.Attr.ID() == id {
			out = append(out, e.Value)
		}
	}
	return out
}

// PathOf joins all values of the attribute with sep, rendering nested
// stacks like call paths ("main/foo/bar").
func (f FlatRecord) PathOf(id attr.ID, sep string) string {
	var sb strings.Builder
	first := true
	for _, e := range f {
		if e.Attr.ID() == id {
			if !first {
				sb.WriteString(sep)
			}
			sb.WriteString(e.Value.String())
			first = false
		}
	}
	return sb.String()
}

// Has reports whether any entry carries the attribute.
func (f FlatRecord) Has(id attr.ID) bool {
	for _, e := range f {
		if e.Attr.ID() == id {
			return true
		}
	}
	return false
}

// String renders the record as a sorted, human-readable set of
// label=value pairs (for tests and debugging).
func (f FlatRecord) String() string {
	parts := make([]string, len(f))
	for i, e := range f {
		parts[i] = e.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// Builder incrementally assembles a snapshot record. It deduplicates node
// references and keeps immediate entries in append order. The zero Builder
// is ready to use.
type Builder struct {
	rec Record
}

// AddNode appends a context-tree node reference, skipping duplicates and
// invalid ids.
func (b *Builder) AddNode(n contexttree.NodeID) {
	if n == contexttree.InvalidNode {
		return
	}
	for _, have := range b.rec.Nodes {
		if have == n {
			return
		}
	}
	b.rec.Nodes = append(b.rec.Nodes, n)
}

// AddImmediate appends an immediate attribute:value entry.
func (b *Builder) AddImmediate(a attr.Attribute, v attr.Variant) {
	if !a.IsValid() {
		return
	}
	b.rec.Imm = append(b.rec.Imm, attr.Entry{Attr: a, Value: v})
}

// Record returns the assembled record. The builder must not be reused
// after calling Record unless Reset is called.
func (b *Builder) Record() Record { return b.rec }

// Reset clears the builder for reuse, retaining allocated capacity.
func (b *Builder) Reset() {
	b.rec.Nodes = b.rec.Nodes[:0]
	b.rec.Imm = b.rec.Imm[:0]
}
