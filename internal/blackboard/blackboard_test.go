package blackboard

import (
	"math/rand"
	"testing"
	"testing/quick"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

type fixture struct {
	reg  *attr.Registry
	tree *contexttree.Tree
	bb   *Blackboard
	fn   attr.Attribute // nested string
	loop attr.Attribute // nested string
	iter attr.Attribute // plain int (reference, not nested)
	dur  attr.Attribute // asvalue float
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := attr.NewRegistry()
	tree := contexttree.New()
	return &fixture{
		reg:  reg,
		tree: tree,
		bb:   New(tree, reg),
		fn:   reg.MustCreate("function", attr.String, attr.Nested),
		loop: reg.MustCreate("loop", attr.String, attr.Nested),
		iter: reg.MustCreate("iteration", attr.Int, 0),
		dur:  reg.MustCreate("time.duration", attr.Float, attr.AsValue),
	}
}

func (fx *fixture) flat(t *testing.T) snapshot.FlatRecord {
	t.Helper()
	var sb snapshot.Builder
	fx.bb.Snapshot(&sb)
	f, err := sb.Record().Unpack(fx.tree, fx.reg)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return f
}

func TestNestedBeginEnd(t *testing.T) {
	fx := newFixture(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fx.bb.Begin(fx.fn, attr.StringV("main")))
	must(fx.bb.Begin(fx.loop, attr.StringV("mainloop")))
	must(fx.bb.Begin(fx.fn, attr.StringV("foo")))

	f := fx.flat(t)
	if p := f.PathOf(fx.fn.ID(), "/"); p != "main/foo" {
		t.Errorf("fn path = %q, want main/foo", p)
	}
	if v, ok := f.Get(fx.loop.ID()); !ok || v.String() != "mainloop" {
		t.Errorf("loop = %v,%v", v, ok)
	}

	must(fx.bb.End(fx.fn))
	must(fx.bb.End(fx.loop))
	must(fx.bb.End(fx.fn))
	if len(fx.flat(t)) != 0 {
		t.Errorf("blackboard not empty after all ends: %v", fx.flat(t))
	}
}

func TestMismatchedNestingDetected(t *testing.T) {
	fx := newFixture(t)
	fx.bb.Begin(fx.fn, attr.StringV("main"))
	fx.bb.Begin(fx.loop, attr.StringV("l"))
	if err := fx.bb.End(fx.fn); err == nil {
		t.Error("ending fn while loop is innermost should error")
	}
	// after the error, state is unchanged: loop can still be ended
	if err := fx.bb.End(fx.loop); err != nil {
		t.Errorf("End(loop) after failed End(fn): %v", err)
	}
}

func TestEndWithoutBegin(t *testing.T) {
	fx := newFixture(t)
	if err := fx.bb.End(fx.fn); err == nil {
		t.Error("End on empty nested stack should error")
	}
	if err := fx.bb.End(fx.iter); err == nil {
		t.Error("End on empty ref stack should error")
	}
	if err := fx.bb.End(fx.dur); err == nil {
		t.Error("End on empty imm stack should error")
	}
}

func TestInvalidAttribute(t *testing.T) {
	fx := newFixture(t)
	var bad attr.Attribute
	if err := fx.bb.Begin(bad, attr.IntV(1)); err == nil {
		t.Error("Begin invalid attr should error")
	}
	if err := fx.bb.End(bad); err == nil {
		t.Error("End invalid attr should error")
	}
	if err := fx.bb.Set(bad, attr.IntV(1)); err == nil {
		t.Error("Set invalid attr should error")
	}
}

func TestReferenceAttributeStack(t *testing.T) {
	fx := newFixture(t)
	fx.bb.Begin(fx.iter, attr.IntV(1))
	fx.bb.Begin(fx.iter, attr.IntV(2))
	f := fx.flat(t)
	vals := f.ValuesOf(fx.iter.ID())
	if len(vals) != 2 || vals[0].AsInt() != 1 || vals[1].AsInt() != 2 {
		t.Errorf("iter stack = %v, want [1 2]", vals)
	}
	if fx.bb.Depth(fx.iter) != 2 {
		t.Errorf("Depth = %d, want 2", fx.bb.Depth(fx.iter))
	}
	fx.bb.End(fx.iter)
	if v, ok := fx.bb.Get(fx.iter); !ok || v.AsInt() != 1 {
		t.Errorf("Get after pop = %v,%v; want 1", v, ok)
	}
}

func TestSetSemantics(t *testing.T) {
	fx := newFixture(t)
	// Set on empty opens a region.
	fx.bb.Set(fx.iter, attr.IntV(5))
	if v, _ := fx.bb.Get(fx.iter); v.AsInt() != 5 {
		t.Errorf("Set-open failed: %v", v)
	}
	// Set replaces the top, not pushes.
	fx.bb.Set(fx.iter, attr.IntV(6))
	if fx.bb.Depth(fx.iter) != 1 {
		t.Errorf("Set pushed instead of replaced: depth %d", fx.bb.Depth(fx.iter))
	}
	if v, _ := fx.bb.Get(fx.iter); v.AsInt() != 6 {
		t.Errorf("Set-replace failed: %v", v)
	}
	// Replacement under a stacked value keeps the parent chain.
	fx.bb.Begin(fx.iter, attr.IntV(7))
	fx.bb.Set(fx.iter, attr.IntV(8))
	vals := fx.flat(t).ValuesOf(fx.iter.ID())
	if len(vals) != 2 || vals[0].AsInt() != 6 || vals[1].AsInt() != 8 {
		t.Errorf("stacked set = %v, want [6 8]", vals)
	}
}

func TestSetNested(t *testing.T) {
	fx := newFixture(t)
	fx.bb.Begin(fx.fn, attr.StringV("main"))
	// Setting loop (not currently innermost) pushes.
	fx.bb.Set(fx.loop, attr.StringV("l0"))
	// Setting loop again (now innermost) replaces.
	fx.bb.Set(fx.loop, attr.StringV("l1"))
	f := fx.flat(t)
	if v, _ := f.Get(fx.loop.ID()); v.String() != "l1" {
		t.Errorf("loop = %v, want l1", v)
	}
	if got := len(f.ValuesOf(fx.loop.ID())); got != 1 {
		t.Errorf("loop depth = %d, want 1", got)
	}
	if v, _ := f.Get(fx.fn.ID()); v.String() != "main" {
		t.Errorf("fn = %v, want main", v)
	}
	if err := fx.bb.End(fx.loop); err != nil {
		t.Errorf("End(loop): %v", err)
	}
	if err := fx.bb.End(fx.fn); err != nil {
		t.Errorf("End(fn): %v", err)
	}
}

func TestImmediateAttribute(t *testing.T) {
	fx := newFixture(t)
	fx.bb.Begin(fx.dur, attr.FloatV(1.5))
	f := fx.flat(t)
	if v, ok := f.Get(fx.dur.ID()); !ok || v.AsFloat() != 1.5 {
		t.Errorf("imm = %v,%v", v, ok)
	}
	fx.bb.Set(fx.dur, attr.FloatV(2.5))
	if v, _ := fx.bb.Get(fx.dur); v.AsFloat() != 2.5 {
		t.Error("imm Set-replace failed")
	}
	fx.bb.End(fx.dur)
	if _, ok := fx.bb.Get(fx.dur); ok {
		t.Error("imm should be unset after End")
	}
}

func TestHiddenAttributeExcludedFromSnapshot(t *testing.T) {
	fx := newFixture(t)
	hidden := fx.reg.MustCreate("secret", attr.Int, attr.Hidden)
	hiddenImm := fx.reg.MustCreate("secret.value", attr.Int, attr.Hidden|attr.AsValue)
	fx.bb.Begin(hidden, attr.IntV(1))
	fx.bb.Begin(hiddenImm, attr.IntV(2))
	fx.bb.Begin(fx.iter, attr.IntV(3))
	f := fx.flat(t)
	if f.Has(hidden.ID()) || f.Has(hiddenImm.ID()) {
		t.Errorf("hidden attributes leaked into snapshot: %v", f)
	}
	if !f.Has(fx.iter.ID()) {
		t.Error("visible attribute missing")
	}
}

func TestClearAndUpdates(t *testing.T) {
	fx := newFixture(t)
	fx.bb.Begin(fx.fn, attr.StringV("a"))
	fx.bb.Begin(fx.iter, attr.IntV(1))
	fx.bb.Begin(fx.dur, attr.FloatV(2))
	if fx.bb.Updates() != 3 {
		t.Errorf("Updates = %d, want 3", fx.bb.Updates())
	}
	fx.bb.Clear()
	if len(fx.flat(t)) != 0 {
		t.Error("Clear left entries behind")
	}
	if _, ok := fx.bb.Get(fx.fn); ok {
		t.Error("Get after Clear should miss")
	}
}

func TestGetOnEmpty(t *testing.T) {
	fx := newFixture(t)
	for _, a := range []attr.Attribute{fx.fn, fx.iter, fx.dur} {
		if _, ok := fx.bb.Get(a); ok {
			t.Errorf("Get(%s) on empty blackboard should miss", a.Name())
		}
	}
	if fx.bb.Depth(fx.fn) != 0 || fx.bb.Depth(fx.iter) != 0 || fx.bb.Depth(fx.dur) != 0 {
		t.Error("Depth on empty should be 0")
	}
}

// TestQuickStackDiscipline drives random begin/end sequences and checks the
// blackboard matches a reference stack implementation.
func TestQuickStackDiscipline(t *testing.T) {
	fx := newFixture(t)
	f := func(ops []uint16, seed int64) bool {
		fx.bb.Clear()
		rng := rand.New(rand.NewSource(seed))
		attrs := []attr.Attribute{fx.fn, fx.loop, fx.iter, fx.dur}
		// reference model: one global stack for nested attrs, per-attr stacks otherwise
		var nestedRef []attr.Entry
		refRef := map[attr.ID][]attr.Variant{}
		for _, op := range ops {
			a := attrs[int(op)%len(attrs)]
			v := attr.IntV(int64(rng.Intn(5)))
			if a.Type() == attr.String {
				v = attr.StringV(string(rune('a' + rng.Intn(5))))
			} else if a.Type() == attr.Float {
				v = attr.FloatV(float64(rng.Intn(5)))
			}
			if op&0x8000 == 0 { // begin
				if err := fx.bb.Begin(a, v); err != nil {
					return false
				}
				if a.IsNested() {
					nestedRef = append(nestedRef, attr.Entry{Attr: a, Value: v})
				} else {
					refRef[a.ID()] = append(refRef[a.ID()], v)
				}
			} else { // end innermost region of a, only when legal
				if a.IsNested() {
					if len(nestedRef) == 0 || nestedRef[len(nestedRef)-1].Attr.ID() != a.ID() {
						if err := fx.bb.End(a); err == nil {
							return false // must have errored
						}
						continue
					}
					nestedRef = nestedRef[:len(nestedRef)-1]
				} else {
					if len(refRef[a.ID()]) == 0 {
						if err := fx.bb.End(a); err == nil {
							return false
						}
						continue
					}
					refRef[a.ID()] = refRef[a.ID()][:len(refRef[a.ID()])-1]
				}
				if err := fx.bb.End(a); err != nil {
					return false
				}
			}
		}
		// verify final state matches the reference
		var sb snapshot.Builder
		fx.bb.Snapshot(&sb)
		flat, err := sb.Record().Unpack(fx.tree, fx.reg)
		if err != nil {
			return false
		}
		for _, a := range attrs {
			var want []attr.Variant
			switch {
			case a.IsNested():
				for _, e := range nestedRef {
					if e.Attr.ID() == a.ID() {
						want = append(want, e.Value)
					}
				}
			case a.StoreAsValue():
				// snapshots capture only the top immediate value
				if st := refRef[a.ID()]; len(st) > 0 {
					want = st[len(st)-1:]
				}
			default:
				want = refRef[a.ID()]
			}
			got := flat.ValuesOf(a.ID())
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
