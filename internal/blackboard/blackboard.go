// Package blackboard implements the runtime blackboard: the globally
// visible data structure that instrumentation and data-collection services
// update with the current program state (Section IV-A of the paper).
//
// A blackboard tracks, per attribute, a stack of current values with
// begin/end (push/pop) and set (replace) semantics. Attributes with the
// Nested property share one interleaved stack, chained into a single
// context-tree branch, so that e.g. "function" regions nest correctly
// inside "loop" regions and one node reference captures the whole
// annotation stack. Snapshots capture a compressed copy of the current
// contents.
//
// A Blackboard is owned by one thread of execution (one caliper.Thread
// handle) and is not safe for concurrent use; this mirrors Caliper's
// per-thread design that avoids locks on the hot path.
package blackboard

import (
	"fmt"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

// Blackboard tracks the current attribute state for one thread.
type Blackboard struct {
	tree *contexttree.Tree
	reg  *attr.Registry

	// nested is the tip of the shared context-tree branch holding all
	// currently open Nested attribute regions; nestedStack remembers the
	// chain for validation and pop.
	nested      contexttree.NodeID
	nestedStack []attr.ID

	// refStacks holds, per non-nested reference attribute, the stack of
	// tree nodes (each node chains onto the previous one of the same
	// attribute, so the node path encodes the stack).
	refStacks map[attr.ID][]contexttree.NodeID

	// immStacks holds value stacks for AsValue attributes.
	immStacks map[attr.ID][]attr.Variant

	// updates counts state-changing operations (for tests and stats).
	updates uint64
}

// New returns a blackboard writing reference entries into tree.
func New(tree *contexttree.Tree, reg *attr.Registry) *Blackboard {
	return &Blackboard{
		tree:      tree,
		reg:       reg,
		nested:    contexttree.InvalidNode,
		refStacks: map[attr.ID][]contexttree.NodeID{},
		immStacks: map[attr.ID][]attr.Variant{},
	}
}

// Updates returns the number of state-changing operations performed.
func (b *Blackboard) Updates() uint64 { return b.updates }

// Begin opens a region: pushes value v for attribute a.
func (b *Blackboard) Begin(a attr.Attribute, v attr.Variant) error {
	if !a.IsValid() {
		return fmt.Errorf("blackboard: Begin: invalid attribute")
	}
	b.updates++
	switch {
	case a.StoreAsValue():
		b.immStacks[a.ID()] = append(b.immStacks[a.ID()], v)
	case a.IsNested():
		b.nested = b.tree.GetChild(b.nested, a, v)
		b.nestedStack = append(b.nestedStack, a.ID())
	default:
		st := b.refStacks[a.ID()]
		parent := contexttree.InvalidNode
		if len(st) > 0 {
			parent = st[len(st)-1]
		}
		b.refStacks[a.ID()] = append(st, b.tree.GetChild(parent, a, v))
	}
	return nil
}

// End closes the innermost open region of attribute a. Ending an attribute
// that is not the innermost open Nested region is an error (mismatched
// nesting), as is ending an attribute with no open region.
func (b *Blackboard) End(a attr.Attribute) error {
	if !a.IsValid() {
		return fmt.Errorf("blackboard: End: invalid attribute")
	}
	b.updates++
	switch {
	case a.StoreAsValue():
		st := b.immStacks[a.ID()]
		if len(st) == 0 {
			return fmt.Errorf("blackboard: End(%s): no open region", a.Name())
		}
		b.immStacks[a.ID()] = st[:len(st)-1]
	case a.IsNested():
		if len(b.nestedStack) == 0 {
			return fmt.Errorf("blackboard: End(%s): no open region", a.Name())
		}
		top := b.nestedStack[len(b.nestedStack)-1]
		if top != a.ID() {
			topAttr, _ := b.reg.Get(top)
			return fmt.Errorf("blackboard: End(%s): mismatched nesting, innermost open region is %s",
				a.Name(), topAttr.Name())
		}
		b.nestedStack = b.nestedStack[:len(b.nestedStack)-1]
		b.nested = b.tree.Parent(b.nested)
	default:
		st := b.refStacks[a.ID()]
		if len(st) == 0 {
			return fmt.Errorf("blackboard: End(%s): no open region", a.Name())
		}
		b.refStacks[a.ID()] = st[:len(st)-1]
	}
	return nil
}

// Set replaces the innermost value of attribute a (or opens a region if
// none is open). Set on Nested attributes is only valid when the attribute
// is itself the innermost open nested region or no nested region of it is
// open at the tip; in the general case Set pushes a new value.
func (b *Blackboard) Set(a attr.Attribute, v attr.Variant) error {
	if !a.IsValid() {
		return fmt.Errorf("blackboard: Set: invalid attribute")
	}
	b.updates++
	switch {
	case a.StoreAsValue():
		st := b.immStacks[a.ID()]
		if len(st) == 0 {
			b.immStacks[a.ID()] = append(st, v)
		} else {
			st[len(st)-1] = v
		}
	case a.IsNested():
		if len(b.nestedStack) > 0 && b.nestedStack[len(b.nestedStack)-1] == a.ID() {
			b.nested = b.tree.GetChild(b.tree.Parent(b.nested), a, v)
		} else {
			b.nested = b.tree.GetChild(b.nested, a, v)
			b.nestedStack = append(b.nestedStack, a.ID())
		}
	default:
		st := b.refStacks[a.ID()]
		if len(st) == 0 {
			b.refStacks[a.ID()] = append(st, b.tree.GetChild(contexttree.InvalidNode, a, v))
		} else {
			parent := contexttree.InvalidNode
			if len(st) > 1 {
				parent = st[len(st)-2]
			}
			st[len(st)-1] = b.tree.GetChild(parent, a, v)
		}
	}
	return nil
}

// Get returns the innermost current value of attribute a.
func (b *Blackboard) Get(a attr.Attribute) (attr.Variant, bool) {
	switch {
	case a.StoreAsValue():
		st := b.immStacks[a.ID()]
		if len(st) == 0 {
			return attr.Variant{}, false
		}
		return st[len(st)-1], true
	case a.IsNested():
		return b.tree.FindInPath(b.nested, a.ID())
	default:
		st := b.refStacks[a.ID()]
		if len(st) == 0 {
			return attr.Variant{}, false
		}
		aid, v, err := b.tree.Entry(st[len(st)-1])
		if err != nil || aid != a.ID() {
			return attr.Variant{}, false
		}
		return v, true
	}
}

// Depth returns the number of open regions of attribute a.
func (b *Blackboard) Depth(a attr.Attribute) int {
	switch {
	case a.StoreAsValue():
		return len(b.immStacks[a.ID()])
	case a.IsNested():
		n := 0
		for _, id := range b.nestedStack {
			if id == a.ID() {
				n++
			}
		}
		return n
	default:
		return len(b.refStacks[a.ID()])
	}
}

// Snapshot appends a compressed copy of the current blackboard contents to
// the builder: the nested-branch tip node, the tip node of every non-empty
// reference stack, and the top value of every non-empty immediate stack.
// Hidden attributes are skipped.
func (b *Blackboard) Snapshot(sb *snapshot.Builder) {
	if b.nested != contexttree.InvalidNode {
		sb.AddNode(b.nested)
	}
	for id, st := range b.refStacks {
		if len(st) == 0 {
			continue
		}
		if a, ok := b.reg.Get(id); ok && a.Properties()&attr.Hidden != 0 {
			continue
		}
		sb.AddNode(st[len(st)-1])
	}
	for id, st := range b.immStacks {
		if len(st) == 0 {
			continue
		}
		a, ok := b.reg.Get(id)
		if !ok || a.Properties()&attr.Hidden != 0 {
			continue
		}
		sb.AddImmediate(a, st[len(st)-1])
	}
}

// Clear resets the blackboard to the empty state.
func (b *Blackboard) Clear() {
	b.nested = contexttree.InvalidNode
	b.nestedStack = b.nestedStack[:0]
	for k := range b.refStacks {
		delete(b.refStacks, k)
	}
	for k := range b.immStacks {
		delete(b.immStacks, k)
	}
}
