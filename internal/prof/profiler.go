package prof

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"caligo/internal/obs"
	"caligo/internal/telemetry"
)

// Self-instrumentation for the capture scheduler.
var (
	telWindows   = telemetry.NewCounter("caligo.prof.windows")
	telCaptures  = telemetry.NewCounter("caligo.prof.captures")
	telErrors    = telemetry.NewCounter("caligo.prof.errors")
	telBytes     = telemetry.NewCounter("caligo.prof.bytes.written")
	telFiles     = telemetry.NewGauge("caligo.prof.files")
	telCaptureNS = telemetry.NewHistogram("caligo.prof.capture.ns")
)

// cpuMu serializes CPU profiling: the Go runtime allows only one CPU
// profile at a time per process, so a scheduler window and an on-demand
// trigger must not overlap.
var cpuMu sync.Mutex

// Kinds of point-in-time profiles the capture layer understands, matching
// runtime/pprof.Lookup names. "cpu" is special-cased (windowed).
var pointKinds = map[string]bool{
	"heap": true, "allocs": true, "goroutine": true,
	"mutex": true, "block": true, "threadcreate": true,
}

// KnownKind reports whether kind names a capturable profile.
func KnownKind(kind string) bool { return kind == "cpu" || pointKinds[kind] }

// CaptureCali captures a profile of the running process and converts it
// to .cali bytes. kind "cpu" records a window of the given duration;
// point-in-time kinds (heap, allocs, goroutine, mutex, block,
// threadcreate) ignore window. The capture overhead (everything except
// the window's wall time itself) is recorded in caligo.prof.capture.ns.
func CaptureCali(kind string, window time.Duration) ([]byte, ConvertStats, error) {
	raw, err := CapturePprof(kind, window)
	if err != nil {
		return nil, ConvertStats{}, err
	}
	return ConvertPprof(raw)
}

// CapturePprof captures a raw pprof profile (gzipped protobuf) of the
// running process.
func CapturePprof(kind string, window time.Duration) ([]byte, error) {
	start := time.Now()
	var buf bytes.Buffer
	switch {
	case kind == "cpu":
		if window <= 0 {
			window = time.Second
		}
		cpuMu.Lock()
		err := pprof.StartCPUProfile(&buf)
		if err != nil {
			cpuMu.Unlock()
			telErrors.Inc()
			return nil, fmt.Errorf("prof: start CPU profile: %w", err)
		}
		time.Sleep(window)
		pprof.StopCPUProfile()
		cpuMu.Unlock()
		telWindows.Inc()
		// the window's sleep is not overhead; count setup+stop+encode only
		telCaptureNS.Observe(time.Since(start).Nanoseconds() - window.Nanoseconds())
	case pointKinds[kind]:
		p := pprof.Lookup(kind)
		if p == nil {
			telErrors.Inc()
			return nil, fmt.Errorf("prof: unknown profile kind %q", kind)
		}
		if err := p.WriteTo(&buf, 0); err != nil {
			telErrors.Inc()
			return nil, fmt.Errorf("prof: capture %s: %w", kind, err)
		}
		telCaptureNS.Observe(time.Since(start).Nanoseconds())
	default:
		return nil, fmt.Errorf("prof: unknown profile kind %q (want cpu, heap, allocs, goroutine, mutex, block, or threadcreate)", kind)
	}
	telCaptures.Inc()
	return buf.Bytes(), nil
}

// ConvertPprof parses raw pprof bytes and converts them to .cali bytes.
func ConvertPprof(raw []byte) ([]byte, ConvertStats, error) {
	p, err := Parse(raw)
	if err != nil {
		telErrors.Inc()
		return nil, ConvertStats{}, err
	}
	var out bytes.Buffer
	stats, err := Convert(p, &out)
	if err != nil {
		telErrors.Inc()
		return nil, stats, err
	}
	return out.Bytes(), stats, nil
}

// Options configures a continuous Profiler.
type Options struct {
	// Dir receives the .cali files. Required.
	Dir string
	// Interval is the cadence between capture rounds (default 1 minute).
	Interval time.Duration
	// CPUWindow is the length of each round's CPU profile window
	// (default 5s; negative disables CPU profiling).
	CPUWindow time.Duration
	// Kinds lists additional point-in-time profiles captured each round
	// (default: heap and goroutine).
	Kinds []string
	// MaxFiles bounds the on-disk ring: when more than MaxFiles converted
	// profiles exist, the oldest are removed (default 16, minimum 2).
	MaxFiles int
	// Prefix names the files: <prefix>-<seq>-<kind>.cali (default
	// "selfprof").
	Prefix string
}

func (o *Options) fill() error {
	if o.Dir == "" {
		return fmt.Errorf("prof: Options.Dir is required")
	}
	if o.Interval <= 0 {
		o.Interval = time.Minute
	}
	if o.CPUWindow == 0 {
		o.CPUWindow = 5 * time.Second
	}
	if o.Kinds == nil {
		o.Kinds = []string{"heap", "goroutine"}
	}
	for _, k := range o.Kinds {
		if !pointKinds[k] {
			return fmt.Errorf("prof: unknown point-in-time profile kind %q", k)
		}
	}
	if o.MaxFiles <= 0 {
		o.MaxFiles = 16
	}
	if o.MaxFiles < 2 {
		o.MaxFiles = 2
	}
	if o.Prefix == "" {
		o.Prefix = "selfprof"
	}
	return nil
}

// Profiler is a continuous self-profiling scheduler: every Interval it
// captures a CPU window plus the configured point-in-time profiles,
// converts each to .cali, and maintains a bounded ring of output files.
type Profiler struct {
	opts Options
	log  *slog.Logger

	mu    sync.Mutex
	seq   int
	files []string // retained files, oldest first
	done  chan struct{}
	wg    sync.WaitGroup
}

// Start begins continuous capture with the given options. The first
// round runs immediately in the background.
func Start(opts Options) (*Profiler, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	p := &Profiler{
		opts: opts,
		log:  obs.Logger("prof"),
		done: make(chan struct{}),
	}
	p.adoptExisting()
	p.wg.Add(1)
	go p.loop()
	return p, nil
}

// adoptExisting picks up leftover ring files from a previous run so
// retention keeps working across restarts.
func (p *Profiler) adoptExisting() {
	matches, err := filepath.Glob(filepath.Join(p.opts.Dir, p.opts.Prefix+"-*.cali"))
	if err != nil || len(matches) == 0 {
		return
	}
	sort.Strings(matches)
	p.mu.Lock()
	p.files = matches
	telFiles.Set(int64(len(p.files)))
	p.mu.Unlock()
}

// Stop halts the scheduler and waits for an in-flight round to finish.
// Retained files stay on disk.
func (p *Profiler) Stop() {
	p.mu.Lock()
	select {
	case <-p.done:
		p.mu.Unlock()
		return
	default:
		close(p.done)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Profiler) loop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.opts.Interval)
	defer ticker.Stop()
	p.round()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			p.round()
		}
	}
}

// round captures one set of profiles.
func (p *Profiler) round() {
	if p.opts.CPUWindow > 0 {
		// The CPU window sleeps inside CaptureCali; bail out early when
		// Stop raced with the tick.
		select {
		case <-p.done:
			return
		default:
		}
		if _, err := p.capture("cpu", p.opts.CPUWindow); err != nil {
			p.log.Warn("cpu capture failed", "err", err)
		}
	}
	for _, kind := range p.opts.Kinds {
		if _, err := p.capture(kind, 0); err != nil {
			p.log.Warn("capture failed", "kind", kind, "err", err)
		}
	}
}

// capture records one profile, converts it, writes the ring file, and
// enforces retention. It returns the written file path.
func (p *Profiler) capture(kind string, window time.Duration) (string, error) {
	cali, _, err := CaptureCali(kind, window)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	seq := p.seq
	p.seq++
	p.mu.Unlock()
	name := fmt.Sprintf("%s-%06d-%s.cali", p.opts.Prefix, seq, kind)
	path := filepath.Join(p.opts.Dir, name)
	if err := os.WriteFile(path, cali, 0o644); err != nil {
		telErrors.Inc()
		return "", fmt.Errorf("prof: write %s: %w", path, err)
	}
	telBytes.Add(uint64(len(cali)))

	p.mu.Lock()
	p.files = append(p.files, path)
	var evict []string
	if n := len(p.files) - p.opts.MaxFiles; n > 0 {
		evict = append(evict, p.files[:n]...)
		p.files = append(p.files[:0], p.files[n:]...)
	}
	telFiles.Set(int64(len(p.files)))
	p.mu.Unlock()
	for _, old := range evict {
		if err := os.Remove(old); err != nil && !os.IsNotExist(err) {
			p.log.Warn("retention remove failed", "file", old, "err", err)
		}
	}
	return path, nil
}

// TriggerWindow synchronously captures one CPU window of the given
// duration (default: the configured CPUWindow) into the ring and returns
// the written file path. Safe to call while the scheduler runs: CPU
// profiling is serialized process-wide.
func (p *Profiler) TriggerWindow(window time.Duration) (string, error) {
	if window <= 0 {
		window = p.opts.CPUWindow
		if window <= 0 {
			window = time.Second
		}
	}
	return p.capture("cpu", window)
}

// TriggerPoint synchronously captures one point-in-time profile into the
// ring and returns the written file path.
func (p *Profiler) TriggerPoint(kind string) (string, error) {
	if !pointKinds[kind] {
		return "", fmt.Errorf("prof: unknown point-in-time profile kind %q", kind)
	}
	return p.capture(kind, 0)
}

// Latest returns the path of the most recent retained file, optionally
// filtered by kind ("" matches any).
func (p *Profiler) Latest(kind string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.files) - 1; i >= 0; i-- {
		if kind == "" || kindOfFile(p.files[i]) == kind {
			return p.files[i], true
		}
	}
	return "", false
}

// Files returns the retained ring files, oldest first.
func (p *Profiler) Files() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.files...)
}

// Options returns the profiler's effective (defaulted) options.
func (p *Profiler) Options() Options { return p.opts }

// kindOfFile recovers the profile kind from a ring file name
// (<prefix>-<seq>-<kind>.cali).
func kindOfFile(path string) string {
	base := filepath.Base(path)
	base = base[:len(base)-len(filepath.Ext(base))]
	if i := lastDash(base); i >= 0 {
		return base[i+1:]
	}
	return ""
}

func lastDash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '-' {
			return i
		}
	}
	return -1
}
