package prof_test

import (
	. "caligo/internal/prof"

	"bytes"
	"compress/gzip"
	"runtime/pprof"
	"testing"
)

// FuzzParse throws arbitrary bytes at the pprof decoder. The decoder must
// never panic or hang; on success, the converter and folded writer must
// also hold up, since anything Parse accepts flows straight into them.
func FuzzParse(f *testing.F) {
	// structured seeds: the synthetic profile, raw and gzipped
	pb := newProfileBuilder()
	pb.sampleType("samples", "count")
	pb.sampleType("cpu", "nanoseconds")
	pb.function(1, "main", "main.go")
	pb.function(2, "foo", "foo.go")
	pb.location(1, [2]uint64{1, 10})
	pb.location(2, [2]uint64{2, 20})
	pb.sample([]uint64{2, 1}, []int64{3, 300})
	raw := pb.build()
	f.Add(raw)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(raw)
	zw.Close()
	f.Add(gz.Bytes())

	// a real runtime/pprof goroutine profile
	var real bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&real, 0); err == nil {
		f.Add(real.Bytes())
	}

	// adversarial seeds: truncations, wrong wire types, giant varints
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{0x0a, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge length claim
	f.Add([]byte{0x08, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add(raw[:len(raw)/2])
	f.Add(append(append([]byte{}, raw...), 0x07)) // trailing group wire type

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := Convert(p, &out); err != nil {
			t.Fatalf("Convert failed on Parse-accepted input: %v", err)
		}
		if len(p.SampleType) > 0 {
			var folded bytes.Buffer
			if err := WriteFolded(p, &folded, 0); err != nil {
				t.Fatalf("WriteFolded failed on Parse-accepted input: %v", err)
			}
		}
	})
}
