package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// Self-instrumentation (see docs/OBSERVABILITY.md).
var (
	telSamples   = telemetry.NewCounter("caligo.prof.samples")
	telRecords   = telemetry.NewCounter("caligo.prof.records")
	telConvertNS = telemetry.NewHistogram("caligo.prof.convert.ns")
)

// Attribute labels of the converted records. prof.function is a nested
// (stack-semantics) attribute, so a sample's calling context becomes a
// context-tree path exactly like an annotation stack; file and line of
// the leaf frame ride along as immediate entries.
const (
	AttrFunction = "prof.function"
	AttrFile     = "prof.file"
	AttrLine     = "prof.line"
)

// metricNames maps pprof (type, unit) sample-type pairs to caligo metric
// attribute labels. Anything not listed falls back to a generated
// "prof.<type>" name with a unit suffix.
var metricNames = map[[2]string]string{
	{"samples", "count"}:       "cpu.samples",
	{"cpu", "nanoseconds"}:     "cpu.ns",
	{"inuse_space", "bytes"}:   "heap.inuse.bytes",
	{"inuse_objects", "count"}: "heap.inuse.objects",
	{"alloc_space", "bytes"}:   "heap.alloc.bytes",
	{"alloc_objects", "count"}: "heap.alloc.objects",
	{"goroutine", "count"}:     "goroutines",
	{"threadcreate", "count"}:  "threads",
	{"contentions", "count"}:   "sync.contentions",
	{"delay", "nanoseconds"}:   "sync.delay.ns",
}

// MetricName returns the caligo attribute label used for a pprof sample
// type (exported so queries and docs can be derived programmatically).
func MetricName(vt ValueType) string {
	if n, ok := metricNames[[2]string{vt.Type, vt.Unit}]; ok {
		return n
	}
	name := "prof." + sanitizeLabel(vt.Type)
	switch vt.Unit {
	case "bytes":
		name += ".bytes"
	case "nanoseconds":
		name += ".ns"
	case "count", "":
		// counts carry no suffix
	default:
		name += "." + sanitizeLabel(vt.Unit)
	}
	return name
}

// sanitizeLabel makes an arbitrary pprof type/unit string safe as a CalQL
// attribute label: identifier runes pass, everything else becomes '_'.
func sanitizeLabel(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteRune('_')
		}
	}
	if sb.Len() == 0 {
		return "unknown"
	}
	return sb.String()
}

// ConvertStats summarizes one conversion.
type ConvertStats struct {
	Samples int      // pprof samples consumed
	Records int      // .cali context records written
	Metrics []string // metric attribute labels, one per sample type
}

// Convert writes every sample of p as one .cali context record: the
// root-first frame stack as nested prof.function entries, the leaf
// frame's file and line as prof.file/prof.line immediates, and the
// sample's values under the mapped metric labels. Per-profile metadata
// (capture time, duration, period) is written as globals. The stream is
// self-contained: it carries its own attribute and node definitions and
// is readable by calformat.Reader and queryable with CalQL.
func Convert(p *Profile, w io.Writer) (ConvertStats, error) {
	start := time.Now()
	reg := attr.NewRegistry()
	tree := contexttree.New()
	cw := calformat.NewWriter(w, reg, tree)

	fnAttr := reg.MustCreate(AttrFunction, attr.String, attr.Nested)
	fileAttr := reg.MustCreate(AttrFile, attr.String, attr.AsValue|attr.SkipEvents)
	lineAttr := reg.MustCreate(AttrLine, attr.Int, attr.AsValue|attr.SkipEvents)

	stats := ConvertStats{}
	metricAttrs := make([]attr.Attribute, len(p.SampleType))
	for i, vt := range p.SampleType {
		name := MetricName(vt)
		a, err := reg.Create(name, attr.Int, attr.AsValue|attr.Aggregatable|attr.SkipEvents)
		if err != nil {
			return stats, fmt.Errorf("prof: metric attribute %q: %w", name, err)
		}
		metricAttrs[i] = a
		stats.Metrics = append(stats.Metrics, name)
	}

	var globals []attr.Entry
	addGlobal := func(name string, typ attr.Type, v attr.Variant) {
		a, err := reg.Create(name, typ, attr.Global)
		if err == nil {
			globals = append(globals, attr.Entry{Attr: a, Value: v})
		}
	}
	if p.TimeNanos != 0 {
		addGlobal("prof.time.ns", attr.Int, attr.IntV(p.TimeNanos))
	}
	if p.DurationNanos != 0 {
		addGlobal("prof.duration.ns", attr.Int, attr.IntV(p.DurationNanos))
	}
	if p.Period != 0 {
		addGlobal("prof.period", attr.Int, attr.IntV(p.Period))
	}
	if p.PeriodType.Type != "" {
		addGlobal("prof.period.type", attr.String, attr.StringV(p.PeriodType.Type))
	}
	if err := cw.WriteGlobals(globals); err != nil {
		return stats, err
	}

	for _, s := range p.Sample {
		frames := p.Frames(s)
		node := contexttree.InvalidNode
		for _, f := range frames {
			node = tree.GetChild(node, fnAttr, attr.StringV(f.Name))
		}
		rec := snapshot.Record{}
		if node != contexttree.InvalidNode {
			rec.Nodes = []contexttree.NodeID{node}
		}
		if n := len(frames); n > 0 {
			leaf := frames[n-1]
			if leaf.File != "" {
				rec.Imm = append(rec.Imm, attr.Entry{Attr: fileAttr, Value: attr.StringV(leaf.File)})
			}
			if leaf.Line != 0 {
				rec.Imm = append(rec.Imm, attr.Entry{Attr: lineAttr, Value: attr.IntV(leaf.Line)})
			}
		}
		for i, v := range s.Value {
			rec.Imm = append(rec.Imm, attr.Entry{Attr: metricAttrs[i], Value: attr.IntV(v)})
		}
		if rec.Empty() {
			continue
		}
		if err := cw.WriteRecord(rec); err != nil {
			return stats, err
		}
		stats.Records++
		stats.Samples++
	}
	if err := cw.Flush(); err != nil {
		return stats, err
	}
	telSamples.Add(uint64(stats.Samples))
	telRecords.Add(uint64(stats.Records))
	telConvertNS.Observe(time.Since(start).Nanoseconds())
	return stats, nil
}

// WriteFolded writes the profile's samples in the folded-stacks format
// consumed by standard flamegraph tooling: one "frame;frame;frame value"
// line per distinct root-first stack, values summed over samples sharing
// the stack and taken from sample type sampleIdx. Semicolons inside frame
// names are replaced (the format reserves them as the frame separator);
// output is sorted by stack for determinism.
func WriteFolded(p *Profile, w io.Writer, sampleIdx int) error {
	if sampleIdx < 0 || sampleIdx >= len(p.SampleType) {
		return fmt.Errorf("prof: folded: sample index %d out of range (profile has %d sample types)",
			sampleIdx, len(p.SampleType))
	}
	totals := map[string]int64{}
	var sb strings.Builder
	for _, s := range p.Sample {
		frames := p.Frames(s)
		if len(frames) == 0 {
			continue
		}
		sb.Reset()
		for i, f := range frames {
			if i > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(foldedFrameName(f.Name))
		}
		totals[sb.String()] += s.Value[sampleIdx]
	}
	stacks := make([]string, 0, len(totals))
	for st := range totals {
		stacks = append(stacks, st)
	}
	sort.Strings(stacks)
	for _, st := range stacks {
		if _, err := fmt.Fprintf(w, "%s %d\n", st, totals[st]); err != nil {
			return err
		}
	}
	return nil
}

// foldedFrameName makes a frame name safe for the folded format: the
// separator characters ';' and ' ' become ':' and '_'. Newlines cannot
// occur in Go symbol names but are stripped defensively.
func foldedFrameName(name string) string {
	if name == "" {
		return "[unknown]"
	}
	r := strings.NewReplacer(";", ":", " ", "_", "\n", "", "\r", "")
	return r.Replace(name)
}
