package prof

// KindOfFile exposes kindOfFile to the external test package
// (prof_test, which must be external to break the test-only import
// cycle prof_test → calql → caliper → prof).
var KindOfFile = kindOfFile

// Wire-type constants re-exported for the external test package's
// hand-rolled protobuf encoder.
const (
	WireVarint  = wireVarint
	WireFixed64 = wireFixed64
	WireBytes   = wireBytes
	WireFixed32 = wireFixed32
)
