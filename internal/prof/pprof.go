package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// ValueType describes one sample value dimension (e.g. samples/count,
// cpu/nanoseconds). Type and Unit are resolved string-table entries.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one pprof sample: a stack (leaf-first location ids, as on the
// wire) and one value per Profile.SampleType entry.
type Sample struct {
	LocationID []uint64
	Value      []int64
}

// Line is one source line within a location; inlined calls give a
// location several lines, innermost first.
type Line struct {
	FunctionID uint64
	Line       int64
}

// Location is one program address with its (possibly inlined) lines.
type Location struct {
	ID   uint64
	Line []Line
}

// Function is the symbol metadata of one function.
type Function struct {
	ID       uint64
	Name     string
	Filename string
}

// Profile is the decoded subset of a profile.proto message: everything
// the converter needs, nothing more (mappings, labels, and comments are
// skipped on the wire).
type Profile struct {
	SampleType    []ValueType
	Sample        []Sample
	Location      map[uint64]*Location
	Function      map[uint64]*Function
	TimeNanos     int64
	DurationNanos int64
	PeriodType    ValueType
	Period        int64

	strings []string
}

// gzipMagic are the first two bytes of any gzip stream; runtime/pprof
// always compresses, but raw protobuf input is accepted too.
var gzipMagic = []byte{0x1f, 0x8b}

// Parse decodes a pprof profile from data, transparently decompressing
// gzip input. It validates cross-references: every sample location id
// must resolve, every line's function id must resolve, and every sample
// must carry exactly one value per sample type.
func Parse(data []byte) (*Profile, error) {
	if bytes.HasPrefix(data, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, 1<<30))
		if err != nil {
			return nil, fmt.Errorf("prof: gzip: %w", err)
		}
		data = raw
	}
	p := &Profile{
		Location: map[uint64]*Location{},
		Function: map[uint64]*Function{},
	}
	d := decoder{buf: data}
	type fnIdx struct {
		fn         *Function
		name, file uint64
	}
	var (
		sampleTypeIdx [][2]uint64 // unresolved (type,unit) string indices
		periodTypeIdx [2]uint64
		hasPeriodType bool
		fnIndices     []fnIdx // unresolved function name/filename indices
	)
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type
			body, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			ti, ui, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			sampleTypeIdx = append(sampleTypeIdx, [2]uint64{ti, ui})
		case 2: // sample
			body, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			if len(p.Sample) >= maxSamples {
				return nil, fmt.Errorf("prof: more than %d samples", maxSamples)
			}
			s, err := parseSample(body)
			if err != nil {
				return nil, err
			}
			p.Sample = append(p.Sample, s)
		case 4: // location
			body, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(body)
			if err != nil {
				return nil, err
			}
			p.Location[loc.ID] = loc
		case 5: // function
			body, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			fn, ni, fi, err := parseFunction(body)
			if err != nil {
				return nil, err
			}
			// resolve after the string table is complete
			p.Function[fn.ID] = fn
			fnIndices = append(fnIndices, fnIdx{fn: fn, name: ni, file: fi})
		case 6: // string_table
			body, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			if len(p.strings) >= maxStringTable {
				return nil, fmt.Errorf("prof: string table larger than %d", maxStringTable)
			}
			p.strings = append(p.strings, string(body))
		case 9: // time_nanos
			v, err := d.intField(wire)
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			v, err := d.intField(wire)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11: // period_type
			body, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			ti, ui, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			periodTypeIdx = [2]uint64{ti, ui}
			hasPeriodType = true
		case 12: // period
			v, err := d.intField(wire)
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	// resolve string indices and validate cross-references
	for _, ti := range sampleTypeIdx {
		t, err := p.str(ti[0])
		if err != nil {
			return nil, err
		}
		u, err := p.str(ti[1])
		if err != nil {
			return nil, err
		}
		p.SampleType = append(p.SampleType, ValueType{Type: t, Unit: u})
	}
	if hasPeriodType {
		t, err := p.str(periodTypeIdx[0])
		if err != nil {
			return nil, err
		}
		u, err := p.str(periodTypeIdx[1])
		if err != nil {
			return nil, err
		}
		p.PeriodType = ValueType{Type: t, Unit: u}
	}
	for _, fi := range fnIndices {
		name, err := p.str(fi.name)
		if err != nil {
			return nil, err
		}
		file, err := p.str(fi.file)
		if err != nil {
			return nil, err
		}
		fi.fn.Name, fi.fn.Filename = name, file
	}
	if len(p.SampleType) == 0 {
		return nil, fmt.Errorf("prof: profile has no sample types")
	}
	for i, s := range p.Sample {
		if len(s.Value) != len(p.SampleType) {
			return nil, fmt.Errorf("prof: sample %d has %d values, want %d",
				i, len(s.Value), len(p.SampleType))
		}
		for _, lid := range s.LocationID {
			if _, ok := p.Location[lid]; !ok {
				return nil, fmt.Errorf("prof: sample %d references unknown location %d", i, lid)
			}
		}
	}
	for _, loc := range p.Location {
		for _, ln := range loc.Line {
			if _, ok := p.Function[ln.FunctionID]; !ok {
				return nil, fmt.Errorf("prof: location %d references unknown function %d",
					loc.ID, ln.FunctionID)
			}
		}
	}
	return p, nil
}

// str resolves a string-table index.
func (p *Profile) str(i uint64) (string, error) {
	if i >= uint64(len(p.strings)) {
		return "", fmt.Errorf("prof: string index %d out of range (table has %d)", i, len(p.strings))
	}
	return p.strings[i], nil
}

func parseValueType(body []byte) (typeIdx, unitIdx uint64, err error) {
	d := decoder{buf: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return 0, 0, err
		}
		switch field {
		case 1:
			if typeIdx, err = d.intField(wire); err != nil {
				return 0, 0, err
			}
		case 2:
			if unitIdx, err = d.intField(wire); err != nil {
				return 0, 0, err
			}
		default:
			if err := d.skip(wire); err != nil {
				return 0, 0, err
			}
		}
	}
	return typeIdx, unitIdx, nil
}

func parseSample(body []byte) (Sample, error) {
	var s Sample
	d := decoder{buf: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1: // location_id
			if s.LocationID, err = d.appendPacked(s.LocationID, wire); err != nil {
				return s, err
			}
			if len(s.LocationID) > maxStackDepth {
				return s, fmt.Errorf("prof: sample stack deeper than %d", maxStackDepth)
			}
		case 2: // value
			if s.Value, err = d.appendPackedInt64(s.Value, wire); err != nil {
				return s, err
			}
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLocation(body []byte) (*Location, error) {
	loc := &Location{}
	d := decoder{buf: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // id
			v, err := d.intField(wire)
			if err != nil {
				return nil, err
			}
			loc.ID = v
		case 4: // line
			lb, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			ln, err := parseLine(lb)
			if err != nil {
				return nil, err
			}
			loc.Line = append(loc.Line, ln)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return loc, nil
}

func parseLine(body []byte) (Line, error) {
	var ln Line
	d := decoder{buf: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return ln, err
		}
		switch field {
		case 1:
			v, err := d.intField(wire)
			if err != nil {
				return ln, err
			}
			ln.FunctionID = v
		case 2:
			v, err := d.intField(wire)
			if err != nil {
				return ln, err
			}
			ln.Line = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return ln, err
			}
		}
	}
	return ln, nil
}

func parseFunction(body []byte) (fn *Function, nameIdx, fileIdx uint64, err error) {
	fn = &Function{}
	d := decoder{buf: body}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, 0, 0, err
		}
		switch field {
		case 1: // id
			v, err := d.intField(wire)
			if err != nil {
				return nil, 0, 0, err
			}
			fn.ID = v
		case 2: // name
			if nameIdx, err = d.intField(wire); err != nil {
				return nil, 0, 0, err
			}
		case 4: // filename
			if fileIdx, err = d.intField(wire); err != nil {
				return nil, 0, 0, err
			}
		default:
			if err := d.skip(wire); err != nil {
				return nil, 0, 0, err
			}
		}
	}
	return fn, nameIdx, fileIdx, nil
}

// Frames expands one sample's stack into root-first frames: the wire
// order is leaf-first locations, each location expanding to its inlined
// lines innermost-first, so the full reversal yields the calling order.
// The returned slice is freshly allocated.
func (p *Profile) Frames(s Sample) []Frame {
	var leafFirst []Frame
	for _, lid := range s.LocationID {
		loc := p.Location[lid]
		if loc == nil {
			continue
		}
		if len(loc.Line) == 0 {
			// an unsymbolized location still occupies a frame
			leafFirst = append(leafFirst, Frame{Name: fmt.Sprintf("0x%x", loc.ID)})
			continue
		}
		for _, ln := range loc.Line {
			fn := p.Function[ln.FunctionID]
			leafFirst = append(leafFirst, Frame{Name: fn.Name, File: fn.Filename, Line: ln.Line})
		}
	}
	for i, j := 0, len(leafFirst)-1; i < j; i, j = i+1, j-1 {
		leafFirst[i], leafFirst[j] = leafFirst[j], leafFirst[i]
	}
	return leafFirst
}

// Frame is one resolved stack frame.
type Frame struct {
	Name string
	File string
	Line int64
}
