package prof_test

import (
	. "caligo/internal/prof"

	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"caligo/calql"
	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
)

// writeCali converts p into a .cali file under dir and returns its path.
func writeCali(t *testing.T, p *Profile, dir string) (string, ConvertStats) {
	t.Helper()
	var buf bytes.Buffer
	stats, err := Convert(p, &buf)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	path := filepath.Join(dir, "profile.cali")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, stats
}

func TestConvertRoundTrip(t *testing.T) {
	p, _ := synthProfile(t)
	var buf bytes.Buffer
	stats, err := Convert(p, &buf)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if stats.Samples != 4 || stats.Records != 4 {
		t.Errorf("stats = %+v", stats)
	}
	wantMetrics := []string{"cpu.samples", "cpu.ns"}
	if len(stats.Metrics) != 2 || stats.Metrics[0] != wantMetrics[0] || stats.Metrics[1] != wantMetrics[1] {
		t.Errorf("metrics = %v, want %v", stats.Metrics, wantMetrics)
	}

	reg := attr.NewRegistry()
	tree := contexttree.New()
	r := calformat.NewReader(&buf, reg, tree)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	fn, ok := reg.Find(AttrFunction)
	if !ok {
		t.Fatal("prof.function attribute missing from stream")
	}
	if !fn.IsNested() {
		t.Error("prof.function lost the nested property")
	}
	byPath := map[string][2]int64{}
	for _, rec := range recs {
		samples, _ := rec.GetByName("cpu.samples")
		ns, _ := rec.GetByName("cpu.ns")
		byPath[rec.PathOf(fn.ID(), "/")] = [2]int64{samples.AsInt(), ns.AsInt()}
	}
	wants := map[string][2]int64{
		"main":         {10, 1000},
		"main/foo":     {20, 2000},
		"main/foo/bar": {40, 4000},
		"main/baz":     {5, 500},
	}
	for path, w := range wants {
		if byPath[path] != w {
			t.Errorf("%s: (samples,ns) = %v, want %v", path, byPath[path], w)
		}
	}
	// leaf file/line ride along as immediates
	for _, rec := range recs {
		if rec.PathOf(fn.ID(), "/") == "main/foo/bar" {
			if v, ok := rec.GetByName(AttrFile); !ok || v.String() != "bar.go" {
				t.Errorf("prof.file = %v", v)
			}
			if v, ok := rec.GetByName(AttrLine); !ok || v.AsInt() != 30 {
				t.Errorf("prof.line = %v", v)
			}
		}
	}
	// profile metadata arrives as globals
	foundDuration := false
	for _, g := range r.Globals() {
		if g.Attr.Name() == "prof.duration.ns" && g.Value.AsInt() == 1e9 {
			foundDuration = true
		}
	}
	if !foundDuration {
		t.Error("prof.duration.ns global missing")
	}
}

// flatCum hand-computes per-function flat (leaf-attributed) and
// cumulative (any-frame-attributed, counted once per sample) tallies from
// the raw samples — the same numbers pprof's top view reports.
func flatCum(p *Profile, sampleIdx int) (flat, cum map[string]int64) {
	flat = map[string]int64{}
	cum = map[string]int64{}
	for _, s := range p.Sample {
		frames := p.Frames(s)
		if len(frames) == 0 {
			continue
		}
		v := s.Value[sampleIdx]
		flat[frames[len(frames)-1].Name] += v
		seen := map[string]bool{}
		for _, f := range frames {
			if !seen[f.Name] {
				seen[f.Name] = true
				cum[f.Name] += v
			}
		}
	}
	return flat, cum
}

// TestCalQLEquivalenceSynthetic checks that a CalQL aggregation over the
// converted records reproduces the hand-computed per-function flat and
// cumulative tallies on the synthetic profile.
func TestCalQLEquivalenceSynthetic(t *testing.T) {
	p, _ := synthProfile(t)
	checkCalQLEquivalence(t, p)
}

// TestCalQLEquivalenceGoldenCPU is the end-to-end proof on real data: a
// CPU profile of this test process, converted to .cali, must yield the
// same per-function totals through CalQL as pprof's own sample tallies.
func TestCalQLEquivalenceGoldenCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 1s profile window")
	}
	p := captureGoldenCPU(t)
	checkCalQLEquivalence(t, p)
}

func checkCalQLEquivalence(t *testing.T, p *Profile) {
	t.Helper()
	path, stats := writeCali(t, p, t.TempDir())
	if stats.Records == 0 {
		t.Fatal("conversion produced no records")
	}
	res, err := calql.QueryFiles(
		"SELECT prof.function, sum(cpu.samples), inclusive_sum(cpu.samples) "+
			"GROUP BY prof.function", []string{path})
	if err != nil {
		t.Fatalf("CalQL query: %v", err)
	}
	fn, ok := res.Reg.Find(AttrFunction)
	if !ok {
		t.Fatal("prof.function not in result registry")
	}

	// one query row per distinct calling-context path
	type qrow struct {
		path    []string
		excl    int64
		incl    int64
		hasExcl bool
		hasIncl bool
	}
	var qrows []qrow
	for _, row := range res.Rows {
		vals := row.ValuesOf(fn.ID())
		if len(vals) == 0 {
			continue
		}
		qr := qrow{path: make([]string, len(vals))}
		for i, v := range vals {
			qr.path[i] = v.String()
		}
		if v, ok := row.GetByName("sum#cpu.samples"); ok {
			qr.excl, qr.hasExcl = v.AsInt(), true
		}
		if v, ok := row.GetByName("inclusive_sum#cpu.samples"); ok {
			qr.incl, qr.hasIncl = v.AsInt(), true
		}
		qrows = append(qrows, qr)
	}

	// flat(f): exclusive sum over rows with leaf f. cum(f): exclusive sum
	// over rows whose path contains f, counted once per row — exact against
	// pprof's once-per-sample rule even under recursion, because rows group
	// samples by identical stack.
	gotFlat := map[string]int64{}
	gotCum := map[string]int64{}
	for _, qr := range qrows {
		gotFlat[qr.path[len(qr.path)-1]] += qr.excl
		seen := map[string]bool{}
		for _, f := range qr.path {
			if !seen[f] {
				seen[f] = true
				gotCum[f] += qr.excl
			}
		}
	}

	wantFlat, wantCum := flatCum(p, 0)
	for f, w := range wantFlat {
		if gotFlat[f] != w {
			t.Errorf("flat[%s] = %d, want %d", f, gotFlat[f], w)
		}
	}
	for f, w := range wantCum {
		if gotCum[f] != w {
			t.Errorf("cum[%s] = %d, want %d", f, gotCum[f], w)
		}
	}

	// inclusive_sum semantics, checked row by row: a path's inclusive value
	// must equal the exclusive total of every path extending it (itself
	// included). Functions appearing only as interior frames have no row of
	// their own — their subtree totals are covered by the cum check above.
	for _, qr := range qrows {
		if !qr.hasIncl || !qr.hasExcl {
			t.Errorf("row %v missing sum/inclusive_sum values", qr.path)
			continue
		}
		var want int64
		for _, other := range qrows {
			if pathHasPrefix(other.path, qr.path) {
				want += other.excl
			}
		}
		if qr.incl != want {
			t.Errorf("inclusive_sum[%v] = %d, want %d (sum over extensions)",
				qr.path, qr.incl, want)
		}
	}

	// total flat across all functions equals total samples in the profile
	var gotTotal, wantTotal int64
	for _, v := range gotFlat {
		gotTotal += v
	}
	for _, s := range p.Sample {
		if len(s.LocationID) > 0 {
			wantTotal += s.Value[0]
		}
	}
	if gotTotal != wantTotal {
		t.Errorf("total samples through CalQL = %d, want %d", gotTotal, wantTotal)
	}
}

// pathHasPrefix reports whether path starts with the full prefix.
func pathHasPrefix(path, prefix []string) bool {
	if len(path) < len(prefix) {
		return false
	}
	for i, f := range prefix {
		if path[i] != f {
			return false
		}
	}
	return true
}

// TestCalQLTreeFormat smoke-checks the flagship query from the issue:
// FORMAT tree output over converted records renders the calling-context
// hierarchy.
func TestCalQLTreeFormat(t *testing.T) {
	p, _ := synthProfile(t)
	path, _ := writeCali(t, p, t.TempDir())
	res, err := calql.QueryFiles(
		"SELECT prof.function, inclusive_sum(cpu.samples) "+
			"GROUP BY prof.function FORMAT tree", []string{path})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"main", "foo", "bar", "baz", "75", "60"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

// parseFolded is a strict parser for the folded-stacks format: each line
// must be "frame(;frame)* value" with a single space separating the stack
// from the integer value and no empty frames. It returns per-stack values.
func parseFolded(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("folded line %d: empty", ln+1)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("folded line %d: no value separator: %q", ln+1, line)
		}
		stack, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			t.Fatalf("folded line %d: bad value %q: %v", ln+1, valStr, err)
		}
		if strings.Contains(stack, " ") {
			t.Fatalf("folded line %d: space inside stack: %q", ln+1, stack)
		}
		for _, frame := range strings.Split(stack, ";") {
			if frame == "" {
				t.Fatalf("folded line %d: empty frame in %q", ln+1, stack)
			}
		}
		if _, dup := out[stack]; dup {
			t.Fatalf("folded line %d: duplicate stack %q", ln+1, stack)
		}
		out[stack] = v
	}
	return out
}

func TestWriteFolded(t *testing.T) {
	p, _ := synthProfile(t)
	var buf bytes.Buffer
	if err := WriteFolded(p, &buf, 0); err != nil {
		t.Fatal(err)
	}
	got := parseFolded(t, buf.String())
	wants := map[string]int64{
		"main":         10,
		"main;foo":     20,
		"main;foo;bar": 40,
		"main;baz":     5,
	}
	if len(got) != len(wants) {
		t.Fatalf("folded stacks = %v, want %v", got, wants)
	}
	for st, w := range wants {
		if got[st] != w {
			t.Errorf("folded[%s] = %d, want %d", st, got[st], w)
		}
	}
	if err := WriteFolded(p, &buf, 99); err == nil {
		t.Error("out-of-range sample index: expected error")
	}
}

// TestWriteFoldedGolden validates the folded output of a real CPU profile
// with the strict parser and checks value conservation.
func TestWriteFoldedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 1s profile window")
	}
	p := captureGoldenCPU(t)
	var buf bytes.Buffer
	if err := WriteFolded(p, &buf, 0); err != nil {
		t.Fatal(err)
	}
	got := parseFolded(t, buf.String())
	var gotTotal, wantTotal int64
	for _, v := range got {
		gotTotal += v
	}
	for _, s := range p.Sample {
		if len(s.LocationID) > 0 {
			wantTotal += s.Value[0]
		}
	}
	if gotTotal != wantTotal {
		t.Errorf("folded total = %d, want %d", gotTotal, wantTotal)
	}
}

// TestFoldedPathologicalNames: frame names with the format's separator
// characters must not break the line structure.
func TestFoldedPathologicalNames(t *testing.T) {
	pb := newProfileBuilder()
	pb.sampleType("samples", "count")
	pb.function(1, "go func (x int)", "a.go")
	pb.function(2, "weird;name", "b.go")
	pb.location(1, [2]uint64{1, 1})
	pb.location(2, [2]uint64{2, 2})
	pb.sample([]uint64{2, 1}, []int64{3})
	p, err := Parse(pb.build())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFolded(p, &buf, 0); err != nil {
		t.Fatal(err)
	}
	got := parseFolded(t, buf.String())
	if len(got) != 1 {
		t.Fatalf("folded = %v", got)
	}
	for st, v := range got {
		if v != 3 {
			t.Errorf("value = %d", v)
		}
		if strings.Count(st, ";") != 1 {
			t.Errorf("stack separator count wrong: %q", st)
		}
	}
}

func TestMetricNameFallback(t *testing.T) {
	cases := []struct {
		vt   ValueType
		want string
	}{
		{ValueType{"samples", "count"}, "cpu.samples"},
		{ValueType{"inuse_space", "bytes"}, "heap.inuse.bytes"},
		{ValueType{"goroutine", "count"}, "goroutines"},
		{ValueType{"exotic", "bytes"}, "prof.exotic.bytes"},
		{ValueType{"exotic", "nanoseconds"}, "prof.exotic.ns"},
		{ValueType{"exotic", "count"}, "prof.exotic"},
		{ValueType{"weird type!", "widgets"}, "prof.weird_type_.widgets"},
		{ValueType{"", ""}, "prof.unknown"},
	}
	for _, c := range cases {
		if got := MetricName(c.vt); got != c.want {
			t.Errorf("MetricName(%v) = %q, want %q", c.vt, got, c.want)
		}
	}
}

// TestConvertPathologicalFrameNames drives real-world symbol shapes
// (generics, closures, unicode, and hostile control characters) through
// convert → write → read → query.
func TestConvertPathologicalFrameNames(t *testing.T) {
	names := []string{
		"main.(*Server).ServeHTTP",
		"sort.Slice[go.shape.int]",
		"main.run.func2.1",
		"type..eq.main.T",
		"caligo/internal/query.(*Engine).Write",
		"fn with spaces, commas",
		"equals=colon:semicolon;",
		"unicode.λ.функция.関数",
		"tab\there",
		"newline\nin\nname",
	}
	pb := newProfileBuilder()
	pb.sampleType("samples", "count")
	for i, n := range names {
		pb.function(uint64(i+1), n, fmt.Sprintf("file%d.go", i))
		pb.location(uint64(i+1), [2]uint64{uint64(i + 1), uint64(i + 1)})
	}
	// one sample through the whole pathological stack (leaf-first ids)
	ids := make([]uint64, len(names))
	for i := range ids {
		ids[i] = uint64(len(names) - i)
	}
	pb.sample(ids, []int64{1})
	p, err := Parse(pb.build())
	if err != nil {
		t.Fatal(err)
	}
	path, stats := writeCali(t, p, t.TempDir())
	if stats.Records != 1 {
		t.Fatalf("records = %d", stats.Records)
	}
	res, err := calql.QueryFiles(
		"SELECT prof.function, inclusive_sum(cpu.samples) GROUP BY prof.function",
		[]string{path})
	if err != nil {
		t.Fatalf("query over pathological names: %v", err)
	}
	fn, _ := res.Reg.Find(AttrFunction)
	found := false
	for _, row := range res.Rows {
		vals := row.ValuesOf(fn.ID())
		if len(vals) == len(names) {
			found = true
			for i, v := range vals {
				if v.String() != names[i] {
					t.Errorf("frame %d = %q, want %q", i, v.String(), names[i])
				}
			}
		}
	}
	if !found {
		t.Error("full pathological path did not survive the round trip")
	}
}

func BenchmarkConvert(b *testing.B) {
	// a synthetic profile shaped like a real CPU capture: 64 functions,
	// 1000 samples over stacks up to 16 deep
	pb := newProfileBuilder()
	pb.sampleType("samples", "count")
	pb.sampleType("cpu", "nanoseconds")
	for i := 1; i <= 64; i++ {
		pb.function(uint64(i), fmt.Sprintf("pkg.func%02d", i), fmt.Sprintf("f%02d.go", i))
		pb.location(uint64(i), [2]uint64{uint64(i), uint64(i)})
	}
	for i := 0; i < 1000; i++ {
		depth := 1 + i%16
		ids := make([]uint64, depth)
		for j := 0; j < depth; j++ {
			ids[j] = uint64(1 + (i+j)%64)
		}
		pb.sample(ids, []int64{1, 10000})
	}
	p, err := Parse(pb.build())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := Convert(p, &buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkParse(b *testing.B) {
	_, raw := synthProfileB(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// synthProfileB mirrors synthProfile for benchmarks.
func synthProfileB(b *testing.B) (*Profile, []byte) {
	b.Helper()
	pb := newProfileBuilder()
	pb.sampleType("samples", "count")
	pb.function(1, "main", "main.go")
	pb.location(1, [2]uint64{1, 10})
	for i := 0; i < 100; i++ {
		pb.sample([]uint64{1}, []int64{1})
	}
	raw := pb.build()
	p, err := Parse(raw)
	if err != nil {
		b.Fatal(err)
	}
	return p, raw
}
