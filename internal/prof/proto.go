// Package prof turns Go runtime profiles (the gzipped pprof protobuf
// format produced by runtime/pprof) into caligo's own calling-context
// records: each pprof sample becomes one .cali context record whose stack
// is a path of nested prof.function nodes, with the sample values
// (cpu.samples, cpu.ns, heap.inuse.bytes, ...) as immediate metric
// entries. The result is queryable with the same CalQL used for
// application data — "where does my process spend its time" becomes
//
//	SELECT prof.function, inclusive_sum(cpu.samples)
//	GROUP BY prof.function FORMAT tree
//
// The package has three layers: a minimal, stdlib-only decoder for the
// profile.proto wire subset the converter needs (this file and pprof.go),
// the converter itself (convert.go), and a continuous capture scheduler
// with bounded on-disk retention (profiler.go).
package prof

import (
	"errors"
	"fmt"
)

// Wire types of the protobuf binary encoding. Only the three that occur
// in profile.proto are accepted; groups (3/4) are an error.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

var errTruncated = errors.New("prof: truncated protobuf message")

// decoder is a cursor over one protobuf message body. Nested messages
// decode with a sub-decoder over their length-delimited bytes.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

// varint reads one base-128 varint. The 10-byte cap matches the maximum
// encoded length of a 64-bit value; longer runs are malformed input.
func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.buf) {
			return 0, errTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, errors.New("prof: varint overflows 64 bits")
}

// tag reads the next field tag, returning field number and wire type.
func (d *decoder) tag() (int, int, error) {
	t, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	field := int(t >> 3)
	wire := int(t & 7)
	if field == 0 {
		return 0, 0, errors.New("prof: field number 0 is invalid")
	}
	return field, wire, nil
}

// bytesField reads a length-delimited field body.
func (d *decoder) bytesField() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, errTruncated
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// skip consumes one field body of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireFixed64:
		if len(d.buf)-d.pos < 8 {
			return errTruncated
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytesField()
		return err
	case wireFixed32:
		if len(d.buf)-d.pos < 4 {
			return errTruncated
		}
		d.pos += 4
		return nil
	}
	return fmt.Errorf("prof: unsupported wire type %d", wire)
}

// intField reads a varint-encoded integer field (int64/uint64 in
// profile.proto use plain two's-complement varints, not zigzag).
func (d *decoder) intField(wire int) (uint64, error) {
	switch wire {
	case wireVarint:
		return d.varint()
	case wireFixed64:
		if len(d.buf)-d.pos < 8 {
			return 0, errTruncated
		}
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(d.buf[d.pos+i]) << (8 * i)
		}
		d.pos += 8
		return v, nil
	case wireFixed32:
		if len(d.buf)-d.pos < 4 {
			return 0, errTruncated
		}
		var v uint64
		for i := 0; i < 4; i++ {
			v |= uint64(d.buf[d.pos+i]) << (8 * i)
		}
		d.pos += 4
		return v, nil
	}
	return 0, fmt.Errorf("prof: integer field has wire type %d", wire)
}

// appendPacked appends the elements of a repeated integer field to dst.
// Both encodings are accepted: a packed length-delimited run and a single
// unpacked varint element (runtime/pprof writes packed, but the format
// allows either and real-world writers mix them).
func (d *decoder) appendPacked(dst []uint64, wire int) ([]uint64, error) {
	if wire == wireBytes {
		body, err := d.bytesField()
		if err != nil {
			return dst, err
		}
		sub := decoder{buf: body}
		for !sub.done() {
			v, err := sub.varint()
			if err != nil {
				return dst, err
			}
			dst = append(dst, v)
		}
		return dst, nil
	}
	v, err := d.intField(wire)
	if err != nil {
		return dst, err
	}
	return append(dst, v), nil
}

// appendPackedInt64 is appendPacked for int64 value lists.
func (d *decoder) appendPackedInt64(dst []int64, wire int) ([]int64, error) {
	tmp, err := d.appendPacked(nil, wire)
	if err != nil {
		return dst, err
	}
	for _, v := range tmp {
		dst = append(dst, int64(v))
	}
	return dst, nil
}

// sanity caps guarding against pathological inputs (a handful of bytes can
// claim astronomically large counts; real profiles stay far below these).
const (
	maxStringTable = 1 << 22 // entries
	maxSamples     = 1 << 24
	maxStackDepth  = 1 << 16 // frames per sample
)
