package prof_test

import (
	. "caligo/internal/prof"

	"bytes"
	"compress/gzip"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Test-only protobuf encoder: builds profile.proto messages byte by byte so
// decoder tests do not depend on any protobuf library.

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, field, wire int) []byte {
	return appendVarint(b, uint64(field)<<3|uint64(wire))
}

func appendBytesField(b []byte, field int, body []byte) []byte {
	b = appendTag(b, field, WireBytes)
	b = appendVarint(b, uint64(len(body)))
	return append(b, body...)
}

func appendIntField(b []byte, field int, v uint64) []byte {
	b = appendTag(b, field, WireVarint)
	return appendVarint(b, v)
}

func appendPackedField(b []byte, field int, vals []uint64) []byte {
	var body []byte
	for _, v := range vals {
		body = appendVarint(body, v)
	}
	return appendBytesField(b, field, body)
}

// profileBuilder assembles a synthetic profile with interned strings.
type profileBuilder struct {
	strings map[string]uint64
	table   []string
	buf     []byte
}

func newProfileBuilder() *profileBuilder {
	return &profileBuilder{strings: map[string]uint64{"": 0}, table: []string{""}}
}

func (pb *profileBuilder) str(s string) uint64 {
	if i, ok := pb.strings[s]; ok {
		return i
	}
	i := uint64(len(pb.table))
	pb.strings[s] = i
	pb.table = append(pb.table, s)
	return i
}

func (pb *profileBuilder) sampleType(typ, unit string) {
	var vt []byte
	vt = appendIntField(vt, 1, pb.str(typ))
	vt = appendIntField(vt, 2, pb.str(unit))
	pb.buf = appendBytesField(pb.buf, 1, vt)
}

func (pb *profileBuilder) sample(locIDs []uint64, values []int64) {
	var s []byte
	s = appendPackedField(s, 1, locIDs)
	uvals := make([]uint64, len(values))
	for i, v := range values {
		uvals[i] = uint64(v)
	}
	s = appendPackedField(s, 2, uvals)
	pb.buf = appendBytesField(pb.buf, 2, s)
}

// sampleUnpacked writes location ids as individual varint fields (the
// non-packed repeated encoding the format also permits).
func (pb *profileBuilder) sampleUnpacked(locIDs []uint64, values []int64) {
	var s []byte
	for _, id := range locIDs {
		s = appendIntField(s, 1, id)
	}
	for _, v := range values {
		s = appendIntField(s, 2, uint64(v))
	}
	pb.buf = appendBytesField(pb.buf, 2, s)
}

func (pb *profileBuilder) location(id uint64, lines ...[2]uint64) { // (functionID, line)
	var loc []byte
	loc = appendIntField(loc, 1, id)
	for _, ln := range lines {
		var lb []byte
		lb = appendIntField(lb, 1, ln[0])
		lb = appendIntField(lb, 2, ln[1])
		loc = appendBytesField(loc, 4, lb)
	}
	pb.buf = appendBytesField(pb.buf, 4, loc)
}

func (pb *profileBuilder) function(id uint64, name, file string) {
	var fn []byte
	fn = appendIntField(fn, 1, id)
	fn = appendIntField(fn, 2, pb.str(name))
	fn = appendIntField(fn, 4, pb.str(file))
	pb.buf = appendBytesField(pb.buf, 5, fn)
}

func (pb *profileBuilder) build() []byte {
	out := pb.buf
	for _, s := range pb.table {
		out = appendBytesField(out, 6, []byte(s))
	}
	return out
}

// synthProfile builds the canonical test profile:
//
//	main            10 samples / 1000 ns
//	main>foo        20 / 2000
//	main>foo>bar    40 / 4000
//	main>baz         5 / 500
func synthProfile(t *testing.T) (*Profile, []byte) {
	t.Helper()
	pb := newProfileBuilder()
	pb.sampleType("samples", "count")
	pb.sampleType("cpu", "nanoseconds")
	pb.function(1, "main", "main.go")
	pb.function(2, "foo", "foo.go")
	pb.function(3, "bar", "bar.go")
	pb.function(4, "baz", "baz.go")
	pb.location(1, [2]uint64{1, 10})
	pb.location(2, [2]uint64{2, 20})
	pb.location(3, [2]uint64{3, 30})
	pb.location(4, [2]uint64{4, 40})
	// location ids are leaf-first on the wire
	pb.sample([]uint64{1}, []int64{10, 1000})
	pb.sample([]uint64{2, 1}, []int64{20, 2000})
	pb.sample([]uint64{3, 2, 1}, []int64{40, 4000})
	pb.sampleUnpacked([]uint64{4, 1}, []int64{5, 500})
	pb.buf = appendIntField(pb.buf, 9, 12345)  // time_nanos
	pb.buf = appendIntField(pb.buf, 10, 1e9)   // duration_nanos
	pb.buf = appendIntField(pb.buf, 12, 10000) // period
	raw := pb.build()
	p, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse(synthetic): %v", err)
	}
	return p, raw
}

func TestParseSynthetic(t *testing.T) {
	p, _ := synthProfile(t)
	if got := len(p.SampleType); got != 2 {
		t.Fatalf("sample types = %d, want 2", got)
	}
	if p.SampleType[0] != (ValueType{"samples", "count"}) ||
		p.SampleType[1] != (ValueType{"cpu", "nanoseconds"}) {
		t.Errorf("sample types = %v", p.SampleType)
	}
	if len(p.Sample) != 4 {
		t.Fatalf("samples = %d, want 4", len(p.Sample))
	}
	if p.TimeNanos != 12345 || p.DurationNanos != 1e9 || p.Period != 10000 {
		t.Errorf("meta = (%d,%d,%d)", p.TimeNanos, p.DurationNanos, p.Period)
	}
	// frames come out root-first
	frames := p.Frames(p.Sample[2])
	want := []string{"main", "foo", "bar"}
	if len(frames) != len(want) {
		t.Fatalf("frames = %v", frames)
	}
	for i, w := range want {
		if frames[i].Name != w {
			t.Errorf("frame %d = %q, want %q", i, frames[i].Name, w)
		}
	}
	if frames[2].File != "bar.go" || frames[2].Line != 30 {
		t.Errorf("leaf frame = %+v", frames[2])
	}
	// the unpacked-encoding sample decodes identically
	frames = p.Frames(p.Sample[3])
	if len(frames) != 2 || frames[0].Name != "main" || frames[1].Name != "baz" {
		t.Errorf("unpacked sample frames = %v", frames)
	}
}

func TestParseGzipped(t *testing.T) {
	p, raw := synthProfile(t)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(raw)
	zw.Close()
	p2, err := Parse(gz.Bytes())
	if err != nil {
		t.Fatalf("Parse(gzipped): %v", err)
	}
	if len(p2.Sample) != len(p.Sample) || len(p2.Function) != len(p.Function) {
		t.Errorf("gzipped parse differs: %d samples / %d functions", len(p2.Sample), len(p2.Function))
	}
}

func TestParseInlinedLines(t *testing.T) {
	// one location carrying two lines = an inlined call; innermost first
	pb := newProfileBuilder()
	pb.sampleType("samples", "count")
	pb.function(1, "outer", "o.go")
	pb.function(2, "inlined", "i.go")
	pb.location(1, [2]uint64{2, 5}, [2]uint64{1, 50})
	pb.sample([]uint64{1}, []int64{7})
	p, err := Parse(pb.build())
	if err != nil {
		t.Fatal(err)
	}
	frames := p.Frames(p.Sample[0])
	if len(frames) != 2 || frames[0].Name != "outer" || frames[1].Name != "inlined" {
		t.Errorf("inline expansion = %v", frames)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"garbage":    {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"bad gzip":   {0x1f, 0x8b, 0x00},
		"truncated":  {0x0a}, // bytes field with missing length
		"field zero": {0x00, 0x00},
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// sample referencing an unknown location
	pb := newProfileBuilder()
	pb.sampleType("samples", "count")
	pb.sample([]uint64{99}, []int64{1})
	if _, err := Parse(pb.build()); err == nil {
		t.Error("unknown location: expected error")
	}

	// value count mismatch vs sample types
	pb = newProfileBuilder()
	pb.sampleType("samples", "count")
	pb.sampleType("cpu", "nanoseconds")
	pb.function(1, "f", "f.go")
	pb.location(1, [2]uint64{1, 1})
	pb.sample([]uint64{1}, []int64{1}) // one value, two types
	if _, err := Parse(pb.build()); err == nil {
		t.Error("value count mismatch: expected error")
	}

	// string index out of range
	var buf []byte
	var vt []byte
	vt = appendIntField(vt, 1, 40)
	vt = appendIntField(vt, 2, 41)
	buf = appendBytesField(buf, 1, vt)
	buf = appendBytesField(buf, 6, nil)
	if _, err := Parse(buf); err == nil {
		t.Error("string index out of range: expected error")
	}

	// no sample types at all
	pb = newProfileBuilder()
	pb.function(1, "f", "f.go")
	if _, err := Parse(pb.build()); err == nil {
		t.Error("missing sample types: expected error")
	}
}

// burnCPU spins on real work until done is closed, so a CPU window has
// something to sample.
func burnCPU(done <-chan struct{}) {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	x := uint64(0)
	for {
		select {
		case <-done:
			runtime.KeepAlive(x)
			return
		default:
			for i := 0; i < len(buf); i++ {
				x = x*1099511628211 + uint64(buf[i])
			}
		}
	}
}

// captureGoldenCPU records a real CPU profile of this test process via
// runtime/pprof (the golden source of truth for the decoder), retrying
// with a longer window if the scheduler delivered no samples.
func captureGoldenCPU(t *testing.T) *Profile {
	t.Helper()
	for _, window := range []time.Duration{time.Second, 2 * time.Second} {
		done := make(chan struct{})
		go burnCPU(done)
		go burnCPU(done)
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			close(done)
			t.Fatalf("StartCPUProfile: %v", err)
		}
		time.Sleep(window)
		pprof.StopCPUProfile()
		close(done)
		p, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("Parse(golden CPU profile): %v", err)
		}
		if len(p.Sample) > 0 {
			return p
		}
	}
	t.Fatal("no CPU samples after two windows")
	return nil
}

func TestParseGoldenCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 1s profile window")
	}
	p := captureGoldenCPU(t)
	// runtime/pprof CPU profiles carry exactly these two sample types
	if len(p.SampleType) != 2 ||
		p.SampleType[0] != (ValueType{"samples", "count"}) ||
		p.SampleType[1] != (ValueType{"cpu", "nanoseconds"}) {
		t.Fatalf("sample types = %v", p.SampleType)
	}
	if p.Period <= 0 || p.DurationNanos <= 0 || p.TimeNanos <= 0 {
		t.Errorf("metadata: period=%d duration=%d time=%d", p.Period, p.DurationNanos, p.TimeNanos)
	}
	sawBurn := false
	for _, s := range p.Sample {
		if len(s.Value) != 2 {
			t.Fatalf("sample has %d values", len(s.Value))
		}
		if s.Value[0] <= 0 {
			t.Errorf("non-positive sample count %d", s.Value[0])
		}
		frames := p.Frames(s)
		if len(frames) == 0 {
			t.Error("sample with no frames")
		}
		for _, f := range frames {
			if f.Name == "" {
				t.Error("frame with empty name")
			}
			if strings.HasSuffix(f.Name, "prof_test.burnCPU") {
				sawBurn = true
			}
		}
	}
	if !sawBurn {
		t.Error("golden profile never sampled burnCPU (symbolization broken?)")
	}
}

func TestParseGoldenHeap(t *testing.T) {
	// allocate something attributable so the heap profile is non-trivial
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64*1024))
	}
	runtime.GC() // heap profile reflects post-GC live data
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse(golden heap profile): %v", err)
	}
	want := []ValueType{
		{"alloc_objects", "count"}, {"alloc_space", "bytes"},
		{"inuse_objects", "count"}, {"inuse_space", "bytes"},
	}
	if len(p.SampleType) != len(want) {
		t.Fatalf("sample types = %v", p.SampleType)
	}
	for i, w := range want {
		if p.SampleType[i] != w {
			t.Errorf("sample type %d = %v, want %v", i, p.SampleType[i], w)
		}
	}
	runtime.KeepAlive(sink)
}

func TestParseGoldenGoroutine(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 0); err != nil {
		t.Fatalf("goroutine profile: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse(golden goroutine profile): %v", err)
	}
	if len(p.SampleType) != 1 || p.SampleType[0] != (ValueType{"goroutine", "count"}) {
		t.Fatalf("sample types = %v", p.SampleType)
	}
	total := int64(0)
	for _, s := range p.Sample {
		total += s.Value[0]
	}
	if total < 1 {
		t.Errorf("goroutine count = %d, want >= 1", total)
	}
}

// TestGoldenFileRoundTrip pins the decoder against a profile written to
// disk and read back, the way cali-prof convert consumes files.
func TestGoldenFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/goroutine.pb.gz"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); err != nil {
		t.Fatalf("Parse(file round trip): %v", err)
	}
}
