package prof_test

import (
	. "caligo/internal/prof"

	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"caligo/calql"
	"caligo/internal/telemetry"
)

func TestCapturePointInTime(t *testing.T) {
	for _, kind := range []string{"heap", "goroutine", "allocs", "threadcreate"} {
		cali, stats, err := CaptureCali(kind, 0)
		if err != nil {
			t.Fatalf("CaptureCali(%s): %v", kind, err)
		}
		if len(cali) == 0 {
			t.Errorf("%s: empty .cali output", kind)
		}
		if len(stats.Metrics) == 0 {
			t.Errorf("%s: no metrics", kind)
		}
	}
	if _, _, err := CaptureCali("nonsense", 0); err == nil {
		t.Error("unknown kind: expected error")
	}
	if !KnownKind("cpu") || !KnownKind("heap") || KnownKind("nope") {
		t.Error("KnownKind misclassifies")
	}
}

func TestCaptureTelemetry(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })

	capturesBefore := telemetry.NewCounter("caligo.prof.captures").Value()
	recordsBefore := telemetry.NewCounter("caligo.prof.records").Value()
	convertBefore := telemetry.NewHistogram("caligo.prof.convert.ns").Count()
	captureBefore := telemetry.NewHistogram("caligo.prof.capture.ns").Count()

	if _, _, err := CaptureCali("goroutine", 0); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.NewCounter("caligo.prof.captures").Value(); got != capturesBefore+1 {
		t.Errorf("captures counter = %d, want %d", got, capturesBefore+1)
	}
	if got := telemetry.NewCounter("caligo.prof.records").Value(); got <= recordsBefore {
		t.Errorf("records counter did not advance (%d)", got)
	}
	if got := telemetry.NewHistogram("caligo.prof.convert.ns").Count(); got != convertBefore+1 {
		t.Errorf("convert.ns count = %d, want %d", got, convertBefore+1)
	}
	if got := telemetry.NewHistogram("caligo.prof.capture.ns").Count(); got != captureBefore+1 {
		t.Errorf("capture.ns count = %d, want %d", got, captureBefore+1)
	}
}

func TestProfilerRingRetention(t *testing.T) {
	dir := t.TempDir()
	p, err := Start(Options{
		Dir:       dir,
		Interval:  time.Hour, // no scheduled rounds during the test
		CPUWindow: -1,        // disable the initial CPU window
		Kinds:     []string{"goroutine"},
		MaxFiles:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// the startup round captures one goroutine profile in the background;
	// trigger more on demand and watch the ring stay bounded
	for i := 0; i < 6; i++ {
		if _, err := p.TriggerPoint("goroutine"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(p.Files()) <= 3 })
	files := p.Files()
	if len(files) == 0 || len(files) > 3 {
		t.Fatalf("ring holds %d files, want 1..3", len(files))
	}
	ondisk, err := filepath.Glob(filepath.Join(dir, "selfprof-*.cali"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ondisk) > 3 {
		t.Errorf("retention failed: %d files on disk", len(ondisk))
	}
	latest, ok := p.Latest("goroutine")
	if !ok {
		t.Fatal("Latest(goroutine) found nothing")
	}
	if KindOfFile(latest) != "goroutine" {
		t.Errorf("latest kind = %q", KindOfFile(latest))
	}
	if _, err := os.Stat(latest); err != nil {
		t.Errorf("latest file missing: %v", err)
	}
	if _, err := p.TriggerPoint("bogus"); err == nil {
		t.Error("TriggerPoint(bogus): expected error")
	}
}

func TestProfilerStopIdempotent(t *testing.T) {
	p, err := Start(Options{Dir: t.TempDir(), Interval: time.Hour, CPUWindow: -1, Kinds: []string{}})
	if err != nil {
		t.Fatal(err)
	}
	p.Stop()
	p.Stop() // second Stop must not panic or deadlock
}

func TestProfilerAdoptsExistingFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "selfprof-000000-goroutine.cali")
	if err := os.WriteFile(stale, []byte("__rec=attr,id=0,name=x,type=int,prop=\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Start(Options{Dir: dir, Interval: time.Hour, CPUWindow: -1,
		Kinds: []string{}, MaxFiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	found := false
	for _, f := range p.Files() {
		if f == stale {
			found = true
		}
	}
	if !found {
		t.Errorf("existing ring file not adopted: %v", p.Files())
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Error("missing Dir: expected error")
	}
	if _, err := Start(Options{Dir: t.TempDir(), Kinds: []string{"cpu"}}); err == nil {
		t.Error("cpu in point-in-time kinds: expected error")
	}
	if _, err := Start(Options{Dir: t.TempDir(), Kinds: []string{"whatever"}}); err == nil {
		t.Error("unknown kind: expected error")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in 5s")
}

// TestProfSmoke is the end-to-end smoke run behind `make prof-smoke`:
// capture a 1s CPU window of this process, convert it, and answer the
// flagship question with CalQL over the resulting file.
func TestProfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 1s profile window")
	}
	dir := t.TempDir()
	p, err := Start(Options{
		Dir:       dir,
		Interval:  time.Hour,
		CPUWindow: -1, // the explicit trigger below is the only capture
		Kinds:     []string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	var path string
	for _, window := range []time.Duration{time.Second, 2 * time.Second} {
		done := make(chan struct{})
		go burnCPU(done)
		go burnCPU(done)
		path, err = p.TriggerWindow(window)
		close(done)
		if err != nil {
			t.Fatalf("TriggerWindow: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(data, []byte("__rec=ctx")) {
			break
		}
		path = ""
	}
	if path == "" {
		t.Fatal("CPU windows captured no samples")
	}

	res, err := calql.QueryFiles(
		"SELECT prof.function, inclusive_sum(cpu.samples) "+
			"GROUP BY prof.function FORMAT tree", []string{path})
	if err != nil {
		t.Fatalf("smoke query: %v", err)
	}
	out := res.String()
	if len(res.Rows) == 0 {
		t.Fatal("smoke query returned no rows")
	}
	if !strings.Contains(out, "prof.function") && !strings.Contains(out, "inclusive_sum") {
		t.Errorf("unexpected tree output:\n%s", out)
	}
}

// BenchmarkCaptureConvertHeap measures the profiler's per-round overhead
// for a point-in-time capture (capture + decode + convert): this is the
// steady-state cost the scheduler pays outside CPU windows, and the
// number recorded in the caligo.prof.capture.ns / convert.ns histograms.
func BenchmarkCaptureConvertHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := CaptureCali("heap", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaptureConvertGoroutine is the cheapest capture kind — the
// floor of per-round scheduler overhead.
func BenchmarkCaptureConvertGoroutine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := CaptureCali("goroutine", 0); err != nil {
			b.Fatal(err)
		}
	}
}
