package qcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultMaxBytes bounds the store size when neither the caller nor the
// CALIGO_CACHE_MAX environment variable picks a limit.
const DefaultMaxBytes = 256 << 20

// Store is a directory of cache entry files. One entry file per
// (plan fingerprint, data file) pair, named by the two FNV-1a hashes, so
// lookup is a single stat+read and concurrent processes sharing the
// directory never contend beyond the filesystem. Writes go through a
// temp file + rename, so readers only ever observe complete entries.
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	size  int64 // running byte total of entry files; -1 until first scan
	count int64
}

// Open opens (creating if needed) a cache store rooted at dir. The size
// bound comes from CALIGO_CACHE_MAX (bytes) or DefaultMaxBytes.
func Open(dir string) (*Store, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, err
	}
	max := int64(DefaultMaxBytes)
	if v := os.Getenv("CALIGO_CACHE_MAX"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			max = n
		}
	}
	return &Store{dir: abs, maxBytes: max, size: -1}, nil
}

var (
	sharedMu sync.Mutex
	shared   = map[string]*Store{}
)

// Shared returns a process-wide store for dir, opening it on first use.
// Sharded workers and emulated-MPI ranks all funnel through one Store so
// the size accounting stays coherent within the process.
func Shared(dir string) (*Store, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if s, ok := shared[abs]; ok {
		return s, nil
	}
	s, err := Open(abs)
	if err != nil {
		return nil, err
	}
	shared[abs] = s
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// MaxBytes returns the store's size bound.
func (s *Store) MaxBytes() int64 { return s.maxBytes }

// SetMaxBytes overrides the size bound (cali-cache gc -max).
func (s *Store) SetMaxBytes(n int64) {
	s.mu.Lock()
	s.maxBytes = n
	s.mu.Unlock()
}

// entryPath names the entry file for a (plan, data file) pair.
func (s *Store) entryPath(plan, file string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x-%016x%s", hash64(plan), hash64(file), EntryExt))
}

// Lookup returns the cached entry for (plan, file), or nil on a miss.
// A corrupt or mismatched entry is removed and counted as a fallback;
// a hit refreshes the entry's mtime so eviction stays LRU.
func (s *Store) Lookup(plan, file string) *Entry {
	abs, err := filepath.Abs(file)
	if err != nil {
		return nil
	}
	p := s.entryPath(plan, abs)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil // not cached (or unreadable — treat the same)
	}
	e, err := DecodeEntry(data)
	if err != nil || e.Plan != plan || e.File != abs {
		// Corrupt, version-skewed, or a filename-hash collision: drop it
		// so the slot can be rebuilt, and fall back to a full scan.
		TelFallback.Inc()
		os.Remove(p)
		s.forget(int64(len(data)))
		return nil
	}
	now := time.Now()
	os.Chtimes(p, now, now)
	return e
}

// Put stores an entry, replacing any prior state for its key, and
// evicts least-recently-used entries if the store exceeds its bound.
func (s *Store) Put(e *Entry) error {
	abs, err := filepath.Abs(e.File)
	if err != nil {
		return err
	}
	if abs != e.File {
		clone := *e
		clone.File = abs
		e = &clone
	}
	data := e.Encode()
	p := s.entryPath(e.Plan, e.File)
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	var prev int64
	if st, err := os.Stat(p); err == nil {
		prev = st.Size()
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	TelStores.Inc()
	s.account(int64(len(data)), prev)
	return nil
}

// forget subtracts a removed entry from the running totals.
func (s *Store) forget(bytes int64) {
	s.mu.Lock()
	if s.size >= 0 {
		s.size -= bytes
		s.count--
		if s.size < 0 {
			s.size = 0
		}
		if s.count < 0 {
			s.count = 0
		}
		s.publishLocked()
	}
	s.mu.Unlock()
}

// account records a stored entry (replacing prev bytes if overwritten)
// and evicts if over budget. The first call scans the directory so the
// totals include entries left by earlier processes.
func (s *Store) account(bytes, prev int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size < 0 {
		s.rescanLocked()
		// rescan already saw the new entry
	} else {
		s.size += bytes - prev
		if prev == 0 {
			s.count++
		}
	}
	if s.size > s.maxBytes {
		s.evictLocked()
	}
	s.publishLocked()
}

func (s *Store) publishLocked() {
	gStoreBytes.Set(s.size)
	gStoreEntries.Set(s.count)
}

// rescanLocked recomputes size/count from the directory.
func (s *Store) rescanLocked() {
	s.size, s.count = 0, 0
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		if filepath.Ext(de.Name()) != EntryExt {
			continue
		}
		if info, err := de.Info(); err == nil {
			s.size += info.Size()
			s.count++
		}
	}
}

// evictLocked removes oldest-mtime entries until the store fits.
func (s *Store) evictLocked() {
	type cand struct {
		path  string
		size  int64
		mtime time.Time
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var cands []cand
	for _, de := range ents {
		if filepath.Ext(de.Name()) != EntryExt {
			continue
		}
		if info, err := de.Info(); err == nil {
			cands = append(cands, cand{filepath.Join(s.dir, de.Name()), info.Size(), info.ModTime()})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mtime.Before(cands[j].mtime) })
	for _, c := range cands {
		if s.size <= s.maxBytes {
			break
		}
		if os.Remove(c.path) == nil {
			s.size -= c.size
			s.count--
			TelEvictions.Inc()
		}
	}
	if s.size < 0 {
		s.size = 0
	}
	if s.count < 0 {
		s.count = 0
	}
}

// GC evicts down to the size bound (without waiting for a Put) and
// returns how many entries were removed and how many bytes were freed.
func (s *Store) GC() (removed int, freed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rescanLocked()
	before, beforeN := s.size, s.count
	if s.size > s.maxBytes {
		s.evictLocked()
	}
	s.publishLocked()
	return int(beforeN - s.count), before - s.size
}

// EntryInfo describes one stored entry for inspection tooling.
type EntryInfo struct {
	Path  string // entry file path
	Size  int64  // entry file size in bytes
	Mtime time.Time
	Entry *Entry // nil when Err != nil
	Err   error  // decode failure, if any
}

// Entries decodes every entry file in the store, newest first. Decode
// failures are reported per entry rather than aborting the walk.
func (s *Store) Entries() ([]EntryInfo, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []EntryInfo
	for _, de := range ents {
		if filepath.Ext(de.Name()) != EntryExt {
			continue
		}
		p := filepath.Join(s.dir, de.Name())
		info := EntryInfo{Path: p}
		if st, err := de.Info(); err == nil {
			info.Size = st.Size()
			info.Mtime = st.ModTime()
		}
		data, err := os.ReadFile(p)
		if err != nil {
			info.Err = err
		} else if e, err := DecodeEntry(data); err != nil {
			info.Err = err
		} else {
			info.Entry = e
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mtime.After(out[j].Mtime) })
	return out, nil
}

// Verify checks every entry's checksum and removes the broken ones.
// It returns total and removed entry counts.
func (s *Store) Verify() (total, removed int, err error) {
	infos, err := s.Entries()
	if err != nil {
		return 0, 0, err
	}
	for _, info := range infos {
		total++
		if info.Err != nil {
			if os.Remove(info.Path) == nil {
				removed++
			}
		}
	}
	s.mu.Lock()
	s.rescanLocked()
	s.publishLocked()
	s.mu.Unlock()
	return total, removed, nil
}
