// Package qcache is a versioned on-disk cache of per-file partial
// aggregate state. The paper's merge-tree decomposition (Section IV-C)
// makes the expensive part of a query — scanning and aggregating one
// .cali file — a pure function of (file contents, query shape), so the
// per-file aggregation database state can be memoized: a later run of
// the same query shape merges the cached state instead of re-decoding
// the file.
//
// An entry is keyed by a canonical query fingerprint (the normalized
// plan: LET / WHERE / GROUP BY / aggregate operators — ORDER BY, LIMIT,
// SELECT, post-aggregation operators, and FORMAT are excluded because
// they run after the merge) plus the file's identity (byte watermark +
// the CALIDX1-style quick head/tail hash over that prefix). Because the
// identity hashes a *prefix*, an appended file — the common case for
// live capture rings and long-running jobs — keeps its entry usable:
// the scanner seeks to the watermark, aggregates only the tail, merges
// with the cached state, and re-stores (append-aware incremental scan,
// see internal/query).
//
// Entries carry a trailing FNV-1a self-checksum; any corruption,
// truncation, version skew, or fingerprint collision decodes to an
// error and the caller falls back to a full scan. The cached state blob
// is core.DB.EncodeState output: registry-independent and mergeable
// into any database with an equal scheme.
package qcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"caligo/internal/calql"
	"caligo/internal/telemetry"
)

// Self-instrumentation (docs/OBSERVABILITY.md). The hit/miss/incremental
// classification counters are bumped by the scan planner (internal/query);
// the store-health counters and gauges are bumped here.
var (
	TelHits         = telemetry.NewCounter("caligo.qcache.hits")
	TelMisses       = telemetry.NewCounter("caligo.qcache.misses")
	TelIncremental  = telemetry.NewCounter("caligo.qcache.incremental")
	TelBytesSkipped = telemetry.NewCounter("caligo.qcache.bytes_skipped")
	TelStores       = telemetry.NewCounter("caligo.qcache.stores")
	TelFallback     = telemetry.NewCounter("caligo.qcache.fallback")
	TelEvictions    = telemetry.NewCounter("caligo.qcache.evictions")
	gStoreBytes     = telemetry.NewGauge("caligo.qcache.store.bytes")
	gStoreEntries   = telemetry.NewGauge("caligo.qcache.store.entries")
)

// Entry-file binary format: magic, uvarint fields, the state blob, and a
// trailing FNV-1a self-checksum (the index.go idiom).
const (
	entryMagic   = "CALQC1\n"
	entryVersion = 1

	// EntryExt is the cache entry file extension.
	EntryExt = ".qce"
)

// Decode failure classes (all of them mean "fall back to a full scan").
var (
	ErrCorrupt = errors.New("qcache: entry corrupt")
	ErrVersion = errors.New("qcache: entry version mismatch")
)

// Span is a half-open byte range [Off, Off+Len) of the data file.
type Span struct {
	Off, Len int64
}

// Entry is one cached per-file aggregate state.
type Entry struct {
	// Plan is the canonical query fingerprint text (CanonicalPlan). It is
	// stored in full and compared on load, so fingerprint-hash collisions
	// in the entry file name cannot serve wrong state.
	Plan string
	// File is the absolute path of the data file the state was computed
	// from.
	File string
	// Watermark is the number of leading bytes of the file the state
	// covers (the file's size when the entry was stored).
	Watermark int64
	// PrefixHash is calformat.QuickHashPrefix over [0, Watermark).
	PrefixHash uint64
	// Records is the number of records decoded to produce the state
	// (informational; zone-pruned scans decode fewer than the file holds).
	Records uint64
	// MetaSpans lists the byte ranges within [0, Watermark) that contain
	// metadata lines (attr/node/globals definitions). An incremental tail
	// scan must replay these — later records reference their definitions —
	// and may seek over everything else.
	MetaSpans []Span
	// State is the core.DB.EncodeState blob of the per-file aggregation.
	State []byte
}

// Encode renders the entry in its binary on-disk form.
func (e *Entry) Encode() []byte {
	b := make([]byte, 0, 96+len(e.Plan)+len(e.File)+16*len(e.MetaSpans)+len(e.State))
	b = append(b, entryMagic...)
	b = binary.AppendUvarint(b, entryVersion)
	b = appendString(b, e.Plan)
	b = appendString(b, e.File)
	b = binary.AppendUvarint(b, uint64(e.Watermark))
	b = binary.LittleEndian.AppendUint64(b, e.PrefixHash)
	b = binary.AppendUvarint(b, e.Records)
	b = binary.AppendUvarint(b, uint64(len(e.MetaSpans)))
	for _, s := range e.MetaSpans {
		b = binary.AppendUvarint(b, uint64(s.Off))
		b = binary.AppendUvarint(b, uint64(s.Len))
	}
	b = binary.AppendUvarint(b, uint64(len(e.State)))
	b = append(b, e.State...)
	h := fnv.New64a()
	h.Write(b)
	return binary.LittleEndian.AppendUint64(b, h.Sum64())
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// cursor is a sticky-error decode position over an entry buffer.
type cursor struct {
	buf []byte
	pos int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.pos:])
	if n <= 0 {
		c.fail("truncated uvarint at offset %d", c.pos)
		return 0
	}
	c.pos += n
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.pos+8 > len(c.buf) {
		c.fail("truncated u64 at offset %d", c.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.buf[c.pos:])
	c.pos += 8
	return v
}

func (c *cursor) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.buf)-c.pos) {
		c.fail("truncated string (%d bytes) at offset %d", n, c.pos)
		return ""
	}
	s := string(c.buf[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s
}

func (c *cursor) bytes() []byte {
	n := c.uvarint()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf)-c.pos) {
		c.fail("truncated blob (%d bytes) at offset %d", n, c.pos)
		return nil
	}
	b := c.buf[c.pos : c.pos+int(n) : c.pos+int(n)]
	c.pos += int(n)
	return b
}

// DecodeEntry parses an entry file body, verifying the magic, version,
// and trailing checksum.
func DecodeEntry(data []byte) (*Entry, error) {
	if len(data) < len(entryMagic)+8 || string(data[:len(entryMagic)]) != entryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	c := &cursor{buf: body, pos: len(entryMagic)}
	if v := c.uvarint(); c.err == nil && v != entryVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrVersion, v, entryVersion)
	}
	e := &Entry{}
	e.Plan = c.str()
	e.File = c.str()
	e.Watermark = int64(c.uvarint())
	e.PrefixHash = c.u64()
	e.Records = c.uvarint()
	nSpans := c.uvarint()
	if c.err == nil && nSpans > uint64(len(body)) {
		return nil, fmt.Errorf("%w: implausible span count %d", ErrCorrupt, nSpans)
	}
	for i := uint64(0); i < nSpans && c.err == nil; i++ {
		e.MetaSpans = append(e.MetaSpans, Span{
			Off: int64(c.uvarint()),
			Len: int64(c.uvarint()),
		})
	}
	e.State = c.bytes()
	if c.err != nil {
		return nil, c.err
	}
	if c.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-c.pos)
	}
	return e, nil
}

// CanonicalPlan renders the cache fingerprint of a query: the parts of
// the plan that shape per-file aggregate state. LET definitions,
// GROUP BY keys, and aggregate operators keep their order (they shape
// the scheme and the state layout); WHERE conditions are sorted (AND is
// commutative); SELECT, post-aggregation operators, ORDER BY, LIMIT,
// and FORMAT are excluded — they run after the per-file merge and
// cannot change the state.
func CanonicalPlan(q *calql.Query) string {
	var sb strings.Builder
	sb.WriteString("caligo-plan-v1")
	sb.WriteString("|let:")
	for _, l := range q.Lets {
		sb.WriteString(strconv.Quote(l.String()))
	}
	conds := make([]string, len(q.Where))
	for i, c := range q.Where {
		conds[i] = c.String()
	}
	sort.Strings(conds)
	sb.WriteString("|where:")
	for _, c := range conds {
		sb.WriteString(strconv.Quote(c))
	}
	sb.WriteString("|groupby:")
	for _, k := range q.GroupBy {
		sb.WriteString(strconv.Quote(k))
	}
	sb.WriteString("|ops:")
	for _, o := range q.Ops {
		sb.WriteString(strconv.Quote(o.String()))
	}
	return sb.String()
}

// hash64 is the FNV-1a name hash used for entry addressing.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
