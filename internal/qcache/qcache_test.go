package qcache

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
	"time"

	"caligo/internal/calql"
	"caligo/internal/telemetry"
)

func sampleEntry() *Entry {
	return &Entry{
		Plan:       "caligo-plan-v1|let:|where:|groupby:\"kernel\"|ops:\"count\"",
		File:       "/data/rank00.cali",
		Watermark:  123456,
		PrefixHash: 0xdeadbeefcafe,
		Records:    789,
		MetaSpans:  []Span{{0, 512}, {4096, 128}},
		State:      []byte{1, 2, 3, 4, 5},
	}
}

func entriesEqual(a, b *Entry) bool {
	if a.Plan != b.Plan || a.File != b.File || a.Watermark != b.Watermark ||
		a.PrefixHash != b.PrefixHash || a.Records != b.Records ||
		len(a.MetaSpans) != len(b.MetaSpans) || string(a.State) != string(b.State) {
		return false
	}
	for i := range a.MetaSpans {
		if a.MetaSpans[i] != b.MetaSpans[i] {
			return false
		}
	}
	return true
}

func TestEntryRoundTrip(t *testing.T) {
	for name, e := range map[string]*Entry{
		"full":  sampleEntry(),
		"empty": {Plan: "p", File: "/f", Watermark: 1},
		"no-spans": {Plan: "plan", File: "/file", Watermark: 10,
			PrefixHash: 7, Records: 3, State: []byte("statestate")},
	} {
		got, err := DecodeEntry(e.Encode())
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if !entriesEqual(got, e) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, e)
		}
	}
}

// reseal recomputes the trailing checksum over body and appends it —
// for crafting entries that pass the checksum but fail later checks.
func reseal(body []byte) []byte {
	h := fnv.New64a()
	h.Write(body)
	return binary.LittleEndian.AppendUint64(body, h.Sum64())
}

func TestEntryDecodeCorrupt(t *testing.T) {
	valid := sampleEntry().Encode()

	// every single-byte flip must be rejected (the checksum covers the
	// whole body, and flipping checksum bytes breaks the comparison)
	for i := 0; i < len(valid); i += 7 {
		bad := append([]byte{}, valid...)
		bad[i] ^= 0xFF
		if _, err := DecodeEntry(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// truncations
	for _, n := range []int{0, 3, len(entryMagic), len(valid) / 2, len(valid) - 1} {
		if _, err := DecodeEntry(valid[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncate to %d: err = %v, want ErrCorrupt", n, err)
		}
	}
	// resealed body with trailing garbage: checksum passes, length check trips
	body := append([]byte{}, valid[:len(valid)-8]...)
	body = append(body, 0, 0, 0)
	if _, err := DecodeEntry(reseal(body)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
}

func TestEntryDecodeVersion(t *testing.T) {
	body := append([]byte{}, entryMagic...)
	body = binary.AppendUvarint(body, 99)
	if _, err := DecodeEntry(reseal(body)); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func mustParse(t *testing.T, s string) *calql.Query {
	t.Helper()
	q, err := calql.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return q
}

func TestCanonicalPlan(t *testing.T) {
	base := CanonicalPlan(mustParse(t,
		"AGGREGATE count, sum(time.duration) WHERE mpi.rank < 4 WHERE kernel = advec GROUP BY kernel"))

	// WHERE order is commutative: swapped conditions fingerprint the same
	swapped := CanonicalPlan(mustParse(t,
		"AGGREGATE count, sum(time.duration) WHERE kernel = advec WHERE mpi.rank < 4 GROUP BY kernel"))
	if swapped != base {
		t.Errorf("WHERE order changed the fingerprint:\n%s\n%s", base, swapped)
	}

	// post-merge clauses (SELECT / ORDER BY / LIMIT / FORMAT) are excluded
	decorated := CanonicalPlan(mustParse(t,
		"SELECT kernel, aggregate.count AS n AGGREGATE count, sum(time.duration) "+
			"WHERE mpi.rank < 4 WHERE kernel = advec GROUP BY kernel "+
			"ORDER BY kernel DESC LIMIT 3 FORMAT json"))
	if decorated != base {
		t.Errorf("post-merge clauses changed the fingerprint:\n%s\n%s", base, decorated)
	}

	// anything that shapes per-file state must change the fingerprint
	for _, qs := range []string{
		"AGGREGATE count, sum(time.duration) WHERE mpi.rank < 4 WHERE kernel = advec GROUP BY mpi.rank",
		"AGGREGATE count WHERE mpi.rank < 4 WHERE kernel = advec GROUP BY kernel",
		"AGGREGATE count, sum(time.duration) WHERE mpi.rank < 5 WHERE kernel = advec GROUP BY kernel",
		"LET ms = scale(time.duration, 0.001) AGGREGATE count, sum(time.duration) WHERE mpi.rank < 4 WHERE kernel = advec GROUP BY kernel",
	} {
		if got := CanonicalPlan(mustParse(t, qs)); got == base {
			t.Errorf("distinct query %q collided with base fingerprint", qs)
		}
	}

	// aggregate op ORDER is preserved (it shapes the state layout)
	a := CanonicalPlan(mustParse(t, "AGGREGATE count, sum(time.duration) GROUP BY kernel"))
	b := CanonicalPlan(mustParse(t, "AGGREGATE sum(time.duration), count GROUP BY kernel"))
	if a == b {
		t.Error("aggregate op order should change the fingerprint")
	}
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutLookup(t *testing.T) {
	s := openTestStore(t)
	e := sampleEntry()
	if got := s.Lookup(e.Plan, e.File); got != nil {
		t.Fatalf("lookup before put = %+v, want nil", got)
	}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got := s.Lookup(e.Plan, e.File)
	if got == nil {
		t.Fatal("lookup after put = nil")
	}
	if !entriesEqual(got, e) {
		t.Errorf("lookup = %+v, want %+v", got, e)
	}
	// a different plan is a different slot
	if got := s.Lookup(e.Plan+"x", e.File); got != nil {
		t.Errorf("lookup with different plan = %+v, want nil", got)
	}
	// overwrite replaces the state
	e2 := *e
	e2.Watermark = 999
	e2.State = []byte("new state")
	if err := s.Put(&e2); err != nil {
		t.Fatal(err)
	}
	if got := s.Lookup(e.Plan, e.File); got == nil || got.Watermark != 999 {
		t.Errorf("overwritten entry = %+v, want watermark 999", got)
	}
}

func TestStoreLookupCorruptEntry(t *testing.T) {
	s := openTestStore(t)
	e := sampleEntry()
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	p := s.entryPath(e.Plan, e.File)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	fallbacks := TelFallback.Value()
	if got := s.Lookup(e.Plan, e.File); got != nil {
		t.Fatalf("corrupt entry served: %+v", got)
	}
	if TelFallback.Value() != fallbacks+1 {
		t.Errorf("fallback counter = %d, want %d", TelFallback.Value(), fallbacks+1)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("corrupt entry not removed from disk")
	}
}

// putSized stores an entry with a state blob of roughly n bytes under a
// distinct file key, backdated so eviction order is deterministic.
func putSized(t *testing.T, s *Store, file string, n int, mtime time.Time) {
	t.Helper()
	e := &Entry{Plan: "p", File: file, Watermark: 1, State: make([]byte, n)}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	p := s.entryPath("p", file)
	if err := os.Chtimes(p, mtime, mtime); err != nil {
		t.Fatal(err)
	}
}

func TestStoreEvictionLRU(t *testing.T) {
	s := openTestStore(t)
	now := time.Now()
	putSized(t, s, "/data/a.cali", 4096, now.Add(-3*time.Hour))
	putSized(t, s, "/data/b.cali", 4096, now.Add(-2*time.Hour))
	putSized(t, s, "/data/c.cali", 4096, now.Add(-1*time.Hour))

	// bound fits roughly two entries: the next Put must evict oldest-first
	s.SetMaxBytes(10000)
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	evictions := TelEvictions.Value()
	putSized(t, s, "/data/d.cali", 4096, now)

	if s.Lookup("p", "/data/a.cali") != nil {
		t.Error("oldest entry (a) survived eviction")
	}
	if s.Lookup("p", "/data/d.cali") == nil {
		t.Error("newest entry (d) was evicted")
	}
	if TelEvictions.Value() <= evictions {
		t.Error("eviction counter did not move")
	}
}

func TestStoreGC(t *testing.T) {
	s := openTestStore(t)
	now := time.Now()
	for i, f := range []string{"/a", "/b", "/c", "/d"} {
		putSized(t, s, f, 2048, now.Add(time.Duration(i-4)*time.Hour))
	}
	// within bound: GC is a no-op
	removed, freed := s.GC()
	if removed != 0 || freed != 0 {
		t.Errorf("GC under bound removed %d entries, %d bytes", removed, freed)
	}
	// shrink the bound: GC must evict oldest entries down to it
	s.SetMaxBytes(5000)
	removed, freed = s.GC()
	if removed != 2 {
		t.Errorf("GC removed %d entries, want 2", removed)
	}
	if freed <= 0 {
		t.Errorf("GC freed %d bytes", freed)
	}
	if s.Lookup("p", "/a") != nil || s.Lookup("p", "/b") != nil {
		t.Error("GC kept the oldest entries")
	}
	if s.Lookup("p", "/d") == nil {
		t.Error("GC evicted the newest entry")
	}
}

func TestStoreVerify(t *testing.T) {
	s := openTestStore(t)
	if err := s.Put(sampleEntry()); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(s.Dir(), "0000000000000000-0000000000000000"+EntryExt)
	if err := os.WriteFile(junk, []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	total, removed, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || removed != 1 {
		t.Errorf("Verify = (%d, %d), want (2, 1)", total, removed)
	}
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Error("junk entry not removed")
	}
	infos, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Entry == nil {
		t.Errorf("after Verify: %d entries", len(infos))
	}
}

func TestSharedReturnsSameStore(t *testing.T) {
	dir := t.TempDir()
	a, err := Shared(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shared(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Shared returned distinct stores for one directory")
	}
}
