package paradis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/query"
)

func TestDefaultShapeMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.RecordsPerFile(); got != 2174 {
		t.Errorf("RecordsPerFile = %d, want 2174 (paper)", got)
	}
	if got := cfg.Groups(); got != 85 {
		t.Errorf("Groups = %d, want 85 (paper)", got)
	}
}

func TestWriteRankRecordCount(t *testing.T) {
	cfg := DefaultConfig()
	var buf bytes.Buffer
	if err := WriteRank(&buf, 3, cfg); err != nil {
		t.Fatal(err)
	}
	rd := calformat.NewReader(&buf, attr.NewRegistry(), contexttree.New())
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cfg.RecordsPerFile() {
		t.Errorf("records = %d, want %d", len(recs), cfg.RecordsPerFile())
	}
	// all non-init records carry rank, count, duration
	for _, r := range recs {
		if v, ok := r.GetByName("mpi.rank"); !ok || v.AsInt() != 3 {
			t.Fatalf("record lacks mpi.rank=3: %s", r)
		}
		if _, ok := r.GetByName("aggregate.count"); !ok {
			t.Fatalf("record lacks count: %s", r)
		}
		if _, ok := r.GetByName("sum#time.duration"); !ok {
			t.Fatalf("record lacks duration: %s", r)
		}
	}
}

func TestEvaluationQueryProduces85Rows(t *testing.T) {
	cfg := DefaultConfig()
	var buf bytes.Buffer
	if err := WriteRank(&buf, 0, cfg); err != nil {
		t.Fatal(err)
	}
	reg := attr.NewRegistry()
	tree := contexttree.New()
	recs, err := calformat.NewReader(&buf, reg, tree).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	q := calql.MustParse(EvaluationQuery)
	rows, err := query.Run(q, reg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 85 {
		t.Errorf("evaluation query rows = %d, want 85 (paper)", len(rows))
	}
}

func TestDeterministicPerRank(t *testing.T) {
	cfg := Config{Kernels: 5, MPIFunctions: 3, Iterations: 2, ExtraRecords: 1}
	var a, b bytes.Buffer
	WriteRank(&a, 7, cfg)
	WriteRank(&b, 7, cfg)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same rank must generate identical bytes")
	}
	var c bytes.Buffer
	WriteRank(&c, 8, cfg)
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different ranks must differ")
	}
}

func TestGenerateDir(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Kernels: 4, MPIFunctions: 2, Iterations: 3, ExtraRecords: 0}
	paths, err := GenerateDir(filepath.Join(dir, "ds"), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := calformat.NewReader(f, attr.NewRegistry(), contexttree.New()).ReadAll()
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != cfg.RecordsPerFile() {
			t.Errorf("%s: %d records, want %d", p, len(recs), cfg.RecordsPerFile())
		}
	}
	if _, err := GenerateDir(dir, 0, cfg); err == nil {
		t.Error("ranks=0 should error")
	}
}

func TestInvalidConfig(t *testing.T) {
	bad := []Config{
		{Kernels: 0, MPIFunctions: 1, Iterations: 1},
		{Kernels: 1, MPIFunctions: 0, Iterations: 1},
		{Kernels: 1, MPIFunctions: 1, Iterations: 0},
		{Kernels: 1, MPIFunctions: 1, Iterations: 1, ExtraRecords: -1},
	}
	for _, c := range bad {
		var buf bytes.Buffer
		if err := WriteRank(&buf, 0, c); err == nil {
			t.Errorf("WriteRank(%+v) should fail", c)
		}
	}
}

func TestNameGenerators(t *testing.T) {
	if KernelName(0) != "force-calc" {
		t.Errorf("KernelName(0) = %q", KernelName(0))
	}
	if KernelName(99) != "subroutine-99" {
		t.Errorf("KernelName(99) = %q", KernelName(99))
	}
	if MPIName(0) != "MPI_Allreduce" {
		t.Errorf("MPIName(0) = %q", MPIName(0))
	}
	if MPIName(80) != "MPI_X80" {
		t.Errorf("MPIName(80) = %q", MPIName(80))
	}
	// uniqueness within default config range
	cfg := DefaultConfig()
	seen := map[string]bool{}
	for i := 0; i < cfg.Kernels; i++ {
		n := KernelName(i)
		if seen[n] {
			t.Errorf("duplicate kernel name %q", n)
		}
		seen[n] = true
	}
	for i := 0; i < cfg.MPIFunctions; i++ {
		n := MPIName(i)
		if seen[n] {
			t.Errorf("duplicate MPI name %q", n)
		}
		seen[n] = true
	}
}
