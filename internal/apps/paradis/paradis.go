// Package paradis generates synthetic per-process datasets shaped like
// the ParaDiS dislocation-dynamics profile the paper uses for its
// scalability study (Section V-C): a per-process time-series profile over
// computational kernels, MPI functions, the MPI rank, and main-loop
// iterations, with visit count and aggregate runtime for each unique
// region. With the default configuration each file holds exactly 2174
// snapshot records, and the paper's evaluation query
//
//	AGGREGATE sum(sum#time.duration), sum(aggregate.count)
//	GROUP BY kernel, mpi.function
//
// produces exactly 85 output records — the published numbers.
//
// The real 4096-rank ParaDiS dataset is not available; Figure 4 measures
// the query tool, not ParaDiS, so any dataset with the published record
// counts exercises the same code path (see DESIGN.md, substitutions).
package paradis

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

// Config shapes the generated dataset.
type Config struct {
	// Kernels is the number of distinct computational-kernel regions.
	Kernels int
	// MPIFunctions is the number of distinct MPI function regions.
	MPIFunctions int
	// Iterations is the number of main-loop iterations in the time series.
	Iterations int
	// ExtraRecords pads the file with initialization-phase records.
	ExtraRecords int
}

// DefaultConfig reproduces the paper's dataset shape: 2174 records per
// file (60+25 regions × 25 iterations + 49 init records) and 85 unique
// (kernel, mpi.function) groups.
func DefaultConfig() Config {
	return Config{Kernels: 60, MPIFunctions: 25, Iterations: 25, ExtraRecords: 49}
}

// RecordsPerFile returns the number of snapshot records one file holds.
func (c Config) RecordsPerFile() int {
	return (c.Kernels+c.MPIFunctions)*c.Iterations + c.ExtraRecords
}

// Groups returns the number of unique output records the paper's
// evaluation query produces over this dataset.
func (c Config) Groups() int { return c.Kernels + c.MPIFunctions }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Kernels <= 0 || c.MPIFunctions <= 0 || c.Iterations <= 0 || c.ExtraRecords < 0 {
		return fmt.Errorf("paradis: all counts must be positive (extra >= 0): %+v", c)
	}
	return nil
}

// kernelBaseNames seeds plausible ParaDiS region names; further kernels
// are numbered subroutines.
var kernelBaseNames = []string{
	"force-calc", "seg-seg-force", "mobility", "integrate", "collision",
	"remesh", "topology", "cell-charge", "migration", "cross-slip",
	"decomposition", "node-force", "osmotic-force", "remote-force",
}

// mpiBaseNames seeds the MPI function list.
var mpiBaseNames = []string{
	"MPI_Allreduce", "MPI_Sendrecv", "MPI_Barrier", "MPI_Waitall",
	"MPI_Isend", "MPI_Irecv", "MPI_Allgather", "MPI_Bcast", "MPI_Reduce",
	"MPI_Scatter", "MPI_Gather", "MPI_Alltoall", "MPI_Send", "MPI_Recv",
	"MPI_Wait", "MPI_Test", "MPI_Iprobe", "MPI_Allgatherv", "MPI_Gatherv",
	"MPI_Scatterv", "MPI_Reduce_scatter", "MPI_Scan", "MPI_Exscan",
	"MPI_Ibarrier", "MPI_Comm_split",
}

// KernelName returns the i-th kernel region name.
func KernelName(i int) string {
	if i < len(kernelBaseNames) {
		return kernelBaseNames[i]
	}
	return fmt.Sprintf("subroutine-%02d", i)
}

// MPIName returns the i-th MPI function name.
func MPIName(i int) string {
	if i < len(mpiBaseNames) {
		return mpiBaseNames[i]
	}
	return fmt.Sprintf("MPI_X%02d", i)
}

// hash64 is a small deterministic mixer for synthetic values.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// recordWriter is the writer subset the generator needs; calformat.Writer
// and calformat.IndexingWriter both satisfy it.
type recordWriter interface {
	WriteRecord(rec snapshot.Record) error
}

// dataset holds the registry, context tree, and attribute handles shared
// by the records of one output stream (one file, or all ranks of a merged
// file).
type dataset struct {
	reg  *attr.Registry
	tree *contexttree.Tree

	kernel, mpifn, rankA, iterA, phase, count, dur attr.Attribute
}

func newDataset() *dataset {
	reg := attr.NewRegistry()
	return &dataset{
		reg:    reg,
		tree:   contexttree.New(),
		kernel: reg.MustCreate("kernel", attr.String, attr.Nested),
		mpifn:  reg.MustCreate("mpi.function", attr.String, attr.Nested),
		rankA:  reg.MustCreate("mpi.rank", attr.Int, 0),
		iterA:  reg.MustCreate("iteration", attr.Int, 0),
		phase:  reg.MustCreate("phase", attr.String, attr.Nested),
		count: reg.MustCreate("aggregate.count", attr.Uint,
			attr.AsValue|attr.Aggregatable|attr.SkipEvents),
		dur: reg.MustCreate("sum#time.duration", attr.Int,
			attr.AsValue|attr.Aggregatable|attr.SkipEvents),
	}
}

// WriteRank writes one rank's dataset as a .cali stream.
func WriteRank(w io.Writer, rank int, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	d := newDataset()
	cw := calformat.NewWriter(w, d.reg, d.tree)
	if err := d.writeRank(cw, rank, cfg); err != nil {
		return err
	}
	return cw.Flush()
}

// writeRank emits one rank's records through cw.
func (d *dataset) writeRank(cw recordWriter, rank int, cfg Config) error {
	kernel, mpifn, rankA, iterA := d.kernel, d.mpifn, d.rankA, d.iterA
	phase, count, dur := d.phase, d.count, d.dur
	tree := d.tree
	rankNode := tree.GetChild(contexttree.InvalidNode, rankA, attr.IntV(int64(rank)))

	// initialization-phase records
	initNode := tree.GetChild(rankNode, phase, attr.StringV("init"))
	for i := 0; i < cfg.ExtraRecords; i++ {
		var b snapshot.Builder
		b.AddNode(initNode)
		b.AddImmediate(count, attr.UintV(1))
		b.AddImmediate(dur, attr.IntV(int64(1000+hash64(uint64(rank*7919+i))%5000)))
		if err := cw.WriteRecord(b.Record()); err != nil {
			return err
		}
	}

	// time-series profile: one record per region per iteration
	for it := 0; it < cfg.Iterations; it++ {
		iterNode := tree.GetChild(rankNode, iterA, attr.IntV(int64(it)))
		emit := func(regionNode contexttree.NodeID, seed uint64, scale int64) error {
			var b snapshot.Builder
			b.AddNode(regionNode)
			h := hash64(seed)
			b.AddImmediate(count, attr.UintV(1+h%40))
			b.AddImmediate(dur, attr.IntV(scale+int64(h%uint64(scale))))
			return cw.WriteRecord(b.Record())
		}
		for k := 0; k < cfg.Kernels; k++ {
			node := tree.GetChild(iterNode, kernel, attr.StringV(KernelName(k)))
			// earlier-numbered kernels are hotter
			scale := int64(50000 / (k + 1))
			if err := emit(node, uint64(rank)<<32|uint64(it*1000+k), scale); err != nil {
				return err
			}
		}
		for m := 0; m < cfg.MPIFunctions; m++ {
			node := tree.GetChild(iterNode, mpifn, attr.StringV(MPIName(m)))
			scale := int64(20000 / (m + 1))
			if err := emit(node, uint64(rank)<<32|uint64(it*1000+500+m), scale); err != nil {
				return err
			}
		}
	}
	return nil
}

// GenerateDir writes per-rank dataset files rank-<n>.cali into dir and
// returns their paths in rank order.
func GenerateDir(dir string, ranks int, cfg Config) ([]string, error) {
	return generateDir(dir, ranks, cfg, false, calformat.IndexOptions{})
}

// GenerateDirIndexed is GenerateDir writing a sidecar block index
// (<file>.cali.idx) next to every dataset file.
func GenerateDirIndexed(dir string, ranks int, cfg Config, opt calformat.IndexOptions) ([]string, error) {
	return generateDir(dir, ranks, cfg, true, opt)
}

func generateDir(dir string, ranks int, cfg Config, buildIndex bool, opt calformat.IndexOptions) ([]string, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("paradis: ranks must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, ranks)
	for r := 0; r < ranks; r++ {
		p := filepath.Join(dir, fmt.Sprintf("rank-%04d.cali", r))
		if err := writeRankFile(p, r, cfg, buildIndex, opt); err != nil {
			return nil, err
		}
		paths[r] = p
	}
	return paths, nil
}

func writeRankFile(path string, rank int, cfg Config, buildIndex bool, opt calformat.IndexOptions) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if !buildIndex {
		if err := WriteRank(f, rank, cfg); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	d := newDataset()
	iw := calformat.NewIndexingWriter(f, d.reg, d.tree, opt)
	if err := d.writeRank(iw, rank, cfg); err != nil {
		f.Close()
		return err
	}
	idx, err := iw.Finish()
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return calformat.WriteIndexFile(path, idx)
}

// WriteMerged writes all ranks into a single multi-block .cali file at
// path — the "one big file" shape that exercises intra-file parallel
// scans — with a sidecar block index when buildIndex is set. One registry
// and context tree span the whole stream, so definitions are shared
// across ranks exactly as a merged capture would share them.
func WriteMerged(path string, ranks int, cfg Config, buildIndex bool, opt calformat.IndexOptions) (int, error) {
	if ranks <= 0 {
		return 0, fmt.Errorf("paradis: ranks must be positive")
	}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	d := newDataset()
	var cw recordWriter
	var iw *calformat.IndexingWriter
	var pw *calformat.Writer
	if buildIndex {
		iw = calformat.NewIndexingWriter(f, d.reg, d.tree, opt)
		cw = iw
	} else {
		pw = calformat.NewWriter(f, d.reg, d.tree)
		cw = pw
	}
	for r := 0; r < ranks; r++ {
		if err := d.writeRank(cw, r, cfg); err != nil {
			f.Close()
			return 0, err
		}
	}
	var idx *calformat.Index
	if buildIndex {
		if idx, err = iw.Finish(); err != nil {
			f.Close()
			return 0, err
		}
	} else if err := pw.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if buildIndex {
		if err := calformat.WriteIndexFile(path, idx); err != nil {
			return 0, err
		}
	}
	return ranks * cfg.RecordsPerFile(), nil
}

// EvaluationQuery is the query the paper's scalability experiment runs:
// total CPU time in computational kernels and MPI functions across ranks.
const EvaluationQuery = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) " +
	"GROUP BY kernel, mpi.function WHERE not(phase)"
