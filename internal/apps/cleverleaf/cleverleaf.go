// Package cleverleaf is a proxy for the CleverLeaf structured-grid shock
// hydrodynamics mini-application with adaptive mesh refinement (AMR) that
// the paper uses for its overhead study (Section V-B) and case study
// (Section VI). The proxy executes real floating-point kernel work over
// patch-based AMR levels, exchanges halo messages and reductions over the
// emulated MPI layer, and carries the paper's seven instrumentation
// attributes: function, annotation, kernel, amr.level, iteration#mainloop,
// mpi.function, and mpi.rank.
//
// The workload reproduces the performance shapes of the paper's figures:
//
//   - calc-dt dominates the annotated kernels, and most execution time is
//     spent outside annotated kernels (Figure 5);
//   - MPI time is dominated by MPI_Barrier (imbalance-induced waiting),
//     followed by MPI_Allreduce (Figure 6);
//   - total computation shows mild cross-rank imbalance, less than half of
//     which originates in the top two kernels; advec-mom is nearly
//     balanced (Figure 7);
//   - the triple-point-like region of interest grows over time, so level-2
//     processing time rises markedly across timesteps, level 1 slightly,
//     and level 0 stays flat (Figure 8).
package cleverleaf

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"

	"caligo/caliper"
	"caligo/internal/attr"
	"caligo/internal/mpi"
	"caligo/internal/services/mpiwrap"
)

// Config parameterizes a simulation run.
type Config struct {
	// Ranks is the number of emulated MPI processes.
	Ranks int
	// Timesteps is the number of main-loop iterations.
	Timesteps int
	// Levels is the number of AMR levels (the paper's setup uses 3).
	Levels int
	// WorkScale multiplies all kernel work; 1.0 gives a run of a few
	// hundred milliseconds at the default sizes.
	WorkScale float64
	// ThreadsPerRank runs the per-level kernel sweeps on this many worker
	// goroutines per rank, each with its own measurement thread annotated
	// with a "thread.id" attribute — exercising the runtime's per-thread
	// aggregation databases (Section IV-B) under the real workload and
	// adding a thread dimension to the profiles. 0 or 1 disables
	// threading. Incompatible with VirtualTime (worker threads have no
	// communicator clock to follow).
	ThreadsPerRank int
	// VirtualTime switches the proxy to discrete-event mode: kernels
	// advance the emulated MPI virtual clock deterministically instead of
	// burning CPU, and the measurement channel should be configured with
	// "timer.source": "virtual". Time-attribution experiments (the
	// paper's Figures 6-9) use this mode: it decouples the workload's
	// timing structure from host core counts, exactly as the virtual
	// clock does for the cross-process reduction study. The overhead
	// study (Figure 3) must use real time.
	VirtualTime bool
}

// DefaultConfig returns a laptop-scale version of the paper's setup
// (the paper runs 36 ranks, 100 timesteps on a cluster node).
func DefaultConfig() Config {
	return Config{Ranks: 4, Timesteps: 50, Levels: 3, WorkScale: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Ranks <= 0 {
		return fmt.Errorf("cleverleaf: Ranks must be positive")
	}
	if c.Timesteps <= 0 {
		return fmt.Errorf("cleverleaf: Timesteps must be positive")
	}
	if c.Levels <= 0 || c.Levels > 8 {
		return fmt.Errorf("cleverleaf: Levels must be in 1..8")
	}
	if c.WorkScale <= 0 {
		return fmt.Errorf("cleverleaf: WorkScale must be positive")
	}
	if c.ThreadsPerRank < 0 {
		return fmt.Errorf("cleverleaf: ThreadsPerRank must be non-negative")
	}
	if c.ThreadsPerRank > 1 && c.VirtualTime {
		return fmt.Errorf("cleverleaf: ThreadsPerRank and VirtualTime are mutually exclusive")
	}
	return nil
}

// kernelCost lists the computational kernels with their per-patch cost
// weights. calc-dt dominates, as in the paper's Figure 5.
var kernelCost = []struct {
	name string
	cost float64
}{
	{"calc-dt", 3.0},
	{"advec-cell", 0.7},
	{"advec-mom", 0.7},
	{"pdv", 0.5},
	{"viscosity", 0.5},
	{"accelerate", 0.4},
	{"flux-calc", 0.4},
	{"ideal-gas", 0.3},
	{"reset", 0.2},
	{"update-halo", 0.1},
}

// infrastructureCost is unannotated per-level work (AMR clustering,
// regridding, SAMRAI bookkeeping): most samples land here, outside the
// annotated kernels (Figure 5's "everything else").
const infrastructureCost = 7.0

// workUnit is the busy-work iteration count for one cost unit at
// WorkScale 1.
const workUnit = 2000

// virtualNsPerUnit is the modeled duration of one cost unit in
// VirtualTime mode (50 µs, giving kernels of hundreds of microseconds at
// the default sizes, in the magnitude range of the paper's run).
const virtualNsPerUnit = 50_000

// sink defeats dead-code elimination of the busy work. It is only ever
// written for impossible accumulator values, so concurrent workers never
// actually touch it (keeping busyWork race-free).
var sink float64

// busyWork burns CPU proportional to units. It yields the processor every
// few microseconds: on hosts with fewer cores than ranks this gives the
// emulated processes fair fine-grained interleaving (instead of ~10 ms OS
// timeslices, which would swamp per-region time attribution with noise)
// and lets the sampling service observe in-kernel state.
func busyWork(units float64) {
	n := int(units * workUnit)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += math.Sqrt(float64(i&1023) + 1.5)
		if i&2047 == 2047 {
			runtime.Gosched()
		}
	}
	if acc > math.MaxFloat64/2 { // never true; keeps acc (and the loop) live
		sink = acc
	}
}

// skew returns a deterministic per-rank factor in [-1, 1].
func skew(rank int, phase float64) float64 {
	return math.Sin(float64(rank)*2.399 + phase)
}

// patchCount models the AMR patch distribution: the coarse level is
// constant; refined levels track the triple-point vortex region, which
// grows as the simulation progresses.
func patchCount(rank, level, step int) float64 {
	base := 8.0 / float64(uint(1)<<uint(level)) // 8, 4, 2, ...
	growth := 0.0
	switch {
	case level == 1:
		growth = 0.03
	case level >= 2:
		base = 1.0
		growth = 0.20
	}
	n := base + growth*float64(step)
	// mild overall imbalance from the domain decomposition
	n *= 1 + 0.05*skew(rank, 0)
	return n
}

// infraExtra returns per-rank exceptions in the AMR infrastructure work
// for specific levels — the anomalies the paper observes on ranks 8 and 7
// in Figure 9. They affect only unannotated clustering/regrid work, so
// the computational kernels stay balanced (Figure 7's advec-mom).
func infraExtra(rank, level int) float64 {
	if rank == 8 && level == 1 {
		return 2.2
	}
	if rank == 7 && level == 0 {
		return 0.4
	}
	return 1
}

// kernelImbalance returns the per-rank multiplier for one kernel:
// advec-mom is balanced; calc-dt carries extra imbalance; infrastructure
// work carries the rest (so the top-2 kernels explain less than half of
// the total imbalance, as in Figure 7).
func kernelImbalance(rank int, kernel string) float64 {
	switch kernel {
	case "advec-mom":
		return 1
	case "calc-dt":
		return 1 + 0.12*skew(rank, 1.3)
	case "": // infrastructure
		return 1 + 0.15*skew(rank, 2.1)
	default:
		return 1 + 0.03*skew(rank, 0.7)
	}
}

// annotator abstracts the instrumentation calls so the baseline
// configuration runs the identical code path with no annotation cost.
type annotator struct {
	th *caliper.Thread
}

func (a annotator) begin(name string, v any) {
	if a.th != nil {
		if err := a.th.Begin(name, v); err != nil {
			panic(err)
		}
	}
}

func (a annotator) end(name string) {
	if a.th != nil {
		if err := a.th.End(name); err != nil {
			panic(err)
		}
	}
}

func (a annotator) set(name string, v any) {
	if a.th != nil {
		if err := a.th.Set(name, v); err != nil {
			panic(err)
		}
	}
}

// sumCombine adds float64 payloads (the dt reduction).
func sumCombine(x, y []byte) ([]byte, error) {
	a := math.Float64frombits(binary.LittleEndian.Uint64(x))
	b := math.Float64frombits(binary.LittleEndian.Uint64(y))
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, math.Float64bits(a+b))
	return out, nil
}

// Run executes the simulation. newThread supplies the per-rank
// measurement thread (or nil for the uninstrumented baseline); it is
// called once per rank from that rank's goroutine. With ThreadsPerRank >
// 1, newThread is also called once per worker (from the worker's
// goroutine), so every thread of execution gets its own handle, as the
// runtime requires.
func Run(cfg Config, newThread func(rank int) *caliper.Thread) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	world, err := mpi.NewWorld(cfg.Ranks)
	if err != nil {
		return err
	}
	return world.Run(func(c *mpi.Comm) error {
		return runRank(cfg, c, newThread)
	})
}

// simCtx bundles one rank's simulation state.
type simCtx struct {
	cfg     Config
	comm    *mpiwrap.Comm
	an      annotator
	th      *caliper.Thread
	workers *workerPool
}

// workerPool runs kernel sweeps on per-rank worker goroutines, each with
// its own measurement thread (annotated with thread.id). Tasks are whole
// kernel sweeps; the pool owner blocks until all workers complete one.
type workerPool struct {
	tasks   []chan workerTask
	done    chan struct{}
	workers int
}

type workerTask struct {
	kernel string
	level  int
	units  float64
}

// newWorkerPool starts n workers. newThread supplies each worker's
// measurement thread (may return nil for uninstrumented runs).
func newWorkerPool(n int, newThread func(worker int) *caliper.Thread) *workerPool {
	p := &workerPool{
		tasks:   make([]chan workerTask, n),
		done:    make(chan struct{}, n),
		workers: n,
	}
	for w := 0; w < n; w++ {
		p.tasks[w] = make(chan workerTask)
		go func(w int) {
			an := annotator{th: newThread(w)}
			an.set("thread.id", w)
			for task := range p.tasks[w] {
				an.begin("amr.level", task.level)
				an.begin("kernel", task.kernel)
				busyWork(task.units)
				an.end("kernel")
				an.end("amr.level")
				p.done <- struct{}{}
			}
		}(w)
	}
	return p
}

// sweep distributes one kernel's work evenly over the workers and waits.
func (p *workerPool) sweep(kernel string, level int, units float64) {
	per := units / float64(p.workers)
	for w := 0; w < p.workers; w++ {
		p.tasks[w] <- workerTask{kernel: kernel, level: level, units: per}
	}
	for w := 0; w < p.workers; w++ {
		<-p.done
	}
}

// close stops the workers.
func (p *workerPool) close() {
	for _, ch := range p.tasks {
		close(ch)
	}
}

// work executes units of computation: real CPU in measured mode, a
// deterministic virtual-clock advance in VirtualTime mode.
func (sc *simCtx) work(units float64) {
	if !sc.cfg.VirtualTime {
		busyWork(units)
		return
	}
	sc.comm.Inner().Advance(units * virtualNsPerUnit)
	if sc.th != nil {
		sc.th.SetVirtualTime(int64(sc.comm.Inner().Clock()))
	}
}

// runRank is one emulated process's simulation.
func runRank(cfg Config, c *mpi.Comm, newThread func(rank int) *caliper.Thread) error {
	th := newThread(c.Rank())
	an := annotator{th: th}
	if th != nil {
		ch := th.Channel()
		// non-nested attributes must be pre-created; annotation defaults
		// would give them stack semantics
		if _, err := ch.CreateAttribute("iteration#mainloop", attr.Int, 0); err != nil {
			return err
		}
		if _, err := ch.CreateAttribute("thread.id", attr.Int, 0); err != nil {
			return err
		}
		if _, err := ch.CreateAttribute("amr.level", attr.Int, attr.Nested); err != nil {
			return err
		}
	}
	comm, err := mpiwrap.Wrap(c, th)
	if err != nil {
		return err
	}
	sc := &simCtx{cfg: cfg, comm: comm, an: an, th: th}
	if cfg.ThreadsPerRank > 1 {
		sc.workers = newWorkerPool(cfg.ThreadsPerRank, func(int) *caliper.Thread {
			if th == nil {
				return nil
			}
			return newThread(c.Rank())
		})
		defer sc.workers.close()
	}

	an.begin("function", "main")
	an.begin("annotation", "init")
	sc.work(4 * cfg.WorkScale)
	an.end("annotation")

	an.begin("annotation", "computation")
	an.begin("function", "hydro")
	for step := 0; step < cfg.Timesteps; step++ {
		an.set("iteration#mainloop", step)
		if err := sc.timestep(step); err != nil {
			return err
		}
	}
	an.end("function")
	an.end("annotation")
	an.end("function")
	return nil
}

// timestep runs one main-loop iteration: per-level kernel sweeps, halo
// exchange, the end-of-step barrier, and global reductions.
func (sc *simCtx) timestep(step int) error {
	cfg, comm, an := sc.cfg, sc.comm, sc.an
	rank := comm.Rank()
	for level := 0; level < cfg.Levels; level++ {
		an.begin("amr.level", level)
		patches := patchCount(rank, level, step)

		// double-buffered halo exchange, the analog of the paper's
		// MPI_Isend/Irecv with computation overlap: receive the halo
		// posted in the previous timestep (guaranteed delivered — the
		// end-of-step barrier ordered it), then post this step's
		if comm.Size() > 1 {
			if step > 0 {
				if err := haloRecv(comm, level); err != nil {
					return err
				}
			}
			if err := haloSend(comm, level); err != nil {
				return err
			}
		}

		// unannotated AMR infrastructure (clustering, regrid bookkeeping)
		sc.work(infrastructureCost * patches * cfg.WorkScale *
			kernelImbalance(rank, "") * infraExtra(rank, level))

		for _, k := range kernelCost {
			units := k.cost * patches * cfg.WorkScale * kernelImbalance(rank, k.name)
			if sc.workers != nil {
				sc.workers.sweep(k.name, level, units)
				continue
			}
			an.begin("kernel", k.name)
			sc.work(units)
			an.end("kernel")
		}
		an.end("amr.level")
	}

	// end-of-step synchronization: imbalanced ranks wait here, which is
	// why MPI_Barrier dominates the MPI profile (Figure 6)
	if err := comm.Barrier(); err != nil {
		return err
	}
	// global reductions on the synchronized ranks (dt, mass, energy)
	dt := make([]byte, 8)
	binary.LittleEndian.PutUint64(dt, math.Float64bits(1e-3))
	for i := 0; i < 3; i++ {
		if _, err := comm.Allreduce(dt, sumCombine); err != nil {
			return err
		}
	}
	return nil
}

// haloSend posts boundary data to both ring neighbours (inboxes are
// buffered, so these complete without waiting — the MPI_Isend analog).
func haloSend(comm *mpiwrap.Comm, level int) error {
	p := comm.Size()
	rank := comm.Rank()
	left := (rank - 1 + p) % p
	right := (rank + 1) % p
	payload := make([]byte, 256)
	if err := comm.Send(right, 100+level, payload); err != nil {
		return err
	}
	return comm.Send(left, 1100+level, payload)
}

// haloRecv completes the exchange by receiving both neighbours' boundary
// data posted in haloSend.
func haloRecv(comm *mpiwrap.Comm, level int) error {
	p := comm.Size()
	rank := comm.Rank()
	left := (rank - 1 + p) % p
	right := (rank + 1) % p
	if _, _, err := comm.Recv(left, 100+level); err != nil {
		return err
	}
	_, _, err := comm.Recv(right, 1100+level)
	return err
}

// EventsPerRank estimates the number of annotation events (begin/end/set)
// one rank generates, for sizing the overhead experiments.
func (c Config) EventsPerRank() int {
	perLevel := 2 + 2*len(kernelCost) // amr.level begin/end + kernels
	mpiEvents := 2 * (2 + 4)          // allreduce+barrier + 4 halo p2p calls
	perStep := 1 + c.Levels*(perLevel+8) + mpiEvents
	return 8 + c.Timesteps*perStep
}
