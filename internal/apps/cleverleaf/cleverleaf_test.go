package cleverleaf

import (
	"testing"

	"caligo/caliper"
	"caligo/internal/snapshot"
)

func testConfig() Config {
	return Config{Ranks: 4, Timesteps: 10, Levels: 3, WorkScale: 0.05}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Ranks: 0, Timesteps: 1, Levels: 1, WorkScale: 1},
		{Ranks: 1, Timesteps: 0, Levels: 1, WorkScale: 1},
		{Ranks: 1, Timesteps: 1, Levels: 0, WorkScale: 1},
		{Ranks: 1, Timesteps: 1, Levels: 9, WorkScale: 1},
		{Ranks: 1, Timesteps: 1, Levels: 1, WorkScale: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestBaselineRunsWithoutInstrumentation(t *testing.T) {
	cfg := testConfig()
	if err := Run(cfg, func(int) *caliper.Thread { return nil }); err != nil {
		t.Fatal(err)
	}
}

// runInstrumented executes the proxy with per-rank channels and returns
// the flushed records per rank.
func runInstrumented(t *testing.T, cfg Config, chCfg caliper.Config) [][]snapshot.FlatRecord {
	t.Helper()
	channels := make([]*caliper.Channel, cfg.Ranks)
	for r := range channels {
		ch, err := caliper.NewChannel(chCfg)
		if err != nil {
			t.Fatal(err)
		}
		channels[r] = ch
	}
	err := Run(cfg, func(rank int) *caliper.Thread {
		return channels[rank].Thread()
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]snapshot.FlatRecord, cfg.Ranks)
	for r, ch := range channels {
		rows, err := ch.Flush()
		if err != nil {
			t.Fatal(err)
		}
		out[r] = rows
	}
	return out
}

func TestInstrumentedRunProducesProfile(t *testing.T) {
	cfg := testConfig()
	perRank := runInstrumented(t, cfg, caliper.Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": "kernel,amr.level,mpi.rank,mpi.function",
		"aggregate.ops": "count,sum(time.duration)",
	})
	for rank, rows := range perRank {
		if len(rows) == 0 {
			t.Fatalf("rank %d produced no profile records", rank)
		}
		kernels := map[string]bool{}
		mpifns := map[string]bool{}
		levels := map[string]bool{}
		for _, r := range rows {
			if v, ok := r.GetByName("kernel"); ok {
				kernels[v.String()] = true
			}
			if v, ok := r.GetByName("mpi.function"); ok {
				mpifns[v.String()] = true
			}
			if v, ok := r.GetByName("amr.level"); ok {
				levels[v.String()] = true
			}
			if v, ok := r.GetByName("mpi.rank"); ok && v.AsInt() != int64(rank) {
				t.Errorf("rank %d has record with mpi.rank=%v", rank, v)
			}
		}
		for _, k := range []string{"calc-dt", "advec-mom", "update-halo"} {
			if !kernels[k] {
				t.Errorf("rank %d: kernel %s missing from profile", rank, k)
			}
		}
		for _, fn := range []string{"MPI_Barrier", "MPI_Allreduce", "MPI_Send", "MPI_Recv"} {
			if !mpifns[fn] {
				t.Errorf("rank %d: %s missing from profile", rank, fn)
			}
		}
		for _, l := range []string{"0", "1", "2"} {
			if !levels[l] {
				t.Errorf("rank %d: amr.level %s missing", rank, l)
			}
		}
	}
}

func TestCalcDtDominatesKernels(t *testing.T) {
	// Figure 5's shape: calc-dt has the largest kernel time
	cfg := testConfig()
	perRank := runInstrumented(t, cfg, caliper.Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": "kernel",
		"aggregate.ops": "sum(time.duration)",
	})
	times := map[string]int64{}
	for _, rows := range perRank {
		for _, r := range rows {
			k, ok := r.GetByName("kernel")
			if !ok {
				continue
			}
			if s, ok := r.GetByName("sum#time.duration"); ok {
				times[k.String()] += s.AsInt()
			}
		}
	}
	for k, v := range times {
		if k != "calc-dt" && v >= times["calc-dt"] {
			t.Errorf("kernel %s time %d >= calc-dt %d", k, v, times["calc-dt"])
		}
	}
}

func TestLevel2TimeGrows(t *testing.T) {
	// Figure 8's shape: level-2 time in late timesteps exceeds early ones;
	// level 0 stays roughly flat.
	// real per-kernel work must dominate per-event instrumentation cost
	// for duration attribution to reflect the workload, hence WorkScale 1
	cfg := Config{Ranks: 2, Timesteps: 30, Levels: 3, WorkScale: 1, VirtualTime: true}
	perRank := runInstrumented(t, cfg, caliper.Config{
		"services":        "event,timer,aggregate",
		"timer.source":    "virtual",
		"aggregate.key":   "amr.level,iteration#mainloop",
		"aggregate.ops":   "sum(time.duration)",
		"aggregate.where": "not(mpi.function)",
	})
	// accumulate time per (level, early/late third)
	type bucket struct{ early, late int64 }
	buckets := map[string]*bucket{}
	third := int64(cfg.Timesteps / 3)
	for _, rows := range perRank {
		for _, r := range rows {
			lv, ok := r.GetByName("amr.level")
			if !ok {
				continue
			}
			it, ok := r.GetByName("iteration#mainloop")
			if !ok {
				continue
			}
			s, ok := r.GetByName("sum#time.duration")
			if !ok {
				continue
			}
			b := buckets[lv.String()]
			if b == nil {
				b = &bucket{}
				buckets[lv.String()] = b
			}
			switch {
			case it.AsInt() < third:
				b.early += s.AsInt()
			case it.AsInt() >= 2*third:
				b.late += s.AsInt()
			}
		}
	}
	l2 := buckets["2"]
	if l2 == nil || l2.late <= l2.early*2 {
		t.Errorf("level 2 late/early = %+v, want strong growth", l2)
	}
	l0 := buckets["0"]
	if l0 == nil || l0.late > l0.early*2 || l0.early > l0.late*2 {
		t.Errorf("level 0 early/late = %+v, want roughly flat", l0)
	}
}

func TestAdvecMomBalanced(t *testing.T) {
	// Figure 7's shape: advec-mom shows less cross-rank imbalance than
	// calc-dt.
	cfg := Config{Ranks: 4, Timesteps: 20, Levels: 3, WorkScale: 1, VirtualTime: true}
	perRank := runInstrumented(t, cfg, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "kernel,mpi.rank",
		"aggregate.ops": "sum(time.duration)",
	})
	// measure each kernel's share of its rank's total kernel time: a
	// rank-wide slowdown from host time sharing cancels in the share
	times := map[string][]float64{}
	totals := make([]float64, cfg.Ranks)
	for rank, rows := range perRank {
		for _, r := range rows {
			if _, ok := r.GetByName("kernel"); !ok {
				continue
			}
			if s, ok := r.GetByName("sum#time.duration"); ok {
				totals[rank] += float64(s.AsInt())
			}
		}
	}
	for rank, rows := range perRank {
		for _, r := range rows {
			k, ok := r.GetByName("kernel")
			if !ok {
				continue
			}
			if s, ok := r.GetByName("sum#time.duration"); ok {
				times[k.String()] = append(times[k.String()], float64(s.AsInt())/totals[rank])
			}
		}
	}
	spread := func(vals []float64) float64 {
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return (hi - lo) / hi
	}
	if len(times["advec-mom"]) != cfg.Ranks || len(times["calc-dt"]) != cfg.Ranks {
		t.Fatalf("missing per-rank entries: %d/%d", len(times["advec-mom"]), len(times["calc-dt"]))
	}
	sm := spread(times["advec-mom"])
	sd := spread(times["calc-dt"])
	if sm >= sd {
		t.Errorf("advec-mom share spread %.3f >= calc-dt share spread %.3f", sm, sd)
	}
}

func TestEventsPerRankEstimate(t *testing.T) {
	cfg := testConfig()
	ch, err := caliper.NewChannel(caliper.Config{"services": "event"})
	if err != nil {
		t.Fatal(err)
	}
	var th *caliper.Thread
	err = Run(Config{Ranks: 1, Timesteps: cfg.Timesteps, Levels: cfg.Levels, WorkScale: 0.02},
		func(int) *caliper.Thread {
			th = ch.Thread()
			return th
		})
	if err != nil {
		t.Fatal(err)
	}
	est := cfg.EventsPerRank()
	// Ranks=1 has no halo exchange; the estimate covers the multi-rank
	// case, so allow a wide band.
	got := int(th.Snapshots())
	if got < est/2 || got > est*2 {
		t.Errorf("snapshots = %d, estimate = %d (should be same order)", got, est)
	}
}

func TestHybridThreadsPerRank(t *testing.T) {
	cfg := Config{Ranks: 2, Timesteps: 6, Levels: 3, WorkScale: 0.1, ThreadsPerRank: 3}
	perRank := runInstrumented(t, cfg, caliper.Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": "kernel,thread.id",
		"aggregate.ops": "count",
	})
	for rank, rows := range perRank {
		threadIDs := map[string]bool{}
		var kernelCounts int64
		for _, r := range rows {
			if v, ok := r.GetByName("thread.id"); ok {
				threadIDs[v.String()] = true
			}
			if _, ok := r.GetByName("kernel"); ok {
				if c, ok := r.GetByName("aggregate.count"); ok {
					kernelCounts += c.AsInt()
				}
			}
		}
		if len(threadIDs) != cfg.ThreadsPerRank {
			t.Errorf("rank %d: thread ids = %v, want %d distinct",
				rank, threadIDs, cfg.ThreadsPerRank)
		}
		// every kernel sweep runs on every worker: kernels * levels *
		// steps * threads end-events
		want := int64(len(kernelCost) * cfg.Levels * cfg.Timesteps * cfg.ThreadsPerRank)
		if kernelCounts != want {
			t.Errorf("rank %d: kernel events = %d, want %d", rank, kernelCounts, want)
		}
	}
}

func TestHybridThreadsBaseline(t *testing.T) {
	cfg := Config{Ranks: 2, Timesteps: 3, Levels: 2, WorkScale: 0.05, ThreadsPerRank: 2}
	if err := Run(cfg, func(int) *caliper.Thread { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestHybridThreadsVirtualTimeRejected(t *testing.T) {
	cfg := Config{Ranks: 1, Timesteps: 1, Levels: 1, WorkScale: 1,
		ThreadsPerRank: 2, VirtualTime: true}
	if err := cfg.Validate(); err == nil {
		t.Error("ThreadsPerRank + VirtualTime should be rejected")
	}
	if cfg := (Config{Ranks: 1, Timesteps: 1, Levels: 1, WorkScale: 1, ThreadsPerRank: -1}); cfg.Validate() == nil {
		t.Error("negative ThreadsPerRank should be rejected")
	}
}
