package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteChromeTrace writes spans as Chrome trace-event JSON (the "JSON
// Array Format" both chrome://tracing and Perfetto load): one complete
// ("X") event per span with microsecond timestamps, pid = the span's
// emulated MPI rank (so every rank gets its own process lane), tid = the
// span's thread index, and the span attributes as event args. A
// process_name metadata event labels each rank lane. Output is
// deterministic: events follow span completion order, lanes are sorted.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	bw := &errWriter{w: w}
	bw.str(`{"traceEvents":[`)

	// one process_name metadata event per rank lane, sorted by rank
	ranks := map[int32]bool{}
	for i := range spans {
		ranks[spans[i].Rank] = true
	}
	sorted := make([]int, 0, len(ranks))
	for r := range ranks {
		sorted = append(sorted, int(r))
	}
	sort.Ints(sorted)
	first := true
	for _, r := range sorted {
		if !first {
			bw.str(",")
		}
		first = false
		bw.str(fmt.Sprintf(
			`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			r, jstr(fmt.Sprintf("rank %d", r))))
	}

	for i := range spans {
		d := &spans[i]
		if !first {
			bw.str(",")
		}
		first = false
		bw.str(`{"name":`)
		bw.str(jstr(d.Name))
		bw.str(`,"cat":"caligo","ph":"X","ts":`)
		bw.str(us(d.Start))
		bw.str(`,"dur":`)
		bw.str(us(d.Dur))
		bw.str(`,"pid":`)
		bw.str(strconv.Itoa(int(d.Rank)))
		bw.str(`,"tid":`)
		bw.str(strconv.Itoa(int(d.Tid)))
		if args := d.Args(); len(args) > 0 {
			bw.str(`,"args":{`)
			for j, a := range args {
				if j > 0 {
					bw.str(",")
				}
				bw.str(jstr(a.Key()))
				bw.str(":")
				bw.str(jstr(a.Value()))
			}
			bw.str("}")
		}
		bw.str("}")
	}
	bw.str(`],"displayTimeUnit":"ms"}` + "\n")
	return bw.err
}

// WriteTrace writes the currently buffered spans as Chrome trace JSON.
func WriteTrace(w io.Writer) error { return WriteChromeTrace(w, Snapshot()) }

// us renders nanoseconds as a microsecond JSON number with nanosecond
// precision (Chrome trace timestamps are microseconds).
func us(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}

// jstr renders s as a JSON string (encoding/json handles escaping and
// invalid UTF-8).
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(b)
}

// errWriter latches the first write error so the export reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

// WriteReport writes a deterministic plain-text summary of the buffered
// spans: one line per span name (sorted), with count and total/min/max
// duration. The cali tools print it next to the telemetry report.
func WriteReport(w io.Writer) error {
	spans := Snapshot()
	type agg struct {
		count    int
		total    int64
		min, max int64
	}
	byName := map[string]*agg{}
	for i := range spans {
		d := &spans[i]
		a := byName[d.Name]
		if a == nil {
			a = &agg{min: d.Dur, max: d.Dur}
			byName[d.Name] = a
		}
		a.count++
		a.total += d.Dur
		if d.Dur < a.min {
			a.min = d.Dur
		}
		if d.Dur > a.max {
			a.max = d.Dur
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "span tracing (%d spans buffered, %d dropped, collection enabled=%v):\n",
		len(spans), Dropped(), Enabled()); err != nil {
		return err
	}
	for _, n := range names {
		a := byName[n]
		if _, err := fmt.Fprintf(w, "  %-44s count=%-6d total=%-12v min=%-12v max=%v\n",
			n, a.count, time.Duration(a.total), time.Duration(a.min), time.Duration(a.max)); err != nil {
			return err
		}
	}
	return nil
}
