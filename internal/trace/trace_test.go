package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// withTracing runs f with tracing enabled on a small fresh ring and
// restores the previous state afterwards.
func withTracing(t *testing.T, capacity int, f func()) {
	t.Helper()
	prev := SetEnabled(true)
	SetCapacity(capacity)
	t.Cleanup(func() {
		SetEnabled(prev)
		SetCapacity(defaultCapacity)
	})
	f()
}

func TestSpanLifecycle(t *testing.T) {
	withTracing(t, 64, func() {
		sp := BeginRank("phase.read", 3)
		sp.SetTid(2)
		sp.Arg("file", "a.cali")
		sp.ArgInt("records", 42)
		if !sp.Active() {
			t.Fatal("span inactive with tracing enabled")
		}
		sp.End()
		sp.End() // double End is a no-op

		spans := Since(0)
		if len(spans) != 1 {
			t.Fatalf("got %d spans, want 1", len(spans))
		}
		d := spans[len(spans)-1]
		if d.Name != "phase.read" || d.Rank != 3 || d.Tid != 2 {
			t.Errorf("span = %+v, want name=phase.read rank=3 tid=2", d)
		}
		if d.Dur < 0 || d.Start < 0 {
			t.Errorf("negative timing: start=%d dur=%d", d.Start, d.Dur)
		}
		args := d.Args()
		if len(args) != 2 {
			t.Fatalf("got %d args, want 2", len(args))
		}
		if args[0].Key() != "file" || args[0].Value() != "a.cali" {
			t.Errorf("arg[0] = %s=%s", args[0].Key(), args[0].Value())
		}
		if v, ok := args[1].Int64(); !ok || v != 42 {
			t.Errorf("arg[1].Int64() = %d,%v want 42,true", v, ok)
		}
		if args[1].Value() != "42" {
			t.Errorf("arg[1].Value() = %q, want \"42\"", args[1].Value())
		}
	})
}

func TestDisabledSpanIsInert(t *testing.T) {
	prev := SetEnabled(false)
	t.Cleanup(func() { SetEnabled(prev) })
	before := Mark()
	sp := Begin("nope")
	if sp.Active() {
		t.Error("span active with tracing disabled")
	}
	sp.Arg("k", "v")
	sp.ArgInt("n", 1)
	sp.End()
	if got := Since(before); len(got) != 0 {
		t.Errorf("disabled span recorded: %v", got)
	}
}

// TestDisabledZeroAlloc proves the kill-switched path allocates nothing:
// Begin returns a stack value and every method returns after one check.
func TestDisabledZeroAlloc(t *testing.T) {
	prev := SetEnabled(false)
	t.Cleanup(func() { SetEnabled(prev) })
	allocs := testing.AllocsPerRun(1000, func() {
		sp := BeginRank("hot", 1)
		sp.Arg("k", "v")
		sp.ArgInt("n", 7)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEnabledZeroAlloc proves the recording path is allocation-free too:
// completed spans copy into the preallocated ring and integer args stay
// numeric until export.
func TestEnabledZeroAlloc(t *testing.T) {
	withTracing(t, 64, func() {
		allocs := testing.AllocsPerRun(1000, func() {
			sp := BeginRank("hot", 1)
			sp.Arg("k", "v")
			sp.ArgInt("n", 7)
			sp.End()
		})
		if allocs != 0 {
			t.Errorf("enabled span path allocates %.1f objects/op, want 0", allocs)
		}
	})
}

func TestRingWrapAndDropped(t *testing.T) {
	withTracing(t, 4, func() {
		mark := Mark()
		for i := 0; i < 10; i++ {
			sp := Begin("s")
			sp.ArgInt("i", int64(i))
			sp.End()
		}
		if Len() != 4 {
			t.Errorf("Len = %d, want 4", Len())
		}
		if Dropped() != 6 {
			t.Errorf("Dropped = %d, want 6", Dropped())
		}
		spans := Since(mark)
		if len(spans) != 4 {
			t.Fatalf("got %d spans, want 4", len(spans))
		}
		for i := 1; i < len(spans); i++ {
			if spans[i].Seq != spans[i-1].Seq+1 {
				t.Errorf("non-contiguous seq: %d after %d", spans[i].Seq, spans[i-1].Seq)
			}
		}
		if v, _ := spans[3].Args()[0].Int64(); v != 9 {
			t.Errorf("newest span i=%d, want 9", v)
		}
	})
}

func TestMarkSince(t *testing.T) {
	withTracing(t, 64, func() {
		sp := Begin("before")
		sp.End()
		mark := Mark()
		sp2 := Begin("after")
		sp2.End()
		got := Since(mark)
		if len(got) != 1 || got[0].Name != "after" {
			t.Errorf("Since(mark) = %v, want exactly [after]", got)
		}
	})
}

func TestResetDiscards(t *testing.T) {
	withTracing(t, 8, func() {
		sp := Begin("x")
		sp.End()
		Reset()
		if Len() != 0 {
			t.Errorf("Len after Reset = %d, want 0", Len())
		}
		sp = Begin("y")
		sp.End()
		all := Snapshot()
		if len(all) != 1 || all[0].Name != "y" {
			t.Errorf("Snapshot after Reset = %v, want [y]", all)
		}
	})
}

// chromeTrace mirrors the exported JSON shape for validation.
type chromeTrace struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTrace(t *testing.T) {
	withTracing(t, 64, func() {
		for rank := 0; rank < 3; rank++ {
			sp := BeginRank("pquery.read", rank)
			sp.ArgInt("records", int64(10*rank))
			sp.Arg("quote", `a"b\c`)
			sp.End()
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var tr chromeTrace
		if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
			t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
		}
		var meta, complete int
		pids := map[int]bool{}
		for _, e := range tr.TraceEvents {
			switch e.Ph {
			case "M":
				meta++
			case "X":
				complete++
				pids[e.Pid] = true
				if e.Ts < 0 || e.Dur < 0 {
					t.Errorf("negative ts/dur in %+v", e)
				}
				if e.Args["quote"] != `a"b\c` {
					t.Errorf("arg escaping lost: %q", e.Args["quote"])
				}
			default:
				t.Errorf("unexpected phase %q", e.Ph)
			}
		}
		if meta != 3 || complete != 3 {
			t.Errorf("events: %d metadata, %d complete; want 3 and 3", meta, complete)
		}
		for rank := 0; rank < 3; rank++ {
			if !pids[rank] {
				t.Errorf("missing process lane for rank %d", rank)
			}
		}
	})
}

func TestWriteReportSorted(t *testing.T) {
	withTracing(t, 64, func() {
		for _, n := range []string{"zeta", "alpha", "mid", "alpha"} {
			sp := Begin(n)
			sp.End()
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		ia := strings.Index(out, "alpha")
		im := strings.Index(out, "mid")
		iz := strings.Index(out, "zeta")
		if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
			t.Errorf("report not sorted by span name:\n%s", out)
		}
		if !strings.Contains(out, "count=2") {
			t.Errorf("alpha count missing:\n%s", out)
		}
	})
}

func TestFormatInt(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want string
	}{{0, "0"}, {7, "7"}, {-7, "-7"}, {1234567890, "1234567890"}, {-9223372036854775808, "-9223372036854775808"}} {
		if got := formatInt(tc.v); got != tc.want {
			t.Errorf("formatInt(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// Overhead benchmarks: the cost of one instrumented phase boundary with
// the tracer off (the production default) and on. Fed into
// BENCH_trace.json by `make bench-json`.

func BenchmarkTraceOverheadDisabled(b *testing.B) {
	prev := SetEnabled(false)
	b.Cleanup(func() { SetEnabled(prev) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := BeginRank("bench.phase", 0)
		sp.ArgInt("records", int64(i))
		sp.End()
	}
}

func BenchmarkTraceOverheadEnabled(b *testing.B) {
	prev := SetEnabled(true)
	b.Cleanup(func() {
		SetEnabled(prev)
		SetCapacity(defaultCapacity)
	})
	SetCapacity(1 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := BeginRank("bench.phase", 0)
		sp.ArgInt("records", int64(i))
		sp.End()
	}
}
