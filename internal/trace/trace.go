// Package trace is the library's span tracer: the second leg of the
// self-observability layer next to internal/telemetry's counters. Where
// telemetry answers "how much, in aggregate", spans answer "where did
// *this* run spend its time": every pipeline phase (snapshot → local
// reduce → cross-process reduction → post-process → format) opens a span
// with a begin and end timestamp, optional key/value attributes, and the
// emulated MPI rank it ran on, so one query's execution can be laid out
// on a timeline and inspected in Perfetto / chrome://tracing.
//
// Design constraints (shared with internal/telemetry):
//
//   - Stdlib only, process-global, kill-switched. The disabled path is a
//     single atomic load and zero allocations: Begin returns a zero Span
//     value, and every Span method checks one flag and returns.
//   - The enabled path is allocation-free too: completed spans are copied
//     into a preallocated ring buffer; integer attributes are stored as
//     int64 and formatted only at export time.
//   - Spans are mergeable across emulated MPI ranks by construction:
//     ranks are goroutines in one process recording into the same ring,
//     and each span carries its rank id, which becomes the Chrome trace
//     "process" lane at export.
//
// Collected spans surface three ways: Chrome trace-event JSON
// (WriteTrace / caliper.WriteTrace, the -trace flag of cali-query,
// cali-stat and cleverleaf, and the /debug/trace endpoint), the sorted
// plain-text report (WriteReport), and CalQL's EXPLAIN ANALYZE, which
// attributes span time back to query plan nodes. See docs/OBSERVABILITY.md
// for the span catalogue.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the package-level kill switch. Checking it is the entire
// cost of an instrumented call site when tracing is off.
var enabled atomic.Bool

// Enabled reports whether span collection is on. Call sites that must do
// extra work to label a span (e.g. render a value to a string) should
// gate on Span.Active instead.
func Enabled() bool { return enabled.Load() }

// Enable turns span collection on.
func Enable() { enabled.Store(true) }

// Disable turns span collection off. Collected spans are retained and
// remain readable.
func Disable() { enabled.Store(false) }

// SetEnabled sets the kill switch and returns the previous state, for
// scoped enablement in tests and tools.
func SetEnabled(on bool) (previous bool) { return enabled.Swap(on) }

// epoch anchors span timestamps; Start values are nanoseconds since it.
var epoch = time.Now()

// MaxArgs is the number of attributes one span can carry. Excess Arg
// calls are dropped silently — spans are diagnostics, not records.
const MaxArgs = 4

// Arg is one span attribute. Integer attributes are kept numeric so the
// recording path never formats; Value renders either form.
type Arg struct {
	key   string
	str   string
	num   int64
	isNum bool
}

// Key returns the attribute name.
func (a Arg) Key() string { return a.key }

// Value returns the attribute value as a string.
func (a Arg) Value() string {
	if a.isNum {
		return formatInt(a.num)
	}
	return a.str
}

// Int64 returns the numeric value of an integer attribute.
func (a Arg) Int64() (int64, bool) { return a.num, a.isNum }

// formatInt is strconv.FormatInt(v, 10) without the import (kept local
// so the package's only dependencies are sync, sync/atomic, and time).
func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	u := uint64(v)
	if v < 0 {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
	}
	if v < 0 {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Span is one in-flight span. It is a value type: Begin returns it on the
// stack and End copies the completed span into the ring buffer, so the
// disabled path allocates nothing. A Span must End on the goroutine that
// Began it.
type Span struct {
	name  string
	rank  int32
	tid   int32
	start int64
	args  [MaxArgs]Arg
	nargs uint8
	ok    bool
}

// Begin opens a span with rank and tid 0 (the process-local lane).
func Begin(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{name: name, start: time.Since(epoch).Nanoseconds(), ok: true}
}

// BeginRank opens a span tagged with an emulated MPI rank; the rank
// becomes the span's process lane in the Chrome trace export.
func BeginRank(name string, rank int) Span {
	s := Begin(name)
	s.rank = int32(rank)
	return s
}

// Active reports whether the span is recording (tracing was enabled when
// it began). Use it to skip work that only produces span labels.
func (s *Span) Active() bool { return s.ok }

// SetRank tags the span with an emulated MPI rank (Chrome trace pid).
func (s *Span) SetRank(rank int) {
	if s.ok {
		s.rank = int32(rank)
	}
}

// SetTid tags the span with a thread index (Chrome trace tid).
func (s *Span) SetTid(tid int) {
	if s.ok {
		s.tid = int32(tid)
	}
}

// Arg attaches a string attribute. At most MaxArgs attach; extras drop.
func (s *Span) Arg(key, value string) {
	if !s.ok || s.nargs >= MaxArgs {
		return
	}
	s.args[s.nargs] = Arg{key: key, str: value}
	s.nargs++
}

// ArgInt attaches an integer attribute without formatting it.
func (s *Span) ArgInt(key string, value int64) {
	if !s.ok || s.nargs >= MaxArgs {
		return
	}
	s.args[s.nargs] = Arg{key: key, num: value, isNum: true}
	s.nargs++
}

// End completes the span and records it into the ring buffer. End on a
// zero Span (tracing disabled at Begin) is a no-op.
func (s *Span) End() {
	if !s.ok {
		return
	}
	s.ok = false
	d := SpanData{
		Name:  s.name,
		Rank:  s.rank,
		Tid:   s.tid,
		Start: s.start,
		Dur:   time.Since(epoch).Nanoseconds() - s.start,
		args:  s.args,
		nargs: s.nargs,
	}
	ring.append(d)
}

// SpanData is one completed span as stored in the ring buffer.
type SpanData struct {
	// Seq is the global completion sequence number (1-based); spans with
	// higher Seq ended later.
	Seq uint64
	// Name identifies the span (see the catalogue in docs/OBSERVABILITY.md).
	Name string
	// Rank is the emulated MPI rank lane ("process" in the Chrome trace).
	Rank int32
	// Tid is the thread lane within the rank.
	Tid int32
	// Start is nanoseconds since the process trace epoch.
	Start int64
	// Dur is the span length in nanoseconds.
	Dur int64

	args  [MaxArgs]Arg
	nargs uint8
}

// Args returns the span's attributes in attachment order.
func (d *SpanData) Args() []Arg { return d.args[:d.nargs] }

// defaultCapacity bounds the ring buffer: old spans are overwritten once
// the buffer is full (Dropped counts them).
const defaultCapacity = 1 << 14

// ringBuffer is a mutex-protected fixed-capacity span ring. A mutex (not
// a lock-free scheme) is deliberate: End is called at phase granularity,
// not per record, so contention is negligible and the code stays obvious.
// total is the monotonic completion sequence; the valid region is the
// last `size` appends, ending at slot (total-1) % capacity.
type ringBuffer struct {
	mu      sync.Mutex
	slots   []SpanData
	total   uint64 // spans ever appended (== last assigned Seq)
	size    int    // buffered spans, <= len(slots)
	dropped uint64 // spans overwritten by wrap-around
}

var ring = &ringBuffer{slots: make([]SpanData, defaultCapacity)}

func (r *ringBuffer) append(d SpanData) {
	r.mu.Lock()
	d.Seq = r.total + 1
	if r.size == len(r.slots) {
		r.dropped++
	} else {
		r.size++
	}
	r.slots[r.total%uint64(len(r.slots))] = d
	r.total++
	r.mu.Unlock()
}

// Snapshot returns a copy of the buffered spans, oldest first (ascending
// Seq). Reads work regardless of the kill switch.
func Snapshot() []SpanData {
	ring.mu.Lock()
	defer ring.mu.Unlock()
	cp := uint64(len(ring.slots))
	out := make([]SpanData, 0, ring.size)
	for i := ring.total - uint64(ring.size); i < ring.total; i++ {
		out = append(out, ring.slots[i%cp])
	}
	return out
}

// Mark returns a sequence mark; Since(mark) returns spans completed
// after it. Use Mark/Since (not Reset) to scope a collection window
// without discarding other collectors' spans.
func Mark() uint64 {
	ring.mu.Lock()
	defer ring.mu.Unlock()
	return ring.total
}

// Since returns the buffered spans completed after the mark, oldest
// first. Spans already overwritten by ring wrap-around are gone.
func Since(mark uint64) []SpanData {
	all := Snapshot()
	for i, d := range all {
		if d.Seq > mark {
			return all[i:]
		}
	}
	return nil
}

// Len returns the number of spans currently buffered.
func Len() int {
	ring.mu.Lock()
	defer ring.mu.Unlock()
	return ring.size
}

// Dropped returns the number of spans lost to ring wrap-around.
func Dropped() uint64 {
	ring.mu.Lock()
	defer ring.mu.Unlock()
	return ring.dropped
}

// Reset discards all buffered spans and the wrap-around drop count. The
// sequence counter keeps increasing, so marks taken before a Reset stay
// valid (Since of an old mark simply finds fewer spans).
func Reset() {
	ring.mu.Lock()
	defer ring.mu.Unlock()
	ring.size = 0
	ring.dropped = 0
}

// SetCapacity resizes the ring buffer, discarding buffered spans.
// Intended for tests and tools; n < 1 is ignored.
func SetCapacity(n int) {
	if n < 1 {
		return
	}
	ring.mu.Lock()
	defer ring.mu.Unlock()
	ring.slots = make([]SpanData, n)
	ring.size = 0
	ring.dropped = 0
}
