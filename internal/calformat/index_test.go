package calformat

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

// writeIndexedFixture writes a multi-block .cali file through an
// IndexingWriter and returns its path together with the writer-built
// index (already persisted as the sidecar).
func writeIndexedFixture(t *testing.T, nRecords, blockRecords int) (string, *Index) {
	t.Helper()
	fx := newFixture(t)
	path := filepath.Join(t.TempDir(), "data.cali")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	iw := NewIndexingWriter(f, fx.reg, fx.tree, IndexOptions{BlockRecords: blockRecords})
	if err := iw.WriteGlobals([]attr.Entry{
		{Attr: fx.fn, Value: attr.StringV("index-test")},
	}); err != nil {
		t.Fatal(err)
	}
	paths := [][]string{{"main"}, {"main", "solve"}, {"main", "solve", "mpi"}}
	for i := 0; i < nRecords; i++ {
		rec := fx.makeRecord(paths[i%len(paths)], int64(i), float64(i)*1.5)
		if err := iw.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := iw.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteIndexFile(path, idx); err != nil {
		t.Fatal(err)
	}
	return path, idx
}

// TestIndexWriterMatchesStandaloneIndexer pins the two construction
// paths to each other: indexing while writing must produce exactly the
// index that re-indexing the finished file produces.
func TestIndexWriterMatchesStandaloneIndexer(t *testing.T) {
	path, wIdx := writeIndexedFixture(t, 1000, 64)
	rIdx, err := BuildFileIndex(path, IndexOptions{BlockRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wIdx, rIdx) {
		t.Errorf("writer-built and reader-built indexes differ:\nwriter: %+v\nreader: %+v", wIdx, rIdx)
	}
}

func TestIndexEncodeDecodeRoundTrip(t *testing.T) {
	path, idx := writeIndexedFixture(t, 500, 100)
	got, err := ReadIndexFile(IndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx, got) {
		t.Errorf("round trip changed the index:\nwrote: %+v\nread:  %+v", idx, got)
	}
}

func TestIndexBlockInvariants(t *testing.T) {
	path, idx := writeIndexedFixture(t, 1000, 64)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if idx.FileSize != st.Size() {
		t.Fatalf("FileSize = %d, file is %d bytes", idx.FileSize, st.Size())
	}
	if idx.Records != 1000 {
		t.Errorf("Records = %d, want 1000", idx.Records)
	}
	// 1000 records at 64/block: 15 full blocks + one 40-record tail
	if len(idx.Blocks) != 16 {
		t.Errorf("len(Blocks) = %d, want 16", len(idx.Blocks))
	}
	off := int64(0)
	var recs uint64
	for i, b := range idx.Blocks {
		if b.Offset != off {
			t.Fatalf("block %d starts at %d, want %d", i, b.Offset, off)
		}
		off += b.Length
		recs += b.Records
		for _, z := range b.Zones {
			if z.Attr < 0 || z.Attr >= len(idx.Attrs) {
				t.Fatalf("block %d: zone attr %d out of range", i, z.Attr)
			}
		}
	}
	if off != idx.FileSize || recs != idx.Records {
		t.Errorf("blocks cover %d bytes / %d records, want %d / %d",
			off, recs, idx.FileSize, idx.Records)
	}
	// the iteration attribute is numeric and strictly increasing: each
	// block's zone must bound exactly its own record range
	ai := idx.AttrIndex("iteration")
	if ai < 0 {
		t.Fatal("iteration attribute not in index")
	}
	lo := 0.0
	for i, b := range idx.Blocks {
		z := b.Zone(ai)
		if z == nil {
			t.Fatalf("block %d has no iteration zone", i)
		}
		hi := lo + float64(b.Records) - 1
		if z.Min != lo || z.Max != hi {
			t.Errorf("block %d iteration zone [%g,%g], want [%g,%g]", i, z.Min, z.Max, lo, hi)
		}
		lo = hi + 1
	}
}

func TestLoadIndexDetectsStaleness(t *testing.T) {
	path, _ := writeIndexedFixture(t, 200, 50)
	if _, err := LoadIndex(path); err != nil {
		t.Fatalf("fresh index did not load: %v", err)
	}
	if _, err := VerifyIndex(path); err != nil {
		t.Fatalf("fresh index did not verify: %v", err)
	}

	// appending changes the length -> stale
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("__rec=ctx,attr=0,data=1\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := LoadIndex(path); err == nil || !isStale(err) {
		t.Fatalf("appended file: err = %v, want ErrIndexStale", err)
	}
}

func TestLoadIndexDetectsSameLengthEdit(t *testing.T) {
	path, _ := writeIndexedFixture(t, 200, 50)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// flip one byte near the start, keeping the length
	b[10] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(path); err == nil || !isStale(err) {
		t.Fatalf("edited file: err = %v, want ErrIndexStale", err)
	}
}

func TestDecodeIndexRejectsDamage(t *testing.T) {
	path, idx := writeIndexedFixture(t, 200, 50)
	enc := idx.Encode()

	if _, err := DecodeIndex(enc[:len(enc)-3]); err == nil || !isCorrupt(err) {
		t.Errorf("truncated index: err = %v, want ErrIndexCorrupt", err)
	}
	if _, err := DecodeIndex(enc[:4]); err == nil || !isCorrupt(err) {
		t.Errorf("short index: err = %v, want ErrIndexCorrupt", err)
	}
	bad := append([]byte{}, enc...)
	bad[len(indexMagic)+3] ^= 0xff // corrupt a header byte
	if _, err := DecodeIndex(bad); err == nil || !isCorrupt(err) {
		t.Errorf("bit-flipped index: err = %v, want ErrIndexCorrupt", err)
	}

	// a version bump re-encodes cleanly but must be rejected
	idx2 := *idx
	idx2.Version = IndexVersion + 1
	if _, err := DecodeIndex(idx2.Encode()); err == nil || !isVersion(err) {
		t.Errorf("future version: err = %v, want ErrIndexVersion", err)
	}
	_ = path
}

// TestZoneMapNaNWidensBounds: a NaN value must force unbounded numeric
// zones (NaN compares equal to everything in the engine, so no range
// check may exclude it).
func TestZoneMapNaNWidensBounds(t *testing.T) {
	reg := attr.NewRegistry()
	tree := contexttree.New()
	val := reg.MustCreate("val", attr.Float, attr.AsValue)
	path := filepath.Join(t.TempDir(), "nan.cali")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	iw := NewIndexingWriter(f, reg, tree, IndexOptions{BlockRecords: 10})
	for _, v := range []float64{1, 2, math.NaN(), 3} {
		if err := iw.WriteFlat(snapshot.FlatRecord{{Attr: val, Value: attr.FloatV(v)}}); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := iw.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	z := idx.Blocks[0].Zone(idx.AttrIndex("val"))
	if z == nil || !z.HasNum {
		t.Fatalf("no numeric zone: %+v", idx.Blocks[0])
	}
	if !math.IsInf(z.Min, -1) || !math.IsInf(z.Max, 1) {
		t.Errorf("NaN zone bounds [%g,%g], want [-Inf,+Inf]", z.Min, z.Max)
	}
}

func TestZoneMapStringOverflow(t *testing.T) {
	reg := attr.NewRegistry()
	tree := contexttree.New()
	name := reg.MustCreate("name", attr.String, 0)
	path := filepath.Join(t.TempDir(), "str.cali")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	iw := NewIndexingWriter(f, reg, tree, IndexOptions{BlockRecords: 100, MaxDistinct: 4})
	for i := 0; i < 20; i++ {
		v := attr.StringV(string(rune('a' + i%8))) // 8 distinct > 4 max
		if err := iw.WriteFlat(snapshot.FlatRecord{{Attr: name, Value: v}}); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := iw.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	z := idx.Blocks[0].Zone(idx.AttrIndex("name"))
	if z == nil {
		t.Fatal("no zone")
	}
	if !z.Overflow || len(z.Strs) != 0 {
		t.Errorf("zone = %+v, want overflowed with no strings", z)
	}
	if z.Count != 20 {
		t.Errorf("zone count = %d, want 20", z.Count)
	}
}

// TestReaderBlockNavigation drives the scan primitives the query layer
// composes: SkipTo over pure-record blocks, ScanMetaUntil over blocks
// holding definitions, SetLimit to stop at boundaries — decoding only
// the chosen block must yield exactly the records a full scan sees in
// that range.
func TestReaderBlockNavigation(t *testing.T) {
	path, idx := writeIndexedFixture(t, 300, 32)

	// full scan reference
	full := decodeAll(t, path, 0, 0, -1)

	for bi := range idx.Blocks {
		b := idx.Blocks[bi]
		if b.Records == 0 {
			continue
		}
		start := uint64(0)
		for _, pb := range idx.Blocks[:bi] {
			start += pb.Records
		}
		got := decodeBlock(t, path, idx, bi)
		want := full[start : start+b.Records]
		if len(got) != len(want) {
			t.Fatalf("block %d: %d records, want %d", bi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block %d record %d:\ngot  %s\nwant %s", bi, i, got[i], want[i])
			}
		}
	}
}

// decodeAll renders every record of the file to its String form.
func decodeAll(t *testing.T, path string, skipTo, limit int64, maxRecs int) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := NewReader(f, attr.NewRegistry(), contexttree.New())
	if skipTo > 0 {
		t.Fatal("decodeAll does not skip")
	}
	if limit > 0 {
		rd.SetLimit(limit)
	}
	var out []string
	var rec snapshot.FlatRecord
	for maxRecs != 0 {
		err := rd.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextInto: %v", err)
		}
		out = append(out, rec.String())
		maxRecs--
	}
	return out
}

// decodeBlock reads just one block: earlier blocks are passed with
// ScanMetaUntil when they hold definitions and SkipTo otherwise.
func decodeBlock(t *testing.T, path string, idx *Index, bi int) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := NewReader(f, attr.NewRegistry(), contexttree.New())
	for _, b := range idx.Blocks[:bi] {
		end := b.Offset + b.Length
		if b.MetaLines > 0 {
			if err := rd.ScanMetaUntil(end); err != nil {
				t.Fatalf("ScanMetaUntil(%d): %v", end, err)
			}
		} else {
			if err := rd.SkipTo(end); err != nil {
				t.Fatalf("SkipTo(%d): %v", end, err)
			}
		}
	}
	b := idx.Blocks[bi]
	rd.SetLimit(b.Offset + b.Length)
	var out []string
	var rec snapshot.FlatRecord
	for {
		err := rd.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextInto in block %d: %v", bi, err)
		}
		out = append(out, rec.String())
	}
	return out
}

// TestReaderProjection: projected decoding must return exactly the kept
// attributes' entries, in original order, and still count records whose
// every entry is projected away.
func TestReaderProjection(t *testing.T) {
	path, _ := writeIndexedFixture(t, 100, 50)
	full := decodeAllEntries(t, path, nil)
	proj := decodeAllEntries(t, path, map[string]bool{"function": true, "iteration": true})
	if len(full) != len(proj) {
		t.Fatalf("projection changed record count: %d -> %d", len(full), len(proj))
	}
	for i := range full {
		var want []attr.Entry
		for _, e := range full[i] {
			if n := e.Attr.Name(); n == "function" || n == "iteration" {
				want = append(want, e)
			}
		}
		got := proj[i]
		if len(got) != len(want) {
			t.Fatalf("record %d: %d entries, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].Attr.Name() != want[j].Attr.Name() ||
				attr.Compare(got[j].Value, want[j].Value) != 0 {
				t.Fatalf("record %d entry %d: got %v, want %v", i, j, got[j], want[j])
			}
		}
	}

	// projecting everything away must keep the records (empty), since
	// AGGREGATE count counts them
	none := decodeAllEntries(t, path, map[string]bool{"no.such.attr": true})
	if len(none) != len(full) {
		t.Fatalf("full projection dropped records: %d -> %d", len(none), len(full))
	}
	for i, r := range none {
		if len(r) != 0 {
			t.Fatalf("record %d not empty under full projection: %v", i, r)
		}
	}
}

func decodeAllEntries(t *testing.T, path string, keep map[string]bool) []snapshot.FlatRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := NewReader(f, attr.NewRegistry(), contexttree.New())
	if keep != nil {
		rd.SetProjection(keep)
	}
	var out []snapshot.FlatRecord
	var rec snapshot.FlatRecord
	for {
		err := rd.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextInto: %v", err)
		}
		out = append(out, rec.Clone())
	}
	return out
}

func isStale(err error) bool   { return errors.Is(err, ErrIndexStale) }
func isCorrupt(err error) bool { return errors.Is(err, ErrIndexCorrupt) }
func isVersion(err error) bool { return errors.Is(err, ErrIndexVersion) }
