package calformat

import (
	"strings"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
)

// FuzzReader: the stream reader must never panic on arbitrary input —
// corrupt datasets produce errors, not crashes.
func FuzzReader(f *testing.F) {
	seeds := []string{
		"",
		"__rec=attr,id=0,name=a,type=int,prop=\n__rec=ctx,attr=0,data=5\n",
		"__rec=attr,id=1,name=function,type=string,prop=nested\n" +
			"__rec=node,id=0,attr=1,data=main,parent=\n" +
			"__rec=node,id=1,attr=1,data=foo,parent=0\n" +
			"__rec=ctx,ref=1\n",
		"__rec=globals,attr=9,data=x\n",
		"__rec=ctx,ref=1:2:3,attr=4:5,data=a:b\n",
		"__rec=attr,id=0,name=x\\,y,type=string,prop=\n__rec=ctx,attr=0,data=a\\:b\n",
		"__rec=node,id=0,attr=0,data=x,parent=99\n",
		strings.Repeat("__rec=attr,id=0,name=a,type=int,prop=\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		rd := NewReader(strings.NewReader(input), attr.NewRegistry(), contexttree.New())
		// must terminate without panicking; errors are fine
		_, _ = rd.ReadAll()
	})
}

// FuzzWriterReaderRoundTrip: whatever the writer emits for wild attribute
// names and values, the reader must parse back exactly.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add("name", "value")
	f.Add("we,ird=name", "va\\lue:with\nnewline")
	f.Add("", "")
	f.Add("a:b", "c,d=e")
	f.Fuzz(func(t *testing.T, name, value string) {
		if name == "" {
			return // empty attribute names are rejected by the registry
		}
		reg := attr.NewRegistry()
		tree := contexttree.New()
		a, err := reg.Create(name, attr.String, attr.AsValue)
		if err != nil {
			return
		}
		var sb strings.Builder
		w := NewWriter(&sb, reg, tree)
		rec := []attr.Entry{{Attr: a, Value: attr.StringV(value)}}
		if err := w.WriteFlat(rec); err != nil {
			t.Fatalf("WriteFlat: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rd := NewReader(strings.NewReader(sb.String()), attr.NewRegistry(), contexttree.New())
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("read back: %v\nstream: %q", err, sb.String())
		}
		if len(recs) != 1 {
			t.Fatalf("records = %d", len(recs))
		}
		got, ok := recs[0].GetByName(name)
		if !ok || got.String() != value {
			t.Fatalf("value round trip: got %q, want %q", got.String(), value)
		}
	})
}
