package calformat

import (
	"strings"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

// FuzzReader: the stream reader must never panic on arbitrary input —
// corrupt datasets produce errors, not crashes.
func FuzzReader(f *testing.F) {
	seeds := []string{
		"",
		"__rec=attr,id=0,name=a,type=int,prop=\n__rec=ctx,attr=0,data=5\n",
		"__rec=attr,id=1,name=function,type=string,prop=nested\n" +
			"__rec=node,id=0,attr=1,data=main,parent=\n" +
			"__rec=node,id=1,attr=1,data=foo,parent=0\n" +
			"__rec=ctx,ref=1\n",
		"__rec=globals,attr=9,data=x\n",
		"__rec=ctx,ref=1:2:3,attr=4:5,data=a:b\n",
		"__rec=attr,id=0,name=x\\,y,type=string,prop=\n__rec=ctx,attr=0,data=a\\:b\n",
		"__rec=node,id=0,attr=0,data=x,parent=99\n",
		strings.Repeat("__rec=attr,id=0,name=a,type=int,prop=\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		rd := NewReader(strings.NewReader(input), attr.NewRegistry(), contexttree.New())
		// must terminate without panicking; errors are fine
		_, _ = rd.ReadAll()
	})
}

// FuzzWriterReaderRoundTrip: whatever the writer emits for wild attribute
// names and values, the reader must parse back exactly.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add("name", "value")
	f.Add("we,ird=name", "va\\lue:with\nnewline")
	f.Add("", "")
	f.Add("a:b", "c,d=e")
	f.Fuzz(func(t *testing.T, name, value string) {
		if name == "" {
			return // empty attribute names are rejected by the registry
		}
		reg := attr.NewRegistry()
		tree := contexttree.New()
		a, err := reg.Create(name, attr.String, attr.AsValue)
		if err != nil {
			return
		}
		var sb strings.Builder
		w := NewWriter(&sb, reg, tree)
		rec := []attr.Entry{{Attr: a, Value: attr.StringV(value)}}
		if err := w.WriteFlat(rec); err != nil {
			t.Fatalf("WriteFlat: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rd := NewReader(strings.NewReader(sb.String()), attr.NewRegistry(), contexttree.New())
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("read back: %v\nstream: %q", err, sb.String())
		}
		if len(recs) != 1 {
			t.Fatalf("records = %d", len(recs))
		}
		got, ok := recs[0].GetByName(name)
		if !ok || got.String() != value {
			t.Fatalf("value round trip: got %q, want %q", got.String(), value)
		}
	})
}

// FuzzNestedPathRoundTrip: a calling-context path written through the
// node table must read back component-for-component, whatever the frame
// names contain. Seeds cover the shapes real Go symbol names take —
// generics brackets, method parentheses, pointer receivers — plus the
// separator and control characters the escaper must neutralize.
func FuzzNestedPathRoundTrip(f *testing.F) {
	f.Add("main.main", "runtime.gcBgMarkWorker", "runtime.systemstack")
	f.Add("sort.Slice[go.shape.int]", "(*bytes.Buffer).Write", "main.(*T).Method[...]")
	f.Add("pkg.func(a, b)", "weird*name", "slice[...]trailer")
	f.Add("unicode.λ", "функция", "関数名")
	f.Add("tab\there", "newline\nin\nname", "cr\rname")
	f.Add("comma,name", "equals=name", "colon:name")
	f.Add("back\\slash", "\\", "\\n")
	f.Add("", "", "")
	f.Add(" leading", "trailing ", "  ")
	f.Fuzz(func(t *testing.T, f1, f2, f3 string) {
		frames := []string{f1, f2, f3}
		reg := attr.NewRegistry()
		tree := contexttree.New()
		fn := reg.MustCreate("prof.function", attr.String, attr.Nested)
		metric := reg.MustCreate("cpu.samples", attr.Int, attr.AsValue|attr.Aggregatable)
		entries := make([]attr.Entry, len(frames))
		for i, fr := range frames {
			entries[i] = attr.Entry{Attr: fn, Value: attr.StringV(fr)}
		}
		var b snapshot.Builder
		b.AddNode(tree.GetPath(contexttree.InvalidNode, entries))
		b.AddImmediate(metric, attr.IntV(7))

		var sb strings.Builder
		w := NewWriter(&sb, reg, tree)
		if err := w.WriteRecord(b.Record()); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		reg2 := attr.NewRegistry()
		rd := NewReader(strings.NewReader(sb.String()), reg2, contexttree.New())
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("read back: %v\nstream: %q", err, sb.String())
		}
		if len(recs) != 1 {
			t.Fatalf("records = %d", len(recs))
		}
		fn2, ok := reg2.Find("prof.function")
		if !ok {
			t.Fatal("prof.function not declared in stream")
		}
		got := recs[0].ValuesOf(fn2.ID())
		if len(got) != len(frames) {
			t.Fatalf("path length: got %d, want %d\nstream: %q", len(got), len(frames), sb.String())
		}
		for i, v := range got {
			if v.String() != frames[i] {
				t.Fatalf("frame %d: got %q, want %q\nstream: %q", i, v.String(), frames[i], sb.String())
			}
		}
		if v, ok := recs[0].GetByName("cpu.samples"); !ok || v.AsInt() != 7 {
			t.Fatalf("metric lost in round trip: %v %v", v, ok)
		}
	})
}

// FuzzDecodeDiff: the byte-oriented decoder must be observationally
// identical to the legacy string/map decoder (legacy.go) on arbitrary
// input — same records, same globals, same error at the same point.
func FuzzDecodeDiff(f *testing.F) {
	seeds := []string{
		// well-formed stream: attr + node + ctx
		"__rec=attr,id=1,name=function,type=string,prop=nested\n" +
			"__rec=node,id=0,attr=1,data=main,parent=\n" +
			"__rec=node,id=1,attr=1,data=foo,parent=0\n" +
			"__rec=ctx,ref=1\n",
		// CRLF line endings
		"__rec=attr,id=0,name=a,type=int,prop=\r\n__rec=ctx,attr=0,data=5\r\n",
		// stacked carriage returns and no final newline
		"__rec=attr,id=0,name=a,type=int,prop=\r\r\n__rec=ctx,attr=0,data=5\r",
		// escaped separators in names, values, and list elements
		"__rec=attr,id=0,name=x\\,y\\=z,type=string,prop=\n__rec=ctx,attr=0,data=a\\:b\\nc\n",
		// empty values: present-but-empty data, empty prop, empty parent
		"__rec=attr,id=0,name=s,type=string,prop=\n__rec=ctx,attr=0,data=\n",
		// unknown record kinds are skipped
		"__rec=mystery,x=1\n__rec=attr,id=0,name=a,type=int,prop=\n__rec=ctx,attr=0,data=7\n",
		// escaped record kind never matches; escaped __rec key does
		"__rec=ct\\x\n\\_\\_rec=attr,id=0,name=a,type=int,prop=\n",
		// globals records
		"__rec=attr,id=3,name=experiment,type=string,prop=global\n__rec=globals,attr=3,data=quartz\n",
		// error cases: field without '=', missing __rec, bad ids,
		// mismatched list lengths, empty record
		"justakey\n",
		"a=1\n",
		"__rec=ctx,attr=1:2,data=a\n",
		"__rec=ctx\n",
		"__rec=node,id=x,attr=0,data=1,parent=\n",
		// duplicate keys: last one wins
		"__rec=attr,id=0,id=1,name=a,type=int,prop=\n__rec=ctx,attr=1,data=2\n",
		// trailing list separator yields a trailing empty element
		"__rec=attr,id=0,name=a,type=string,prop=\n__rec=ctx,attr=0:0,data=x:\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		rn := NewReader(strings.NewReader(input), attr.NewRegistry(), contexttree.New())
		ro := newOracleReader(strings.NewReader(input), attr.NewRegistry(), contexttree.New())
		for i := 0; ; i++ {
			recN, errN := rn.Next()
			recO, errO := ro.Next()
			if (errN == nil) != (errO == nil) {
				t.Fatalf("record %d: error divergence:\nnew:    %v\noracle: %v\ninput: %q", i, errN, errO, input)
			}
			if errN != nil {
				if errN.Error() != errO.Error() {
					t.Fatalf("record %d: error message divergence:\nnew:    %v\noracle: %v\ninput: %q", i, errN, errO, input)
				}
				break
			}
			if recN.String() != recO.String() {
				t.Fatalf("record %d divergence:\nnew:    %s\noracle: %s\ninput: %q", i, recN, recO, input)
			}
		}
		gN, gO := rn.Globals(), ro.Globals()
		if len(gN) != len(gO) {
			t.Fatalf("globals count: new %d, oracle %d, input %q", len(gN), len(gO), input)
		}
		for i := range gN {
			if gN[i].Attr.Name() != gO[i].Attr.Name() || gN[i].Value != gO[i].Value {
				t.Fatalf("globals[%d]: new %v=%v, oracle %v=%v", i,
					gN[i].Attr.Name(), gN[i].Value, gO[i].Attr.Name(), gO[i].Value)
			}
		}
	})
}
