package calformat

// Tests for the byte-oriented decoder's perf-facing contracts: exact byte
// accounting, record reuse, string interning, and the steady-state
// allocation budget. Semantic equivalence with the legacy decoder is
// covered by FuzzDecodeDiff in fuzz_test.go.

import (
	"io"
	"strings"
	"testing"
	"unsafe"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/testutil"
)

// TestBytesReadExact: caligo.calformat.bytes.read must equal the exact
// input size — including newlines, carriage returns, blank lines, and a
// final line with no trailing newline. (The legacy reader over-counted a
// newline on the last line and miscounted CRLF endings.)
func TestBytesReadExact(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	inputs := []string{
		"__rec=attr,id=0,name=a,type=int,prop=\n__rec=ctx,attr=0,data=5\n",
		// no trailing newline on the final line
		"__rec=attr,id=0,name=a,type=int,prop=\n__rec=ctx,attr=0,data=5",
		// CRLF line endings
		"__rec=attr,id=0,name=a,type=int,prop=\r\n__rec=ctx,attr=0,data=5\r\n",
		// stacked carriage returns, blank lines, final '\r' at EOF
		"__rec=attr,id=0,name=a,type=int,prop=\r\r\n\n\r\n__rec=ctx,attr=0,data=5\r",
		"",
		"\n\r\n\n",
	}
	for _, in := range inputs {
		rd := NewReader(strings.NewReader(in), attr.NewRegistry(), contexttree.New())
		before := telBytesRead.Value()
		if _, err := rd.ReadAll(); err != nil {
			t.Fatalf("input %q: %v", in, err)
		}
		if got := telBytesRead.Value() - before; got != uint64(len(in)) {
			t.Errorf("input %q: bytes.read = %d, want %d", in, got, len(in))
		}
	}
}

// TestNextIntoReuse: a NextInto record is valid until the next call;
// retaining it across calls requires Clone.
func TestNextIntoReuse(t *testing.T) {
	in := "__rec=attr,id=0,name=a,type=int,prop=\n" +
		"__rec=ctx,attr=0,data=1\n" +
		"__rec=ctx,attr=0,data=2\n"
	rd := NewReader(strings.NewReader(in), attr.NewRegistry(), contexttree.New())
	var rec snapshot.FlatRecord
	if err := rd.NextInto(&rec); err != nil {
		t.Fatal(err)
	}
	first := rec.Clone()
	if err := rd.NextInto(&rec); err != nil {
		t.Fatal(err)
	}
	if got := rec[0].Value.AsInt(); got != 2 {
		t.Fatalf("second record value = %d, want 2", got)
	}
	if got := first[0].Value.AsInt(); got != 1 {
		t.Fatalf("cloned first record value = %d, want 1", got)
	}
	if err := rd.NextInto(&rec); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if len(rec) != 0 {
		t.Fatalf("record not reset on EOF: %v", rec)
	}
}

// TestStringInterning: repeated string values share one backing array —
// within a stream and across readers on the same registry.
func TestStringInterning(t *testing.T) {
	reg := attr.NewRegistry()
	in := "__rec=attr,id=0,name=s,type=string,prop=asvalue\n" +
		"__rec=ctx,attr=0,data=hello\n" +
		"__rec=ctx,attr=0,data=hello\n"
	var ptrs []*byte
	for i := 0; i < 2; i++ {
		rd := NewReader(strings.NewReader(in), reg, contexttree.New())
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			s := rec[0].Value.String()
			if s != "hello" {
				t.Fatalf("value = %q, want hello", s)
			}
			ptrs = append(ptrs, unsafe.StringData(s))
		}
	}
	for i, p := range ptrs {
		if p != ptrs[0] {
			t.Fatalf("string value %d has a distinct backing array (not interned)", i)
		}
	}
}

// decodeAllocInput builds a stream with a definition prologue and nrec
// identical-shape ctx records (nested string path + float metric), the
// steady-state shape of a profiling dataset.
func decodeAllocInput(nrec int) string {
	var sb strings.Builder
	sb.WriteString("__rec=attr,id=0,name=function,type=string,prop=nested\n")
	sb.WriteString("__rec=attr,id=1,name=time.duration,type=double,prop=asvalue\n")
	sb.WriteString("__rec=attr,id=2,name=label,type=string,prop=asvalue\n")
	sb.WriteString("__rec=node,id=0,attr=0,data=main,parent=\n")
	sb.WriteString("__rec=node,id=1,attr=0,data=work,parent=0\n")
	for i := 0; i < nrec; i++ {
		sb.WriteString("__rec=ctx,ref=1,attr=1:2,data=0.5:step\\=one\n")
	}
	return sb.String()
}

// TestNextIntoAllocBudget pins the steady-state decode loop to zero
// allocations per record: spans, scratch, intern table, and path cache
// are all warm after the first few records.
func TestNextIntoAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets do not hold under -race instrumentation")
	}
	rd := NewReader(strings.NewReader(decodeAllocInput(600)), attr.NewRegistry(), contexttree.New())
	var rec snapshot.FlatRecord
	for i := 0; i < 100; i++ { // warm up caches and buffer capacities
		if err := rd.NextInto(&rec); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(400, func() {
		if err := rd.NextInto(&rec); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state NextInto = %.2f allocs/record, want 0", avg)
	}
}

// TestNextAllocBudget pins the compatibility Next API, which must only
// pay for the fresh record slice it hands out.
func TestNextAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets do not hold under -race instrumentation")
	}
	rd := NewReader(strings.NewReader(decodeAllocInput(600)), attr.NewRegistry(), contexttree.New())
	for i := 0; i < 100; i++ {
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(400, func() {
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
	})
	// growing the 4-entry record costs a few slice doublings
	if avg > 3 {
		t.Fatalf("steady-state Next = %.2f allocs/record, want <= 3", avg)
	}
}
