package calformat

// Byte-oriented .cali decoder. This is the production read path: it works
// directly on the scanner's byte buffer with index-based field spans (no
// per-line string copy, field slice, or maps), unescapes only into a
// reused scratch buffer when an escape byte is actually present, and
// interns attribute names and string values through a registry-backed
// table so each distinct value is allocated once per stream set. Together
// with NextInto (caller-owned record reuse) the steady-state decode loop
// allocates nothing per record. Semantics are pinned to the legacy
// decoder in legacy.go by FuzzDecodeDiff.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"unsafe"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

// fieldSpan locates one key=value field as offsets into the current line
// buffer. The esc flags record whether the raw bytes contain a backslash
// escape and therefore need unescaping before use.
type fieldSpan struct {
	keyLo, keyHi int32
	valLo, valHi int32
	keyEsc       bool
	valEsc       bool
}

// listElem locates one element of a ':'-separated list value, as offsets
// into the raw (still escaped) value bytes.
type listElem struct {
	lo, hi int32
	esc    bool
}

// bstr views b as a string without copying. The result aliases b's
// backing array (the scanner buffer or the scratch buffer), both of which
// are overwritten by the next record: callees must fully consume the
// string (parse it, compare it) and never retain it. Errors built from
// such strings are safe because every Reader error path flattens them
// through errf (fmt.Sprintf) before they escape.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// unescapeAppend appends the unescaped form of src to dst. Semantics
// match unescape in legacy.go: \n and \r decode to newline and carriage
// return, any other escaped byte decodes to itself, and a trailing lone
// backslash is kept literal.
func unescapeAppend(dst, src []byte) []byte {
	for i := 0; i < len(src); i++ {
		if src[i] == '\\' && i+1 < len(src) {
			i++
			switch src[i] {
			case 'n':
				dst = append(dst, '\n')
			case 'r':
				dst = append(dst, '\r')
			default:
				dst = append(dst, src[i])
			}
			continue
		}
		dst = append(dst, src[i])
	}
	return dst
}

// Reader parses a .cali stream. Stream-local attribute ids and node ids
// are remapped into the supplied registry and context tree, so multiple
// files can be read into one shared registry/tree (the basis for
// cross-process aggregation of per-process files).
//
// Reader is not safe for concurrent use.
type Reader struct {
	sc       *bufio.Scanner
	src      io.Reader
	seeker   io.Seeker // src if it supports seeking, else nil
	reg      *attr.Registry
	tree     *contexttree.Tree
	attrMap  map[int64]attr.Attribute
	nodeMap  map[int64]contexttree.NodeID
	globals  []attr.Entry
	line     int
	consumed int   // exact bytes of input consumed by the last scanned token
	offset   int64 // absolute stream offset after the last scanned token
	limit    int64 // NextInto stops (io.EOF) at this offset; 0 = none
	metaSeen int   // metadata lines (attr/node/globals) processed so far

	// Reused per-record decode state. None of it escapes a NextInto call
	// except through explicit copies (interning, record entries).
	fields     []fieldSpan
	refElems   []listElem
	attrElems  []listElem
	dataElems  []listElem
	scratch    []byte // unescaped value bytes (one value live at a time)
	keyScratch []byte // unescaped key bytes for findField comparisons
	scanBuf    []byte // scanner buffer, kept so SkipTo can rebuild without realloc
	interned   map[string]string
	pathCache  map[contexttree.NodeID]cachedPath

	// Projection pushdown (SetProjection): entries of attributes outside
	// keep are dropped during decode instead of materialized.
	keep map[string]bool
	drop map[int64]bool // stream-local ids of attrs outside keep
}

// cachedPath is a cached expanded node path, pre-filtered by the active
// projection; dropped counts the entries the projection removed from it.
type cachedPath struct {
	entries []attr.Entry
	full    int // entry count before projection
}

// NewReader returns a Reader merging stream contents into reg and tree.
func NewReader(rd io.Reader, reg *attr.Registry, tree *contexttree.Tree) *Reader {
	r := &Reader{
		src:       rd,
		reg:       reg,
		tree:      tree,
		attrMap:   map[int64]attr.Attribute{},
		nodeMap:   map[int64]contexttree.NodeID{},
		interned:  map[string]string{},
		pathCache: map[contexttree.NodeID]cachedPath{},
	}
	if s, ok := rd.(io.Seeker); ok {
		r.seeker = s
	}
	r.scanBuf = make([]byte, 64*1024)
	r.newScanner()
	return r
}

// newScanner (re)builds the line scanner over src, reusing the kept
// buffer. Called at construction and after every SkipTo seek (a
// bufio.Scanner cannot reposition once it has buffered input).
func (r *Reader) newScanner() {
	sc := bufio.NewScanner(r.src)
	sc.Buffer(r.scanBuf, 16*1024*1024)
	sc.Split(r.scanLine)
	r.sc = sc
}

// scanLine is a bufio.SplitFunc that, unlike bufio.ScanLines, records the
// exact number of input bytes each token consumed (including the newline
// and any carriage returns) so the bytes-read counter can be exact. It
// does not strip '\r'; the decode loop trims all trailing carriage
// returns itself.
func (r *Reader) scanLine(data []byte, atEOF bool) (int, []byte, error) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		r.consumed = i + 1
		return i + 1, data[:i], nil
	}
	if atEOF && len(data) > 0 {
		r.consumed = len(data)
		return len(data), data, nil
	}
	return 0, nil, nil
}

// Globals returns the metadata entries read so far.
func (r *Reader) Globals() []attr.Entry { return r.globals }

// Offset returns the absolute stream offset after the last line consumed.
// Lines land on exact block boundaries (index.go), so this is the anchor
// for block-range scans.
func (r *Reader) Offset() int64 { return r.offset }

// MetaLines returns the count of metadata lines (attr, node, globals)
// processed so far. The standalone indexer samples it at block boundaries
// to record which blocks can be seek-skipped outright.
func (r *Reader) MetaLines() int { return r.metaSeen }

// SetLimit makes NextInto report io.EOF once the stream offset reaches
// off, without consuming past it. Zero clears the limit. Used to stop a
// full scan at a block boundary so the next block can be skipped.
func (r *Reader) SetLimit(off int64) { r.limit = off }

// SkipTo repositions the stream at absolute offset off (a block boundary
// from the index) without reading the skipped bytes. It requires a
// seekable source and only moves forward.
func (r *Reader) SkipTo(off int64) error {
	if r.seeker == nil {
		return fmt.Errorf("calformat: SkipTo: source is not seekable")
	}
	if off < r.offset {
		return fmt.Errorf("calformat: SkipTo: cannot seek backwards (%d < %d)", off, r.offset)
	}
	if off == r.offset {
		return nil
	}
	if _, err := r.seeker.Seek(off, io.SeekStart); err != nil {
		return err
	}
	r.offset = off
	r.newScanner()
	return nil
}

// ScanMetaUntil consumes lines up to absolute offset limit, processing
// only metadata (attr, node, globals) and skipping snapshot records
// without decoding them. It is the cheap way to pass over a pruned block
// whose metadata later blocks may depend on. The limit must be a line
// boundary (it is, when it comes from the index).
func (r *Reader) ScanMetaUntil(limit int64) error {
	for r.offset < limit {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return err
			}
			return io.ErrUnexpectedEOF
		}
		r.line++
		r.offset += int64(r.consumed)
		telBytesRead.Add(uint64(r.consumed))
		line := r.sc.Bytes()
		for len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			continue
		}
		if err := r.scanFields(line); err != nil {
			return r.errf("%v", err)
		}
		kind, _, _ := r.findField(line, "__rec")
		switch string(kind) {
		case "attr":
			if err := r.readAttrLine(line); err != nil {
				return err
			}
			r.metaSeen++
		case "node":
			if err := r.readNodeLine(line); err != nil {
				return err
			}
			r.metaSeen++
		case "globals":
			e, err := r.readEntryLine(line)
			if err != nil {
				return err
			}
			r.globals = append(r.globals, e)
			r.metaSeen++
		case "ctx":
			// pruned record: skip without decoding
		case "":
			return r.errf("record without __rec field")
		default:
			// unknown record kinds are skipped for forward compatibility
		}
	}
	if r.offset != limit {
		return fmt.Errorf("calformat: block boundary %d is not a line boundary (at %d)", limit, r.offset)
	}
	return nil
}

// SetProjection restricts decoding to the named attributes: entries of
// any other attribute are validated but not materialized into the
// records NextInto returns. nil restores full decoding. Must be set
// before reading begins (the path cache is projection-specific).
func (r *Reader) SetProjection(keep map[string]bool) {
	r.keep = keep
	r.drop = nil
	if keep != nil {
		r.drop = map[int64]bool{}
	}
	clear(r.pathCache)
}

func (r *Reader) errf(format string, args ...any) error {
	telDecodeErrors.Inc()
	return fmt.Errorf("calformat: line %d: %s", r.line, fmt.Sprintf(format, args...))
}

// intern returns a canonical heap copy of b. A per-reader map serves the
// hot path without locking; misses fall through to the registry-shared
// table so distinct values are allocated once across all readers on the
// same registry.
func (r *Reader) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := r.interned[string(b)]; ok { // alloc-free lookup
		return s
	}
	s := r.reg.Intern(b)
	r.interned[s] = s
	telInterned.Inc()
	return s
}

// unescaped returns the unescaped form of raw. When no escape byte is
// present it returns raw itself; otherwise it decodes into the reused
// scratch buffer. At most one unescaped value is live at a time: consume
// the result before the next unescaped call.
func (r *Reader) unescaped(raw []byte, esc bool) []byte {
	if !esc {
		return raw
	}
	r.scratch = unescapeAppend(r.scratch[:0], raw)
	telScratchBytes.Add(uint64(len(r.scratch)))
	return r.scratch
}

// parseValue parses value bytes as the given type. String values are
// interned (Variant retains the string); other types parse from a
// transient no-copy view.
func (r *Reader) parseValue(b []byte, t attr.Type) (attr.Variant, error) {
	if t == attr.String {
		return attr.StringV(r.intern(b)), nil
	}
	return attr.ParseAs(bstr(b), t)
}

// pathOf returns the expanded root-first entry path of a context tree
// node, cached per node: repeated refs to the same node (the common case
// — every record names its full context) cost one map hit instead of a
// fresh slice. Under an active projection the cached path is stored
// pre-filtered, with the original length kept for empty-record checks.
func (r *Reader) pathOf(n contexttree.NodeID) (cachedPath, error) {
	if p, ok := r.pathCache[n]; ok {
		return p, nil
	}
	p, err := r.tree.Path(n, r.reg)
	if err != nil {
		return cachedPath{}, err
	}
	cp := cachedPath{entries: p, full: len(p)}
	if r.keep != nil {
		kept := p[:0]
		for _, e := range p {
			if r.keep[e.Attr.Name()] {
				kept = append(kept, e)
			}
		}
		cp.entries = kept
	}
	r.pathCache[n] = cp
	return cp, nil
}

// scanFields splits line into key=value spans in r.fields. Escape
// sequences are left in place (spans index the raw bytes); empty segments
// are skipped; a non-empty segment with no '=' is an error, exactly like
// splitFields in legacy.go.
func (r *Reader) scanFields(line []byte) error {
	r.fields = r.fields[:0]
	f := fieldSpan{}
	inKey := true
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case c == '\\' && i+1 < len(line):
			if inKey {
				f.keyEsc = true
			} else {
				f.valEsc = true
			}
			i++
		case c == ',':
			if inKey {
				if f.keyLo != int32(i) {
					return fmt.Errorf("calformat: field %q has no '='", line[f.keyLo:i])
				}
			} else {
				f.valHi = int32(i)
				r.fields = append(r.fields, f)
			}
			f = fieldSpan{keyLo: int32(i + 1)}
			inKey = true
		case c == '=' && inKey:
			f.keyHi = int32(i)
			f.valLo = int32(i + 1)
			inKey = false
		}
	}
	if inKey {
		if f.keyLo != int32(len(line)) {
			return fmt.Errorf("calformat: field %q has no '='", line[f.keyLo:])
		}
	} else {
		f.valHi = int32(len(line))
		r.fields = append(r.fields, f)
	}
	return nil
}

// findField returns the raw (still escaped) value bytes of the named
// field, scanning last to first so duplicate keys resolve like a map
// built in line order (last one wins). Keys are compared unescaped.
func (r *Reader) findField(line []byte, name string) (val []byte, esc, ok bool) {
	for i := len(r.fields) - 1; i >= 0; i-- {
		f := r.fields[i]
		key := line[f.keyLo:f.keyHi]
		if f.keyEsc {
			r.keyScratch = unescapeAppend(r.keyScratch[:0], key)
			key = r.keyScratch
		}
		if string(key) == name { // alloc-free comparison
			return line[f.valLo:f.valHi], f.valEsc, true
		}
	}
	return nil, false, false
}

// splitListSpans appends the spans of raw's ':'-separated elements to
// dst. Offsets are relative to raw. Semantics match splitList in
// legacy.go: empty input has no elements, a trailing separator yields a
// trailing empty element, and escaped separators stay within an element.
func splitListSpans(dst []listElem, raw []byte) []listElem {
	if len(raw) == 0 {
		return dst
	}
	e := listElem{}
	for i := 0; i < len(raw); i++ {
		switch {
		case raw[i] == '\\' && i+1 < len(raw):
			e.esc = true
			i++
		case raw[i] == ':':
			e.hi = int32(i)
			dst = append(dst, e)
			e = listElem{lo: int32(i + 1)}
		}
	}
	e.hi = int32(len(raw))
	return append(dst, e)
}

// NextInto decodes the next snapshot record in the stream into *dst,
// reusing dst's backing storage. The record is valid until the next
// NextInto/Next call on this Reader; callers that retain it longer must
// Clone it (see snapshot.FlatRecord.Clone). It returns io.EOF after the
// last record.
func (r *Reader) NextInto(dst *snapshot.FlatRecord) error {
	*dst = (*dst)[:0]
	for {
		if r.limit > 0 && r.offset >= r.limit {
			return io.EOF
		}
		if !r.sc.Scan() {
			break
		}
		r.line++
		r.offset += int64(r.consumed)
		telBytesRead.Add(uint64(r.consumed))
		line := r.sc.Bytes()
		for len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			continue
		}
		if err := r.scanFields(line); err != nil {
			return r.errf("%v", err)
		}
		// The record kind is matched on the raw value, like the legacy
		// fm["__rec"] lookup: an escaped kind never matches and falls
		// through to the unknown-kind skip.
		kind, _, _ := r.findField(line, "__rec")
		switch string(kind) {
		case "attr":
			if err := r.readAttrLine(line); err != nil {
				return err
			}
			r.metaSeen++
		case "node":
			if err := r.readNodeLine(line); err != nil {
				return err
			}
			r.metaSeen++
		case "globals":
			e, err := r.readEntryLine(line)
			if err != nil {
				return err
			}
			r.globals = append(r.globals, e)
			r.metaSeen++
		case "ctx":
			if err := r.readCtxLine(line, dst); err != nil {
				return err
			}
			telRecsRead.Inc()
			return nil
		case "":
			return r.errf("record without __rec field")
		default:
			// unknown record kinds are skipped for forward compatibility
		}
	}
	if err := r.sc.Err(); err != nil {
		return err
	}
	return io.EOF
}

// Next returns the next snapshot record in the stream, fully expanded
// into freshly allocated storage. It returns io.EOF after the last
// record. Hot paths should prefer NextInto.
func (r *Reader) Next() (snapshot.FlatRecord, error) {
	var rec snapshot.FlatRecord
	if err := r.NextInto(&rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadAll reads all remaining records.
func (r *Reader) ReadAll() ([]snapshot.FlatRecord, error) {
	var out []snapshot.FlatRecord
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func (r *Reader) readAttrLine(line []byte) error {
	idRaw, _, _ := r.findField(line, "id")
	id, err := strconv.ParseInt(bstr(idRaw), 10, 64)
	if err != nil {
		return r.errf("attr record: bad id %q", idRaw)
	}
	typRaw, typEsc, _ := r.findField(line, "type")
	typ, ok := attr.ParseType(bstr(r.unescaped(typRaw, typEsc)))
	if !ok {
		return r.errf("attr record: unknown type %q", typRaw)
	}
	propRaw, propEsc, _ := r.findField(line, "prop")
	props, err := attr.ParseProperties(bstr(r.unescaped(propRaw, propEsc)))
	if err != nil {
		return r.errf("attr record: %v", err)
	}
	nameRaw, nameEsc, _ := r.findField(line, "name")
	name := r.unescaped(nameRaw, nameEsc)
	if len(name) == 0 {
		return r.errf("attr record: missing name")
	}
	a, err := r.reg.Create(r.intern(name), typ, props)
	if err != nil {
		return r.errf("attr record: %v", err)
	}
	r.attrMap[id] = a
	if r.drop != nil {
		if r.keep[a.Name()] {
			delete(r.drop, id)
		} else {
			r.drop[id] = true
		}
	}
	return nil
}

func (r *Reader) readNodeLine(line []byte) error {
	idRaw, _, _ := r.findField(line, "id")
	id, err := strconv.ParseInt(bstr(idRaw), 10, 64)
	if err != nil {
		return r.errf("node record: bad id %q", idRaw)
	}
	aidRaw, _, _ := r.findField(line, "attr")
	aid, err := strconv.ParseInt(bstr(aidRaw), 10, 64)
	if err != nil {
		return r.errf("node record: bad attr %q", aidRaw)
	}
	a, ok := r.attrMap[aid]
	if !ok {
		return r.errf("node record: undefined attribute %d", aid)
	}
	parent := contexttree.InvalidNode
	if psRaw, _, _ := r.findField(line, "parent"); len(psRaw) > 0 {
		pid, err := strconv.ParseInt(bstr(psRaw), 10, 64)
		if err != nil {
			return r.errf("node record: bad parent %q", psRaw)
		}
		parent, ok = r.nodeMap[pid]
		if !ok {
			return r.errf("node record: undefined parent node %d", pid)
		}
	}
	dataRaw, dataEsc, _ := r.findField(line, "data")
	v, err := r.parseValue(r.unescaped(dataRaw, dataEsc), a.Type())
	if err != nil {
		return r.errf("node record: %v", err)
	}
	r.nodeMap[id] = r.tree.GetChild(parent, a, v)
	return nil
}

func (r *Reader) readEntryLine(line []byte) (attr.Entry, error) {
	aidRaw, _, _ := r.findField(line, "attr")
	aid, err := strconv.ParseInt(bstr(aidRaw), 10, 64)
	if err != nil {
		return attr.Entry{}, r.errf("bad attr id %q", aidRaw)
	}
	a, ok := r.attrMap[aid]
	if !ok {
		return attr.Entry{}, r.errf("undefined attribute %d", aid)
	}
	dataRaw, dataEsc, _ := r.findField(line, "data")
	v, err := r.parseValue(r.unescaped(dataRaw, dataEsc), a.Type())
	if err != nil {
		return attr.Entry{}, r.errf("%v", err)
	}
	return attr.Entry{Attr: a, Value: v}, nil
}

func (r *Reader) readCtxLine(line []byte, dst *snapshot.FlatRecord) error {
	// full counts entries before projection: the empty-record check must
	// see the record as written, not as projected (a record whose every
	// entry is projected away is still a record — AGGREGATE count counts
	// it — so it is returned empty rather than rejected).
	full := 0
	refRaw, _, _ := r.findField(line, "ref")
	r.refElems = splitListSpans(r.refElems[:0], refRaw)
	for _, e := range r.refElems {
		ref := r.unescaped(refRaw[e.lo:e.hi], e.esc)
		nid, err := strconv.ParseInt(bstr(ref), 10, 64)
		if err != nil {
			return r.errf("ctx record: bad node ref %q", ref)
		}
		local, ok := r.nodeMap[nid]
		if !ok {
			return r.errf("ctx record: undefined node %d", nid)
		}
		path, err := r.pathOf(local)
		if err != nil {
			return r.errf("ctx record: %v", err)
		}
		*dst = append(*dst, path.entries...)
		full += path.full
	}
	attrRaw, _, hasAttr := r.findField(line, "attr")
	dataRaw, _, hasData := r.findField(line, "data")
	r.attrElems = splitListSpans(r.attrElems[:0], attrRaw)
	r.dataElems = splitListSpans(r.dataElems[:0], dataRaw)
	nData := len(r.dataElems)
	// a present-but-empty data field is one empty value (the list split
	// cannot distinguish "" from an absent field)
	dataEmpty := hasData && nData == 0
	if dataEmpty {
		nData = 1
	}
	if hasAttr && len(r.attrElems) == 0 {
		return r.errf("ctx record: empty attr id list")
	}
	if len(r.attrElems) != nData {
		return r.errf("ctx record: %d attr ids but %d values", len(r.attrElems), nData)
	}
	for i := range r.attrElems {
		ae := r.attrElems[i]
		ab := r.unescaped(attrRaw[ae.lo:ae.hi], ae.esc)
		aid, err := strconv.ParseInt(bstr(ab), 10, 64)
		if err != nil {
			return r.errf("ctx record: bad attr id %q", ab)
		}
		a, ok := r.attrMap[aid]
		if !ok {
			return r.errf("ctx record: undefined attribute %d", aid)
		}
		var db []byte
		if !dataEmpty {
			de := r.dataElems[i]
			db = r.unescaped(dataRaw[de.lo:de.hi], de.esc)
		}
		full++
		if r.drop != nil && r.drop[aid] {
			// projected out: still validate non-string values so error
			// behavior matches the unprojected scan byte for byte
			// (string parsing cannot fail, so skip its intern copy)
			if a.Type() != attr.String {
				if _, err := attr.ParseAs(bstr(db), a.Type()); err != nil {
					return r.errf("ctx record: %v", err)
				}
			}
			continue
		}
		v, err := r.parseValue(db, a.Type())
		if err != nil {
			return r.errf("ctx record: %v", err)
		}
		*dst = append(*dst, attr.Entry{Attr: a, Value: v})
	}
	if full == 0 {
		return r.errf("ctx record: empty record")
	}
	if n := full - len(*dst); n > 0 {
		telProjDropped.Add(uint64(n))
	}
	return nil
}
