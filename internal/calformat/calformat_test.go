package calformat

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

type fixture struct {
	reg  *attr.Registry
	tree *contexttree.Tree
	fn   attr.Attribute
	iter attr.Attribute
	dur  attr.Attribute
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := attr.NewRegistry()
	return &fixture{
		reg:  reg,
		tree: contexttree.New(),
		fn:   reg.MustCreate("function", attr.String, attr.Nested),
		iter: reg.MustCreate("iteration", attr.Int, 0),
		dur:  reg.MustCreate("time.duration", attr.Float, attr.AsValue|attr.Aggregatable),
	}
}

func (fx *fixture) makeRecord(path []string, iter int64, dur float64) snapshot.Record {
	var entries []attr.Entry
	for _, p := range path {
		entries = append(entries, attr.Entry{Attr: fx.fn, Value: attr.StringV(p)})
	}
	var b snapshot.Builder
	if len(entries) > 0 {
		b.AddNode(fx.tree.GetPath(contexttree.InvalidNode, entries))
	}
	if iter >= 0 {
		b.AddNode(fx.tree.GetChild(contexttree.InvalidNode, fx.iter, attr.IntV(iter)))
	}
	b.AddImmediate(fx.dur, attr.FloatV(dur))
	return b.Record()
}

func roundTrip(t *testing.T, fx *fixture, recs []snapshot.Record) []snapshot.FlatRecord {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, fx.reg, fx.tree)
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// read into a fresh registry/tree to prove stream independence
	reg2 := attr.NewRegistry()
	reg2.MustCreate("decoy", attr.Int, 0) // shift ids
	tree2 := contexttree.New()
	rd := NewReader(&buf, reg2, tree2)
	out, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	fx := newFixture(t)
	recs := []snapshot.Record{
		fx.makeRecord([]string{"main"}, 0, 1.5),
		fx.makeRecord([]string{"main", "foo"}, 0, 2.5),
		fx.makeRecord([]string{"main", "foo"}, 1, 3.5),
		fx.makeRecord(nil, 2, 4.5),
	}
	got := roundTrip(t, fx, recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i, rec := range recs {
		want, err := rec.Unpack(fx.tree, fx.reg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].String() != want.String() {
			t.Errorf("record %d: got %s, want %s", i, got[i], want)
		}
	}
}

func TestNodeDefinitionsWrittenOnce(t *testing.T) {
	fx := newFixture(t)
	var buf bytes.Buffer
	w := NewWriter(&buf, fx.reg, fx.tree)
	r := fx.makeRecord([]string{"main", "foo"}, -1, 1)
	w.WriteRecord(r)
	w.WriteRecord(r)
	w.WriteRecord(r)
	w.Flush()
	text := buf.String()
	if n := strings.Count(text, "__rec=node"); n != 2 {
		t.Errorf("node records = %d, want 2 (main, main/foo):\n%s", n, text)
	}
	if n := strings.Count(text, "__rec=ctx"); n != 3 {
		t.Errorf("ctx records = %d, want 3", n)
	}
	if n := strings.Count(text, "__rec=attr"); n != 2 { // function + time.duration
		t.Errorf("attr records = %d, want 2:\n%s", n, text)
	}
}

func TestEscaping(t *testing.T) {
	fx := newFixture(t)
	weird := fx.reg.MustCreate("weird,attr=name", attr.String, attr.AsValue)
	var b snapshot.Builder
	b.AddImmediate(weird, attr.StringV("value,with=sep:and\\slash\nnewline"))
	b.AddImmediate(fx.dur, attr.FloatV(1))
	var buf bytes.Buffer
	w := NewWriter(&buf, fx.reg, fx.tree)
	if err := w.WriteRecord(b.Record()); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	rd := NewReader(bytes.NewReader(buf.Bytes()), attr.NewRegistry(), contexttree.New())
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v\nstream:\n%s", err, buf.String())
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	v, ok := recs[0].GetByName("weird,attr=name")
	if !ok || v.String() != "value,with=sep:and\\slash\nnewline" {
		t.Errorf("weird value = %q, %v", v.String(), ok)
	}
}

func TestWriteFlatAndGlobals(t *testing.T) {
	fx := newFixture(t)
	var buf bytes.Buffer
	w := NewWriter(&buf, fx.reg, fx.tree)
	exp := fx.reg.MustCreate("experiment", attr.String, attr.Global)
	if err := w.WriteGlobals([]attr.Entry{{Attr: exp, Value: attr.StringV("run1")}}); err != nil {
		t.Fatal(err)
	}
	flat := snapshot.FlatRecord{
		{Attr: fx.fn, Value: attr.StringV("main")},
		{Attr: fx.fn, Value: attr.StringV("foo")},
		{Attr: fx.dur, Value: attr.FloatV(7)},
	}
	if err := w.WriteFlat(flat); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	rd := NewReader(bytes.NewReader(buf.Bytes()), attr.NewRegistry(), contexttree.New())
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].String() != flat.String() {
		t.Errorf("flat round trip: %v", recs)
	}
	g := rd.Globals()
	if len(g) != 1 || g[0].Attr.Name() != "experiment" || g[0].Value.String() != "run1" {
		t.Errorf("globals = %v", g)
	}
}

func TestMultipleStreamsShareRegistry(t *testing.T) {
	// two independent streams (simulating per-process files) read into one
	// registry/tree must unify attributes
	fx1 := newFixture(t)
	fx2 := newFixture(t)
	var buf1, buf2 bytes.Buffer
	w1 := NewWriter(&buf1, fx1.reg, fx1.tree)
	w2 := NewWriter(&buf2, fx2.reg, fx2.tree)
	w1.WriteRecord(fx1.makeRecord([]string{"a"}, 0, 1))
	w2.WriteRecord(fx2.makeRecord([]string{"a"}, 0, 2))
	w1.Flush()
	w2.Flush()

	reg := attr.NewRegistry()
	tree := contexttree.New()
	r1, _ := NewReader(&buf1, reg, tree).ReadAll()
	r2, _ := NewReader(&buf2, reg, tree).ReadAll()
	if r1[0][0].Attr.ID() != r2[0][0].Attr.ID() {
		t.Error("same attribute from two streams got different ids")
	}
	if reg.Len() != 3 { // function, iteration, time.duration
		t.Errorf("registry has %d attrs, want 3", reg.Len())
	}
}

func TestReaderErrors(t *testing.T) {
	cases := map[string]string{
		"no rec field":        "id=1,attr=2\n",
		"bad attr id":         "__rec=attr,id=x,name=a,type=int\n",
		"bad attr type":       "__rec=attr,id=0,name=a,type=banana\n",
		"missing attr name":   "__rec=attr,id=0,type=int\n",
		"bad prop":            "__rec=attr,id=0,name=a,type=int,prop=zzz\n",
		"node before attr":    "__rec=node,id=0,attr=5,data=x,parent=\n",
		"bad node id":         "__rec=attr,id=0,name=a,type=string\n__rec=node,id=z,attr=0,data=x,parent=\n",
		"bad parent":          "__rec=attr,id=0,name=a,type=string\n__rec=node,id=0,attr=0,data=x,parent=9\n",
		"ctx undefined node":  "__rec=ctx,ref=3\n",
		"ctx undefined attr":  "__rec=ctx,attr=9,data=1\n",
		"ctx length mismatch": "__rec=attr,id=0,name=a,type=int\n__rec=ctx,attr=0,data=1:2\n",
		"ctx bad value":       "__rec=attr,id=0,name=a,type=int\n__rec=ctx,attr=0,data=xyz\n",
		"ctx empty":           "__rec=ctx\n",
		"field without =":     "__rec=ctx,bogus\n",
		"node bad data type":  "__rec=attr,id=0,name=a,type=int\n__rec=node,id=0,attr=0,data=xx,parent=\n",
		"globals bad attr":    "__rec=globals,attr=x,data=1\n",
	}
	for name, in := range cases {
		rd := NewReader(strings.NewReader(in), attr.NewRegistry(), contexttree.New())
		_, err := rd.ReadAll()
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReaderSkipsUnknownRecordsAndBlankLines(t *testing.T) {
	in := "\n__rec=future-thing,x=1\n__rec=attr,id=0,name=a,type=int,prop=\n__rec=ctx,attr=0,data=5\n\n"
	rd := NewReader(strings.NewReader(in), attr.NewRegistry(), contexttree.New())
	recs, err := rd.ReadAll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	if v, _ := recs[0].GetByName("a"); v.AsInt() != 5 {
		t.Errorf("value = %v", v)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(paths []uint8, iters []int8, durs []uint16) bool {
		fx := &fixture{
			reg:  attr.NewRegistry(),
			tree: contexttree.New(),
		}
		fx.fn = fx.reg.MustCreate("function", attr.String, attr.Nested)
		fx.iter = fx.reg.MustCreate("iteration", attr.Int, 0)
		fx.dur = fx.reg.MustCreate("time.duration", attr.Float, attr.AsValue)

		n := len(paths)
		if n > 20 {
			n = 20
		}
		var recs []snapshot.Record
		rng := rand.New(rand.NewSource(int64(n)))
		names := []string{"main", "foo", "bar", "baz"}
		for i := 0; i < n; i++ {
			depth := int(paths[i]%4) + 1
			var path []string
			for d := 0; d < depth; d++ {
				path = append(path, names[rng.Intn(len(names))])
			}
			it := int64(-1)
			if i < len(iters) && iters[i] >= 0 {
				it = int64(iters[i])
			}
			d := 1.0
			if i < len(durs) {
				d = float64(durs[i]) / 4
			}
			recs = append(recs, fx.makeRecord(path, it, d))
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, fx.reg, fx.tree)
		for _, r := range recs {
			if err := w.WriteRecord(r); err != nil {
				return false
			}
		}
		w.Flush()
		rd := NewReader(&buf, attr.NewRegistry(), contexttree.New())
		got, err := rd.ReadAll()
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i, rec := range recs {
			want, err := rec.Unpack(fx.tree, fx.reg)
			if err != nil || got[i].String() != want.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReaderEOFIsClean(t *testing.T) {
	rd := NewReader(strings.NewReader(""), attr.NewRegistry(), contexttree.New())
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("Next on empty = %v, want io.EOF", err)
	}
}

func TestSplitList(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a:b:c", []string{"a", "b", "c"}},
		{`a\:b:c`, []string{"a:b", "c"}},
		{"a::b", []string{"a", "", "b"}},
	}
	for _, tt := range tests {
		got := splitList(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("splitList(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("splitList(%q)[%d] = %q, want %q", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}
