// Package calformat implements the text stream format for performance
// datasets, modeled on Caliper's .cali format. A stream is a sequence of
// lines, each a record of comma-separated key=value fields:
//
//	__rec=attr,id=3,name=time.duration,type=int,prop=asvalue
//	__rec=node,id=0,attr=1,data=main,parent=
//	__rec=node,id=1,attr=1,data=foo,parent=0
//	__rec=ctx,ref=1,attr=3,data=42
//	__rec=globals,attr=5,data=quartz
//
// Attribute and node definitions appear before the records that reference
// them, so streams can be written incrementally and read in one pass. The
// node records encode the context tree, giving the same prefix compression
// as the in-memory snapshot representation.
//
// The Writer lives in this file; the byte-oriented zero-allocation Reader
// lives in decode.go, and the legacy string/map-based decoder it is fuzzed
// against lives in legacy.go.
package calformat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). All counters are
// no-ops (one atomic load) unless telemetry is enabled.
var (
	telRecsRead     = telemetry.NewCounter("caligo.calformat.records.read")
	telBytesRead    = telemetry.NewCounter("caligo.calformat.bytes.read")
	telDecodeErrors = telemetry.NewCounter("caligo.calformat.decode.errors")
	telRecsWritten  = telemetry.NewCounter("caligo.calformat.records.written")
	telBytesWritten = telemetry.NewCounter("caligo.calformat.bytes.written")
	telInterned     = telemetry.NewCounter("caligo.calformat.interned")
	telScratchBytes = telemetry.NewCounter("caligo.calformat.scratch.bytes")
)

// escape protects field- and list-separator characters within values.
// Escaped characters: backslash, comma, equals, colon, and newlines.
func escape(s string) string {
	if !strings.ContainsAny(s, "\\,=:\n\r") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			sb.WriteString(`\\`)
		case ',':
			sb.WriteString(`\,`)
		case '=':
			sb.WriteString(`\=`)
		case ':':
			sb.WriteString(`\:`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// Writer emits a .cali stream. It tracks which attribute and node
// definitions have been written and emits them on first use, so records
// can be written in any order. Writer is not safe for concurrent use.
type Writer struct {
	w         *bufio.Writer
	reg       *attr.Registry
	tree      *contexttree.Tree
	wroteAttr map[attr.ID]bool
	wroteNode map[contexttree.NodeID]bool

	// metaLines counts the metadata lines (attr, node, globals) written so
	// far. The block-aware IndexingWriter reads it to record which blocks
	// a reader can skip without a metadata scan (see index.go).
	metaLines int
}

// NewWriter returns a Writer resolving attributes through reg and node
// references through tree.
func NewWriter(w io.Writer, reg *attr.Registry, tree *contexttree.Tree) *Writer {
	return &Writer{
		w:         bufio.NewWriter(w),
		reg:       reg,
		tree:      tree,
		wroteAttr: map[attr.ID]bool{},
		wroteNode: map[contexttree.NodeID]bool{},
	}
}

// ensureAttr writes the attribute definition if not yet written.
func (w *Writer) ensureAttr(a attr.Attribute) error {
	if w.wroteAttr[a.ID()] {
		return nil
	}
	w.wroteAttr[a.ID()] = true
	n, err := fmt.Fprintf(w.w, "__rec=attr,id=%d,name=%s,type=%s,prop=%s\n",
		a.ID(), escape(a.Name()), a.Type(), escape(a.Properties().String()))
	telBytesWritten.Add(uint64(n))
	w.metaLines++
	return err
}

// ensureNode writes the node definition chain (parents first).
func (w *Writer) ensureNode(n contexttree.NodeID) error {
	if n == contexttree.InvalidNode || w.wroteNode[n] {
		return nil
	}
	parent := w.tree.Parent(n)
	if err := w.ensureNode(parent); err != nil {
		return err
	}
	aid, val, err := w.tree.Entry(n)
	if err != nil {
		return err
	}
	a, ok := w.reg.Get(aid)
	if !ok {
		return fmt.Errorf("calformat: node %d references unknown attribute %d", n, aid)
	}
	if err := w.ensureAttr(a); err != nil {
		return err
	}
	w.wroteNode[n] = true
	parentStr := ""
	if parent != contexttree.InvalidNode {
		parentStr = strconv.Itoa(int(parent))
	}
	written, err := fmt.Fprintf(w.w, "__rec=node,id=%d,attr=%d,data=%s,parent=%s\n",
		n, aid, escape(val.String()), parentStr)
	telBytesWritten.Add(uint64(written))
	w.metaLines++
	return err
}

// WriteRecord writes one compressed snapshot record. Empty records are
// skipped (an aggregation can produce an all-empty-key group with no
// surviving result entries; there is nothing to encode for it).
func (w *Writer) WriteRecord(rec snapshot.Record) error {
	if rec.Empty() {
		return nil
	}
	for _, n := range rec.Nodes {
		if err := w.ensureNode(n); err != nil {
			return err
		}
	}
	for _, e := range rec.Imm {
		if err := w.ensureAttr(e.Attr); err != nil {
			return err
		}
	}
	var sb strings.Builder
	sb.WriteString("__rec=ctx")
	if len(rec.Nodes) > 0 {
		sb.WriteString(",ref=")
		for i, n := range rec.Nodes {
			if i > 0 {
				sb.WriteByte(':')
			}
			sb.WriteString(strconv.Itoa(int(n)))
		}
	}
	if len(rec.Imm) > 0 {
		sb.WriteString(",attr=")
		for i, e := range rec.Imm {
			if i > 0 {
				sb.WriteByte(':')
			}
			sb.WriteString(strconv.Itoa(int(e.Attr.ID())))
		}
		sb.WriteString(",data=")
		for i, e := range rec.Imm {
			if i > 0 {
				sb.WriteByte(':')
			}
			sb.WriteString(escape(e.Value.String()))
		}
	}
	sb.WriteByte('\n')
	n, err := w.w.WriteString(sb.String())
	telRecsWritten.Inc()
	telBytesWritten.Add(uint64(n))
	return err
}

// WriteFlat writes a fully expanded record as immediate entries. This is
// used for aggregation results, where prefix compression has no benefit.
func (w *Writer) WriteFlat(rec snapshot.FlatRecord) error {
	return w.WriteRecord(snapshot.Record{Imm: rec})
}

// WriteGlobals writes per-run metadata entries.
func (w *Writer) WriteGlobals(entries []attr.Entry) error {
	for _, e := range entries {
		if err := w.ensureAttr(e.Attr); err != nil {
			return err
		}
		n, err := fmt.Fprintf(w.w, "__rec=globals,attr=%d,data=%s\n",
			e.Attr.ID(), escape(e.Value.String()))
		telBytesWritten.Add(uint64(n))
		w.metaLines++
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }
