// Package calformat implements the text stream format for performance
// datasets, modeled on Caliper's .cali format. A stream is a sequence of
// lines, each a record of comma-separated key=value fields:
//
//	__rec=attr,id=3,name=time.duration,type=int,prop=asvalue
//	__rec=node,id=0,attr=1,data=main,parent=
//	__rec=node,id=1,attr=1,data=foo,parent=0
//	__rec=ctx,ref=1,attr=3,data=42
//	__rec=globals,attr=5,data=quartz
//
// Attribute and node definitions appear before the records that reference
// them, so streams can be written incrementally and read in one pass. The
// node records encode the context tree, giving the same prefix compression
// as the in-memory snapshot representation.
package calformat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). All counters are
// no-ops (one atomic load) unless telemetry is enabled.
var (
	telRecsRead     = telemetry.NewCounter("caligo.calformat.records.read")
	telBytesRead    = telemetry.NewCounter("caligo.calformat.bytes.read")
	telDecodeErrors = telemetry.NewCounter("caligo.calformat.decode.errors")
	telRecsWritten  = telemetry.NewCounter("caligo.calformat.records.written")
	telBytesWritten = telemetry.NewCounter("caligo.calformat.bytes.written")
)

// escape protects field- and list-separator characters within values.
// Escaped characters: backslash, comma, equals, colon, and newlines.
func escape(s string) string {
	if !strings.ContainsAny(s, "\\,=:\n\r") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			sb.WriteString(`\\`)
		case ',':
			sb.WriteString(`\,`)
		case '=':
			sb.WriteString(`\=`)
		case ':':
			sb.WriteString(`\:`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// unescape reverses escape.
func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			default:
				sb.WriteByte(s[i])
			}
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// splitFields splits a record line into key=value pairs. Values are
// returned raw (still escaped) so that list values can be split on ':'
// before unescaping; keys are unescaped here.
func splitFields(line string) ([][2]string, error) {
	var fields [][2]string
	var key, val strings.Builder
	inKey := true
	flush := func() error {
		if key.Len() == 0 && val.Len() == 0 && inKey {
			return nil // empty segment
		}
		if inKey {
			return fmt.Errorf("calformat: field %q has no '='", key.String())
		}
		fields = append(fields, [2]string{unescape(key.String()), val.String()})
		key.Reset()
		val.Reset()
		inKey = true
		return nil
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\\' && i+1 < len(line):
			// keep the escape sequence intact for later unescaping
			if inKey {
				key.WriteByte(c)
				key.WriteByte(line[i+1])
			} else {
				val.WriteByte(c)
				val.WriteByte(line[i+1])
			}
			i++
		case c == ',':
			if err := flush(); err != nil {
				return nil, err
			}
		case c == '=' && inKey:
			inKey = false
		default:
			if inKey {
				key.WriteByte(c)
			} else {
				val.WriteByte(c)
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return fields, nil
}

// Writer emits a .cali stream. It tracks which attribute and node
// definitions have been written and emits them on first use, so records
// can be written in any order. Writer is not safe for concurrent use.
type Writer struct {
	w         *bufio.Writer
	reg       *attr.Registry
	tree      *contexttree.Tree
	wroteAttr map[attr.ID]bool
	wroteNode map[contexttree.NodeID]bool
}

// NewWriter returns a Writer resolving attributes through reg and node
// references through tree.
func NewWriter(w io.Writer, reg *attr.Registry, tree *contexttree.Tree) *Writer {
	return &Writer{
		w:         bufio.NewWriter(w),
		reg:       reg,
		tree:      tree,
		wroteAttr: map[attr.ID]bool{},
		wroteNode: map[contexttree.NodeID]bool{},
	}
}

// ensureAttr writes the attribute definition if not yet written.
func (w *Writer) ensureAttr(a attr.Attribute) error {
	if w.wroteAttr[a.ID()] {
		return nil
	}
	w.wroteAttr[a.ID()] = true
	n, err := fmt.Fprintf(w.w, "__rec=attr,id=%d,name=%s,type=%s,prop=%s\n",
		a.ID(), escape(a.Name()), a.Type(), escape(a.Properties().String()))
	telBytesWritten.Add(uint64(n))
	return err
}

// ensureNode writes the node definition chain (parents first).
func (w *Writer) ensureNode(n contexttree.NodeID) error {
	if n == contexttree.InvalidNode || w.wroteNode[n] {
		return nil
	}
	parent := w.tree.Parent(n)
	if err := w.ensureNode(parent); err != nil {
		return err
	}
	aid, val, err := w.tree.Entry(n)
	if err != nil {
		return err
	}
	a, ok := w.reg.Get(aid)
	if !ok {
		return fmt.Errorf("calformat: node %d references unknown attribute %d", n, aid)
	}
	if err := w.ensureAttr(a); err != nil {
		return err
	}
	w.wroteNode[n] = true
	parentStr := ""
	if parent != contexttree.InvalidNode {
		parentStr = strconv.Itoa(int(parent))
	}
	written, err := fmt.Fprintf(w.w, "__rec=node,id=%d,attr=%d,data=%s,parent=%s\n",
		n, aid, escape(val.String()), parentStr)
	telBytesWritten.Add(uint64(written))
	return err
}

// WriteRecord writes one compressed snapshot record. Empty records are
// skipped (an aggregation can produce an all-empty-key group with no
// surviving result entries; there is nothing to encode for it).
func (w *Writer) WriteRecord(rec snapshot.Record) error {
	if rec.Empty() {
		return nil
	}
	for _, n := range rec.Nodes {
		if err := w.ensureNode(n); err != nil {
			return err
		}
	}
	for _, e := range rec.Imm {
		if err := w.ensureAttr(e.Attr); err != nil {
			return err
		}
	}
	var sb strings.Builder
	sb.WriteString("__rec=ctx")
	if len(rec.Nodes) > 0 {
		sb.WriteString(",ref=")
		for i, n := range rec.Nodes {
			if i > 0 {
				sb.WriteByte(':')
			}
			sb.WriteString(strconv.Itoa(int(n)))
		}
	}
	if len(rec.Imm) > 0 {
		sb.WriteString(",attr=")
		for i, e := range rec.Imm {
			if i > 0 {
				sb.WriteByte(':')
			}
			sb.WriteString(strconv.Itoa(int(e.Attr.ID())))
		}
		sb.WriteString(",data=")
		for i, e := range rec.Imm {
			if i > 0 {
				sb.WriteByte(':')
			}
			sb.WriteString(escape(e.Value.String()))
		}
	}
	sb.WriteByte('\n')
	n, err := w.w.WriteString(sb.String())
	telRecsWritten.Inc()
	telBytesWritten.Add(uint64(n))
	return err
}

// WriteFlat writes a fully expanded record as immediate entries. This is
// used for aggregation results, where prefix compression has no benefit.
func (w *Writer) WriteFlat(rec snapshot.FlatRecord) error {
	return w.WriteRecord(snapshot.Record{Imm: rec})
}

// WriteGlobals writes per-run metadata entries.
func (w *Writer) WriteGlobals(entries []attr.Entry) error {
	for _, e := range entries {
		if err := w.ensureAttr(e.Attr); err != nil {
			return err
		}
		n, err := fmt.Fprintf(w.w, "__rec=globals,attr=%d,data=%s\n",
			e.Attr.ID(), escape(e.Value.String()))
		telBytesWritten.Add(uint64(n))
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader parses a .cali stream. Stream-local attribute ids and node ids
// are remapped into the supplied registry and context tree, so multiple
// files can be read into one shared registry/tree (the basis for
// cross-process aggregation of per-process files).
type Reader struct {
	sc      *bufio.Scanner
	reg     *attr.Registry
	tree    *contexttree.Tree
	attrMap map[int64]attr.Attribute
	nodeMap map[int64]contexttree.NodeID
	globals []attr.Entry
	line    int
}

// NewReader returns a Reader merging stream contents into reg and tree.
func NewReader(r io.Reader, reg *attr.Registry, tree *contexttree.Tree) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	return &Reader{
		sc:      sc,
		reg:     reg,
		tree:    tree,
		attrMap: map[int64]attr.Attribute{},
		nodeMap: map[int64]contexttree.NodeID{},
	}
}

// Globals returns the metadata entries read so far.
func (r *Reader) Globals() []attr.Entry { return r.globals }

func (r *Reader) errf(format string, args ...any) error {
	telDecodeErrors.Inc()
	return fmt.Errorf("calformat: line %d: %s", r.line, fmt.Sprintf(format, args...))
}

// Next returns the next snapshot record in the stream, fully expanded.
// It returns io.EOF after the last record.
func (r *Reader) Next() (snapshot.FlatRecord, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimRight(r.sc.Text(), "\r")
		telBytesRead.Add(uint64(len(r.sc.Bytes()) + 1)) // +1: stripped newline
		if line == "" {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, r.errf("%v", err)
		}
		fm := map[string]string{}
		for _, f := range fields {
			fm[f[0]] = f[1]
		}
		has := map[string]bool{}
		for _, f := range fields {
			has[f[0]] = true
		}
		switch fm["__rec"] {
		case "attr":
			if err := r.readAttr(fm); err != nil {
				return nil, err
			}
		case "node":
			if err := r.readNode(fm); err != nil {
				return nil, err
			}
		case "globals":
			e, err := r.readEntry(fm)
			if err != nil {
				return nil, err
			}
			r.globals = append(r.globals, e)
		case "ctx":
			rec, err := r.readCtx(fm, has)
			if err == nil {
				telRecsRead.Inc()
			}
			return rec, err
		case "":
			return nil, r.errf("record without __rec field")
		default:
			// unknown record kinds are skipped for forward compatibility
		}
	}
	if err := r.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// ReadAll reads all remaining records.
func (r *Reader) ReadAll() ([]snapshot.FlatRecord, error) {
	var out []snapshot.FlatRecord
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func (r *Reader) readAttr(fm map[string]string) error {
	id, err := strconv.ParseInt(fm["id"], 10, 64)
	if err != nil {
		return r.errf("attr record: bad id %q", fm["id"])
	}
	typ, ok := attr.ParseType(unescape(fm["type"]))
	if !ok {
		return r.errf("attr record: unknown type %q", fm["type"])
	}
	props, err := attr.ParseProperties(unescape(fm["prop"]))
	if err != nil {
		return r.errf("attr record: %v", err)
	}
	name := unescape(fm["name"])
	if name == "" {
		return r.errf("attr record: missing name")
	}
	a, err := r.reg.Create(name, typ, props)
	if err != nil {
		return r.errf("attr record: %v", err)
	}
	r.attrMap[id] = a
	return nil
}

func (r *Reader) readNode(fm map[string]string) error {
	id, err := strconv.ParseInt(fm["id"], 10, 64)
	if err != nil {
		return r.errf("node record: bad id %q", fm["id"])
	}
	aid, err := strconv.ParseInt(fm["attr"], 10, 64)
	if err != nil {
		return r.errf("node record: bad attr %q", fm["attr"])
	}
	a, ok := r.attrMap[aid]
	if !ok {
		return r.errf("node record: undefined attribute %d", aid)
	}
	parent := contexttree.InvalidNode
	if ps := fm["parent"]; ps != "" {
		pid, err := strconv.ParseInt(ps, 10, 64)
		if err != nil {
			return r.errf("node record: bad parent %q", ps)
		}
		parent, ok = r.nodeMap[pid]
		if !ok {
			return r.errf("node record: undefined parent node %d", pid)
		}
	}
	v, err := attr.ParseAs(unescape(fm["data"]), a.Type())
	if err != nil {
		return r.errf("node record: %v", err)
	}
	r.nodeMap[id] = r.tree.GetChild(parent, a, v)
	return nil
}

func (r *Reader) readEntry(fm map[string]string) (attr.Entry, error) {
	aid, err := strconv.ParseInt(fm["attr"], 10, 64)
	if err != nil {
		return attr.Entry{}, r.errf("bad attr id %q", fm["attr"])
	}
	a, ok := r.attrMap[aid]
	if !ok {
		return attr.Entry{}, r.errf("undefined attribute %d", aid)
	}
	v, err := attr.ParseAs(unescape(fm["data"]), a.Type())
	if err != nil {
		return attr.Entry{}, r.errf("%v", err)
	}
	return attr.Entry{Attr: a, Value: v}, nil
}

// splitList splits a raw (still escaped) ':'-separated list and unescapes
// each element.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && i+1 < len(s):
			sb.WriteByte(s[i])
			sb.WriteByte(s[i+1])
			i++
		case s[i] == ':':
			out = append(out, unescape(sb.String()))
			sb.Reset()
		default:
			sb.WriteByte(s[i])
		}
	}
	out = append(out, unescape(sb.String()))
	return out
}

func (r *Reader) readCtx(fm map[string]string, has map[string]bool) (snapshot.FlatRecord, error) {
	var rec snapshot.FlatRecord
	for _, ref := range splitList(fm["ref"]) {
		nid, err := strconv.ParseInt(ref, 10, 64)
		if err != nil {
			return nil, r.errf("ctx record: bad node ref %q", ref)
		}
		local, ok := r.nodeMap[nid]
		if !ok {
			return nil, r.errf("ctx record: undefined node %d", nid)
		}
		path, err := r.tree.Path(local, r.reg)
		if err != nil {
			return nil, r.errf("ctx record: %v", err)
		}
		rec = append(rec, path...)
	}
	attrs := splitList(fm["attr"])
	data := splitList(fm["data"])
	// a present-but-empty data field is one empty value (splitList cannot
	// distinguish "" from an absent field)
	if has["data"] && len(data) == 0 {
		data = []string{""}
	}
	if has["attr"] && len(attrs) == 0 {
		return nil, r.errf("ctx record: empty attr id list")
	}
	if len(attrs) != len(data) {
		return nil, r.errf("ctx record: %d attr ids but %d values", len(attrs), len(data))
	}
	for i := range attrs {
		aid, err := strconv.ParseInt(attrs[i], 10, 64)
		if err != nil {
			return nil, r.errf("ctx record: bad attr id %q", attrs[i])
		}
		a, ok := r.attrMap[aid]
		if !ok {
			return nil, r.errf("ctx record: undefined attribute %d", aid)
		}
		v, err := attr.ParseAs(data[i], a.Type())
		if err != nil {
			return nil, r.errf("ctx record: %v", err)
		}
		rec = append(rec, attr.Entry{Attr: a, Value: v})
	}
	if len(rec) == 0 {
		return nil, r.errf("ctx record: empty record")
	}
	return rec, nil
}
