package calformat

// The legacy line decoder: the original string- and map-based
// implementation of the .cali stream reader, kept as the differential-fuzz
// oracle for the byte-oriented decoder in decode.go (see FuzzDecodeDiff).
// It allocates a line copy, a field slice, and two maps per record; the
// production Reader must match its output exactly while allocating
// (near) nothing in steady state. Do not "optimize" this file — its value
// is being the obviously-correct reference semantics.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

// unescape reverses escape.
func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			default:
				sb.WriteByte(s[i])
			}
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// splitFields splits a record line into key=value pairs. Values are
// returned raw (still escaped) so that list values can be split on ':'
// before unescaping; keys are unescaped here.
func splitFields(line string) ([][2]string, error) {
	var fields [][2]string
	var key, val strings.Builder
	inKey := true
	flush := func() error {
		if key.Len() == 0 && val.Len() == 0 && inKey {
			return nil // empty segment
		}
		if inKey {
			return fmt.Errorf("calformat: field %q has no '='", key.String())
		}
		fields = append(fields, [2]string{unescape(key.String()), val.String()})
		key.Reset()
		val.Reset()
		inKey = true
		return nil
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\\' && i+1 < len(line):
			// keep the escape sequence intact for later unescaping
			if inKey {
				key.WriteByte(c)
				key.WriteByte(line[i+1])
			} else {
				val.WriteByte(c)
				val.WriteByte(line[i+1])
			}
			i++
		case c == ',':
			if err := flush(); err != nil {
				return nil, err
			}
		case c == '=' && inKey:
			inKey = false
		default:
			if inKey {
				key.WriteByte(c)
			} else {
				val.WriteByte(c)
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return fields, nil
}

// splitList splits a raw (still escaped) ':'-separated list and unescapes
// each element.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && i+1 < len(s):
			sb.WriteByte(s[i])
			sb.WriteByte(s[i+1])
			i++
		case s[i] == ':':
			out = append(out, unescape(sb.String()))
			sb.Reset()
		default:
			sb.WriteByte(s[i])
		}
	}
	out = append(out, unescape(sb.String()))
	return out
}

// oracleReader is the legacy Reader: same remapping semantics as Reader,
// implemented with per-line strings and maps. Telemetry is deliberately
// not wired up — the oracle only runs in tests.
type oracleReader struct {
	sc      *bufio.Scanner
	reg     *attr.Registry
	tree    *contexttree.Tree
	attrMap map[int64]attr.Attribute
	nodeMap map[int64]contexttree.NodeID
	globals []attr.Entry
	line    int
}

// newOracleReader returns the legacy reader merging stream contents into
// reg and tree.
func newOracleReader(r io.Reader, reg *attr.Registry, tree *contexttree.Tree) *oracleReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	return &oracleReader{
		sc:      sc,
		reg:     reg,
		tree:    tree,
		attrMap: map[int64]attr.Attribute{},
		nodeMap: map[int64]contexttree.NodeID{},
	}
}

// Globals returns the metadata entries read so far.
func (r *oracleReader) Globals() []attr.Entry { return r.globals }

func (r *oracleReader) errf(format string, args ...any) error {
	return fmt.Errorf("calformat: line %d: %s", r.line, fmt.Sprintf(format, args...))
}

// Next returns the next snapshot record in the stream, fully expanded.
// It returns io.EOF after the last record.
func (r *oracleReader) Next() (snapshot.FlatRecord, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimRight(r.sc.Text(), "\r")
		if line == "" {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, r.errf("%v", err)
		}
		fm := map[string]string{}
		for _, f := range fields {
			fm[f[0]] = f[1]
		}
		has := map[string]bool{}
		for _, f := range fields {
			has[f[0]] = true
		}
		switch fm["__rec"] {
		case "attr":
			if err := r.readAttr(fm); err != nil {
				return nil, err
			}
		case "node":
			if err := r.readNode(fm); err != nil {
				return nil, err
			}
		case "globals":
			e, err := r.readEntry(fm)
			if err != nil {
				return nil, err
			}
			r.globals = append(r.globals, e)
		case "ctx":
			return r.readCtx(fm, has)
		case "":
			return nil, r.errf("record without __rec field")
		default:
			// unknown record kinds are skipped for forward compatibility
		}
	}
	if err := r.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// ReadAll reads all remaining records.
func (r *oracleReader) ReadAll() ([]snapshot.FlatRecord, error) {
	var out []snapshot.FlatRecord
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func (r *oracleReader) readAttr(fm map[string]string) error {
	id, err := strconv.ParseInt(fm["id"], 10, 64)
	if err != nil {
		return r.errf("attr record: bad id %q", fm["id"])
	}
	typ, ok := attr.ParseType(unescape(fm["type"]))
	if !ok {
		return r.errf("attr record: unknown type %q", fm["type"])
	}
	props, err := attr.ParseProperties(unescape(fm["prop"]))
	if err != nil {
		return r.errf("attr record: %v", err)
	}
	name := unescape(fm["name"])
	if name == "" {
		return r.errf("attr record: missing name")
	}
	a, err := r.reg.Create(name, typ, props)
	if err != nil {
		return r.errf("attr record: %v", err)
	}
	r.attrMap[id] = a
	return nil
}

func (r *oracleReader) readNode(fm map[string]string) error {
	id, err := strconv.ParseInt(fm["id"], 10, 64)
	if err != nil {
		return r.errf("node record: bad id %q", fm["id"])
	}
	aid, err := strconv.ParseInt(fm["attr"], 10, 64)
	if err != nil {
		return r.errf("node record: bad attr %q", fm["attr"])
	}
	a, ok := r.attrMap[aid]
	if !ok {
		return r.errf("node record: undefined attribute %d", aid)
	}
	parent := contexttree.InvalidNode
	if ps := fm["parent"]; ps != "" {
		pid, err := strconv.ParseInt(ps, 10, 64)
		if err != nil {
			return r.errf("node record: bad parent %q", ps)
		}
		parent, ok = r.nodeMap[pid]
		if !ok {
			return r.errf("node record: undefined parent node %d", pid)
		}
	}
	v, err := attr.ParseAs(unescape(fm["data"]), a.Type())
	if err != nil {
		return r.errf("node record: %v", err)
	}
	r.nodeMap[id] = r.tree.GetChild(parent, a, v)
	return nil
}

func (r *oracleReader) readEntry(fm map[string]string) (attr.Entry, error) {
	aid, err := strconv.ParseInt(fm["attr"], 10, 64)
	if err != nil {
		return attr.Entry{}, r.errf("bad attr id %q", fm["attr"])
	}
	a, ok := r.attrMap[aid]
	if !ok {
		return attr.Entry{}, r.errf("undefined attribute %d", aid)
	}
	v, err := attr.ParseAs(unescape(fm["data"]), a.Type())
	if err != nil {
		return attr.Entry{}, r.errf("%v", err)
	}
	return attr.Entry{Attr: a, Value: v}, nil
}

func (r *oracleReader) readCtx(fm map[string]string, has map[string]bool) (snapshot.FlatRecord, error) {
	var rec snapshot.FlatRecord
	for _, ref := range splitList(fm["ref"]) {
		nid, err := strconv.ParseInt(ref, 10, 64)
		if err != nil {
			return nil, r.errf("ctx record: bad node ref %q", ref)
		}
		local, ok := r.nodeMap[nid]
		if !ok {
			return nil, r.errf("ctx record: undefined node %d", nid)
		}
		path, err := r.tree.Path(local, r.reg)
		if err != nil {
			return nil, r.errf("ctx record: %v", err)
		}
		rec = append(rec, path...)
	}
	attrs := splitList(fm["attr"])
	data := splitList(fm["data"])
	// a present-but-empty data field is one empty value (splitList cannot
	// distinguish "" from an absent field)
	if has["data"] && len(data) == 0 {
		data = []string{""}
	}
	if has["attr"] && len(attrs) == 0 {
		return nil, r.errf("ctx record: empty attr id list")
	}
	if len(attrs) != len(data) {
		return nil, r.errf("ctx record: %d attr ids but %d values", len(attrs), len(data))
	}
	for i := range attrs {
		aid, err := strconv.ParseInt(attrs[i], 10, 64)
		if err != nil {
			return nil, r.errf("ctx record: bad attr id %q", attrs[i])
		}
		a, ok := r.attrMap[aid]
		if !ok {
			return nil, r.errf("ctx record: undefined attribute %d", aid)
		}
		v, err := attr.ParseAs(data[i], a.Type())
		if err != nil {
			return nil, r.errf("ctx record: %v", err)
		}
		rec = append(rec, attr.Entry{Attr: a, Value: v})
	}
	if len(rec) == 0 {
		return nil, r.errf("ctx record: empty record")
	}
	return rec, nil
}
