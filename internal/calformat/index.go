package calformat

// Block-structured sidecar indexes for .cali streams.
//
// A .cali file is divided into blocks of a fixed target record count. For
// each block the index records the exact byte span, the record count, the
// number of metadata lines (attr/node/globals definitions) inside the
// span, and per-attribute zone maps: numeric min/max bounds and small
// distinct-string sets with an overflow marker. Query planning
// (internal/query/scan.go) uses the zone maps to skip whole files and
// blocks that cannot satisfy a compiled WHERE condition, and the byte
// spans to shard one large file across scan workers.
//
// The index lives in a sidecar file next to the data (<file>.cali.idx) so
// existing .cali files stay valid and writable by tools that know nothing
// about indexes. Staleness is detected at load time by content length
// plus a quick content hash (FNV-1a over the length and the first and
// last 64 KiB); a full-content hash is also stored and checked by
// `cali-index -verify`. A stale, corrupt, or version-mismatched index is
// never used — readers fall back to a full scan.
//
// Zone maps track every entry occurrence of an attribute in a block (a
// record can carry the same attribute several times along its context
// path). That is a superset of what WHERE evaluation sees (the last
// occurrence per record), which keeps pruning conservative: if no
// occurrence in a block can satisfy a condition, no record's last
// occurrence can either. Numeric bounds are tracked as float64, exactly
// the domain the engine compares in, and a NaN occurrence widens the
// bounds to (-Inf, +Inf) so NaN's compare-equal-to-everything behavior
// (attr.Compare returns 0) can never justify a skip.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"

	"caligo/internal/attr"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

var (
	telIndexBuilt  = telemetry.NewCounter("caligo.index.built")
	telProjDropped = telemetry.NewCounter("caligo.index.proj.dropped")
)

// Index format constants.
const (
	// IndexVersion is bumped on any incompatible format change; readers
	// reject other versions and fall back to a full scan.
	IndexVersion = 1

	indexMagic = "CALIDX1\n"

	// DefaultBlockRecords is the default block granularity. Small enough
	// that selective queries skip most of a large file, large enough that
	// per-block overhead (zones, scan restarts) stays negligible.
	DefaultBlockRecords = 1024

	// DefaultMaxDistinct bounds the distinct-string set per zone; one
	// more distinct value marks the zone overflowed (no string pruning).
	DefaultMaxDistinct = 16

	// quickHashWindow is how much of each end of the file the staleness
	// hash covers (plus the exact length). O(1) in file size, so index
	// loading stays cheap even for huge files.
	quickHashWindow = 64 * 1024
)

// Sentinel errors distinguishing why an index was rejected. A missing
// sidecar is reported as fs.ErrNotExist and is not a fallback (nothing
// was promised); these three mean an index existed but cannot be used.
var (
	ErrIndexStale   = errors.New("calformat: index is stale (data file changed)")
	ErrIndexCorrupt = errors.New("calformat: index file corrupt")
	ErrIndexVersion = errors.New("calformat: unsupported index version")
)

// IndexPath returns the sidecar index path for a .cali file.
func IndexPath(caliPath string) string { return caliPath + ".idx" }

// IndexOptions configure index construction.
type IndexOptions struct {
	BlockRecords int // records per block (<= 0: DefaultBlockRecords)
	MaxDistinct  int // distinct strings per zone (<= 0: DefaultMaxDistinct)
}

func (o IndexOptions) blockRecords() int {
	if o.BlockRecords <= 0 {
		return DefaultBlockRecords
	}
	return o.BlockRecords
}

func (o IndexOptions) maxDistinct() int {
	if o.MaxDistinct <= 0 {
		return DefaultMaxDistinct
	}
	return o.MaxDistinct
}

// Index describes one .cali file: identity (size + hashes), file totals
// (serving cali-stat without a decode), the attribute table, and the
// block list.
type Index struct {
	Version     int
	FileSize    int64
	QuickHash   uint64 // FNV-1a over length + head/tail windows
	FullHash    uint64 // FNV-1a over the whole content (cali-index -verify)
	BlockTarget int    // records-per-block the index was built with

	// File totals, as a full decode would count them.
	Records   uint64
	Entries   uint64
	TreeNodes uint64
	Globals   uint64

	Attrs  []IndexAttr
	Blocks []Block
}

// IndexAttr is one row of the index's attribute table. Zone maps refer to
// attributes by position in this table.
type IndexAttr struct {
	Name    string
	Type    attr.Type
	Props   attr.Properties
	Entries uint64 // total entry occurrences in the file
}

// Block describes one record block: its exact byte span, what it holds,
// and the zone maps of the attributes occurring in it. MetaLines is the
// number of attr/node/globals lines inside the span — when zero, a pruned
// block can be skipped with a seek; otherwise later blocks may depend on
// its definitions and a metadata-only scan is required.
type Block struct {
	Offset    int64
	Length    int64
	Records   uint64
	MetaLines int
	Zones     []ZoneMap // sorted by Attr
}

// ZoneMap summarizes one attribute's entry values within a block.
type ZoneMap struct {
	Attr     int    // index into Index.Attrs
	Count    uint64 // entry occurrences in the block
	HasNum   bool   // Min/Max are valid (numeric-typed attribute)
	Min, Max float64
	Strs     []string // distinct values (string-typed attribute), sorted
	Overflow bool     // more than MaxDistinct distinct strings
}

// AttrIndex returns the attribute-table position of name, or -1 if the
// attribute does not occur in the file.
func (idx *Index) AttrIndex(name string) int {
	for i := range idx.Attrs {
		if idx.Attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// Zone returns the block's zone map for an attribute-table position, or
// nil if the attribute does not occur in the block.
func (b *Block) Zone(attrIdx int) *ZoneMap {
	n := len(b.Zones)
	i := sort.Search(n, func(i int) bool { return b.Zones[i].Attr >= attrIdx })
	if i < n && b.Zones[i].Attr == attrIdx {
		return &b.Zones[i]
	}
	return nil
}

// ---------------------------------------------------------------------------
// Zone accumulation (shared by the standalone indexer and IndexingWriter)

type zoneAcc struct {
	count    uint64
	hasNum   bool
	sawNaN   bool
	min, max float64
	strs     map[string]struct{}
	overflow bool
}

// indexAcc accumulates an Index from a stream of (record, end offset,
// metadata-line count) observations, in file order.
type indexAcc struct {
	opt IndexOptions

	attrs    []IndexAttr
	attrPos  map[attr.ID]int
	attrOf   []attr.Attribute // registry handle per table position
	blocks   []Block
	zones    map[int]*zoneAcc // keyed by attr table position
	zoneFree []*zoneAcc       // recycled accumulators

	blockStart   int64
	blockMetaAt  int
	blockRecords uint64
	blockEntries uint64

	records uint64
	entries uint64
}

func newIndexAcc(opt IndexOptions) *indexAcc {
	return &indexAcc{
		opt:     opt,
		attrPos: map[attr.ID]int{},
		zones:   map[int]*zoneAcc{},
	}
}

func (acc *indexAcc) attrIdx(a attr.Attribute) int {
	if i, ok := acc.attrPos[a.ID()]; ok {
		return i
	}
	i := len(acc.attrs)
	acc.attrPos[a.ID()] = i
	acc.attrs = append(acc.attrs, IndexAttr{Name: a.Name(), Type: a.Type(), Props: a.Properties()})
	acc.attrOf = append(acc.attrOf, a)
	return i
}

func (acc *indexAcc) observe(e attr.Entry) {
	i := acc.attrIdx(e.Attr)
	acc.attrs[i].Entries++
	z := acc.zones[i]
	if z == nil {
		if n := len(acc.zoneFree); n > 0 {
			z = acc.zoneFree[n-1]
			acc.zoneFree = acc.zoneFree[:n-1]
			*z = zoneAcc{strs: z.strs}
			clear(z.strs)
		} else {
			z = &zoneAcc{strs: map[string]struct{}{}}
		}
		acc.zones[i] = z
	}
	z.count++
	switch e.Attr.Type() {
	case attr.Int, attr.Uint, attr.Float, attr.Bool:
		f := e.Value.AsFloat()
		if math.IsNaN(f) {
			z.sawNaN = true
		} else if !z.hasNum {
			z.hasNum = true
			z.min, z.max = f, f
		} else {
			if f < z.min {
				z.min = f
			}
			if f > z.max {
				z.max = f
			}
		}
	case attr.String:
		if !z.overflow {
			if _, ok := z.strs[e.Value.String()]; !ok {
				if len(z.strs) >= acc.opt.maxDistinct() {
					z.overflow = true
					clear(z.strs)
				} else {
					z.strs[e.Value.String()] = struct{}{}
				}
			}
		}
	}
}

// record accounts one decoded record; endOff and metaTotal are the stream
// offset and cumulative metadata-line count after its line.
func (acc *indexAcc) record(rec snapshot.FlatRecord, endOff int64, metaTotal int) {
	for _, e := range rec {
		acc.observe(e)
	}
	acc.blockRecords++
	acc.blockEntries += uint64(len(rec))
	if acc.blockRecords >= uint64(acc.opt.blockRecords()) {
		acc.closeBlock(endOff, metaTotal)
	}
}

func (acc *indexAcc) closeBlock(endOff int64, metaTotal int) {
	b := Block{
		Offset:    acc.blockStart,
		Length:    endOff - acc.blockStart,
		Records:   acc.blockRecords,
		MetaLines: metaTotal - acc.blockMetaAt,
	}
	if len(acc.zones) > 0 {
		b.Zones = make([]ZoneMap, 0, len(acc.zones))
		for i, z := range acc.zones {
			zm := ZoneMap{Attr: i, Count: z.count}
			if z.hasNum || z.sawNaN {
				zm.HasNum = true
				zm.Min, zm.Max = z.min, z.max
				if z.sawNaN {
					// NaN compares equal to anything in the engine:
					// widen so no range test can ever exclude it
					zm.Min = math.Inf(-1)
					zm.Max = math.Inf(1)
				}
			}
			if z.overflow {
				zm.Overflow = true
			} else if len(z.strs) > 0 {
				zm.Strs = make([]string, 0, len(z.strs))
				for s := range z.strs {
					zm.Strs = append(zm.Strs, s)
				}
				sort.Strings(zm.Strs)
			}
			b.Zones = append(b.Zones, zm)
			acc.zoneFree = append(acc.zoneFree, z)
		}
		sort.Slice(b.Zones, func(i, j int) bool { return b.Zones[i].Attr < b.Zones[j].Attr })
		clear(acc.zones)
	}
	acc.blocks = append(acc.blocks, b)
	acc.records += acc.blockRecords
	acc.entries += acc.blockEntries
	acc.blockStart = endOff
	acc.blockMetaAt = metaTotal
	acc.blockRecords = 0
	acc.blockEntries = 0
}

// finish closes the trailing block (if it holds records or trailing
// metadata) and assembles the Index. Identity fields (size, hashes) are
// filled in by the caller.
func (acc *indexAcc) finish(endOff int64, metaTotal int, treeNodes, globals int) *Index {
	if acc.blockRecords > 0 || endOff > acc.blockStart {
		acc.closeBlock(endOff, metaTotal)
	}
	return &Index{
		Version:     IndexVersion,
		FileSize:    endOff,
		BlockTarget: acc.opt.blockRecords(),
		Records:     acc.records,
		Entries:     acc.entries,
		TreeNodes:   uint64(treeNodes),
		Globals:     uint64(globals),
		Attrs:       acc.attrs,
		Blocks:      acc.blocks,
	}
}

// refreshAttrs re-reads type/properties from the registry handles:
// attribute properties merge across redefinitions, so the end-of-stream
// registry state is authoritative (it is what any full read observes).
func (acc *indexAcc) refreshAttrs() {
	for i, a := range acc.attrOf {
		acc.attrs[i].Type = a.Type()
		acc.attrs[i].Props = a.Properties()
	}
}

// ---------------------------------------------------------------------------
// Standalone indexer

// BuildFileIndex fully decodes a .cali file and builds its index. The
// returned index carries the file's size and hashes; WriteIndexFile
// persists it to the sidecar path.
func BuildFileIndex(path string, opt IndexOptions) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	reg := attr.NewRegistry()
	tree := contexttree.New()
	rd := NewReader(f, reg, tree)
	acc := newIndexAcc(opt)
	var rec snapshot.FlatRecord
	for {
		err := rd.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("calformat: indexing %s: %w", path, err)
		}
		acc.record(rec, rd.Offset(), rd.MetaLines())
	}
	acc.refreshAttrs()
	idx := acc.finish(rd.Offset(), rd.MetaLines(), tree.Len(), len(rd.Globals()))

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	quick, full, size, err := hashReader(f)
	if err != nil {
		return nil, err
	}
	if size != idx.FileSize {
		return nil, fmt.Errorf("calformat: indexing %s: file changed during indexing", path)
	}
	idx.QuickHash, idx.FullHash = quick, full
	telIndexBuilt.Inc()
	return idx, nil
}

// ---------------------------------------------------------------------------
// Block-aware writer mode

// IndexingWriter is a Writer that builds the block index as it writes.
// Wrap the destination with NewIndexingWriter, write records as usual,
// then call Finish to flush and obtain the Index.
type IndexingWriter struct {
	*Writer
	hw      *hashingWriter
	acc     *indexAcc
	globals int

	// expanded-path cache, mirroring the reader side: zone accumulation
	// needs each record's full entry expansion
	pathCache map[contexttree.NodeID][]attr.Entry
}

// NewIndexingWriter returns a block-aware writer targeting w.
func NewIndexingWriter(w io.Writer, reg *attr.Registry, tree *contexttree.Tree, opt IndexOptions) *IndexingWriter {
	hw := newHashingWriter(w)
	return &IndexingWriter{
		Writer:    NewWriter(hw, reg, tree),
		hw:        hw,
		acc:       newIndexAcc(opt),
		pathCache: map[contexttree.NodeID][]attr.Entry{},
	}
}

// offset is the stream position the next byte will be written at.
func (iw *IndexingWriter) offset() int64 {
	return iw.hw.n + int64(iw.Writer.w.Buffered())
}

func (iw *IndexingWriter) pathOf(n contexttree.NodeID) ([]attr.Entry, error) {
	if p, ok := iw.pathCache[n]; ok {
		return p, nil
	}
	p, err := iw.Writer.tree.Path(n, iw.Writer.reg)
	if err != nil {
		return nil, err
	}
	iw.pathCache[n] = p
	return p, nil
}

// WriteRecord writes one record and accounts it in the index.
func (iw *IndexingWriter) WriteRecord(rec snapshot.Record) error {
	if rec.Empty() {
		return nil
	}
	if err := iw.Writer.WriteRecord(rec); err != nil {
		return err
	}
	// observe the record exactly as a reader would expand it
	n := 0
	for _, node := range rec.Nodes {
		path, err := iw.pathOf(node)
		if err != nil {
			return err
		}
		for _, e := range path {
			iw.acc.observe(e)
		}
		n += len(path)
	}
	for _, e := range rec.Imm {
		// an immediate entry is decoded with the attribute's declared
		// type; observe the re-parsed value so zones match a reader's view
		v := e.Value
		if v.Kind() != e.Attr.Type() {
			if pv, err := attr.ParseAs(v.String(), e.Attr.Type()); err == nil {
				v = pv
			}
		}
		iw.acc.observe(attr.Entry{Attr: e.Attr, Value: v})
	}
	n += len(rec.Imm)
	iw.acc.blockRecords++
	iw.acc.blockEntries += uint64(n)
	if iw.acc.blockRecords >= uint64(iw.acc.opt.blockRecords()) {
		iw.acc.closeBlock(iw.offset(), iw.Writer.metaLines)
	}
	return nil
}

// WriteFlat writes a fully expanded record as immediate entries.
func (iw *IndexingWriter) WriteFlat(rec snapshot.FlatRecord) error {
	return iw.WriteRecord(snapshot.Record{Imm: rec})
}

// WriteGlobals writes per-run metadata entries.
func (iw *IndexingWriter) WriteGlobals(entries []attr.Entry) error {
	if err := iw.Writer.WriteGlobals(entries); err != nil {
		return err
	}
	iw.globals += len(entries)
	return nil
}

// Finish flushes the stream and returns the completed index.
func (iw *IndexingWriter) Finish() (*Index, error) {
	if err := iw.Writer.Flush(); err != nil {
		return nil, err
	}
	iw.acc.refreshAttrs()
	idx := iw.acc.finish(iw.hw.n, iw.Writer.metaLines, len(iw.Writer.wroteNode), iw.globals)
	idx.QuickHash = iw.hw.quickSum()
	idx.FullHash = iw.hw.full.Sum64()
	telIndexBuilt.Inc()
	return idx, nil
}

// hashingWriter tees writes into the full-content hash and keeps the
// head/tail windows needed to compute the quick hash at Finish, matching
// hashReader's file-based computation byte for byte.
type hashingWriter struct {
	w    io.Writer
	n    int64
	full hash.Hash64
	head []byte // first quickHashWindow bytes
	tail []byte // ring of the last quickHashWindow bytes
	tpos int
}

func newHashingWriter(w io.Writer) *hashingWriter {
	return &hashingWriter{w: w, full: newFNV(), tail: make([]byte, 0, quickHashWindow)}
}

func (hw *hashingWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	b := p[:n]
	hw.n += int64(n)
	hw.full.Write(b)
	if len(hw.head) < quickHashWindow {
		take := quickHashWindow - len(hw.head)
		if take > len(b) {
			take = len(b)
		}
		hw.head = append(hw.head, b[:take]...)
	}
	for _, c := range b {
		if len(hw.tail) < quickHashWindow {
			hw.tail = append(hw.tail, c)
		} else {
			hw.tail[hw.tpos] = c
			hw.tpos = (hw.tpos + 1) % quickHashWindow
		}
	}
	return n, err
}

// quickSum computes the quick hash from the tracked windows.
func (hw *hashingWriter) quickSum() uint64 {
	h := newFNV()
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(hw.n))
	h.Write(sz[:])
	h.Write(hw.head)
	if hw.n > quickHashWindow {
		// last min(n, window) bytes, in stream order
		h.Write(hw.tail[hw.tpos:])
		h.Write(hw.tail[:hw.tpos])
	}
	return h.Sum64()
}

// newFNV keeps the hash choice in one place.
func newFNV() hash.Hash64 { return fnv.New64a() }

// hashReader computes (quickHash, fullHash, size) of a seekable file.
func hashReader(f *os.File) (quick, full uint64, size int64, err error) {
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	size = st.Size()
	q, err := quickHashFile(f, size)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, err
	}
	h := newFNV()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 256*1024)); err != nil {
		return 0, 0, 0, err
	}
	return q, h.Sum64(), size, nil
}

// QuickHashPrefix computes the quick staleness hash over the first n
// bytes of the open file, exactly as quickHashFile would hash a file of
// size n. It is the watermark identity check of the query-state cache
// (internal/qcache): a cache entry covering the first n bytes of a file
// stays valid for an appended file precisely when this hash still
// matches. n must not exceed the file's current size.
func QuickHashPrefix(f *os.File, n int64) (uint64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if n < 0 || n > st.Size() {
		return 0, fmt.Errorf("calformat: prefix %d out of range (file size %d)", n, st.Size())
	}
	return quickHashFile(f, n)
}

// quickHashFile computes the O(1)-read staleness hash of an open file.
func quickHashFile(f *os.File, size int64) (uint64, error) {
	h := newFNV()
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(size))
	h.Write(sz[:])
	headLen := size
	if headLen > quickHashWindow {
		headLen = quickHashWindow
	}
	buf := make([]byte, headLen)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return 0, err
	}
	h.Write(buf)
	if size > quickHashWindow {
		tailLen := int64(quickHashWindow)
		if tailLen > size {
			tailLen = size
		}
		tail := make([]byte, tailLen)
		if _, err := f.ReadAt(tail, size-tailLen); err != nil && err != io.EOF {
			return 0, err
		}
		h.Write(tail)
	}
	return h.Sum64(), nil
}

// ---------------------------------------------------------------------------
// Binary encoding

// Encode renders the index in its binary sidecar form: magic, uvarint
// fields, and a trailing FNV-1a self-checksum that catches truncation.
func (idx *Index) Encode() []byte {
	b := make([]byte, 0, 256+64*len(idx.Blocks))
	b = append(b, indexMagic...)
	b = binary.AppendUvarint(b, uint64(idx.Version))
	b = binary.AppendUvarint(b, uint64(idx.FileSize))
	b = binary.LittleEndian.AppendUint64(b, idx.QuickHash)
	b = binary.LittleEndian.AppendUint64(b, idx.FullHash)
	b = binary.AppendUvarint(b, uint64(idx.BlockTarget))
	b = binary.AppendUvarint(b, idx.Records)
	b = binary.AppendUvarint(b, idx.Entries)
	b = binary.AppendUvarint(b, idx.TreeNodes)
	b = binary.AppendUvarint(b, idx.Globals)
	b = binary.AppendUvarint(b, uint64(len(idx.Attrs)))
	for _, a := range idx.Attrs {
		b = appendString(b, a.Name)
		b = append(b, byte(a.Type))
		b = binary.AppendUvarint(b, uint64(a.Props))
		b = binary.AppendUvarint(b, a.Entries)
	}
	b = binary.AppendUvarint(b, uint64(len(idx.Blocks)))
	for i := range idx.Blocks {
		blk := &idx.Blocks[i]
		b = binary.AppendUvarint(b, uint64(blk.Offset))
		b = binary.AppendUvarint(b, uint64(blk.Length))
		b = binary.AppendUvarint(b, blk.Records)
		b = binary.AppendUvarint(b, uint64(blk.MetaLines))
		b = binary.AppendUvarint(b, uint64(len(blk.Zones)))
		for _, z := range blk.Zones {
			b = binary.AppendUvarint(b, uint64(z.Attr))
			b = binary.AppendUvarint(b, z.Count)
			var flags byte
			if z.HasNum {
				flags |= 1
			}
			if z.Overflow {
				flags |= 2
			}
			b = append(b, flags)
			if z.HasNum {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(z.Min))
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(z.Max))
			}
			b = binary.AppendUvarint(b, uint64(len(z.Strs)))
			for _, s := range z.Strs {
				b = appendString(b, s)
			}
		}
	}
	h := newFNV()
	h.Write(b)
	return binary.LittleEndian.AppendUint64(b, h.Sum64())
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// cursor is a bounds-checked decode cursor; the first error sticks.
type cursor struct {
	b   []byte
	pos int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s at offset %d", ErrIndexCorrupt, what, c.pos)
	}
}

func (c *cursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.pos += n
	return v
}

func (c *cursor) fixed64(what string) uint64 {
	if c.err != nil {
		return 0
	}
	if c.pos+8 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.pos:])
	c.pos += 8
	return v
}

func (c *cursor) byteVal(what string) byte {
	if c.err != nil {
		return 0
	}
	if c.pos >= len(c.b) {
		c.fail(what)
		return 0
	}
	v := c.b[c.pos]
	c.pos++
	return v
}

func (c *cursor) str(what string) string {
	n := c.uvarint(what)
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.b)-c.pos) {
		c.fail(what)
		return ""
	}
	s := string(c.b[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s
}

// DecodeIndex parses a binary sidecar index, verifying magic, version,
// self-checksum, and structural invariants (contiguous blocks covering
// exactly [0, FileSize), consistent totals, in-range zone references).
func DecodeIndex(b []byte) (*Index, error) {
	if len(b) < len(indexMagic)+8 {
		return nil, fmt.Errorf("%w: short file (%d bytes)", ErrIndexCorrupt, len(b))
	}
	if string(b[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrIndexCorrupt)
	}
	body, sum := b[:len(b)-8], binary.LittleEndian.Uint64(b[len(b)-8:])
	h := newFNV()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (truncated or damaged)", ErrIndexCorrupt)
	}
	c := &cursor{b: body, pos: len(indexMagic)}
	idx := &Index{}
	idx.Version = int(c.uvarint("version"))
	if c.err != nil {
		return nil, c.err
	}
	if idx.Version != IndexVersion {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrIndexVersion, idx.Version, IndexVersion)
	}
	idx.FileSize = int64(c.uvarint("file size"))
	idx.QuickHash = c.fixed64("quick hash")
	idx.FullHash = c.fixed64("full hash")
	idx.BlockTarget = int(c.uvarint("block target"))
	idx.Records = c.uvarint("records")
	idx.Entries = c.uvarint("entries")
	idx.TreeNodes = c.uvarint("tree nodes")
	idx.Globals = c.uvarint("globals")
	nAttrs := c.uvarint("attr count")
	if c.err == nil && nAttrs > uint64(len(body)) {
		c.fail("attr count")
	}
	for i := uint64(0); i < nAttrs && c.err == nil; i++ {
		a := IndexAttr{Name: c.str("attr name")}
		a.Type = attr.Type(c.byteVal("attr type"))
		a.Props = attr.Properties(c.uvarint("attr props"))
		a.Entries = c.uvarint("attr entries")
		idx.Attrs = append(idx.Attrs, a)
	}
	nBlocks := c.uvarint("block count")
	if c.err == nil && nBlocks > uint64(len(body)) {
		c.fail("block count")
	}
	var records uint64
	off := int64(0)
	for i := uint64(0); i < nBlocks && c.err == nil; i++ {
		blk := Block{
			Offset:    int64(c.uvarint("block offset")),
			Length:    int64(c.uvarint("block length")),
			Records:   c.uvarint("block records"),
			MetaLines: int(c.uvarint("block meta lines")),
		}
		nZones := c.uvarint("zone count")
		if c.err == nil && nZones > uint64(len(body)) {
			c.fail("zone count")
		}
		prevAttr := -1
		for j := uint64(0); j < nZones && c.err == nil; j++ {
			z := ZoneMap{Attr: int(c.uvarint("zone attr"))}
			z.Count = c.uvarint("zone entry count")
			flags := c.byteVal("zone flags")
			z.HasNum = flags&1 != 0
			z.Overflow = flags&2 != 0
			if z.HasNum {
				z.Min = math.Float64frombits(c.fixed64("zone min"))
				z.Max = math.Float64frombits(c.fixed64("zone max"))
			}
			nStrs := c.uvarint("zone string count")
			if c.err == nil && nStrs > uint64(len(body)) {
				c.fail("zone string count")
			}
			for k := uint64(0); k < nStrs && c.err == nil; k++ {
				z.Strs = append(z.Strs, c.str("zone string"))
			}
			if c.err == nil && (z.Attr < 0 || z.Attr >= len(idx.Attrs) || z.Attr <= prevAttr) {
				c.fail("zone attr out of order or out of range")
			}
			prevAttr = z.Attr
			blk.Zones = append(blk.Zones, z)
		}
		if c.err == nil {
			if blk.Offset != off || blk.Length < 0 {
				c.fail("blocks not contiguous")
			}
			off = blk.Offset + blk.Length
			records += blk.Records
		}
		idx.Blocks = append(idx.Blocks, blk)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrIndexCorrupt, len(body)-c.pos)
	}
	if off != idx.FileSize {
		return nil, fmt.Errorf("%w: blocks cover %d bytes, file size is %d", ErrIndexCorrupt, off, idx.FileSize)
	}
	if records != idx.Records {
		return nil, fmt.Errorf("%w: blocks hold %d records, totals say %d", ErrIndexCorrupt, records, idx.Records)
	}
	return idx, nil
}

// WriteIndexFile persists idx as the sidecar of caliPath.
func WriteIndexFile(caliPath string, idx *Index) error {
	return os.WriteFile(IndexPath(caliPath), idx.Encode(), 0o644)
}

// ReadIndexFile reads and decodes a sidecar index file without checking
// it against the data file (cali-index -inspect wants exactly that).
func ReadIndexFile(idxPath string) (*Index, error) {
	b, err := os.ReadFile(idxPath)
	if err != nil {
		return nil, err
	}
	idx, err := DecodeIndex(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", idxPath, err)
	}
	return idx, nil
}

// LoadIndex loads the sidecar index of a .cali file and verifies it is
// current: the data file's size and quick hash must match what the index
// recorded. A missing sidecar returns fs.ErrNotExist; a present but
// unusable one returns ErrIndexStale/ErrIndexCorrupt/ErrIndexVersion
// (callers count those as fallbacks and do a full scan).
func LoadIndex(caliPath string) (*Index, error) {
	idx, err := ReadIndexFile(IndexPath(caliPath))
	if err != nil {
		return nil, err
	}
	f, err := os.Open(caliPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() != idx.FileSize {
		return nil, fmt.Errorf("%w: size %d, index built for %d", ErrIndexStale, st.Size(), idx.FileSize)
	}
	quick, err := quickHashFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	if quick != idx.QuickHash {
		return nil, fmt.Errorf("%w: content hash mismatch", ErrIndexStale)
	}
	return idx, nil
}

// VerifyIndex is the thorough form of LoadIndex: it additionally checks
// the stored full-content hash against the data file. Used by
// `cali-index -verify`; query paths use LoadIndex's O(1) quick check.
func VerifyIndex(caliPath string) (*Index, error) {
	idx, err := LoadIndex(caliPath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(caliPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, full, _, err := hashReader(f)
	if err != nil {
		return nil, err
	}
	if full != idx.FullHash {
		return nil, fmt.Errorf("%w: full content hash mismatch", ErrIndexStale)
	}
	return idx, nil
}
