package attr

import (
	"testing"
	"testing/quick"
)

// TestQuickCompareReflexive: Compare(v, v) == 0 for all variants.
func TestQuickCompareReflexive(t *testing.T) {
	f := func(k uint8, bits uint64, s string) bool {
		v := quickVariant(k, bits, s)
		return Compare(v, v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareAntisymmetric: Compare(a,b) == -Compare(b,a).
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(k1 uint8, b1 uint64, s1 string, k2 uint8, b2 uint64, s2 string) bool {
		a, b := quickVariant(k1, b1, s1), quickVariant(k2, b2, s2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareTransitiveWithinFamily: within the numeric family and
// within strings, a<=b and b<=c imply a<=c.
func TestQuickCompareTransitiveWithinFamily(t *testing.T) {
	numeric := func(x, y, z int64) bool {
		a, b, c := IntV(x), FloatV(float64(y)), UintV(uint64(uint32(z)))
		vs := []Variant{a, b, c}
		// sort the three by Compare, then verify pairwise order
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if Compare(vs[i], vs[j]) > 0 {
					vs[i], vs[j] = vs[j], vs[i]
				}
			}
		}
		return Compare(vs[0], vs[1]) <= 0 && Compare(vs[1], vs[2]) <= 0 &&
			Compare(vs[0], vs[2]) <= 0
	}
	if err := quick.Check(numeric, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	str := func(x, y, z string) bool {
		vs := []Variant{StringV(x), StringV(y), StringV(z)}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if Compare(vs[i], vs[j]) > 0 {
					vs[i], vs[j] = vs[j], vs[i]
				}
			}
		}
		return Compare(vs[0], vs[2]) <= 0
	}
	if err := quick.Check(str, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCompareCrossNumericConsistency: Int/Uint/Float comparisons agree
// with exact arithmetic on representable values.
func TestCompareCrossNumericConsistency(t *testing.T) {
	cases := []struct {
		a, b Variant
		want int
	}{
		{IntV(-1), UintV(0), -1},
		{UintV(1 << 52), FloatV(float64(uint64(1) << 52)), 0},
		{FloatV(0.5), IntV(1), -1},
		{FloatV(-0.5), IntV(0), -1},
		{BoolV(true), IntV(1), 0},
		{BoolV(false), FloatV(0), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
