// Package attr implements the flexible key:value data model that underlies
// the aggregation system: typed variant values, attribute metadata, and a
// process-wide attribute registry.
//
// The model follows Section III-A of "Flexible Data Aggregation for
// Performance Profiling" (Böhme et al., CLUSTER 2017): a record is a set of
// attributes, each a user-defined key:value pair with a string, integer, or
// floating-point value. Attribute labels are unique identifiers whose
// meaning is defined by the user.
package attr

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the value types a variant can hold.
type Type uint8

// Variant value types. Inv is the zero value and marks an empty variant.
const (
	Inv    Type = iota // invalid / empty
	Int                // signed 64-bit integer
	Uint               // unsigned 64-bit integer
	Float              // 64-bit floating point
	String             // UTF-8 string
	Bool               // boolean
	TypeID             // a Type value itself (used for meta-attributes)
)

// typeNames maps Type constants to their .cali format names.
var typeNames = [...]string{"inv", "int", "uint", "double", "string", "bool", "type"}

// String returns the format name of the type ("int", "double", ...).
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType converts a format name back into a Type.
// It returns Inv and false for unknown names.
func ParseType(s string) (Type, bool) {
	for i, n := range typeNames {
		if n == s {
			return Type(i), true
		}
	}
	return Inv, false
}

// Variant is a compact tagged union holding one typed value.
// The zero Variant is empty (type Inv).
//
// Numeric payloads live in bits; string payloads live in str. This keeps
// Variant comparable (usable as a map key) and cheap to copy.
type Variant struct {
	kind Type
	bits uint64
	str  string
}

// IntV returns an Int variant.
func IntV(v int64) Variant { return Variant{kind: Int, bits: uint64(v)} }

// UintV returns a Uint variant.
func UintV(v uint64) Variant { return Variant{kind: Uint, bits: v} }

// FloatV returns a Float variant.
func FloatV(v float64) Variant { return Variant{kind: Float, bits: math.Float64bits(v)} }

// StringV returns a String variant.
func StringV(v string) Variant { return Variant{kind: String, str: v} }

// BoolV returns a Bool variant.
func BoolV(v bool) Variant {
	var b uint64
	if v {
		b = 1
	}
	return Variant{kind: Bool, bits: b}
}

// TypeV returns a TypeID variant wrapping t.
func TypeV(t Type) Variant { return Variant{kind: TypeID, bits: uint64(t)} }

// Kind reports the variant's type tag.
func (v Variant) Kind() Type { return v.kind }

// Empty reports whether the variant holds no value.
func (v Variant) Empty() bool { return v.kind == Inv }

// AsInt returns the value as int64. Floats truncate; strings parse
// (returning 0 on failure); bools map to 0/1.
func (v Variant) AsInt() int64 {
	switch v.kind {
	case Int, Uint, Bool, TypeID:
		return int64(v.bits)
	case Float:
		return int64(math.Float64frombits(v.bits))
	case String:
		n, _ := strconv.ParseInt(v.str, 10, 64)
		return n
	}
	return 0
}

// AsUint returns the value as uint64.
func (v Variant) AsUint() uint64 {
	switch v.kind {
	case Int, Uint, Bool, TypeID:
		return v.bits
	case Float:
		return uint64(math.Float64frombits(v.bits))
	case String:
		n, _ := strconv.ParseUint(v.str, 10, 64)
		return n
	}
	return 0
}

// AsFloat returns the value as float64. Integer values convert exactly
// where representable; strings parse (NaN on failure).
func (v Variant) AsFloat() float64 {
	switch v.kind {
	case Int:
		return float64(int64(v.bits))
	case Uint, Bool, TypeID:
		return float64(v.bits)
	case Float:
		return math.Float64frombits(v.bits)
	case String:
		f, err := strconv.ParseFloat(v.str, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
	return 0
}

// AsBool returns the value interpreted as a boolean: numeric values are
// true when nonzero, strings when equal to "true" or "1".
func (v Variant) AsBool() bool {
	switch v.kind {
	case Int, Uint, Bool, TypeID:
		return v.bits != 0
	case Float:
		return math.Float64frombits(v.bits) != 0
	case String:
		return v.str == "true" || v.str == "1"
	}
	return false
}

// AsType returns the wrapped Type for TypeID variants, Inv otherwise.
func (v Variant) AsType() Type {
	if v.kind == TypeID && v.bits < uint64(len(typeNames)) {
		return Type(v.bits)
	}
	return Inv
}

// String renders the value as text, matching the .cali data encoding.
func (v Variant) String() string {
	switch v.kind {
	case Inv:
		return ""
	case Int:
		return strconv.FormatInt(int64(v.bits), 10)
	case Uint:
		return strconv.FormatUint(v.bits, 10)
	case Float:
		return strconv.FormatFloat(math.Float64frombits(v.bits), 'g', -1, 64)
	case String:
		return v.str
	case Bool:
		if v.bits != 0 {
			return "true"
		}
		return "false"
	case TypeID:
		return v.AsType().String()
	}
	return ""
}

// ParseAs parses text into a variant of the given type.
func ParseAs(s string, t Type) (Variant, error) {
	switch t {
	case Int:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Variant{}, fmt.Errorf("attr: parse %q as int: %w", s, err)
		}
		return IntV(n), nil
	case Uint:
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return Variant{}, fmt.Errorf("attr: parse %q as uint: %w", s, err)
		}
		return UintV(n), nil
	case Float:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Variant{}, fmt.Errorf("attr: parse %q as double: %w", s, err)
		}
		return FloatV(f), nil
	case String:
		return StringV(s), nil
	case Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Variant{}, fmt.Errorf("attr: parse %q as bool: %w", s, err)
		}
		return BoolV(b), nil
	case TypeID:
		tt, ok := ParseType(s)
		if !ok {
			return Variant{}, fmt.Errorf("attr: parse %q as type: unknown type name", s)
		}
		return TypeV(tt), nil
	}
	return Variant{}, fmt.Errorf("attr: cannot parse %q as %v", s, t)
}

// GuessV builds a variant from a Go value, choosing the closest type.
// Unsupported kinds are stringified.
func GuessV(v any) Variant {
	switch x := v.(type) {
	case nil:
		return Variant{}
	case Variant:
		return x
	case int:
		return IntV(int64(x))
	case int8:
		return IntV(int64(x))
	case int16:
		return IntV(int64(x))
	case int32:
		return IntV(int64(x))
	case int64:
		return IntV(x)
	case uint:
		return UintV(uint64(x))
	case uint8:
		return UintV(uint64(x))
	case uint16:
		return UintV(uint64(x))
	case uint32:
		return UintV(uint64(x))
	case uint64:
		return UintV(x)
	case float32:
		return FloatV(float64(x))
	case float64:
		return FloatV(x)
	case string:
		return StringV(x)
	case bool:
		return BoolV(x)
	default:
		return StringV(fmt.Sprint(v))
	}
}

// Compare orders two variants. Variants of the same numeric family compare
// numerically; strings compare lexicographically; otherwise the rendered
// text is compared. Returns -1, 0, or +1.
func Compare(a, b Variant) int {
	an, aok := a.numeric()
	bn, bok := b.numeric()
	switch {
	case aok && bok:
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		}
		return 0
	case a.kind == String && b.kind == String:
		return strings.Compare(a.str, b.str)
	default:
		return strings.Compare(a.String(), b.String())
	}
}

// numeric returns the value as float64 if the variant is numeric.
func (v Variant) numeric() (float64, bool) {
	switch v.kind {
	case Int:
		return float64(int64(v.bits)), true
	case Uint, Bool:
		return float64(v.bits), true
	case Float:
		return math.Float64frombits(v.bits), true
	}
	return 0, false
}

// Equal reports whether two variants have identical type and value.
func Equal(a, b Variant) bool { return a == b }

// AppendEncoded appends a compact, self-delimiting binary encoding of the
// variant to dst. The encoding is injective per (kind, value): it starts
// with the kind byte, then a varint-framed payload. It is the building
// block for collision-free aggregation keys (Section IV-B of the paper).
func (v Variant) AppendEncoded(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case String:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case Inv:
		// no payload
	default:
		dst = binary.AppendUvarint(dst, v.bits)
	}
	return dst
}

// DecodeVariant decodes a variant previously produced by AppendEncoded,
// returning the variant and the number of bytes consumed.
func DecodeVariant(src []byte) (Variant, int, error) {
	if len(src) == 0 {
		return Variant{}, 0, fmt.Errorf("attr: decode variant: empty input")
	}
	kind := Type(src[0])
	pos := 1
	switch kind {
	case Inv:
		return Variant{}, pos, nil
	case String:
		n, sz := binary.Uvarint(src[pos:])
		if sz <= 0 {
			return Variant{}, 0, fmt.Errorf("attr: decode variant: bad string length")
		}
		pos += sz
		if uint64(len(src)-pos) < n {
			return Variant{}, 0, fmt.Errorf("attr: decode variant: truncated string")
		}
		return StringV(string(src[pos : pos+int(n)])), pos + int(n), nil
	case Int, Uint, Float, Bool, TypeID:
		bits, sz := binary.Uvarint(src[pos:])
		if sz <= 0 {
			return Variant{}, 0, fmt.Errorf("attr: decode variant: bad payload")
		}
		return Variant{kind: kind, bits: bits}, pos + sz, nil
	}
	return Variant{}, 0, fmt.Errorf("attr: decode variant: unknown kind %d", kind)
}
