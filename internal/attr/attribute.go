package attr

import (
	"fmt"
	"sort"
	"sync"
)

// ID identifies an attribute within a registry. IDs are dense and start
// at 0, so they can index slices.
type ID int32

// InvalidID marks "no attribute".
const InvalidID ID = -1

// Properties are flags that control how the runtime treats an attribute,
// mirroring Caliper's attribute properties.
type Properties uint32

const (
	// AsValue stores the attribute directly in snapshot records instead
	// of in the context tree (right choice for measurement values).
	AsValue Properties = 1 << iota
	// Nested gives begin/end stack semantics interleaved with other
	// Nested attributes (e.g. "function" nests inside "loop").
	Nested
	// SkipEvents suppresses event-service snapshot triggers for updates
	// of this attribute (used for measurement attributes set by services).
	SkipEvents
	// Hidden excludes the attribute from snapshot records entirely.
	Hidden
	// Global marks per-run metadata (e.g. the experiment name).
	Global
	// Aggregatable hints that the attribute is a metric suitable for
	// reduction operators.
	Aggregatable
)

// String lists the set property names, comma separated.
func (p Properties) String() string {
	names := []struct {
		bit  Properties
		name string
	}{
		{AsValue, "asvalue"}, {Nested, "nested"}, {SkipEvents, "skip_events"},
		{Hidden, "hidden"}, {Global, "global"}, {Aggregatable, "aggregatable"},
	}
	s := ""
	for _, n := range names {
		if p&n.bit != 0 {
			if s != "" {
				s += ","
			}
			s += n.name
		}
	}
	return s
}

// ParseProperties parses a comma-separated property list as produced by
// Properties.String. Unknown names yield an error.
func ParseProperties(s string) (Properties, error) {
	var p Properties
	if s == "" {
		return 0, nil
	}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			name := s[start:i]
			start = i + 1
			switch name {
			case "asvalue":
				p |= AsValue
			case "nested":
				p |= Nested
			case "skip_events":
				p |= SkipEvents
			case "hidden":
				p |= Hidden
			case "global":
				p |= Global
			case "aggregatable":
				p |= Aggregatable
			case "":
			default:
				return 0, fmt.Errorf("attr: unknown property %q", name)
			}
		}
	}
	return p, nil
}

// Attribute is the immutable metadata of one key: its label, value type,
// and properties. Attribute values are only handles; all state lives in
// the Registry.
type Attribute struct {
	id    ID
	name  string
	typ   Type
	props Properties
}

// ID returns the registry-local attribute id.
func (a Attribute) ID() ID { return a.id }

// Name returns the unique attribute label.
func (a Attribute) Name() string { return a.name }

// Type returns the attribute's value type.
func (a Attribute) Type() Type { return a.typ }

// Properties returns the attribute's property flags.
func (a Attribute) Properties() Properties { return a.props }

// IsValid reports whether the handle refers to a registered attribute.
func (a Attribute) IsValid() bool { return a.id != InvalidID && a.name != "" }

// IsNested reports whether the attribute has begin/end stack semantics.
func (a Attribute) IsNested() bool { return a.props&Nested != 0 }

// StoreAsValue reports whether values should be stored immediate in
// snapshot records rather than in the context tree.
func (a Attribute) StoreAsValue() bool { return a.props&AsValue != 0 }

// String implements fmt.Stringer.
func (a Attribute) String() string {
	return fmt.Sprintf("%s(%v,id=%d)", a.name, a.typ, a.id)
}

// Registry is a thread-safe attribute table. Attribute creation is
// idempotent per label: creating an existing label returns the existing
// attribute (and an error if type or properties conflict).
type Registry struct {
	mu     sync.RWMutex
	byName map[string]ID
	attrs  []Attribute

	// intern table: canonical string per distinct byte content, shared by
	// all readers decoding into this registry (guarded separately so
	// value interning never contends with attribute lookups).
	internMu sync.Mutex
	interned map[string]string
}

// NewRegistry returns an empty attribute registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]ID), interned: make(map[string]string)}
}

// Intern returns a canonical heap copy of b. Repeated calls with equal
// content return the same string value, so decoders sharing a registry
// (e.g. per-shard .cali readers) allocate each distinct attribute name or
// string value once for the whole stream set. The map lookup itself does
// not allocate.
func (r *Registry) Intern(b []byte) string {
	r.internMu.Lock()
	s, ok := r.interned[string(b)]
	if !ok {
		if r.interned == nil {
			r.interned = make(map[string]string)
		}
		s = string(b)
		r.interned[s] = s
	}
	r.internMu.Unlock()
	return s
}

// Create registers an attribute, returning the existing one when the label
// is already present. A conflict in type is an error; properties are
// OR-merged like in Caliper.
func (r *Registry) Create(name string, typ Type, props Properties) (Attribute, error) {
	if name == "" {
		return Attribute{id: InvalidID}, fmt.Errorf("attr: empty attribute name")
	}
	if typ == Inv {
		return Attribute{id: InvalidID}, fmt.Errorf("attr: attribute %q: invalid type", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		a := r.attrs[id]
		if a.typ != typ {
			return a, fmt.Errorf("attr: attribute %q already exists with type %v (requested %v)",
				name, a.typ, typ)
		}
		if a.props != props {
			a.props |= props
			r.attrs[id] = a
		}
		return a, nil
	}
	a := Attribute{id: ID(len(r.attrs)), name: name, typ: typ, props: props}
	r.attrs = append(r.attrs, a)
	r.byName[name] = a.id
	return a, nil
}

// MustCreate is Create for static initialization; it panics on conflict.
func (r *Registry) MustCreate(name string, typ Type, props Properties) Attribute {
	a, err := r.Create(name, typ, props)
	if err != nil {
		panic(err)
	}
	return a
}

// Find returns the attribute with the given label.
func (r *Registry) Find(name string) (Attribute, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byName[name]
	if !ok {
		return Attribute{id: InvalidID}, false
	}
	return r.attrs[id], true
}

// Get returns the attribute with the given id.
func (r *Registry) Get(id ID) (Attribute, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id < 0 || int(id) >= len(r.attrs) {
		return Attribute{id: InvalidID}, false
	}
	return r.attrs[id], true
}

// Len returns the number of registered attributes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.attrs)
}

// All returns a snapshot of all attributes sorted by id.
func (r *Registry) All() []Attribute {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Attribute, len(r.attrs))
	copy(out, r.attrs)
	return out
}

// Names returns all attribute labels in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.attrs))
	for _, a := range r.attrs {
		names = append(names, a.name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Entry is one attribute:value pair, the unit of the key:value data model.
type Entry struct {
	Attr  Attribute
	Value Variant
}

// String renders the entry as label=value.
func (e Entry) String() string { return e.Attr.Name() + "=" + e.Value.String() }
