package attr

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegistryCreateAndFind(t *testing.T) {
	r := NewRegistry()
	a, err := r.Create("function", String, Nested)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if !a.IsValid() || a.Name() != "function" || a.Type() != String || !a.IsNested() {
		t.Errorf("unexpected attribute: %v props=%v", a, a.Properties())
	}
	got, ok := r.Find("function")
	if !ok || got.ID() != a.ID() {
		t.Errorf("Find = %v,%v; want id %d", got, ok, a.ID())
	}
	if _, ok := r.Find("missing"); ok {
		t.Error("Find should miss for unregistered name")
	}
	byID, ok := r.Get(a.ID())
	if !ok || byID.Name() != "function" {
		t.Errorf("Get(%d) = %v,%v", a.ID(), byID, ok)
	}
	if _, ok := r.Get(999); ok {
		t.Error("Get out-of-range should fail")
	}
	if _, ok := r.Get(InvalidID); ok {
		t.Error("Get(InvalidID) should fail")
	}
}

func TestRegistryIdempotentCreate(t *testing.T) {
	r := NewRegistry()
	a1, _ := r.Create("x", Int, 0)
	a2, err := r.Create("x", Int, AsValue)
	if err != nil {
		t.Fatalf("re-Create: %v", err)
	}
	if a1.ID() != a2.ID() {
		t.Errorf("re-Create changed id: %d -> %d", a1.ID(), a2.ID())
	}
	// properties are OR-merged
	got, _ := r.Get(a1.ID())
	if got.Properties()&AsValue == 0 {
		t.Error("properties not merged")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.MustCreate("x", Int, 0)
	if _, err := r.Create("x", Float, 0); err == nil {
		t.Error("type conflict should error")
	}
}

func TestRegistryInvalidInputs(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create("", Int, 0); err == nil {
		t.Error("empty name should error")
	}
	if _, err := r.Create("y", Inv, 0); err == nil {
		t.Error("Inv type should error")
	}
}

func TestMustCreatePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("MustCreate should panic on error")
		}
	}()
	r.MustCreate("", Int, 0)
}

func TestRegistryAllAndNames(t *testing.T) {
	r := NewRegistry()
	r.MustCreate("b", Int, 0)
	r.MustCreate("a", String, 0)
	all := r.All()
	if len(all) != 2 || all[0].Name() != "b" || all[1].Name() != "a" {
		t.Errorf("All = %v (want id order b,a)", all)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v (want sorted)", names)
	}
}

func TestRegistryConcurrentCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("attr.%d", i%20)
				a, err := r.Create(name, Int, 0)
				if err != nil || !a.IsValid() {
					t.Errorf("concurrent Create(%q): %v", name, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 20 {
		t.Errorf("Len = %d, want 20", r.Len())
	}
	// IDs must be dense 0..19
	seen := map[ID]bool{}
	for _, a := range r.All() {
		if a.ID() < 0 || a.ID() >= 20 || seen[a.ID()] {
			t.Errorf("bad or duplicate id %d", a.ID())
		}
		seen[a.ID()] = true
	}
}

func TestPropertiesStringRoundTrip(t *testing.T) {
	cases := []Properties{
		0, AsValue, Nested, AsValue | Nested | SkipEvents,
		Hidden | Global | Aggregatable,
		AsValue | Nested | SkipEvents | Hidden | Global | Aggregatable,
	}
	for _, p := range cases {
		got, err := ParseProperties(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProperties(%q) = %v,%v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParseProperties("bogus"); err == nil {
		t.Error("unknown property should error")
	}
}

func TestEntryString(t *testing.T) {
	r := NewRegistry()
	a := r.MustCreate("loop.iteration", Int, 0)
	e := Entry{Attr: a, Value: IntV(17)}
	if e.String() != "loop.iteration=17" {
		t.Errorf("Entry.String = %q", e.String())
	}
}

func TestAttributeString(t *testing.T) {
	r := NewRegistry()
	a := r.MustCreate("time.duration", Float, AsValue|Aggregatable)
	s := a.String()
	if s == "" || a.StoreAsValue() != true {
		t.Errorf("String=%q StoreAsValue=%v", s, a.StoreAsValue())
	}
}
