package attr

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVariantConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Variant
		kind Type
		i    int64
		f    float64
		s    string
	}{
		{"int positive", IntV(42), Int, 42, 42, "42"},
		{"int negative", IntV(-17), Int, -17, -17, "-17"},
		{"int zero", IntV(0), Int, 0, 0, "0"},
		{"uint", UintV(18446744073709551615), Uint, -1, 1.8446744073709552e19, "18446744073709551615"},
		{"float", FloatV(2.5), Float, 2, 2.5, "2.5"},
		{"float negative", FloatV(-0.25), Float, 0, -0.25, "-0.25"},
		{"string", StringV("hello"), String, 0, math.NaN(), "hello"},
		{"string numeric", StringV("37"), String, 37, 37, "37"},
		{"bool true", BoolV(true), Bool, 1, 1, "true"},
		{"bool false", BoolV(false), Bool, 0, 0, "false"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.v.AsInt(); got != tt.i {
				t.Errorf("AsInt() = %d, want %d", got, tt.i)
			}
			gotF := tt.v.AsFloat()
			if math.IsNaN(tt.f) {
				if !math.IsNaN(gotF) {
					t.Errorf("AsFloat() = %v, want NaN", gotF)
				}
			} else if gotF != tt.f {
				t.Errorf("AsFloat() = %v, want %v", gotF, tt.f)
			}
			if got := tt.v.String(); got != tt.s {
				t.Errorf("String() = %q, want %q", got, tt.s)
			}
		})
	}
}

func TestVariantEmpty(t *testing.T) {
	var v Variant
	if !v.Empty() {
		t.Error("zero Variant should be empty")
	}
	if v.Kind() != Inv {
		t.Errorf("zero Variant kind = %v, want Inv", v.Kind())
	}
	if v.String() != "" {
		t.Errorf("zero Variant string = %q, want empty", v.String())
	}
	if IntV(0).Empty() {
		t.Error("IntV(0) should not be empty")
	}
}

func TestVariantAsBool(t *testing.T) {
	tests := []struct {
		v    Variant
		want bool
	}{
		{BoolV(true), true},
		{BoolV(false), false},
		{IntV(1), true},
		{IntV(0), false},
		{IntV(-3), true},
		{FloatV(0.5), true},
		{FloatV(0), false},
		{StringV("true"), true},
		{StringV("1"), true},
		{StringV("false"), false},
		{StringV("yes"), false},
		{Variant{}, false},
	}
	for _, tt := range tests {
		if got := tt.v.AsBool(); got != tt.want {
			t.Errorf("%v.AsBool() = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestVariantAsUint(t *testing.T) {
	if got := UintV(7).AsUint(); got != 7 {
		t.Errorf("AsUint = %d, want 7", got)
	}
	if got := StringV("12").AsUint(); got != 12 {
		t.Errorf("string AsUint = %d, want 12", got)
	}
	if got := FloatV(3.9).AsUint(); got != 3 {
		t.Errorf("float AsUint = %d, want 3", got)
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{Inv, Int, Uint, Float, String, Bool, TypeID} {
		got, ok := ParseType(typ.String())
		if !ok || got != typ {
			t.Errorf("ParseType(%q) = %v,%v; want %v,true", typ.String(), got, ok, typ)
		}
	}
	if _, ok := ParseType("nonsense"); ok {
		t.Error("ParseType should reject unknown names")
	}
}

func TestTypeVariant(t *testing.T) {
	v := TypeV(Float)
	if v.AsType() != Float {
		t.Errorf("AsType = %v, want Float", v.AsType())
	}
	if v.String() != "double" {
		t.Errorf("String = %q, want double", v.String())
	}
	if IntV(3).AsType() != Inv {
		t.Error("AsType on non-type variant should be Inv")
	}
}

func TestParseAs(t *testing.T) {
	tests := []struct {
		in   string
		typ  Type
		want Variant
		ok   bool
	}{
		{"42", Int, IntV(42), true},
		{"-8", Int, IntV(-8), true},
		{"9", Uint, UintV(9), true},
		{"2.75", Float, FloatV(2.75), true},
		{"abc", String, StringV("abc"), true},
		{"true", Bool, BoolV(true), true},
		{"double", TypeID, TypeV(Float), true},
		{"xyz", Int, Variant{}, false},
		{"-1", Uint, Variant{}, false},
		{"zz", Float, Variant{}, false},
		{"maybe", Bool, Variant{}, false},
		{"wat", TypeID, Variant{}, false},
		{"1", Inv, Variant{}, false},
	}
	for _, tt := range tests {
		got, err := ParseAs(tt.in, tt.typ)
		if (err == nil) != tt.ok {
			t.Errorf("ParseAs(%q,%v) error = %v, want ok=%v", tt.in, tt.typ, err, tt.ok)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("ParseAs(%q,%v) = %v, want %v", tt.in, tt.typ, got, tt.want)
		}
	}
}

func TestGuessV(t *testing.T) {
	tests := []struct {
		in   any
		want Variant
	}{
		{42, IntV(42)},
		{int8(-5), IntV(-5)},
		{int16(100), IntV(100)},
		{int32(7), IntV(7)},
		{int64(8), IntV(8)},
		{uint(3), UintV(3)},
		{uint8(4), UintV(4)},
		{uint16(5), UintV(5)},
		{uint32(6), UintV(6)},
		{uint64(7), UintV(7)},
		{float32(1.5), FloatV(1.5)},
		{2.25, FloatV(2.25)},
		{"s", StringV("s")},
		{true, BoolV(true)},
		{nil, Variant{}},
		{IntV(9), IntV(9)},
		{[]int{1}, StringV("[1]")},
	}
	for _, tt := range tests {
		if got := GuessV(tt.in); got != tt.want {
			t.Errorf("GuessV(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Variant
		want int
	}{
		{IntV(1), IntV(2), -1},
		{IntV(2), IntV(2), 0},
		{IntV(3), IntV(2), 1},
		{IntV(2), FloatV(2.5), -1}, // cross-numeric comparison
		{UintV(3), IntV(2), 1},
		{StringV("a"), StringV("b"), -1},
		{StringV("b"), StringV("b"), 0},
		{StringV("10"), IntV(9), -1}, // mixed falls back to text
	}
	for _, tt := range tests {
		if got := Compare(tt.a, tt.b); got != tt.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestVariantEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Variant{
		{}, IntV(0), IntV(-1), IntV(1 << 40), UintV(0), UintV(math.MaxUint64),
		FloatV(0), FloatV(-3.25), FloatV(math.Inf(1)), BoolV(true), BoolV(false),
		StringV(""), StringV("x"), StringV("hello world with spaces, punctuation=stuff"),
		TypeV(Float),
	}
	for _, v := range vals {
		enc := v.AppendEncoded(nil)
		got, n, err := DecodeVariant(enc)
		if err != nil {
			t.Fatalf("DecodeVariant(%v): %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("DecodeVariant(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		if got != v {
			t.Errorf("round trip: got %#v, want %#v", got, v)
		}
	}
}

func TestVariantDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(String)},         // missing length
		{byte(String), 5, 'a'}, // truncated string
		{byte(Int)},            // missing payload
		{200, 1},               // unknown kind
	}
	for _, c := range cases {
		if _, _, err := DecodeVariant(c); err == nil {
			t.Errorf("DecodeVariant(%v) should fail", c)
		}
	}
}

// quickVariant builds a variant from arbitrary quick-generated values.
func quickVariant(kindSel uint8, bits uint64, s string) Variant {
	switch kindSel % 5 {
	case 0:
		return IntV(int64(bits))
	case 1:
		return UintV(bits)
	case 2:
		f := math.Float64frombits(bits)
		if math.IsNaN(f) {
			f = 0 // NaN breaks == comparison; tested separately
		}
		return FloatV(f)
	case 3:
		return StringV(s)
	default:
		return BoolV(bits&1 == 1)
	}
}

func TestQuickVariantEncodeRoundTrip(t *testing.T) {
	f := func(kindSel uint8, bits uint64, s string) bool {
		v := quickVariant(kindSel, bits, s)
		enc := v.AppendEncoded(nil)
		got, n, err := DecodeVariant(enc)
		return err == nil && n == len(enc) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodingInjective(t *testing.T) {
	// Distinct variants must encode to distinct byte strings (collision-free
	// key property from Section IV-B).
	f := func(k1 uint8, b1 uint64, s1 string, k2 uint8, b2 uint64, s2 string) bool {
		v1, v2 := quickVariant(k1, b1, s1), quickVariant(k2, b2, s2)
		e1, e2 := string(v1.AppendEncoded(nil)), string(v2.AppendEncoded(nil))
		if v1 == v2 {
			return e1 == e2
		}
		return e1 != e2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		v, err := ParseAs(IntV(n).String(), Int)
		return err == nil && v == IntV(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(u uint64) bool {
		v, err := ParseAs(UintV(u).String(), Uint)
		return err == nil && v == UintV(u)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestVariantKindSwitchExhaustive(t *testing.T) {
	// reflect-based sanity: all constructors produce comparable values
	vals := []Variant{IntV(1), UintV(1), FloatV(1), StringV("1"), BoolV(true)}
	for _, v := range vals {
		if !reflect.TypeOf(v).Comparable() {
			t.Fatalf("Variant must stay comparable (map-key requirement)")
		}
	}
}
