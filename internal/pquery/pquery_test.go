package pquery

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/mpi"
	"caligo/internal/obs/history"
	"caligo/internal/query"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// genDataset builds a per-rank .cali stream with deterministic content:
// kernels with durations, MPI functions, and the rank id.
func genDataset(rank, records int) []byte {
	reg := attr.NewRegistry()
	tree := contexttree.New()
	kernel := reg.MustCreate("kernel", attr.String, attr.Nested)
	mpifn := reg.MustCreate("mpi.function", attr.String, 0)
	rankA := reg.MustCreate("mpi.rank", attr.Int, 0)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable)

	kernels := []string{"advec-mom", "advec-cell", "calc-dt", "pdv"}
	mpifns := []string{"MPI_Barrier", "MPI_Allreduce"}
	rng := rand.New(rand.NewSource(int64(rank)))

	var buf bytes.Buffer
	w := calformat.NewWriter(&buf, reg, tree)
	for i := 0; i < records; i++ {
		var b snapshot.Builder
		if i%3 == 0 {
			b.AddNode(tree.GetChild(contexttree.InvalidNode, mpifn,
				attr.StringV(mpifns[rng.Intn(len(mpifns))])))
		} else {
			b.AddNode(tree.GetChild(contexttree.InvalidNode, kernel,
				attr.StringV(kernels[rng.Intn(len(kernels))])))
		}
		b.AddNode(tree.GetChild(contexttree.InvalidNode, rankA, attr.IntV(int64(rank))))
		b.AddImmediate(dur, attr.IntV(int64(rng.Intn(100))))
		if err := w.WriteRecord(b.Record()); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// memProvider serves generated datasets from memory.
func memProvider(records int) InputProvider {
	return func(rank int) (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(genDataset(rank, records))), nil
	}
}

func TestParallelEqualsSerial(t *testing.T) {
	const ranks, records = 8, 120
	queryText := "AGGREGATE count, sum(time.duration) GROUP BY kernel, mpi.function"

	world, err := mpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(world, queryText, memProvider(records))
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsProcessed != ranks*records {
		t.Errorf("RecordsProcessed = %d, want %d", res.RecordsProcessed, ranks*records)
	}

	// serial reference: read all datasets into one engine
	reg := attr.NewRegistry()
	tree := contexttree.New()
	q := calql.MustParse(queryText)
	eng := query.MustNew(q, reg)
	for r := 0; r < ranks; r++ {
		rd := calformat.NewReader(bytes.NewReader(genDataset(r, records)), reg, tree)
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		eng.ProcessAll(recs)
	}
	want, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i := range want {
		if res.Rows[i].String() != want[i].String() {
			t.Errorf("row %d:\n  parallel %s\n  serial   %s", i, res.Rows[i], want[i])
		}
	}
}

func TestParallelQueryWithWhereAndOrder(t *testing.T) {
	world, _ := mpi.NewWorld(4)
	res, err := Run(world,
		"AGGREGATE sum(time.duration) WHERE not(mpi.function) GROUP BY kernel ORDER BY sum#time.duration DESC LIMIT 2",
		memProvider(60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (LIMIT)", len(res.Rows))
	}
	s0, _ := res.Rows[0].GetByName("sum#time.duration")
	s1, _ := res.Rows[1].GetByName("sum#time.duration")
	if s0.AsInt() < s1.AsInt() {
		t.Error("not in descending order")
	}
	for _, r := range res.Rows {
		if _, ok := r.GetByName("mpi.function"); ok {
			t.Error("WHERE not(mpi.function) leaked an MPI row")
		}
	}
}

func TestParallelNonAggregatingGather(t *testing.T) {
	world, _ := mpi.NewWorld(4)
	res, err := Run(world, "SELECT * WHERE kernel=calc-dt", memProvider(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("expected some calc-dt rows")
	}
	for _, r := range res.Rows {
		k, ok := r.GetByName("kernel")
		if !ok || k.String() != "calc-dt" {
			t.Errorf("row %s does not match filter", r)
		}
	}
	if res.RecordsProcessed != 4*30 {
		t.Errorf("RecordsProcessed = %d", res.RecordsProcessed)
	}
}

func TestSingleRankWorld(t *testing.T) {
	world, _ := mpi.NewWorld(1)
	res, err := Run(world, "AGGREGATE count GROUP BY kernel", memProvider(50))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, r := range res.Rows {
		c, _ := r.GetByName("aggregate.count")
		total += c.AsInt()
	}
	if total != 50 {
		t.Errorf("total count = %d, want 50", total)
	}
}

func TestEmptyInputRank(t *testing.T) {
	world, _ := mpi.NewWorld(4)
	provider := func(rank int) (io.ReadCloser, error) {
		if rank%2 == 1 {
			return nil, nil // no input for odd ranks
		}
		return io.NopCloser(bytes.NewReader(genDataset(rank, 20))), nil
	}
	res, err := Run(world, "AGGREGATE count GROUP BY kernel", provider)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsProcessed != 40 {
		t.Errorf("RecordsProcessed = %d, want 40", res.RecordsProcessed)
	}
}

func TestProviderError(t *testing.T) {
	world, _ := mpi.NewWorld(2)
	provider := func(rank int) (io.ReadCloser, error) {
		if rank == 1 {
			return nil, fmt.Errorf("disk on fire")
		}
		return nil, nil
	}
	if _, err := Run(world, "AGGREGATE count GROUP BY kernel", provider); err == nil {
		t.Error("provider error should propagate")
	}
}

func TestCorruptInput(t *testing.T) {
	world, _ := mpi.NewWorld(2)
	provider := func(rank int) (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader([]byte("__rec=ctx,ref=99\n"))), nil
	}
	if _, err := Run(world, "AGGREGATE count GROUP BY kernel", provider); err == nil {
		t.Error("corrupt input should propagate an error")
	}
}

func TestBadQuery(t *testing.T) {
	world, _ := mpi.NewWorld(2)
	if _, err := Run(world, "GROUP BY x", memProvider(1)); err == nil {
		t.Error("invalid query should fail")
	}
}

func TestFaninVariantsAgree(t *testing.T) {
	queryText := "AGGREGATE count, sum(time.duration) GROUP BY kernel"
	var ref []snapshot.FlatRecord
	for _, fanin := range []int{2, 4, 8} {
		world, _ := mpi.NewWorld(9)
		res, err := RunFanin(world, queryText, memProvider(40), fanin)
		if err != nil {
			t.Fatalf("fanin %d: %v", fanin, err)
		}
		if ref == nil {
			ref = res.Rows
			continue
		}
		if len(res.Rows) != len(ref) {
			t.Fatalf("fanin %d: %d rows, want %d", fanin, len(res.Rows), len(ref))
		}
		for i := range ref {
			if res.Rows[i].String() != ref[i].String() {
				t.Errorf("fanin %d row %d differs", fanin, i)
			}
		}
	}
}

func TestTimingPopulated(t *testing.T) {
	world, _ := mpi.NewWorld(8)
	res, err := Run(world, "AGGREGATE count GROUP BY kernel", memProvider(50))
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timing
	if tm.TotalVirt <= 0 || tm.ReduceVirt <= 0 || tm.LocalVirt <= 0 {
		t.Errorf("virtual timing not populated: %+v", tm)
	}
	if tm.TotalVirt < tm.LocalVirt {
		t.Errorf("total < local: %+v", tm)
	}
	if tm.TotalWall <= 0 {
		t.Errorf("wall timing not populated: %+v", tm)
	}
}

// TestReduceVirtGrowsWithRanks checks the Figure 4 shape on the virtual
// clock: reduction time increases with world size while per-rank local
// input stays constant (weak scaling).
func TestReduceVirtGrowsWithRanks(t *testing.T) {
	// The reduce phase mixes modeled network time with measured merge
	// compute time, so single runs are noisy; take the minimum over a few
	// repetitions and compare far-apart world sizes.
	reduceTime := func(p int) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			world, _ := mpi.NewWorld(p)
			res, err := Run(world, "AGGREGATE count GROUP BY kernel", memProvider(20))
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 || res.Timing.ReduceVirt < best {
				best = res.Timing.ReduceVirt
			}
		}
		return best
	}
	t2, t256 := reduceTime(2), reduceTime(256)
	if t2 >= t256 {
		t.Errorf("reduce time not increasing: p=2 %v >= p=256 %v", t2, t256)
	}
}

func TestParallelPostOps(t *testing.T) {
	world, _ := mpi.NewWorld(4)
	res, err := Run(world,
		"AGGREGATE sum(time.duration), percent_total(time.duration) GROUP BY kernel "+
			"WHERE kernel ORDER BY percent_total#time.duration DESC",
		memProvider(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	total := 0.0
	prev := 101.0
	for _, r := range res.Rows {
		v, ok := r.GetByName("percent_total#time.duration")
		if !ok {
			t.Fatalf("row lacks percent column: %s", r)
		}
		if v.AsFloat() > prev {
			t.Error("not ordered by percent desc")
		}
		prev = v.AsFloat()
		total += v.AsFloat()
	}
	if total < 99.999 || total > 100.001 {
		t.Errorf("percent total = %v, want 100", total)
	}
}

func TestParallelInclusiveSum(t *testing.T) {
	// inclusive expansion happens once, at the root flush
	world, _ := mpi.NewWorld(4)
	res, err := Run(world,
		"AGGREGATE inclusive_sum(time.duration) GROUP BY kernel", memProvider(40))
	if err != nil {
		t.Fatal(err)
	}
	// kernels in the generated data are flat (no nesting), so inclusive
	// equals exclusive; the serial reference must agree
	serialReg := attr.NewRegistry()
	serialTree := contexttree.New()
	q := calql.MustParse("AGGREGATE inclusive_sum(time.duration) GROUP BY kernel")
	eng := query.MustNew(q, serialReg)
	for r := 0; r < 4; r++ {
		rd := calformat.NewReader(bytes.NewReader(genDataset(r, 40)), serialReg, serialTree)
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		eng.ProcessAll(recs)
	}
	want, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows: %d vs %d", len(res.Rows), len(want))
	}
	for i := range want {
		if res.Rows[i].String() != want[i].String() {
			t.Errorf("row %d:\n parallel %s\n serial   %s", i, res.Rows[i], want[i])
		}
	}
}

// TestTelemetryEpochPublishesClusterView checks the observability side
// channel of a parallel query: with telemetry enabled, Run reduces each
// rank's query stats over the telemetry tag space and the root publishes
// a cluster view where the caligo.pquery.records counter sums to the
// total records processed.
func TestTelemetryEpochPublishesClusterView(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })
	history.PublishCluster(nil)

	const ranks, records = 4, 60
	world, err := mpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(world, "AGGREGATE count GROUP BY kernel", memProvider(records))
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsProcessed != ranks*records {
		t.Fatalf("RecordsProcessed = %d, want %d", res.RecordsProcessed, ranks*records)
	}

	view := history.LatestCluster()
	if view == nil {
		t.Fatal("parallel query with telemetry enabled published no cluster view")
	}
	if view.Ranks != ranks {
		t.Errorf("view.Ranks = %d, want %d", view.Ranks, ranks)
	}
	var found bool
	for i := range view.Metrics {
		m := &view.Metrics[i]
		if m.Name != "caligo.pquery.records" {
			continue
		}
		found = true
		if m.Delta != uint64(ranks*records) {
			t.Errorf("cluster caligo.pquery.records = %d, want %d", m.Delta, ranks*records)
		}
		if len(m.Ranks) != ranks {
			t.Errorf("rank breakdown has %d entries, want %d", len(m.Ranks), ranks)
		}
		for _, rv := range m.Ranks {
			if rv.Delta != records {
				t.Errorf("rank %d processed %d records, want %d", rv.Rank, rv.Delta, records)
			}
		}
	}
	if !found {
		t.Error("cluster view missing caligo.pquery.records")
	}
	if view.SlowestRank < 0 || view.SlowestRank >= ranks {
		t.Errorf("SlowestRank = %d, want a real rank", view.SlowestRank)
	}
}
