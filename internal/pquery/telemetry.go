package pquery

import (
	"time"

	"caligo/internal/attr"
	"caligo/internal/core"
	"caligo/internal/mpi"
	"caligo/internal/obs/history"
	"caligo/internal/telemetry"
)

// telemetryEpoch reduces each rank's query stats — one history-style
// observation window covering the rank's local phase — into the
// cluster-wide telemetry view. The reduction runs over the dedicated
// telemetry tag space (never colliding with the data reduction) and uses
// the same core.DB merge kernel; the root publishes the merged view for
// /debug/cluster, where rank count and the slowest rank's local time
// surface the query's cross-rank skew.
func telemetryEpoch(c *mpi.Comm, fanin int, processed uint64, localWall time.Duration) error {
	if fanin < 2 {
		fanin = defaultFanin
	}
	reg := attr.NewRegistry()
	schema, err := history.NewSchema(reg)
	if err != nil {
		return err
	}
	now := time.Now()
	durNS := localWall.Nanoseconds()
	startNS := now.Add(-localWall).UnixNano()
	// one-shot window: metrics sorted by name, as AppendWindow expects
	metrics := []telemetry.Metric{
		{Name: "caligo.pquery.local.ns", Kind: telemetry.KindGauge, Gauge: durNS},
		{Name: "caligo.pquery.records", Kind: telemetry.KindCounter, Counter: processed},
	}
	recs := schema.AppendWindow(nil, c.Rank(), startNS, durNS, nil, metrics)
	db, err := core.NewDB(history.ClusterScheme(), reg)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		db.Update(rec)
	}
	merged, err := c.ReduceFaninTelemetry(0, db.EncodeState(), history.CombineEncoded, fanin)
	if err != nil {
		return err
	}
	if c.Rank() != 0 {
		return nil
	}
	root, err := core.NewDB(history.ClusterScheme(), attr.NewRegistry())
	if err != nil {
		return err
	}
	if err := root.MergeEncodedState(merged); err != nil {
		return err
	}
	view, err := history.BuildClusterView(root, root, 1, time.Now().UnixNano())
	if err != nil {
		return err
	}
	history.PublishCluster(view)
	return nil
}
