package pquery

import (
	"sort"
	"testing"

	"caligo/internal/mpi"
	"caligo/internal/trace"
)

// runRows executes the query over a fresh world and returns the result
// rows rendered to sorted strings, for run-to-run comparison.
func runRows(t *testing.T, queryText string, ranks, records int) []string {
	t.Helper()
	world, err := mpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(world, queryText, memProvider(records))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = r.String()
	}
	sort.Strings(rows)
	return rows
}

// TestTracingOnOffEquivalence runs the same parallel query with span
// tracing enabled and disabled: the results must be identical, the
// enabled run must record the pipeline's phase spans, and the disabled
// run must record nothing.
func TestTracingOnOffEquivalence(t *testing.T) {
	const queryText = "AGGREGATE count, sum(time.duration) GROUP BY kernel, mpi.function"
	const ranks, records = 4, 80

	prev := trace.SetEnabled(false)
	t.Cleanup(func() { trace.SetEnabled(prev) })

	// disabled run: no spans may appear
	offMark := trace.Mark()
	offRows := runRows(t, queryText, ranks, records)
	if n := len(trace.Since(offMark)); n != 0 {
		t.Errorf("disabled run recorded %d spans, want 0", n)
	}

	// enabled run: same rows, plus read/aggregate/reduce spans per rank
	trace.SetEnabled(true)
	onMark := trace.Mark()
	onRows := runRows(t, queryText, ranks, records)
	spans := trace.Since(onMark)
	trace.SetEnabled(false)

	if len(onRows) != len(offRows) {
		t.Fatalf("row count differs with tracing: %d vs %d", len(onRows), len(offRows))
	}
	for i := range offRows {
		if onRows[i] != offRows[i] {
			t.Errorf("row %d differs with tracing:\n  on  %s\n  off %s", i, onRows[i], offRows[i])
		}
	}

	perPhase := map[string]int{}
	phaseRanks := map[string]map[int]bool{}
	for _, s := range spans {
		perPhase[s.Name]++
		if phaseRanks[s.Name] == nil {
			phaseRanks[s.Name] = map[int]bool{}
		}
		phaseRanks[s.Name][int(s.Rank)] = true
	}
	for _, phase := range []string{"pquery.read", "pquery.aggregate", "pquery.reduce"} {
		if perPhase[phase] != ranks {
			t.Errorf("%s spans = %d, want one per rank (%d)", phase, perPhase[phase], ranks)
		}
		if len(phaseRanks[phase]) != ranks {
			t.Errorf("%s spans cover ranks %v, want all %d ranks", phase, phaseRanks[phase], ranks)
		}
	}
	// the reduction exercises the emulated network underneath
	if perPhase["mpi.send"] == 0 || perPhase["mpi.recv"] == 0 {
		t.Errorf("reduction recorded no MPI spans: %v", perPhase)
	}
}

// TestTracingDisabledZeroAlloc proves the kill switch's core guarantee:
// with tracing disabled, the exact span sequences on the pipeline's hot
// paths — the per-rank read/aggregate spans of runRank and the
// caliper.snapshot span taken on every snapshot — allocate nothing.
func TestTracingDisabledZeroAlloc(t *testing.T) {
	prev := trace.SetEnabled(false)
	t.Cleanup(func() { trace.SetEnabled(prev) })

	allocs := testing.AllocsPerRun(1000, func() {
		// runRank's phase-1 sequence
		rsp := trace.BeginRank("pquery.read", 3)
		rsp.ArgInt("records", 128)
		rsp.ArgInt("bytes", 65536)
		rsp.End()
		asp := trace.BeginRank("pquery.aggregate", 3)
		asp.ArgInt("records_in", 128)
		asp.ArgInt("records_out", 16)
		asp.End()
		// the hot snapshot-path sequence (caliper.Thread.takeSnapshot)
		snap := trace.BeginRank("caliper.snapshot", 3)
		snap.SetTid(1)
		snap.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %.1f objects/op on the hot path, want 0", allocs)
	}
}
