// Package pquery implements the scalable MPI-based query application of
// Section IV-C: each process is assigned a subset of the input datasets
// and first applies the query locally; the processes are then organized
// in a tree based on their rank and perform a logarithmic reduction —
// leaf processes send local aggregation results to their parent, where
// the partial results are aggregated again, level by level up to the
// root process.
//
// The MPI layer is emulated (internal/mpi); the reduction tree and the
// per-level deserialize → aggregate → serialize steps are identical to a
// real MPI deployment.
package pquery

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/core"
	"caligo/internal/mpi"
	"caligo/internal/obs"
	"caligo/internal/query"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). All metrics are
// no-ops (one atomic load) unless telemetry is enabled. Phase histograms
// record per-rank wall time, one observation per rank per phase.
var (
	telRecords  = telemetry.NewCounter("caligo.pquery.records")
	telLocalNS  = telemetry.NewHistogram("caligo.pquery.local.ns")
	telReduceNS = telemetry.NewHistogram("caligo.pquery.reduce.ns")
)

// Timing reports the phase breakdown the paper's Figure 4 plots: the time
// to read and process process-local input, the time for the tree-based
// cross-process reduction, and the total. Virtual times come from the MPI
// cost model and reflect the emulated network; wall times are host
// measurements.
type Timing struct {
	LocalWall  time.Duration // rank 0's local read+process time
	TotalWall  time.Duration // wall time of the whole job
	LocalVirt  float64       // ns, rank 0 local phase on the virtual clock
	ReduceVirt float64       // ns, reduction phase on the virtual clock
	TotalVirt  float64       // ns, LocalVirt + ReduceVirt
}

// Result is the outcome of a parallel query, valid on the root.
type Result struct {
	Rows   []snapshot.FlatRecord
	Reg    *attr.Registry // registry the rows resolve against
	Query  *calql.Query
	Timing Timing
	// RecordsProcessed counts input records across all ranks.
	RecordsProcessed uint64
}

// InputProvider supplies the dataset assigned to one rank as a reader of
// .cali stream data. Returning a nil reader means the rank has no input.
type InputProvider func(rank int) (io.ReadCloser, error)

// FilesProvider supplies the .cali file paths assigned to one rank. An
// empty slice means the rank has no input. File-based input goes through
// the index-aware scan layer: sidecar block indexes prune files and
// blocks the query cannot match and projection pushdown trims decoding.
type FilesProvider func(rank int) []string

// rankInput selects a rank's input source: exactly one of provider or
// files is set. plan is shared across ranks (its stats are
// mutex-protected); each rank still owns a private registry and tree.
type rankInput struct {
	provider InputProvider
	files    FilesProvider
	opts     query.ScanOptions
	plan     *query.ScanPlan
}

// reduceFanin is the tree arity; the paper uses a binary ("logarithmic")
// reduction. RunFanin exposes other arities for the ablation bench.
const defaultFanin = 2

// Virtual-clock cost model for the query application's compute phases.
// Host wall-clock measurements are unusable for the scaling figure when
// hundreds of emulated ranks time-share few cores (a goroutine's wall time
// then includes its peers' execution), so the virtual clock charges
// deterministic per-record and per-bucket costs calibrated to the real
// single-rank throughput of the engine. Wall times are still reported.
const (
	// perRecordNs is the modeled cost of reading and aggregating one
	// input snapshot record.
	perRecordNs = 3000
	// mergeBaseNs is the fixed cost of one pairwise partial-result merge.
	mergeBaseNs = 20000
	// perBucketNs is the per-aggregation-record cost of a merge.
	perBucketNs = 250
)

// Run executes the query across the world, assigning each rank the input
// from provider, and returns the root's result.
func Run(world *mpi.World, queryText string, provider InputProvider) (*Result, error) {
	return RunObs(world, queryText, provider, defaultFanin, nil)
}

// RunFanin is Run with a configurable reduction-tree fan-in.
func RunFanin(world *mpi.World, queryText string, provider InputProvider, fanin int) (*Result, error) {
	return RunObs(world, queryText, provider, fanin, nil)
}

// RunObs is RunFanin with per-query attribution: every rank's record and
// byte throughput is accounted into aq (nil disables attribution at zero
// cost), and the query ID is stamped on the per-rank spans so traces
// correlate with the slow-query log. fanin <= 0 selects the default
// binary tree.
func RunObs(world *mpi.World, queryText string, provider InputProvider, fanin int, aq *obs.ActiveQuery) (*Result, error) {
	return run(world, queryText, rankInput{provider: provider}, fanin, aq)
}

// RunFilesObs is RunObs with file-path input: each rank scans its files
// through the index-aware scan layer (opts controls index use), so
// indexed files get block pruning and projection pushdown on every rank.
func RunFilesObs(world *mpi.World, queryText string, files FilesProvider, fanin int, aq *obs.ActiveQuery, opts query.ScanOptions) (*Result, error) {
	return run(world, queryText, rankInput{files: files, opts: opts}, fanin, aq)
}

func run(world *mpi.World, queryText string, in rankInput, fanin int, aq *obs.ActiveQuery) (*Result, error) {
	if fanin <= 0 {
		fanin = defaultFanin
	}
	q, err := calql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	if in.files != nil {
		in.plan = query.NewScanPlan(q, in.opts)
	}
	var result *Result
	start := time.Now()
	err = world.Run(func(c *mpi.Comm) error {
		res, err := runRank(c, q, in, fanin, aq)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			result = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if result == nil {
		return nil, fmt.Errorf("pquery: no result produced at root")
	}
	if in.plan != nil {
		if st := in.plan.Stats(); st.CacheHits+st.CacheMisses+st.CacheIncremental > 0 {
			aq.CacheStats(uint64(st.CacheHits), uint64(st.CacheMisses), uint64(st.CacheIncremental))
		}
	}
	result.Timing.TotalWall = time.Since(start)
	return result, nil
}

// runRank is the per-rank program: local aggregation, then tree reduce.
func runRank(c *mpi.Comm, q *calql.Query, input rankInput, fanin int, aq *obs.ActiveQuery) (*Result, error) {
	// Each rank has its own registry and context tree — per-process
	// address spaces, as in the real tool.
	reg := attr.NewRegistry()
	tree := contexttree.New()
	eng, err := query.New(q, reg)
	if err != nil {
		return nil, err
	}

	// Phase 1: stream process-local input through the engine with one
	// reused record (no whole-dataset buffering). Both phase spans still
	// appear — aggregate nested inside read — so EXPLAIN ANALYZE keeps the
	// same per-rank phase structure.
	localStart := time.Now()
	var processed uint64
	qid := aq.ID()
	if input.files != nil {
		if fl := input.files(c.Rank()); len(fl) > 0 {
			rsp := trace.BeginRank("pquery.read", c.Rank())
			asp := trace.BeginRank("pquery.aggregate", c.Rank())
			if qid != 0 {
				rsp.ArgInt("qid", int64(qid))
				asp.ArgInt("qid", int64(qid))
			}
			n, nb, err := input.plan.ScanFiles(eng, fl, reg, tree)
			if err != nil {
				asp.End()
				rsp.End()
				return nil, fmt.Errorf("rank %d: read input: %w", c.Rank(), err)
			}
			processed = uint64(n)
			asp.ArgInt("records_in", int64(n))
			asp.ArgInt("records_out", int64(eng.Size()))
			asp.End()
			rsp.ArgInt("records", int64(n))
			rsp.ArgInt("bytes", nb)
			rsp.End()
			aq.AddRecords(processed)
			aq.AddBytes(uint64(nb))
		} else {
			// No local input: still emit the aggregate phase so every rank
			// reports the same span set.
			asp := trace.BeginRank("pquery.aggregate", c.Rank())
			asp.ArgInt("records_in", 0)
			asp.ArgInt("records_out", int64(eng.Size()))
			asp.End()
		}
		return finishRank(c, q, eng, reg, fanin, localStart, processed, qid)
	}
	in, err := input.provider(c.Rank())
	if err != nil {
		return nil, fmt.Errorf("rank %d: open input: %w", c.Rank(), err)
	}
	if in != nil {
		rsp := trace.BeginRank("pquery.read", c.Rank())
		asp := trace.BeginRank("pquery.aggregate", c.Rank())
		if qid != 0 {
			rsp.ArgInt("qid", int64(qid))
			asp.ArgInt("qid", int64(qid))
		}
		cr := &countingReader{r: in}
		rd := calformat.NewReader(cr, reg, tree)
		var rec snapshot.FlatRecord // reused across NextInto calls
		for {
			err := rd.NextInto(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				asp.End()
				rsp.End()
				in.Close()
				return nil, fmt.Errorf("rank %d: read input: %w", c.Rank(), err)
			}
			if err := eng.Process(rec); err != nil {
				asp.End()
				rsp.End()
				in.Close()
				return nil, err
			}
			processed++
		}
		asp.ArgInt("records_in", int64(processed))
		asp.ArgInt("records_out", int64(eng.Size()))
		asp.End()
		rsp.ArgInt("records", int64(processed))
		rsp.ArgInt("bytes", cr.n)
		rsp.End()
		aq.AddRecords(processed)
		aq.AddBytes(uint64(cr.n))
		if err := in.Close(); err != nil {
			return nil, err
		}
	} else {
		// No local input: still emit the aggregate phase so every rank
		// reports the same span set.
		asp := trace.BeginRank("pquery.aggregate", c.Rank())
		asp.ArgInt("records_in", 0)
		asp.ArgInt("records_out", int64(eng.Size()))
		asp.End()
	}
	return finishRank(c, q, eng, reg, fanin, localStart, processed, qid)
}

// finishRank closes a rank's local phase (wall/virtual clocks, telemetry)
// and runs the cross-rank combination step.
func finishRank(c *mpi.Comm, q *calql.Query, eng *query.Engine, reg *attr.Registry,
	fanin int, localStart time.Time, processed, qid uint64) (*Result, error) {
	localWall := time.Since(localStart)
	telRecords.Add(processed)
	telLocalNS.Observe(localWall.Nanoseconds())
	// charge the local phase to the virtual clock with the deterministic
	// cost model (see perRecordNs)
	c.Advance(float64(processed) * perRecordNs)
	localVirt := c.Clock()

	var res *Result
	var err error
	if q.HasAggregation() {
		res, err = reduceAggregated(c, q, eng, fanin, localWall, localVirt, processed, qid)
	} else {
		res, err = gatherRows(c, q, eng, reg, localWall, localVirt, processed, qid)
	}
	if err != nil {
		return nil, err
	}
	// After the data reduction, run one telemetry-reduction epoch over the
	// dedicated tag space: per-rank query stats merge into the cluster-wide
	// observability view (/debug/cluster). Gated on the process-global
	// telemetry switch, so the collective stays uniform across ranks.
	if telemetry.Enabled() {
		if terr := telemetryEpoch(c, fanin, processed, localWall); terr != nil {
			return nil, terr
		}
	}
	return res, nil
}

// countingReader counts bytes consumed from the underlying reader, for
// the read span's bytes attribute.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// countedPayload frames a DB state with the rank-processed record count.
type countedPayload struct {
	state     []byte
	processed uint64
}

func encodePayload(p countedPayload) []byte {
	out := make([]byte, 8+len(p.state))
	for i := 0; i < 8; i++ {
		out[i] = byte(p.processed >> (8 * i))
	}
	copy(out[8:], p.state)
	return out
}

func decodePayload(b []byte) (countedPayload, error) {
	if len(b) < 8 {
		return countedPayload{}, fmt.Errorf("pquery: truncated payload")
	}
	var n uint64
	for i := 0; i < 8; i++ {
		n |= uint64(b[i]) << (8 * i)
	}
	return countedPayload{state: b[8:], processed: n}, nil
}

// reduceAggregated performs the tree reduction of aggregation databases.
func reduceAggregated(c *mpi.Comm, q *calql.Query, eng *query.Engine, fanin int,
	localWall time.Duration, localVirt float64, processed, qid uint64) (*Result, error) {

	scheme := eng.DB().Scheme()
	payload := encodePayload(countedPayload{
		state:     eng.DB().EncodeState(),
		processed: processed,
	})

	combine := func(a, b []byte) ([]byte, error) {
		pa, err := decodePayload(a)
		if err != nil {
			return nil, err
		}
		pb, err := decodePayload(b)
		if err != nil {
			return nil, err
		}
		reg := attr.NewRegistry()
		db, err := core.NewDB(scheme, reg)
		if err != nil {
			return nil, err
		}
		if err := db.MergeEncodedState(pa.state); err != nil {
			return nil, err
		}
		if err := db.MergeEncodedState(pb.state); err != nil {
			return nil, err
		}
		out := encodePayload(countedPayload{
			state:     db.EncodeState(),
			processed: pa.processed + pb.processed,
		})
		// charge merge compute to the combining rank's virtual clock
		// (deterministic model, see mergeBaseNs/perBucketNs)
		c.Advance(mergeBaseNs + perBucketNs*float64(db.Len()))
		return out, nil
	}

	var reduceStart time.Time
	if telemetry.Enabled() {
		reduceStart = time.Now()
	}
	sp := trace.BeginRank("pquery.reduce", c.Rank())
	if qid != 0 {
		sp.ArgInt("qid", int64(qid))
	}
	sp.ArgInt("bytes", int64(len(payload)))
	final, err := c.ReduceFanin(0, payload, combine, fanin)
	if err != nil {
		sp.End()
		return nil, err
	}
	if !reduceStart.IsZero() {
		telReduceNS.Observe(time.Since(reduceStart).Nanoseconds())
	}
	if c.Rank() != 0 {
		sp.End()
		return nil, nil
	}
	p, err := decodePayload(final)
	if err != nil {
		sp.End()
		return nil, err
	}
	rootReg := attr.NewRegistry()
	rootDB, err := core.NewDB(scheme, rootReg)
	if err != nil {
		sp.End()
		return nil, err
	}
	if err := rootDB.MergeEncodedState(p.state); err != nil {
		sp.End()
		return nil, err
	}
	rows, err := rootDB.FlushRecords()
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.ArgInt("rows", int64(len(rows)))
	sp.End()
	rows = query.Finalize(q, rootReg, rows)
	return &Result{
		Rows:             rows,
		Reg:              rootReg,
		Query:            q,
		RecordsProcessed: p.processed,
		Timing: Timing{
			LocalWall:  localWall,
			LocalVirt:  localVirt,
			ReduceVirt: c.Clock() - localVirt,
			TotalVirt:  c.Clock(),
		},
	}, nil
}

// gatherRows collects filtered rows at the root for non-aggregating
// queries, encoded as .cali stream fragments.
func gatherRows(c *mpi.Comm, q *calql.Query, eng *query.Engine, reg *attr.Registry,
	localWall time.Duration, localVirt float64, processed, qid uint64) (*Result, error) {

	rows, err := eng.Results()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w := calformat.NewWriter(&buf, reg, contexttree.New())
	for _, r := range rows {
		if err := w.WriteFlat(r); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	blob := buf.Bytes()
	sp := trace.BeginRank("pquery.reduce", c.Rank())
	if qid != 0 {
		sp.ArgInt("qid", int64(qid))
	}
	sp.ArgInt("bytes", int64(len(blob)))
	gathered, err := c.Gather(0, encodePayload(countedPayload{state: blob, processed: processed}))
	if err != nil {
		sp.End()
		return nil, err
	}
	if c.Rank() != 0 {
		sp.End()
		return nil, nil
	}
	rootReg := attr.NewRegistry()
	rootTree := contexttree.New()
	var all []snapshot.FlatRecord
	var total uint64
	for _, g := range gathered {
		p, err := decodePayload(g)
		if err != nil {
			sp.End()
			return nil, err
		}
		total += p.processed
		rd := calformat.NewReader(bytes.NewReader(p.state), rootReg, rootTree)
		recs, err := rd.ReadAll()
		if err != nil {
			sp.End()
			return nil, err
		}
		all = append(all, recs...)
	}
	sp.ArgInt("rows", int64(len(all)))
	sp.End()
	all = query.Finalize(q, rootReg, all)
	return &Result{
		Rows:             all,
		Reg:              rootReg,
		Query:            q,
		RecordsProcessed: total,
		Timing: Timing{
			LocalWall:  localWall,
			LocalVirt:  localVirt,
			ReduceVirt: c.Clock() - localVirt,
			TotalVirt:  c.Clock(),
		},
	}, nil
}
