package query

import (
	"strconv"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/snapshot"
)

// fuzzQueries is the WHERE/shape matrix the differential fuzzer draws
// from: numeric and string conditions on every comparison operator,
// negation, existence, projection-active aggregations, and raw-record
// paths with ORDER BY/LIMIT.
var fuzzQueries = []string{
	"SELECT *",
	"SELECT * WHERE mpi.rank = 2",
	"SELECT * WHERE time.duration > 500 ORDER BY time.duration DESC LIMIT 7",
	"SELECT * WHERE kernel = advec",
	"SELECT * WHERE NOT(kernel = advec)",
	"SELECT * WHERE kernel",
	"AGGREGATE count GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count, sum(time.duration) WHERE mpi.rank <= 1 GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count WHERE time.duration < 100 GROUP BY mpi.rank ORDER BY mpi.rank",
	"AGGREGATE min(time.duration), max(time.duration) WHERE time.duration >= 900 GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count WHERE kernel != pdv GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count WHERE kernel < flux GROUP BY kernel ORDER BY kernel",
	"LET ms = scale(time.duration, 0.5) AGGREGATE sum(ms) WHERE ms > 100 GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count WHERE mpi.rank = 11 GROUP BY kernel",
	"AGGREGATE avg(time.duration) GROUP BY mpi.rank ORDER BY mpi.rank",
}

// FuzzIndexedQueryDiff is the index-layer differential oracle: random
// record populations written at random block sizes must produce
// byte-identical query output with and without the sidecar index, at
// serial and sharded worker counts. Any divergence means unsound pruning,
// projection, or block navigation.
func FuzzIndexedQueryDiff(f *testing.F) {
	f.Add(uint16(50), uint16(8), uint16(1), uint16(0))
	f.Add(uint16(200), uint16(3), uint16(2), uint16(12345))
	f.Add(uint16(7), uint16(1), uint16(7), uint16(999))
	f.Add(uint16(300), uint16(64), uint16(12), uint16(7))
	f.Add(uint16(129), uint16(16), uint16(9), uint16(54321))
	f.Fuzz(func(t *testing.T, nRecs, blockRecs, qsel, seed uint16) {
		n := int(nRecs)%512 + 1
		block := int(blockRecs)%64 + 1
		qt := fuzzQueries[int(qsel)%len(fuzzQueries)]
		fx := newFixture(t)
		kernels := []string{"advec", "pdv", "flux", "calc-dt"}
		recs := make([]snapshot.FlatRecord, n)
		for i := range recs {
			h := uint32(i)*2654435761 + uint32(seed)
			var r snapshot.FlatRecord
			if h%7 != 3 { // some records miss the kernel attribute
				r = append(r, attr.Entry{Attr: fx.kernel, Value: attr.StringV(kernels[h%4])})
			}
			if h%5 != 2 { // and some miss the rank
				r = append(r, attr.Entry{Attr: fx.rank, Value: attr.IntV(int64(h % 13))})
			}
			r = append(r, attr.Entry{Attr: fx.dur, Value: attr.IntV(int64(h%2000) - 500)})
			recs[i] = r
		}
		dir := t.TempDir()
		files := []string{
			writeIndexedFile(t, dir, "a.cali", fx.reg, recs[:n/2], block),
			writeIndexedFile(t, dir, "b.cali", fx.reg, recs[n/2:], block),
		}
		for _, jobs := range []int{1, 4} {
			want, _ := runRows(t, qt, files, jobs, ScanOptions{})
			got, _ := runRows(t, qt, files, jobs, ScanOptions{UseIndex: true})
			if got != want {
				t.Errorf("n=%d block=%d jobs=%s query %q: indexed output differs\nindexed:\n%s\nfull scan:\n%s",
					n, block, strconv.Itoa(jobs), qt, got, want)
			}
		}
	})
}
