package query

import (
	"os"
	"strconv"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/qcache"
	"caligo/internal/snapshot"
)

// fuzzQueries is the WHERE/shape matrix the differential fuzzer draws
// from: numeric and string conditions on every comparison operator,
// negation, existence, projection-active aggregations, and raw-record
// paths with ORDER BY/LIMIT.
var fuzzQueries = []string{
	"SELECT *",
	"SELECT * WHERE mpi.rank = 2",
	"SELECT * WHERE time.duration > 500 ORDER BY time.duration DESC LIMIT 7",
	"SELECT * WHERE kernel = advec",
	"SELECT * WHERE NOT(kernel = advec)",
	"SELECT * WHERE kernel",
	"AGGREGATE count GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count, sum(time.duration) WHERE mpi.rank <= 1 GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count WHERE time.duration < 100 GROUP BY mpi.rank ORDER BY mpi.rank",
	"AGGREGATE min(time.duration), max(time.duration) WHERE time.duration >= 900 GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count WHERE kernel != pdv GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count WHERE kernel < flux GROUP BY kernel ORDER BY kernel",
	"LET ms = scale(time.duration, 0.5) AGGREGATE sum(ms) WHERE ms > 100 GROUP BY kernel ORDER BY kernel",
	"AGGREGATE count WHERE mpi.rank = 11 GROUP BY kernel",
	"AGGREGATE avg(time.duration) GROUP BY mpi.rank ORDER BY mpi.rank",
}

// FuzzIndexedQueryDiff is the index-layer differential oracle: random
// record populations written at random block sizes must produce
// byte-identical query output with and without the sidecar index, at
// serial and sharded worker counts. Any divergence means unsound pruning,
// projection, or block navigation.
func FuzzIndexedQueryDiff(f *testing.F) {
	f.Add(uint16(50), uint16(8), uint16(1), uint16(0))
	f.Add(uint16(200), uint16(3), uint16(2), uint16(12345))
	f.Add(uint16(7), uint16(1), uint16(7), uint16(999))
	f.Add(uint16(300), uint16(64), uint16(12), uint16(7))
	f.Add(uint16(129), uint16(16), uint16(9), uint16(54321))
	f.Fuzz(func(t *testing.T, nRecs, blockRecs, qsel, seed uint16) {
		n := int(nRecs)%512 + 1
		block := int(blockRecs)%64 + 1
		qt := fuzzQueries[int(qsel)%len(fuzzQueries)]
		fx := newFixture(t)
		recs := fuzzRecords(fx, n, seed)
		dir := t.TempDir()
		files := []string{
			writeIndexedFile(t, dir, "a.cali", fx.reg, recs[:n/2], block),
			writeIndexedFile(t, dir, "b.cali", fx.reg, recs[n/2:], block),
		}
		for _, jobs := range []int{1, 4} {
			want, _ := runRows(t, qt, files, jobs, ScanOptions{})
			got, _ := runRows(t, qt, files, jobs, ScanOptions{UseIndex: true})
			if got != want {
				t.Errorf("n=%d block=%d jobs=%s query %q: indexed output differs\nindexed:\n%s\nfull scan:\n%s",
					n, block, strconv.Itoa(jobs), qt, got, want)
			}
		}
	})
}

// fuzzRecords generates the shared record population: some records miss
// the kernel attribute, some miss the rank, durations span negatives.
func fuzzRecords(fx *fixture, n int, seed uint16) []snapshot.FlatRecord {
	kernels := []string{"advec", "pdv", "flux", "calc-dt"}
	recs := make([]snapshot.FlatRecord, n)
	for i := range recs {
		h := uint32(i)*2654435761 + uint32(seed)
		var r snapshot.FlatRecord
		if h%7 != 3 {
			r = append(r, attr.Entry{Attr: fx.kernel, Value: attr.StringV(kernels[h%4])})
		}
		if h%5 != 2 {
			r = append(r, attr.Entry{Attr: fx.rank, Value: attr.IntV(int64(h % 13))})
		}
		r = append(r, attr.Entry{Attr: fx.dur, Value: attr.IntV(int64(h%2000) - 500)})
		recs[i] = r
	}
	return recs
}

// appendStream appends recs to an existing .cali file as a fresh
// self-describing stream (a new writer re-emits the metadata lines it
// needs), the way a restarted recorder extends a capture file.
func appendStream(t *testing.T, path string, reg *attr.Registry, recs []snapshot.FlatRecord) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := calformat.NewWriter(f, reg, contexttree.New())
	for _, r := range recs {
		if err := w.WriteFlat(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzCachedQueryDiff is the cache-layer differential oracle: for random
// record populations, block sizes, and query shapes, cached execution —
// cold (store), warm (hit), after an append (incremental tail scan), and
// warm sharded — must render byte-identical output to an uncached scan.
// Any divergence means the cached state, the file-identity check, or the
// tail replay is unsound.
func FuzzCachedQueryDiff(f *testing.F) {
	f.Add(uint16(50), uint16(8), uint16(1), uint16(0), uint16(10))
	f.Add(uint16(200), uint16(3), uint16(2), uint16(12345), uint16(0))
	f.Add(uint16(7), uint16(1), uint16(7), uint16(999), uint16(1))
	f.Add(uint16(300), uint16(64), uint16(12), uint16(7), uint16(33))
	f.Add(uint16(129), uint16(16), uint16(9), uint16(54321), uint16(47))
	f.Add(uint16(64), uint16(4), uint16(14), uint16(22), uint16(64))
	f.Add(uint16(511), uint16(32), uint16(8), uint16(4242), uint16(5))
	f.Add(uint16(33), uint16(2), uint16(13), uint16(77), uint16(12))
	f.Add(uint16(180), uint16(9), uint16(6), uint16(31337), uint16(21))
	f.Fuzz(func(t *testing.T, nRecs, blockRecs, qsel, seed, tailRecs uint16) {
		n := int(nRecs)%512 + 1
		block := int(blockRecs)%64 + 1
		tail := int(tailRecs) % 64
		qt := fuzzQueries[int(qsel)%len(fuzzQueries)]
		fx := newFixture(t)
		recs := fuzzRecords(fx, n+tail, seed)
		dir := t.TempDir()
		files := []string{
			writeIndexedFile(t, dir, "a.cali", fx.reg, recs[:n/2], block),
			writeIndexedFile(t, dir, "b.cali", fx.reg, recs[n/2:n], block),
		}
		store, err := qcache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cached := ScanOptions{UseIndex: true, Cache: store}

		for _, mode := range []string{"cold", "warm"} {
			want, _ := runRows(t, qt, files, 1, ScanOptions{})
			got, _ := runRows(t, qt, files, 1, cached)
			if got != want {
				t.Errorf("n=%d block=%d %s query %q: cached output differs\ncached:\n%s\nfull scan:\n%s",
					n, block, mode, qt, got, want)
			}
		}

		// append-then-requery: the grown file's entry must be reused for
		// its prefix only, with the tail re-aggregated
		if tail > 0 {
			appendStream(t, files[1], fx.reg, recs[n:])
		}
		want, _ := runRows(t, qt, files, 1, ScanOptions{})
		got, _ := runRows(t, qt, files, 1, cached)
		if got != want {
			t.Errorf("n=%d tail=%d query %q: post-append cached output differs\ncached:\n%s\nfull scan:\n%s",
				n, tail, qt, got, want)
		}
		// warm sharded after the append round
		gotSharded, _ := runRows(t, qt, files, 4, cached)
		if gotSharded != want {
			t.Errorf("n=%d tail=%d query %q: sharded cached output differs\ncached:\n%s\nfull scan:\n%s",
				n, tail, qt, gotSharded, want)
		}
	})
}
