package query

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"caligo/internal/calql"
	"caligo/internal/trace"
)

// EXPLAIN support: a query's resolved execution plan as a list of phase
// nodes matching the span names the engines emit, so EXPLAIN ANALYZE can
// attribute measured spans back to plan nodes.

// PlanOptions describes the execution environment a plan is built for.
type PlanOptions struct {
	// Inputs is the number of input files (0 when reading a stream).
	Inputs int
	// Ranks is the emulated MPI rank count; 0 means serial execution.
	Ranks int
	// Fanin is the reduction-tree arity (parallel execution only).
	Fanin int
	// Jobs is the sharded-execution worker count; values > 1 select the
	// in-process multi-core path (ignored when Ranks > 0).
	Jobs int
	// UseIndex marks index-aware scanning (sidecar block indexes consulted
	// for file/block pruning and projection pushdown).
	UseIndex bool
	// Cache marks per-file aggregate-state caching; CacheDir is its store
	// directory (shown in the plan).
	Cache    bool
	CacheDir string
}

// PlanStat is one measured quantity attributed to a plan node, summed
// over the node's spans (record counts, byte counts, ...).
type PlanStat struct {
	Name  string
	Value int64
}

// PlanNode is one phase of the resolved execution plan.
type PlanNode struct {
	// Phase is the pipeline phase name; trace spans whose name ends in
	// ".<Phase>" are attributed to this node by Annotate.
	Phase string
	// Detail describes what the phase resolved to for this query.
	Detail string

	// Annotation from EXPLAIN ANALYZE (zero until Annotate runs):
	Spans   int        // matching spans
	TotalNS int64      // summed wall time
	Stats   []PlanStat // summed integer span args, sorted by name
}

// Plan is a query's resolved execution plan.
type Plan struct {
	// Analyze marks an EXPLAIN ANALYZE plan (annotations are meaningful).
	Analyze bool
	// Query is the canonical form of the query being explained.
	Query string
	// Execution describes the environment ("serial", "parallel (...)").
	Execution string
	// Nodes lists the phases in execution order.
	Nodes []PlanNode
}

// BuildPlan resolves the execution plan of a query: which pipeline phases
// run, and what each does for this query. The inner (unwrapped) query is
// used; the caller decides serial vs parallel execution via opts.
func BuildPlan(q *calql.Query, opts PlanOptions) (*Plan, error) {
	inner := q.WithoutExplain()
	if _, err := inner.Scheme(); err != nil {
		return nil, err
	}
	p := &Plan{
		Analyze:   q.Explain == calql.ExplainAnalyze,
		Query:     inner.String(),
		Execution: "serial",
	}
	sharded := opts.Ranks <= 0 && opts.Jobs > 1
	if opts.Ranks > 0 {
		fanin := opts.Fanin
		if fanin < 2 {
			fanin = 2
		}
		p.Execution = fmt.Sprintf("parallel (%d ranks, fan-in %d reduction tree)", opts.Ranks, fanin)
	} else if sharded {
		p.Execution = fmt.Sprintf("sharded (%d parallel workers, pairwise DB merge)", opts.Jobs)
	}

	if opts.UseIndex {
		sp := NewScanPlan(inner, ScanOptions{UseIndex: true})
		var parts []string
		if conds := sp.PrunableConds(); len(conds) > 0 {
			parts = append(parts, "prune blocks on "+strings.Join(conds, ", "))
		} else {
			parts = append(parts, "no prunable conditions")
		}
		if proj := sp.Projection(); proj != nil {
			parts = append(parts, fmt.Sprintf("decode %d attrs: %s", len(proj), strings.Join(proj, ", ")))
		} else {
			parts = append(parts, "full decode")
		}
		p.add("index", strings.Join(parts, "; "))
	} else {
		p.add("index", "disabled (full scan)")
	}

	if opts.Cache {
		if !inner.HasAggregation() {
			p.add("cache", "inactive (non-aggregating query)")
		} else {
			detail := "per-file aggregate state"
			if opts.CacheDir != "" {
				detail += " in " + opts.CacheDir
			}
			detail += "; hit merges cached state, append scans the tail only"
			p.add("cache", detail)
		}
	}

	switch {
	case sharded:
		p.add("shard", fmt.Sprintf("%d workers read+aggregate %d input files round-robin",
			opts.Jobs, opts.Inputs))
	case opts.Inputs == 1:
		p.add("read", "1 input file")
	case opts.Inputs > 1:
		p.add("read", fmt.Sprintf("%d input files", opts.Inputs))
	default:
		p.add("read", "input stream")
	}
	if len(inner.Lets) > 0 {
		defs := make([]string, len(inner.Lets))
		for i, l := range inner.Lets {
			defs[i] = l.String()
		}
		p.add("let", strings.Join(defs, ", "))
	}
	if len(inner.Where) > 0 {
		conds := make([]string, len(inner.Where))
		for i, c := range inner.Where {
			conds[i] = c.String()
		}
		p.add("where", strings.Join(conds, " AND "))
	}
	if inner.HasAggregation() {
		var ops []string
		for _, o := range inner.Ops {
			ops = append(ops, o.String())
		}
		detail := strings.Join(ops, ", ")
		if len(inner.GroupBy) > 0 {
			detail += " GROUP BY " + strings.Join(inner.GroupBy, ", ")
		}
		p.add("aggregate", detail)
	} else {
		p.add("aggregate", "collect matching records (no aggregation)")
	}
	if sharded && inner.HasAggregation() {
		p.add("merge", "fold shard databases pairwise into shard 0")
	}
	if opts.Ranks > 0 {
		p.add("reduce", "merge per-rank partial results at rank 0")
	} else if inner.HasAggregation() {
		p.add("reduce", "flush aggregation database to result rows")
	} else {
		p.add("reduce", "pass collected rows through")
	}
	var post []string
	for _, po := range inner.PostOps {
		post = append(post, po.String())
	}
	if len(inner.OrderBy) > 0 {
		items := make([]string, len(inner.OrderBy))
		for i, o := range inner.OrderBy {
			items[i] = o.String()
		}
		post = append(post, "ORDER BY "+strings.Join(items, ", "))
	}
	if inner.Limit >= 0 {
		post = append(post, fmt.Sprintf("LIMIT %d", inner.Limit))
	}
	if len(post) == 0 {
		post = append(post, "none")
	}
	p.add("postprocess", strings.Join(post, "; "))
	kind := inner.Format.Kind
	if kind == "" {
		kind = "table"
	}
	p.add("format", kind)
	return p, nil
}

func (p *Plan) add(phase, detail string) {
	p.Nodes = append(p.Nodes, PlanNode{Phase: phase, Detail: detail})
}

// Annotate attributes measured spans to plan nodes: a span belongs to the
// node whose Phase matches the suffix after the last '.' in the span name
// (query.read and pquery.read both land on the read node). Span counts and
// wall time are summed per node, and every integer span argument becomes a
// summed per-node stat.
func (p *Plan) Annotate(spans []trace.SpanData) {
	byPhase := map[string]*PlanNode{}
	for i := range p.Nodes {
		byPhase[p.Nodes[i].Phase] = &p.Nodes[i]
	}
	stats := map[string]map[string]int64{}
	for i := range spans {
		d := &spans[i]
		name := d.Name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		node, ok := byPhase[name]
		if !ok {
			continue
		}
		node.Spans++
		node.TotalNS += d.Dur
		for _, a := range d.Args() {
			if v, isNum := a.Int64(); isNum {
				m := stats[node.Phase]
				if m == nil {
					m = map[string]int64{}
					stats[node.Phase] = m
				}
				m[a.Key()] += v
			}
		}
	}
	for i := range p.Nodes {
		node := &p.Nodes[i]
		m := stats[node.Phase]
		if len(m) == 0 {
			continue
		}
		node.Stats = make([]PlanStat, 0, len(m))
		for k, v := range m {
			node.Stats = append(node.Stats, PlanStat{Name: k, Value: v})
		}
		sort.Slice(node.Stats, func(a, b int) bool {
			return node.Stats[a].Name < node.Stats[b].Name
		})
	}
}

// Write renders the plan as text: the query, the execution mode, and one
// line per phase — with measured time and stats when the plan is analyzed.
func (p *Plan) Write(w io.Writer) error {
	head := "EXPLAIN"
	if p.Analyze {
		head = "EXPLAIN ANALYZE"
	}
	if _, err := fmt.Fprintf(w, "%s\nquery:     %s\nexecution: %s\nplan:\n", head, p.Query, p.Execution); err != nil {
		return err
	}
	for _, n := range p.Nodes {
		if _, err := fmt.Fprintf(w, "  -> %-12s %s\n", n.Phase, n.Detail); err != nil {
			return err
		}
		if !p.Analyze {
			continue
		}
		line := fmt.Sprintf("spans=%d time=%v", n.Spans, time.Duration(n.TotalNS))
		for _, s := range n.Stats {
			line += fmt.Sprintf(" %s=%d", s.Name, s.Value)
		}
		if _, err := fmt.Fprintf(w, "     %s\n", line); err != nil {
			return err
		}
	}
	return nil
}
