package query

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"caligo/internal/attr"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/obs"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Sharded multi-core execution of file queries: the scan plan (scan.go)
// turns the input files into scan units — whole unindexed files, or block
// ranges of indexed ones, with index-excluded files and blocks already
// dropped — and the units are fanned out round-robin to worker goroutines.
// Each worker owns a private read path (context tree, calformat reader)
// and a private engine — and therefore a private aggregation-database
// shard — and the shards are folded together with the same DB.Merge the
// cross-process reduction uses (Section IV-C), applied in-process up a
// pairwise tree. The attribute registry is shared (it is
// mutex-protected), so attribute ids, LET definitions, and result
// attributes resolve identically across shards.
//
// Because indexed files split into block-range units, a single large file
// parallelizes across workers; without an index the unit is the file, as
// before.
//
// Output is byte-identical to serial execution: unit→worker assignment
// and the merge order are static functions of (len(units), jobs),
// aggregation state merges exactly (integer sums stay integers), the
// flush order is the sorted key encoding (insertion-order independent),
// and non-aggregating rows are reassembled in (file, block) order.

var (
	telShards  = telemetry.NewCounter("caligo.query.shards")
	telMergeNS = telemetry.NewCounter("caligo.query.merge.ns")
)

// DefaultJobs is the worker count used when jobs <= 0: one per available
// CPU, the sweet spot for the read+aggregate workers (they are CPU-bound
// on decoding).
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// shardState is one worker's private execution state.
type shardState struct {
	eng *Engine
}

// RunShardedFiles executes q over the files with up to jobs parallel
// read+aggregate workers and returns the finalized result rows. jobs <= 0
// selects DefaultJobs(); the effective worker count never exceeds the
// scan-unit count. The registry is shared across workers and carries the
// result attributes afterwards, exactly as with serial execution.
// Sidecar indexes are used when present.
func RunShardedFiles(q *calql.Query, reg *attr.Registry, files []string, jobs int) ([]snapshot.FlatRecord, error) {
	return RunShardedFilesObs(q, reg, files, jobs, nil)
}

// RunShardedFilesObs is RunShardedFiles with per-query attribution: shard
// wall times and throughput are accounted into aq (nil disables
// attribution at zero cost), and the query ID is stamped on the shard and
// merge spans so traces correlate with the slow-query log.
func RunShardedFilesObs(q *calql.Query, reg *attr.Registry, files []string, jobs int, aq *obs.ActiveQuery) ([]snapshot.FlatRecord, error) {
	return RunShardedFilesOpts(q, reg, files, jobs, aq, ScanOptions{UseIndex: true})
}

// RunShardedFilesOpts is RunShardedFilesObs with explicit scan options
// (index use on or off).
func RunShardedFilesOpts(q *calql.Query, reg *attr.Registry, files []string, jobs int, aq *obs.ActiveQuery, opts ScanOptions) ([]snapshot.FlatRecord, error) {
	return RunShardedPlan(NewScanPlan(q, opts), q, reg, files, jobs, aq)
}

// RunShardedPlan executes q over the files using a caller-provided scan
// plan, so the caller can read the plan's scan statistics afterwards
// (EXPLAIN ANALYZE does).
func RunShardedPlan(plan *ScanPlan, q *calql.Query, reg *attr.Registry, files []string, jobs int, aq *obs.ActiveQuery) ([]snapshot.FlatRecord, error) {
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	units := plan.PlanUnits(files, jobs)
	if jobs > len(units) {
		jobs = len(units)
	}
	if jobs < 1 {
		jobs = 1
	}
	telShards.Add(uint64(jobs))

	shards := make([]*shardState, jobs)
	// per-unit row collection for non-aggregating queries: workers write
	// disjoint indices, and concatenating in index order restores the
	// serial (file, record) order (units are sorted by file, then block)
	rowsByUnit := make([][]snapshot.FlatRecord, len(units))
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		shards[w] = &shardState{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = runShard(plan, q, reg, units, jobs, w, shards[w], rowsByUnit, aq)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	root := shards[0].eng
	if root.db != nil {
		// pairwise tree reduction over the shard databases: at stride s,
		// shard i+s folds into shard i. Merges within a level touch
		// disjoint (dst, src) pairs and run concurrently; the merge order
		// is a static function of the worker count, so grouping — and
		// with it the output — is deterministic.
		start := time.Now()
		for stride := 1; stride < jobs; stride *= 2 {
			var mw sync.WaitGroup
			for i := 0; i+stride < jobs; i += 2 * stride {
				mw.Add(1)
				go func(dst, src int) {
					defer mw.Done()
					sp := trace.Begin("query.merge")
					if qid := aq.ID(); qid != 0 {
						sp.ArgInt("qid", int64(qid))
					}
					sp.ArgInt("dst", int64(dst))
					sp.ArgInt("src", int64(src))
					if err := shards[dst].eng.db.Merge(shards[src].eng.db); err != nil {
						errs[dst] = fmt.Errorf("query: merge shard %d into %d: %w", src, dst, err)
					}
					sp.ArgInt("buckets", int64(shards[dst].eng.db.Len()))
					sp.End()
				}(i, i+stride)
			}
			mw.Wait()
		}
		mergeWall := time.Since(start)
		telMergeNS.Add(uint64(mergeWall.Nanoseconds()))
		aq.Phase("merge", mergeWall)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		// non-aggregating query: reassemble collected rows in unit order
		var rows []snapshot.FlatRecord
		for _, rs := range rowsByUnit {
			rows = append(rows, rs...)
		}
		root.rows = rows
	}
	if st := plan.Stats(); st.CacheHits+st.CacheMisses+st.CacheIncremental > 0 {
		aq.CacheStats(uint64(st.CacheHits), uint64(st.CacheMisses), uint64(st.CacheIncremental))
	}
	// the shared postprocess tail (post-ops, ORDER BY, LIMIT) runs once,
	// over the fully merged shard 0
	var postStart time.Time
	if aq != nil {
		postStart = time.Now()
	}
	rows, err := root.Results()
	if aq != nil {
		aq.Phase("postprocess", time.Since(postStart))
	}
	return rows, err
}

// runShard is one worker: it builds a private engine and context tree,
// scans its round-robin unit subset (units w, w+jobs, ...), and feeds
// every surviving record through the engine.
func runShard(plan *ScanPlan, q *calql.Query, reg *attr.Registry, units []Unit, jobs, w int,
	st *shardState, rowsByUnit [][]snapshot.FlatRecord, aq *obs.ActiveQuery) error {
	sp := trace.Begin("query.shard")
	sp.SetTid(w)
	defer sp.End()
	if qid := aq.ID(); qid != 0 {
		sp.ArgInt("qid", int64(qid))
	}
	var shardStart time.Time
	if aq != nil {
		shardStart = time.Now()
	}

	eng, err := New(q, reg)
	if err != nil {
		return err
	}
	st.eng = eng
	var nunits, records int
	var bytes int64
	for ui := w; ui < len(units); ui += jobs {
		// a fresh tree per unit: block ranges of one file may land on
		// different workers, so node ids must not leak across units
		tree := contexttree.New()
		n, nb, err := plan.ScanUnit(eng, units[ui], reg, tree)
		if err != nil {
			return err
		}
		if eng.db == nil {
			// steal the rows collected for this unit so they can be
			// reassembled in unit order
			rowsByUnit[ui] = eng.rows
			eng.rows = nil
		}
		nunits++
		records += n
		bytes += nb
	}
	sp.ArgInt("worker", int64(w))
	sp.ArgInt("units", int64(nunits))
	sp.ArgInt("records", int64(records))
	sp.ArgInt("bytes", bytes)
	if aq != nil {
		aq.ShardDone(time.Since(shardStart), uint64(records), uint64(bytes))
	}
	return nil
}
