package query

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
)

// readCali parses a .cali stream into flat records using reg.
func readCali(t *testing.T, stream string, reg *attr.Registry) []snapshot.FlatRecord {
	t.Helper()
	rd := calformat.NewReader(strings.NewReader(stream), reg, contexttree.New())
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("readCali: %v", err)
	}
	return recs
}

type fixture struct {
	reg    *attr.Registry
	kernel attr.Attribute
	mpifn  attr.Attribute
	rank   attr.Attribute
	dur    attr.Attribute
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := attr.NewRegistry()
	return &fixture{
		reg:    reg,
		kernel: reg.MustCreate("kernel", attr.String, attr.Nested),
		mpifn:  reg.MustCreate("mpi.function", attr.String, 0),
		rank:   reg.MustCreate("mpi.rank", attr.Int, 0),
		dur:    reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable),
	}
}

func (fx *fixture) rec(kernel, mpifn string, rank, dur int64) snapshot.FlatRecord {
	var r snapshot.FlatRecord
	if kernel != "" {
		r = append(r, attr.Entry{Attr: fx.kernel, Value: attr.StringV(kernel)})
	}
	if mpifn != "" {
		r = append(r, attr.Entry{Attr: fx.mpifn, Value: attr.StringV(mpifn)})
	}
	if rank >= 0 {
		r = append(r, attr.Entry{Attr: fx.rank, Value: attr.IntV(rank)})
	}
	r = append(r, attr.Entry{Attr: fx.dur, Value: attr.IntV(dur)})
	return r
}

func (fx *fixture) sampleData() []snapshot.FlatRecord {
	return []snapshot.FlatRecord{
		fx.rec("advec-mom", "", 0, 10),
		fx.rec("advec-mom", "", 0, 20),
		fx.rec("advec-mom", "", 1, 15),
		fx.rec("calc-dt", "", 0, 100),
		fx.rec("calc-dt", "", 1, 120),
		fx.rec("", "MPI_Barrier", 0, 50),
		fx.rec("", "MPI_Barrier", 1, 60),
		fx.rec("", "MPI_Allreduce", 0, 30),
	}
}

func runQuery(t *testing.T, fx *fixture, qs string, recs []snapshot.FlatRecord) []snapshot.FlatRecord {
	t.Helper()
	q, err := calql.Parse(qs)
	if err != nil {
		t.Fatalf("Parse(%q): %v", qs, err)
	}
	rows, err := Run(q, fx.reg, recs)
	if err != nil {
		t.Fatalf("Run(%q): %v", qs, err)
	}
	return rows
}

func TestAggregateGroupBy(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx, "AGGREGATE count, sum(time.duration) GROUP BY kernel", fx.sampleData())
	got := map[string][2]int64{}
	for _, r := range rows {
		k, _ := r.GetByName("kernel")
		c, _ := r.GetByName("aggregate.count")
		s, _ := r.GetByName("sum#time.duration")
		got[k.String()] = [2]int64{c.AsInt(), s.AsInt()}
	}
	want := map[string][2]int64{
		"advec-mom": {3, 45},
		"calc-dt":   {2, 220},
		"":          {3, 140},
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("group %q = %v, want %v", k, got[k], w)
		}
	}
}

func TestWhereNotFiltersMPI(t *testing.T) {
	// the paper's Fig. 8 query shape: exclude MPI records
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"AGGREGATE sum(time.duration) WHERE not(mpi.function) GROUP BY kernel",
		fx.sampleData())
	total := int64(0)
	for _, r := range rows {
		s, _ := r.GetByName("sum#time.duration")
		total += s.AsInt()
	}
	if total != 265 { // all except the MPI rows (50+60+30)
		t.Errorf("total = %d, want 265", total)
	}
}

func TestWhereComparisons(t *testing.T) {
	fx := newFixture(t)
	data := fx.sampleData()
	tests := []struct {
		where string
		want  int
	}{
		{"WHERE mpi.rank=0", 5},
		{"WHERE mpi.rank!=0", 3},
		{"WHERE mpi.rank<1", 5},
		{"WHERE mpi.rank<=1", 8},
		{"WHERE mpi.rank>0", 3},
		{"WHERE mpi.rank>=1", 3},
		{"WHERE kernel=calc-dt", 2},
		{"WHERE not(kernel=calc-dt)", 6},
		{"WHERE kernel, mpi.rank=0", 3},
		{"WHERE time.duration>=100", 2},
	}
	for _, tt := range tests {
		rows := runQuery(t, fx, "SELECT * "+tt.where, data)
		if len(rows) != tt.want {
			t.Errorf("%s: %d rows, want %d", tt.where, len(rows), tt.want)
		}
	}
}

func TestComparisonAgainstAbsentAttribute(t *testing.T) {
	fx := newFixture(t)
	data := []snapshot.FlatRecord{fx.rec("k", "", -1, 5)} // no rank
	if rows := runQuery(t, fx, "SELECT * WHERE mpi.rank=0", data); len(rows) != 0 {
		t.Error("comparison against absent attribute must not match")
	}
	if rows := runQuery(t, fx, "SELECT * WHERE not(mpi.rank=0)", data); len(rows) != 1 {
		t.Error("negated comparison against absent attribute must match")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"AGGREGATE sum(time.duration) GROUP BY kernel ORDER BY sum#time.duration DESC LIMIT 2",
		fx.sampleData())
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	k0, _ := rows[0].GetByName("kernel")
	if k0.String() != "calc-dt" {
		t.Errorf("top row = %q, want calc-dt", k0.String())
	}
	s0, _ := rows[0].GetByName("sum#time.duration")
	s1, _ := rows[1].GetByName("sum#time.duration")
	if s0.AsInt() < s1.AsInt() {
		t.Error("descending order violated")
	}
}

func TestOrderByMissingValuesFirst(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"AGGREGATE count GROUP BY kernel ORDER BY kernel", fx.sampleData())
	// the empty-kernel group has no kernel entry and must sort first
	if _, ok := rows[0].GetByName("kernel"); ok {
		t.Errorf("first row should be the missing-kernel group: %v", rows[0])
	}
}

func TestLetScaleAndAggregate(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"LET msec = scale(time.duration, 0.5) AGGREGATE sum(msec) GROUP BY kernel WHERE kernel=calc-dt",
		fx.sampleData())
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	s, _ := rows[0].GetByName("sum#msec")
	if s.AsFloat() != 110 { // (100+120)*0.5
		t.Errorf("sum#msec = %v, want 110", s)
	}
}

func TestLetTruncateBinsIterations(t *testing.T) {
	fx := newFixture(t)
	iter := fx.reg.MustCreate("iteration", attr.Int, 0)
	var recs []snapshot.FlatRecord
	for i := int64(0); i < 25; i++ {
		recs = append(recs, snapshot.FlatRecord{
			{Attr: iter, Value: attr.IntV(i)},
			{Attr: fx.dur, Value: attr.IntV(1)},
		})
	}
	rows := runQuery(t, fx,
		"LET block = truncate(iteration, 10) AGGREGATE count GROUP BY block", recs)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 blocks", len(rows))
	}
	counts := map[string]int64{}
	for _, r := range rows {
		b, _ := r.GetByName("block")
		c, _ := r.GetByName("aggregate.count")
		counts[b.String()] = c.AsInt()
	}
	if counts["0"] != 10 || counts["10"] != 10 || counts["20"] != 5 {
		t.Errorf("counts = %v", counts)
	}
}

func TestLetFirstCoalesces(t *testing.T) {
	fx := newFixture(t)
	recs := []snapshot.FlatRecord{
		fx.rec("k1", "", -1, 1),
		fx.rec("", "MPI_Send", -1, 1),
	}
	rows := runQuery(t, fx,
		"LET where = first(kernel, mpi.function) AGGREGATE count GROUP BY where", recs)
	names := map[string]bool{}
	for _, r := range rows {
		v, _ := r.GetByName("where")
		names[v.String()] = true
	}
	if !names["k1"] || !names["MPI_Send"] {
		t.Errorf("groups = %v", names)
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	fx := newFixture(t)
	q := calql.MustParse("SELECT kernel, sum#time.duration AS time AGGREGATE sum(time.duration) GROUP BY kernel FORMAT csv")
	e := MustNew(q, fx.reg)
	if err := e.ProcessAll(fx.sampleData()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "kernel,time" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + 3 groups
		t.Errorf("lines = %v", lines)
	}
}

func TestTableFormat(t *testing.T) {
	fx := newFixture(t)
	q := calql.MustParse("AGGREGATE count GROUP BY kernel ORDER BY kernel")
	e := MustNew(q, fx.reg)
	e.ProcessAll(fx.sampleData())
	var buf bytes.Buffer
	if err := e.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "kernel") || !strings.Contains(out, "aggregate.count") {
		t.Errorf("table output missing headers:\n%s", out)
	}
	if !strings.Contains(out, "advec-mom") || !strings.Contains(out, "calc-dt") {
		t.Errorf("table output missing rows:\n%s", out)
	}
}

func TestJSONFormat(t *testing.T) {
	fx := newFixture(t)
	q := calql.MustParse("AGGREGATE count, sum(time.duration) GROUP BY kernel FORMAT json")
	e := MustNew(q, fx.reg)
	e.ProcessAll(fx.sampleData())
	var buf bytes.Buffer
	if err := e.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 3 {
		t.Errorf("rows = %d", len(out))
	}
	for _, obj := range out {
		if obj["kernel"] == "calc-dt" {
			if obj["sum#time.duration"].(float64) != 220 {
				t.Errorf("calc-dt sum = %v", obj["sum#time.duration"])
			}
		}
	}
}

func TestExpandFormat(t *testing.T) {
	fx := newFixture(t)
	q := calql.MustParse("SELECT * WHERE kernel=calc-dt FORMAT expand")
	e := MustNew(q, fx.reg)
	e.ProcessAll(fx.sampleData())
	var buf bytes.Buffer
	if err := e.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "kernel=calc-dt") {
		t.Errorf("expand output:\n%s", buf.String())
	}
}

func TestTreeFormat(t *testing.T) {
	fx := newFixture(t)
	// nested kernels: make a path main/sub
	mk := func(path ...string) snapshot.FlatRecord {
		var r snapshot.FlatRecord
		for _, p := range path {
			r = append(r, attr.Entry{Attr: fx.kernel, Value: attr.StringV(p)})
		}
		r = append(r, attr.Entry{Attr: fx.dur, Value: attr.IntV(1)})
		return r
	}
	q := calql.MustParse("AGGREGATE count GROUP BY kernel FORMAT tree")
	e := MustNew(q, fx.reg)
	e.ProcessAll([]snapshot.FlatRecord{mk("main"), mk("main", "sub"), mk("main", "sub")})
	var buf bytes.Buffer
	if err := e.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "main") || !strings.Contains(out, "  sub") {
		t.Errorf("tree output lacks indented child:\n%s", out)
	}
}

func TestCaliFormatRoundTrips(t *testing.T) {
	fx := newFixture(t)
	q := calql.MustParse("AGGREGATE count, sum(time.duration) GROUP BY kernel FORMAT cali")
	e := MustNew(q, fx.reg)
	e.ProcessAll(fx.sampleData())
	var buf bytes.Buffer
	if err := e.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	// feed the output into a second query (multi-stage workflow)
	q2 := calql.MustParse("AGGREGATE sum(aggregate.count) GROUP BY kernel")
	reg2 := attr.NewRegistry()
	e2 := MustNew(q2, reg2)
	recs := readCali(t, buf.String(), reg2)
	e2.ProcessAll(recs)
	rows, err := e2.Results()
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, r := range rows {
		v, _ := r.GetByName("sum#aggregate.count")
		total += v.AsInt()
	}
	if total != 8 {
		t.Errorf("total re-aggregated count = %d, want 8", total)
	}
}

func TestNonAggregatingSelect(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx, "SELECT * WHERE kernel ORDER BY time.duration DESC LIMIT 3", fx.sampleData())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	d0, _ := rows[0].GetByName("time.duration")
	if d0.AsInt() != 120 {
		t.Errorf("top duration = %v, want 120", d0)
	}
}

func TestEmptyInput(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx, "AGGREGATE count GROUP BY kernel", nil)
	if len(rows) != 0 {
		t.Errorf("rows = %d, want 0", len(rows))
	}
	// formatting empty results must not fail
	q := calql.MustParse("AGGREGATE count GROUP BY kernel")
	e := MustNew(q, fx.reg)
	var buf bytes.Buffer
	if err := e.Execute(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEngineErrors(t *testing.T) {
	fx := newFixture(t)
	// LET name conflicting with an existing attribute of different type
	q := calql.MustParse("LET kernel = scale(time.duration, 2) AGGREGATE count GROUP BY kernel")
	if _, err := New(q, fx.reg); err == nil {
		t.Error("LET redefining a string attribute as float should error")
	}
}

func TestMustNewPanics(t *testing.T) {
	fx := newFixture(t)
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	q := calql.MustParse("LET kernel = scale(x, 2) AGGREGATE count GROUP BY kernel")
	MustNew(q, fx.reg)
}
