package query

// Aggregate-cache scan routing: the bridge between the per-file state
// cache (internal/qcache) and the scan planner. PlanUnits classifies
// each input file — hit (cached state covers the whole file), incremental
// (the file grew past the cached watermark), or miss — and ScanUnit
// executes the classified unit:
//
//   - hit: the cached core.DB state blob is decoded into a private
//     database and merged into the engine; the file is never opened for
//     decoding (only the 128KiB identity hash was read at plan time).
//   - incremental: the reader replays the prefix's metadata spans
//     (attr/node/globals definitions later records depend on), seeks to
//     the watermark, decodes only the appended tail into a private
//     engine seeded with the cached state, merges, and re-stores under
//     the new watermark.
//   - miss: the unit scans normally — but into a private engine whose
//     per-file state is stored before merging into the caller's engine.
//
// Both the hit and miss paths merge a private per-file database into the
// engine, so grouping is identical warm and cold — the same argument
// that makes sharded execution byte-identical to serial. Every
// validation failure (state blob undecodable, replay desync, file
// changed mid-scan) degrades to a full scan of the file and bumps
// caligo.qcache.fallback; the query answer is never wrong, only slower.

import (
	"fmt"
	"io"
	"os"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/qcache"
	"caligo/internal/snapshot"
	"caligo/internal/trace"
)

// Unit cache routing modes.
const (
	cacheNone = iota // cache disabled for this unit; scan normally, no store
	cacheHitMode
	cacheIncrMode
	cacheMissMode
)

// maxMetaSpans bounds a stored entry's metadata span list; a file more
// fragmented than this records one whole-prefix span instead (the
// incremental scan then text-scans the prefix rather than seeking).
const maxMetaSpans = 64

// missMode tags units planned outside the cache classification switch.
func (p *ScanPlan) missMode() int {
	if p.cache != nil {
		return cacheMissMode
	}
	return cacheNone
}

// noteCacheFallback records one degraded cache path.
func (p *ScanPlan) noteCacheFallback() {
	qcache.TelFallback.Inc()
	p.mu.Lock()
	p.stats.CacheFallbacks++
	p.mu.Unlock()
}

// planCache classifies one input file against the cache: hit (entry
// covers the file exactly), incremental (the file grew and the entry's
// prefix is intact), or miss. cacheNone means the file could not be
// examined; the scan will surface the real error.
func (p *ScanPlan) planCache(file string) (int, *qcache.Entry) {
	st, err := os.Stat(file)
	if err != nil {
		return cacheNone, nil
	}
	size := st.Size()
	e := p.cache.Lookup(p.cachePlan, file)
	if e == nil {
		return cacheMissMode, nil
	}
	if e.Watermark <= 0 || e.Watermark > size {
		// truncated or rewritten shorter since stored: stale
		p.noteCacheFallback()
		return cacheMissMode, nil
	}
	f, err := os.Open(file)
	if err != nil {
		return cacheNone, nil
	}
	h, err := calformat.QuickHashPrefix(f, e.Watermark)
	f.Close()
	if err != nil || h != e.PrefixHash {
		// the covered prefix changed in place: stale
		p.noteCacheFallback()
		return cacheMissMode, nil
	}
	if e.Watermark == size {
		return cacheHitMode, e
	}
	return cacheIncrMode, e
}

// scanCacheHit serves a unit entirely from cached state. The blob is
// validated into a private database first, so a bad entry cannot leave
// the engine half-merged — it degrades to a stored full scan instead.
func (p *ScanPlan) scanCacheHit(eng *Engine, u Unit, reg *attr.Registry, tree *contexttree.Tree) (int, int64, error) {
	e := u.cacheEntry
	priv, err := New(p.q, reg)
	if err == nil && priv.db != nil && eng.db != nil {
		err = priv.db.MergeEncodedState(e.State)
	} else if err == nil {
		err = fmt.Errorf("query: cache hit on non-aggregating engine")
	}
	if err != nil {
		p.noteCacheFallback()
		u.cacheMode = cacheMissMode
		u.cacheEntry = nil
		return p.scanCacheMiss(eng, u, reg, tree)
	}
	if err := eng.db.Merge(priv.db); err != nil {
		return 0, 0, err
	}
	p.mu.Lock()
	p.stats.CacheBytesSkipped += e.Watermark
	p.mu.Unlock()
	qcache.TelBytesSkipped.Add(uint64(e.Watermark))
	sp := trace.Begin("query.cache")
	sp.ArgInt("bytes_skipped", e.Watermark)
	sp.End()
	return int(e.Records), 0, nil
}

// scanCacheMiss scans the unit in full through a private engine, stores
// the resulting per-file state, and merges it into the caller's engine.
func (p *ScanPlan) scanCacheMiss(eng *Engine, u Unit, reg *attr.Registry, tree *contexttree.Tree) (int, int64, error) {
	if eng.db == nil {
		n, bytes, _, err := p.scanUnitInto(eng, u, reg, tree)
		return n, bytes, err
	}
	priv, err := New(p.q, reg)
	if err != nil {
		return 0, 0, err
	}
	n, bytes, endOff, err := p.scanUnitInto(priv, u, reg, tree)
	if err != nil {
		return n, bytes, err
	}
	p.putEntry(u.File, priv, endOff, uint64(n), metaSpansOf(u.Idx, endOff))
	if err := eng.db.Merge(priv.db); err != nil {
		return n, bytes, err
	}
	return n, bytes, nil
}

// scanCacheIncr seeds a private engine with the cached state, decodes
// only the file's appended tail, merges, and re-stores under the new
// watermark. Any replay problem degrades to a stored full scan.
func (p *ScanPlan) scanCacheIncr(eng *Engine, u Unit, reg *attr.Registry, tree *contexttree.Tree) (int, int64, error) {
	e := u.cacheEntry
	priv, err := New(p.q, reg)
	if err == nil && priv.db != nil && eng.db != nil {
		err = priv.db.MergeEncodedState(e.State)
	} else if err == nil {
		err = fmt.Errorf("query: cache entry on non-aggregating engine")
	}
	if err != nil {
		p.noteCacheFallback()
		u.cacheMode = cacheMissMode
		u.cacheEntry = nil
		return p.scanCacheMiss(eng, u, reg, tree)
	}
	f, err := os.Open(u.File)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	rd := calformat.NewReader(f, reg, tree)
	if p.proj != nil {
		rd.SetProjection(p.proj)
	}
	// replay the prefix's metadata definitions, seeking over record runs
	replayErr := func() error {
		for _, s := range e.MetaSpans {
			if s.Off > rd.Offset() {
				if err := rd.SkipTo(s.Off); err != nil {
					return err
				}
			}
			if err := rd.ScanMetaUntil(s.Off + s.Len); err != nil {
				return err
			}
		}
		if e.Watermark > rd.Offset() {
			return rd.SkipTo(e.Watermark)
		}
		return nil
	}()
	if replayErr != nil {
		p.noteCacheFallback()
		u.cacheMode = cacheMissMode
		u.cacheEntry = nil
		return p.scanCacheMiss(eng, u, reg, tree)
	}
	metaBefore := rd.MetaLines()
	records := 0
	var rec snapshot.FlatRecord
	for {
		err := rd.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return records, rd.Offset() - e.Watermark, fmt.Errorf("%s: %w", u.File, err)
		}
		if err := priv.Process(rec); err != nil {
			return records, rd.Offset() - e.Watermark, err
		}
		records++
	}
	endOff := rd.Offset()
	tail := endOff - e.Watermark
	spans := e.MetaSpans
	if rd.MetaLines() > metaBefore {
		// the tail holds new definitions: future tails must replay it too
		spans = append(append([]qcache.Span{}, spans...), qcache.Span{Off: e.Watermark, Len: tail})
	}
	p.putEntry(u.File, priv, endOff, e.Records+uint64(records), spans)
	if err := eng.db.Merge(priv.db); err != nil {
		return records, tail, err
	}
	p.mu.Lock()
	p.stats.CacheBytesSkipped += e.Watermark
	p.mu.Unlock()
	qcache.TelBytesSkipped.Add(uint64(e.Watermark))
	sp := trace.Begin("query.cache")
	sp.ArgInt("bytes_skipped", e.Watermark)
	sp.End()
	return int(e.Records) + records, tail, nil
}

// putEntry stores a unit's per-file state, best-effort: a file that
// changed mid-scan, a watermark off a line boundary, or any store error
// simply leaves no entry behind.
func (p *ScanPlan) putEntry(file string, priv *Engine, endOff int64, records uint64, spans []qcache.Span) {
	if endOff <= 0 {
		return
	}
	f, err := os.Open(file)
	if err != nil {
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() != endOff {
		return // grew or shrank since the scan; the watermark is not the file
	}
	var last [1]byte
	if _, err := f.ReadAt(last[:], endOff-1); err != nil || last[0] != '\n' {
		return // torn final line; a tail scan could not resume here
	}
	h, err := calformat.QuickHashPrefix(f, endOff)
	if err != nil {
		return
	}
	if len(spans) > maxMetaSpans {
		spans = []qcache.Span{{Off: 0, Len: endOff}}
	}
	e := &qcache.Entry{
		Plan:       p.cachePlan,
		File:       file,
		Watermark:  endOff,
		PrefixHash: h,
		Records:    records,
		MetaSpans:  spans,
		State:      priv.db.EncodeState(),
	}
	if p.cache.Put(e) == nil {
		p.mu.Lock()
		p.stats.CacheStores++
		p.mu.Unlock()
		sp := trace.Begin("query.cache")
		sp.ArgInt("stores", 1)
		sp.End()
	}
}

// metaSpansOf derives the metadata span list of a freshly scanned file
// from its block index: the byte ranges of blocks holding attr, node, or
// globals lines, coalesced. Without an index the whole prefix is one
// span (the incremental scan then replays it with a metadata-only text
// scan, still skipping record decode).
func metaSpansOf(idx *calformat.Index, endOff int64) []qcache.Span {
	if idx == nil {
		return []qcache.Span{{Off: 0, Len: endOff}}
	}
	var spans []qcache.Span
	for i := range idx.Blocks {
		b := &idx.Blocks[i]
		if b.MetaLines == 0 {
			continue
		}
		if n := len(spans); n > 0 && spans[n-1].Off+spans[n-1].Len == b.Offset {
			spans[n-1].Len += b.Length
		} else {
			spans = append(spans, qcache.Span{Off: b.Offset, Len: b.Length})
		}
	}
	return spans
}
