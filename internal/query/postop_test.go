package query

import (
	"math"
	"testing"

	"caligo/internal/calql"
)

func TestPercentTotal(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"AGGREGATE sum(time.duration), percent_total(time.duration) GROUP BY kernel",
		fx.sampleData())
	total := 0.0
	byKernel := map[string]float64{}
	for _, r := range rows {
		p, ok := r.GetByName("percent_total#time.duration")
		if !ok {
			t.Fatalf("row lacks percent_total: %s", r)
		}
		total += p.AsFloat()
		k, _ := r.GetByName("kernel")
		byKernel[k.String()] = p.AsFloat()
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("percentages sum to %v, want 100", total)
	}
	// calc-dt: 220 of 405 total
	want := 100 * 220.0 / 405.0
	if math.Abs(byKernel["calc-dt"]-want) > 1e-9 {
		t.Errorf("calc-dt percent = %v, want %v", byKernel["calc-dt"], want)
	}
}

func TestPercentTotalImplicitSum(t *testing.T) {
	// percent_total alone must auto-add the sum reduction
	fx := newFixture(t)
	q := calql.MustParse("AGGREGATE percent_total(time.duration) GROUP BY kernel")
	if len(q.Ops) != 1 || q.Ops[0].ResultName() != "sum#time.duration" {
		t.Fatalf("implicit ops = %+v", q.Ops)
	}
	rows, err := Run(q, fx.reg, fx.sampleData())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if _, ok := rows[0].GetByName("percent_total#time.duration"); !ok {
		t.Errorf("missing percent column: %s", rows[0])
	}
}

func TestRatio(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"AGGREGATE count, sum(time.duration), ratio(time.duration, aggregate.count) AS avgtime GROUP BY kernel",
		fx.sampleData())
	for _, r := range rows {
		k, _ := r.GetByName("kernel")
		if k.String() != "calc-dt" {
			continue
		}
		v, ok := r.GetByName("avgtime")
		if !ok {
			t.Fatalf("missing ratio column: %s", r)
		}
		// calc-dt: sum 220 over count 2
		if math.Abs(v.AsFloat()-110) > 1e-9 {
			t.Errorf("avgtime = %v, want 110", v.AsFloat())
		}
	}
}

func TestRatioZeroDenominatorSkipped(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"AGGREGATE sum(time.duration), ratio(mpi.rank, time.duration) GROUP BY kernel",
		fx.sampleData()[:1]) // single record, rank 0 → numerator sum 0 is fine
	// denominators are nonzero here; flip: ratio with zero denominator
	rows2 := runQuery(t, fx,
		"AGGREGATE sum(mpi.rank), ratio(time.duration, mpi.rank) GROUP BY kernel",
		fx.sampleData()[:2]) // ranks are 0 → sum#mpi.rank = 0
	for _, r := range rows2 {
		if _, ok := r.GetByName("ratio#time.duration/mpi.rank"); ok {
			t.Errorf("zero denominator should omit the entry: %s", r)
		}
	}
	_ = rows
}

func TestPostOpOrderBy(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"AGGREGATE percent_total(time.duration) GROUP BY kernel ORDER BY percent_total#time.duration DESC",
		fx.sampleData())
	prev := math.Inf(1)
	for _, r := range rows {
		v, _ := r.GetByName("percent_total#time.duration")
		if v.AsFloat() > prev {
			t.Errorf("not sorted by percent: %v after %v", v.AsFloat(), prev)
		}
		prev = v.AsFloat()
	}
}

func TestPostOpStringRoundTrip(t *testing.T) {
	queries := []string{
		"AGGREGATE sum(x), percent_total(x) GROUP BY k",
		"AGGREGATE sum(a), sum(b), ratio(a,b) AS r GROUP BY k",
	}
	for _, in := range queries {
		q1, err := calql.Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		printed := q1.String()
		q2, err := calql.Parse(printed)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", printed, err)
			continue
		}
		if q2.String() != printed {
			t.Errorf("round trip: %q -> %q", printed, q2.String())
		}
	}
}

func TestPostOpParseErrors(t *testing.T) {
	bad := []string{
		"AGGREGATE percent_total GROUP BY k",
		"AGGREGATE percent_total() GROUP BY k",
		"AGGREGATE ratio(a) GROUP BY k",
		"AGGREGATE ratio(a,b GROUP BY k",
	}
	for _, in := range bad {
		if _, err := calql.Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestPostOpNonAggregatingRows(t *testing.T) {
	// over raw (non-aggregated) rows, percent_total reads the attribute
	// directly
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"SELECT * AGGREGATE percent_total(time.duration) WHERE kernel=advec-mom",
		fx.sampleData())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	total := 0.0
	for _, r := range rows {
		v, ok := r.GetByName("percent_total#time.duration")
		if !ok {
			t.Fatalf("missing percent: %s", r)
		}
		total += v.AsFloat()
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("percent total = %v", total)
	}
}

func TestOrderByAlias(t *testing.T) {
	fx := newFixture(t)
	rows := runQuery(t, fx,
		"SELECT kernel, sum#time.duration AS total AGGREGATE sum(time.duration) "+
			"WHERE kernel GROUP BY kernel ORDER BY total DESC",
		fx.sampleData())
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	prev := int64(1 << 62)
	for _, r := range rows {
		v, ok := r.GetByName("sum#time.duration")
		if !ok {
			t.Fatalf("row lacks sum: %s", r)
		}
		if v.AsInt() > prev {
			t.Errorf("ORDER BY alias not honored: %d after %d", v.AsInt(), prev)
		}
		prev = v.AsInt()
	}
}
