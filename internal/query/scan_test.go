package query

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// writeIndexedFile writes recs as an indexed .cali file (sidecar included)
// and returns the file path.
func writeIndexedFile(t *testing.T, dir, name string, reg *attr.Registry, recs []snapshot.FlatRecord, blockRecords int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	iw := calformat.NewIndexingWriter(f, reg, contexttree.New(), calformat.IndexOptions{BlockRecords: blockRecords})
	for _, r := range recs {
		if err := iw.WriteFlat(r); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := iw.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := calformat.WriteIndexFile(path, idx); err != nil {
		t.Fatal(err)
	}
	return path
}

// rankedDataset writes one indexed file per rank in 0..nFiles-1, each with
// nRecs records carrying mpi.rank=<rank>, kernel cycling, dur=i.
func rankedDataset(t *testing.T, nFiles, nRecs, blockRecords int) []string {
	t.Helper()
	dir := t.TempDir()
	fx := newFixture(t)
	kernels := []string{"advec", "pdv", "flux"}
	files := make([]string, nFiles)
	for r := 0; r < nFiles; r++ {
		recs := make([]snapshot.FlatRecord, nRecs)
		for i := range recs {
			recs[i] = fx.rec(kernels[i%len(kernels)], "", int64(r), int64(i))
		}
		files[r] = writeIndexedFile(t, dir, "rank"+string(rune('0'+r))+".cali", fx.reg, recs, blockRecords)
	}
	return files
}

// runRows executes q over files and renders the result rows as one string.
func runRows(t *testing.T, queryText string, files []string, jobs int, opts ScanOptions) (string, *ScanPlan) {
	t.Helper()
	q, err := calql.Parse(queryText)
	if err != nil {
		t.Fatal(err)
	}
	reg := attr.NewRegistry()
	plan := NewScanPlan(q, opts)
	rows, err := RunShardedPlan(plan, q, reg, files, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String(), plan
}

// expectSame asserts indexed and full-scan execution agree for the query
// at several worker counts, and returns the indexed plan of the last run.
func expectSame(t *testing.T, queryText string, files []string) *ScanPlan {
	t.Helper()
	var last *ScanPlan
	for _, jobs := range []int{1, 3} {
		want, _ := runRows(t, queryText, files, jobs, ScanOptions{})
		got, plan := runRows(t, queryText, files, jobs, ScanOptions{UseIndex: true})
		if got != want {
			t.Errorf("jobs=%d query %q: indexed output differs\nindexed:\n%s\nfull scan:\n%s",
				jobs, queryText, got, want)
		}
		last = plan
	}
	return last
}

func TestScanPruneSkipsNonMatchingFiles(t *testing.T) {
	files := rankedDataset(t, 4, 50, 8)
	plan := expectSame(t, "AGGREGATE count, sum(time.duration) WHERE mpi.rank = 2 GROUP BY kernel ORDER BY kernel", files)
	st := plan.Stats()
	if st.FilesIndexed != 4 || st.FilesSkipped != 3 {
		t.Errorf("stats = %+v, want 4 indexed / 3 skipped", st)
	}
	if st.RecordsPruned < 150 {
		t.Errorf("RecordsPruned = %d, want >= 150", st.RecordsPruned)
	}
}

func TestScanPruneSkipsBlocksWithinFile(t *testing.T) {
	// dur = 0..49 with 8-record blocks: dur >= 40 lives in the last two
	// blocks (records 40..49), so 5 of 7 blocks prune
	files := rankedDataset(t, 1, 50, 8)
	plan := expectSame(t, "AGGREGATE count WHERE time.duration >= 40 GROUP BY kernel ORDER BY kernel", files)
	st := plan.Stats()
	// 50 records in 8-record blocks = 7 blocks; dur >= 40 lives in the
	// last two (records 40..49), so 5 blocks prune and 2 scan
	if st.BlocksPruned != 5 || st.BlocksScanned != 2 {
		t.Errorf("stats = %+v, want 5 pruned / 2 scanned blocks", st)
	}
}

func TestScanPruneStringZones(t *testing.T) {
	files := rankedDataset(t, 2, 30, 4)
	plan := expectSame(t, "AGGREGATE count WHERE kernel = nosuch GROUP BY kernel", files)
	st := plan.Stats()
	if st.FilesSkipped != 2 {
		t.Errorf("stats = %+v, want both files skipped (kernel zone excludes literal)", st)
	}
}

func TestScanIndexedMatrixMatchesFullScan(t *testing.T) {
	files := rankedDataset(t, 3, 40, 8)
	for _, qt := range []string{
		"SELECT *",
		"SELECT * WHERE mpi.rank = 1",
		"SELECT * WHERE time.duration > 35 ORDER BY time.duration DESC LIMIT 5",
		"AGGREGATE count GROUP BY kernel ORDER BY count DESC",
		"AGGREGATE count, sum(time.duration), max(time.duration) GROUP BY kernel, mpi.rank ORDER BY kernel, mpi.rank",
		"LET ms = scale(time.duration, 0.001) AGGREGATE sum(ms) WHERE kernel = advec GROUP BY mpi.rank ORDER BY mpi.rank",
		"AGGREGATE count WHERE time.duration <= 3 GROUP BY kernel ORDER BY kernel",
		"AGGREGATE avg(time.duration) GROUP BY kernel ORDER BY kernel",
	} {
		expectSame(t, qt, files)
	}
}

// breakIndex applies fn to the sidecar of file and asserts the indexed
// query still matches the full scan, with the fallback counter counting
// the broken index.
func breakIndex(t *testing.T, fn func(t *testing.T, idxPath string)) {
	t.Helper()
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	files := rankedDataset(t, 2, 30, 8)
	fn(t, calformat.IndexPath(files[0]))
	before := telemetry.NewCounter("caligo.index.fallback").Value()
	plan := expectSame(t, "AGGREGATE count, sum(time.duration) WHERE mpi.rank = 1 GROUP BY kernel ORDER BY kernel", files)
	after := telemetry.NewCounter("caligo.index.fallback").Value()
	if after <= before {
		t.Errorf("caligo.index.fallback = %d -> %d, want an increment", before, after)
	}
	st := plan.Stats()
	if st.Fallbacks == 0 {
		t.Errorf("plan stats = %+v, want Fallbacks > 0", st)
	}
	if st.FilesIndexed != 1 {
		t.Errorf("plan stats = %+v, want the intact file still indexed", st)
	}
}

func TestScanStaleIndexFallsBack(t *testing.T) {
	breakIndex(t, func(t *testing.T, idxPath string) {
		// grow the data file after indexing: size mismatch -> stale
		cali := strings.TrimSuffix(idxPath, ".idx")
		f, err := os.OpenFile(cali, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString("__rec=ctx,attr=2,data=9\n"); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestScanTruncatedIndexFallsBack(t *testing.T) {
	breakIndex(t, func(t *testing.T, idxPath string) {
		b, err := os.ReadFile(idxPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(idxPath, b[:len(b)-5], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestScanCorruptIndexFallsBack(t *testing.T) {
	breakIndex(t, func(t *testing.T, idxPath string) {
		b, err := os.ReadFile(idxPath)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x40
		if err := os.WriteFile(idxPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestScanVersionMismatchFallsBack(t *testing.T) {
	breakIndex(t, func(t *testing.T, idxPath string) {
		cali := strings.TrimSuffix(idxPath, ".idx")
		idx, err := calformat.ReadIndexFile(idxPath)
		if err != nil {
			t.Fatal(err)
		}
		idx.Version = calformat.IndexVersion + 1
		if err := calformat.WriteIndexFile(cali, idx); err != nil {
			t.Fatal(err)
		}
	})
}

func TestScanMissingIndexIsNotAFallback(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	files := rankedDataset(t, 1, 20, 8)
	if err := os.Remove(calformat.IndexPath(files[0])); err != nil {
		t.Fatal(err)
	}
	before := telemetry.NewCounter("caligo.index.fallback").Value()
	plan := expectSame(t, "AGGREGATE count GROUP BY kernel ORDER BY kernel", files)
	if after := telemetry.NewCounter("caligo.index.fallback").Value(); after != before {
		t.Errorf("caligo.index.fallback moved %d -> %d for a merely unindexed file", before, after)
	}
	if st := plan.Stats(); st.FilesIndexed != 0 || st.Fallbacks != 0 {
		t.Errorf("plan stats = %+v, want no index activity", st)
	}
}

func TestPlanUnitsSplitsLargeFile(t *testing.T) {
	files := rankedDataset(t, 1, 64, 8) // 8 blocks
	q := calql.MustParse("AGGREGATE count GROUP BY kernel")
	plan := NewScanPlan(q, ScanOptions{UseIndex: true})
	units := plan.PlanUnits(files, 4)
	if len(units) != 4 {
		t.Fatalf("got %d units, want 4: %+v", len(units), units)
	}
	covered := 0
	for i, u := range units {
		if u.File != files[0] || u.Idx == nil {
			t.Fatalf("unit %d = %+v, want block range of the single file", i, u)
		}
		if i > 0 && units[i-1].Hi != u.Lo {
			t.Errorf("unit %d starts at block %d, prev ended at %d", i, u.Lo, units[i-1].Hi)
		}
		covered += u.Hi - u.Lo
	}
	if covered != 8 {
		t.Errorf("units cover %d blocks, want 8", covered)
	}
}

func TestProjectionOnlyForAggregation(t *testing.T) {
	sel := NewScanPlan(calql.MustParse("SELECT * WHERE mpi.rank = 1"), ScanOptions{UseIndex: true})
	if sel.Projection() != nil {
		t.Errorf("non-aggregating query got a projection: %v", sel.Projection())
	}
	agg := NewScanPlan(calql.MustParse("AGGREGATE count, sum(time.duration) WHERE mpi.rank = 1 GROUP BY kernel"), ScanOptions{UseIndex: true})
	proj := agg.Projection()
	want := []string{"aggregate.count", "kernel", "mpi.rank", "sum#time.duration", "time.duration"}
	if strings.Join(proj, ",") != strings.Join(want, ",") {
		t.Errorf("projection = %v, want %v", proj, want)
	}
}
