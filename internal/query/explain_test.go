package query

import (
	"bytes"
	"strings"
	"testing"

	"caligo/internal/calql"
	"caligo/internal/trace"
)

func TestBuildPlanSerial(t *testing.T) {
	q := calql.MustParse("EXPLAIN LET ms = scale(time.duration, 0.001) " +
		"AGGREGATE count, sum(ms) WHERE kernel=advec GROUP BY function " +
		"ORDER BY count DESC FORMAT csv LIMIT 10")
	p, err := BuildPlan(q, PlanOptions{Inputs: 3, UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Analyze {
		t.Error("EXPLAIN (without ANALYZE) built an analyzed plan")
	}
	if strings.HasPrefix(p.Query, "EXPLAIN") {
		t.Errorf("plan query kept the EXPLAIN prefix: %q", p.Query)
	}
	phases := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		phases[i] = n.Phase
	}
	want := []string{"index", "read", "let", "where", "aggregate", "reduce", "postprocess", "format"}
	if strings.Join(phases, " ") != strings.Join(want, " ") {
		t.Errorf("phases = %v, want %v", phases, want)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"EXPLAIN", "serial", "3 input files", "GROUP BY function", "csv", "LIMIT 10",
		"prune blocks on kernel = advec"} {
		if !strings.Contains(out, needle) {
			t.Errorf("plan output missing %q:\n%s", needle, out)
		}
	}
	if strings.Contains(out, "spans=") {
		t.Errorf("non-analyzed plan printed measurements:\n%s", out)
	}
}

func TestBuildPlanParallelAndNonAggregating(t *testing.T) {
	q := calql.MustParse("EXPLAIN ANALYZE SELECT * WHERE kernel=advec")
	p, err := BuildPlan(q, PlanOptions{Inputs: 4, Ranks: 4, Fanin: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Analyze {
		t.Error("EXPLAIN ANALYZE did not mark the plan analyzed")
	}
	if !strings.Contains(p.Execution, "4 ranks") || !strings.Contains(p.Execution, "fan-in 3") {
		t.Errorf("execution = %q, want parallel with ranks and fan-in", p.Execution)
	}
	var sawAggregate, sawReduce bool
	for _, n := range p.Nodes {
		switch n.Phase {
		case "aggregate":
			sawAggregate = true
			if !strings.Contains(n.Detail, "no aggregation") {
				t.Errorf("non-aggregating query's aggregate node: %q", n.Detail)
			}
		case "reduce":
			sawReduce = true
		}
	}
	if !sawAggregate || !sawReduce {
		t.Errorf("plan missing aggregate/reduce nodes: %+v", p.Nodes)
	}
}

func TestBuildPlanRejectsInvalidScheme(t *testing.T) {
	q := &calql.Query{Explain: calql.ExplainPlan, GroupBy: []string{"k"}, Limit: -1}
	if _, err := BuildPlan(q, PlanOptions{}); err == nil {
		t.Error("BuildPlan accepted GROUP BY without operators")
	}
}

func TestPlanAnnotate(t *testing.T) {
	q := calql.MustParse("EXPLAIN ANALYZE AGGREGATE count GROUP BY k")
	p, err := BuildPlan(q, PlanOptions{Inputs: 2, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	prev := trace.SetEnabled(true)
	t.Cleanup(func() { trace.SetEnabled(prev) })
	mark := trace.Mark()
	for rank := 0; rank < 2; rank++ {
		sp := trace.BeginRank("pquery.read", rank)
		sp.ArgInt("records", 100)
		sp.End()
	}
	sp := trace.Begin("pquery.reduce")
	sp.ArgInt("bytes", 2048)
	sp.End()
	other := trace.Begin("mpi.send") // suffix matches no plan node
	other.End()
	p.Annotate(trace.Since(mark))

	byPhase := map[string]*PlanNode{}
	for i := range p.Nodes {
		byPhase[p.Nodes[i].Phase] = &p.Nodes[i]
	}
	read := byPhase["read"]
	if read.Spans != 2 || read.TotalNS < 0 {
		t.Errorf("read node: spans=%d total=%d, want 2 spans", read.Spans, read.TotalNS)
	}
	if len(read.Stats) != 1 || read.Stats[0].Name != "records" || read.Stats[0].Value != 200 {
		t.Errorf("read stats = %+v, want records=200", read.Stats)
	}
	if red := byPhase["reduce"]; red.Spans != 1 || len(red.Stats) != 1 || red.Stats[0].Value != 2048 {
		t.Errorf("reduce node = %+v, want 1 span with bytes=2048", red)
	}

	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "records=200") {
		t.Errorf("analyzed plan output missing summed stat:\n%s", buf.String())
	}
}
