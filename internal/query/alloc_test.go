package query

// Allocation-budget guards for the per-record query hot path: with the
// read loop reusing one record (calformat NextInto), the engine side must
// not reintroduce per-record garbage.

import (
	"fmt"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calql"
	"caligo/internal/snapshot"
	"caligo/internal/testutil"
)

func allocFixture(t *testing.T) (*attr.Registry, []snapshot.FlatRecord) {
	t.Helper()
	reg := attr.NewRegistry()
	kernel := reg.MustCreate("kernel", attr.String, attr.Nested)
	rank := reg.MustCreate("mpi.rank", attr.Int, 0)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable)
	recs := make([]snapshot.FlatRecord, 64)
	for i := range recs {
		recs[i] = snapshot.FlatRecord{
			{Attr: kernel, Value: attr.StringV(fmt.Sprintf("kernel.%d", i%13))},
			{Attr: rank, Value: attr.IntV(int64(i % 8))},
			{Attr: dur, Value: attr.IntV(int64(50 + i))},
		}
	}
	return reg, recs
}

// TestEngineProcessAllocBudget pins steady-state Engine.Process for an
// aggregating query (compiled WHERE + DB update) to zero allocations per
// record once all group buckets exist.
func TestEngineProcessAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets do not hold under -race instrumentation")
	}
	reg, recs := allocFixture(t)
	q := calql.MustParse("AGGREGATE count, sum(time.duration) WHERE mpi.rank < 6 GROUP BY kernel")
	eng := MustNew(q, reg)
	for _, r := range recs { // warm up: create every group bucket
		if err := eng.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		if err := eng.Process(recs[i%len(recs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Process = %.2f allocs/record, want 0", avg)
	}
}
