package query

import (
	"fmt"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calql"
	"caligo/internal/snapshot"
)

// TestCompiledCondMatchesEvalCondition checks that the precompiled WHERE
// path agrees with the reference EvalCondition on every operator and the
// tricky edge cases: absent attributes under NOT, non-numeric literals
// compared against numeric values, bool comparisons, and string ordering.
func TestCompiledCondMatchesEvalCondition(t *testing.T) {
	reg := attr.NewRegistry()
	str := reg.MustCreate("label", attr.String, 0)
	num := reg.MustCreate("rank", attr.Int, 0)
	unum := reg.MustCreate("count", attr.Uint, attr.AsValue)
	fl := reg.MustCreate("ratio", attr.Float, attr.AsValue)
	bl := reg.MustCreate("flag", attr.Bool, attr.AsValue)

	records := []snapshot.FlatRecord{
		nil, // empty record: every attribute absent
		{{Attr: str, Value: attr.StringV("main")}},
		{{Attr: str, Value: attr.StringV("10")}}, // numeric-looking string
		{{Attr: num, Value: attr.IntV(-3)}},
		{{Attr: num, Value: attr.IntV(8)}},
		{{Attr: unum, Value: attr.UintV(42)}},
		{{Attr: fl, Value: attr.FloatV(2.5)}},
		{{Attr: bl, Value: attr.BoolV(true)}},
		{{Attr: bl, Value: attr.BoolV(false)}},
		{ // stacked values: innermost wins
			{Attr: str, Value: attr.StringV("outer")},
			{Attr: str, Value: attr.StringV("inner")},
		},
		{ // mixed record
			{Attr: str, Value: attr.StringV("main")},
			{Attr: num, Value: attr.IntV(8)},
			{Attr: fl, Value: attr.FloatV(0)},
		},
	}

	ops := []calql.CondOp{calql.CondExist, calql.CondEq, calql.CondLt,
		calql.CondLe, calql.CondGt, calql.CondGe}
	attrs := []string{"label", "rank", "count", "ratio", "flag", "missing"}
	// literals cover: plain numbers, negative, float, bool words (which do
	// NOT parse as numbers, forcing string comparison), and text
	literals := []string{"0", "8", "-3", "2.5", "42", "true", "false", "main", "inner", "10", ""}

	for _, a := range attrs {
		for _, op := range ops {
			for _, lit := range literals {
				for _, neg := range []bool{false, true} {
					c := calql.Condition{Attr: a, Op: op, Value: lit, Negate: neg}
					// fresh compiled form per condition (resolution caches)
					cc := compiledCond{cond: c, id: attr.InvalidID}
					if lv, err := attr.ParseAs(lit, attr.Float); err == nil {
						cc.numLit, cc.numOK = lv, true
					}
					for ri, rec := range records {
						want := EvalCondition(c, rec)
						got := cc.eval(rec, reg)
						if got != want {
							t.Errorf("cond %v record %d: compiled=%v reference=%v",
								c, ri, got, want)
						}
					}
				}
			}
		}
	}
}

// TestCompiledCondLateAttribute checks lazy handle resolution: the WHERE
// attribute is registered only after the engine is built (the normal case
// for file queries, where readers register attributes while streaming).
func TestCompiledCondLateAttribute(t *testing.T) {
	reg := attr.NewRegistry()
	q := calql.MustParse("AGGREGATE count WHERE region = hot GROUP BY region")
	eng, err := New(q, reg)
	if err != nil {
		t.Fatal(err)
	}
	// attribute appears after engine construction
	region := reg.MustCreate("region", attr.String, attr.Nested)
	recs := []snapshot.FlatRecord{
		{{Attr: region, Value: attr.StringV("hot")}},
		{{Attr: region, Value: attr.StringV("cold")}},
		{{Attr: region, Value: attr.StringV("hot")}},
	}
	if err := eng.ProcessAll(recs); err != nil {
		t.Fatal(err)
	}
	rows, err := eng.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1 (only region=hot)", len(rows))
	}
	if c, _ := rows[0].GetByName("aggregate.count"); c.AsInt() != 2 {
		t.Errorf("count = %v, want 2", c)
	}
}

// TestSortRowsMatchesReference cross-checks the decorate-sort-undecorate
// implementation against a straightforward per-comparison reference,
// including missing keys, descending order, and tie-breaking stability.
func TestSortRowsMatchesReference(t *testing.T) {
	fx := newFixture(t)
	var rows []snapshot.FlatRecord
	for i := 0; i < 50; i++ {
		kernel := fmt.Sprintf("k%d", i%7)
		if i%11 == 0 {
			kernel = "" // rows with the first key missing
		}
		rows = append(rows, fx.rec(kernel, "", int64(i%5), int64(100-i)))
	}
	keys := []calql.OrderItem{
		{Label: "kernel"},
		{Label: "time.duration", Descending: true},
	}

	got := append([]snapshot.FlatRecord(nil), rows...)
	sortRows(got, keys)

	want := append([]snapshot.FlatRecord(nil), rows...)
	referenceSortRows(want, keys)

	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("row %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

// referenceSortRows is the pre-optimization implementation, kept as the
// behavioural oracle for sortRows.
func referenceSortRows(rows []snapshot.FlatRecord, keys []calql.OrderItem) {
	stableSort(rows, func(i, j int) bool {
		for _, k := range keys {
			vi, oki := rows[i].GetByName(k.Label)
			vj, okj := rows[j].GetByName(k.Label)
			var cmp int
			switch {
			case !oki && !okj:
				cmp = 0
			case !oki:
				cmp = -1
			case !okj:
				cmp = 1
			default:
				cmp = attr.Compare(vi, vj)
			}
			if k.Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// stableSort is an insertion sort — trivially stable, good enough for an
// oracle over small inputs.
func stableSort(rows []snapshot.FlatRecord, less func(i, j int) bool) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && less(j, j-1); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}
