package query

// Index-aware scan planning: the bridge between the sidecar block indexes
// (internal/calformat/index.go) and query execution. A ScanPlan compiles
// a query's WHERE clause into zone-map tests and its referenced-attribute
// set into a decode projection, then plans each input file into scan
// units — whole files for unindexed inputs, block ranges for indexed ones
// — skipping files and blocks whose zone maps prove no record can match.
//
// Correctness invariants (pinned by FuzzIndexedQueryDiff and the calql
// byte-identity tests):
//
//   - Only non-negated WHERE conditions prune, and only conditions on
//     attributes that are not LET results (LET entries are appended at
//     query time and a file-provided entry of the same name is shadowed
//     only when the LET fires — excluded wholesale).
//   - A block is skipped only if some condition cannot match ANY entry
//     occurrence in it; the engine tests the last occurrence per record,
//     a subset, so skipping is conservative.
//   - Pruned blocks holding attr/node/globals definitions are passed with
//     a metadata-only scan (later blocks may reference their defs); only
//     definition-free blocks are seeked over.
//   - The decode projection is applied only to aggregating queries (their
//     result rows are built from key/result attributes, never raw
//     records) and keeps every attribute the query can observe: GROUP BY
//     keys, operator targets and their re-aggregation input names, WHERE
//     attributes, and LET sources and names.

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/core"
	"caligo/internal/qcache"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Self-instrumentation of the index layer (docs/OBSERVABILITY.md).
var (
	telIdxFilesIndexed  = telemetry.NewCounter("caligo.index.files.indexed")
	telIdxFilesSkipped  = telemetry.NewCounter("caligo.index.files.skipped")
	telIdxBlocksScanned = telemetry.NewCounter("caligo.index.blocks.scanned")
	telIdxBlocksPruned  = telemetry.NewCounter("caligo.index.blocks.pruned")
	telIdxBlocksSeeked  = telemetry.NewCounter("caligo.index.blocks.seeked")
	telIdxRecordsPruned = telemetry.NewCounter("caligo.index.records.pruned")
	telIdxFallback      = telemetry.NewCounter("caligo.index.fallback")
)

// ScanOptions control the index-aware scan layer.
type ScanOptions struct {
	// UseIndex enables sidecar index use: file/block pruning, projection
	// pushdown, and intra-file sharding. Off, every file is fully decoded
	// (the pre-index behavior, bit for bit).
	UseIndex bool
	// Cache enables the per-file aggregate state cache (internal/qcache):
	// a valid cached entry replaces the file scan with a state merge, an
	// append-grown file is scanned from its watermark only, and misses
	// store their state for next time. Only aggregating queries use it.
	Cache *qcache.Store
}

// ScanStats summarize what planning and scanning did, for EXPLAIN
// ANALYZE and tests.
type ScanStats struct {
	Files         int64
	FilesIndexed  int64
	FilesSkipped  int64
	Fallbacks     int64 // stale/corrupt/version-mismatched indexes ignored
	BlocksScanned int64
	BlocksPruned  int64
	BlocksSeeked  int64 // pruned blocks passed by seek (subset of pruned)
	RecordsPruned int64

	// Aggregate-cache outcome counts (zero unless ScanOptions.Cache set).
	CacheHits         int64 // files served whole from cached state
	CacheMisses       int64 // files scanned in full, state stored after
	CacheIncremental  int64 // appended files scanned from the watermark
	CacheStores       int64 // entries written (miss + incremental)
	CacheFallbacks    int64 // cache paths degraded to a full scan
	CacheBytesSkipped int64 // file bytes not re-read thanks to cached state
}

// pruneCond is one WHERE condition usable for zone pruning.
type pruneCond struct {
	attrName string
	op       calql.CondOp
	lit      string
	numLit   float64
	numOK    bool
}

// ScanPlan is the per-query compiled scan strategy. It is shared across
// scan workers; stats accumulation is mutex-protected.
type ScanPlan struct {
	q     *calql.Query
	opts  ScanOptions
	conds []pruneCond
	proj  map[string]bool

	// Aggregate-state cache (nil when disabled). Non-aggregating queries
	// never cache: their output is the record stream, not mergeable state.
	cache     *qcache.Store
	cachePlan string // canonical query fingerprint

	mu    sync.Mutex
	stats ScanStats
}

// NewScanPlan compiles the prunable conditions and decode projection of q.
func NewScanPlan(q *calql.Query, opts ScanOptions) *ScanPlan {
	p := &ScanPlan{q: q, opts: opts}
	if opts.Cache != nil && q.HasAggregation() {
		p.cache = opts.Cache
		p.cachePlan = qcache.CanonicalPlan(q)
	}
	if !opts.UseIndex {
		return p
	}
	letNames := map[string]bool{}
	for _, l := range q.Lets {
		letNames[l.Name] = true
	}
	for _, c := range q.Where {
		if c.Negate || letNames[c.Attr] {
			continue
		}
		pc := pruneCond{attrName: c.Attr, op: c.Op, lit: c.Value}
		// mirror compiledCond: the literal parsed as float64 decides
		// whether numeric-typed values compare numerically
		if f, err := strconv.ParseFloat(c.Value, 64); err == nil {
			pc.numLit, pc.numOK = f, true
		}
		p.conds = append(p.conds, pc)
	}
	p.proj = neededAttrs(q)
	return p
}

// neededAttrs returns the attribute set an aggregating query can observe
// on input records, or nil when projection must not be applied (the query
// returns raw records).
func neededAttrs(q *calql.Query) map[string]bool {
	if !q.HasAggregation() {
		return nil
	}
	need := map[string]bool{}
	for _, k := range q.GroupBy {
		need[k] = true
	}
	for _, op := range q.Ops {
		if op.Kind.NeedsTarget() {
			need[op.Target] = true
		}
		// re-aggregation input names (core.DB resolveRole): count
		// consumes aggregate.count, sum/min/max/scount/inclusive_sum
		// consume <kind>#<target>
		switch op.Kind {
		case core.OpCount:
			need[core.CountResultName] = true
		case core.OpSum, core.OpMin, core.OpMax, core.OpScount, core.OpInclusiveSum:
			need[op.Kind.String()+"#"+op.Target] = true
		}
	}
	for _, c := range q.Where {
		need[c.Attr] = true
	}
	for _, l := range q.Lets {
		need[l.Name] = true // a file entry of the LET's name is observable
		for _, a := range l.Args {
			need[a] = true
		}
	}
	return need
}

// Projection returns the sorted kept-attribute list, or nil when
// projection is inactive. For EXPLAIN.
func (p *ScanPlan) Projection() []string {
	if p.proj == nil {
		return nil
	}
	out := make([]string, 0, len(p.proj))
	for a := range p.proj {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// projCoversAll reports whether the projection keeps every attribute that
// actually occurs in the indexed file — then the per-entry filter can only
// pass entries through, so skipping it saves the lookup cost.
func (p *ScanPlan) projCoversAll(idx *calformat.Index) bool {
	if idx == nil {
		return false
	}
	for i := range idx.Attrs {
		a := &idx.Attrs[i]
		if a.Entries > 0 && !p.proj[a.Name] {
			return false
		}
	}
	return true
}

// PrunableConds renders the conditions zone maps are tested against. For
// EXPLAIN.
func (p *ScanPlan) PrunableConds() []string {
	var out []string
	for _, c := range p.conds {
		out = append(out, condString(c))
	}
	return out
}

func condString(c pruneCond) string {
	switch c.op {
	case calql.CondExist:
		return c.attrName
	case calql.CondEq:
		return c.attrName + " = " + c.lit
	case calql.CondLt:
		return c.attrName + " < " + c.lit
	case calql.CondLe:
		return c.attrName + " <= " + c.lit
	case calql.CondGt:
		return c.attrName + " > " + c.lit
	case calql.CondGe:
		return c.attrName + " >= " + c.lit
	}
	return c.attrName + " ? " + c.lit
}

// Stats returns a snapshot of the accumulated scan statistics.
func (p *ScanPlan) Stats() ScanStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// canMatchZone reports whether the condition could be satisfied by some
// entry occurrence summarized by the block's zone state. attrIdx is the
// condition attribute's index-table position (-1: absent from the file).
// Any uncertainty returns true (scan the block).
func (c *pruneCond) canMatchZone(idx *calformat.Index, b *calformat.Block, attrIdx int) bool {
	if attrIdx < 0 {
		return false // attribute occurs nowhere in the file
	}
	z := b.Zone(attrIdx)
	if z == nil || z.Count == 0 {
		return false // attribute occurs nowhere in the block
	}
	if c.op == calql.CondExist {
		return true
	}
	switch idx.Attrs[attrIdx].Type {
	case attr.Int, attr.Uint, attr.Float, attr.Bool:
		if !c.numOK || !z.HasNum {
			// non-numeric literal: the engine compares text; no bounds
			return true
		}
		switch c.op {
		case calql.CondEq:
			return c.numLit >= z.Min && c.numLit <= z.Max
		case calql.CondLt:
			return z.Min < c.numLit
		case calql.CondLe:
			return z.Min <= c.numLit
		case calql.CondGt:
			return z.Max > c.numLit
		case calql.CondGe:
			return z.Max >= c.numLit
		}
		return true
	case attr.String:
		if z.Overflow || len(z.Strs) == 0 {
			return true
		}
		for _, s := range z.Strs {
			cmp := strings.Compare(s, c.lit)
			var ok bool
			switch c.op {
			case calql.CondEq:
				ok = cmp == 0
			case calql.CondLt:
				ok = cmp < 0
			case calql.CondLe:
				ok = cmp <= 0
			case calql.CondGt:
				ok = cmp > 0
			case calql.CondGe:
				ok = cmp >= 0
			default:
				ok = true
			}
			if ok {
				return true
			}
		}
		return false
	}
	return true // other types carry no zone detail
}

// evalFile tests every block of an index against the prunable conditions.
// skipBlock[i] means block i cannot contribute a matching record;
// skipFile means none can (the file need not be opened at all).
func (p *ScanPlan) evalFile(idx *calformat.Index) (skipFile bool, skipBlock []bool) {
	attrIdx := make([]int, len(p.conds))
	for i, c := range p.conds {
		attrIdx[i] = idx.AttrIndex(c.attrName)
	}
	skipBlock = make([]bool, len(idx.Blocks))
	skipFile = true
	for bi := range idx.Blocks {
		b := &idx.Blocks[bi]
		if b.Records == 0 {
			skipBlock[bi] = true // nothing to prune, nothing to scan
			continue
		}
		for ci := range p.conds {
			if !p.conds[ci].canMatchZone(idx, b, attrIdx[ci]) {
				skipBlock[bi] = true
				break
			}
		}
		if !skipBlock[bi] {
			skipFile = false
		}
	}
	return skipFile, skipBlock
}

// Unit is one scan work item: a whole unindexed file, or a block range
// [Lo, Hi) of an indexed one. Units are ordered by (FileIdx, Lo); scanning
// them in that order reproduces the serial full-scan record order.
type Unit struct {
	FileIdx int
	File    string
	Idx     *calformat.Index // nil: plain full scan
	Skip    []bool           // per-block skip flags (len == len(Idx.Blocks))
	Lo, Hi  int              // block range to scan

	// Aggregate-cache routing (see cachescan.go). cacheNone means the
	// unit scans normally with no store afterwards.
	cacheMode  int
	cacheEntry *qcache.Entry // hit/incremental: the validated entry
}

// liveRecords counts the records the unit will actually decode.
func (u *Unit) liveRecords() int64 {
	if u.Idx == nil {
		return -1 // unknown
	}
	var n int64
	for bi := u.Lo; bi < u.Hi; bi++ {
		if !u.Skip[bi] {
			n += int64(u.Idx.Blocks[bi].Records)
		}
	}
	return n
}

// PlanUnits loads each file's index (when enabled and present), drops
// files the zone maps fully exclude, and splits large indexed files into
// block-range units when there are fewer units than workers. The result
// is a deterministic function of (files, jobs, index contents).
func (p *ScanPlan) PlanUnits(files []string, jobs int) []Unit {
	sp := trace.Begin("query.index")
	units := make([]Unit, 0, len(files))
	var indexed, skipped, fallbacks int64
	var hits, misses, incr int64
	for i, f := range files {
		if p.cache != nil {
			switch mode, e := p.planCache(f); mode {
			case cacheHitMode:
				hits++
				units = append(units, Unit{FileIdx: i, File: f, cacheMode: cacheHitMode, cacheEntry: e})
				continue
			case cacheIncrMode:
				incr++
				units = append(units, Unit{FileIdx: i, File: f, cacheMode: cacheIncrMode, cacheEntry: e})
				continue
			case cacheMissMode:
				misses++
				// fall through to normal index planning; the unit scans in
				// full and stores its state afterwards
			}
		}
		if !p.opts.UseIndex {
			units = append(units, Unit{FileIdx: i, File: f, cacheMode: p.missMode()})
			continue
		}
		idx, err := calformat.LoadIndex(f)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				fallbacks++
				telIdxFallback.Inc()
			}
			units = append(units, Unit{FileIdx: i, File: f, cacheMode: p.missMode()})
			continue
		}
		indexed++
		telIdxFilesIndexed.Inc()
		skipFile, skipBlock := p.evalFile(idx)
		if skipFile {
			skipped++
			telIdxFilesSkipped.Inc()
			telIdxRecordsPruned.Add(idx.Records)
			p.mu.Lock()
			p.stats.RecordsPruned += int64(idx.Records)
			p.mu.Unlock()
			continue
		}
		units = append(units, Unit{FileIdx: i, File: f, Idx: idx, Skip: skipBlock, Hi: len(idx.Blocks), cacheMode: p.missMode()})
	}
	// Sub-file units cannot produce storable whole-file state, so the
	// cache keeps files whole; block pruning within a unit still applies.
	if jobs > 1 && len(units) > 0 && len(units) < jobs && p.cache == nil {
		units = splitUnits(units, jobs)
	}
	p.mu.Lock()
	p.stats.Files += int64(len(files))
	p.stats.FilesIndexed += indexed
	p.stats.FilesSkipped += skipped
	p.stats.Fallbacks += fallbacks
	p.stats.CacheHits += hits
	p.stats.CacheMisses += misses
	p.stats.CacheIncremental += incr
	p.mu.Unlock()
	sp.ArgInt("files", int64(len(files)))
	sp.ArgInt("indexed", indexed)
	sp.ArgInt("files_skipped", skipped)
	sp.ArgInt("fallbacks", fallbacks)
	sp.End()
	if p.cache != nil {
		csp := trace.Begin("query.cache")
		csp.ArgInt("hits", hits)
		csp.ArgInt("misses", misses)
		csp.ArgInt("incremental", incr)
		csp.End()
		qcache.TelHits.Add(uint64(hits))
		qcache.TelMisses.Add(uint64(misses))
		qcache.TelIncremental.Add(uint64(incr))
	}
	return units
}

// splitUnits repeatedly halves the unit with the most live records (at
// block granularity) until there are jobs units or nothing splittable
// remains, then restores (FileIdx, Lo) order.
func splitUnits(units []Unit, jobs int) []Unit {
	for len(units) < jobs {
		// pick the splittable unit with the most live records
		best, bestLive := -1, int64(1) // require at least 2 live records
		for i := range units {
			u := &units[i]
			if u.Idx == nil || u.Hi-u.Lo < 2 {
				continue
			}
			if live := u.liveRecords(); live > bestLive {
				best, bestLive = i, live
			}
		}
		if best < 0 {
			break
		}
		u := units[best]
		// find the block boundary closest to half the live records
		half := bestLive / 2
		mid, acc := u.Lo+1, int64(0)
		for bi := u.Lo; bi < u.Hi-1; bi++ {
			if !u.Skip[bi] {
				acc += int64(u.Idx.Blocks[bi].Records)
			}
			if acc >= half {
				mid = bi + 1
				break
			}
		}
		left := Unit{FileIdx: u.FileIdx, File: u.File, Idx: u.Idx, Skip: u.Skip, Lo: u.Lo, Hi: mid}
		right := Unit{FileIdx: u.FileIdx, File: u.File, Idx: u.Idx, Skip: u.Skip, Lo: mid, Hi: u.Hi}
		if left.liveRecords() == 0 || right.liveRecords() == 0 {
			break // a half with no records gains nothing; stop splitting
		}
		units = append(units[:best], append([]Unit{left, right}, units[best+1:]...)...)
	}
	sort.Slice(units, func(i, j int) bool {
		if units[i].FileIdx != units[j].FileIdx {
			return units[i].FileIdx < units[j].FileIdx
		}
		return units[i].Lo < units[j].Lo
	})
	return units
}

// ScanUnit feeds the unit's records through the engine: pruned blocks are
// seeked over (definition-free) or metadata-scanned, live blocks are
// decoded under the plan's projection. When the aggregate cache routed
// the unit (cachescan.go), cached state replaces some or all of the
// decode work. Returns the records decoded and bytes read.
func (p *ScanPlan) ScanUnit(eng *Engine, u Unit, reg *attr.Registry, tree *contexttree.Tree) (int, int64, error) {
	switch u.cacheMode {
	case cacheHitMode:
		return p.scanCacheHit(eng, u, reg, tree)
	case cacheIncrMode:
		return p.scanCacheIncr(eng, u, reg, tree)
	case cacheMissMode:
		return p.scanCacheMiss(eng, u, reg, tree)
	}
	n, bytes, _, err := p.scanUnitInto(eng, u, reg, tree)
	return n, bytes, err
}

// scanUnitInto is the cache-oblivious scan body. The extra return is the
// reader's final byte offset — the watermark a stored cache entry covers.
func (p *ScanPlan) scanUnitInto(eng *Engine, u Unit, reg *attr.Registry, tree *contexttree.Tree) (int, int64, int64, error) {
	f, err := os.Open(u.File)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	rd := calformat.NewReader(f, reg, tree)
	if p.proj != nil && !p.projCoversAll(u.Idx) {
		rd.SetProjection(p.proj)
	}

	records := 0
	var rec snapshot.FlatRecord
	if u.Idx == nil {
		// plain full scan to EOF
		for {
			err := rd.NextInto(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				return records, rd.Offset(), rd.Offset(), fmt.Errorf("%s: %w", u.File, err)
			}
			if err := eng.Process(rec); err != nil {
				return records, rd.Offset(), rd.Offset(), err
			}
			records++
		}
		return records, rd.Offset(), rd.Offset(), nil
	}

	sp := trace.Begin("query.index")
	defer sp.End()
	var scanned, pruned, seeked, recsPruned, seekedBytes int64
	blocks := u.Idx.Blocks
	const (
		actFull = iota
		actMeta
		actSeek
	)
	actionOf := func(bi int) int {
		if bi >= u.Lo && !u.Skip[bi] {
			return actFull
		}
		if blocks[bi].MetaLines == 0 {
			return actSeek
		}
		return actMeta
	}
	for bi := 0; bi < u.Hi; {
		act := actionOf(bi)
		// coalesce a run of same-action blocks into one operation
		end := bi + 1
		for end < u.Hi && actionOf(end) == act {
			end++
		}
		runEnd := blocks[end-1].Offset + blocks[end-1].Length
		// account only the target range [Lo, Hi); the prefix is overhead
		// already attributed to the unit that owns those blocks
		for i := bi; i < end; i++ {
			if i < u.Lo {
				continue
			}
			b := &blocks[i]
			switch act {
			case actFull:
				scanned++
			case actMeta:
				pruned++
				recsPruned += int64(b.Records)
			case actSeek:
				pruned++
				seeked++
				recsPruned += int64(b.Records)
			}
		}
		switch act {
		case actSeek:
			seekedBytes += runEnd - rd.Offset()
			if err := rd.SkipTo(runEnd); err != nil {
				return records, 0, 0, fmt.Errorf("%s: %w", u.File, err)
			}
		case actMeta:
			if err := rd.ScanMetaUntil(runEnd); err != nil {
				return records, 0, 0, fmt.Errorf("%s: %w", u.File, err)
			}
		case actFull:
			rd.SetLimit(runEnd)
			for {
				err := rd.NextInto(&rec)
				if err == io.EOF {
					break
				}
				if err != nil {
					return records, 0, 0, fmt.Errorf("%s: %w", u.File, err)
				}
				if err := eng.Process(rec); err != nil {
					return records, 0, 0, err
				}
				records++
			}
		}
		bi = end
	}

	telIdxBlocksScanned.Add(uint64(scanned))
	telIdxBlocksPruned.Add(uint64(pruned))
	telIdxBlocksSeeked.Add(uint64(seeked))
	telIdxRecordsPruned.Add(uint64(recsPruned))
	p.mu.Lock()
	p.stats.BlocksScanned += scanned
	p.stats.BlocksPruned += pruned
	p.stats.BlocksSeeked += seeked
	p.stats.RecordsPruned += recsPruned
	p.mu.Unlock()
	sp.ArgInt("blocks_scanned", scanned)
	sp.ArgInt("blocks_pruned", pruned)
	sp.ArgInt("blocks_seeked", seeked)
	sp.ArgInt("records_pruned", recsPruned)
	return records, rd.Offset() - seekedBytes, rd.Offset(), nil
}

// ScanFiles is the serial scan loop: plan the files as one worker's units
// and feed them through the engine in order.
func (p *ScanPlan) ScanFiles(eng *Engine, files []string, reg *attr.Registry, tree *contexttree.Tree) (int, int64, error) {
	records := 0
	var bytes int64
	for _, u := range p.PlanUnits(files, 1) {
		n, nb, err := p.ScanUnit(eng, u, reg, tree)
		records += n
		bytes += nb
		if err != nil {
			return records, bytes, err
		}
	}
	return records, bytes, nil
}
