package query

import (
	"fmt"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calql"
	"caligo/internal/snapshot"
)

// benchFixtureRecords builds a record mix typical of a profiling dataset —
// nested kernel paths, MPI ranks, integer durations — against a fresh registry.
func benchFixtureRecords(b *testing.B, n int) (*attr.Registry, []snapshot.FlatRecord) {
	b.Helper()
	reg := attr.NewRegistry()
	kernel := reg.MustCreate("kernel", attr.String, attr.Nested)
	rank := reg.MustCreate("mpi.rank", attr.Int, 0)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable)
	recs := make([]snapshot.FlatRecord, n)
	for i := 0; i < n; i++ {
		recs[i] = snapshot.FlatRecord{
			{Attr: kernel, Value: attr.StringV(fmt.Sprintf("kernel.%d", i%13))},
			{Attr: rank, Value: attr.IntV(int64(i % 8))},
			{Attr: dur, Value: attr.IntV(int64(50 + i%1000))},
		}
	}
	return reg, recs
}

// BenchmarkWhereCompiled measures the per-record WHERE cost through the
// engine's precompiled conditions (id-based lookup, literal parsed once).
func BenchmarkWhereCompiled(b *testing.B) {
	reg, recs := benchFixtureRecords(b, 1024)
	q := calql.MustParse("AGGREGATE count WHERE mpi.rank < 6 WHERE kernel GROUP BY kernel")
	eng, err := New(q, reg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.matches(recs[i%len(recs)]) {
			_ = i
		}
	}
}

// BenchmarkWhereEvalCondition measures the same conditions through the
// uncompiled reference path (label-based lookup, literal parsed per call) —
// the before side of the precompiled-WHERE optimization.
func BenchmarkWhereEvalCondition(b *testing.B) {
	_, recs := benchFixtureRecords(b, 1024)
	q := calql.MustParse("AGGREGATE count WHERE mpi.rank < 6 WHERE kernel GROUP BY kernel")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recs[i%len(recs)]
		for _, c := range q.Where {
			if !EvalCondition(c, rec) {
				break
			}
		}
	}
}

// BenchmarkSortRows measures ORDER BY over result-row sets of realistic
// sizes with a two-key sort (string ascending, int descending).
func BenchmarkSortRows(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			_, recs := benchFixtureRecords(b, n)
			keys := []calql.OrderItem{
				{Label: "kernel"},
				{Label: "time.duration", Descending: true},
			}
			scratch := make([]snapshot.FlatRecord, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(scratch, recs)
				sortRows(scratch, keys)
			}
		})
	}
}
