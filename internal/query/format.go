package query

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/snapshot"
	"caligo/internal/trace"
)

// column is one output column: the attribute label it reads and the header
// it displays.
type column struct {
	label  string
	header string
}

// columnsFor determines the output columns: the SELECT list when present
// (with '*' expanding to all remaining attributes), otherwise all
// attribute labels in first-appearance order across rows.
func columnsFor(q *calql.Query, rows []snapshot.FlatRecord) []column {
	discovered := func(exclude map[string]bool) []column {
		var cols []column
		seen := map[string]bool{}
		for k := range exclude {
			seen[k] = true
		}
		for _, r := range rows {
			for _, e := range r {
				if name := e.Attr.Name(); !seen[name] {
					seen[name] = true
					cols = append(cols, column{label: name, header: name})
				}
			}
		}
		return cols
	}
	if len(q.Select) == 0 {
		return discovered(nil)
	}
	var cols []column
	explicit := map[string]bool{}
	for _, s := range q.Select {
		if !s.Star {
			explicit[s.Label] = true
		}
	}
	for _, s := range q.Select {
		if s.Star {
			cols = append(cols, discovered(explicit)...)
			continue
		}
		cols = append(cols, column{label: s.Label, header: s.DisplayName()})
	}
	return cols
}

// cell renders the value(s) of one attribute in a row; stacked values
// (call paths) join with '/'.
func cell(row snapshot.FlatRecord, label string) string {
	var vals []string
	for _, e := range row {
		if e.Attr.Name() == label {
			vals = append(vals, e.Value.String())
		}
	}
	return strings.Join(vals, "/")
}

// isNumericCol reports whether every non-empty value in the column is
// numeric (used for table alignment).
func isNumericCol(rows []snapshot.FlatRecord, label string) bool {
	any := false
	for _, r := range rows {
		for _, e := range r {
			if e.Attr.Name() != label {
				continue
			}
			switch e.Value.Kind() {
			case attr.Int, attr.Uint, attr.Float:
				any = true
			default:
				return false
			}
		}
	}
	return any
}

// Write renders the result rows in the query's output format.
func (e *Engine) Write(w io.Writer, rows []snapshot.FlatRecord) error {
	sp := trace.Begin("query.format")
	if sp.Active() {
		kind := e.q.Format.Kind
		if kind == "" {
			kind = "table"
		}
		sp.Arg("kind", kind)
		sp.ArgInt("rows", int64(len(rows)))
		defer sp.End()
	}
	switch e.q.Format.Kind {
	case "", "table":
		return writeTable(w, e.q, rows)
	case "csv":
		return writeCSV(w, e.q, rows)
	case "json":
		return writeJSON(w, e.q, rows)
	case "expand":
		return writeExpand(w, rows)
	case "tree":
		return writeTree(w, e.q, rows)
	case "cali":
		return writeCali(w, e.reg, rows)
	}
	return fmt.Errorf("query: unknown format %q", e.q.Format.Kind)
}

// Execute runs the full pipeline and writes formatted output.
func (e *Engine) Execute(w io.Writer) error {
	rows, err := e.Results()
	if err != nil {
		return err
	}
	return e.Write(w, rows)
}

func writeTable(w io.Writer, q *calql.Query, rows []snapshot.FlatRecord) error {
	cols := columnsFor(q, rows)
	if len(cols) == 0 {
		return nil
	}
	widths := make([]int, len(cols))
	numeric := make([]bool, len(cols))
	cells := make([][]string, len(rows))
	for i, c := range cols {
		widths[i] = len(c.header)
		numeric[i] = isNumericCol(rows, c.label)
	}
	for ri, row := range rows {
		cells[ri] = make([]string, len(cols))
		for ci, c := range cols {
			s := cell(row, c.label)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	writeRow := func(vals []string) error {
		var sb strings.Builder
		for i, v := range vals {
			if i > 0 {
				sb.WriteByte(' ')
			}
			if numeric[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(v)))
				sb.WriteString(v)
			} else {
				sb.WriteString(v)
				if i < len(vals)-1 {
					sb.WriteString(strings.Repeat(" ", widths[i]-len(v)))
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	headers := make([]string, len(cols))
	for i, c := range cols {
		headers[i] = c.header
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	for _, row := range cells {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a CSV field when needed.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func writeCSV(w io.Writer, q *calql.Query, rows []snapshot.FlatRecord) error {
	cols := columnsFor(q, rows)
	if len(cols) == 0 {
		return nil
	}
	headers := make([]string, len(cols))
	for i, c := range cols {
		headers[i] = csvEscape(c.header)
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		vals := make([]string, len(cols))
		for i, c := range cols {
			vals[i] = csvEscape(cell(row, c.label))
		}
		if _, err := fmt.Fprintln(w, strings.Join(vals, ",")); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(w io.Writer, q *calql.Query, rows []snapshot.FlatRecord) error {
	cols := columnsFor(q, rows)
	out := make([]map[string]any, 0, len(rows))
	for _, row := range rows {
		obj := map[string]any{}
		for _, c := range cols {
			var vals []attr.Variant
			for _, e := range row {
				if e.Attr.Name() == c.label {
					vals = append(vals, e.Value)
				}
			}
			if len(vals) == 0 {
				continue
			}
			toJSON := func(v attr.Variant) any {
				switch v.Kind() {
				case attr.Int:
					return v.AsInt()
				case attr.Uint:
					return v.AsUint()
				case attr.Float:
					return v.AsFloat()
				case attr.Bool:
					return v.AsBool()
				default:
					return v.String()
				}
			}
			if len(vals) == 1 {
				obj[c.header] = toJSON(vals[0])
			} else {
				arr := make([]any, len(vals))
				for i, v := range vals {
					arr[i] = toJSON(v)
				}
				obj[c.header] = arr
			}
		}
		out = append(out, obj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func writeExpand(w io.Writer, rows []snapshot.FlatRecord) error {
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, e := range row {
			parts[i] = e.String()
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// writeTree renders rows hierarchically over the first column's value
// path; remaining columns print right of the tree.
func writeTree(w io.Writer, q *calql.Query, rows []snapshot.FlatRecord) error {
	cols := columnsFor(q, rows)
	if len(cols) == 0 {
		return nil
	}
	pathCol, rest := cols[0], cols[1:]

	type node struct {
		name     string
		children map[string]*node
		order    []string
		row      snapshot.FlatRecord
	}
	root := &node{children: map[string]*node{}}
	for _, row := range rows {
		var path []string
		for _, e := range row {
			if e.Attr.Name() == pathCol.label {
				path = append(path, e.Value.String())
			}
		}
		if len(path) == 0 {
			path = []string{""}
		}
		cur := root
		for _, p := range path {
			next := cur.children[p]
			if next == nil {
				next = &node{name: p, children: map[string]*node{}}
				cur.children[p] = next
				cur.order = append(cur.order, p)
			}
			cur = next
		}
		cur.row = row
	}

	// compute label column width over the indented tree
	width := len(pathCol.header)
	var measure func(n *node, depth int)
	measure = func(n *node, depth int) {
		for _, name := range n.order {
			c := n.children[name]
			if l := 2*depth + len(name); l > width {
				width = l
			}
			measure(c, depth+1)
		}
	}
	measure(root, 0)

	fmt.Fprintf(w, "%-*s", width, pathCol.header)
	for _, c := range rest {
		fmt.Fprintf(w, " %s", c.header)
	}
	fmt.Fprintln(w)

	var emit func(n *node, depth int) error
	emit = func(n *node, depth int) error {
		names := n.order
		sort.Strings(names)
		for _, name := range names {
			c := n.children[name]
			label := strings.Repeat("  ", depth) + name
			if _, err := fmt.Fprintf(w, "%-*s", width, label); err != nil {
				return err
			}
			for _, col := range rest {
				var val string
				if c.row != nil {
					val = cell(c.row, col.label)
				}
				if _, err := fmt.Fprintf(w, " %*s", len(col.header), val); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
			if err := emit(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return emit(root, 0)
}

// writeCali re-encodes result rows as a .cali stream so query outputs can
// be piped into further queries (the paper's multi-stage workflows).
func writeCali(w io.Writer, reg *attr.Registry, rows []snapshot.FlatRecord) error {
	cw := calformat.NewWriter(w, reg, contexttree.New())
	for _, row := range rows {
		if err := cw.WriteFlat(row); err != nil {
			return err
		}
	}
	return cw.Flush()
}
