// Package query executes parsed CalQL queries over record streams: it
// applies LET preprocessing, WHERE filtering, aggregation (through
// internal/core), projection, ordering, and output formatting. It is the
// engine behind off-line cross-process aggregation and analytical
// aggregation (Section IV-C) and is reused verbatim by the on-line
// aggregation service — the same description language drives both, which
// is the paper's central design point.
package query

import (
	"fmt"
	"math"
	"sort"

	"caligo/internal/attr"
	"caligo/internal/calql"
	"caligo/internal/core"
	"caligo/internal/snapshot"
	"caligo/internal/trace"
)

// Engine executes one query over a stream of records.
type Engine struct {
	q   *calql.Query
	reg *attr.Registry

	db    *core.DB              // nil when the query does not aggregate
	rows  []snapshot.FlatRecord // collected rows for non-aggregating queries
	lets  []resolvedLet
	conds []compiledCond
}

// resolvedLet caches the derived attribute handle for a LET definition.
type resolvedLet struct {
	def  calql.LetDef
	attr attr.Attribute
}

// compiledCond is one WHERE condition precompiled at engine construction:
// the numeric literal is parsed once (instead of per record per condition)
// and the attribute handle is resolved once so per-record lookups compare
// ids instead of labels. Resolution is lazy because input attributes are
// typically registered only as records stream in.
type compiledCond struct {
	cond   calql.Condition
	id     attr.ID      // resolved attribute id; InvalidID until first found
	numLit attr.Variant // cond.Value parsed as Float, when it parses
	numOK  bool
}

// eval evaluates the condition over a record with the same semantics as
// EvalCondition (see there for the absent-attribute rules).
func (cc *compiledCond) eval(rec snapshot.FlatRecord, reg *attr.Registry) bool {
	if cc.id == attr.InvalidID {
		if a, ok := reg.Find(cc.cond.Attr); ok {
			cc.id = a.ID()
		}
	}
	var v attr.Variant
	var present bool
	if cc.id != attr.InvalidID {
		v, present = rec.Get(cc.id)
	}
	var result bool
	switch cc.cond.Op {
	case calql.CondExist:
		result = present
	default:
		if !present {
			// comparisons against an absent attribute are false (and
			// not(...) of them true)
			return cc.cond.Negate
		}
		var cmp int
		numeric := false
		if cc.numOK {
			switch v.Kind() {
			case attr.Int, attr.Uint, attr.Float, attr.Bool:
				cmp = attr.Compare(attr.FloatV(v.AsFloat()), cc.numLit)
				numeric = true
			}
		}
		if !numeric {
			cmp = attr.Compare(attr.StringV(v.String()), attr.StringV(cc.cond.Value))
		}
		switch cc.cond.Op {
		case calql.CondEq:
			result = cmp == 0
		case calql.CondLt:
			result = cmp < 0
		case calql.CondLe:
			result = cmp <= 0
		case calql.CondGt:
			result = cmp > 0
		case calql.CondGe:
			result = cmp >= 0
		}
	}
	if cc.cond.Negate {
		return !result
	}
	return result
}

// New prepares an engine for the query. The registry is shared with the
// record producers (readers or the runtime).
func New(q *calql.Query, reg *attr.Registry) (*Engine, error) {
	e := &Engine{q: q, reg: reg}
	if q.HasAggregation() {
		scheme, err := q.Scheme()
		if err != nil {
			return nil, err
		}
		db, err := core.NewDB(scheme, reg)
		if err != nil {
			return nil, err
		}
		e.db = db
	}
	for _, def := range q.Lets {
		var typ attr.Type
		switch def.Kind {
		case calql.LetScale, calql.LetTruncate:
			typ = attr.Float
		case calql.LetFirst:
			typ = attr.String
		}
		a, err := reg.Create(def.Name, typ, attr.AsValue)
		if err != nil {
			return nil, fmt.Errorf("query: LET %s: %w", def.Name, err)
		}
		e.lets = append(e.lets, resolvedLet{def: def, attr: a})
	}
	e.conds = make([]compiledCond, len(q.Where))
	for i, c := range q.Where {
		cc := compiledCond{cond: c, id: attr.InvalidID}
		if lv, err := attr.ParseAs(c.Value, attr.Float); err == nil {
			cc.numLit, cc.numOK = lv, true
		}
		if a, ok := reg.Find(c.Attr); ok {
			cc.id = a.ID()
		}
		e.conds[i] = cc
	}
	return e, nil
}

// MustNew is New panicking on error, for static pipelines.
func MustNew(q *calql.Query, reg *attr.Registry) *Engine {
	e, err := New(q, reg)
	if err != nil {
		panic(err)
	}
	return e
}

// DB exposes the engine's aggregation database (nil for non-aggregating
// queries). The parallel query application uses it for tree reduction.
func (e *Engine) DB() *core.DB { return e.db }

// Process feeds one record through the query pipeline. The record is
// borrowed: callers may reuse its storage after Process returns (the
// calformat.Reader.NextInto read loops do), so anything the engine
// retains past this call is cloned.
func (e *Engine) Process(rec snapshot.FlatRecord) error {
	rec = e.applyLets(rec)
	if !e.matches(rec) {
		return nil
	}
	if e.db != nil {
		// DB.Update copies what it aggregates; nothing of rec survives.
		e.db.Update(rec)
		return nil
	}
	e.rows = append(e.rows, rec.Clone())
	return nil
}

// ProcessAll feeds a record slice through the pipeline.
func (e *Engine) ProcessAll(recs []snapshot.FlatRecord) error {
	for _, r := range recs {
		if err := e.Process(r); err != nil {
			return err
		}
	}
	return nil
}

// applyLets appends derived entries to the record.
func (e *Engine) applyLets(rec snapshot.FlatRecord) snapshot.FlatRecord {
	if len(e.lets) == 0 {
		return rec
	}
	out := rec
	for _, l := range e.lets {
		switch l.def.Kind {
		case calql.LetScale:
			if v, ok := out.GetByName(l.def.Args[0]); ok {
				out = append(out, attr.Entry{Attr: l.attr,
					Value: attr.FloatV(v.AsFloat() * l.def.Factor)})
			}
		case calql.LetTruncate:
			if v, ok := out.GetByName(l.def.Args[0]); ok {
				step := l.def.Factor
				out = append(out, attr.Entry{Attr: l.attr,
					Value: attr.FloatV(math.Floor(v.AsFloat()/step) * step)})
			}
		case calql.LetFirst:
			for _, src := range l.def.Args {
				if v, ok := out.GetByName(src); ok {
					out = append(out, attr.Entry{Attr: l.attr,
						Value: attr.StringV(v.String())})
					break
				}
			}
		}
	}
	return out
}

// matches evaluates all WHERE conditions (AND semantics) through the
// precompiled forms.
func (e *Engine) matches(rec snapshot.FlatRecord) bool {
	for i := range e.conds {
		if !e.conds[i].eval(rec, e.reg) {
			return false
		}
	}
	return true
}

// EvalCondition evaluates one predicate over a record. It is exported for
// the runtime's on-line aggregation service, which applies WHERE filters
// to snapshot records before aggregating.
func EvalCondition(c calql.Condition, rec snapshot.FlatRecord) bool {
	v, present := rec.GetByName(c.Attr)
	var result bool
	switch c.Op {
	case calql.CondExist:
		result = present
	default:
		if !present {
			// comparisons against an absent attribute are false (and
			// not(...) of them true)
			return c.Negate
		}
		cmp := compareToLiteral(v, c.Value)
		switch c.Op {
		case calql.CondEq:
			result = cmp == 0
		case calql.CondLt:
			result = cmp < 0
		case calql.CondLe:
			result = cmp <= 0
		case calql.CondGt:
			result = cmp > 0
		case calql.CondGe:
			result = cmp >= 0
		}
	}
	if c.Negate {
		return !result
	}
	return result
}

// compareToLiteral compares a record value against a query literal,
// numerically when the record value is numeric and the literal parses as a
// number, textually otherwise.
func compareToLiteral(v attr.Variant, lit string) int {
	switch v.Kind() {
	case attr.Int, attr.Uint, attr.Float, attr.Bool:
		if lv, err := attr.ParseAs(lit, attr.Float); err == nil {
			return attr.Compare(attr.FloatV(v.AsFloat()), lv)
		}
	}
	return attr.Compare(attr.StringV(v.String()), attr.StringV(lit))
}

// Size reports the engine's current result size: aggregation records for
// aggregating queries, collected rows otherwise.
func (e *Engine) Size() int {
	if e.db != nil {
		return e.db.Len()
	}
	return len(e.rows)
}

// Results finalizes the query: flushes the aggregation database (if any),
// evaluates post-aggregation operators, and applies ORDER BY and LIMIT.
func (e *Engine) Results() ([]snapshot.FlatRecord, error) {
	// the reduce span covers turning accumulated state into result rows;
	// non-aggregating queries pass their collected rows through, which is
	// still the pipeline's reduce position (mode arg tells them apart)
	sp := trace.Begin("query.reduce")
	var rows []snapshot.FlatRecord
	if e.db != nil {
		sp.Arg("mode", "flush")
		sp.ArgInt("buckets", int64(e.db.Len()))
		var err error
		rows, err = e.db.FlushRecords()
		if err != nil {
			sp.End()
			return nil, err
		}
	} else {
		sp.Arg("mode", "passthrough")
		rows = e.rows
	}
	sp.ArgInt("rows", int64(len(rows)))
	sp.End()
	return postprocess(e.q, e.reg, rows)
}

// postprocess runs the shared post-aggregation tail: post-ops, ORDER BY,
// LIMIT. One definition serves Results and Finalize so the
// query.postprocess span means the same thing on every path.
func postprocess(q *calql.Query, reg *attr.Registry, rows []snapshot.FlatRecord) ([]snapshot.FlatRecord, error) {
	sp := trace.Begin("query.postprocess")
	sp.ArgInt("rows_in", int64(len(rows)))
	rows, err := ApplyPostOps(q, reg, rows)
	if err != nil {
		sp.End()
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		sortRows(rows, resolveOrderAliases(q))
	}
	if q.Limit >= 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	sp.ArgInt("rows_out", int64(len(rows)))
	sp.End()
	return rows, nil
}

// resolveOrderAliases maps ORDER BY labels through SELECT ... AS aliases,
// so "SELECT sum#x AS total ... ORDER BY total" works.
func resolveOrderAliases(q *calql.Query) []calql.OrderItem {
	if len(q.Select) == 0 {
		return q.OrderBy
	}
	byAlias := map[string]string{}
	for _, s := range q.Select {
		if s.Alias != "" {
			byAlias[s.Alias] = s.Label
		}
	}
	if len(byAlias) == 0 {
		return q.OrderBy
	}
	out := make([]calql.OrderItem, len(q.OrderBy))
	copy(out, q.OrderBy)
	for i := range out {
		if label, ok := byAlias[out[i].Label]; ok {
			out[i].Label = label
		}
	}
	return out
}

// postOpInput reads the column a post-op refers to: the named attribute
// itself, or its sum#-result when the name refers to a raw attribute that
// was aggregated.
func postOpInput(row snapshot.FlatRecord, target string) (float64, bool) {
	if v, ok := row.GetByName(target); ok {
		return v.AsFloat(), true
	}
	if v, ok := row.GetByName("sum#" + target); ok {
		return v.AsFloat(), true
	}
	return 0, false
}

// ApplyPostOps evaluates a query's post-aggregation operators
// (percent_total, ratio) over the result rows, appending one derived
// entry per row. Exported for the parallel query path, which finalizes
// rows outside an Engine.
func ApplyPostOps(q *calql.Query, reg *attr.Registry, rows []snapshot.FlatRecord) ([]snapshot.FlatRecord, error) {
	for _, po := range q.PostOps {
		a, err := reg.Create(po.ResultName(), attr.Float, attr.AsValue|attr.SkipEvents)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", po.ResultName(), err)
		}
		switch po.Kind {
		case calql.PostPercentTotal:
			total := 0.0
			for _, row := range rows {
				if v, ok := postOpInput(row, po.Target); ok {
					total += v
				}
			}
			if total == 0 {
				continue
			}
			for i, row := range rows {
				if v, ok := postOpInput(row, po.Target); ok {
					rows[i] = append(row, attr.Entry{Attr: a,
						Value: attr.FloatV(100 * v / total)})
				}
			}
		case calql.PostRatio:
			for i, row := range rows {
				num, okN := postOpInput(row, po.Target)
				den, okD := postOpInput(row, po.Target2)
				if okN && okD && den != 0 {
					rows[i] = append(row, attr.Entry{Attr: a,
						Value: attr.FloatV(num / den)})
				}
			}
		}
	}
	return rows, nil
}

// sortRows orders rows by the given keys. Missing values sort first.
//
// Decorate-sort-undecorate: sort key values are extracted once per row per
// key (GetByName is a linear scan over the record), instead of twice per
// comparison inside the sort loop.
func sortRows(rows []snapshot.FlatRecord, keys []calql.OrderItem) {
	if len(rows) < 2 || len(keys) == 0 {
		return
	}
	type decorated struct {
		row  snapshot.FlatRecord
		vals []attr.Variant
		oks  []bool
	}
	vals := make([]attr.Variant, len(rows)*len(keys))
	oks := make([]bool, len(rows)*len(keys))
	deco := make([]decorated, len(rows))
	for i, row := range rows {
		v := vals[i*len(keys) : (i+1)*len(keys)]
		o := oks[i*len(keys) : (i+1)*len(keys)]
		for ki, k := range keys {
			v[ki], o[ki] = row.GetByName(k.Label)
		}
		deco[i] = decorated{row: row, vals: v, oks: o}
	}
	sort.SliceStable(deco, func(i, j int) bool {
		a, b := &deco[i], &deco[j]
		for ki := range keys {
			var cmp int
			switch {
			case !a.oks[ki] && !b.oks[ki]:
				cmp = 0
			case !a.oks[ki]:
				cmp = -1
			case !b.oks[ki]:
				cmp = 1
			default:
				cmp = attr.Compare(a.vals[ki], b.vals[ki])
			}
			if keys[ki].Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	for i := range deco {
		rows[i] = deco[i].row
	}
}

// Finalize applies a query's post-aggregation operators and its ORDER BY
// and LIMIT clauses to result rows produced elsewhere (e.g. by the
// parallel cross-process reduction, which aggregates outside an Engine).
func Finalize(q *calql.Query, reg *attr.Registry, rows []snapshot.FlatRecord) []snapshot.FlatRecord {
	if out, err := postprocess(q, reg, rows); err == nil {
		return out
	}
	// lenient on post-op errors (e.g. result attribute already exists):
	// fall back to ordering and limiting the rows as-is
	if len(q.OrderBy) > 0 {
		sortRows(rows, resolveOrderAliases(q))
	}
	if q.Limit >= 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows
}

// Run is a convenience wrapper: process all records and return results.
func Run(q *calql.Query, reg *attr.Registry, recs []snapshot.FlatRecord) ([]snapshot.FlatRecord, error) {
	e, err := New(q, reg)
	if err != nil {
		return nil, err
	}
	if err := e.ProcessAll(recs); err != nil {
		return nil, err
	}
	return e.Results()
}
