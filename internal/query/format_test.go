package query

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calql"
	"caligo/internal/snapshot"
)

func render(t *testing.T, fx *fixture, queryText string, recs []snapshot.FlatRecord) string {
	t.Helper()
	q := calql.MustParse(queryText)
	e := MustNew(q, fx.reg)
	if err := e.ProcessAll(recs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Execute(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTableNumericRightAlignment(t *testing.T) {
	fx := newFixture(t)
	out := render(t, fx,
		"SELECT kernel, sum#time.duration AGGREGATE sum(time.duration) GROUP BY kernel WHERE kernel ORDER BY kernel",
		fx.sampleData())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("table too short:\n%s", out)
	}
	// numeric column is right-aligned: every line ends with a digit, and
	// the sums line up on the right edge
	for _, l := range lines[1:] {
		if l[len(l)-1] < '0' || l[len(l)-1] > '9' {
			t.Errorf("line does not end in a digit: %q", l)
		}
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	fx := newFixture(t)
	weird := fx.reg.MustCreate("weird", attr.String, 0)
	recs := []snapshot.FlatRecord{{
		{Attr: weird, Value: attr.StringV(`has,comma "and quotes"`)},
		{Attr: fx.dur, Value: attr.IntV(1)},
	}}
	out := render(t, fx, "SELECT * FORMAT csv", recs)
	if !strings.Contains(out, `"has,comma ""and quotes"""`) {
		t.Errorf("CSV escaping broken:\n%s", out)
	}
}

func TestJSONMultiValueArrays(t *testing.T) {
	fx := newFixture(t)
	recs := []snapshot.FlatRecord{{
		{Attr: fx.kernel, Value: attr.StringV("outer")},
		{Attr: fx.kernel, Value: attr.StringV("inner")},
		{Attr: fx.dur, Value: attr.IntV(5)},
	}}
	out := render(t, fx, "SELECT * FORMAT json", recs)
	var rows []map[string]any
	if err := json.Unmarshal([]byte(out), &rows); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	arr, ok := rows[0]["kernel"].([]any)
	if !ok || len(arr) != 2 || arr[0] != "outer" {
		t.Errorf("stacked values should become an array: %v", rows[0]["kernel"])
	}
	if rows[0]["time.duration"].(float64) != 5 {
		t.Errorf("numeric value mangled: %v", rows[0]["time.duration"])
	}
}

func TestTreeFormatDeepHierarchy(t *testing.T) {
	fx := newFixture(t)
	mk := func(path ...string) snapshot.FlatRecord {
		var r snapshot.FlatRecord
		for _, p := range path {
			r = append(r, attr.Entry{Attr: fx.kernel, Value: attr.StringV(p)})
		}
		return append(r, attr.Entry{Attr: fx.dur, Value: attr.IntV(1)})
	}
	out := render(t, fx, "AGGREGATE count GROUP BY kernel FORMAT tree",
		[]snapshot.FlatRecord{mk("a"), mk("a", "b"), mk("a", "b", "c"), mk("d")})
	// depth-indented entries
	if !strings.Contains(out, "\na") || !strings.Contains(out, "\n  b") ||
		!strings.Contains(out, "\n    c") || !strings.Contains(out, "\nd") {
		t.Errorf("tree structure wrong:\n%s", out)
	}
}

func TestSelectStarWithExplicitColumns(t *testing.T) {
	fx := newFixture(t)
	out := render(t, fx, "SELECT kernel, * WHERE kernel FORMAT csv", fx.sampleData())
	header := strings.SplitN(out, "\n", 2)[0]
	cols := strings.Split(header, ",")
	if cols[0] != "kernel" {
		t.Errorf("explicit column not first: %q", header)
	}
	// kernel must not repeat in the expansion
	count := 0
	for _, c := range cols {
		if c == "kernel" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("kernel repeated in header: %q", header)
	}
}

func TestColumnsForDiscoveryOrder(t *testing.T) {
	fx := newFixture(t)
	out := render(t, fx, "SELECT * WHERE mpi.function FORMAT csv", fx.sampleData())
	header := strings.SplitN(out, "\n", 2)[0]
	// first-appearance order: mpi.function appears before time.duration
	fnIdx := strings.Index(header, "mpi.function")
	durIdx := strings.Index(header, "time.duration")
	if fnIdx < 0 || durIdx < 0 || fnIdx > durIdx {
		t.Errorf("column order wrong: %q", header)
	}
}

func TestEmptyResultFormats(t *testing.T) {
	fx := newFixture(t)
	for _, format := range []string{"table", "csv", "json", "tree", "expand", "cali"} {
		out := render(t, fx, "SELECT * WHERE kernel=nonexistent FORMAT "+format, fx.sampleData())
		// must not fail; json yields an empty array
		if format == "json" && !strings.Contains(out, "[]") {
			t.Errorf("json empty result = %q", out)
		}
	}
}

func TestExpandFormatEntryOrder(t *testing.T) {
	fx := newFixture(t)
	recs := []snapshot.FlatRecord{{
		{Attr: fx.kernel, Value: attr.StringV("k")},
		{Attr: fx.rank, Value: attr.IntV(2)},
		{Attr: fx.dur, Value: attr.IntV(7)},
	}}
	out := render(t, fx, "SELECT * FORMAT expand", recs)
	want := "kernel=k,mpi.rank=2,time.duration=7\n"
	if out != want {
		t.Errorf("expand = %q, want %q", out, want)
	}
}
