package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"caligo/internal/attr"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). All counters are
// no-ops (one atomic load) unless telemetry is enabled.
var (
	telUpdates  = telemetry.NewCounter("caligo.core.updates")
	telMerges   = telemetry.NewCounter("caligo.core.merges")
	telBuckets  = telemetry.NewCounter("caligo.core.buckets")
	telKeyBytes = telemetry.NewCounter("caligo.core.keybytes")
)

// DB is the in-memory aggregation database of Section IV-B: it keeps one
// aggregation record per unique set of key-attribute values, identified by
// a compact, collision-free key encoding, and updates the records with
// streaming reduction operators.
//
// A DB is owned by a single thread of execution (Caliper keeps one per
// monitored thread to avoid locks); it is not safe for concurrent use.
// Cross-thread and cross-process totals are obtained by merging DBs.
type DB struct {
	scheme *Scheme
	reg    *attr.Registry

	buckets map[string]*bucket

	// roles caches, per attribute id, how the attribute participates in
	// the scheme. Grown lazily as new attribute ids appear.
	roles []role

	// scratch state reused across Update calls to avoid allocation.
	keyVals [][]attr.Variant // per key position: observed values in order
	opVal   []attr.Variant   // per op: innermost direct target value
	opHas   []bool
	reVal   []attr.Variant // per op: innermost pre-aggregated (re-agg) value
	reHas   []bool
	keyBuf  []byte

	processed uint64

	// wireTypes records target types received in encoded state, used when
	// the local registry has never seen the target attribute (cross-process
	// reduction at a root that only handles pre-aggregated data).
	wireTypes []attr.Type
	// wireNested records key-attribute nested flags received in encoded
	// state (index = key position; 0 = unknown, 2 = known, 3 = nested).
	wireNested []byte
}

// role describes one attribute's participation in the scheme.
type role struct {
	resolved bool
	keyPos   int16 // position in scheme.Key, or -1
	targetOf []int // ops for which this attribute is the direct target
	reaggOf  []int // ops for which this attribute is the pre-aggregated result
}

// bucket is one aggregation record: the reconstructed key entries and the
// accumulator state per operator.
type bucket struct {
	// keyGroups holds, per scheme key position that was present, the
	// position and its value path.
	keyGroups []keyGroup
	accs      []accum
}

type keyGroup struct {
	pos    int
	values []attr.Variant
}

// NewDB returns an empty aggregation database for the given scheme.
// Result attributes are created in reg at flush time.
func NewDB(scheme *Scheme, reg *attr.Registry) (*DB, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	return &DB{
		scheme:  scheme,
		reg:     reg,
		buckets: map[string]*bucket{},
		keyVals: make([][]attr.Variant, len(scheme.Key)),
		opVal:   make([]attr.Variant, len(scheme.Ops)),
		opHas:   make([]bool, len(scheme.Ops)),
		reVal:   make([]attr.Variant, len(scheme.Ops)),
		reHas:   make([]bool, len(scheme.Ops)),
	}, nil
}

// Scheme returns the database's aggregation scheme.
func (db *DB) Scheme() *Scheme { return db.scheme }

// Len returns the number of aggregation records (unique keys).
func (db *DB) Len() int { return len(db.buckets) }

// Processed returns the number of input records aggregated so far.
func (db *DB) Processed() uint64 { return db.processed }

// resolveRole computes the scheme role of one attribute.
func (db *DB) resolveRole(a attr.Attribute) role {
	r := role{resolved: true, keyPos: -1}
	name := a.Name()
	for i, k := range db.scheme.Key {
		if k == name {
			r.keyPos = int16(i)
			break
		}
	}
	for i, op := range db.scheme.Ops {
		if op.Kind.NeedsTarget() && op.Target == name {
			r.targetOf = append(r.targetOf, i)
		}
		// pre-aggregated result names compose re-aggregation:
		// count <- aggregate.count, sum(x) <- sum#x, min(x) <- min#x, ...
		switch op.Kind {
		case OpCount:
			if name == CountResultName {
				r.reaggOf = append(r.reaggOf, i)
			}
		case OpSum, OpMin, OpMax, OpScount, OpInclusiveSum:
			if name == op.Kind.String()+"#"+op.Target {
				r.reaggOf = append(r.reaggOf, i)
			}
		}
	}
	return r
}

// roleOf returns the cached role for an attribute, resolving it on first
// encounter.
func (db *DB) roleOf(a attr.Attribute) *role {
	id := int(a.ID())
	if id >= len(db.roles) {
		grown := make([]role, id+16)
		copy(grown, db.roles)
		db.roles = grown
	}
	r := &db.roles[id]
	if !r.resolved {
		*r = db.resolveRole(a)
	}
	return r
}

// Update folds one record into the database: it extracts the key and
// aggregation attributes, locates the aggregation record for the key
// (creating it if needed), and applies the reduction operators
// (the workflow of Figure 2).
func (db *DB) Update(rec snapshot.FlatRecord) {
	db.processed++
	telUpdates.Inc()

	// reset scratch
	for i := range db.keyVals {
		db.keyVals[i] = db.keyVals[i][:0]
	}
	for i := range db.opHas {
		db.opHas[i] = false
		db.reHas[i] = false
	}

	// single pass: classify each entry by its attribute's role
	for _, e := range rec {
		r := db.roleOf(e.Attr)
		if r.keyPos >= 0 {
			db.keyVals[r.keyPos] = append(db.keyVals[r.keyPos], e.Value)
		}
		for _, i := range r.targetOf {
			db.opVal[i] = e.Value // innermost (last) wins
			db.opHas[i] = true
		}
		for _, i := range r.reaggOf {
			db.reVal[i] = e.Value
			db.reHas[i] = true
		}
	}

	b := db.bucketFor()

	// apply operators
	for i := range db.scheme.Ops {
		spec := &db.scheme.Ops[i]
		acc := &b.accs[i]
		switch spec.Kind {
		case OpCount:
			if db.reHas[i] {
				acc.update(spec, db.reVal[i]) // sum pre-aggregated counts
			} else {
				acc.update(spec, attr.UintV(1))
			}
		case OpScount:
			if db.opHas[i] {
				acc.update(spec, attr.UintV(1))
			} else if db.reHas[i] {
				acc.update(spec, db.reVal[i])
			}
		case OpSum, OpMin, OpMax, OpInclusiveSum:
			if db.opHas[i] {
				acc.update(spec, db.opVal[i])
			} else if db.reHas[i] {
				acc.update(spec, db.reVal[i])
			}
		default: // avg, stddev, histogram: direct observations only
			if db.opHas[i] {
				acc.update(spec, db.opVal[i])
			}
		}
	}
}

// bucketFor computes the collision-free key encoding from the scratch key
// values and returns the bucket, creating it if needed.
//
// The encoding writes, for each key position that has values, the position
// index followed by the value count and the self-delimiting variant
// encodings. It is injective per scheme: equal encodings imply equal key
// paths, which makes key reconstruction at flush time exact (the paper's
// "compact, collision-free hash value").
func (db *DB) bucketFor() *bucket {
	db.keyBuf = db.keyBuf[:0]
	for pos, vals := range db.keyVals {
		if len(vals) == 0 {
			continue
		}
		db.keyBuf = binary.AppendUvarint(db.keyBuf, uint64(pos))
		db.keyBuf = binary.AppendUvarint(db.keyBuf, uint64(len(vals)))
		for _, v := range vals {
			db.keyBuf = v.AppendEncoded(db.keyBuf)
		}
	}
	if b, ok := db.buckets[string(db.keyBuf)]; ok {
		return b
	}
	telBuckets.Inc()
	telKeyBytes.Add(uint64(len(db.keyBuf)))
	b := &bucket{accs: make([]accum, len(db.scheme.Ops))}
	for pos, vals := range db.keyVals {
		if len(vals) == 0 {
			continue
		}
		b.keyGroups = append(b.keyGroups, keyGroup{
			pos:    pos,
			values: append([]attr.Variant(nil), vals...),
		})
	}
	db.buckets[string(db.keyBuf)] = b
	return b
}

// mergeBucket folds an external bucket (with portable key groups) into the
// database, reconstructing the canonical key encoding locally.
func (db *DB) mergeBucket(groups []keyGroup, accs []accum) error {
	if len(accs) != len(db.scheme.Ops) {
		return fmt.Errorf("core: merge: accumulator count %d does not match scheme (%d ops)",
			len(accs), len(db.scheme.Ops))
	}
	db.keyBuf = db.keyBuf[:0]
	for _, g := range groups {
		if g.pos < 0 || g.pos >= len(db.scheme.Key) {
			return fmt.Errorf("core: merge: key position %d out of range", g.pos)
		}
		db.keyBuf = binary.AppendUvarint(db.keyBuf, uint64(g.pos))
		db.keyBuf = binary.AppendUvarint(db.keyBuf, uint64(len(g.values)))
		for _, v := range g.values {
			db.keyBuf = v.AppendEncoded(db.keyBuf)
		}
	}
	b, ok := db.buckets[string(db.keyBuf)]
	if !ok {
		telBuckets.Inc()
		telKeyBytes.Add(uint64(len(db.keyBuf)))
		b = &bucket{
			keyGroups: make([]keyGroup, len(groups)),
			accs:      make([]accum, len(db.scheme.Ops)),
		}
		for i, g := range groups {
			b.keyGroups[i] = keyGroup{pos: g.pos, values: append([]attr.Variant(nil), g.values...)}
		}
		db.buckets[string(db.keyBuf)] = b
	}
	for i := range accs {
		b.accs[i].merge(&db.scheme.Ops[i], &accs[i])
	}
	return nil
}

// Merge folds all aggregation records of other into db. Both databases
// must use equal schemes. other is left unchanged.
func (db *DB) Merge(other *DB) error {
	telMerges.Inc()
	if !db.scheme.Equal(other.scheme) {
		return fmt.Errorf("core: merge: schemes differ: %q vs %q", db.scheme, other.scheme)
	}
	// iterate deterministically for reproducible error behaviour
	keys := make([]string, 0, len(other.buckets))
	for k := range other.buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := other.buckets[k]
		if err := db.mergeBucket(b.keyGroups, b.accs); err != nil {
			return err
		}
	}
	db.processed += other.processed
	return nil
}

// noteWireNested records a key attribute's nested flag from encoded state.
func (db *DB) noteWireNested(keyPos int, flag byte) {
	if keyPos < 0 || keyPos >= len(db.scheme.Key) || flag&2 == 0 {
		return
	}
	if db.wireNested == nil {
		db.wireNested = make([]byte, len(db.scheme.Key))
	}
	db.wireNested[keyPos] = flag
}

// keyIsNested reports whether the key attribute at a position has nested
// (hierarchical) semantics, consulting the local registry first and then
// metadata received over the wire.
func (db *DB) keyIsNested(pos int, keyAttrs []attr.Attribute) bool {
	if keyAttrs[pos].IsValid() {
		return keyAttrs[pos].IsNested()
	}
	if db.wireNested != nil && db.wireNested[pos]&2 != 0 {
		return db.wireNested[pos]&1 != 0
	}
	return false
}

// noteWireType records a target type received in encoded state.
func (db *DB) noteWireType(opIndex int, t attr.Type) {
	if opIndex < 0 || opIndex >= len(db.scheme.Ops) || t == attr.Inv {
		return
	}
	if db.wireTypes == nil {
		db.wireTypes = make([]attr.Type, len(db.scheme.Ops))
	}
	db.wireTypes[opIndex] = t
}

// resolveTargetType finds the output type basis for an operator: the target
// attribute's type if registered, else the pre-aggregated result
// attribute's type, else a type learned from received encoded state, else
// Float.
func (db *DB) resolveTargetType(op *OpSpec) attr.Type {
	if !op.Kind.NeedsTarget() {
		return attr.Uint
	}
	if a, ok := db.reg.Find(op.Target); ok {
		return a.Type()
	}
	if a, ok := db.reg.Find(op.Kind.String() + "#" + op.Target); ok {
		return a.Type()
	}
	if db.wireTypes != nil {
		for i := range db.scheme.Ops {
			if &db.scheme.Ops[i] == op && db.wireTypes[i] != attr.Inv {
				return db.wireTypes[i]
			}
		}
	}
	return attr.Float
}

// Flush reconstructs the key attributes of every aggregation record,
// appends the reduction results, and emits one output record per unique
// key through emit, ordered deterministically by key encoding. The
// database contents are retained (call Clear to reset).
//
// Result attributes (e.g. "aggregate.count", "sum#time.duration") are
// created in the registry with AsValue|Aggregatable|SkipEvents properties.
func (db *DB) Flush(emit func(snapshot.FlatRecord) error) error {
	// create result attributes once
	resAttrs := make([]attr.Attribute, len(db.scheme.Ops))
	resTypes := make([]attr.Type, len(db.scheme.Ops))
	for i := range db.scheme.Ops {
		op := &db.scheme.Ops[i]
		tt := db.resolveTargetType(op)
		resTypes[i] = tt
		a, err := db.reg.Create(op.ResultName(), op.ResultType(tt),
			attr.AsValue|attr.Aggregatable|attr.SkipEvents)
		if err != nil {
			return fmt.Errorf("core: flush: %w", err)
		}
		resAttrs[i] = a
	}
	keyAttrs := make([]attr.Attribute, len(db.scheme.Key))
	// key attributes may or may not be registered; leave invalid handles
	// for positions we never saw (their groups are empty anyway).
	for i, name := range db.scheme.Key {
		if a, ok := db.reg.Find(name); ok {
			keyAttrs[i] = a
		} else {
			keyAttrs[i] = attr.Attribute{}
		}
	}

	keys := make([]string, 0, len(db.buckets))
	for k := range db.buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	inclusive := db.inclusiveAdditions(keys, keyAttrs)

	for _, k := range keys {
		b := db.buckets[k]
		rec := make(snapshot.FlatRecord, 0, len(b.keyGroups)+len(db.scheme.Ops))
		for _, g := range b.keyGroups {
			ka := keyAttrs[g.pos]
			if !ka.IsValid() {
				// the attribute must exist if values were observed; recover
				// by creating it from the first value's type, preserving
				// nested semantics received over the wire
				var props attr.Properties
				if db.keyIsNested(g.pos, keyAttrs) {
					props = attr.Nested
				}
				a, err := db.reg.Create(db.scheme.Key[g.pos], g.values[0].Kind(), props)
				if err != nil {
					return fmt.Errorf("core: flush: reconstruct key attribute: %w", err)
				}
				keyAttrs[g.pos] = a
				ka = a
			}
			for _, v := range g.values {
				rec = append(rec, attr.Entry{Attr: ka, Value: v})
			}
		}
		for i := range db.scheme.Ops {
			acc := &b.accs[i]
			if add, ok := inclusive[k]; ok && db.scheme.Ops[i].Kind == OpInclusiveSum {
				acc = &add[i]
			}
			if v, ok := acc.result(&db.scheme.Ops[i], resTypes[i]); ok {
				rec = append(rec, attr.Entry{Attr: resAttrs[i], Value: v})
			}
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// inclusiveAdditions computes, for schemes with inclusive_sum operators,
// the effective accumulators of every bucket: its own plus those of all
// descendant buckets. Bucket A is an ancestor of bucket B when, for every
// key attribute, A's value path equals B's — except along nested
// (hierarchical) attributes, where A's path may be a proper prefix of
// B's. This turns the exclusive per-path sums into inclusive region
// totals, as in Caliper's inclusive metrics. Returns nil when the scheme
// has no inclusive operators.
func (db *DB) inclusiveAdditions(keys []string, keyAttrs []attr.Attribute) map[string][]accum {
	hasInclusive := false
	for i := range db.scheme.Ops {
		if db.scheme.Ops[i].Kind == OpInclusiveSum {
			hasInclusive = true
			break
		}
	}
	if !hasInclusive || len(db.buckets) == 0 {
		return nil
	}
	nested := make([]bool, len(db.scheme.Key))
	for i := range db.scheme.Key {
		nested[i] = db.keyIsNested(i, keyAttrs)
	}
	// value paths per bucket per key position, nil when absent
	paths := func(b *bucket) [][]attr.Variant {
		out := make([][]attr.Variant, len(db.scheme.Key))
		for _, g := range b.keyGroups {
			out[g.pos] = g.values
		}
		return out
	}
	isPrefix := func(a, b []attr.Variant) bool {
		if len(a) > len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	ancestor := func(pa, pb [][]attr.Variant) bool {
		proper := false
		for p := range pa {
			if nested[p] {
				if !isPrefix(pa[p], pb[p]) {
					return false
				}
				if len(pa[p]) < len(pb[p]) {
					proper = true
				}
				continue
			}
			if len(pa[p]) != len(pb[p]) || !isPrefix(pa[p], pb[p]) {
				return false
			}
		}
		return proper
	}

	allPaths := make([][][]attr.Variant, len(keys))
	for i, k := range keys {
		allPaths[i] = paths(db.buckets[k])
	}
	out := make(map[string][]accum, len(keys))
	for _, k := range keys {
		eff := make([]accum, len(db.scheme.Ops))
		copy(eff, db.buckets[k].accs)
		out[k] = eff
	}
	for i, ka := range keys {
		for j, kb := range keys {
			if i == j || !ancestor(allPaths[i], allPaths[j]) {
				continue
			}
			eff := out[ka]
			src := db.buckets[kb]
			for oi := range db.scheme.Ops {
				if db.scheme.Ops[oi].Kind == OpInclusiveSum {
					eff[oi].merge(&db.scheme.Ops[oi], &src.accs[oi])
				}
			}
		}
	}
	return out
}

// FlushRecords is Flush collecting the output records into a slice.
func (db *DB) FlushRecords() ([]snapshot.FlatRecord, error) {
	sp := trace.Begin("core.flush")
	sp.ArgInt("buckets", int64(len(db.buckets)))
	var out []snapshot.FlatRecord
	err := db.Flush(func(r snapshot.FlatRecord) error {
		out = append(out, r)
		return nil
	})
	sp.ArgInt("records", int64(len(out)))
	sp.End()
	return out, err
}

// Clear removes all aggregation records and resets counters. Role caches
// are retained.
func (db *DB) Clear() {
	db.buckets = map[string]*bucket{}
	db.processed = 0
}
