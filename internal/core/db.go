package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"caligo/internal/attr"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). All counters are
// no-ops (one atomic load) unless telemetry is enabled.
var (
	telUpdates  = telemetry.NewCounter("caligo.core.updates")
	telMerges   = telemetry.NewCounter("caligo.core.merges")
	telBuckets  = telemetry.NewCounter("caligo.core.buckets")
	telKeyBytes = telemetry.NewCounter("caligo.core.keybytes")
)

// DB is the in-memory aggregation database of Section IV-B: it keeps one
// aggregation record per unique set of key-attribute values, identified by
// a compact, collision-free key encoding, and updates the records with
// streaming reduction operators.
//
// A DB is owned by a single thread of execution (Caliper keeps one per
// monitored thread to avoid locks); it is not safe for concurrent use.
// Cross-thread and cross-process totals are obtained by merging DBs.
type DB struct {
	scheme *Scheme
	reg    *attr.Registry

	buckets map[string]*bucket
	// order logs buckets in insertion order, so Merge can walk the source
	// without allocating and sorting a key snapshot per call.
	order []*bucket
	// flushOrder caches the key-sorted bucket order Flush and EncodeState
	// emit in; it is invalidated whenever a bucket is inserted.
	flushOrder []*bucket

	// roles caches, per attribute id, how the attribute participates in
	// the scheme. Grown lazily as new attribute ids appear.
	roles []role

	// scratch state reused across Update calls to avoid allocation.
	keyVals [][]attr.Variant // per key position: observed values in order
	opVal   []attr.Variant   // per op: innermost direct target value
	opHas   []bool
	reVal   []attr.Variant // per op: innermost pre-aggregated (re-agg) value
	reHas   []bool
	keyBuf  []byte

	processed uint64

	// wireTypes records target types received in encoded state, used when
	// the local registry has never seen the target attribute (cross-process
	// reduction at a root that only handles pre-aggregated data).
	wireTypes []attr.Type
	// wireNested records key-attribute nested flags received in encoded
	// state (index = key position; 0 = unknown, 2 = known, 3 = nested).
	wireNested []byte
}

// role describes one attribute's participation in the scheme.
type role struct {
	resolved bool
	keyPos   int16 // position in scheme.Key, or -1
	targetOf []int // ops for which this attribute is the direct target
	reaggOf  []int // ops for which this attribute is the pre-aggregated result
}

// bucket is one aggregation record: the collision-free key encoding (which
// doubles as the bucket-map key) and the accumulator state per operator.
// The key groups it was built from are reconstructed by decoding key — the
// encoding is injective, so nothing is lost by not storing them twice.
type bucket struct {
	key  string
	accs []accum
}

type keyGroup struct {
	pos    int
	values []attr.Variant
}

// NewDB returns an empty aggregation database for the given scheme.
// Result attributes are created in reg at flush time.
func NewDB(scheme *Scheme, reg *attr.Registry) (*DB, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	return &DB{
		scheme:  scheme,
		reg:     reg,
		buckets: map[string]*bucket{},
		keyVals: make([][]attr.Variant, len(scheme.Key)),
		opVal:   make([]attr.Variant, len(scheme.Ops)),
		opHas:   make([]bool, len(scheme.Ops)),
		reVal:   make([]attr.Variant, len(scheme.Ops)),
		reHas:   make([]bool, len(scheme.Ops)),
	}, nil
}

// Scheme returns the database's aggregation scheme.
func (db *DB) Scheme() *Scheme { return db.scheme }

// Len returns the number of aggregation records (unique keys).
func (db *DB) Len() int { return len(db.buckets) }

// Processed returns the number of input records aggregated so far.
func (db *DB) Processed() uint64 { return db.processed }

// resolveRole computes the scheme role of one attribute.
func (db *DB) resolveRole(a attr.Attribute) role {
	r := role{resolved: true, keyPos: -1}
	name := a.Name()
	for i, k := range db.scheme.Key {
		if k == name {
			r.keyPos = int16(i)
			break
		}
	}
	for i, op := range db.scheme.Ops {
		if op.Kind.NeedsTarget() && op.Target == name {
			r.targetOf = append(r.targetOf, i)
		}
		// pre-aggregated result names compose re-aggregation:
		// count <- aggregate.count, sum(x) <- sum#x, min(x) <- min#x, ...
		switch op.Kind {
		case OpCount:
			if name == CountResultName {
				r.reaggOf = append(r.reaggOf, i)
			}
		case OpSum, OpMin, OpMax, OpScount, OpInclusiveSum:
			if name == op.Kind.String()+"#"+op.Target {
				r.reaggOf = append(r.reaggOf, i)
			}
		}
	}
	return r
}

// roleOf returns the cached role for an attribute, resolving it on first
// encounter.
func (db *DB) roleOf(a attr.Attribute) *role {
	id := int(a.ID())
	if id >= len(db.roles) {
		grown := make([]role, id+16)
		copy(grown, db.roles)
		db.roles = grown
	}
	r := &db.roles[id]
	if !r.resolved {
		*r = db.resolveRole(a)
	}
	return r
}

// Update folds one record into the database: it extracts the key and
// aggregation attributes, locates the aggregation record for the key
// (creating it if needed), and applies the reduction operators
// (the workflow of Figure 2).
func (db *DB) Update(rec snapshot.FlatRecord) {
	db.processed++
	telUpdates.Inc()

	// reset scratch
	for i := range db.keyVals {
		db.keyVals[i] = db.keyVals[i][:0]
	}
	for i := range db.opHas {
		db.opHas[i] = false
		db.reHas[i] = false
	}

	// single pass: classify each entry by its attribute's role
	for _, e := range rec {
		r := db.roleOf(e.Attr)
		if r.keyPos >= 0 {
			db.keyVals[r.keyPos] = append(db.keyVals[r.keyPos], e.Value)
		}
		for _, i := range r.targetOf {
			db.opVal[i] = e.Value // innermost (last) wins
			db.opHas[i] = true
		}
		for _, i := range r.reaggOf {
			db.reVal[i] = e.Value
			db.reHas[i] = true
		}
	}

	b := db.bucketFor()

	// apply operators
	for i := range db.scheme.Ops {
		spec := &db.scheme.Ops[i]
		acc := &b.accs[i]
		switch spec.Kind {
		case OpCount:
			if db.reHas[i] {
				acc.update(spec, db.reVal[i]) // sum pre-aggregated counts
			} else {
				acc.update(spec, attr.UintV(1))
			}
		case OpScount:
			if db.opHas[i] {
				acc.update(spec, attr.UintV(1))
			} else if db.reHas[i] {
				acc.update(spec, db.reVal[i])
			}
		case OpSum, OpMin, OpMax, OpInclusiveSum:
			if db.opHas[i] {
				acc.update(spec, db.opVal[i])
			} else if db.reHas[i] {
				acc.update(spec, db.reVal[i])
			}
		default: // avg, stddev, histogram: direct observations only
			if db.opHas[i] {
				acc.update(spec, db.opVal[i])
			}
		}
	}
}

// insertBucket registers a new bucket under its encoded key and logs the
// insertion order.
func (db *DB) insertBucket(b *bucket) {
	telBuckets.Inc()
	telKeyBytes.Add(uint64(len(b.key)))
	db.buckets[b.key] = b
	db.order = append(db.order, b)
	db.flushOrder = nil
}

// bucketFor computes the collision-free key encoding from the scratch key
// values and returns the bucket, creating it if needed.
//
// The encoding writes, for each key position that has values, the position
// index followed by the value count and the self-delimiting variant
// encodings. It is injective per scheme: equal encodings imply equal key
// paths, which makes key reconstruction at flush time exact (the paper's
// "compact, collision-free hash value").
func (db *DB) bucketFor() *bucket {
	db.keyBuf = db.keyBuf[:0]
	for pos, vals := range db.keyVals {
		if len(vals) == 0 {
			continue
		}
		db.keyBuf = binary.AppendUvarint(db.keyBuf, uint64(pos))
		db.keyBuf = binary.AppendUvarint(db.keyBuf, uint64(len(vals)))
		for _, v := range vals {
			db.keyBuf = v.AppendEncoded(db.keyBuf)
		}
	}
	if b, ok := db.buckets[string(db.keyBuf)]; ok {
		return b
	}
	b := &bucket{key: string(db.keyBuf), accs: make([]accum, len(db.scheme.Ops))}
	db.insertBucket(b)
	return b
}

// decodeKeyGroups reconstructs the (key position, value path) groups from a
// bucket's canonical key encoding — the inverse of bucketFor's encoder.
func (db *DB) decodeKeyGroups(key string) ([]keyGroup, error) {
	buf := []byte(key)
	var groups []keyGroup
	for pos := 0; pos < len(buf); {
		kpos, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("core: decode key: bad position at offset %d", pos)
		}
		pos += n
		cnt, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("core: decode key: bad value count at offset %d", pos)
		}
		pos += n
		if kpos >= uint64(len(db.scheme.Key)) {
			return nil, fmt.Errorf("core: decode key: position %d out of range", kpos)
		}
		vals := make([]attr.Variant, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			v, n, err := attr.DecodeVariant(buf[pos:])
			if err != nil {
				return nil, fmt.Errorf("core: decode key: %w", err)
			}
			pos += n
			vals = append(vals, v)
		}
		groups = append(groups, keyGroup{pos: int(kpos), values: vals})
	}
	return groups, nil
}

// mergeBucket folds an external bucket (with portable key groups) into the
// database, reconstructing the canonical key encoding locally.
func (db *DB) mergeBucket(groups []keyGroup, accs []accum) error {
	if len(accs) != len(db.scheme.Ops) {
		return fmt.Errorf("core: merge: accumulator count %d does not match scheme (%d ops)",
			len(accs), len(db.scheme.Ops))
	}
	db.keyBuf = db.keyBuf[:0]
	for _, g := range groups {
		if g.pos < 0 || g.pos >= len(db.scheme.Key) {
			return fmt.Errorf("core: merge: key position %d out of range", g.pos)
		}
		db.keyBuf = binary.AppendUvarint(db.keyBuf, uint64(g.pos))
		db.keyBuf = binary.AppendUvarint(db.keyBuf, uint64(len(g.values)))
		for _, v := range g.values {
			db.keyBuf = v.AppendEncoded(db.keyBuf)
		}
	}
	b, ok := db.buckets[string(db.keyBuf)]
	if !ok {
		b = &bucket{key: string(db.keyBuf), accs: make([]accum, len(db.scheme.Ops))}
		db.insertBucket(b)
	}
	for i := range accs {
		b.accs[i].merge(&db.scheme.Ops[i], &accs[i])
	}
	return nil
}

// Merge folds all aggregation records of other into db. Both databases
// must use equal schemes. other is left unchanged.
//
// The source is walked in its insertion order (recorded once, when each
// bucket was created), so a merge allocates nothing beyond the buckets it
// creates: key encodings are canonical and scheme-relative, so the source's
// key strings are reused directly for lookup and insertion.
func (db *DB) Merge(other *DB) error {
	telMerges.Inc()
	if db == other {
		return fmt.Errorf("core: merge: cannot merge a database into itself")
	}
	if !db.scheme.Equal(other.scheme) {
		return fmt.Errorf("core: merge: schemes differ: %q vs %q", db.scheme, other.scheme)
	}
	// propagate metadata the source learned over the wire: if other's
	// records came from decoded state (e.g. a cache hit) and our registry
	// never saw the target attributes, their resolved types and nested
	// flags must survive the merge or results render with Float defaults
	for i := range other.scheme.Ops {
		if db.wireTypes == nil || db.wireTypes[i] == attr.Inv {
			if other.wireTypes != nil {
				db.noteWireType(i, other.wireTypes[i])
			}
		}
	}
	for pos := range other.scheme.Key {
		if other.wireNested != nil {
			db.noteWireNested(pos, other.wireNested[pos])
		}
	}
	for _, sb := range other.order {
		b, ok := db.buckets[sb.key]
		if !ok {
			b = &bucket{key: sb.key, accs: make([]accum, len(db.scheme.Ops))}
			db.insertBucket(b)
		}
		for i := range sb.accs {
			b.accs[i].merge(&db.scheme.Ops[i], &sb.accs[i])
		}
	}
	db.processed += other.processed
	return nil
}

// noteWireNested records a key attribute's nested flag from encoded state.
func (db *DB) noteWireNested(keyPos int, flag byte) {
	if keyPos < 0 || keyPos >= len(db.scheme.Key) || flag&2 == 0 {
		return
	}
	if db.wireNested == nil {
		db.wireNested = make([]byte, len(db.scheme.Key))
	}
	db.wireNested[keyPos] = flag
}

// keyIsNested reports whether the key attribute at a position has nested
// (hierarchical) semantics, consulting the local registry first and then
// metadata received over the wire.
func (db *DB) keyIsNested(pos int, keyAttrs []attr.Attribute) bool {
	if keyAttrs[pos].IsValid() {
		return keyAttrs[pos].IsNested()
	}
	if db.wireNested != nil && db.wireNested[pos]&2 != 0 {
		return db.wireNested[pos]&1 != 0
	}
	return false
}

// noteWireType records a target type received in encoded state.
func (db *DB) noteWireType(opIndex int, t attr.Type) {
	if opIndex < 0 || opIndex >= len(db.scheme.Ops) || t == attr.Inv {
		return
	}
	if db.wireTypes == nil {
		db.wireTypes = make([]attr.Type, len(db.scheme.Ops))
	}
	db.wireTypes[opIndex] = t
}

// resolveTargetType finds the output type basis for an operator: the target
// attribute's type if registered, else the pre-aggregated result
// attribute's type, else a type learned from received encoded state, else
// Float.
func (db *DB) resolveTargetType(op *OpSpec) attr.Type {
	if !op.Kind.NeedsTarget() {
		return attr.Uint
	}
	if a, ok := db.reg.Find(op.Target); ok {
		return a.Type()
	}
	if a, ok := db.reg.Find(op.Kind.String() + "#" + op.Target); ok {
		return a.Type()
	}
	if db.wireTypes != nil {
		for i := range db.scheme.Ops {
			if &db.scheme.Ops[i] == op && db.wireTypes[i] != attr.Inv {
				return db.wireTypes[i]
			}
		}
	}
	return attr.Float
}

// sortedBuckets returns the buckets ordered by key encoding — the
// deterministic emission order of Flush and EncodeState. The order is
// cached and only recomputed after new buckets were inserted, so repeated
// flushes of a stable database skip the sort.
func (db *DB) sortedBuckets() []*bucket {
	if db.flushOrder == nil {
		db.flushOrder = make([]*bucket, len(db.order))
		copy(db.flushOrder, db.order)
		sort.Slice(db.flushOrder, func(i, j int) bool {
			return db.flushOrder[i].key < db.flushOrder[j].key
		})
	}
	return db.flushOrder
}

// Flush reconstructs the key attributes of every aggregation record,
// appends the reduction results, and emits one output record per unique
// key through emit, ordered deterministically by key encoding. The
// database contents are retained (call Clear to reset).
//
// Result attributes (e.g. "aggregate.count", "sum#time.duration") are
// created in the registry with AsValue|Aggregatable|SkipEvents properties.
func (db *DB) Flush(emit func(snapshot.FlatRecord) error) error {
	// create result attributes once
	resAttrs := make([]attr.Attribute, len(db.scheme.Ops))
	resTypes := make([]attr.Type, len(db.scheme.Ops))
	for i := range db.scheme.Ops {
		op := &db.scheme.Ops[i]
		tt := db.resolveTargetType(op)
		resTypes[i] = tt
		a, err := db.reg.Create(op.ResultName(), op.ResultType(tt),
			attr.AsValue|attr.Aggregatable|attr.SkipEvents)
		if err != nil {
			return fmt.Errorf("core: flush: %w", err)
		}
		resAttrs[i] = a
	}
	keyAttrs := make([]attr.Attribute, len(db.scheme.Key))
	// key attributes may or may not be registered; leave invalid handles
	// for positions we never saw (their groups are empty anyway).
	for i, name := range db.scheme.Key {
		if a, ok := db.reg.Find(name); ok {
			keyAttrs[i] = a
		} else {
			keyAttrs[i] = attr.Attribute{}
		}
	}

	sorted := db.sortedBuckets()
	groups := make([][]keyGroup, len(sorted))
	for i, b := range sorted {
		g, err := db.decodeKeyGroups(b.key)
		if err != nil {
			return fmt.Errorf("core: flush: %w", err)
		}
		groups[i] = g
	}

	inclusive := db.inclusiveAdditions(sorted, groups, keyAttrs)

	for bi, b := range sorted {
		rec := make(snapshot.FlatRecord, 0, len(groups[bi])+len(db.scheme.Ops))
		for _, g := range groups[bi] {
			ka := keyAttrs[g.pos]
			if !ka.IsValid() {
				// the attribute must exist if values were observed; recover
				// by creating it from the first value's type, preserving
				// nested semantics received over the wire
				var props attr.Properties
				if db.keyIsNested(g.pos, keyAttrs) {
					props = attr.Nested
				}
				a, err := db.reg.Create(db.scheme.Key[g.pos], g.values[0].Kind(), props)
				if err != nil {
					return fmt.Errorf("core: flush: reconstruct key attribute: %w", err)
				}
				keyAttrs[g.pos] = a
				ka = a
			}
			for _, v := range g.values {
				rec = append(rec, attr.Entry{Attr: ka, Value: v})
			}
		}
		for i := range db.scheme.Ops {
			acc := &b.accs[i]
			if add, ok := inclusive[b.key]; ok && db.scheme.Ops[i].Kind == OpInclusiveSum {
				acc = &add[i]
			}
			if v, ok := acc.result(&db.scheme.Ops[i], resTypes[i]); ok {
				rec = append(rec, attr.Entry{Attr: resAttrs[i], Value: v})
			}
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// inclusiveAdditions computes, for schemes with inclusive_sum operators,
// the effective accumulators of every bucket: its own plus those of all
// descendant buckets. Bucket A is an ancestor of bucket B when, for every
// key attribute, A's value path equals B's — except along nested
// (hierarchical) attributes, where A's path may be a proper prefix of
// B's. This turns the exclusive per-path sums into inclusive region
// totals, as in Caliper's inclusive metrics. Returns nil when the scheme
// has no inclusive operators. groups holds the decoded key groups of each
// bucket in sorted, aligned by index.
func (db *DB) inclusiveAdditions(sorted []*bucket, groups [][]keyGroup, keyAttrs []attr.Attribute) map[string][]accum {
	hasInclusive := false
	for i := range db.scheme.Ops {
		if db.scheme.Ops[i].Kind == OpInclusiveSum {
			hasInclusive = true
			break
		}
	}
	if !hasInclusive || len(sorted) == 0 {
		return nil
	}
	nested := make([]bool, len(db.scheme.Key))
	for i := range db.scheme.Key {
		nested[i] = db.keyIsNested(i, keyAttrs)
	}
	// value paths per bucket per key position, nil when absent
	paths := func(groups []keyGroup) [][]attr.Variant {
		out := make([][]attr.Variant, len(db.scheme.Key))
		for _, g := range groups {
			out[g.pos] = g.values
		}
		return out
	}
	isPrefix := func(a, b []attr.Variant) bool {
		if len(a) > len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	ancestor := func(pa, pb [][]attr.Variant) bool {
		proper := false
		for p := range pa {
			if nested[p] {
				if !isPrefix(pa[p], pb[p]) {
					return false
				}
				if len(pa[p]) < len(pb[p]) {
					proper = true
				}
				continue
			}
			if len(pa[p]) != len(pb[p]) || !isPrefix(pa[p], pb[p]) {
				return false
			}
		}
		return proper
	}

	allPaths := make([][][]attr.Variant, len(sorted))
	for i := range sorted {
		allPaths[i] = paths(groups[i])
	}
	out := make(map[string][]accum, len(sorted))
	for _, b := range sorted {
		eff := make([]accum, len(db.scheme.Ops))
		copy(eff, b.accs)
		out[b.key] = eff
	}
	for i, ba := range sorted {
		for j, bb := range sorted {
			if i == j || !ancestor(allPaths[i], allPaths[j]) {
				continue
			}
			eff := out[ba.key]
			for oi := range db.scheme.Ops {
				if db.scheme.Ops[oi].Kind == OpInclusiveSum {
					eff[oi].merge(&db.scheme.Ops[oi], &bb.accs[oi])
				}
			}
		}
	}
	return out
}

// FlushRecords is Flush collecting the output records into a slice.
func (db *DB) FlushRecords() ([]snapshot.FlatRecord, error) {
	sp := trace.Begin("core.flush")
	sp.ArgInt("buckets", int64(len(db.buckets)))
	var out []snapshot.FlatRecord
	err := db.Flush(func(r snapshot.FlatRecord) error {
		out = append(out, r)
		return nil
	})
	sp.ArgInt("records", int64(len(out)))
	sp.End()
	return out, err
}

// Clear removes all aggregation records and resets counters. Role caches
// are retained.
func (db *DB) Clear() {
	db.buckets = map[string]*bucket{}
	db.order = nil
	db.flushOrder = nil
	db.processed = 0
}
