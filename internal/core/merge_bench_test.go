package core

import (
	"fmt"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/snapshot"
)

// buildMergeSource returns a DB with n distinct aggregation records over a
// kernel/iteration key, mimicking a per-worker query shard.
func buildMergeSource(tb testing.TB, reg *attr.Registry, scheme *Scheme, n int) *DB {
	tb.Helper()
	kernel := reg.MustCreate("kernel", attr.String, attr.Nested)
	iter := reg.MustCreate("iteration", attr.Int, attr.AsValue)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue)
	db, err := NewDB(scheme, reg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		db.Update(snapshot.FlatRecord{
			{Attr: kernel, Value: attr.StringV(fmt.Sprintf("kernel.%d", i%97))},
			{Attr: iter, Value: attr.IntV(int64(i / 97))},
			{Attr: dur, Value: attr.IntV(int64(10 + i))},
		})
	}
	if db.Len() != n {
		tb.Fatalf("source has %d buckets, want %d", db.Len(), n)
	}
	return db
}

func mergeScheme(tb testing.TB) *Scheme {
	tb.Helper()
	scheme, err := NewScheme([]string{"kernel", "iteration"}, []OpSpec{
		{Kind: OpCount},
		{Kind: OpSum, Target: "time.duration"},
		{Kind: OpMin, Target: "time.duration"},
		{Kind: OpMax, Target: "time.duration"},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return scheme
}

// BenchmarkMerge measures the steady-state cost of folding one shard into
// an already-populated database — the dominant operation of the sharded
// query executor's reduction phase. The insertion-order walk keeps this
// free of the per-call key-snapshot allocation and sort the old
// implementation paid.
func BenchmarkMerge(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("buckets=%d", n), func(b *testing.B) {
			scheme := mergeScheme(b)
			src := buildMergeSource(b, attr.NewRegistry(), scheme, n)
			dst, err := NewDB(scheme, attr.NewRegistry())
			if err != nil {
				b.Fatal(err)
			}
			if err := dst.Merge(src); err != nil { // pre-populate the bucket set
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dst.Merge(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMergeFirst measures a merge into an empty database, where every
// source bucket is newly inserted (key strings are shared, not re-encoded).
func BenchmarkMergeFirst(b *testing.B) {
	scheme := mergeScheme(b)
	src := buildMergeSource(b, attr.NewRegistry(), scheme, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err := NewDB(scheme, attr.NewRegistry())
		if err != nil {
			b.Fatal(err)
		}
		if err := dst.Merge(src); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMergeSteadyStateAllocs proves the satellite win: merging a shard
// into a database that already contains every key allocates nothing.
func TestMergeSteadyStateAllocs(t *testing.T) {
	scheme := mergeScheme(t)
	src := buildMergeSource(t, attr.NewRegistry(), scheme, 256)
	dst, err := NewDB(scheme, attr.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := dst.Merge(src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Merge allocates %v objects per run, want 0", allocs)
	}
}

// TestMergeSelfRejected guards the insertion-log walk against aliasing.
func TestMergeSelfRejected(t *testing.T) {
	scheme := mergeScheme(t)
	db := buildMergeSource(t, attr.NewRegistry(), scheme, 4)
	if err := db.Merge(db); err == nil {
		t.Fatal("self-merge should error")
	}
}

// TestFlushOrderIndependentOfInsertion checks that flush output order is
// determined by the key encoding, not by bucket insertion order — the
// property the sharded executor's byte-identical guarantee rests on.
func TestFlushOrderIndependentOfInsertion(t *testing.T) {
	scheme := mergeScheme(t)
	forward := buildMergeSource(t, attr.NewRegistry(), scheme, 64)

	// build the same content in reverse insertion order
	reg := attr.NewRegistry()
	kernel := reg.MustCreate("kernel", attr.String, attr.Nested)
	iter := reg.MustCreate("iteration", attr.Int, attr.AsValue)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue)
	reverse, err := NewDB(scheme, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 63; i >= 0; i-- {
		reverse.Update(snapshot.FlatRecord{
			{Attr: kernel, Value: attr.StringV(fmt.Sprintf("kernel.%d", i%97))},
			{Attr: iter, Value: attr.IntV(int64(i / 97))},
			{Attr: dur, Value: attr.IntV(int64(10 + i))},
		})
	}

	a, err := forward.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	b, err := reverse.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("row %d differs:\n forward %s\n reverse %s", i, a[i], b[i])
		}
	}
}

// TestRepeatedFlushUsesCachedOrder checks that flushing twice (the DB
// retains its contents) yields identical output, and that an insertion
// between flushes invalidates the cached order correctly.
func TestRepeatedFlushUsesCachedOrder(t *testing.T) {
	scheme := mergeScheme(t)
	reg := attr.NewRegistry()
	db := buildMergeSource(t, reg, scheme, 32)
	first, err := db.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	second, err := db.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("flush counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].String() != second[i].String() {
			t.Errorf("row %d differs across flushes", i)
		}
	}

	// insert a new bucket; the next flush must include it in sorted position
	kernel, _ := reg.Find("kernel")
	dur, _ := reg.Find("time.duration")
	db.Update(snapshot.FlatRecord{
		{Attr: kernel, Value: attr.StringV("aaa-new-kernel")},
		{Attr: dur, Value: attr.IntV(1)},
	})
	third, err := db.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(third) != len(first)+1 {
		t.Fatalf("flush after insert has %d records, want %d", len(third), len(first)+1)
	}
	found := false
	for _, r := range third {
		if v, ok := r.GetByName("kernel"); ok && v.String() == "aaa-new-kernel" {
			found = true
		}
	}
	if !found {
		t.Error("new bucket missing from flush after cache invalidation")
	}
}
