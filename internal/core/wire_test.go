package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"caligo/internal/attr"
	"caligo/internal/snapshot"
)

// wireFixture provides a registry whose key attribute is nested, so the
// inclusive_sum operator (which needs a hierarchy) participates in the
// per-kind round-trip matrix alongside the flat operators.
type wireFixture struct {
	reg *attr.Registry
	fn  attr.Attribute
	dur attr.Attribute
}

func newWireFixture(t *testing.T) *wireFixture {
	t.Helper()
	reg := attr.NewRegistry()
	return &wireFixture{
		reg: reg,
		fn:  reg.MustCreate("function", attr.String, attr.Nested),
		dur: reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable),
	}
}

// rec builds a record with a nested function path and a duration value.
func (fx *wireFixture) rec(path []string, dur int64) snapshot.FlatRecord {
	var r snapshot.FlatRecord
	for _, p := range path {
		r = append(r, attr.Entry{Attr: fx.fn, Value: attr.StringV(p)})
	}
	r = append(r, attr.Entry{Attr: fx.dur, Value: attr.IntV(dur)})
	return r
}

// wireOpSchemes enumerates one scheme per operator kind. Keeping each
// kind in its own scheme pins down exactly which accumulator encoding
// broke when a round-trip fails.
func wireOpSchemes() map[string]*Scheme {
	mk := func(op OpSpec) *Scheme {
		return MustScheme([]string{"function"}, []OpSpec{op})
	}
	return map[string]*Scheme{
		"count":         mk(OpSpec{Kind: OpCount}),
		"sum":           mk(OpSpec{Kind: OpSum, Target: "time.duration"}),
		"min":           mk(OpSpec{Kind: OpMin, Target: "time.duration"}),
		"max":           mk(OpSpec{Kind: OpMax, Target: "time.duration"}),
		"avg":           mk(OpSpec{Kind: OpAvg, Target: "time.duration"}),
		"stddev":        mk(OpSpec{Kind: OpStddev, Target: "time.duration"}),
		"histogram":     mk(OpSpec{Kind: OpHistogram, Target: "time.duration", HistMin: 0, HistMax: 128, HistBins: 8}),
		"scount":        mk(OpSpec{Kind: OpScount, Target: "time.duration"}),
		"inclusive_sum": mk(OpSpec{Kind: OpInclusiveSum, Target: "time.duration"}),
	}
}

// wireRecords builds a deterministic mixed population: flat and nested
// call paths, positive and negative durations, and one record missing
// the duration entirely (exercises the scount present/absent split and
// the min/max unseen state).
func wireRecords(fx *wireFixture, n int, seed int64) []snapshot.FlatRecord {
	rng := rand.New(rand.NewSource(seed))
	paths := [][]string{
		{"main"}, {"main", "foo"}, {"main", "foo", "bar"}, {"main", "baz"}, {"foo"},
	}
	recs := make([]snapshot.FlatRecord, 0, n)
	for i := 0; i < n; i++ {
		p := paths[rng.Intn(len(paths))]
		if i%13 == 5 { // no duration value at all
			var r snapshot.FlatRecord
			for _, seg := range p {
				r = append(r, attr.Entry{Attr: fx.fn, Value: attr.StringV(seg)})
			}
			recs = append(recs, r)
			continue
		}
		recs = append(recs, fx.rec(p, int64(rng.Intn(200))-40))
	}
	return recs
}

// TestWireRoundTripPerKind: for EVERY operator kind, splitting the
// record stream, encoding each part, and merging the blobs into a fresh
// DB must flush identically to direct aggregation of the whole stream.
// This is the invariant the query cache rests on: cached per-file state
// merged via the wire must be indistinguishable from a full scan.
func TestWireRoundTripPerKind(t *testing.T) {
	for name, scheme := range wireOpSchemes() {
		scheme := scheme
		t.Run(name, func(t *testing.T) {
			fx := newWireFixture(t)
			recs := wireRecords(fx, 400, 11)

			ref, _ := NewDB(scheme, fx.reg)
			parts := make([]*DB, 3)
			for i := range parts {
				parts[i], _ = NewDB(scheme, fx.reg)
			}
			for i, r := range recs {
				ref.Update(r)
				parts[i%len(parts)].Update(r)
			}

			via, _ := NewDB(scheme, fx.reg)
			for _, p := range parts {
				blob := p.EncodeState()
				// decode into an intermediate first, so the path exercised is
				// encode -> decode -> merge, not just a direct state import
				mid, _ := NewDB(scheme, fx.reg)
				if err := mid.MergeEncodedState(blob); err != nil {
					t.Fatalf("decode part: %v", err)
				}
				if err := via.MergeEncodedState(mid.EncodeState()); err != nil {
					t.Fatalf("merge re-encoded part: %v", err)
				}
			}
			assertSameFlush(t, via, ref)
			if via.Processed() != ref.Processed() {
				t.Errorf("Processed = %d, want %d", via.Processed(), ref.Processed())
			}
		})
	}
}

// TestWireRoundTripIdempotentEncode: EncodeState must not mutate the DB —
// encoding twice gives identical bytes, and the DB still flushes the same.
func TestWireRoundTripIdempotentEncode(t *testing.T) {
	fx := newWireFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpHistogram, Target: "time.duration", HistMin: 0, HistMax: 100, HistBins: 4}})
	db, _ := NewDB(scheme, fx.reg)
	for _, r := range wireRecords(fx, 100, 5) {
		db.Update(r)
	}
	b1 := db.EncodeState()
	b2 := db.EncodeState()
	if string(b1) != string(b2) {
		t.Fatal("EncodeState is not deterministic")
	}
	dst, _ := NewDB(scheme, fx.reg)
	if err := dst.MergeEncodedState(b1); err != nil {
		t.Fatal(err)
	}
	assertSameFlush(t, dst, db)
}

// TestQuickWirePartitionEqualsDirect is the property form: any partition
// of any event stream, round-tripped through the wire, equals direct
// aggregation — across a scheme mixing every accumulator field (count,
// isum, fsum/sumsq, min/max, bins).
func TestQuickWirePartitionEqualsDirect(t *testing.T) {
	fx := newWireFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpMin, Target: "time.duration"}, {Kind: OpMax, Target: "time.duration"},
			{Kind: OpStddev, Target: "time.duration"},
			{Kind: OpHistogram, Target: "time.duration", HistMin: 0, HistMax: 64, HistBins: 8}})
	f := func(events []uint16, split uint8) bool {
		nParts := int(split%5) + 1
		parts := make([]*DB, nParts)
		for i := range parts {
			parts[i], _ = NewDB(scheme, fx.reg)
		}
		ref, _ := NewDB(scheme, fx.reg)
		for i, ev := range events {
			rec := fx.rec([]string{fmt.Sprintf("f%d", ev%3)}, int64(ev%113)-7)
			parts[i%nParts].Update(rec)
			ref.Update(rec)
		}
		via, _ := NewDB(scheme, fx.reg)
		for _, p := range parts {
			if via.MergeEncodedState(p.EncodeState()) != nil {
				return false
			}
		}
		ra, err1 := via.FlushRecords()
		rb, err2 := ref.FlushRecords()
		if err1 != nil || err2 != nil || len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i].String() != rb[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// FuzzStateDecode hammers MergeEncodedState with corrupted, truncated,
// and arbitrary byte blobs: it must either return an error or merge
// cleanly — never panic, and never leave the DB unable to flush. Seeds
// include a valid encoding plus systematic truncations and bit flips.
func FuzzStateDecode(f *testing.F) {
	reg := attr.NewRegistry()
	fn := reg.MustCreate("function", attr.String, attr.Nested)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpHistogram, Target: "time.duration", HistMin: 0, HistMax: 50, HistBins: 4}})
	src, _ := NewDB(scheme, reg)
	for i := 0; i < 20; i++ {
		src.Update(snapshot.FlatRecord{
			{Attr: fn, Value: attr.StringV([]string{"a", "b"}[i%2])},
			{Attr: dur, Value: attr.IntV(int64(i * 3))},
		})
	}
	valid := src.EncodeState()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add([]byte{99, 1, 2, 3})            // wrong version
	f.Add(valid[:1])                      // version byte only
	f.Add(valid[:len(valid)/2])           // mid-stream truncation
	f.Add(valid[:len(valid)-1])           // one byte short
	f.Add(append([]byte{}, valid[1:]...)) // missing version byte
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)/3] ^= 0xFF
	f.Add(corrupt)                                                                         // flipped byte mid-stream
	f.Add([]byte{wireVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge uvarint op count

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := NewDB(scheme, reg)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.MergeEncodedState(data); err != nil {
			return // rejected: fine, as long as we did not panic
		}
		// accepted: the DB must still be coherent enough to flush
		if _, err := db.FlushRecords(); err != nil {
			t.Fatalf("accepted blob but flush failed: %v", err)
		}
	})
}

// TestMergePropagatesWireMetadata: a DB whose contents arrived as encoded
// state (a cache hit, or an interior reduction node) carries its resolved
// target types and nested key flags in wire notes, not in the registry.
// Merging it into a sibling DB must propagate those notes — otherwise the
// receiver resolves targets to the Float fallback (large integer sums
// render in scientific notation) and inclusive hierarchies stop expanding.
func TestMergePropagatesWireMetadata(t *testing.T) {
	fx := newWireFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpSum, Target: "time.duration"},
			{Kind: OpInclusiveSum, Target: "time.duration"}})
	src, _ := NewDB(scheme, fx.reg)
	for _, r := range wireRecords(fx, 200, 3) {
		src.Update(r)
	}
	blob := src.EncodeState()

	// the receiving side's registry never sees the data attributes
	fresh := attr.NewRegistry()
	mid, _ := NewDB(scheme, fresh)
	if err := mid.MergeEncodedState(blob); err != nil {
		t.Fatal(err)
	}
	dst, _ := NewDB(scheme, fresh)
	if err := dst.Merge(mid); err != nil {
		t.Fatal(err)
	}

	// reference: decoding the blob directly keeps the wire metadata
	ref, _ := NewDB(scheme, attr.NewRegistry())
	if err := ref.MergeEncodedState(blob); err != nil {
		t.Fatal(err)
	}
	assertSameFlush(t, dst, ref)

	a, ok := fresh.Find("sum#time.duration")
	if !ok {
		t.Fatal("flush did not create the sum result attribute")
	}
	if a.Type() != attr.Int {
		t.Errorf("sum result type = %v, want Int (wire type lost in Merge)", a.Type())
	}
}
