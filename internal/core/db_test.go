package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"caligo/internal/attr"
	"caligo/internal/snapshot"
)

// dbFixture provides a registry with the attributes used by most DB tests.
type dbFixture struct {
	reg  *attr.Registry
	fn   attr.Attribute
	iter attr.Attribute
	dur  attr.Attribute
}

func newDBFixture(t *testing.T) *dbFixture {
	t.Helper()
	reg := attr.NewRegistry()
	return &dbFixture{
		reg:  reg,
		fn:   reg.MustCreate("function", attr.String, attr.Nested),
		iter: reg.MustCreate("loop.iteration", attr.Int, 0),
		dur:  reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable),
	}
}

func (fx *dbFixture) rec(fn string, iter int64, dur int64) snapshot.FlatRecord {
	var r snapshot.FlatRecord
	if fn != "" {
		r = append(r, attr.Entry{Attr: fx.fn, Value: attr.StringV(fn)})
	}
	if iter >= 0 {
		r = append(r, attr.Entry{Attr: fx.iter, Value: attr.IntV(iter)})
	}
	r = append(r, attr.Entry{Attr: fx.dur, Value: attr.IntV(dur)})
	return r
}

// listing1Records reproduces the event stream of the paper's Listing 1
// example: a 4-iteration loop calling foo(1), foo(2), bar(1) per iteration,
// with durations chosen to match the paper's result table (each foo event
// 10, each iteration also has one record without function, duration 10;
// foo appears 2x per iteration with total 40 in the paper — we use the
// table's numbers: per iteration, foo count=2 sum=20; bar count=1 sum=10;
// no-function count=1 sum=10... the paper's first row, count=3 sum=40,
// is the loop-iteration-only row).
func listing1Records(fx *dbFixture) []snapshot.FlatRecord {
	var recs []snapshot.FlatRecord
	for it := int64(0); it < 4; it++ {
		recs = append(recs,
			fx.rec("foo", it, 10),
			fx.rec("foo", it, 10),
			fx.rec("bar", it, 10),
			fx.rec("", it, 10), // end-of-iteration event, no function active
		)
	}
	return recs
}

func TestListing1Example(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme(
		[]string{"function", "loop.iteration"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"}},
	)
	db, err := NewDB(scheme, fx.reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range listing1Records(fx) {
		db.Update(r)
	}
	// 2 functions x 4 iterations + 4 no-function rows = 12 groups
	if db.Len() != 12 {
		t.Errorf("Len = %d, want 12", db.Len())
	}
	recs, err := db.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	type row struct{ count, sum int64 }
	got := map[string]row{}
	for _, r := range recs {
		fn, _ := r.GetByName("function")
		it, _ := r.GetByName("loop.iteration")
		cnt, _ := r.GetByName("aggregate.count")
		sum, _ := r.GetByName("sum#time.duration")
		got[fn.String()+"/"+it.String()] = row{cnt.AsInt(), sum.AsInt()}
	}
	wants := map[string]row{
		"foo/0": {2, 20}, "bar/0": {1, 10}, "/0": {1, 10},
		"foo/3": {2, 20}, "bar/3": {1, 10}, "/3": {1, 10},
	}
	for k, w := range wants {
		if got[k] != w {
			t.Errorf("row %q = %+v, want %+v", k, got[k], w)
		}
	}
}

func TestCompactSchemeDropsIteration(t *testing.T) {
	// Removing loop.iteration from the key (the paper's "more compact
	// result") folds iterations together.
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"}})
	db, _ := NewDB(scheme, fx.reg)
	for _, r := range listing1Records(fx) {
		db.Update(r)
	}
	if db.Len() != 3 { // foo, bar, (none)
		t.Errorf("Len = %d, want 3", db.Len())
	}
	recs, _ := db.FlushRecords()
	for _, r := range recs {
		fn, _ := r.GetByName("function")
		cnt, _ := r.GetByName("aggregate.count")
		sum, _ := r.GetByName("sum#time.duration")
		switch fn.String() {
		case "foo":
			if cnt.AsInt() != 8 || sum.AsInt() != 80 {
				t.Errorf("foo: count=%v sum=%v, want 8/80", cnt, sum)
			}
		case "bar":
			if cnt.AsInt() != 4 || sum.AsInt() != 40 {
				t.Errorf("bar: count=%v sum=%v, want 4/40", cnt, sum)
			}
		}
	}
}

func TestNestedPathFormsKey(t *testing.T) {
	// Records with nested function stacks group by the full path.
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function"}, []OpSpec{{Kind: OpCount}})
	db, _ := NewDB(scheme, fx.reg)
	mk := func(path ...string) snapshot.FlatRecord {
		var r snapshot.FlatRecord
		for _, p := range path {
			r = append(r, attr.Entry{Attr: fx.fn, Value: attr.StringV(p)})
		}
		return r
	}
	db.Update(mk("main"))
	db.Update(mk("main", "foo"))
	db.Update(mk("main", "foo"))
	db.Update(mk("foo")) // different from main/foo!
	if db.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (main, main/foo, foo)", db.Len())
	}
	recs, _ := db.FlushRecords()
	counts := map[string]int64{}
	for _, r := range recs {
		c, _ := r.GetByName("aggregate.count")
		counts[r.PathOf(fx.fn.ID(), "/")] = c.AsInt()
	}
	if counts["main"] != 1 || counts["main/foo"] != 2 || counts["foo"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestReaggregationComposes(t *testing.T) {
	// Aggregating the flushed output of a first aggregation must give the
	// same totals (Section VI-B workflow: sum(aggregate.count)).
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function", "loop.iteration"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpMin, Target: "time.duration"}, {Kind: OpMax, Target: "time.duration"}})
	db1, _ := NewDB(scheme, fx.reg)
	rng := rand.New(rand.NewSource(7))
	type agg struct{ cnt, sum, min, max int64 }
	ref := map[string]*agg{}
	fns := []string{"foo", "bar", "baz", ""}
	for i := 0; i < 1000; i++ {
		fn := fns[rng.Intn(len(fns))]
		d := int64(rng.Intn(100))
		db1.Update(fx.rec(fn, -1, d))
		a := ref[fn]
		if a == nil {
			a = &agg{min: 1 << 62, max: -1}
			ref[fn] = a
		}
		a.cnt++
		a.sum += d
		if d < a.min {
			a.min = d
		}
		if d > a.max {
			a.max = d
		}
	}
	interm, err := db1.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	// second stage: drop iteration, re-aggregate
	scheme2 := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpMin, Target: "time.duration"}, {Kind: OpMax, Target: "time.duration"}})
	db2, _ := NewDB(scheme2, fx.reg)
	for _, r := range interm {
		db2.Update(r)
	}
	final, err := db2.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(ref) {
		t.Fatalf("final rows = %d, want %d", len(final), len(ref))
	}
	for _, r := range final {
		fn, _ := r.GetByName("function")
		a := ref[fn.String()]
		if a == nil {
			t.Fatalf("unexpected group %q", fn)
		}
		cnt, _ := r.GetByName("aggregate.count")
		sum, _ := r.GetByName("sum#time.duration")
		lo, _ := r.GetByName("min#time.duration")
		hi, _ := r.GetByName("max#time.duration")
		if cnt.AsInt() != a.cnt || sum.AsInt() != a.sum || lo.AsInt() != a.min || hi.AsInt() != a.max {
			t.Errorf("group %q: got c=%v s=%v min=%v max=%v, want %+v", fn, cnt, sum, lo, hi, *a)
		}
	}
}

func TestMergeEqualsSequential(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpAvg, Target: "time.duration"}, {Kind: OpStddev, Target: "time.duration"}})
	mk := func() *DB { db, _ := NewDB(scheme, fx.reg); return db }
	dbA, dbB, dbRef := mk(), mk(), mk()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		r := fx.rec([]string{"a", "b", "c"}[rng.Intn(3)], -1, int64(rng.Intn(50)))
		if i%2 == 0 {
			dbA.Update(r)
		} else {
			dbB.Update(r)
		}
		dbRef.Update(r)
	}
	if err := dbA.Merge(dbB); err != nil {
		t.Fatal(err)
	}
	assertSameFlush(t, dbA, dbRef)
	if dbA.Processed() != 500 {
		t.Errorf("Processed = %d, want 500", dbA.Processed())
	}
}

// assertSameFlush flushes both DBs and compares output records textually.
func assertSameFlush(t *testing.T, a, b *DB) {
	t.Helper()
	ra, err := a.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].String() != rb[i].String() {
			t.Errorf("row %d: %s vs %s", i, ra[i], rb[i])
		}
	}
}

func TestMergeSchemeMismatch(t *testing.T) {
	fx := newDBFixture(t)
	db1, _ := NewDB(MustScheme([]string{"function"}, []OpSpec{{Kind: OpCount}}), fx.reg)
	db2, _ := NewDB(MustScheme([]string{"loop.iteration"}, []OpSpec{{Kind: OpCount}}), fx.reg)
	if err := db1.Merge(db2); err == nil {
		t.Error("merging different schemes should error")
	}
}

func TestWireRoundTrip(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function", "loop.iteration"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpMin, Target: "time.duration"}, {Kind: OpMax, Target: "time.duration"},
			{Kind: OpHistogram, Target: "time.duration", HistMin: 0, HistMax: 100, HistBins: 8}})
	src, _ := NewDB(scheme, fx.reg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		src.Update(fx.rec([]string{"x", "y", ""}[rng.Intn(3)], int64(rng.Intn(4)), int64(rng.Intn(100))))
	}
	blob := src.EncodeState()

	// decode into a DB backed by a DIFFERENT registry (attribute ids will
	// differ) — the wire format must be registry-independent.
	reg2 := attr.NewRegistry()
	reg2.MustCreate("unrelated", attr.Int, 0) // shift ids
	reg2.MustCreate("function", attr.String, attr.Nested)
	reg2.MustCreate("loop.iteration", attr.Int, 0)
	reg2.MustCreate("time.duration", attr.Int, attr.AsValue)
	dst, _ := NewDB(scheme, reg2)
	if err := dst.MergeEncodedState(blob); err != nil {
		t.Fatal(err)
	}
	ra, _ := src.FlushRecords()
	rb, _ := dst.FlushRecords()
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].String() != rb[i].String() {
			t.Errorf("row %d differs:\n  src %s\n  dst %s", i, ra[i], rb[i])
		}
	}
	if dst.Processed() != src.Processed() {
		t.Errorf("Processed: %d vs %d", dst.Processed(), src.Processed())
	}
}

func TestWireMergeAccumulates(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function"}, []OpSpec{{Kind: OpCount}})
	a, _ := NewDB(scheme, fx.reg)
	a.Update(fx.rec("f", -1, 1))
	blob := a.EncodeState()
	b, _ := NewDB(scheme, fx.reg)
	b.Update(fx.rec("f", -1, 1))
	if err := b.MergeEncodedState(blob); err != nil {
		t.Fatal(err)
	}
	recs, _ := b.FlushRecords()
	if len(recs) != 1 {
		t.Fatalf("rows = %d", len(recs))
	}
	c, _ := recs[0].GetByName("aggregate.count")
	if c.AsInt() != 2 {
		t.Errorf("count = %v, want 2", c)
	}
}

func TestWireDecodeErrors(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function"}, []OpSpec{{Kind: OpCount}})
	db, _ := NewDB(scheme, fx.reg)
	db.Update(fx.rec("f", -1, 1))
	blob := db.EncodeState()

	cases := map[string][]byte{
		"empty":       {},
		"bad version": append([]byte{99}, blob[1:]...),
		"truncated":   blob[:len(blob)/2],
		"op mismatch": {wireVersion, 7, 0, 0},
	}
	for name, data := range cases {
		dst, _ := NewDB(scheme, fx.reg)
		if err := dst.MergeEncodedState(data); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

func TestFlushDeterministicOrder(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function"}, []OpSpec{{Kind: OpCount}})
	db, _ := NewDB(scheme, fx.reg)
	for _, fn := range []string{"c", "a", "b", "a", "c"} {
		db.Update(fx.rec(fn, -1, 1))
	}
	r1, _ := db.FlushRecords()
	r2, _ := db.FlushRecords()
	for i := range r1 {
		if r1[i].String() != r2[i].String() {
			t.Fatalf("flush not deterministic: %s vs %s", r1[i], r2[i])
		}
	}
}

func TestClearResets(t *testing.T) {
	fx := newDBFixture(t)
	db, _ := NewDB(MustScheme([]string{"function"}, []OpSpec{{Kind: OpCount}}), fx.reg)
	db.Update(fx.rec("f", -1, 1))
	db.Clear()
	if db.Len() != 0 || db.Processed() != 0 {
		t.Error("Clear did not reset")
	}
	recs, _ := db.FlushRecords()
	if len(recs) != 0 {
		t.Error("flush after Clear should be empty")
	}
}

func TestScountAndScountReagg(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpScount, Target: "loop.iteration"}})
	db, _ := NewDB(scheme, fx.reg)
	db.Update(fx.rec("f", 1, 10))  // iteration present
	db.Update(fx.rec("f", -1, 10)) // absent
	db.Update(fx.rec("f", 3, 10))  // present
	recs, _ := db.FlushRecords()
	sc, ok := recs[0].GetByName("scount#loop.iteration")
	if !ok || sc.AsInt() != 2 {
		t.Errorf("scount = %v,%v; want 2", sc, ok)
	}
	// re-aggregate
	db2, _ := NewDB(scheme, fx.reg)
	for _, r := range recs {
		db2.Update(r)
	}
	recs2, _ := db2.FlushRecords()
	sc2, _ := recs2[0].GetByName("scount#loop.iteration")
	if sc2.AsInt() != 2 {
		t.Errorf("re-aggregated scount = %v, want 2", sc2)
	}
}

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme([]string{"a"}, nil); err == nil {
		t.Error("no ops should error")
	}
	if _, err := NewScheme([]string{"a", "a"}, []OpSpec{{Kind: OpCount}}); err == nil {
		t.Error("duplicate key should error")
	}
	if _, err := NewScheme([]string{""}, []OpSpec{{Kind: OpCount}}); err == nil {
		t.Error("empty key label should error")
	}
	if _, err := NewScheme(nil, []OpSpec{{Kind: OpCount}, {Kind: OpCount}}); err == nil {
		t.Error("duplicate result name should error")
	}
	if _, err := NewScheme([]string{"x"}, []OpSpec{{Kind: OpSum, Target: "x"}}); err == nil {
		t.Error("attribute in both key and aggregation should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustScheme should panic on invalid scheme")
		}
	}()
	MustScheme(nil, nil)
}

func TestSchemeStringAndEqual(t *testing.T) {
	s := MustScheme([]string{"function", "loop.iteration"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time"}})
	want := "AGGREGATE count, sum(time) GROUP BY function, loop.iteration"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
	s2 := MustScheme([]string{"function", "loop.iteration"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time"}})
	if !s.Equal(s2) {
		t.Error("equal schemes reported unequal")
	}
	s3 := MustScheme([]string{"function"}, []OpSpec{{Kind: OpCount}})
	if s.Equal(s3) {
		t.Error("different schemes reported equal")
	}
	if got := s.ResultNames(); len(got) != 2 || got[0] != "aggregate.count" || got[1] != "sum#time" {
		t.Errorf("ResultNames = %v", got)
	}
}

// TestQuickMergeEqualsConcat is the central correctness property of
// cross-process aggregation: merging partial DBs must equal aggregating
// the concatenated record stream, for arbitrary splits.
func TestQuickMergeEqualsConcat(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function", "loop.iteration"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpMin, Target: "time.duration"}, {Kind: OpMax, Target: "time.duration"},
			{Kind: OpAvg, Target: "time.duration"}})
	f := func(events []uint32, split uint8) bool {
		nParts := int(split%7) + 1
		parts := make([]*DB, nParts)
		for i := range parts {
			parts[i], _ = NewDB(scheme, fx.reg)
		}
		ref, _ := NewDB(scheme, fx.reg)
		for i, ev := range events {
			fn := fmt.Sprintf("f%d", ev%5)
			rec := fx.rec(fn, int64(ev/5%3), int64(ev%97))
			parts[i%nParts].Update(rec)
			ref.Update(rec)
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			if err := merged.Merge(p); err != nil {
				return false
			}
		}
		ra, err1 := merged.FlushRecords()
		rb, err2 := ref.FlushRecords()
		if err1 != nil || err2 != nil || len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i].String() != rb[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickWireEqualsMerge: wire round-trip must be equivalent to Merge.
func TestQuickWireEqualsMerge(t *testing.T) {
	fx := newDBFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"},
			{Kind: OpStddev, Target: "time.duration"}})
	f := func(events []uint16) bool {
		a, _ := NewDB(scheme, fx.reg)
		b, _ := NewDB(scheme, fx.reg)
		viaMerge, _ := NewDB(scheme, fx.reg)
		viaWire, _ := NewDB(scheme, fx.reg)
		for i, ev := range events {
			rec := fx.rec(fmt.Sprintf("f%d", ev%4), -1, int64(ev%31))
			if i%2 == 0 {
				a.Update(rec)
			} else {
				b.Update(rec)
			}
		}
		if viaMerge.Merge(a) != nil || viaMerge.Merge(b) != nil {
			return false
		}
		if viaWire.MergeEncodedState(a.EncodeState()) != nil ||
			viaWire.MergeEncodedState(b.EncodeState()) != nil {
			return false
		}
		ra, _ := viaMerge.FlushRecords()
		rb, _ := viaWire.FlushRecords()
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i].String() != rb[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
