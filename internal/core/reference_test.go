package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"caligo/internal/attr"
	"caligo/internal/snapshot"
)

// TestQuickAgainstReferenceModel drives the aggregation database with
// random schemes over random record streams and compares every output
// against an independent, naive reference implementation (maps and
// slices, no streaming, no hashing). This is the central end-to-end
// correctness property of the paper's aggregation model.
func TestQuickAgainstReferenceModel(t *testing.T) {
	f := func(seed int64, nRecords uint8, keySel, opSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))

		reg := attr.NewRegistry()
		fn := reg.MustCreate("function", attr.String, attr.Nested)
		iter := reg.MustCreate("iteration", attr.Int, 0)
		rank := reg.MustCreate("rank", attr.Int, 0)
		dur := reg.MustCreate("dur", attr.Int, attr.AsValue|attr.Aggregatable)
		bytesA := reg.MustCreate("bytes", attr.Float, attr.AsValue|attr.Aggregatable)

		// random key subset (never empty-op, always at least count)
		allKeys := []string{"function", "iteration", "rank"}
		var key []string
		for i, k := range allKeys {
			if keySel&(1<<uint(i)) != 0 {
				key = append(key, k)
			}
		}
		ops := []OpSpec{{Kind: OpCount}}
		if opSel&1 != 0 {
			ops = append(ops, OpSpec{Kind: OpSum, Target: "dur"})
		}
		if opSel&2 != 0 {
			ops = append(ops, OpSpec{Kind: OpMin, Target: "dur"})
		}
		if opSel&4 != 0 {
			ops = append(ops, OpSpec{Kind: OpMax, Target: "bytes"})
		}
		if opSel&8 != 0 {
			ops = append(ops, OpSpec{Kind: OpAvg, Target: "bytes"})
		}
		scheme, err := NewScheme(key, ops)
		if err != nil {
			return false
		}
		db, err := NewDB(scheme, reg)
		if err != nil {
			return false
		}

		// reference state per group
		type refGroup struct {
			count    int64
			durVals  []int64
			byteVals []float64
		}
		ref := map[string]*refGroup{}

		names := []string{"main", "foo", "bar"}
		n := int(nRecords%100) + 1
		for i := 0; i < n; i++ {
			var rec snapshot.FlatRecord
			depth := rng.Intn(3)
			var fnPath []string
			for d := 0; d < depth; d++ {
				v := names[rng.Intn(len(names))]
				fnPath = append(fnPath, v)
				rec = append(rec, attr.Entry{Attr: fn, Value: attr.StringV(v)})
			}
			itVal, hasIt := int64(rng.Intn(3)), rng.Intn(2) == 0
			if hasIt {
				rec = append(rec, attr.Entry{Attr: iter, Value: attr.IntV(itVal)})
			}
			rkVal, hasRk := int64(rng.Intn(2)), rng.Intn(3) > 0
			if hasRk {
				rec = append(rec, attr.Entry{Attr: rank, Value: attr.IntV(rkVal)})
			}
			durVal, hasDur := int64(rng.Intn(100)), rng.Intn(4) > 0
			if hasDur {
				rec = append(rec, attr.Entry{Attr: dur, Value: attr.IntV(durVal)})
			}
			byteVal, hasBytes := float64(rng.Intn(64))/4, rng.Intn(3) > 0
			if hasBytes {
				rec = append(rec, attr.Entry{Attr: bytesA, Value: attr.FloatV(byteVal)})
			}

			db.Update(rec)

			// reference: group key = explicit tuple over the scheme key
			var kparts []string
			for _, k := range key {
				switch k {
				case "function":
					kparts = append(kparts, "fn="+strings.Join(fnPath, "/"))
				case "iteration":
					if hasIt {
						kparts = append(kparts, fmt.Sprintf("it=%d", itVal))
					} else {
						kparts = append(kparts, "it=•")
					}
				case "rank":
					if hasRk {
						kparts = append(kparts, fmt.Sprintf("rk=%d", rkVal))
					} else {
						kparts = append(kparts, "rk=•")
					}
				}
			}
			gk := strings.Join(kparts, "|")
			g := ref[gk]
			if g == nil {
				g = &refGroup{}
				ref[gk] = g
			}
			g.count++
			if hasDur {
				g.durVals = append(g.durVals, durVal)
			}
			if hasBytes {
				g.byteVals = append(g.byteVals, byteVal)
			}
		}

		rows, err := db.FlushRecords()
		if err != nil {
			return false
		}
		if len(rows) != len(ref) {
			t.Logf("group count: db %d vs ref %d", len(rows), len(ref))
			return false
		}
		for _, row := range rows {
			// rebuild the reference key from the row
			var kparts []string
			for _, k := range key {
				switch k {
				case "function":
					kparts = append(kparts, "fn="+row.PathOf(fn.ID(), "/"))
				case "iteration":
					if v, ok := row.GetByName("iteration"); ok {
						kparts = append(kparts, "it="+v.String())
					} else {
						kparts = append(kparts, "it=•")
					}
				case "rank":
					if v, ok := row.GetByName("rank"); ok {
						kparts = append(kparts, "rk="+v.String())
					} else {
						kparts = append(kparts, "rk=•")
					}
				}
			}
			g := ref[strings.Join(kparts, "|")]
			if g == nil {
				t.Logf("unexpected group %v in output", kparts)
				return false
			}
			if v, _ := row.GetByName("aggregate.count"); v.AsInt() != g.count {
				t.Logf("count mismatch: %d vs %d", v.AsInt(), g.count)
				return false
			}
			for _, op := range ops {
				switch op.Kind {
				case OpSum:
					want := int64(0)
					for _, v := range g.durVals {
						want += v
					}
					got, ok := row.GetByName("sum#dur")
					if len(g.durVals) == 0 {
						if ok {
							return false
						}
						continue
					}
					if !ok || got.AsInt() != want {
						t.Logf("sum mismatch: %v vs %d", got, want)
						return false
					}
				case OpMin:
					if len(g.durVals) == 0 {
						continue
					}
					want := g.durVals[0]
					for _, v := range g.durVals {
						if v < want {
							want = v
						}
					}
					if got, ok := row.GetByName("min#dur"); !ok || got.AsInt() != want {
						return false
					}
				case OpMax:
					if len(g.byteVals) == 0 {
						continue
					}
					want := g.byteVals[0]
					for _, v := range g.byteVals {
						if v > want {
							want = v
						}
					}
					if got, ok := row.GetByName("max#bytes"); !ok || got.AsFloat() != want {
						return false
					}
				case OpAvg:
					if len(g.byteVals) == 0 {
						continue
					}
					sum := 0.0
					for _, v := range g.byteVals {
						sum += v
					}
					want := sum / float64(len(g.byteVals))
					if got, ok := row.GetByName("avg#bytes"); !ok ||
						math.Abs(got.AsFloat()-want) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickFlushDeterminism: any DB flushes identically twice, and a
// merged clone flushes identically to the original.
func TestQuickFlushDeterminism(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := attr.NewRegistry()
		k := reg.MustCreate("k", attr.String, 0)
		v := reg.MustCreate("v", attr.Int, attr.AsValue)
		scheme := MustScheme([]string{"k"},
			[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "v"}})
		db, _ := NewDB(scheme, reg)
		for i := 0; i < int(n); i++ {
			db.Update(snapshot.FlatRecord{
				{Attr: k, Value: attr.StringV(fmt.Sprintf("g%d", rng.Intn(5)))},
				{Attr: v, Value: attr.IntV(int64(rng.Intn(100)))},
			})
		}
		r1, err1 := db.FlushRecords()
		r2, err2 := db.FlushRecords()
		if err1 != nil || err2 != nil || len(r1) != len(r2) {
			return false
		}
		var s1, s2 []string
		for i := range r1 {
			s1 = append(s1, r1[i].String())
			s2 = append(s2, r2[i].String())
		}
		sort.Strings(s1)
		sort.Strings(s2)
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		// clone through the wire and compare
		clone, _ := NewDB(scheme, attr.NewRegistry())
		if clone.MergeEncodedState(db.EncodeState()) != nil {
			return false
		}
		r3, err := clone.FlushRecords()
		if err != nil || len(r3) != len(r1) {
			return false
		}
		for i := range r1 {
			if r1[i].String() != r3[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
