// Package core implements the paper's primary contribution: the general
// aggregation model of Section III — customizable aggregation schemes over
// the flexible key:value data model, executed by a streaming reduction
// kernel with an in-memory aggregation database (Section IV-B).
//
// A Scheme selects an aggregation key (the GROUP BY attributes), the
// aggregation attributes, and reduction operators. A DB applies a scheme
// to a stream of records, maintaining one aggregation record per unique
// key. DBs can be merged (for cross-thread and cross-process aggregation)
// and serialized (for the tree-based reduction network).
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"caligo/internal/attr"
)

// OpKind enumerates the reduction operators. The paper's implementation
// provides sum, min, max, and count (Section IV-B); avg, stddev, histogram,
// and scount are natural extensions that the model supports unchanged.
type OpKind uint8

const (
	// OpCount counts input records. When an input record already carries an
	// aggregate.count result (i.e. it is itself an aggregation result),
	// the counts are summed instead, so re-aggregation composes.
	OpCount OpKind = iota
	// OpSum adds the target attribute's values. Accepts pre-aggregated
	// sum#<target> entries, so re-aggregation composes.
	OpSum
	// OpMin keeps the minimum target value (composes with min#<target>).
	OpMin
	// OpMax keeps the maximum target value (composes with max#<target>).
	OpMax
	// OpAvg reports the arithmetic mean of target values.
	OpAvg
	// OpStddev reports the population standard deviation of target values.
	OpStddev
	// OpHistogram bins target values into a fixed-range histogram,
	// rendered as a compact string.
	OpHistogram
	// OpScount counts records in which the target attribute is present.
	OpScount
	// OpInclusiveSum sums the target like OpSum, and at flush time adds
	// each group's total into all of its ancestor groups along nested
	// (hierarchical) key attributes — yielding inclusive region times
	// from exclusive measurements.
	OpInclusiveSum
	numOpKinds
)

var opNames = [...]string{"count", "sum", "min", "max", "avg", "stddev", "histogram", "scount", "inclusive_sum"}

// String returns the operator's name as used in the description language.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// ParseOpKind resolves an operator name from the description language.
func ParseOpKind(s string) (OpKind, bool) {
	for i, n := range opNames {
		if n == s {
			return OpKind(i), true
		}
	}
	return 0, false
}

// NeedsTarget reports whether the operator requires a target attribute.
func (k OpKind) NeedsTarget() bool { return k != OpCount }

// CountResultName is the label of the count operator's result attribute.
// The paper's workflow re-aggregates it explicitly
// ("AGGREGATE sum(aggregate.count)", Section VI-B).
const CountResultName = "aggregate.count"

// OpSpec configures one reduction operator instance within a scheme.
type OpSpec struct {
	Kind   OpKind
	Target string // aggregation attribute label; empty for count
	Alias  string // optional output label override

	// Histogram parameters (used when Kind == OpHistogram).
	HistMin  float64
	HistMax  float64
	HistBins int
}

// ResultName returns the label of the operator's result attribute.
func (o OpSpec) ResultName() string {
	if o.Alias != "" {
		return o.Alias
	}
	if o.Kind == OpCount {
		return CountResultName
	}
	return o.Kind.String() + "#" + o.Target
}

// quoteLabel quotes a label that contains characters outside the
// description language's identifier set, so rendered schemes re-parse.
func quoteLabel(s string) string {
	if s == "" {
		return `""`
	}
	// digit- or minus-led labels could lex as numbers; quote them
	// conservatively
	quote := s[0] >= '0' && s[0] <= '9' || s[0] == '-'
	if !quote {
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			case r == '.', r == '_', r == '#', r == ':', r == '-', r == '/', r == '@':
			default:
				quote = true
			}
		}
	}
	if !quote {
		return s
	}
	// escape exactly what the description-language lexer unescapes
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
	return sb.String()
}

// String renders the spec in description-language syntax.
func (o OpSpec) String() string {
	s := o.Kind.String()
	if o.Kind == OpHistogram {
		s += fmt.Sprintf("(%s,%g,%g,%d)", quoteLabel(o.Target), o.HistMin, o.HistMax, o.HistBins)
	} else if o.Kind.NeedsTarget() {
		s += "(" + quoteLabel(o.Target) + ")"
	}
	if o.Alias != "" {
		s += " AS " + quoteLabel(o.Alias)
	}
	return s
}

// Validate checks the spec for consistency.
func (o OpSpec) Validate() error {
	if o.Kind >= numOpKinds {
		return fmt.Errorf("core: unknown operator kind %d", o.Kind)
	}
	if o.Kind.NeedsTarget() && o.Target == "" {
		return fmt.Errorf("core: operator %s requires a target attribute", o.Kind)
	}
	if !o.Kind.NeedsTarget() && o.Target != "" {
		return fmt.Errorf("core: operator %s takes no target (got %q)", o.Kind, o.Target)
	}
	if o.Kind == OpHistogram {
		if o.HistBins <= 0 {
			return fmt.Errorf("core: histogram(%s): bin count must be positive", o.Target)
		}
		if !(o.HistMin < o.HistMax) {
			return fmt.Errorf("core: histogram(%s): need min < max, got [%g,%g)",
				o.Target, o.HistMin, o.HistMax)
		}
	}
	return nil
}

// accum is the streaming accumulator for one operator instance within one
// aggregation record. A single flat struct (rather than an interface per
// op) keeps the hot update path free of dynamic dispatch and allocation;
// see BenchmarkAblationOpDispatch for the comparison.
type accum struct {
	count    uint64 // records seen (count/scount/avg/stddev)
	isum     int64  // integer sum
	fsum     float64
	sumsq    float64
	min, max attr.Variant
	bins     []uint64 // histogram bins + underflow/overflow at [n], [n+1]
	seen     bool
}

// update folds one observed value into the accumulator.
func (a *accum) update(spec *OpSpec, v attr.Variant) {
	switch spec.Kind {
	case OpCount, OpScount:
		a.count += v.AsUint() // callers pass the increment as a value
	case OpSum, OpAvg, OpStddev, OpInclusiveSum:
		f := v.AsFloat()
		a.fsum += f
		a.isum += v.AsInt()
		a.sumsq += f * f
		a.count++
		a.seen = true
	case OpMin:
		if !a.seen || attr.Compare(v, a.min) < 0 {
			a.min = v
			a.seen = true
		}
	case OpMax:
		if !a.seen || attr.Compare(v, a.max) > 0 {
			a.max = v
			a.seen = true
		}
	case OpHistogram:
		if a.bins == nil {
			a.bins = make([]uint64, spec.HistBins+2)
		}
		f := v.AsFloat()
		n := spec.HistBins
		switch {
		case f < spec.HistMin:
			a.bins[n]++ // underflow
		case f >= spec.HistMax:
			a.bins[n+1]++ // overflow
		default:
			i := int((f - spec.HistMin) / (spec.HistMax - spec.HistMin) * float64(n))
			if i >= n { // guard fp rounding at the upper edge
				i = n - 1
			}
			a.bins[i]++
		}
		a.count++
		a.seen = true
	}
}

// merge folds another accumulator of the same spec into a.
func (a *accum) merge(spec *OpSpec, b *accum) {
	switch spec.Kind {
	case OpCount, OpScount:
		a.count += b.count
	case OpSum, OpAvg, OpStddev, OpInclusiveSum:
		a.fsum += b.fsum
		a.isum += b.isum
		a.sumsq += b.sumsq
		a.count += b.count
		a.seen = a.seen || b.seen
	case OpMin:
		if b.seen && (!a.seen || attr.Compare(b.min, a.min) < 0) {
			a.min = b.min
			a.seen = true
		}
	case OpMax:
		if b.seen && (!a.seen || attr.Compare(b.max, a.max) > 0) {
			a.max = b.max
			a.seen = true
		}
	case OpHistogram:
		if b.bins != nil {
			if a.bins == nil {
				a.bins = make([]uint64, len(b.bins))
			}
			for i := range b.bins {
				a.bins[i] += b.bins[i]
			}
		}
		a.count += b.count
		a.seen = a.seen || b.seen
	}
}

// result produces the accumulator's output value. The second return is
// false when the accumulator observed no input (the result entry is then
// omitted from the output record).
func (a *accum) result(spec *OpSpec, targetType attr.Type) (attr.Variant, bool) {
	switch spec.Kind {
	case OpCount, OpScount:
		if a.count == 0 && spec.Kind == OpScount {
			return attr.Variant{}, false
		}
		return attr.UintV(a.count), true
	case OpSum, OpInclusiveSum:
		if !a.seen {
			return attr.Variant{}, false
		}
		if targetType == attr.Float {
			return attr.FloatV(a.fsum), true
		}
		return attr.IntV(a.isum), true
	case OpMin:
		return a.min, a.seen
	case OpMax:
		return a.max, a.seen
	case OpAvg:
		if a.count == 0 {
			return attr.Variant{}, false
		}
		return attr.FloatV(a.fsum / float64(a.count)), true
	case OpStddev:
		if a.count == 0 {
			return attr.Variant{}, false
		}
		n := float64(a.count)
		mean := a.fsum / n
		varc := a.sumsq/n - mean*mean
		if varc < 0 { // fp noise
			varc = 0
		}
		return attr.FloatV(math.Sqrt(varc)), true
	case OpHistogram:
		if !a.seen {
			return attr.Variant{}, false
		}
		return attr.StringV(renderHistogram(spec, a.bins)), true
	}
	return attr.Variant{}, false
}

// renderHistogram renders bins as "min:max:c0,c1,...|under|over".
func renderHistogram(spec *OpSpec, bins []uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%g:%g:", spec.HistMin, spec.HistMax)
	n := spec.HistBins
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", bins[i])
	}
	fmt.Fprintf(&sb, "|%d|%d", bins[n], bins[n+1])
	return sb.String()
}

// ResultType returns the variant type of the operator's output, given the
// target attribute's type.
func (o OpSpec) ResultType(targetType attr.Type) attr.Type {
	switch o.Kind {
	case OpCount, OpScount:
		return attr.Uint
	case OpSum, OpInclusiveSum:
		if targetType == attr.Float {
			return attr.Float
		}
		return attr.Int
	case OpMin, OpMax:
		if targetType == attr.Inv {
			return attr.Float
		}
		return targetType
	case OpAvg, OpStddev:
		return attr.Float
	case OpHistogram:
		return attr.String
	}
	return attr.Inv
}

// sortOpSpecs orders specs deterministically (for canonical scheme text).
func sortOpSpecs(specs []OpSpec) {
	sort.SliceStable(specs, func(i, j int) bool {
		if specs[i].Kind != specs[j].Kind {
			return specs[i].Kind < specs[j].Kind
		}
		return specs[i].Target < specs[j].Target
	})
}
