package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"caligo/internal/attr"
	"caligo/internal/trace"
)

// Wire format for aggregation database state, used by the tree-based
// cross-process reduction (Section IV-C): leaf processes send their local
// aggregation results to their parent, where the partial results are
// merged. The encoding is registry-independent — keys are expressed as
// (scheme key position, value path) pairs, so sender and receiver only
// need to share the scheme.

// wireVersion guards against format drift between peers.
const wireVersion = 2

// EncodeState serializes the database's aggregation records. The output
// can be merged into any DB with an equal scheme via MergeEncodedState.
func (db *DB) EncodeState() []byte {
	buf := []byte{wireVersion}
	buf = binary.AppendUvarint(buf, uint64(len(db.scheme.Ops)))
	// per-op resolved target types, so a receiver whose registry has not
	// seen the target attributes still emits correctly typed results
	for i := range db.scheme.Ops {
		buf = append(buf, byte(db.resolveTargetType(&db.scheme.Ops[i])))
	}
	// per-key-attribute nested flags: the receiver needs them to expand
	// inclusive_sum hierarchies (flag 2 = metadata known). Flags learned
	// from received state propagate, so intermediate reduction nodes with
	// fresh registries do not lose them.
	buf = binary.AppendUvarint(buf, uint64(len(db.scheme.Key)))
	for pos, name := range db.scheme.Key {
		var flag byte
		if a, ok := db.reg.Find(name); ok {
			flag = 2
			if a.IsNested() {
				flag |= 1
			}
		} else if db.wireNested != nil && db.wireNested[pos]&2 != 0 {
			flag = db.wireNested[pos]
		}
		buf = append(buf, flag)
	}
	buf = binary.AppendUvarint(buf, uint64(len(db.buckets)))
	buf = binary.AppendUvarint(buf, db.processed)

	for _, b := range db.sortedBuckets() {
		groups, err := db.decodeKeyGroups(b.key)
		if err != nil {
			// keys are produced by our own encoder; a decode failure means
			// memory corruption, not a recoverable condition
			panic(err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(groups)))
		for _, g := range groups {
			buf = binary.AppendUvarint(buf, uint64(g.pos))
			buf = binary.AppendUvarint(buf, uint64(len(g.values)))
			for _, v := range g.values {
				buf = v.AppendEncoded(buf)
			}
		}
		for i := range b.accs {
			buf = appendAccum(buf, &b.accs[i])
		}
	}
	return buf
}

// appendAccum serializes one accumulator.
func appendAccum(buf []byte, a *accum) []byte {
	flags := byte(0)
	if a.seen {
		flags |= 1
	}
	if a.bins != nil {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, a.count)
	buf = binary.AppendVarint(buf, a.isum)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.fsum))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.sumsq))
	buf = a.min.AppendEncoded(buf)
	buf = a.max.AppendEncoded(buf)
	if a.bins != nil {
		buf = binary.AppendUvarint(buf, uint64(len(a.bins)))
		for _, c := range a.bins {
			buf = binary.AppendUvarint(buf, c)
		}
	}
	return buf
}

// wireReader tracks a decode position with error sticky-ness.
type wireReader struct {
	buf []byte
	pos int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("core: decode state: "+format, args...)
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("truncated byte at offset %d", r.pos)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *wireReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.fail("truncated float at offset %d", r.pos)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return f
}

func (r *wireReader) variant() attr.Variant {
	if r.err != nil {
		return attr.Variant{}
	}
	v, n, err := attr.DecodeVariant(r.buf[r.pos:])
	if err != nil {
		r.fail("%v", err)
		return attr.Variant{}
	}
	r.pos += n
	return v
}

// MergeEncodedState decodes a state blob produced by EncodeState (from a
// DB with an equal scheme) and merges its aggregation records into db.
func (db *DB) MergeEncodedState(data []byte) error {
	sp := trace.Begin("core.merge")
	if sp.Active() {
		sp.ArgInt("bytes", int64(len(data)))
		sp.Arg("scheme", db.scheme.String())
		defer func() {
			sp.ArgInt("buckets", int64(len(db.buckets)))
			sp.End()
		}()
	}
	r := &wireReader{buf: data}
	if v := r.byte(); r.err == nil && v != wireVersion {
		return fmt.Errorf("core: decode state: version %d, want %d", v, wireVersion)
	}
	nops := r.uvarint()
	if r.err == nil && nops != uint64(len(db.scheme.Ops)) {
		return fmt.Errorf("core: decode state: %d ops in stream, scheme has %d",
			nops, len(db.scheme.Ops))
	}
	for i := 0; i < int(nops) && r.err == nil; i++ {
		db.noteWireType(i, attr.Type(r.byte()))
	}
	nKeys := r.uvarint()
	if r.err == nil && nKeys != uint64(len(db.scheme.Key)) {
		return fmt.Errorf("core: decode state: %d key attributes in stream, scheme has %d",
			nKeys, len(db.scheme.Key))
	}
	for i := 0; i < int(nKeys) && r.err == nil; i++ {
		db.noteWireNested(i, r.byte())
	}
	nBuckets := r.uvarint()
	processed := r.uvarint()

	// guard against corrupt counts: every bucket and value needs at least
	// one byte of input, so any count beyond the remaining buffer cannot
	// be real — and must not size an allocation
	if r.err == nil && nBuckets > uint64(len(r.buf)-r.pos) {
		return fmt.Errorf("core: decode state: implausible bucket count %d", nBuckets)
	}

	groups := []keyGroup{}
	accs := make([]accum, len(db.scheme.Ops))
	for bi := uint64(0); bi < nBuckets && r.err == nil; bi++ {
		nGroups := r.uvarint()
		if r.err == nil && nGroups > uint64(len(db.scheme.Key)) {
			return fmt.Errorf("core: decode state: %d key groups, scheme key has %d attributes",
				nGroups, len(db.scheme.Key))
		}
		groups = groups[:0]
		for gi := uint64(0); gi < nGroups && r.err == nil; gi++ {
			pos := r.uvarint()
			nVals := r.uvarint()
			if r.err == nil && nVals > uint64(len(r.buf)-r.pos) {
				return fmt.Errorf("core: decode state: implausible value count %d", nVals)
			}
			vals := make([]attr.Variant, 0, nVals)
			for vi := uint64(0); vi < nVals && r.err == nil; vi++ {
				vals = append(vals, r.variant())
			}
			groups = append(groups, keyGroup{pos: int(pos), values: vals})
		}
		for i := range accs {
			accs[i] = decodeAccum(r)
		}
		if r.err != nil {
			return r.err
		}
		// histogram bins are sized by the scheme (HistBins + under/overflow)
		// and present whenever the accumulator saw input; accepting any
		// other shape would panic in merge or render later
		for i := range accs {
			op := &db.scheme.Ops[i]
			if op.Kind == OpHistogram {
				if (accs[i].bins != nil || accs[i].seen) && len(accs[i].bins) != op.HistBins+2 {
					return fmt.Errorf("core: decode state: op %d: histogram size %d, want %d",
						i, len(accs[i].bins), op.HistBins+2)
				}
			} else if accs[i].bins != nil {
				return fmt.Errorf("core: decode state: op %d: unexpected histogram bins", i)
			}
		}
		if err := db.mergeBucket(groups, accs); err != nil {
			return err
		}
	}
	if r.err != nil {
		return r.err
	}
	db.processed += processed
	return nil
}

// decodeAccum reads one accumulator.
func decodeAccum(r *wireReader) accum {
	var a accum
	flags := r.byte()
	a.seen = flags&1 != 0
	a.count = r.uvarint()
	a.isum = r.varint()
	a.fsum = r.float()
	a.sumsq = r.float()
	a.min = r.variant()
	a.max = r.variant()
	if flags&2 != 0 {
		n := r.uvarint()
		if r.err == nil && (n > 1<<20 || n > uint64(len(r.buf)-r.pos)) {
			r.fail("implausible histogram size %d", n)
			return a
		}
		a.bins = make([]uint64, n)
		for i := range a.bins {
			a.bins[i] = r.uvarint()
		}
	}
	return a
}
