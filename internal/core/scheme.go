package core

import (
	"fmt"
	"strings"
)

// Scheme is a customizable aggregation scheme (Section III-B): the
// aggregation key (GROUP BY attributes, in order), and the reduction
// operators with their aggregation attributes.
type Scheme struct {
	// Key lists the attribute labels forming the aggregation key.
	// Records are grouped by the combination of these attributes' values;
	// for stacked (nested) attributes the full value path is part of the
	// key, so distinct call paths form distinct groups.
	Key []string
	// Ops lists the reduction operator instances.
	Ops []OpSpec
}

// NewScheme validates and returns an aggregation scheme.
func NewScheme(key []string, ops []OpSpec) (*Scheme, error) {
	s := &Scheme{Key: key, Ops: ops}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustScheme is NewScheme for static initialization; it panics on error.
func MustScheme(key []string, ops []OpSpec) *Scheme {
	s, err := NewScheme(key, ops)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks the scheme for consistency: valid operators, no
// duplicate key attributes, no duplicate result names.
func (s *Scheme) Validate() error {
	if len(s.Ops) == 0 {
		return fmt.Errorf("core: scheme has no aggregation operators")
	}
	seenKey := map[string]bool{}
	for _, k := range s.Key {
		if k == "" {
			return fmt.Errorf("core: empty attribute label in aggregation key")
		}
		if seenKey[k] {
			return fmt.Errorf("core: duplicate key attribute %q", k)
		}
		seenKey[k] = true
	}
	seenRes := map[string]bool{}
	for _, o := range s.Ops {
		if err := o.Validate(); err != nil {
			return err
		}
		rn := o.ResultName()
		if seenRes[rn] {
			return fmt.Errorf("core: duplicate aggregation %q", rn)
		}
		seenRes[rn] = true
		if seenKey[o.Target] {
			return fmt.Errorf("core: attribute %q cannot be both key and aggregation attribute", o.Target)
		}
	}
	return nil
}

// String renders the scheme in the description language
// ("AGGREGATE ... GROUP BY ...").
func (s *Scheme) String() string {
	var sb strings.Builder
	sb.WriteString("AGGREGATE ")
	for i, o := range s.Ops {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(o.String())
	}
	if len(s.Key) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(s.Key, ", "))
	}
	return sb.String()
}

// Equal reports whether two schemes are identical (same key order, same
// operator list).
func (s *Scheme) Equal(o *Scheme) bool {
	if len(s.Key) != len(o.Key) || len(s.Ops) != len(o.Ops) {
		return false
	}
	for i := range s.Key {
		if s.Key[i] != o.Key[i] {
			return false
		}
	}
	for i := range s.Ops {
		if s.Ops[i] != o.Ops[i] {
			return false
		}
	}
	return true
}

// ResultNames lists the output labels of all operators, in operator order.
func (s *Scheme) ResultNames() []string {
	out := make([]string, len(s.Ops))
	for i, o := range s.Ops {
		out[i] = o.ResultName()
	}
	return out
}
