package core

import (
	"strings"
	"testing"

	"caligo/internal/attr"
)

func TestOpKindStringAndParse(t *testing.T) {
	for k := OpKind(0); k < numOpKinds; k++ {
		got, ok := ParseOpKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseOpKind(%q) = %v,%v; want %v", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseOpKind("frobnicate"); ok {
		t.Error("unknown op should not parse")
	}
	if OpKind(200).String() == "" {
		t.Error("out-of-range kind should render something")
	}
}

func TestOpSpecResultName(t *testing.T) {
	tests := []struct {
		spec OpSpec
		want string
	}{
		{OpSpec{Kind: OpCount}, "aggregate.count"},
		{OpSpec{Kind: OpSum, Target: "time"}, "sum#time"},
		{OpSpec{Kind: OpMin, Target: "x"}, "min#x"},
		{OpSpec{Kind: OpMax, Target: "x"}, "max#x"},
		{OpSpec{Kind: OpAvg, Target: "x"}, "avg#x"},
		{OpSpec{Kind: OpStddev, Target: "x"}, "stddev#x"},
		{OpSpec{Kind: OpScount, Target: "x"}, "scount#x"},
		{OpSpec{Kind: OpSum, Target: "t", Alias: "total"}, "total"},
	}
	for _, tt := range tests {
		if got := tt.spec.ResultName(); got != tt.want {
			t.Errorf("%v.ResultName() = %q, want %q", tt.spec, got, tt.want)
		}
	}
}

func TestOpSpecValidate(t *testing.T) {
	valid := []OpSpec{
		{Kind: OpCount},
		{Kind: OpSum, Target: "x"},
		{Kind: OpHistogram, Target: "x", HistMin: 0, HistMax: 10, HistBins: 4},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", s, err)
		}
	}
	invalid := []OpSpec{
		{Kind: numOpKinds},
		{Kind: OpSum},                    // missing target
		{Kind: OpCount, Target: "x"},     // target on count
		{Kind: OpHistogram, Target: "x"}, // no bins
		{Kind: OpHistogram, Target: "x", HistMin: 5, HistMax: 5, HistBins: 2}, // empty range
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", s)
		}
	}
}

func TestOpSpecString(t *testing.T) {
	s := OpSpec{Kind: OpSum, Target: "time", Alias: "total"}
	if got := s.String(); got != "sum(time) AS total" {
		t.Errorf("String = %q", got)
	}
	c := OpSpec{Kind: OpCount}
	if got := c.String(); got != "count" {
		t.Errorf("String = %q", got)
	}
	h := OpSpec{Kind: OpHistogram, Target: "x", HistMin: 0, HistMax: 8, HistBins: 4}
	if got := h.String(); got != "histogram(x,0,8,4)" {
		t.Errorf("String = %q", got)
	}
}

func TestAccumSum(t *testing.T) {
	spec := &OpSpec{Kind: OpSum, Target: "x"}
	var a accum
	for _, v := range []int64{10, 20, 30} {
		a.update(spec, attr.IntV(v))
	}
	v, ok := a.result(spec, attr.Int)
	if !ok || v.AsInt() != 60 {
		t.Errorf("int sum = %v,%v; want 60", v, ok)
	}
	v, _ = a.result(spec, attr.Float)
	if v.AsFloat() != 60 {
		t.Errorf("float sum = %v", v)
	}
	var empty accum
	if _, ok := empty.result(spec, attr.Int); ok {
		t.Error("empty sum should produce no result")
	}
}

func TestAccumMinMax(t *testing.T) {
	minSpec := &OpSpec{Kind: OpMin, Target: "x"}
	maxSpec := &OpSpec{Kind: OpMax, Target: "x"}
	var lo, hi accum
	for _, v := range []float64{3, -1, 7, 2} {
		lo.update(minSpec, attr.FloatV(v))
		hi.update(maxSpec, attr.FloatV(v))
	}
	if v, ok := lo.result(minSpec, attr.Float); !ok || v.AsFloat() != -1 {
		t.Errorf("min = %v,%v; want -1", v, ok)
	}
	if v, ok := hi.result(maxSpec, attr.Float); !ok || v.AsFloat() != 7 {
		t.Errorf("max = %v,%v; want 7", v, ok)
	}
}

func TestAccumAvgStddev(t *testing.T) {
	avgSpec := &OpSpec{Kind: OpAvg, Target: "x"}
	sdSpec := &OpSpec{Kind: OpStddev, Target: "x"}
	var av, sd accum
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		av.update(avgSpec, attr.FloatV(v))
		sd.update(sdSpec, attr.FloatV(v))
	}
	if v, ok := av.result(avgSpec, attr.Float); !ok || v.AsFloat() != 5 {
		t.Errorf("avg = %v,%v; want 5", v, ok)
	}
	// classic example: population stddev of this set is 2
	if v, ok := sd.result(sdSpec, attr.Float); !ok || v.AsFloat() != 2 {
		t.Errorf("stddev = %v,%v; want 2", v, ok)
	}
}

func TestAccumHistogram(t *testing.T) {
	spec := &OpSpec{Kind: OpHistogram, Target: "x", HistMin: 0, HistMax: 10, HistBins: 5}
	var a accum
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		a.update(spec, attr.FloatV(v))
	}
	v, ok := a.result(spec, attr.Float)
	if !ok {
		t.Fatal("histogram with input should produce result")
	}
	// bins: [0,2):2  [2,4):1  [4,6):1  [6,8):0  [8,10):1  under:1 over:2
	want := "0:10:2,1,1,0,1|1|2"
	if v.String() != want {
		t.Errorf("histogram = %q, want %q", v.String(), want)
	}
}

func TestAccumHistogramEdgeRounding(t *testing.T) {
	// a value just below max must not index past the last bin
	spec := &OpSpec{Kind: OpHistogram, Target: "x", HistMin: 0, HistMax: 0.3, HistBins: 3}
	var a accum
	a.update(spec, attr.FloatV(0.3-1e-17)) // rounds to 0.3 in the scaled math
	v, _ := a.result(spec, attr.Float)
	if !strings.HasPrefix(v.String(), "0:0.3:") {
		t.Fatalf("unexpected render: %q", v)
	}
	// must not panic and must count exactly one value somewhere
	total := uint64(0)
	for _, b := range a.bins {
		total += b
	}
	if total != 1 {
		t.Errorf("histogram lost or duplicated the edge value: bins=%v", a.bins)
	}
}

func TestAccumMerge(t *testing.T) {
	specs := []OpSpec{
		{Kind: OpCount},
		{Kind: OpSum, Target: "x"},
		{Kind: OpMin, Target: "x"},
		{Kind: OpMax, Target: "x"},
		{Kind: OpAvg, Target: "x"},
		{Kind: OpStddev, Target: "x"},
		{Kind: OpHistogram, Target: "x", HistMin: 0, HistMax: 100, HistBins: 10},
	}
	left := []float64{1, 5, 20}
	right := []float64{50, 99, -3, 110}
	for si := range specs {
		spec := &specs[si]
		var a, b, ref accum
		feed := func(acc *accum, vals []float64) {
			for _, v := range vals {
				if spec.Kind == OpCount {
					acc.update(spec, attr.UintV(1))
				} else {
					acc.update(spec, attr.FloatV(v))
				}
			}
		}
		feed(&a, left)
		feed(&b, right)
		feed(&ref, left)
		feed(&ref, right)
		a.merge(spec, &b)
		va, oka := a.result(spec, attr.Float)
		vr, okr := ref.result(spec, attr.Float)
		if oka != okr || va != vr {
			t.Errorf("%v: merged = %v,%v; sequential = %v,%v", spec, va, oka, vr, okr)
		}
	}
}

func TestAccumMergeEmptySides(t *testing.T) {
	spec := &OpSpec{Kind: OpMin, Target: "x"}
	var a, b accum
	b.update(spec, attr.IntV(5))
	a.merge(spec, &b)
	if v, ok := a.result(spec, attr.Int); !ok || v.AsInt() != 5 {
		t.Errorf("merge into empty = %v,%v", v, ok)
	}
	var c accum
	a.merge(spec, &c) // merging empty is a no-op
	if v, _ := a.result(spec, attr.Int); v.AsInt() != 5 {
		t.Error("merging empty changed result")
	}
}

func TestResultType(t *testing.T) {
	tests := []struct {
		spec OpSpec
		in   attr.Type
		want attr.Type
	}{
		{OpSpec{Kind: OpCount}, attr.Inv, attr.Uint},
		{OpSpec{Kind: OpSum, Target: "x"}, attr.Int, attr.Int},
		{OpSpec{Kind: OpSum, Target: "x"}, attr.Float, attr.Float},
		{OpSpec{Kind: OpMin, Target: "x"}, attr.Uint, attr.Uint},
		{OpSpec{Kind: OpMin, Target: "x"}, attr.Inv, attr.Float},
		{OpSpec{Kind: OpAvg, Target: "x"}, attr.Int, attr.Float},
		{OpSpec{Kind: OpStddev, Target: "x"}, attr.Int, attr.Float},
		{OpSpec{Kind: OpHistogram, Target: "x"}, attr.Float, attr.String},
		{OpSpec{Kind: OpScount, Target: "x"}, attr.Float, attr.Uint},
	}
	for _, tt := range tests {
		if got := tt.spec.ResultType(tt.in); got != tt.want {
			t.Errorf("%v.ResultType(%v) = %v, want %v", tt.spec, tt.in, got, tt.want)
		}
	}
}

func TestSortOpSpecs(t *testing.T) {
	specs := []OpSpec{
		{Kind: OpSum, Target: "b"},
		{Kind: OpCount},
		{Kind: OpSum, Target: "a"},
	}
	sortOpSpecs(specs)
	if specs[0].Kind != OpCount || specs[1].Target != "a" || specs[2].Target != "b" {
		t.Errorf("sort order wrong: %v", specs)
	}
}
