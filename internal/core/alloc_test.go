package core

// Allocation-budget guard for DB.Update: key classification, key encoding
// (reused keyBuf), bucket lookup, and accumulator updates must all run
// without per-record allocation once the buckets exist.

import (
	"testing"

	"caligo/internal/snapshot"
	"caligo/internal/testutil"
)

func TestUpdateAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets do not hold under -race instrumentation")
	}
	fx := newDBFixture(t)
	scheme := MustScheme(
		[]string{"function", "loop.iteration"},
		[]OpSpec{{Kind: OpCount}, {Kind: OpSum, Target: "time.duration"}},
	)
	db, err := NewDB(scheme, fx.reg)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]snapshot.FlatRecord, 0, 32)
	for it := int64(0); it < 8; it++ {
		recs = append(recs, fx.rec("foo", it, 10), fx.rec("bar", it, 3))
	}
	for _, r := range recs { // warm up: create every group bucket
		db.Update(r)
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		db.Update(recs[i%len(recs)])
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Update = %.2f allocs/record, want 0", avg)
	}
}
