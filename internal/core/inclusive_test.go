package core

import (
	"testing"

	"caligo/internal/attr"
	"caligo/internal/snapshot"
)

// inclusiveFixture builds a registry with a nested function attribute and
// a plain rank attribute.
type inclusiveFixture struct {
	reg  *attr.Registry
	fn   attr.Attribute
	rank attr.Attribute
	dur  attr.Attribute
}

func newInclusiveFixture(t *testing.T) *inclusiveFixture {
	t.Helper()
	reg := attr.NewRegistry()
	return &inclusiveFixture{
		reg:  reg,
		fn:   reg.MustCreate("function", attr.String, attr.Nested),
		rank: reg.MustCreate("mpi.rank", attr.Int, 0),
		dur:  reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable),
	}
}

func (fx *inclusiveFixture) rec(path []string, rank int64, dur int64) snapshot.FlatRecord {
	var r snapshot.FlatRecord
	for _, p := range path {
		r = append(r, attr.Entry{Attr: fx.fn, Value: attr.StringV(p)})
	}
	if rank >= 0 {
		r = append(r, attr.Entry{Attr: fx.rank, Value: attr.IntV(rank)})
	}
	r = append(r, attr.Entry{Attr: fx.dur, Value: attr.IntV(dur)})
	return r
}

// collect flushes and indexes rows by function path.
func collectInclusive(t *testing.T, db *DB, fx *inclusiveFixture) map[string][2]int64 {
	t.Helper()
	rows, err := db.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][2]int64{}
	for _, r := range rows {
		path := r.PathOf(fx.fn.ID(), "/")
		var excl, incl int64
		if v, ok := r.GetByName("sum#time.duration"); ok {
			excl = v.AsInt()
		}
		if v, ok := r.GetByName("inclusive_sum#time.duration"); ok {
			incl = v.AsInt()
		}
		out[path] = [2]int64{excl, incl}
	}
	return out
}

func TestInclusiveSumHierarchy(t *testing.T) {
	fx := newInclusiveFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpSum, Target: "time.duration"},
			{Kind: OpInclusiveSum, Target: "time.duration"}})
	db, err := NewDB(scheme, fx.reg)
	if err != nil {
		t.Fatal(err)
	}
	// call tree: main(10), main/foo(20), main/foo/bar(40), main/baz(5)
	db.Update(fx.rec([]string{"main"}, -1, 10))
	db.Update(fx.rec([]string{"main", "foo"}, -1, 20))
	db.Update(fx.rec([]string{"main", "foo", "bar"}, -1, 40))
	db.Update(fx.rec([]string{"main", "baz"}, -1, 5))

	got := collectInclusive(t, db, fx)
	wants := map[string][2]int64{
		"main":         {10, 75}, // 10+20+40+5
		"main/foo":     {20, 60}, // 20+40
		"main/foo/bar": {40, 40},
		"main/baz":     {5, 5},
	}
	for path, w := range wants {
		if got[path] != w {
			t.Errorf("%s: (excl,incl) = %v, want %v", path, got[path], w)
		}
	}
}

func TestInclusiveSumRespectsNonNestedKeys(t *testing.T) {
	// the hierarchy only folds along nested attributes; different ranks
	// must not mix
	fx := newInclusiveFixture(t)
	scheme := MustScheme([]string{"function", "mpi.rank"},
		[]OpSpec{{Kind: OpInclusiveSum, Target: "time.duration"}})
	db, _ := NewDB(scheme, fx.reg)
	db.Update(fx.rec([]string{"main"}, 0, 10))
	db.Update(fx.rec([]string{"main", "foo"}, 0, 20))
	db.Update(fx.rec([]string{"main"}, 1, 100))
	db.Update(fx.rec([]string{"main", "foo"}, 1, 200))

	rows, err := db.FlushRecords()
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		path string
		rank int64
	}
	got := map[key]int64{}
	for _, r := range rows {
		rk, _ := r.GetByName("mpi.rank")
		v, _ := r.GetByName("inclusive_sum#time.duration")
		got[key{r.PathOf(fx.fn.ID(), "/"), rk.AsInt()}] = v.AsInt()
	}
	wants := map[key]int64{
		{"main", 0}:     30,
		{"main/foo", 0}: 20,
		{"main", 1}:     300,
		{"main/foo", 1}: 200,
	}
	for k, w := range wants {
		if got[k] != w {
			t.Errorf("%v: inclusive = %d, want %d", k, got[k], w)
		}
	}
}

func TestInclusiveSumAbsentRankIsolated(t *testing.T) {
	// a group without mpi.rank must not absorb ranked descendants
	fx := newInclusiveFixture(t)
	scheme := MustScheme([]string{"function", "mpi.rank"},
		[]OpSpec{{Kind: OpInclusiveSum, Target: "time.duration"}})
	db, _ := NewDB(scheme, fx.reg)
	db.Update(fx.rec([]string{"main"}, -1, 1)) // no rank
	db.Update(fx.rec([]string{"main", "foo"}, 3, 50))
	rows, _ := db.FlushRecords()
	for _, r := range rows {
		if _, hasRank := r.GetByName("mpi.rank"); !hasRank {
			v, _ := r.GetByName("inclusive_sum#time.duration")
			if v.AsInt() != 1 {
				t.Errorf("rankless group absorbed ranked descendants: %v", v)
			}
		}
	}
}

func TestInclusiveSumMergeAcrossProcesses(t *testing.T) {
	// merging per-process DBs before flush must equal aggregating the
	// union (inclusive expansion happens at flush, exclusive sums merge)
	fx := newInclusiveFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpInclusiveSum, Target: "time.duration"}})
	a, _ := NewDB(scheme, fx.reg)
	b, _ := NewDB(scheme, fx.reg)
	ref, _ := NewDB(scheme, fx.reg)
	recs := []snapshot.FlatRecord{
		fx.rec([]string{"main"}, -1, 10),
		fx.rec([]string{"main", "foo"}, -1, 20),
		fx.rec([]string{"main"}, -1, 30),
		fx.rec([]string{"main", "foo", "bar"}, -1, 40),
	}
	for i, r := range recs {
		if i%2 == 0 {
			a.Update(r)
		} else {
			b.Update(r)
		}
		ref.Update(r)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	ga := collectInclusive(t, a, fx)
	gr := collectInclusive(t, ref, fx)
	for path, w := range gr {
		if ga[path] != w {
			t.Errorf("%s: merged %v, reference %v", path, ga[path], w)
		}
	}
	if gr["main"][1] != 100 {
		t.Errorf("main inclusive = %d, want 100", gr["main"][1])
	}
}

func TestInclusiveSumViaCalQLName(t *testing.T) {
	k, ok := ParseOpKind("inclusive_sum")
	if !ok || k != OpInclusiveSum {
		t.Fatalf("ParseOpKind(inclusive_sum) = %v,%v", k, ok)
	}
	spec := OpSpec{Kind: OpInclusiveSum, Target: "x"}
	if spec.ResultName() != "inclusive_sum#x" {
		t.Errorf("ResultName = %q", spec.ResultName())
	}
	if spec.ResultType(attr.Int) != attr.Int || spec.ResultType(attr.Float) != attr.Float {
		t.Error("ResultType should follow the target type")
	}
}

func TestInclusiveSumReaggregation(t *testing.T) {
	// flushed inclusive results re-aggregate groupwise (summing across
	// processes' identical group sets)
	fx := newInclusiveFixture(t)
	scheme := MustScheme([]string{"function"},
		[]OpSpec{{Kind: OpInclusiveSum, Target: "time.duration"}})
	db, _ := NewDB(scheme, fx.reg)
	db.Update(fx.rec([]string{"main"}, -1, 10))
	db.Update(fx.rec([]string{"main", "foo"}, -1, 20))
	rows, _ := db.FlushRecords()

	db2, _ := NewDB(scheme, fx.reg)
	for _, r := range rows {
		db2.Update(r)
	}
	got := collectInclusive(t, db2, fx)
	// second stage sees pre-expanded values: main already 30, main/foo 20;
	// the expansion adds main/foo's 20 into main again — this documents
	// that inclusive results should be produced ONCE, at the final stage.
	if got["main"][1] != 50 {
		t.Errorf("double expansion expectation changed: main = %d", got["main"][1])
	}
}
