// Package mpiwrap provides the MPI interposition layer: it wraps an
// emulated MPI communicator so that every communication call is annotated
// with the "mpi.function" attribute and the process's "mpi.rank", exactly
// like Caliper's MPI wrapper built on the MPI profiling interface (PMPI).
// The paper's communication-overhead and load-balance studies (Figures 6
// and 7) are driven by these annotations.
package mpiwrap

import (
	"caligo/caliper"
	"caligo/internal/attr"
	"caligo/internal/mpi"
)

// FunctionAttr is the label under which MPI function names are recorded.
const FunctionAttr = "mpi.function"

// RankAttr is the label under which the process rank is recorded.
const RankAttr = "mpi.rank"

// Comm is an instrumented communicator. All methods mirror mpi.Comm,
// surrounding each call with mpi.function begin/end annotations. When the
// thread's channel uses a virtual timer, the thread's virtual clock is
// synchronized with the communicator's virtual clock after every call, so
// time spent waiting in communication (as modeled by the MPI cost model)
// is attributed to the MPI function.
type Comm struct {
	inner *mpi.Comm
	th    *caliper.Thread
	sync  bool
}

// Wrap instruments a communicator. It registers the mpi.rank and
// mpi.function attributes on the thread's channel and sets mpi.rank for
// the lifetime of the process. A nil thread disables instrumentation
// (the baseline configuration of the overhead study).
func Wrap(c *mpi.Comm, th *caliper.Thread) (*Comm, error) {
	w := &Comm{inner: c, th: th}
	if th != nil {
		ch := th.Channel()
		w.sync = ch.VirtualTimer()
		if _, err := ch.CreateAttribute(RankAttr, attr.Int, 0); err != nil {
			return nil, err
		}
		if _, err := ch.CreateAttribute(FunctionAttr, attr.String, attr.Nested); err != nil {
			return nil, err
		}
		if err := th.Set(RankAttr, c.Rank()); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Inner returns the wrapped communicator.
func (w *Comm) Inner() *mpi.Comm { return w.inner }

// Rank returns the process rank.
func (w *Comm) Rank() int { return w.inner.Rank() }

// Size returns the job size.
func (w *Comm) Size() int { return w.inner.Size() }

// instrument runs fn between begin/end annotations of the MPI function.
func (w *Comm) instrument(name string, fn func() error) error {
	if w.th == nil {
		return fn()
	}
	if err := w.th.Begin(FunctionAttr, name); err != nil {
		return err
	}
	err := fn()
	if w.sync {
		w.th.SetVirtualTime(int64(w.inner.Clock()))
	}
	if eerr := w.th.End(FunctionAttr); err == nil {
		err = eerr
	}
	return err
}

// Send is an annotated mpi.Comm.Send (recorded as MPI_Send).
func (w *Comm) Send(dst, tag int, data []byte) error {
	return w.instrument("MPI_Send", func() error {
		return w.inner.Send(dst, tag, data)
	})
}

// Recv is an annotated mpi.Comm.Recv (recorded as MPI_Recv).
func (w *Comm) Recv(src, tag int) (data []byte, from int, err error) {
	err = w.instrument("MPI_Recv", func() error {
		var ierr error
		data, from, ierr = w.inner.Recv(src, tag)
		return ierr
	})
	return data, from, err
}

// Barrier is an annotated mpi.Comm.Barrier (recorded as MPI_Barrier).
func (w *Comm) Barrier() error {
	return w.instrument("MPI_Barrier", func() error {
		return w.inner.Barrier()
	})
}

// Bcast is an annotated mpi.Comm.Bcast (recorded as MPI_Bcast).
func (w *Comm) Bcast(root int, data []byte) (out []byte, err error) {
	err = w.instrument("MPI_Bcast", func() error {
		var ierr error
		out, ierr = w.inner.Bcast(root, data)
		return ierr
	})
	return out, err
}

// Reduce is an annotated mpi.Comm.Reduce (recorded as MPI_Reduce).
func (w *Comm) Reduce(root int, data []byte, combine mpi.Combine) (out []byte, err error) {
	err = w.instrument("MPI_Reduce", func() error {
		var ierr error
		out, ierr = w.inner.Reduce(root, data, combine)
		return ierr
	})
	return out, err
}

// Allreduce is an annotated mpi.Comm.Allreduce (recorded as MPI_Allreduce).
func (w *Comm) Allreduce(data []byte, combine mpi.Combine) (out []byte, err error) {
	err = w.instrument("MPI_Allreduce", func() error {
		var ierr error
		out, ierr = w.inner.Allreduce(data, combine)
		return ierr
	})
	return out, err
}

// Gather is an annotated mpi.Comm.Gather (recorded as MPI_Gather).
func (w *Comm) Gather(root int, data []byte) (out [][]byte, err error) {
	err = w.instrument("MPI_Gather", func() error {
		var ierr error
		out, ierr = w.inner.Gather(root, data)
		return ierr
	})
	return out, err
}
