package mpiwrap

import (
	"encoding/binary"
	"fmt"
	"testing"

	"caligo/caliper"
	"caligo/internal/mpi"
)

func sumCombine(a, b []byte) ([]byte, error) {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out,
		binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
	return out, nil
}

func u64(v uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, v)
	return out
}

// runInstrumented executes fn on a world with per-rank instrumented comms
// and returns the per-rank channels.
func runInstrumented(t *testing.T, ranks int, fn func(w *Comm) error) []*caliper.Channel {
	t.Helper()
	channels := make([]*caliper.Channel, ranks)
	for r := range channels {
		ch, err := caliper.NewChannel(caliper.Config{
			"services":      "event,timer,aggregate",
			"aggregate.key": "mpi.function,mpi.rank",
			"aggregate.ops": "count,sum(time.duration)",
		})
		if err != nil {
			t.Fatal(err)
		}
		channels[r] = ch
	}
	world, err := mpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	err = world.Run(func(c *mpi.Comm) error {
		w, err := Wrap(c, channels[c.Rank()].Thread())
		if err != nil {
			return err
		}
		return fn(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	return channels
}

// countsFor flushes a channel and returns MPI function call counts.
func countsFor(t *testing.T, ch *caliper.Channel) map[string]int64 {
	t.Helper()
	rows, err := ch.Flush()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, r := range rows {
		fn, ok := r.GetByName("mpi.function")
		if !ok {
			continue
		}
		c, _ := r.GetByName("aggregate.count")
		counts[fn.String()] = c.AsInt()
	}
	return counts
}

func TestAllCallsAnnotated(t *testing.T) {
	const ranks = 4
	channels := runInstrumented(t, ranks, func(w *Comm) error {
		if w.Rank() == 0 {
			for dst := 1; dst < ranks; dst++ {
				if err := w.Send(dst, 1, u64(7)); err != nil {
					return err
				}
			}
		} else {
			if _, _, err := w.Recv(0, 1); err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		if _, err := w.Bcast(0, u64(1)); err != nil {
			return err
		}
		if _, err := w.Reduce(0, u64(1), sumCombine); err != nil {
			return err
		}
		if _, err := w.Allreduce(u64(1), sumCombine); err != nil {
			return err
		}
		if _, err := w.Gather(0, u64(1)); err != nil {
			return err
		}
		return nil
	})
	counts := countsFor(t, channels[0]) // rank 0's profile
	// each call annotated exactly once per rank: end-event snapshots
	// carry the mpi.function, begin-event ones the surrounding context
	for _, fn := range []string{"MPI_Send", "MPI_Barrier", "MPI_Bcast",
		"MPI_Reduce", "MPI_Allreduce", "MPI_Gather"} {
		if counts[fn] == 0 {
			t.Errorf("rank 0: %s missing from profile: %v", fn, counts)
		}
	}
	c1 := countsFor(t, channels[1])
	if c1["MPI_Recv"] == 0 {
		t.Errorf("rank 1: MPI_Recv missing: %v", c1)
	}
}

func TestRankAttributeSet(t *testing.T) {
	const ranks = 3
	channels := runInstrumented(t, ranks, func(w *Comm) error {
		return w.Barrier()
	})
	for r, ch := range channels {
		rows, err := ch.Flush()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			if v, ok := row.GetByName("mpi.rank"); ok && v.AsInt() != int64(r) {
				t.Errorf("rank %d profile has mpi.rank=%v", r, v)
			}
		}
	}
}

func TestNilThreadNoInstrumentation(t *testing.T) {
	world, _ := mpi.NewWorld(2)
	err := world.Run(func(c *mpi.Comm) error {
		w, err := Wrap(c, nil)
		if err != nil {
			return err
		}
		if w.Size() != 2 {
			return fmt.Errorf("size = %d", w.Size())
		}
		if w.Inner() != c {
			return fmt.Errorf("inner mismatch")
		}
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorsPropagate(t *testing.T) {
	world, _ := mpi.NewWorld(2)
	err := world.Run(func(c *mpi.Comm) error {
		ch, err := caliper.NewChannel(caliper.Config{"services": ""})
		if err != nil {
			return err
		}
		w, err := Wrap(c, ch.Thread())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// invalid destination must surface through the wrapper
			if err := w.Send(99, 0, nil); err == nil {
				return fmt.Errorf("expected send error")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeSynchronized(t *testing.T) {
	const ranks = 2
	channels := make([]*caliper.Channel, ranks)
	threads := make([]*caliper.Thread, ranks)
	for r := range channels {
		ch, err := caliper.NewChannel(caliper.Config{
			"services":      "event,timer,aggregate",
			"timer.source":  "virtual",
			"aggregate.key": "mpi.function",
			"aggregate.ops": "sum(time.duration)",
		})
		if err != nil {
			t.Fatal(err)
		}
		channels[r] = ch
	}
	world, _ := mpi.NewWorld(ranks)
	err := world.Run(func(c *mpi.Comm) error {
		th := channels[c.Rank()].Thread()
		threads[c.Rank()] = th
		w, err := Wrap(c, th)
		if err != nil {
			return err
		}
		// rank 1 computes 1ms (virtual) before the barrier; rank 0's
		// barrier wait must be attributed to MPI_Barrier on the virtual
		// clock
		if c.Rank() == 1 {
			c.Advance(1e6)
			th.SetVirtualTime(int64(c.Clock()))
		}
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := channels[0].Flush()
	if err != nil {
		t.Fatal(err)
	}
	var barrierNs int64
	for _, r := range rows {
		if fn, ok := r.GetByName("mpi.function"); ok && fn.String() == "MPI_Barrier" {
			if v, ok := r.GetByName("sum#time.duration"); ok {
				barrierNs = v.AsInt()
			}
		}
	}
	if barrierNs < 900_000 {
		t.Errorf("rank 0 barrier virtual time = %d ns, want >= ~1ms (the skew wait)", barrierNs)
	}
}
