package obs

import (
	"encoding/json"
	"io"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"caligo/internal/telemetry"
)

// Per-query attribution: every calql/pquery run gets a process-unique
// query ID, threaded through shard workers and trace spans, and its
// wall time, record/byte throughput, heap allocation, phase breakdown,
// and shard skew are accounted into a bounded most-recent table served
// at /debug/queries. Queries slower than a configurable threshold also
// emit a structured slow-query log entry carrying the full CalQL text —
// the "which query is slow and why" answer without re-running anything
// under EXPLAIN ANALYZE. The design follows the lightweight per-target
// attribution approach of Atys (Sun et al. 2025): cheap always-on
// bookkeeping at query granularity, detail on demand.
//
// Attribution follows the telemetry kill switch: with telemetry off,
// BeginQuery returns nil and every ActiveQuery method is a nil-receiver
// no-op, so the query hot paths pay one atomic load.

// Aggregate query metrics (see docs/OBSERVABILITY.md).
var (
	telQueries      = telemetry.NewCounter("caligo.query.queries")
	telQueryNS      = telemetry.NewHistogram("caligo.query.ns")
	telQueryRecords = telemetry.NewCounter("caligo.query.records")
	telQueryBytes   = telemetry.NewCounter("caligo.query.bytes")
	telQueryErrors  = telemetry.NewCounter("caligo.query.errors")
	telQuerySlow    = telemetry.NewCounter("caligo.query.slow")
	gActiveQueries  = telemetry.NewGauge("caligo.query.active")
)

// PhaseTiming is one named execution phase of a query.
type PhaseTiming struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
}

// QueryStats is the attribution record of one query run.
type QueryStats struct {
	ID         uint64        `json:"id"`
	Text       string        `json:"query"`
	Engine     string        `json:"engine"` // "serial", "sharded", "mpi"
	Start      time.Time     `json:"start"`
	DurationNS int64         `json:"duration_ns"`
	Records    uint64        `json:"records"`
	Bytes      uint64        `json:"bytes"`
	AllocBytes uint64        `json:"alloc_bytes"` // heap allocated during the run (process-wide delta)
	Rows       int           `json:"rows"`
	Shards     int           `json:"shards,omitempty"`
	ShardSkew  float64       `json:"shard_skew,omitempty"` // (max-min)/max shard wall time
	Phases     []PhaseTiming `json:"phases,omitempty"`

	// Aggregate-cache outcome per input file (zero when caching was off).
	CacheHits        uint64 `json:"cache_hits,omitempty"`
	CacheMisses      uint64 `json:"cache_misses,omitempty"`
	CacheIncremental uint64 `json:"cache_incremental,omitempty"`
	Err              string `json:"error,omitempty"`
	Slow             bool   `json:"slow,omitempty"`
	Done             bool   `json:"done"`
}

// queryIDs issues process-unique query IDs, starting at 1.
var queryIDs atomic.Uint64

// slowThresholdNS is the slow-query log threshold (0 disables).
var slowThresholdNS atomic.Int64

func init() { slowThresholdNS.Store(int64(time.Second)) }

// SetSlowQueryThreshold sets the duration above which a finished query
// emits a structured slow-query log entry (default 1s; 0 disables) and
// returns the previous threshold.
func SetSlowQueryThreshold(d time.Duration) time.Duration {
	return time.Duration(slowThresholdNS.Swap(int64(d)))
}

// SlowQueryThreshold returns the current slow-query threshold.
func SlowQueryThreshold() time.Duration { return time.Duration(slowThresholdNS.Load()) }

// queryLog is the bounded most-recently-finished query table plus the
// currently-running set.
type queryLog struct {
	mu     sync.Mutex
	done   []QueryStats // ring, newest overwrite oldest
	next   int
	total  uint64
	active map[uint64]*ActiveQuery
}

const defaultQueryLogCap = 128

var qlog = &queryLog{
	done:   make([]QueryStats, 0, defaultQueryLogCap),
	active: map[uint64]*ActiveQuery{},
}

var queryLogger = Logger("query")

// ActiveQuery accumulates attribution for one in-flight query. Methods
// are safe for concurrent use by shard workers, and all methods are
// nil-receiver no-ops so call sites need no enabled-checks.
type ActiveQuery struct {
	mu         sync.Mutex
	stats      QueryStats
	startAlloc uint64
	shardNS    []int64
}

// BeginQuery opens an attribution record for a query run. Returns nil
// (and records nothing) when telemetry is disabled.
func BeginQuery(text, engine string) *ActiveQuery {
	if !telemetry.Enabled() {
		return nil
	}
	aq := &ActiveQuery{
		stats: QueryStats{
			ID:     queryIDs.Add(1),
			Text:   text,
			Engine: engine,
			Start:  time.Now(),
		},
		startAlloc: heapAllocBytes(),
	}
	qlog.mu.Lock()
	qlog.active[aq.stats.ID] = aq
	qlog.mu.Unlock()
	gActiveQueries.Add(1)
	return aq
}

// ID returns the query ID (0 for a nil receiver, which span annotation
// treats as "don't tag").
func (aq *ActiveQuery) ID() uint64 {
	if aq == nil {
		return 0
	}
	return aq.stats.ID
}

// AddRecords accounts n input records.
func (aq *ActiveQuery) AddRecords(n uint64) {
	if aq == nil {
		return
	}
	aq.mu.Lock()
	aq.stats.Records += n
	aq.mu.Unlock()
}

// AddBytes accounts n input bytes.
func (aq *ActiveQuery) AddBytes(n uint64) {
	if aq == nil {
		return
	}
	aq.mu.Lock()
	aq.stats.Bytes += n
	aq.mu.Unlock()
}

// Phase records one named phase's duration. Repeated names accumulate.
func (aq *ActiveQuery) Phase(name string, d time.Duration) {
	if aq == nil {
		return
	}
	aq.mu.Lock()
	defer aq.mu.Unlock()
	for i := range aq.stats.Phases {
		if aq.stats.Phases[i].Name == name {
			aq.stats.Phases[i].NS += d.Nanoseconds()
			return
		}
	}
	aq.stats.Phases = append(aq.stats.Phases, PhaseTiming{Name: name, NS: d.Nanoseconds()})
}

// ShardDone records one shard worker's wall time and throughput; shard
// skew is derived at End.
func (aq *ActiveQuery) ShardDone(d time.Duration, records, bytes uint64) {
	if aq == nil {
		return
	}
	aq.mu.Lock()
	aq.stats.Shards++
	aq.stats.Records += records
	aq.stats.Bytes += bytes
	aq.shardNS = append(aq.shardNS, d.Nanoseconds())
	aq.mu.Unlock()
}

// CacheStats records the query's aggregate-cache outcome counts
// (per-file hits, misses, and append-incremental scans).
func (aq *ActiveQuery) CacheStats(hits, misses, incremental uint64) {
	if aq == nil {
		return
	}
	aq.mu.Lock()
	aq.stats.CacheHits += hits
	aq.stats.CacheMisses += misses
	aq.stats.CacheIncremental += incremental
	aq.mu.Unlock()
}

// SetRows records the result row count.
func (aq *ActiveQuery) SetRows(n int) {
	if aq == nil {
		return
	}
	aq.mu.Lock()
	aq.stats.Rows = n
	aq.mu.Unlock()
}

// End closes the attribution record: computes duration, allocation
// delta, and shard skew; feeds the caligo.query.* aggregate metrics;
// moves the record into the bounded finished table; and emits the
// slow-query log entry (or an error entry when err != nil). End is
// idempotent-unsafe by design — call it exactly once, typically
// deferred.
func (aq *ActiveQuery) End(err error) {
	if aq == nil {
		return
	}
	aq.mu.Lock()
	s := &aq.stats
	s.DurationNS = time.Since(s.Start).Nanoseconds()
	if alloc := heapAllocBytes(); alloc >= aq.startAlloc {
		s.AllocBytes = alloc - aq.startAlloc
	}
	if len(aq.shardNS) > 0 {
		min, max := aq.shardNS[0], aq.shardNS[0]
		for _, ns := range aq.shardNS[1:] {
			if ns < min {
				min = ns
			}
			if ns > max {
				max = ns
			}
		}
		if max > 0 {
			s.ShardSkew = float64(max-min) / float64(max)
		}
	}
	if err != nil {
		s.Err = err.Error()
	}
	threshold := slowThresholdNS.Load()
	s.Slow = threshold > 0 && s.DurationNS >= threshold
	s.Done = true
	final := cloneStats(s)
	aq.mu.Unlock()

	telQueries.Inc()
	telQueryNS.Observe(final.DurationNS)
	telQueryRecords.Add(final.Records)
	telQueryBytes.Add(final.Bytes)
	if err != nil {
		telQueryErrors.Inc()
	}
	gActiveQueries.Add(-1)

	qlog.mu.Lock()
	delete(qlog.active, final.ID)
	if len(qlog.done) < cap(qlog.done) {
		qlog.done = append(qlog.done, final)
	} else if cap(qlog.done) > 0 {
		qlog.done[qlog.next] = final
	}
	qlog.next = (qlog.next + 1) % cap(qlog.done)
	qlog.total++
	qlog.mu.Unlock()

	if err != nil {
		queryLogger.Error("query failed",
			"qid", final.ID,
			"engine", final.Engine,
			"calql", final.Text,
			"duration", time.Duration(final.DurationNS).String(),
			"error", final.Err,
		)
	}
	if final.Slow {
		telQuerySlow.Inc()
		args := make([]any, 0, 18)
		args = append(args,
			"qid", final.ID,
			"engine", final.Engine,
			"calql", final.Text,
			"duration", time.Duration(final.DurationNS).String(),
			"records", final.Records,
			"bytes", final.Bytes,
			"alloc_bytes", final.AllocBytes,
		)
		if final.Shards > 0 {
			args = append(args, "shards", final.Shards, "shard_skew", final.ShardSkew)
		}
		for _, p := range final.Phases {
			args = append(args, "phase."+p.Name+".ns", p.NS)
		}
		queryLogger.Warn("slow query", args...)
	}
}

// cloneStats deep-copies the phases slice so the finished record is
// immutable.
func cloneStats(s *QueryStats) QueryStats {
	out := *s
	out.Phases = append([]PhaseTiming(nil), s.Phases...)
	return out
}

// QuerySnapshot returns the attribution table: currently-running queries
// first (oldest first), then finished queries newest-first.
func QuerySnapshot() []QueryStats {
	qlog.mu.Lock()
	defer qlog.mu.Unlock()
	out := make([]QueryStats, 0, len(qlog.active)+len(qlog.done))
	for _, aq := range qlog.active {
		aq.mu.Lock()
		s := cloneStats(&aq.stats)
		s.DurationNS = time.Since(s.Start).Nanoseconds()
		aq.mu.Unlock()
		out = append(out, s)
	}
	// active queries sorted oldest first (stable order for the monitor)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start.Before(out[j-1].Start); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	n := len(qlog.done)
	for i := 0; i < n; i++ {
		idx := (qlog.next - 1 - i + n) % n
		out = append(out, qlog.done[idx])
	}
	return out
}

// QueryStatsDoc is the JSON document served at /debug/queries: the
// total number of queries ever finished plus the attribution table.
type QueryStatsDoc struct {
	Total   uint64       `json:"total"`
	Queries []QueryStats `json:"queries"`
}

// WriteQueryStats writes the attribution table as a QueryStatsDoc.
func WriteQueryStats(w io.Writer) error {
	qlog.mu.Lock()
	total := qlog.total
	qlog.mu.Unlock()
	doc := QueryStatsDoc{Total: total, Queries: QuerySnapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ParseQueryStats decodes a QueryStatsDoc — the client side of
// /debug/queries, used by cali-top.
func ParseQueryStats(r io.Reader) (*QueryStatsDoc, error) {
	var doc QueryStatsDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// ResetQueryStats clears the finished-query table (tests).
func ResetQueryStats() {
	qlog.mu.Lock()
	qlog.done = qlog.done[:0]
	qlog.next = 0
	qlog.total = 0
	qlog.mu.Unlock()
}

// heapAllocBytes reads cumulative heap allocation via runtime/metrics
// (cheap, no stop-the-world — unlike runtime.ReadMemStats).
var heapAllocSample = func() []metrics.Sample {
	s := make([]metrics.Sample, 1)
	s[0].Name = "/gc/heap/allocs:bytes"
	return s
}()
var heapAllocMu sync.Mutex

func heapAllocBytes() uint64 {
	heapAllocMu.Lock()
	defer heapAllocMu.Unlock()
	metrics.Read(heapAllocSample)
	if heapAllocSample[0].Value.Kind() == metrics.KindUint64 {
		return heapAllocSample[0].Value.Uint64()
	}
	return 0
}
