// Package obs is the library's production ops surface: it turns the
// self-instrumentation layers (internal/telemetry metrics, internal/trace
// spans) into machine-consumable operational interfaces — an OpenMetrics/
// Prometheus text exporter over the telemetry registry, a kill-switched
// structured logging layer with a ring-buffered flight recorder,
// per-query attribution with a slow-query log, and a background runtime
// sampler. The paper's aggregation service is meant to live inside
// long-running production jobs; this package is what lets a fleet of such
// jobs be monitored like any other service (scrape /debug/metrics, tail
// the structured log, ask "which query is slow and why" without
// re-running it under EXPLAIN ANALYZE).
package obs

import (
	"io"
	"math"
	"strconv"
	"sync"

	"caligo/internal/telemetry"
)

// ContentType is the OpenMetrics content type served by /debug/metrics.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Exporter renders a telemetry registry in the OpenMetrics text format
// (a strict superset of the Prometheus text format: same sample syntax
// plus a terminating "# EOF"). The exporter reuses its metric snapshot,
// output buffer, and sanitized-name cache across scrapes, so steady-state
// scrapes are allocation-free per metric — leaving it mounted on a
// 1-second scrape interval costs no garbage. An Exporter is safe for
// concurrent use; scrapes serialize on an internal mutex.
type Exporter struct {
	mu      sync.Mutex
	reg     *telemetry.Registry
	metrics []telemetry.Metric // reused snapshot storage
	buckets []telemetry.Bucket // reused per-histogram bucket storage
	buf     []byte             // reused render buffer
	names   map[string]*names  // metric name → sanitized spellings
}

// names caches the sanitized spellings derived from one metric name, so
// the per-sample fast path is a map hit instead of a rebuild.
type names struct {
	family string // sanitized base name, e.g. caligo_query_shards
	total  string // family + "_total" (counter sample name)
	bucket string // family + "_bucket{le=\"" (histogram bucket prefix)
	sum    string // family + "_sum"
	count  string // family + "_count"
}

// NewExporter returns an exporter over reg.
func NewExporter(reg *telemetry.Registry) *Exporter {
	return &Exporter{reg: reg, names: map[string]*names{}}
}

// defaultExporter serves the process-global registry (WriteMetrics and
// the /debug/metrics endpoint).
var defaultExporter = NewExporter(telemetry.Default())

// WriteMetrics renders the default telemetry registry as OpenMetrics text.
func WriteMetrics(w io.Writer) error { return defaultExporter.Write(w) }

// Write renders one scrape: every registered metric, sorted by name, as
// OpenMetrics text ending in "# EOF". Counters map to the counter type
// (sample name gains the _total suffix), gauges to gauge, and the
// log-linear telemetry histograms to native histograms with cumulative
// le-labeled buckets plus _sum and _count — only populated bins emit a
// bucket line, which keeps the exposition proportional to the data while
// staying a valid cumulative series.
func (e *Exporter) Write(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.metrics = e.reg.ExportInto(e.metrics)
	b := e.buf[:0]
	for i := range e.metrics {
		m := &e.metrics[i]
		n := e.nameset(m.Name)
		switch m.Kind {
		case telemetry.KindCounter:
			b = append(b, "# TYPE "...)
			b = append(b, n.family...)
			b = append(b, " counter\n"...)
			b = append(b, n.total...)
			b = append(b, ' ')
			b = strconv.AppendUint(b, m.Counter, 10)
			b = append(b, '\n')
		case telemetry.KindGauge:
			b = append(b, "# TYPE "...)
			b = append(b, n.family...)
			b = append(b, " gauge\n"...)
			b = append(b, n.family...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, m.Gauge, 10)
			b = append(b, '\n')
		case telemetry.KindHistogram:
			b = append(b, "# TYPE "...)
			b = append(b, n.family...)
			b = append(b, " histogram\n"...)
			e.buckets = m.Hist.AppendBuckets(e.buckets[:0])
			var cum uint64
			for _, bk := range e.buckets {
				cum += bk.Count
				if math.IsInf(bk.Upper, 1) {
					// the overflow bin folds into the mandatory +Inf
					// bucket emitted below
					continue
				}
				b = append(b, n.bucket...)
				b = appendFloat(b, bk.Upper)
				b = append(b, `"} `...)
				b = strconv.AppendUint(b, cum, 10)
				b = append(b, '\n')
			}
			// A snapshot taken while observers run can see a bin
			// increment whose matching count increment hasn't landed
			// yet; clamp so the +Inf bucket (== _count) never reads
			// below the last cumulative bucket.
			total := cum
			if m.Hist.Count > total {
				total = m.Hist.Count
			}
			b = append(b, n.bucket...)
			b = append(b, `+Inf"} `...)
			b = strconv.AppendUint(b, total, 10)
			b = append(b, '\n')
			b = append(b, n.sum...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, m.Hist.Sum, 10)
			b = append(b, '\n')
			b = append(b, n.count...)
			b = append(b, ' ')
			b = strconv.AppendUint(b, total, 10)
			b = append(b, '\n')
		}
	}
	b = append(b, "# EOF\n"...)
	e.buf = b
	_, err := w.Write(b)
	return err
}

// appendFloat renders a bucket bound. Go's 'g' shortest formatting is
// stable and round-trippable; bounds are powers-of-two fractions so they
// render exactly (e.g. 1.125, 96, 7.516192768e+09).
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// nameset returns (building and caching on first sight) the sanitized
// spellings for a metric name.
func (e *Exporter) nameset(name string) *names {
	if n, ok := e.names[name]; ok {
		return n
	}
	fam := SanitizeName(name)
	n := &names{
		family: fam,
		total:  fam + "_total",
		bucket: fam + `_bucket{le="`,
		sum:    fam + "_sum",
		count:  fam + "_count",
	}
	e.names[name] = n
	return n
}

// SanitizeName maps a telemetry metric name onto the OpenMetrics name
// charset [a-zA-Z0-9_:] (first character must not be a digit): dots —
// the registry's namespace separator — and every other invalid byte
// become underscores. The mapping is stable: equal inputs always yield
// equal outputs, and ASCII case is preserved.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	// fast path: already valid
	valid := true
	for i := 0; i < len(name); i++ {
		if !validNameByte(name[i], i == 0) {
			valid = false
			break
		}
	}
	if valid {
		return name
	}
	b := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		if validNameByte(name[i], i == 0) {
			b[i] = name[i]
		} else {
			b[i] = '_'
		}
	}
	return string(b)
}

func validNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
