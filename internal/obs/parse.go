package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal OpenMetrics text-format parser — just enough to consume what
// the Exporter emits (and any Prometheus-style exposition of the same
// shape). cali-top uses it to poll /debug/metrics, and the endpoint smoke
// test uses it to validate that the exporter's output round-trips.

// Sample is one exposition line: a sample name (including any _total /
// _bucket / _sum / _count suffix), its label set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string // nil when the sample has no labels
	Value  float64
}

// Family groups the samples of one metric family with its declared type.
type Family struct {
	Name    string // family name as declared by # TYPE
	Type    string // "counter", "gauge", "histogram", "unknown"
	Samples []Sample
}

// Metrics is a parsed exposition, keyed by family name.
type Metrics struct {
	Families map[string]*Family
	// EOF reports whether the exposition ended with the OpenMetrics
	// "# EOF" terminator (absent from plain Prometheus output).
	EOF bool
}

// ParseMetrics parses an OpenMetrics/Prometheus text exposition. It is
// strict about what the Exporter produces — malformed sample lines are
// errors, not skips — and returns the families with their samples in
// input order.
func ParseMetrics(r io.Reader) (*Metrics, error) {
	m := &Metrics{Families: map[string]*Family{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if m.EOF {
			return nil, fmt.Errorf("openmetrics: line %d: content after # EOF", lineno)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				m.EOF = true
				continue
			}
			fields := strings.Fields(line)
			// "# TYPE <name> <type>"; HELP/UNIT comments are skipped
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name := fields[2]
				f := m.family(name)
				f.Type = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("openmetrics: line %d: %w", lineno, err)
		}
		f := m.family(familyOf(s.Name))
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// family returns (creating if needed) the named family.
func (m *Metrics) family(name string) *Family {
	f := m.Families[name]
	if f == nil {
		f = &Family{Name: name, Type: "unknown"}
		m.Families[name] = f
	}
	return f
}

// familyOf strips the sample-name suffixes that belong to a family
// (_total, _bucket, _sum, _count).
func familyOf(sample string) string {
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		if strings.HasSuffix(sample, suf) {
			return strings.TrimSuffix(sample, suf)
		}
	}
	return sample
}

// parseSample parses `name 42`, `name{k="v",k2="v2"} 42`, with optional
// trailing timestamp (ignored).
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		rest = rest[i+1:]
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		i := strings.IndexAny(rest, " \t")
		if i < 0 {
			return s, fmt.Errorf("missing value in %q", line)
		}
		s.Name = rest[:i]
		rest = strings.TrimSpace(rest[i:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty sample name in %q", line)
	}
	// value, optionally followed by a timestamp field
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	s.Value = v
	return s, nil
}

// parseValue accepts Go float syntax plus the exposition spellings of
// the infinities and NaN.
func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabels parses `k="v",k2="v2"` (escaped \" \\ \n inside values).
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// Value returns the single value of a counter or gauge family (the
// _total sample for counters), and ok=false when absent.
func (f *Family) Value() (float64, bool) {
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name == f.Name || s.Name == f.Name+"_total" {
			return s.Value, true
		}
	}
	return 0, false
}

// HistCount returns the _count sample of a histogram family.
func (f *Family) HistCount() (float64, bool) { return f.suffixValue("_count") }

// HistSum returns the _sum sample of a histogram family.
func (f *Family) HistSum() (float64, bool) { return f.suffixValue("_sum") }

func (f *Family) suffixValue(suf string) (float64, bool) {
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name == f.Name+suf {
			return s.Value, true
		}
	}
	return 0, false
}

// HistQuantile estimates the q-quantile of a histogram family from its
// cumulative le-labeled buckets, interpolating linearly within the bucket
// that contains the target rank — the client-side twin of
// telemetry.HistogramSnapshot.Quantile, used by cali-top to compute
// percentiles from a scrape.
func (f *Family) HistQuantile(q float64) (float64, bool) {
	if f == nil {
		return 0, false
	}
	type bkt struct {
		upper float64
		cum   float64
	}
	var buckets []bkt
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" {
			continue
		}
		le, ok := s.Labels["le"]
		if !ok {
			continue
		}
		u, err := parseValue(le)
		if err != nil {
			continue
		}
		buckets = append(buckets, bkt{upper: u, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].upper < buckets[j].upper })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, true
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	prevCum, prevUpper := 0.0, 0.0
	for i, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.upper, 1) {
				return prevUpper, true
			}
			if i == 0 || b.cum == prevCum {
				return b.upper, true
			}
			frac := (rank - prevCum) / (b.cum - prevCum)
			return prevUpper + frac*(b.upper-prevUpper), true
		}
		prevCum, prevUpper = b.cum, b.upper
	}
	return prevUpper, true
}
