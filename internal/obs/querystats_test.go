package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"caligo/internal/telemetry"
)

func withQueryStats(t *testing.T) {
	t.Helper()
	withTelemetry(t, true)
	withLogging(t, true)
	ResetQueryStats()
	t.Cleanup(ResetQueryStats)
}

func TestBeginQueryDisabled(t *testing.T) {
	withTelemetry(t, false)
	if aq := BeginQuery("AGGREGATE count", "serial"); aq != nil {
		t.Fatal("BeginQuery returned non-nil with telemetry disabled")
	}
	// nil-receiver methods are no-ops
	var aq *ActiveQuery
	aq.AddRecords(1)
	aq.AddBytes(1)
	aq.Phase("read", time.Millisecond)
	aq.ShardDone(time.Millisecond, 1, 1)
	aq.SetRows(1)
	aq.End(nil)
	if aq.ID() != 0 {
		t.Error("nil ActiveQuery has non-zero ID")
	}
}

func TestQueryAttribution(t *testing.T) {
	withQueryStats(t)
	aq := BeginQuery("AGGREGATE count GROUP BY kernel", "sharded")
	if aq == nil {
		t.Fatal("BeginQuery returned nil with telemetry enabled")
	}
	if aq.ID() == 0 {
		t.Error("query ID is 0")
	}
	aq.ShardDone(10*time.Millisecond, 100, 5000)
	aq.ShardDone(40*time.Millisecond, 300, 15000)
	aq.Phase("merge", 2*time.Millisecond)
	aq.Phase("postprocess", time.Millisecond)
	aq.Phase("merge", time.Millisecond) // accumulates
	aq.SetRows(7)
	aq.End(nil)

	snap := QuerySnapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d queries, want 1", len(snap))
	}
	s := snap[0]
	if !s.Done || s.Err != "" {
		t.Errorf("done=%v err=%q", s.Done, s.Err)
	}
	if s.Records != 400 || s.Bytes != 20000 || s.Rows != 7 || s.Shards != 2 {
		t.Errorf("records=%d bytes=%d rows=%d shards=%d", s.Records, s.Bytes, s.Rows, s.Shards)
	}
	if want := 0.75; s.ShardSkew != want {
		t.Errorf("shard skew = %g, want %g", s.ShardSkew, want)
	}
	var merge, post int64
	for _, p := range s.Phases {
		switch p.Name {
		case "merge":
			merge = p.NS
		case "postprocess":
			post = p.NS
		}
	}
	if merge != 3*time.Millisecond.Nanoseconds() || post != time.Millisecond.Nanoseconds() {
		t.Errorf("phases merge=%d postprocess=%d", merge, post)
	}
}

func TestSlowQueryLogEntry(t *testing.T) {
	withQueryStats(t)
	prev := SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	defer SetSlowQueryThreshold(prev)

	aq := BeginQuery("AGGREGATE sum(time.duration) GROUP BY function", "serial")
	aq.Phase("read+aggregate", 5*time.Millisecond)
	time.Sleep(time.Millisecond)
	aq.End(nil)

	var buf bytes.Buffer
	if err := WriteFlightRecorder(&buf); err != nil {
		t.Fatal(err)
	}
	var entry map[string]any
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if json.Unmarshal([]byte(line), &rec) == nil && rec["msg"] == "slow query" {
			entry = rec
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow-query entry in flight recorder:\n%s", buf.String())
	}
	if entry["qid"] != float64(aq.ID()) {
		t.Errorf("slow entry qid = %v, want %d", entry["qid"], aq.ID())
	}
	if entry["calql"] != "AGGREGATE sum(time.duration) GROUP BY function" {
		t.Errorf("slow entry lost the CalQL text: %v", entry["calql"])
	}
	if _, ok := entry["phase.read+aggregate.ns"]; !ok {
		t.Errorf("slow entry missing phase breakdown: %v", entry)
	}
	// and the stats record is marked slow
	if snap := QuerySnapshot(); len(snap) != 1 || !snap[0].Slow {
		t.Errorf("query not marked slow in snapshot: %+v", snap)
	}
}

func TestFastQueryNoSlowEntry(t *testing.T) {
	withQueryStats(t)
	prev := SetSlowQueryThreshold(time.Hour)
	defer SetSlowQueryThreshold(prev)
	BeginQuery("AGGREGATE count", "serial").End(nil)
	var buf bytes.Buffer
	if err := WriteFlightRecorder(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "slow query") {
		t.Errorf("fast query logged as slow:\n%s", buf.String())
	}
	if snap := QuerySnapshot(); len(snap) != 1 || snap[0].Slow {
		t.Errorf("fast query marked slow: %+v", snap)
	}
}

func TestQueryFailureLogged(t *testing.T) {
	withQueryStats(t)
	aq := BeginQuery("AGGREGATE bogus(", "serial")
	aq.End(errors.New("parse error at bogus"))
	var buf bytes.Buffer
	if err := WriteFlightRecorder(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "query failed") || !strings.Contains(buf.String(), "parse error at bogus") {
		t.Errorf("failure not in flight recorder:\n%s", buf.String())
	}
	if snap := QuerySnapshot(); len(snap) != 1 || snap[0].Err == "" {
		t.Errorf("failure not in stats: %+v", snap)
	}
}

func TestQueryLogBounded(t *testing.T) {
	withQueryStats(t)
	for i := 0; i < defaultQueryLogCap+50; i++ {
		BeginQuery("Q", "serial").End(nil)
	}
	snap := QuerySnapshot()
	if len(snap) != defaultQueryLogCap {
		t.Fatalf("finished table holds %d, want %d", len(snap), defaultQueryLogCap)
	}
	// newest first
	for i := 1; i < len(snap); i++ {
		if snap[i].ID > snap[i-1].ID {
			t.Fatalf("snapshot not newest-first at %d: %d after %d", i, snap[i].ID, snap[i-1].ID)
		}
	}
}

func TestActiveQueriesInSnapshot(t *testing.T) {
	withQueryStats(t)
	aq := BeginQuery("LONG RUNNING", "mpi")
	snap := QuerySnapshot()
	if len(snap) != 1 || snap[0].Done {
		t.Fatalf("active query missing or marked done: %+v", snap)
	}
	if snap[0].DurationNS <= 0 {
		t.Error("active query has no running duration")
	}
	aq.End(nil)
}

func TestWriteQueryStatsJSON(t *testing.T) {
	withQueryStats(t)
	BeginQuery("AGGREGATE count", "serial").End(nil)
	var buf bytes.Buffer
	if err := WriteQueryStats(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total   uint64       `json:"total"`
		Queries []QueryStats `json:"queries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("stats endpoint body not JSON: %v\n%s", err, buf.String())
	}
	if doc.Total != 1 || len(doc.Queries) != 1 {
		t.Errorf("total=%d queries=%d", doc.Total, len(doc.Queries))
	}
}

// TestQueryStatsConcurrent hammers attribution from concurrent queries
// and snapshot readers (run under -race in CI).
func TestQueryStatsConcurrent(t *testing.T) {
	withQueryStats(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				aq := BeginQuery("CONCURRENT", "sharded")
				aq.ShardDone(time.Microsecond, 10, 100)
				aq.ShardDone(2*time.Microsecond, 10, 100)
				aq.End(nil)
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = QuerySnapshot()
				var buf bytes.Buffer
				if err := WriteQueryStats(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRuntimeSampler(t *testing.T) {
	withTelemetry(t, true)
	stop := StartRuntimeSampler(10 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if telemetry.NewGauge("caligo.runtime.goroutines").Value() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := telemetry.NewGauge("caligo.runtime.goroutines").Value(); v <= 0 {
		t.Errorf("goroutines gauge = %d after sampling", v)
	}
	if v := telemetry.NewGauge("caligo.runtime.heap.alloc.bytes").Value(); v <= 0 {
		t.Errorf("heap alloc gauge = %d after sampling", v)
	}
	// second sampler start is a no-op and its stop must not kill the first
	stop2 := StartRuntimeSampler(time.Millisecond)
	stop2()
	if !samplerRunning.Load() {
		t.Error("no-op stop shut down the primary sampler")
	}
	stop()
	if samplerRunning.Load() {
		t.Error("sampler still marked running after stop")
	}
}

func TestSampleRuntimeOnce(t *testing.T) {
	withTelemetry(t, true)
	telemetry.NewGauge("caligo.runtime.goroutines").Set(0)
	SampleRuntimeOnce()
	if v := telemetry.NewGauge("caligo.runtime.goroutines").Value(); v <= 0 {
		t.Errorf("goroutines gauge = %d after SampleRuntimeOnce", v)
	}
}
