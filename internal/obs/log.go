package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
)

// Structured logging for the aggregation service, on stdlib log/slog,
// with the same operating posture as the telemetry layer:
//
//   - Kill-switched: logging is off by default, and a disabled logger
//     costs one atomic load in Handler.Enabled — instrumented code can
//     call slog's Info/Warn/Error unconditionally.
//   - Per-subsystem: Logger("query"), Logger("rnet"), ... return loggers
//     tagged with a subsystem attribute, so one stream multiplexes the
//     whole pipeline and stays filterable.
//   - Flight recorder: every record (when enabled) is retained as one
//     JSON line in a fixed-size ring, dumpable via /debug/log or
//     WriteFlightRecorder — so after a failure the last N events are
//     available even when no sink was configured.
//   - Swappable sink: SetLogOutput directs a JSON or text rendering of
//     the stream to an io.Writer (stderr, a file, a shipper); handed-out
//     loggers observe the change immediately.

// logEnabled is the logging kill switch, independent of the telemetry
// switch (metrics without logs and logs without metrics are both valid
// deployments).
var logEnabled atomic.Bool

// LogEnabled reports whether structured logging is on.
func LogEnabled() bool { return logEnabled.Load() }

// EnableLogging turns structured logging on.
func EnableLogging() { logEnabled.Store(true) }

// DisableLogging turns structured logging off. Flight-recorder contents
// are retained and remain dumpable.
func DisableLogging() { logEnabled.Store(false) }

// SetLogEnabled sets the logging kill switch and returns the previous
// state, for scoped enablement in tests and tools.
func SetLogEnabled(on bool) (previous bool) { return logEnabled.Swap(on) }

// LogFormat selects a sink rendering.
type LogFormat int

const (
	// LogJSON renders the sink stream as JSON lines (slog.JSONHandler).
	LogJSON LogFormat = iota
	// LogText renders the sink stream as logfmt-style text
	// (slog.TextHandler).
	LogText
)

// logConfig is the swappable logging backend: the flight-recorder
// handler (always present) plus an optional sink handler. sink and
// format are retained so level and output reconfigure independently.
type logConfig struct {
	handlers []slog.Handler
	level    slog.Level
	sink     io.Writer
	format   LogFormat
}

var logCfg atomic.Pointer[logConfig]

// recorder is the process-global flight recorder ring.
var recorder = newFlightRecorder(defaultFlightRecorderCap)

const defaultFlightRecorderCap = 256

func init() {
	resetLogConfig(nil, LogJSON, slog.LevelInfo)
}

// resetLogConfig rebuilds the handler set. sink == nil means flight
// recorder only.
func resetLogConfig(sink io.Writer, format LogFormat, level slog.Level) {
	opts := &slog.HandlerOptions{Level: level}
	handlers := []slog.Handler{
		slog.NewJSONHandler(recorder, opts),
	}
	if sink != nil {
		var h slog.Handler
		if format == LogText {
			h = slog.NewTextHandler(sink, opts)
		} else {
			h = slog.NewJSONHandler(sink, opts)
		}
		handlers = append(handlers, h)
	}
	logCfg.Store(&logConfig{handlers: handlers, level: level, sink: sink, format: format})
}

// SetLogOutput directs the structured log stream to w in the given
// format, in addition to the always-on flight recorder. Passing nil
// removes the sink. Loggers already handed out observe the change on
// their next record. SetLogOutput does not flip the kill switch.
func SetLogOutput(w io.Writer, format LogFormat) {
	cfg := logCfg.Load()
	resetLogConfig(w, format, cfg.level)
}

// SetLogLevel sets the minimum level for both the sink and the flight
// recorder (default Info). The configured sink is preserved.
func SetLogLevel(level slog.Level) {
	cfg := logCfg.Load()
	resetLogConfig(cfg.sink, cfg.format, level)
}

// Logger returns a structured logger tagged with the given subsystem
// (e.g. "query", "rnet", "caliper"). Loggers are cheap and cacheable in
// package-level variables; they observe kill-switch flips and sink
// changes at call time.
func Logger(subsystem string) *slog.Logger {
	return slog.New(&obsHandler{attrs: []slog.Attr{slog.String("subsystem", subsystem)}})
}

// obsHandler defers handler resolution to record time, so package-level
// loggers stay valid across SetLogOutput reconfigurations, and prepends
// the kill-switch check.
type obsHandler struct {
	attrs  []slog.Attr
	groups []string
}

func (h *obsHandler) Enabled(_ context.Context, level slog.Level) bool {
	return logEnabled.Load() && level >= logCfg.Load().level
}

func (h *obsHandler) Handle(ctx context.Context, rec slog.Record) error {
	cfg := logCfg.Load()
	var first error
	for _, base := range cfg.handlers {
		hh := base
		if len(h.attrs) > 0 {
			hh = hh.WithAttrs(h.attrs)
		}
		for _, g := range h.groups {
			hh = hh.WithGroup(g)
		}
		if err := hh.Handle(ctx, rec.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (h *obsHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(h.groups) > 0 {
		// attrs inside groups are qualified by the innermost group; keep
		// ordering by appending group-qualified attrs
		qualified := make([]slog.Attr, 0, len(attrs))
		for _, a := range attrs {
			name := a.Key
			for i := len(h.groups) - 1; i >= 0; i-- {
				name = h.groups[i] + "." + name
			}
			qualified = append(qualified, slog.Attr{Key: name, Value: a.Value})
		}
		attrs = qualified
	}
	na := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	na = append(na, h.attrs...)
	na = append(na, attrs...)
	return &obsHandler{attrs: na, groups: h.groups}
}

func (h *obsHandler) WithGroup(name string) slog.Handler {
	ng := make([]string, 0, len(h.groups)+1)
	ng = append(ng, h.groups...)
	ng = append(ng, name)
	return &obsHandler{attrs: h.attrs, groups: ng}
}

// flightRecorder retains the last N rendered log lines in a ring. It is
// an io.Writer fed by a JSON handler; writes are line-buffered so a
// record split across Write calls still lands as one entry.
type flightRecorder struct {
	mu      sync.Mutex
	lines   [][]byte
	next    int
	total   uint64
	partial []byte
}

func newFlightRecorder(capacity int) *flightRecorder {
	return &flightRecorder{lines: make([][]byte, capacity)}
}

func (f *flightRecorder) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	written := len(p)
	for {
		nl := -1
		for i, c := range p {
			if c == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			f.partial = append(f.partial, p...)
			break
		}
		line := make([]byte, 0, len(f.partial)+nl)
		line = append(line, f.partial...)
		line = append(line, p[:nl]...)
		f.partial = f.partial[:0]
		f.push(line)
		p = p[nl+1:]
	}
	return written, nil
}

// push stores one complete line (caller holds the lock).
func (f *flightRecorder) push(line []byte) {
	if len(f.lines) == 0 {
		return
	}
	f.lines[f.next] = line
	f.next = (f.next + 1) % len(f.lines)
	f.total++
}

// writeTo dumps the retained lines oldest-first as NDJSON.
func (f *flightRecorder) writeTo(w io.Writer) error {
	f.mu.Lock()
	n := len(f.lines)
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		idx := (f.next + i) % n
		if f.lines[idx] != nil {
			out = append(out, f.lines[idx])
		}
	}
	f.mu.Unlock()
	for _, line := range out {
		if _, err := w.Write(line); err != nil {
			return err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// lengths reports (retained, total) record counts.
func (f *flightRecorder) lengths() (int, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	retained := 0
	for _, l := range f.lines {
		if l != nil {
			retained++
		}
	}
	return retained, f.total
}

// reset drops all retained lines (capacity changes reallocate the ring).
func (f *flightRecorder) reset(capacity int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if capacity <= 0 {
		capacity = defaultFlightRecorderCap
	}
	f.lines = make([][]byte, capacity)
	f.next = 0
	f.total = 0
	f.partial = f.partial[:0]
}

// WriteFlightRecorder dumps the flight recorder's retained records —
// oldest first, one JSON object per line (NDJSON) — to w. The dump works
// regardless of the kill switch; it reads whatever was recorded while
// logging was on. This is the /debug/log endpoint's body, and tools dump
// it on query failure so the run's last events survive the crash report.
func WriteFlightRecorder(w io.Writer) error { return recorder.writeTo(w) }

// FlightRecorderLen reports how many records the flight recorder
// currently retains and how many it has seen in total (the difference
// has been overwritten).
func FlightRecorderLen() (retained int, total uint64) { return recorder.lengths() }

// SetFlightRecorderCapacity resizes the flight recorder ring (default
// 256 records) and clears it. Capacity <= 0 restores the default.
func SetFlightRecorderCapacity(n int) {
	recorder.reset(n)
}
